// Quickstart: build a paper-default deployment, run the joint optimizer at
// balanced weights, and inspect the energy/latency outcome against the
// random benchmark.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A 50-device deployment with the paper's Section VII-A parameters.
	sc := repro.DefaultScenario()
	system, err := sc.Build(rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatal(err)
	}

	// Joint optimization at w1 = w2 = 0.5 (no preference between energy
	// and completion time).
	res, err := repro.Optimize(system, repro.Weights{W1: 0.5, W2: 0.5}, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposed:  E = %7.2f J   T = %7.2f s   (%d outer iterations)\n",
		res.Metrics.TotalEnergy, res.Metrics.TotalTime, len(res.Iterations))

	// The paper's random benchmark: random CPU frequencies, full power,
	// equal bandwidth split.
	bench := repro.RandomFreqBenchmark(system, rand.New(rand.NewSource(7)))
	bm := system.Evaluate(bench)
	fmt.Printf("benchmark: E = %7.2f J   T = %7.2f s\n", bm.TotalEnergy, bm.TotalTime)

	fmt.Printf("\nenergy saved: %.1f%%   time saved: %.1f%%\n",
		100*(1-res.Metrics.TotalEnergy/bm.TotalEnergy),
		100*(1-res.Metrics.TotalTime/bm.TotalTime))
}
