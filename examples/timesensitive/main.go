// Time-sensitive fleet: connected vehicles need the freshest possible
// global model — the paper's w2 >> w1 regime. The example compares the
// latency-first weighting against the pure minimum-completion-time solution
// and against a fixed hard deadline (ModeDeadline), the regime of Fig. 8.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A dense urban cell: 60 vehicles close to the base station with strong
	// compute but a crowded 10 MHz uplink.
	sc := repro.DefaultScenario()
	sc.N = 60
	sc.RadiusKm = 0.2
	sc.BandwidthHz = 10e6
	system, err := sc.Build(rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatal(err)
	}

	// Physical floor: nothing can finish a round faster than this.
	_, minRound, err := repro.MinCompletionTime(system)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("physical minimum: %.4f s/round (%.1f s for %g rounds)\n",
		minRound, minRound*system.GlobalRounds, system.GlobalRounds)

	// Latency-first weighting.
	res, err := repro.Optimize(system, repro.Weights{W1: 0.1, W2: 0.9}, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w2=0.9 weighting: %.4f s/round, %.2f J total energy\n",
		res.Metrics.RoundTime, res.Metrics.TotalEnergy)

	// Hard deadline 25%% above the physical floor: minimize energy under it.
	deadline := 1.25 * minRound * system.GlobalRounds
	dres, err := repro.Optimize(system, repro.Weights{W1: 1, W2: 0}, repro.Options{
		Mode:          repro.ModeDeadline,
		TotalDeadline: deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hard deadline %.1f s: %.2f J (vs %.2f J at the weighted point)\n",
		deadline, dres.Metrics.TotalEnergy, res.Metrics.TotalEnergy)

	// And the Scheme 1 comparator at the same deadline.
	sch, err := repro.Scheme1(system, deadline)
	if err != nil {
		log.Fatal(err)
	}
	schE := system.Evaluate(sch).TotalEnergy
	fmt.Printf("scheme 1 at the same deadline: %.2f J (proposed saves %.1f%%)\n",
		schE, 100*(1-dres.Metrics.TotalEnergy/schE))
}
