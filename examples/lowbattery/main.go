// Low-battery fleet: battery-powered sensors tolerate latency but must
// stretch every joule — the paper's w1 >> w2 regime (Section IV). The
// example sweeps the weight pairs and shows the energy/latency tradeoff the
// operator can choose from, then picks the battery-friendly corner and
// reports per-device battery lifetimes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A sparse rural sensor fleet: 30 devices spread over a wide disk, weak
	// uplink budget, modest CPUs.
	sc := repro.DefaultScenario()
	sc.N = 30
	sc.RadiusKm = 0.8
	sc.PMaxDBm = 10
	sc.FMaxHz = 1e9
	system, err := sc.Build(rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("weight sweep (same deployment, one training run of Rg rounds):")
	fmt.Println("  w1    w2      energy (J)   completion (s)")
	for _, w := range repro.WeightPairs() {
		res, err := repro.Optimize(system, w, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.1f   %.1f   %10.2f   %12.1f\n",
			w.W1, w.W2, res.Metrics.TotalEnergy, res.Metrics.TotalTime)
	}

	// Battery-first operation.
	res, err := repro.Optimize(system, repro.Weights{W1: 0.9, W2: 0.1}, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics

	// Suppose each sensor carries a 2 Wh (7.2 kJ) battery and re-trains the
	// model daily. How many days does the FL duty cost per device?
	const batteryJ = 7200.0
	fmt.Printf("\nbattery-first pick (w1=0.9): %.2f J total, %.1f s completion\n",
		m.TotalEnergy, m.TotalTime)
	var worst float64
	for i := range system.Devices {
		perDevice := system.GlobalRounds * (res.Allocation.Power[i]*m.UploadTimes[i] +
			system.CompEnergyRound(i, res.Allocation.Freq[i]))
		if perDevice > worst {
			worst = perDevice
		}
	}
	fmt.Printf("worst device spends %.3f J per training run -> %.0f daily runs per battery\n",
		worst, batteryJ/worst)
}
