// FedAvg simulation: runs an actual FedAvg training loop (synthetic
// logistic regression) on top of the optimized allocation, charging each
// global round's energy and wall-clock time from the paper's model. This is
// the full pipeline the paper assumes but does not simulate: optimize
// resources once, then train R_g rounds under that allocation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const (
		nDevices = 20
		dim      = 8
	)

	// Deployment: small cell, short training campaign so the example runs
	// in moments (the energy model scales linearly in Rg either way).
	sc := repro.DefaultScenario()
	sc.N = nDevices
	sc.GlobalRounds = 50
	sc.LocalIters = 5
	system, err := sc.Build(rand.New(rand.NewSource(21)))
	if err != nil {
		log.Fatal(err)
	}

	// Resource allocation at balanced weights.
	res, err := repro.Optimize(system, repro.Weights{W1: 0.5, W2: 0.5}, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	perRoundEnergy := res.Metrics.TotalEnergy / system.GlobalRounds
	perRoundTime := res.Metrics.RoundTime

	// Synthetic data split across the devices, matching D_n in the model.
	rng := rand.New(rand.NewSource(99))
	ds, _ := repro.SyntheticLogistic(rng, nDevices*500, dim, 0.05)
	shards, err := repro.SplitEqual(ds, nDevices)
	if err != nil {
		log.Fatal(err)
	}

	// Train, charging energy and time per aggregation round.
	var usedEnergy, usedTime float64
	trained, err := repro.TrainFedAvg(repro.FedAvgConfig{
		LocalIters:   int(system.LocalIters),
		GlobalRounds: int(system.GlobalRounds),
		LearningRate: 0.5,
		Dim:          dim + 1,
	}, shards, func(round int, m repro.FedAvgModel) {
		usedEnergy += perRoundEnergy
		usedTime += perRoundTime
	})
	if err != nil {
		log.Fatal(err)
	}

	for r := 9; r < len(trained.GlobalLoss); r += 10 {
		fmt.Printf("round %3d: loss=%.4f  energy=%7.3f J  elapsed=%6.2f s\n",
			r+1, trained.GlobalLoss[r],
			perRoundEnergy*float64(r+1), perRoundTime*float64(r+1))
	}
	fmt.Printf("\nfinal training loss: %.4f (started at %.4f)\n",
		trained.GlobalLoss[len(trained.GlobalLoss)-1], trained.GlobalLoss[0])
	fmt.Printf("final accuracy on the pooled data: %.1f%%\n", 100*trained.Model.Accuracy(ds))
	fmt.Printf("campaign cost: %.2f J, %.1f s over %g rounds\n",
		usedEnergy, usedTime, system.GlobalRounds)
}
