package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestClusterEndToEnd drives the acceptance path over the HTTP stack: an
// explicit-cell solve, a handoff, and a routed replay that the destination
// cell must answer from its migrated cache, with consistent stats.
func TestClusterEndToEnd(t *testing.T) {
	cl := repro.NewCluster(repro.ClusterConfig{Cells: 3})
	defer cl.Close()
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	sc := repro.DefaultScenario()
	sc.N = 6
	system, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequestJSON{System: repro.SystemToJSON(system), DeviceID: "ue-1"}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	post := func(path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	status, out := post("/v1/cells/0/solve", body)
	if status != http.StatusOK {
		t.Fatalf("explicit solve: status %d: %s", status, out)
	}
	var solved repro.ClusterSolveResponseJSON
	if err := json.Unmarshal(out, &solved); err != nil {
		t.Fatal(err)
	}
	if solved.Cell != 0 || solved.Source != "cold" {
		t.Fatalf("explicit solve: cell %d source %q, want 0/cold", solved.Cell, solved.Source)
	}

	hbody, _ := json.Marshal(repro.HandoffRequestJSON{DeviceID: "ue-1", FromCell: 0, ToCell: 2})
	status, out = post("/v1/handoff", hbody)
	if status != http.StatusOK {
		t.Fatalf("handoff: status %d: %s", status, out)
	}
	var rep repro.HandoffReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.MigratedResults != 1 {
		t.Fatalf("handoff report %+v, want 1 migrated result", rep)
	}

	status, out = post("/v1/solve", body)
	if status != http.StatusOK {
		t.Fatalf("routed replay: status %d: %s", status, out)
	}
	if err := json.Unmarshal(out, &solved); err != nil {
		t.Fatal(err)
	}
	if solved.Cell != 2 || solved.Source != "cache" {
		t.Fatalf("post-handoff replay: cell %d source %q, want 2/cache", solved.Cell, solved.Source)
	}

	stats, err := fetchStats(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Aggregate.Handoffs != 1 || stats.Aggregate.Requests != 2 {
		t.Fatalf("aggregate stats: %+v", stats.Aggregate)
	}
	if len(stats.Cells) != 3 || stats.Cells[2].Hits != 1 || stats.Cells[0].CacheEntries != 0 {
		t.Fatalf("per-cell stats after migration: %+v", stats.Cells)
	}
}

// TestRunLoadgen runs the multi-cell load generator end to end.
func TestRunLoadgen(t *testing.T) {
	cfg := repro.ClusterConfig{Cells: 3}
	if err := runLoadgen(cfg, 24, 6, 5, 0.05, 0.3, 0.2, 3, 1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadgenBatch runs the batched replay mode through the routed
// /v1/solve-batch endpoint.
func TestRunLoadgenBatch(t *testing.T) {
	cfg := repro.ClusterConfig{Cells: 3}
	if err := runLoadgen(cfg, 24, 6, 5, 0.05, 0.3, 0.2, 3, 1, 4, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadgenChurn replays under membership churn: cells are added and
// drained by the control plane while the device-routed replay runs.
func TestRunLoadgenChurn(t *testing.T) {
	cfg := repro.ClusterConfig{Cells: 3}
	if err := runLoadgen(cfg, 600, 8, 5, 0.05, 0.3, 0, 4, 1, 0, 3, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadgenCrash replays under failure injection: cells are added and
// then crashed WITHOUT draining while the replicated device-routed replay
// runs, exercising promotion mid-traffic.
func TestRunLoadgenCrash(t *testing.T) {
	cfg := repro.ClusterConfig{Cells: 3}
	if err := runLoadgen(cfg, 600, 8, 5, 0.05, 0.3, 0, 4, 1, 0, 0, 2); err != nil {
		t.Fatal(err)
	}
}
