// Command flcluster runs the multi-cell allocation cluster: N independent
// per-cell solver services (each with its own cache, warm-start index and
// worker pool) behind a router with consistent-hash device routing,
// cross-cell device handoff, runtime cell add/remove under a control
// plane, and aggregated stats.
//
// Usage:
//
//	flcluster [-addr :8080] [-cells 4] [-workers 0] [-queue 0]
//	          [-cache 4096] [-ttl 10m] [-timeout 30s] [-gainres 0.25]
//	          [-sessions 1024] [-session-ttl 5m]
//	          [-replicate] [-snapshot-dir DIR] [-snapshot-interval 30s]
//
// Endpoints:
//
//	POST   /v1/cells/{id}/solve   solve in an explicit cell (pins the device)
//	POST   /v1/solve              routed by "device_id" (pin, else hash)
//	POST   /v1/solve-batch        many device-routed solves in one body
//	POST   /v1/stream             open a device-routed gain-delta session
//	POST   /v1/stream/{id}/deltas NDJSON deltas in, NDJSON re-solves out
//	DELETE /v1/stream/{id}        close a session
//	POST   /v1/handoff            {"device_id","from_cell","to_cell"}
//	POST   /v1/cells              add a cell (splice + backfill)
//	DELETE /v1/cells/{id}         drain a cell and remove it
//	POST   /v1/cells/{id}/crash   remove a cell WITHOUT draining (failure
//	                              injection); with -replicate its keyspace
//	                              degrades to warm-but-not-cached on the
//	                              successors instead of cold
//	GET    /v1/rebalance/plan     per-cell moved-key counts (dry run)
//	POST   /v1/rebalance          execute the rebalance
//	GET    /v1/health             per-cell rolling windows + SLO standing
//	                              (503 when breached — readiness probe)
//	GET    /v1/autoscale/plan     the health advisor's current recommendation
//	GET    /debug/alerts          the alert-event ring (SLO transitions,
//	                              membership changes, autoscale actions)
//	GET    /v1/version            build/version info (also: -version flag)
//	GET    /v1/stats              aggregate + per-cell + stream + ctrl +
//	                              health (JSON)
//	GET    /metrics               Prometheus text exposition (incl. the
//	                              obs_runtime_* Go vitals)
//	GET    /debug/flight          the flight recorder's wide-event window
//	GET    /debug/incident        one-shot incident bundle (tar.gz)
//
// With -profile-dir DIR the process captures CPU/heap/goroutine/mutex
// pprof profiles into DIR whenever an SLO rule leaves ok (rate-limited by
// -profile-min-interval, bounded retention) and files the capture in the
// alert ring; /debug/incident packs the latest captures into its bundle.
//
// A health evaluator always runs over the cluster, judging per-cell SLO
// rules on rolling windows and advising on scale. With -autoscale the
// advisor's plans are enacted through the control plane: sustained SLO
// breach adds a cell (up to -max-cells), sustained idleness drains the
// least-loaded cell (down to -min-cells), with -scale-cooldown between
// actions.
//
// Load-generator mode replays drifting per-device scenarios against an
// in-process instance of the same HTTP stack, migrating devices between
// cells at a configurable rate and reporting client-side source counts
// plus the cluster's own counters:
//
//	flcluster -loadgen 300 [-cells 4] [-devices 12] [-n 12] [-drift 0.05]
//	          [-repeat 0.3] [-migrate 0.1] [-conc 8] [-seed 1] [-batch 0]
//	          [-stream] [-deltadev 3] [-churn 0]
//
// With -batch B each worker replays its devices through POST
// /v1/solve-batch in bulk-priority chunks of B instances.
//
// With -churn K the replay runs under membership churn: a control-plane
// goroutine performs K add-cell/drain-cell cycles against the live admin
// endpoints while the workers keep soliciting device-routed solves, so
// mass migrations, ring-generation bumps and epoch-checked rerouting all
// happen mid-traffic (per-request mode; -migrate is forced to 0, mobility
// comes from the drains).
//
// With -crash K the replay instead runs under failure injection: the
// chaos goroutine performs K add-cell/crash-cell cycles, removing cells
// WITHOUT draining them while a fast-flushing replicator ships warm state
// to ring successors — each crash's promotion (devices, warm seeds, lost
// dirty, replica lag) is reported after the replay.
//
// With -replicate (server mode) every cell's warm state ships
// asynchronously to its ring successor; -snapshot-dir additionally
// persists whole-cluster snapshots (all cells + open sessions) to
// DIR/flcluster.snap on -snapshot-interval and on graceful shutdown, and
// restores them at boot.
//
// Each device owns a base scenario; every request is, with probability
// -repeat, an exact replay of that device's previous instance (exercising
// the cache and, across a migration, the handoff-carried cache entry),
// otherwise a fresh log-normal drift of its gains (exercising warm
// starts). With probability -migrate the device first hands off to a
// random other cell.
//
// With -loadgen N -wave the replay instead runs a traffic wave against an
// autoscaling cluster: a hot phase of N cache-defeating solves at full
// concurrency (driving queue waits over the SLO until the advisor adds
// cells), then silence until the advisor drains the cluster back down to
// -min-cells. The run reports peak/final cell counts, the health and plan
// endpoints, and the alert ring.
//
// With -stream every device instead opens one delta session and replays
// sparse NDJSON gain deltas (-deltadev gains per update) down a live
// connection; migrations fire POST /v1/handoff between deltas of the SAME
// open session, exercising session survival across cross-cell handoff —
// the post-move deltas must keep re-solving warm and dual-seeded off the
// migrated state.
package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		cells   = flag.Int("cells", 4, "number of cells")
		workers = flag.Int("workers", 0, "per-cell solver pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "per-cell queue depth (0 = 4x workers)")
		cache   = flag.Int("cache", 4096, "per-cell solution cache entries")
		ttl     = flag.Duration("ttl", 10*time.Minute, "solution cache TTL")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request default deadline")
		gainres = flag.Float64("gainres", 0.25, "channel-gain fingerprint bucket (dB)")

		sessions   = flag.Int("sessions", 1024, "max concurrent stream sessions")
		sessionTTL = flag.Duration("session-ttl", 5*time.Minute, "stream session idle TTL")

		autoscale     = flag.Bool("autoscale", false, "enact health advisor plans (add/drain cells) through the control plane")
		minCells      = flag.Int("min-cells", 1, "autoscale: lower bound on cluster size")
		maxCells      = flag.Int("max-cells", 8, "autoscale: upper bound on cluster size")
		healthTick    = flag.Duration("health-tick", 2*time.Second, "health evaluator polling interval")
		scaleCooldown = flag.Duration("scale-cooldown", 30*time.Second, "autoscale: minimum wall time between actions")

		logLevel   = flag.String("log-level", "info", "structured log level (debug|info|warn|error)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address (net/http/pprof + /debug/traces + /debug/dashboard)")
		traceN     = flag.Int("trace-sample", 16, "retain 1 in N traces in the debug ring (0 disables tracing)")
		traceSlow  = flag.Duration("trace-slow", 0, "slow-solve promotion threshold (0 = 250ms default)")
		spanExport = flag.String("span-export", "", "also POST span batches to this aggregator URL (e.g. a front router's /debug/spans); spans always assemble locally")

		loadgen  = flag.Int("loadgen", 0, "replay this many requests and exit")
		devices  = flag.Int("devices", 12, "loadgen: distinct devices (each owns a scenario)")
		n        = flag.Int("n", 12, "loadgen: FL devices per scenario")
		drift    = flag.Float64("drift", 0.05, "loadgen: per-request log-normal gain drift (nepers)")
		repeat   = flag.Float64("repeat", 0.3, "loadgen: probability of replaying the previous instance")
		migrate  = flag.Float64("migrate", 0.1, "loadgen: per-request device-migration probability")
		conc     = flag.Int("conc", 8, "loadgen: concurrent clients")
		seed     = flag.Int64("seed", 1, "loadgen: RNG seed")
		batch    = flag.Int("batch", 0, "loadgen: replay through POST /v1/solve-batch in batches of this size (0 = per-request /v1/solve)")
		stream   = flag.Bool("stream", false, "loadgen: replay through per-device NDJSON delta sessions (POST /v1/stream)")
		deltadev = flag.Int("deltadev", 3, "loadgen -stream: devices drifted per delta")
		churn    = flag.Int("churn", 0, "loadgen: add+drain this many cells mid-replay (per-request mode)")
		wave     = flag.Bool("wave", false, "loadgen: autoscale traffic wave (hot phase, then idle until the cluster drains back)")
		crash    = flag.Int("crash", 0, "loadgen: add+crash this many cells mid-replay WITHOUT draining, promoting replicas (per-request mode)")

		profileDir = flag.String("profile-dir", "", "capture pprof profiles here on SLO breaches (empty disables the trigger)")
		profileCPU = flag.Float64("profile-cpu-seconds", 1.0, "triggered CPU profile sampling window (seconds)")
		profileMin = flag.Duration("profile-min-interval", 2*time.Minute, "minimum interval between triggered captures")

		replicate    = flag.Bool("replicate", false, "ship each cell's warm state to its ring successor and promote it on crash removals")
		snapshotDir  = flag.String("snapshot-dir", "", "persist periodic cluster snapshots in this directory and restore at boot (empty disables)")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence (<0 saves only on shutdown)")

		version = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.ObsVersionString())
		return
	}
	if _, err := repro.ObsSetupLogger(os.Stderr, *logLevel, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "flcluster:", err)
		os.Exit(1)
	}
	if *churn > 0 && (*stream || *batch > 0) {
		fmt.Fprintln(os.Stderr, "flcluster: -churn only composes with the per-request loadgen (no -stream/-batch)")
		os.Exit(2)
	}
	if *wave && (*stream || *batch > 0 || *churn > 0) {
		fmt.Fprintln(os.Stderr, "flcluster: -wave only composes with the per-request loadgen (no -stream/-batch/-churn)")
		os.Exit(2)
	}
	if *crash > 0 && (*stream || *batch > 0 || *churn > 0 || *wave) {
		fmt.Fprintln(os.Stderr, "flcluster: -crash only composes with the per-request loadgen (no -stream/-batch/-churn/-wave)")
		os.Exit(2)
	}

	cfg := repro.ClusterConfig{
		Cells: *cells,
		Cell: repro.ServeConfig{
			Workers:        *workers,
			QueueDepth:     *queue,
			CacheEntries:   *cache,
			CacheTTL:       *ttl,
			DefaultTimeout: *timeout,
			Quantization:   repro.ServeQuantization{GainResolutionDB: *gainres},
		},
	}
	scfg := repro.StreamConfig{MaxSessions: *sessions, IdleTTL: *sessionTTL}

	hcfg := repro.HealthConfig{
		Tick: *healthTick,
		Advisor: repro.HealthAdvisorConfig{
			MinCells: *minCells,
			MaxCells: *maxCells,
			Cooldown: *scaleCooldown,
		},
	}

	var err error
	switch {
	case *loadgen > 0 && *stream:
		err = runStreamLoadgen(cfg, scfg, *loadgen, *devices, *n, *drift, *migrate, *conc, *seed, *deltadev)
	case *loadgen > 0 && *wave:
		err = runAutoscaleWave(cfg, hcfg, *autoscale, *loadgen, *devices, *n, *drift, *conc, *seed,
			forensicsOpts{Dir: *profileDir, CPUSeconds: *profileCPU, MinInterval: *profileMin})
	case *loadgen > 0:
		err = runLoadgen(cfg, *loadgen, *devices, *n, *drift, *repeat, *migrate, *conc, *seed, *batch, *churn, *crash)
	default:
		err = runServer(cfg, scfg, hcfg, *autoscale, *replicate, *addr, *debugAddr, *traceN, *traceSlow, *spanExport, *snapshotDir, *snapInterval,
			forensicsOpts{Dir: *profileDir, CPUSeconds: *profileCPU, MinInterval: *profileMin})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flcluster:", err)
		os.Exit(1)
	}
}

// forensicsOpts carries the -profile-* flags into runServer.
type forensicsOpts struct {
	Dir         string
	CPUSeconds  float64
	MinInterval time.Duration
}

// newProfileTrigger builds the SLO-triggered pprof capturer from the
// -profile-* flags (nil when -profile-dir is unset — every ProfileTrigger
// method is nil-safe, so wiring stays unconditional).
func newProfileTrigger(opts forensicsOpts) *repro.ProfileTrigger {
	if opts.Dir == "" {
		return nil
	}
	trig, err := repro.NewProfileTrigger(repro.ProfileConfig{
		Dir:         opts.Dir,
		CPUSeconds:  opts.CPUSeconds,
		MinInterval: opts.MinInterval,
		Logger:      slog.Default(),
	})
	if err != nil {
		slog.Warn("profile trigger disabled", "dir", opts.Dir, "err", err)
		return nil
	}
	return trig
}

// runServer serves until SIGINT/SIGTERM: the listener stops accepting,
// one final snapshot flushes (when -snapshot-dir is set), and the process
// exits.
func runServer(cfg repro.ClusterConfig, scfg repro.StreamConfig, hcfg repro.HealthConfig, autoscale, replicate bool, addr, debugAddr string, traceN int, traceSlow time.Duration, spanExport string, snapshotDir string, snapInterval time.Duration, fopts forensicsOpts) error {
	var col *repro.ObsCollector
	if traceN > 0 {
		col = repro.NewObsCollector(repro.ObsConfig{SampleEvery: traceN, SlowThreshold: traceSlow})
	}
	scfg.Trace = col

	// Telemetry plane: every finished trace feeds an exporter whose local
	// sink is this process's own aggregator (so /debug/traces always shows
	// assembled traces, including spans POSTed by remote cells); with
	// -span-export the same batches also ship to an upstream aggregator.
	// The flight recorder rides the same sink: every finished trace
	// (sampled or not) derives one wide event.
	var agg *repro.TelemetryAggregator
	var exp *repro.TelemetryExporter
	var flight *repro.FlightRecorder
	if col != nil {
		agg = repro.NewTelemetryAggregator(repro.TelemetryAggregatorConfig{SlowThreshold: traceSlow})
		exp = repro.NewTelemetryExporter(repro.TelemetryExporterConfig{
			Origin: "flcluster",
			Target: spanExport,
			Local:  agg,
			Logger: slog.Default(),
		})
		flight = repro.NewFlightRecorder(0)
		col.SetSink(func(t repro.ObsTraceJSON) {
			exp.Enqueue(t)
			flight.Observe(t)
		})
		defer exp.Close()
	}
	trig := newProfileTrigger(fopts)
	defer trig.Close()

	cl := repro.NewCluster(cfg)
	defer cl.Close()
	mgr := repro.NewStreamManager(repro.NewStreamClusterBackend(cl), scfg)
	defer mgr.Close()
	plane := repro.NewControlPlane(cl, mgr)
	plane.SetLogger(slog.Default())
	if replicate {
		rep := repro.NewReplicator(repro.ReplicatorConfig{Router: cl, Logger: slog.Default()})
		rep.Start()
		defer rep.Close()
		plane.SetReplicator(rep)
		slog.Info("ring-successor replication enabled")
	}
	if snapshotDir != "" {
		path := filepath.Join(snapshotDir, "flcluster.snap")
		repro.ReplicaBootRestore(path, slog.Default(), func(s repro.ReplicaSnapshot) repro.ReplicaRestoreReport {
			return repro.ReplicaRestoreCluster(cl, mgr, s)
		})
		snapper := repro.NewReplicaSnapshotter(repro.ReplicaSnapshotterConfig{
			Path:     path,
			Interval: snapInterval,
			Capture:  repro.ReplicaCaptureCluster(cl, mgr),
			Logger:   slog.Default(),
		})
		snapper.Start()
		plane.SetSnapshotter(snapper)
		defer func() { // runs before mgr/cl close: their state is still live
			if err := snapper.Close(); err != nil {
				slog.Warn("final snapshot flush failed", "path", path, "err", err)
			} else {
				slog.Info("final snapshot flushed", "path", path)
			}
		}()
	}

	hcfg.Source = repro.HealthRouterSource(cl)
	hcfg.Logger = slog.Default()
	if autoscale {
		hcfg.Actuator = repro.NewCtrlActuator(plane)
	}
	// Runtime vitals are sampled each tick and judged by the runtime
	// rules; the transition hook fires the profile trigger the moment any
	// rule (cell or process) leaves ok, filing the capture as an alert.
	hcfg.Runtime = func() repro.HealthRuntimeSample {
		v := repro.ReadRuntimeVitals()
		return repro.HealthRuntimeSample{
			Goroutines:             float64(v.Goroutines),
			HeapBytes:              float64(v.HeapBytes),
			GCPauseP99Seconds:      v.GCPauseP99Seconds,
			SchedLatencyP99Seconds: v.SchedLatencyP99Seconds,
		}
	}
	var ev *repro.HealthEvaluator
	hcfg.OnTransition = func(t repro.HealthTransition) {
		if t.To == repro.HealthStateOK {
			return
		}
		if rec, ok := trig.Capture(t.Rule + "-" + string(t.To)); ok {
			ev.RecordEvent("profile", t.Cell,
				fmt.Sprintf("profiles captured in %s (rule %s %s→%s)", rec.Dir, t.Rule, t.From, t.To))
		}
	}
	ev = repro.NewHealthEvaluator(hcfg)
	ev.Start()
	defer ev.Close()
	plane.SetEvents(ev)

	sections := []repro.IncidentSection{
		{Name: "alerts", Fetch: func() any { return ev.Alerts() }},
		{Name: "health", Fetch: func() any { return ev.Health() }},
		{Name: "autoscale_plan", Fetch: func() any { return ev.Plan() }},
		{Name: "stats", Fetch: func() any { return cl.Stats() }},
		{Name: "ctrl", Fetch: func() any { return plane.Stats() }},
	}
	if agg != nil {
		sections = append(sections, repro.IncidentSection{Name: "traces", Fetch: func() any {
			return agg.Assembled(repro.ObsTraceQuery{Limit: 32})
		}})
	}
	incident := repro.IncidentHandler(repro.IncidentBundleConfig{
		Origin:   "flcluster",
		Flight:   flight,
		Profiles: trig,
		Sections: sections,
	})

	mc := repro.ObsMiddlewareConfig{
		Flight:   flight.Handler(),
		Incident: incident,
		Metrics:  []func(io.Writer) error{repro.WriteRuntimePrometheus, flight.WritePrometheus, trig.WritePrometheus},
	}
	if agg != nil {
		mc.Traces = repro.TelemetryTracesHandler(col, agg)
		mc.Spans = agg.IngestHandler()
		mc.StatsSections = map[string]func() any{
			"telemetry": func() any {
				return map[string]any{
					"exporter":   exp.StatsJSON(),
					"aggregator": agg.StatsJSON(),
				}
			},
			"forensics": func() any {
				return map[string]any{
					"flight":   flight.StatsJSON(),
					"profiles": trig.StatsJSON(),
				}
			},
		}
		mc.Metrics = append(mc.Metrics, exp.WritePrometheus, agg.WritePrometheus)
	}
	httpSrv := &http.Server{Addr: addr, Handler: repro.ObsMiddlewareWith(col, mc, ev.Handler(plane.Handler(repro.StreamHandler(mgr))))}
	var debugSrv *http.Server
	if debugAddr != "" {
		dash := repro.TelemetryDashboardConfig{Sources: []repro.TelemetrySource{
			{Name: "health", Fetch: func() any { return ev.Health() }},
			{Name: "alerts", Fetch: func() any { return ev.Alerts() }},
			{Name: "autoscale_plan", Fetch: func() any { return ev.Plan() }},
			{Name: "cluster", Fetch: func() any { return cl.Stats() }},
			{Name: "stream", Fetch: func() any { return mgr.Stats() }},
			{Name: "ctrl", Fetch: func() any { return plane.Stats() }},
			{Name: "runtime", Fetch: func() any { return repro.ReadRuntimeVitals() }},
			{Name: "flight", Fetch: func() any { return flight.StatsJSON() }},
		}}
		if agg != nil {
			dash.Sources = append(dash.Sources,
				repro.TelemetrySource{Name: "traces", Fetch: func() any {
					return agg.Assembled(repro.ObsTraceQuery{Limit: 8})
				}},
				repro.TelemetrySource{Name: "telemetry", Fetch: func() any {
					return map[string]any{
						"exporter":   exp.StatsJSON(),
						"aggregator": agg.StatsJSON(),
					}
				}})
		}
		debugSrv = &http.Server{Addr: debugAddr, Handler: repro.TelemetryDebugMux(repro.TelemetryDebugMuxConfig{
			Collector:  col,
			Aggregator: agg,
			Dashboard:  &dash,
			Flight:     flight,
			Incident:   incident,
		})}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				slog.Warn("debug listener failed", "addr", debugAddr, "err", err)
			}
		}()
		slog.Info("debug listener up", "addr", debugAddr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
	}()

	mode := "advise-only"
	if autoscale {
		mode = "enacting"
	}
	fmt.Printf("flcluster: %d cells listening on %s (POST /v1/cells/{id}/solve, POST /v1/solve, POST /v1/stream, POST /v1/handoff, POST/DELETE /v1/cells, POST /v1/rebalance, GET /v1/health, GET /v1/autoscale/plan, GET /debug/alerts, GET /v1/version, GET /v1/stats, GET /metrics); autoscale %s\n",
		cl.Cells(), addr, mode)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// device is one loadgen actor: a scenario owner that drifts, repeats and
// migrates. Each device is driven by exactly one worker goroutine, so its
// fields need no locking.
type device struct {
	id       string
	base     *repro.System
	lastReq  *repro.SolveRequestJSON // previous instance, replayed on repeats
	lastCell int                     // cell that served the last response, -1 before any
}

// runLoadgen replays total requests from `devices` drifting devices over
// the full HTTP stack of an in-process cluster. batchSize > 0 groups each
// worker's stream into POST /v1/solve-batch chunks of that size; churn > 0
// mounts the control plane and performs that many add/drain cycles against
// the admin endpoints while the replay runs.
func runLoadgen(cfg repro.ClusterConfig, total, devices, n int, drift, repeat, migrate float64, conc int, seed int64, batchSize, churn, crash int) error {
	cl := repro.NewCluster(cfg)
	defer cl.Close()
	handler := cl.Handler()
	if churn > 0 || crash > 0 {
		// Drains repin devices wholesale (and crashes invalidate pins);
		// manual per-device migration on top would just fight the control
		// plane for the same pins.
		migrate = 0
		plane := repro.NewControlPlane(cl, nil)
		if crash > 0 {
			// A fast flush keeps the replication lag short against the
			// chaos driver's cadence, so crashes find state to promote.
			rep := repro.NewReplicator(repro.ReplicatorConfig{Router: cl, Interval: 50 * time.Millisecond})
			rep.Start()
			defer rep.Close()
			plane.SetReplicator(rep)
		}
		handler = plane.Handler(handler)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	if devices < 1 {
		devices = 1
	}
	// Each device is driven by exactly one worker; more workers than
	// devices would leave workers with no devices but a share of the
	// request budget, silently shrinking the run.
	if conc > devices {
		conc = devices
	}
	devs := make([]*device, devices)
	for d := range devs {
		sc := repro.DefaultScenario()
		sc.N = n
		base, err := sc.Build(rand.New(rand.NewSource(seed + int64(d))))
		if err != nil {
			return err
		}
		devs[d] = &device{id: fmt.Sprintf("dev-%d", d), base: base, lastCell: -1}
	}

	// Partition devices among workers so each device's request/handoff
	// sequence stays ordered; counts merge after the join.
	type tally struct {
		ok, fail, handoffs int64
		cache, warm, cold  int64
		err                error
	}
	tallies := make([]tally, conc)
	var wg sync.WaitGroup
	began := time.Now()

	// The churn driver adds a cell, lets traffic land on it, then drains a
	// random cell — membership changes racing live device-routed solves.
	churnStop := make(chan struct{})
	churnDone := make(chan churnSummary, 1)
	if churn > 0 {
		go runChurn(ts.URL, cfg.Cells, churn, seed+777, churnStop, churnDone)
	}
	crashStop := make(chan struct{})
	crashDone := make(chan crashSummary, 1)
	if crash > 0 {
		go runCrashChaos(ts.URL, cfg.Cells, crash, seed+778, crashStop, crashDone)
	}
	for wkr := 0; wkr < conc; wkr++ {
		var mine []*device
		for d := wkr; d < devices; d += conc {
			mine = append(mine, devs[d])
		}
		share := total / conc
		if wkr < total%conc {
			share++
		}
		wg.Add(1)
		go func(wkr int, mine []*device, share int) {
			defer wg.Done()
			t := &tallies[wkr]
			rng := rand.New(rand.NewSource(seed + 1000*int64(wkr+1)))
			// nextReq draws one device's next request (handoff, repeat or
			// drift), shared by the per-request and batched modes.
			nextReq := func() (*device, *repro.SolveRequestJSON, error) {
				dev := mine[rng.Intn(len(mine))]
				if dev.lastCell >= 0 && cl.Cells() > 1 && rng.Float64() < migrate {
					to := rng.Intn(cl.Cells() - 1)
					if to >= dev.lastCell {
						to++
					}
					if err := postHandoff(ts.URL, dev.id, dev.lastCell, to); err != nil {
						return nil, nil, err
					}
					dev.lastCell = to
					t.handoffs++
				}
				req := dev.lastReq
				if req == nil || rng.Float64() >= repeat {
					req = driftedReq(dev, drift, rng)
					dev.lastReq = req
				}
				return dev, req, nil
			}
			tallySource := func(source string) {
				switch source {
				case string(repro.ServeSourceCache):
					t.cache++
				case string(repro.ServeSourceWarm):
					t.warm++
				default:
					t.cold++
				}
			}
			for done := 0; done < share; {
				if batchSize > 0 {
					size := batchSize
					if left := share - done; size > left {
						size = left
					}
					devs := make([]*device, size)
					batch := repro.SolveBatchRequestJSON{Requests: make([]repro.SolveRequestJSON, size), Priority: "bulk"}
					for k := 0; k < size; k++ {
						dev, req, err := nextReq()
						if err != nil {
							t.err = err
							return
						}
						devs[k], batch.Requests[k] = dev, *req
					}
					out, status, err := postSolveBatch(ts.URL, batch)
					if err != nil {
						t.err = err
						return
					}
					if status != http.StatusOK {
						t.fail += int64(size)
						done += size
						continue
					}
					for k, it := range out.Results {
						if !it.OK {
							t.fail++
							continue
						}
						t.ok++
						devs[k].lastCell = it.Cell
						tallySource(it.Result.Source)
					}
					done += size
					continue
				}
				dev, req, err := nextReq()
				if err != nil {
					t.err = err
					return
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.err = err
					return
				}
				out, status, err := postSolve(ts.URL, body)
				if err != nil {
					t.err = err
					return
				}
				done++
				if status != http.StatusOK {
					t.fail++
					continue
				}
				t.ok++
				dev.lastCell = out.Cell
				tallySource(out.Source)
			}
		}(wkr, mine, share)
	}
	wg.Wait()
	close(churnStop)
	var churned churnSummary
	if churn > 0 {
		churned = <-churnDone
	}
	close(crashStop)
	var crashed crashSummary
	if crash > 0 {
		crashed = <-crashDone
	}
	elapsed := time.Since(began)
	var agg tally
	for i := range tallies {
		if tallies[i].err != nil {
			return tallies[i].err
		}
		agg.ok += tallies[i].ok
		agg.fail += tallies[i].fail
		agg.handoffs += tallies[i].handoffs
		agg.cache += tallies[i].cache
		agg.warm += tallies[i].warm
		agg.cold += tallies[i].cold
	}

	stats, err := fetchStats(ts.URL)
	if err != nil {
		return err
	}
	mode := "per-request"
	if batchSize > 0 {
		mode = fmt.Sprintf("batched x%d", batchSize)
	}
	if churn > 0 {
		mode += fmt.Sprintf(", churn x%d", churn)
	}
	if crash > 0 {
		mode += fmt.Sprintf(", crash x%d", crash)
	}
	fmt.Printf("loadgen (%s): %d requests (%d ok, %d failed), %d handoffs in %.3fs = %.1f req/s over %d clients, %d devices, %d cells\n",
		mode, agg.ok+agg.fail, agg.ok, agg.fail, agg.handoffs, elapsed.Seconds(),
		float64(agg.ok+agg.fail)/elapsed.Seconds(), conc, devices, cl.Cells())
	fmt.Printf("client sources: %d cache, %d warm, %d cold\n", agg.cache, agg.warm, agg.cold)
	a := stats.Aggregate
	fmt.Printf("cluster: hits %d, misses %d, warm %d, cold %d, deduped %d, rejected %d, handoffs %d (results %d, warm %d), cache entries %d\n",
		a.Hits, a.Misses, a.WarmStarts, a.ColdSolves, a.Deduped, a.Rejected,
		a.Handoffs, a.MigratedResults, a.MigratedWarm, a.CacheEntries)
	fmt.Printf("routing: explicit %d, pinned %d, hashed %d; solve latency p50 %.1f ms, p99 %.1f ms\n",
		a.RoutedExplicit, a.RoutedPinned, a.RoutedHashed, a.SolveP50*1e3, a.SolveP99*1e3)
	if churn > 0 {
		if churned.err != nil {
			return fmt.Errorf("churn driver: %w", churned.err)
		}
		fmt.Printf("churn: %d cells added, %d drained (devices moved %d, results migrated %d), final cells %v, ring generation %d, rerouted %d\n",
			churned.added, churned.drained, churned.movedDevices, churned.migratedResults,
			cl.CellIDs(), a.Generation, a.Rerouted)
	}
	if crash > 0 {
		if crashed.err != nil {
			return fmt.Errorf("crash driver: %w", crashed.err)
		}
		fmt.Printf("crash: %d cells added, %d crashed without drain; promoted %d devices / %d warm seeds to successors, %d dirty lost, max replica lag %.3fs; final cells %v, ring generation %d, rerouted %d\n",
			crashed.added, crashed.crashed, crashed.promotedDevices, crashed.promotedWarm,
			crashed.lostDirty, crashed.maxLag, cl.CellIDs(), a.Generation, a.Rerouted)
	}
	for _, c := range stats.Cells {
		fmt.Printf("  cell %d: requests %d, hits %d, warm %d, cold %d, cache %d\n",
			c.Cell, c.Requests, c.Hits, c.WarmStarts, c.ColdSolves, c.CacheEntries)
	}
	return nil
}

// runAutoscaleWave drives a traffic wave against an autoscaling cluster:
// a hot phase of cache-defeating solves at full concurrency until the
// health advisor's sustained-breach signal adds cells, then silence until
// the sustained-idle signal drains the cluster back to its minimum. The
// whole loop — rolling windows, SLO hysteresis, advisor, control-plane
// enactment — runs exactly as in server mode; the wave just supplies the
// traffic shape. Without -autoscale the advisor only reports (and the run
// skips the drain-back wait, since nothing will act).
func runAutoscaleWave(cfg repro.ClusterConfig, hcfg repro.HealthConfig, autoscale bool, total, devices, n int, drift float64, conc int, seed int64, fopts forensicsOpts) error {
	cl := repro.NewCluster(cfg)
	defer cl.Close()
	plane := repro.NewControlPlane(cl, nil)
	plane.SetLogger(slog.Default())

	// Forensics ride along even in the demo: every request feeds the
	// flight recorder, breaches trip the profile trigger (with
	// -profile-dir), and the wave closes by downloading its own
	// /debug/incident bundle — the transcript in README's "Incident
	// forensics" section is this output.
	col := repro.NewObsCollector(repro.ObsConfig{SampleEvery: 1})
	flight := repro.NewFlightRecorder(0)
	col.SetSink(flight.Observe)
	trig := newProfileTrigger(fopts)
	defer trig.Close()

	// Tighter-than-server hysteresis so the wave turns around in seconds
	// on a fast -health-tick; bounds, tick and cooldown come from flags.
	hcfg.Source = repro.HealthRouterSource(cl)
	hcfg.Logger = slog.Default()
	if autoscale {
		hcfg.Actuator = repro.NewCtrlActuator(plane)
	}
	hcfg.WindowTicks = 8
	hcfg.BreachAfter = 2
	hcfg.ClearAfter = 2
	hcfg.Advisor.ScaleUpAfter = 2
	hcfg.Advisor.ScaleDownAfter = 4
	// The wave's scaling story is queue pressure: judge only the latency
	// and error SLOs, so the zero hit rate of cache-defeating traffic
	// doesn't trip the cache-hit floor and muddy what drove the adds.
	hcfg.Rules = []repro.HealthRule{}
	for _, r := range repro.HealthDefaultRules() {
		if r.Metric != repro.HealthMetricCacheHitRate {
			hcfg.Rules = append(hcfg.Rules, r)
		}
	}
	hcfg.Runtime = func() repro.HealthRuntimeSample {
		v := repro.ReadRuntimeVitals()
		return repro.HealthRuntimeSample{
			Goroutines:             float64(v.Goroutines),
			HeapBytes:              float64(v.HeapBytes),
			GCPauseP99Seconds:      v.GCPauseP99Seconds,
			SchedLatencyP99Seconds: v.SchedLatencyP99Seconds,
		}
	}
	var ev *repro.HealthEvaluator
	hcfg.OnTransition = func(t repro.HealthTransition) {
		if t.To == repro.HealthStateOK {
			return
		}
		if rec, ok := trig.Capture(t.Rule + "-" + string(t.To)); ok {
			ev.RecordEvent("profile", t.Cell,
				fmt.Sprintf("profiles captured in %s (rule %s %s→%s)", rec.Dir, t.Rule, t.From, t.To))
		}
	}
	ev = repro.NewHealthEvaluator(hcfg)
	ev.Start()
	defer ev.Close()
	incident := repro.IncidentHandler(repro.IncidentBundleConfig{
		Origin:   "flcluster-wave",
		Flight:   flight,
		Profiles: trig,
		Sections: []repro.IncidentSection{
			{Name: "alerts", Fetch: func() any { return ev.Alerts() }},
			{Name: "health", Fetch: func() any { return ev.Health() }},
			{Name: "autoscale_plan", Fetch: func() any { return ev.Plan() }},
			{Name: "stats", Fetch: func() any { return cl.Stats() }},
		},
	})
	mc := repro.ObsMiddlewareConfig{
		Flight:   flight.Handler(),
		Incident: incident,
		Metrics:  []func(io.Writer) error{repro.WriteRuntimePrometheus, flight.WritePrometheus, trig.WritePrometheus},
	}
	ts := httptest.NewServer(repro.ObsMiddlewareWith(col, mc, ev.Handler(plane.Handler(cl.Handler()))))
	defer ts.Close()

	if devices < 1 {
		devices = 1
	}
	if conc > devices {
		conc = devices
	}
	devs := make([]*device, devices)
	for d := range devs {
		sc := repro.DefaultScenario()
		sc.N = n
		base, err := sc.Build(rand.New(rand.NewSource(seed + int64(d))))
		if err != nil {
			return err
		}
		devs[d] = &device{id: fmt.Sprintf("dev-%d", d), base: base, lastCell: -1}
	}

	// Peak-cell monitor: membership moves on the evaluator's clock, not the
	// request path, so sample it continuously.
	monStop := make(chan struct{})
	monDone := make(chan int, 1)
	go func() {
		peak := cl.Cells()
		tk := time.NewTicker(20 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-monStop:
				monDone <- peak
				return
			case <-tk.C:
				if c := cl.Cells(); c > peak {
					peak = c
				}
			}
		}
	}()

	// Hot phase: every request is a fresh drift (no repeats), so nothing
	// caches and every solve queues behind the worker pool.
	type tally struct {
		ok, fail int64
		err      error
	}
	tallies := make([]tally, conc)
	var wg sync.WaitGroup
	began := time.Now()
	for wkr := 0; wkr < conc; wkr++ {
		var mine []*device
		for d := wkr; d < devices; d += conc {
			mine = append(mine, devs[d])
		}
		share := total / conc
		if wkr < total%conc {
			share++
		}
		wg.Add(1)
		go func(wkr int, mine []*device, share int) {
			defer wg.Done()
			t := &tallies[wkr]
			rng := rand.New(rand.NewSource(seed + 1000*int64(wkr+1)))
			for done := 0; done < share; done++ {
				dev := mine[rng.Intn(len(mine))]
				body, err := json.Marshal(driftedReq(dev, drift, rng))
				if err != nil {
					t.err = err
					return
				}
				out, status, err := postSolve(ts.URL, body)
				if err != nil {
					t.err = err
					return
				}
				if status != http.StatusOK {
					t.fail++
					continue
				}
				t.ok++
				dev.lastCell = out.Cell
			}
		}(wkr, mine, share)
	}
	wg.Wait()
	hotElapsed := time.Since(began)
	var agg tally
	for i := range tallies {
		if tallies[i].err != nil {
			return tallies[i].err
		}
		agg.ok += tallies[i].ok
		agg.fail += tallies[i].fail
	}
	hotHealth, err := fetchHealth(ts.URL)
	if err != nil {
		return err
	}
	hotCells := cl.Cells()

	// Idle phase: no traffic at all. Wait for the advisor to walk the
	// cluster back down to MinCells, one cooldown-spaced drain at a time.
	minCells := hcfg.Advisor.MinCells
	if minCells < 1 {
		minCells = 1
	}
	deadline := time.Now().Add(time.Duration(hotCells)*hcfg.Advisor.Cooldown + 30*time.Second)
	drained := true
	for autoscale && cl.Cells() > minCells {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(monStop)
	peak := <-monDone
	// Let the evaluator tick past the final membership change before
	// snapshotting, so the report reflects the settled cluster.
	time.Sleep(2 * hcfg.Tick)

	finalHealth, err := fetchHealth(ts.URL)
	if err != nil {
		return err
	}
	plan, err := fetchPlan(ts.URL)
	if err != nil {
		return err
	}
	alerts, alertsTotal, err := fetchAlerts(ts.URL)
	if err != nil {
		return err
	}
	ps := plane.Stats()

	fmt.Printf("wave: hot phase %d requests (%d ok, %d failed) over %d clients in %.2fs = %.1f req/s\n",
		agg.ok+agg.fail, agg.ok, agg.fail, conc, hotElapsed.Seconds(),
		float64(agg.ok+agg.fail)/hotElapsed.Seconds())
	fmt.Printf("wave: cells %d -> peak %d -> final %d (autoscale adds %d, drains %d; bounds [%d,%d])\n",
		cfg.Cells, peak, cl.Cells(), ps.AutoscaleAdds, ps.AutoscaleDrains,
		minCells, hcfg.Advisor.MaxCells)
	fmt.Printf("health: after hot phase %s (%d cells), final %s (%d cells)\n",
		hotHealth.Status, len(hotHealth.Cells), finalHealth.Status, len(finalHealth.Cells))
	fmt.Printf("plan: action=%s cells=%d reason=%q\n", plan.Action, plan.Cells, plan.Reason)
	fmt.Printf("alerts (%d total, %d retained), oldest first:\n", alertsTotal, len(alerts))
	const maxAlertLines = 40
	if len(alerts) > maxAlertLines {
		fmt.Printf("  ... %d earlier events elided ...\n", len(alerts)-maxAlertLines)
		alerts = alerts[:maxAlertLines]
	}
	for i := len(alerts) - 1; i >= 0; i-- {
		fmt.Printf("  [%s] %s\n", alerts[i].Kind, alerts[i].Message)
	}

	// One-shot forensics: download the incident bundle this wave produced
	// and list its table of contents, exactly as an operator would.
	fs := flight.StatsJSON()
	ps2 := trig.StatsJSON()
	fmt.Printf("forensics: flight observed %d events (%d retained, %d dropped); profiles captured %d, suppressed %d\n",
		fs.Observed, fs.Retained, fs.Dropped, ps2.Captures, ps2.Suppressed)
	size, names, err := fetchIncident(ts.URL)
	if err != nil {
		return fmt.Errorf("wave: incident bundle: %w", err)
	}
	fmt.Printf("incident: GET /debug/incident -> %d bytes (tar.gz, %d entries):\n", size, len(names))
	for _, name := range names {
		fmt.Printf("  %s\n", name)
	}
	if !drained {
		return fmt.Errorf("wave: cluster did not drain back to %d cells before deadline (now %d)", minCells, cl.Cells())
	}
	return nil
}

// fetchIncident downloads GET /debug/incident and returns the compressed
// size plus the bundle's table of contents in archive order.
func fetchIncident(baseURL string) (int, []string, error) {
	resp, err := http.Get(baseURL + "/debug/incident")
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	var names []string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, nil, err
		}
		names = append(names, hdr.Name)
	}
	return len(raw), names, nil
}

// fetchHealth decodes GET /v1/health (any status — breached answers 503).
func fetchHealth(baseURL string) (repro.HealthJSON, error) {
	var h repro.HealthJSON
	resp, err := http.Get(baseURL + "/v1/health")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}

// fetchPlan decodes GET /v1/autoscale/plan.
func fetchPlan(baseURL string) (repro.AutoscalePlan, error) {
	var p repro.AutoscalePlan
	resp, err := http.Get(baseURL + "/v1/autoscale/plan")
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&p)
	return p, err
}

// fetchAlerts decodes GET /debug/alerts (newest first).
func fetchAlerts(baseURL string) ([]repro.HealthAlert, int64, error) {
	var body struct {
		Alerts []repro.HealthAlert `json:"alerts"`
		Total  int64               `json:"total"`
	}
	resp, err := http.Get(baseURL + "/debug/alerts")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&body)
	return body.Alerts, body.Total, err
}

// churnSummary is what the churn driver hands back after the replay.
type churnSummary struct {
	added, drained  int
	movedDevices    int
	migratedResults int
	err             error
}

// runChurn performs up to `cycles` add-cell/drain-cell rounds against the
// live admin API, pausing briefly between membership changes so traffic
// actually lands on each configuration, and stops early when the replay
// finishes.
func runChurn(baseURL string, initialCells, cycles int, seed int64, stop <-chan struct{}, done chan<- churnSummary) {
	var sum churnSummary
	defer func() { done <- sum }()
	rng := rand.New(rand.NewSource(seed))
	cells := make([]int, initialCells)
	for i := range cells {
		cells[i] = i
	}
	pause := func() bool {
		select {
		case <-stop:
			return false
		case <-time.After(25 * time.Millisecond):
			return true
		}
	}
	for i := 0; i < cycles; i++ {
		select {
		case <-stop:
			return
		default:
		}
		var add repro.AddCellReport
		if err := doCtrl(baseURL+"/v1/cells", http.MethodPost, &add); err != nil {
			sum.err = err
			return
		}
		sum.added++
		cells = add.Cells
		if !pause() {
			return
		}
		victim := cells[rng.Intn(len(cells))]
		var drain repro.DrainReport
		if err := doCtrl(fmt.Sprintf("%s/v1/cells/%d", baseURL, victim), http.MethodDelete, &drain); err != nil {
			sum.err = err
			return
		}
		sum.drained++
		sum.movedDevices += drain.Handoff.Devices
		sum.migratedResults += drain.Handoff.MigratedResults
		cells = drain.Cells
		if !pause() {
			return
		}
	}
}

// crashSummary is what the crash-chaos driver hands back after the replay.
type crashSummary struct {
	added, crashed  int
	promotedDevices int
	promotedWarm    int
	lostDirty       int
	maxLag          float64
	err             error
}

// runCrashChaos performs up to `cycles` add-cell/crash-cell rounds against
// the live admin API: each round adds a fresh cell, lets traffic land on
// the new ring, then crashes a random cell WITHOUT draining it — its state
// dies, and the control plane promotes whatever the replicator had shipped
// for it. Pauses between membership changes let the replication flush keep
// up; stops early when the replay finishes.
func runCrashChaos(baseURL string, initialCells, cycles int, seed int64, stop <-chan struct{}, done chan<- crashSummary) {
	var sum crashSummary
	defer func() { done <- sum }()
	rng := rand.New(rand.NewSource(seed))
	cells := make([]int, initialCells)
	for i := range cells {
		cells[i] = i
	}
	pause := func() bool {
		select {
		case <-stop:
			return false
		case <-time.After(100 * time.Millisecond):
			return true
		}
	}
	for i := 0; i < cycles; i++ {
		select {
		case <-stop:
			return
		default:
		}
		var add repro.AddCellReport
		if err := doCtrl(baseURL+"/v1/cells", http.MethodPost, &add); err != nil {
			sum.err = err
			return
		}
		sum.added++
		cells = add.Cells
		if !pause() {
			return
		}
		victim := cells[rng.Intn(len(cells))]
		var crash repro.CrashReport
		if err := doCtrl(fmt.Sprintf("%s/v1/cells/%d/crash", baseURL, victim), http.MethodPost, &crash); err != nil {
			sum.err = err
			return
		}
		sum.crashed++
		sum.promotedDevices += crash.Promotion.Devices
		sum.promotedWarm += crash.Promotion.WarmSeeds
		sum.lostDirty += crash.Promotion.LostDirty
		if crash.Promotion.MaxLagSeconds > sum.maxLag {
			sum.maxLag = crash.Promotion.MaxLagSeconds
		}
		cells = crash.Cells
		if !pause() {
			return
		}
	}
}

// doCtrl fires one body-less admin request and decodes the JSON report.
func doCtrl(url, method string, out any) error {
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// driftedReq builds a fresh solve request for the device with log-normally
// drifted gains.
func driftedReq(dev *device, drift float64, rng *rand.Rand) *repro.SolveRequestJSON {
	drifted := *dev.base
	drifted.Devices = append([]repro.Device(nil), dev.base.Devices...)
	for j := range drifted.Devices {
		drifted.Devices[j].Gain *= math.Exp(drift * rng.NormFloat64())
	}
	req := repro.SolveRequestJSON{System: repro.SystemToJSON(&drifted), DeviceID: dev.id}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	return &req
}

func postSolveBatch(baseURL string, batch repro.SolveBatchRequestJSON) (repro.ClusterSolveBatchResponseJSON, int, error) {
	var out repro.ClusterSolveBatchResponseJSON
	body, err := json.Marshal(batch)
	if err != nil {
		return out, 0, err
	}
	resp, err := http.Post(baseURL+"/v1/solve-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return out, resp.StatusCode, err
		}
	}
	return out, resp.StatusCode, nil
}

func postSolve(baseURL string, body []byte) (repro.ClusterSolveResponseJSON, int, error) {
	var out repro.ClusterSolveResponseJSON
	resp, err := http.Post(baseURL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return out, resp.StatusCode, err
		}
	}
	return out, resp.StatusCode, nil
}

func postHandoff(baseURL, deviceID string, from, to int) error {
	body, err := json.Marshal(repro.HandoffRequestJSON{DeviceID: deviceID, FromCell: from, ToCell: to})
	if err != nil {
		return err
	}
	resp, err := http.Post(baseURL+"/v1/handoff", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("handoff %s %d->%d: status %d", deviceID, from, to, resp.StatusCode)
	}
	return nil
}

func fetchStats(baseURL string) (repro.ClusterStats, error) {
	var stats repro.ClusterStats
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&stats)
	return stats, err
}

// streamDev is one loadgen actor in -stream mode: a device that owns an
// open delta session and a live NDJSON connection. Driven by exactly one
// worker goroutine, so no locking.
type streamDev struct {
	id       string
	sys      *repro.System // tracked authoritative gains
	session  string
	conn     *repro.StreamDeltaConn
	lastCell int
	seq      uint64
}

// streamClusterStats is the combined /v1/stats body of a stream-wrapped
// cluster.
type streamClusterStats struct {
	repro.ClusterStats
	Stream repro.StreamSnapshot `json:"stream"`
}

// runStreamLoadgen replays total sparse gain deltas through per-device
// delta sessions over the cluster's HTTP stack. With probability migrate a
// device fires POST /v1/handoff between two deltas of its OPEN session —
// the stream keeps flowing and the post-move re-solves should stay warm
// and dual-seeded off the migrated cache state (watch the client cells and
// dual-seeded counts).
func runStreamLoadgen(cfg repro.ClusterConfig, scfg repro.StreamConfig, total, devices, n int, drift, migrate float64, conc int, seed int64, deltaDevs int) error {
	cl := repro.NewCluster(cfg)
	defer cl.Close()
	mgr := repro.NewStreamManager(repro.NewStreamClusterBackend(cl), scfg)
	defer mgr.Close()
	ts := httptest.NewServer(repro.StreamHandler(mgr))
	defer ts.Close()

	if devices < 1 {
		devices = 1
	}
	if conc > devices {
		conc = devices
	}
	if deltaDevs < 1 {
		deltaDevs = 1
	}

	type tally struct {
		ok, fail, handoffs     int64
		cache, warm, cold      int64
		dualSeeded, postMove   int64
		postMoveWarm, newtonIt int64
		err                    error
	}
	tallies := make([]tally, conc)
	var wg sync.WaitGroup
	began := time.Now()
	for wkr := 0; wkr < conc; wkr++ {
		var mine []int
		for d := wkr; d < devices; d += conc {
			mine = append(mine, d)
		}
		share := total / conc
		if wkr < total%conc {
			share++
		}
		wg.Add(1)
		go func(wkr int, mine []int, share int) {
			defer wg.Done()
			t := &tallies[wkr]
			rng := rand.New(rand.NewSource(seed + 1000*int64(wkr+1)))
			devs := make([]*streamDev, 0, len(mine))
			defer func() {
				for _, dev := range devs {
					if dev.conn != nil {
						dev.conn.Close()
					}
				}
			}()
			// Open one session (and one live delta connection) per device.
			for _, d := range mine {
				sc := repro.DefaultScenario()
				sc.N = n
				sys, err := sc.Build(rand.New(rand.NewSource(seed + int64(d))))
				if err != nil {
					t.err = err
					return
				}
				dev := &streamDev{id: fmt.Sprintf("dev-%d", d), sys: sys}
				openReq := repro.SolveRequestJSON{System: repro.SystemToJSON(sys), DeviceID: dev.id}
				openReq.Weights.W1, openReq.Weights.W2 = 0.5, 0.5
				open, err := repro.StreamOpenSession(ts.URL, openReq)
				if err != nil {
					t.err = err
					return
				}
				dev.session, dev.lastCell = open.SessionID, open.Cell
				dev.conn, err = repro.StreamOpenDeltas(ts.URL, dev.session)
				if err != nil {
					t.err = err
					return
				}
				devs = append(devs, dev)
			}
			for done := 0; done < share; done++ {
				dev := devs[rng.Intn(len(devs))]
				migrated := false
				if cl.Cells() > 1 && rng.Float64() < migrate {
					to := rng.Intn(cl.Cells() - 1)
					if to >= dev.lastCell {
						to++
					}
					if err := postHandoff(ts.URL, dev.id, dev.lastCell, to); err != nil {
						t.err = err
						return
					}
					t.handoffs++
					migrated = true
				}
				dev.seq++
				dj := repro.StreamDeltaJSON{Seq: dev.seq, Gains: make(map[int]float64, deltaDevs)}
				for len(dj.Gains) < deltaDevs && len(dj.Gains) < n {
					i := rng.Intn(n)
					if _, ok := dj.Gains[i]; ok {
						continue
					}
					g := dev.sys.Devices[i].Gain * math.Exp(drift*rng.NormFloat64())
					dj.Gains[i] = g
					dev.sys.Devices[i].Gain = g
				}
				if err := dev.conn.Send(dj); err != nil {
					t.err = err
					return
				}
				u, err := dev.conn.Recv()
				if err != nil {
					t.err = err
					return
				}
				if !u.OK || u.Result == nil {
					t.fail++
					continue
				}
				t.ok++
				dev.lastCell = u.Cell
				switch u.Result.Source {
				case string(repro.ServeSourceCache):
					t.cache++
				case string(repro.ServeSourceWarm):
					t.warm++
				default:
					t.cold++
				}
				if u.Result.DualSeeded {
					t.dualSeeded++
				}
				t.newtonIt += int64(u.Result.NewtonIters)
				if migrated {
					t.postMove++
					if u.Result.Source == string(repro.ServeSourceWarm) || u.Result.Source == string(repro.ServeSourceCache) {
						t.postMoveWarm++
					}
				}
			}
		}(wkr, mine, share)
	}
	wg.Wait()
	elapsed := time.Since(began)
	var agg tally
	for i := range tallies {
		if tallies[i].err != nil {
			return tallies[i].err
		}
		agg.ok += tallies[i].ok
		agg.fail += tallies[i].fail
		agg.handoffs += tallies[i].handoffs
		agg.cache += tallies[i].cache
		agg.warm += tallies[i].warm
		agg.cold += tallies[i].cold
		agg.dualSeeded += tallies[i].dualSeeded
		agg.postMove += tallies[i].postMove
		agg.postMoveWarm += tallies[i].postMoveWarm
		agg.newtonIt += tallies[i].newtonIt
	}

	var stats streamClusterStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	deltas := agg.ok + agg.fail
	fmt.Printf("loadgen (stream): %d deltas over %d sessions (%d ok, %d failed), %d handoffs in %.3fs = %.1f upd/s, %d cells\n",
		deltas, devices, agg.ok, agg.fail, agg.handoffs, elapsed.Seconds(),
		float64(deltas)/elapsed.Seconds(), cl.Cells())
	perDelta := 0.0
	if agg.ok > 0 {
		perDelta = float64(agg.newtonIt) / float64(agg.ok)
	}
	fmt.Printf("client sources: %d cache, %d warm, %d cold; dual-seeded %d; newton/delta %.2f\n",
		agg.cache, agg.warm, agg.cold, agg.dualSeeded, perDelta)
	fmt.Printf("post-handoff deltas: %d, of which %d warm/cached off migrated state\n",
		agg.postMove, agg.postMoveWarm)
	a := stats.Aggregate
	fmt.Printf("cluster: hits %d, misses %d, warm %d, cold %d, handoffs %d (results %d, warm %d)\n",
		a.Hits, a.Misses, a.WarmStarts, a.ColdSolves, a.Handoffs, a.MigratedResults, a.MigratedWarm)
	fmt.Printf("stream:  sessions %d open / %d opened, deltas %d, errors %d, dual-seeded %d\n",
		stats.Stream.ActiveSessions, stats.Stream.SessionsOpened, stats.Stream.Deltas,
		stats.Stream.DeltaErrors, stats.Stream.SolveDualSeeded)
	return nil
}
