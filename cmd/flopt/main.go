// Command flopt generates a random FL deployment with the paper's default
// parameters and runs the proposed resource-allocation algorithm on it,
// printing the per-device allocation and the aggregate energy/latency
// accounting.
//
// Usage:
//
//	flopt [-n 50] [-radius 0.25] [-seed 1] [-w1 0.5] [-pmax 12] [-fmax 2e9]
//	      [-deadline 0] [-verbose]
//
// With -deadline T > 0 the optimizer minimizes energy under the fixed total
// completion time T seconds (the Figs. 7-8 setting); otherwise it minimizes
// the weighted objective w1*E + (1-w1)*T.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"repro"
)

func main() {
	var (
		n          = flag.Int("n", 50, "number of devices")
		radius     = flag.Float64("radius", 0.25, "placement disk radius (km)")
		seed       = flag.Int64("seed", 1, "RNG seed for the device draw")
		w1         = flag.Float64("w1", 0.5, "energy weight w1 in [0,1]; w2 = 1-w1")
		pmaxDBm    = flag.Float64("pmax", 12, "maximum transmit power (dBm)")
		fmaxHz     = flag.Float64("fmax", 2e9, "maximum CPU frequency (Hz)")
		deadline   = flag.Float64("deadline", 0, "fixed total completion time in seconds (0 = weighted mode)")
		verbose    = flag.Bool("verbose", false, "print the per-device allocation table and solver trace")
		spanExport = flag.String("span-export", "", "POST the run's solve span to this aggregator URL (a running service's /debug/spans)")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address (net/http/pprof + /debug/traces + /debug/dashboard + /debug/flight + /debug/incident + /metrics)")
		logLevel   = flag.String("log-level", "info", "structured log level (debug|info|warn|error)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		version    = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.ObsVersionString())
		return
	}
	if _, err := repro.ObsSetupLogger(os.Stderr, *logLevel, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "flopt:", err)
		os.Exit(1)
	}

	// Graceful interrupt: a batch run holds no durable state, so SIGINT/
	// SIGTERM just exits cleanly with the conventional 128+SIGINT status.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "flopt: received %v, exiting\n", s)
		os.Exit(130)
	}()

	// With -span-export the one-shot solve still participates in the
	// telemetry plane: its solve span ships to a running aggregator, where
	// batch runs show up next to the serving traffic they compete with.
	// With -debug-addr the run also mounts the same debug surface as the
	// serving cmds (pprof, /debug/traces, /debug/dashboard, /debug/flight,
	// /debug/incident) — no more 404s on the endpoints operators expect.
	var tr *repro.ObsTrace
	var col *repro.ObsCollector
	var flight *repro.FlightRecorder
	if *spanExport != "" || *debugAddr != "" {
		col = repro.NewObsCollector(repro.ObsConfig{SampleEvery: 1})
		flight = repro.NewFlightRecorder(0)
		var exp *repro.TelemetryExporter
		if *spanExport != "" {
			exp = repro.NewTelemetryExporter(repro.TelemetryExporterConfig{Origin: "flopt", Target: *spanExport})
			defer exp.Close()
		}
		col.SetSink(func(t repro.ObsTraceJSON) {
			if exp != nil {
				exp.Enqueue(t)
			}
			flight.Observe(t)
		})
		_, tr = col.StartTrace(context.Background())
	}
	if *debugAddr != "" {
		dash := repro.TelemetryDashboardConfig{Sources: []repro.TelemetrySource{
			{Name: "runtime", Fetch: func() any { return repro.ReadRuntimeVitals() }},
			{Name: "flight", Fetch: func() any { return flight.StatsJSON() }},
		}}
		debugSrv := &http.Server{Addr: *debugAddr, Handler: repro.TelemetryDebugMux(repro.TelemetryDebugMuxConfig{
			Collector: col,
			Dashboard: &dash,
			Flight:    flight,
			Incident:  repro.IncidentHandler(repro.IncidentBundleConfig{Origin: "flopt", Flight: flight}),
			Metrics:   repro.TelemetryMetricsHandler(repro.WriteRuntimePrometheus, flight.WritePrometheus),
		})}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "flopt: debug listener failed:", err)
			}
		}()
	}

	if err := run(*n, *radius, *seed, *w1, *pmaxDBm, *fmaxHz, *deadline, *verbose, tr); err != nil {
		fmt.Fprintln(os.Stderr, "flopt:", err)
		os.Exit(1)
	}
}

func run(n int, radius float64, seed int64, w1, pmaxDBm, fmaxHz, deadline float64, verbose bool, tr *repro.ObsTrace) error {
	sc := repro.DefaultScenario()
	sc.N = n
	sc.RadiusKm = radius
	sc.PMaxDBm = pmaxDBm
	sc.FMaxHz = fmaxHz
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	opts := repro.Options{}
	w := repro.Weights{W1: w1, W2: 1 - w1}
	if deadline > 0 {
		opts.Mode = repro.ModeDeadline
		opts.TotalDeadline = deadline
		w = repro.Weights{W1: 1, W2: 0}
	}
	began := time.Now()
	res, err := repro.Optimize(s, w, opts)
	if err != nil {
		return err
	}
	tr.RecordDur("solve", began, time.Since(began), repro.ObsAttr{Detail: "flopt", Value: int64(n)})
	tr.Finish()

	m := res.Metrics
	fmt.Printf("devices: %d, radius: %g km, seed: %d\n", n, radius, seed)
	if deadline > 0 {
		fmt.Printf("mode: deadline-constrained (T = %g s)\n", deadline)
	} else {
		fmt.Printf("mode: weighted (w1 = %g, w2 = %g)\n", w.W1, w.W2)
	}
	fmt.Printf("objective:            %.6g\n", res.Objective)
	fmt.Printf("total energy:         %.6g J (transmission %.6g J, computation %.6g J)\n",
		m.TotalEnergy, m.TransEnergy, m.CompEnergy)
	fmt.Printf("total completion:     %.6g s (%.6g s/round x %g rounds)\n",
		m.TotalTime, m.RoundTime, s.GlobalRounds)
	fmt.Printf("outer iterations:     %d (converged: %t)\n", len(res.Iterations), res.Converged)

	if verbose {
		fmt.Println()
		fmt.Print(res.Summary())
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "dev\tp (mW)\tB (kHz)\tf (MHz)\trate (kbit/s)\tT_up (ms)\tT_cmp (ms)")
		for i := range s.Devices {
			fmt.Fprintf(tw, "%d\t%.3f\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n",
				i,
				res.Allocation.Power[i]*1e3,
				res.Allocation.Bandwidth[i]/1e3,
				res.Allocation.Freq[i]/1e6,
				m.Rates[i]/1e3,
				m.UploadTimes[i]*1e3,
				m.CompTimes[i]*1e3)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
