package main

import "testing"

func TestRunWeightedMode(t *testing.T) {
	if err := run(8, 0.25, 1, 0.5, 12, 2e9, 0, true, nil); err != nil {
		t.Fatalf("weighted run: %v", err)
	}
}

func TestRunDeadlineMode(t *testing.T) {
	if err := run(8, 0.25, 1, 0.5, 12, 2e9, 200, false, nil); err != nil {
		t.Fatalf("deadline run: %v", err)
	}
}

func TestRunInfeasibleDeadline(t *testing.T) {
	if err := run(8, 0.25, 1, 0.5, 12, 2e9, 0.001, false, nil); err == nil {
		t.Fatal("expected infeasibility error for a 1 ms total deadline")
	}
}

func TestRunBadScenario(t *testing.T) {
	if err := run(0, 0.25, 1, 0.5, 12, 2e9, 0, false, nil); err == nil {
		t.Fatal("expected error for zero devices")
	}
}
