package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// TestServedDefaultScenario exercises the acceptance path: the server
// answers POST /v1/solve with a valid allocation for the default scenario,
// and GET /v1/stats reports nonzero hit counts after repeated identical
// requests.
func TestServedDefaultScenario(t *testing.T) {
	srv := repro.NewServer(repro.ServeConfig{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := repro.DefaultScenario()
	system, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	req := repro.SolveRequestJSON{System: repro.SystemToJSON(system)}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	var out struct {
		PowerW      []float64 `json:"power_w"`
		BandwidthHz []float64 `json:"bandwidth_hz"`
		FreqHz      []float64 `json:"freq_hz"`
		Objective   float64   `json:"objective"`
		Source      string    `json:"source"`
	}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	alloc := repro.Allocation{Power: out.PowerW, Bandwidth: out.BandwidthHz, Freq: out.FreqHz}
	if err := system.Validate(alloc, 1e-6); err != nil {
		t.Fatalf("served allocation infeasible: %v", err)
	}
	if out.Source != "cache" {
		t.Fatalf("third identical request source = %q, want cache", out.Source)
	}

	stats, err := fetchStats(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits < 2 {
		t.Fatalf("stats after repeated identical requests: hits = %d, want >= 2", stats.Hits)
	}
	if stats.ColdSolves != 1 {
		t.Fatalf("cold solves = %d, want 1", stats.ColdSolves)
	}
}

// TestRunLoadgen runs the load generator end to end over the HTTP stack.
func TestRunLoadgen(t *testing.T) {
	if err := runLoadgen(repro.ServeConfig{}, 12, 6, 0.05, 0.3, 3, 1, 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunLoadgenBatch runs the batched replay mode through /v1/solve-batch.
func TestRunLoadgenBatch(t *testing.T) {
	if err := runLoadgen(repro.ServeConfig{}, 12, 6, 0.05, 0.3, 2, 1, 4); err != nil {
		t.Fatal(err)
	}
}
