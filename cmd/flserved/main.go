// Command flserved runs the allocation service: an HTTP front end over the
// concurrent solver pool of internal/serve, with a fingerprint-keyed
// solution cache and topology-bucket warm starts.
//
// Usage:
//
//	flserved [-addr :8080] [-workers 0] [-queue 0] [-cache 4096]
//	         [-ttl 10m] [-timeout 30s] [-gainres 0.25]
//	         [-sessions 1024] [-session-ttl 5m]
//	         [-snapshot-dir DIR] [-snapshot-interval 30s]
//
// With -snapshot-dir the process persists its cache/warm/dual state and
// open stream sessions to DIR/flserved.snap on the interval and on
// graceful shutdown, and restores the file at boot — post-restart solves
// are warm + dual-seeded and clients resume sessions at the next sequence
// number. A corrupt or version-skewed snapshot degrades to a cold start.
//
// Endpoints:
//
//	POST   /v1/solve              {"system": {...}, "weights": {"w1": 0.5, "w2": 0.5}}
//	POST   /v1/solve-batch        {"requests": [...], "priority": "bulk"}
//	POST   /v1/stream             open a gain-delta session (full system once)
//	POST   /v1/stream/{id}/deltas NDJSON deltas in, NDJSON re-solves out
//	DELETE /v1/stream/{id}        close a session
//	GET    /v1/health             rolling-window SLO standing (503 when
//	                              breached — readiness probe)
//	GET    /debug/alerts          the alert-event ring
//	GET    /v1/version            build/version info (also: -version flag)
//	GET    /v1/stats              counters (server + "stream" + "health")
//	GET    /metrics               Prometheus text exposition (incl. the
//	                              obs_runtime_* Go vitals)
//	GET    /debug/flight          the flight recorder's wide-event window
//	GET    /debug/incident        one-shot incident bundle (tar.gz)
//
// With -profile-dir DIR the process captures CPU/heap/goroutine/mutex
// pprof profiles into DIR whenever an SLO rule leaves ok (rate-limited by
// -profile-min-interval, bounded retention) and files the capture in the
// alert ring; /debug/incident packs the latest captures into its bundle.
//
// A health evaluator runs over the server (the single-cell analogue of
// flcluster's: the one serve pool is observed as cell 0) — advise-only,
// there is no membership to actuate here.
//
// Load-generator mode replays randomly-drifted copies of the default
// scenario against an in-process instance of the same HTTP stack and prints
// client-side throughput plus the server's own counters:
//
//	flserved -loadgen 200 [-n 15] [-drift 0.05] [-repeat 0.3] [-conc 8]
//	         [-seed 1] [-batch 0] [-stream] [-deltadev 3]
//
// Each request is, with probability -repeat, an exact replay of an earlier
// instance (exercising the cache), otherwise a fresh log-normal drift of
// every channel gain by -drift nepers (exercising the warm-start path).
// With -batch B the stream is replayed through POST /v1/solve-batch in
// bulk-priority chunks of B instances, amortizing decode and dispatch.
// With -stream each client opens one delta session and replays its share as
// sparse NDJSON gain deltas (-deltadev gains drifted per update) over a
// single live connection, exercising the streaming subsystem's incremental
// re-solve path instead of whole-system re-POSTs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "queue depth (0 = 4x workers)")
		cache   = flag.Int("cache", 4096, "solution cache entries")
		ttl     = flag.Duration("ttl", 10*time.Minute, "solution cache TTL")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request default deadline")
		gainres = flag.Float64("gainres", 0.25, "channel-gain fingerprint bucket (dB)")

		sessions   = flag.Int("sessions", 1024, "max concurrent stream sessions")
		sessionTTL = flag.Duration("session-ttl", 5*time.Minute, "stream session idle TTL")

		logLevel   = flag.String("log-level", "info", "structured log level (debug|info|warn|error)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address (net/http/pprof + /debug/traces + /debug/dashboard)")
		traceN     = flag.Int("trace-sample", 16, "retain 1 in N traces in the debug ring (0 disables tracing)")
		traceSlow  = flag.Duration("trace-slow", 0, "slow-solve promotion threshold (0 = 250ms default)")
		spanExport = flag.String("span-export", "", "also POST span batches to this aggregator URL (a front router's /debug/spans); spans always assemble locally")

		loadgen  = flag.Int("loadgen", 0, "replay this many drifted scenarios and exit")
		n        = flag.Int("n", 15, "loadgen: devices per scenario")
		drift    = flag.Float64("drift", 0.05, "loadgen: per-request log-normal gain drift (nepers)")
		repeat   = flag.Float64("repeat", 0.3, "loadgen: probability of replaying an earlier instance")
		conc     = flag.Int("conc", 8, "loadgen: concurrent clients")
		seed     = flag.Int64("seed", 1, "loadgen: RNG seed")
		batch    = flag.Int("batch", 0, "loadgen: replay through POST /v1/solve-batch in batches of this size (0 = per-request /v1/solve)")
		stream   = flag.Bool("stream", false, "loadgen: replay through per-client NDJSON delta sessions (POST /v1/stream)")
		deltadev = flag.Int("deltadev", 3, "loadgen -stream: devices drifted per delta")

		healthTick   = flag.Duration("health-tick", 2*time.Second, "health evaluator polling interval")
		snapshotDir  = flag.String("snapshot-dir", "", "persist periodic state snapshots in this directory and restore at boot (empty disables)")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence (<0 saves only on shutdown)")

		profileDir = flag.String("profile-dir", "", "capture pprof profiles here on SLO breaches (empty disables the trigger)")
		profileCPU = flag.Float64("profile-cpu-seconds", 1.0, "triggered CPU profile sampling window (seconds)")
		profileMin = flag.Duration("profile-min-interval", 2*time.Minute, "minimum interval between triggered captures")

		version = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.ObsVersionString())
		return
	}

	if _, err := repro.ObsSetupLogger(os.Stderr, *logLevel, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "flserved:", err)
		os.Exit(1)
	}

	cfg := repro.ServeConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		CacheTTL:       *ttl,
		DefaultTimeout: *timeout,
		Quantization:   repro.ServeQuantization{GainResolutionDB: *gainres},
	}
	scfg := repro.StreamConfig{MaxSessions: *sessions, IdleTTL: *sessionTTL}

	var err error
	switch {
	case *loadgen > 0 && *stream:
		err = runStreamLoadgen(cfg, scfg, *loadgen, *n, *drift, *conc, *seed, *deltadev)
	case *loadgen > 0:
		err = runLoadgen(cfg, *loadgen, *n, *drift, *repeat, *conc, *seed, *batch)
	default:
		err = runServer(cfg, scfg, *healthTick, *addr, *debugAddr, *traceN, *traceSlow, *spanExport, *snapshotDir, *snapInterval,
			forensicsOpts{Dir: *profileDir, CPUSeconds: *profileCPU, MinInterval: *profileMin})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserved:", err)
		os.Exit(1)
	}
}

// forensicsOpts carries the -profile-* flags into runServer.
type forensicsOpts struct {
	Dir         string
	CPUSeconds  float64
	MinInterval time.Duration
}

// newProfileTrigger builds the SLO-triggered pprof capturer from the
// -profile-* flags (nil when -profile-dir is unset — every ProfileTrigger
// method is nil-safe, so wiring stays unconditional).
func newProfileTrigger(opts forensicsOpts) *repro.ProfileTrigger {
	if opts.Dir == "" {
		return nil
	}
	trig, err := repro.NewProfileTrigger(repro.ProfileConfig{
		Dir:         opts.Dir,
		CPUSeconds:  opts.CPUSeconds,
		MinInterval: opts.MinInterval,
		Logger:      slog.Default(),
	})
	if err != nil {
		slog.Warn("profile trigger disabled", "dir", opts.Dir, "err", err)
		return nil
	}
	return trig
}

// runServer serves until SIGINT/SIGTERM: the listener stops accepting,
// one final snapshot flushes (when -snapshot-dir is set), and the process
// exits.
func runServer(cfg repro.ServeConfig, scfg repro.StreamConfig, healthTick time.Duration, addr, debugAddr string, traceN int, traceSlow time.Duration, spanExport string, snapshotDir string, snapInterval time.Duration, fopts forensicsOpts) error {
	var col *repro.ObsCollector
	if traceN > 0 {
		col = repro.NewObsCollector(repro.ObsConfig{SampleEvery: traceN, SlowThreshold: traceSlow})
	}
	scfg.Trace = col

	// Telemetry plane: finished traces buffer in an exporter that always
	// feeds the local aggregator (own assembled view) and, with -span-export,
	// ships the same batches to a front router's aggregator so this cell's
	// spans land in the router's cross-process traces. The flight recorder
	// rides the same sink: every finished trace (sampled or not) derives
	// one wide event.
	var agg *repro.TelemetryAggregator
	var exp *repro.TelemetryExporter
	var flight *repro.FlightRecorder
	if col != nil {
		agg = repro.NewTelemetryAggregator(repro.TelemetryAggregatorConfig{SlowThreshold: traceSlow})
		exp = repro.NewTelemetryExporter(repro.TelemetryExporterConfig{
			Origin: "flserved",
			Target: spanExport,
			Local:  agg,
			Logger: slog.Default(),
		})
		flight = repro.NewFlightRecorder(0)
		col.SetSink(func(t repro.ObsTraceJSON) {
			exp.Enqueue(t)
			flight.Observe(t)
		})
		defer exp.Close()
	}
	trig := newProfileTrigger(fopts)
	defer trig.Close()

	srv := repro.NewServer(cfg)
	defer srv.Close()
	mgr := repro.NewStreamManager(repro.NewStreamServeBackend(srv), scfg)
	defer mgr.Close()
	if snapshotDir != "" {
		path := filepath.Join(snapshotDir, "flserved.snap")
		repro.ReplicaBootRestore(path, slog.Default(), func(s repro.ReplicaSnapshot) repro.ReplicaRestoreReport {
			return repro.ReplicaRestoreServer(srv, mgr, s)
		})
		snapper := repro.NewReplicaSnapshotter(repro.ReplicaSnapshotterConfig{
			Path:     path,
			Interval: snapInterval,
			Capture:  repro.ReplicaCaptureServer(srv, mgr),
		})
		snapper.Start()
		defer func() { // runs before mgr/srv close: their state is still live
			if err := snapper.Close(); err != nil {
				slog.Warn("final snapshot flush failed", "path", path, "err", err)
			} else {
				slog.Info("final snapshot flushed", "path", path)
			}
		}()
	}
	// The evaluator samples Go runtime vitals each tick (judged by the
	// runtime rules against the whole process), and its transition hook
	// fires the profile trigger: the first moment a rule leaves ok, the
	// evidence (CPU/heap/goroutine/mutex profiles) is captured and the
	// capture is filed in the alert ring next to the breach itself.
	var ev *repro.HealthEvaluator
	ev = repro.NewHealthEvaluator(repro.HealthConfig{
		Source: repro.HealthServerSource(srv),
		Tick:   healthTick,
		Logger: slog.Default(),
		Runtime: func() repro.HealthRuntimeSample {
			v := repro.ReadRuntimeVitals()
			return repro.HealthRuntimeSample{
				Goroutines:             float64(v.Goroutines),
				HeapBytes:              float64(v.HeapBytes),
				GCPauseP99Seconds:      v.GCPauseP99Seconds,
				SchedLatencyP99Seconds: v.SchedLatencyP99Seconds,
			}
		},
		OnTransition: func(t repro.HealthTransition) {
			if t.To == repro.HealthStateOK {
				return
			}
			if rec, ok := trig.Capture(t.Rule + "-" + string(t.To)); ok {
				ev.RecordEvent("profile", t.Cell,
					fmt.Sprintf("profiles captured in %s (rule %s %s→%s)", rec.Dir, t.Rule, t.From, t.To))
			}
		},
	})
	ev.Start()
	defer ev.Close()

	// The incident bundle assembles everything an investigation starts
	// from: the flight window, alert ring, health windows (incl. the
	// convergence observatory inside /v1/stats), assembled slow traces,
	// and the retained profile captures — one GET, one tar.gz.
	sections := []repro.IncidentSection{
		{Name: "alerts", Fetch: func() any { return ev.Alerts() }},
		{Name: "health", Fetch: func() any { return ev.Health() }},
		{Name: "stats", Fetch: func() any { return srv.Stats() }},
	}
	if agg != nil {
		sections = append(sections, repro.IncidentSection{Name: "traces", Fetch: func() any {
			return agg.Assembled(repro.ObsTraceQuery{Limit: 32})
		}})
	}
	incident := repro.IncidentHandler(repro.IncidentBundleConfig{
		Origin:   "flserved",
		Flight:   flight,
		Profiles: trig,
		Sections: sections,
	})

	mc := repro.ObsMiddlewareConfig{
		Flight:   flight.Handler(),
		Incident: incident,
		Metrics:  []func(io.Writer) error{repro.WriteRuntimePrometheus, flight.WritePrometheus, trig.WritePrometheus},
	}
	if agg != nil {
		mc.Traces = repro.TelemetryTracesHandler(col, agg)
		mc.Spans = agg.IngestHandler()
		mc.StatsSections = map[string]func() any{
			"telemetry": func() any {
				return map[string]any{
					"exporter":   exp.StatsJSON(),
					"aggregator": agg.StatsJSON(),
				}
			},
			"forensics": func() any {
				return map[string]any{
					"flight":   flight.StatsJSON(),
					"profiles": trig.StatsJSON(),
				}
			},
		}
		mc.Metrics = append(mc.Metrics, exp.WritePrometheus, agg.WritePrometheus)
	}
	httpSrv := &http.Server{Addr: addr, Handler: repro.ObsMiddlewareWith(col, mc, ev.Handler(repro.StreamHandler(mgr)))}
	var debugSrv *http.Server
	if debugAddr != "" {
		dash := repro.TelemetryDashboardConfig{Sources: []repro.TelemetrySource{
			{Name: "health", Fetch: func() any { return ev.Health() }},
			{Name: "alerts", Fetch: func() any { return ev.Alerts() }},
			{Name: "server", Fetch: func() any { return srv.Stats() }},
			{Name: "stream", Fetch: func() any { return mgr.Stats() }},
			{Name: "runtime", Fetch: func() any { return repro.ReadRuntimeVitals() }},
			{Name: "flight", Fetch: func() any { return flight.StatsJSON() }},
		}}
		if agg != nil {
			dash.Sources = append(dash.Sources,
				repro.TelemetrySource{Name: "traces", Fetch: func() any {
					return agg.Assembled(repro.ObsTraceQuery{Limit: 8})
				}})
		}
		debugSrv = &http.Server{Addr: debugAddr, Handler: repro.TelemetryDebugMux(repro.TelemetryDebugMuxConfig{
			Collector:  col,
			Aggregator: agg,
			Dashboard:  &dash,
			Flight:     flight,
			Incident:   incident,
		})}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				slog.Warn("debug listener failed", "addr", debugAddr, "err", err)
			}
		}()
		slog.Info("debug listener up", "addr", debugAddr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
	}()

	fmt.Printf("flserved: listening on %s (POST /v1/solve, POST /v1/stream, GET /v1/health, GET /v1/stats)\n", addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// runLoadgen replays total drifted instances against an in-process server
// through the full HTTP stack and reports throughput. batchSize > 0 routes
// the stream through POST /v1/solve-batch in chunks of that size (the bulk
// replay mode); 0 posts one instance per request.
func runLoadgen(cfg repro.ServeConfig, total, n int, drift, repeat float64, conc int, seed int64, batchSize int) error {
	srv := repro.NewServer(cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(seed))
	sc := repro.DefaultScenario()
	sc.N = n
	base, err := sc.Build(rng)
	if err != nil {
		return err
	}

	// Pre-draw the request stream so client goroutines only do I/O.
	reqs := make([]repro.SolveRequestJSON, total)
	var history []repro.SolveRequestJSON
	for i := range reqs {
		if len(history) > 0 && rng.Float64() < repeat {
			reqs[i] = history[rng.Intn(len(history))]
		} else {
			drifted := *base
			drifted.Devices = append([]repro.Device(nil), base.Devices...)
			for j := range drifted.Devices {
				drifted.Devices[j].Gain *= math.Exp(drift * rng.NormFloat64())
			}
			req := repro.SolveRequestJSON{System: repro.SystemToJSON(&drifted)}
			req.Weights.W1, req.Weights.W2 = 0.5, 0.5
			reqs[i] = req
			history = append(history, req)
		}
	}
	// Pre-marshal: per-request bodies, or batch bodies of batchSize items.
	var bodies [][]byte
	path := "/v1/solve"
	if batchSize > 0 {
		path = "/v1/solve-batch"
		for at := 0; at < total; at += batchSize {
			end := at + batchSize
			if end > total {
				end = total
			}
			body, err := json.Marshal(repro.SolveBatchRequestJSON{Requests: reqs[at:end], Priority: "bulk"})
			if err != nil {
				return err
			}
			bodies = append(bodies, body)
		}
	} else {
		for i := range reqs {
			body, err := json.Marshal(reqs[i])
			if err != nil {
				return err
			}
			bodies = append(bodies, body)
		}
	}

	var okCount, failCount atomic.Int64
	var next atomic.Int64
	began := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				// A failed batch round trip fails every instance it
				// carried, so ok+failed always sums to the instance total.
				instances := int64(1)
				if batchSize > 0 {
					instances = int64(batchSize)
					if rem := total - i*batchSize; rem < batchSize {
						instances = int64(rem)
					}
				}
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					failCount.Add(instances)
					continue
				}
				switch {
				case resp.StatusCode != http.StatusOK:
					failCount.Add(instances)
				case batchSize > 0:
					var out repro.SolveBatchResponseJSON
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						failCount.Add(instances)
					} else {
						for _, it := range out.Results {
							if it.OK {
								okCount.Add(1)
							} else {
								failCount.Add(1)
							}
						}
					}
				default:
					okCount.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(began)

	stats, err := fetchStats(ts.URL)
	if err != nil {
		return err
	}
	mode := "per-request"
	if batchSize > 0 {
		mode = fmt.Sprintf("batched x%d", batchSize)
	}
	fmt.Printf("loadgen (%s): %d instances (%d ok, %d failed) in %.3fs = %.1f inst/s over %d clients\n",
		mode, total, okCount.Load(), failCount.Load(), elapsed.Seconds(),
		float64(total)/elapsed.Seconds(), conc)
	fmt.Printf("server:  hits %d, misses %d, warm starts %d, cold solves %d, deduped %d, rejected %d, batches %d\n",
		stats.Hits, stats.Misses, stats.WarmStarts, stats.ColdSolves, stats.Deduped, stats.Rejected, stats.BatchRequests)
	fmt.Printf("solve latency: p50 %.1f ms, p99 %.1f ms; tracked buckets %d\n",
		stats.SolveP50*1e3, stats.SolveP99*1e3, stats.TrackedBuckets)
	for _, b := range stats.Buckets {
		fmt.Printf("  bucket %s: hits %d, misses %d (hit rate %.0f%%), warm %d, cold %d\n",
			b.Bucket, b.Hits, b.Misses, 100*b.HitRate, b.WarmStarts, b.ColdSolves)
	}
	return nil
}

func fetchStats(baseURL string) (repro.ServeStats, error) {
	var stats repro.ServeStats
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&stats)
	return stats, err
}

// streamStats is the combined /v1/stats body of a stream-wrapped server.
type streamStats struct {
	repro.ServeStats
	Stream repro.StreamSnapshot `json:"stream"`
}

// runStreamLoadgen replays total sparse gain deltas through per-client
// NDJSON delta sessions over the full HTTP stack: each of the conc clients
// opens one session with its own drifted copy of the default scenario, then
// streams its share of deltas (deltaDevs gains drifted per update) down a
// single live connection, reading each re-solve back before sending the
// next. This is the replay mode of the streaming subsystem — compare its
// inst/s against the plain per-request mode to see what delta re-solves
// save.
func runStreamLoadgen(cfg repro.ServeConfig, scfg repro.StreamConfig, total, n int, drift float64, conc int, seed int64, deltaDevs int) error {
	srv := repro.NewServer(cfg)
	defer srv.Close()
	mgr := repro.NewStreamManager(repro.NewStreamServeBackend(srv), scfg)
	defer mgr.Close()
	ts := httptest.NewServer(repro.StreamHandler(mgr))
	defer ts.Close()

	if conc < 1 {
		conc = 1
	}
	if deltaDevs < 1 {
		deltaDevs = 1
	}
	type tally struct {
		ok, fail                int64
		cache, warm, cold       int64
		dualSeeded, newtonIters int64
		err                     error
	}
	tallies := make([]tally, conc)
	var wg sync.WaitGroup
	began := time.Now()
	for wkr := 0; wkr < conc; wkr++ {
		share := total / conc
		if wkr < total%conc {
			share++
		}
		wg.Add(1)
		go func(wkr, share int) {
			defer wg.Done()
			t := &tallies[wkr]
			rng := rand.New(rand.NewSource(seed + 1000*int64(wkr+1)))
			sc := repro.DefaultScenario()
			sc.N = n
			sys, err := sc.Build(rand.New(rand.NewSource(seed + int64(wkr))))
			if err != nil {
				t.err = err
				return
			}
			openReq := repro.SolveRequestJSON{System: repro.SystemToJSON(sys), DeviceID: fmt.Sprintf("stream-%d", wkr)}
			openReq.Weights.W1, openReq.Weights.W2 = 0.5, 0.5
			open, err := repro.StreamOpenSession(ts.URL, openReq)
			if err != nil {
				t.err = err
				return
			}
			conn, err := repro.StreamOpenDeltas(ts.URL, open.SessionID)
			if err != nil {
				t.err = err
				return
			}
			defer conn.Close()
			for seq := uint64(1); seq <= uint64(share); seq++ {
				d := repro.StreamDeltaJSON{Seq: seq, Gains: make(map[int]float64, deltaDevs)}
				for len(d.Gains) < deltaDevs && len(d.Gains) < n {
					i := rng.Intn(n)
					if _, ok := d.Gains[i]; ok {
						continue
					}
					g := sys.Devices[i].Gain * math.Exp(drift*rng.NormFloat64())
					d.Gains[i] = g
					sys.Devices[i].Gain = g
				}
				if err := conn.Send(d); err != nil {
					t.err = err
					return
				}
				u, err := conn.Recv()
				if err != nil {
					t.err = err
					return
				}
				if !u.OK || u.Result == nil {
					t.fail++
					continue
				}
				t.ok++
				switch u.Result.Source {
				case string(repro.ServeSourceCache):
					t.cache++
				case string(repro.ServeSourceWarm):
					t.warm++
				default:
					t.cold++
				}
				if u.Result.DualSeeded {
					t.dualSeeded++
				}
				t.newtonIters += int64(u.Result.NewtonIters)
			}
		}(wkr, share)
	}
	wg.Wait()
	elapsed := time.Since(began)
	var agg tally
	for i := range tallies {
		if tallies[i].err != nil {
			return tallies[i].err
		}
		agg.ok += tallies[i].ok
		agg.fail += tallies[i].fail
		agg.cache += tallies[i].cache
		agg.warm += tallies[i].warm
		agg.cold += tallies[i].cold
		agg.dualSeeded += tallies[i].dualSeeded
		agg.newtonIters += tallies[i].newtonIters
	}

	var stats streamStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return err
	}
	deltas := agg.ok + agg.fail
	fmt.Printf("loadgen (stream): %d deltas over %d sessions (%d ok, %d failed) in %.3fs = %.1f upd/s\n",
		deltas, conc, agg.ok, agg.fail, elapsed.Seconds(), float64(deltas)/elapsed.Seconds())
	perDelta := 0.0
	if agg.ok > 0 {
		perDelta = float64(agg.newtonIters) / float64(agg.ok)
	}
	fmt.Printf("client sources: %d cache, %d warm, %d cold; dual-seeded %d; newton/delta %.2f\n",
		agg.cache, agg.warm, agg.cold, agg.dualSeeded, perDelta)
	fmt.Printf("server:  hits %d, misses %d, warm starts %d, cold solves %d; solve p50 %.1f ms, p99 %.1f ms\n",
		stats.Hits, stats.Misses, stats.WarmStarts, stats.ColdSolves, stats.SolveP50*1e3, stats.SolveP99*1e3)
	fmt.Printf("stream:  sessions %d open / %d opened, deltas %d, errors %d, dual-seeded %d\n",
		stats.Stream.ActiveSessions, stats.Stream.SessionsOpened, stats.Stream.Deltas,
		stats.Stream.DeltaErrors, stats.Stream.SolveDualSeeded)
	return nil
}
