// Command flserved runs the allocation service: an HTTP front end over the
// concurrent solver pool of internal/serve, with a fingerprint-keyed
// solution cache and topology-bucket warm starts.
//
// Usage:
//
//	flserved [-addr :8080] [-workers 0] [-queue 0] [-cache 4096]
//	         [-ttl 10m] [-timeout 30s] [-gainres 0.25]
//
// Endpoints:
//
//	POST /v1/solve        {"system": {...}, "weights": {"w1": 0.5, "w2": 0.5}}
//	POST /v1/solve-batch  {"requests": [...], "priority": "bulk"}
//	GET  /v1/stats        hit/miss/warm-start counters and solve latency quantiles
//	GET  /metrics         Prometheus text exposition
//
// Load-generator mode replays randomly-drifted copies of the default
// scenario against an in-process instance of the same HTTP stack and prints
// client-side throughput plus the server's own counters:
//
//	flserved -loadgen 200 [-n 15] [-drift 0.05] [-repeat 0.3] [-conc 8]
//	         [-seed 1] [-batch 0]
//
// Each request is, with probability -repeat, an exact replay of an earlier
// instance (exercising the cache), otherwise a fresh log-normal drift of
// every channel gain by -drift nepers (exercising the warm-start path).
// With -batch B the stream is replayed through POST /v1/solve-batch in
// bulk-priority chunks of B instances, amortizing decode and dispatch.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "queue depth (0 = 4x workers)")
		cache   = flag.Int("cache", 4096, "solution cache entries")
		ttl     = flag.Duration("ttl", 10*time.Minute, "solution cache TTL")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request default deadline")
		gainres = flag.Float64("gainres", 0.25, "channel-gain fingerprint bucket (dB)")

		loadgen = flag.Int("loadgen", 0, "replay this many drifted scenarios and exit")
		n       = flag.Int("n", 15, "loadgen: devices per scenario")
		drift   = flag.Float64("drift", 0.05, "loadgen: per-request log-normal gain drift (nepers)")
		repeat  = flag.Float64("repeat", 0.3, "loadgen: probability of replaying an earlier instance")
		conc    = flag.Int("conc", 8, "loadgen: concurrent clients")
		seed    = flag.Int64("seed", 1, "loadgen: RNG seed")
		batch   = flag.Int("batch", 0, "loadgen: replay through POST /v1/solve-batch in batches of this size (0 = per-request /v1/solve)")
	)
	flag.Parse()

	cfg := repro.ServeConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		CacheTTL:       *ttl,
		DefaultTimeout: *timeout,
		Quantization:   repro.ServeQuantization{GainResolutionDB: *gainres},
	}

	var err error
	if *loadgen > 0 {
		err = runLoadgen(cfg, *loadgen, *n, *drift, *repeat, *conc, *seed, *batch)
	} else {
		err = runServer(cfg, *addr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserved:", err)
		os.Exit(1)
	}
}

// runServer serves until SIGINT/SIGTERM.
func runServer(cfg repro.ServeConfig, addr string) error {
	srv := repro.NewServer(cfg)
	defer srv.Close()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("flserved: listening on %s (POST /v1/solve, GET /v1/stats)\n", addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// runLoadgen replays total drifted instances against an in-process server
// through the full HTTP stack and reports throughput. batchSize > 0 routes
// the stream through POST /v1/solve-batch in chunks of that size (the bulk
// replay mode); 0 posts one instance per request.
func runLoadgen(cfg repro.ServeConfig, total, n int, drift, repeat float64, conc int, seed int64, batchSize int) error {
	srv := repro.NewServer(cfg)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(seed))
	sc := repro.DefaultScenario()
	sc.N = n
	base, err := sc.Build(rng)
	if err != nil {
		return err
	}

	// Pre-draw the request stream so client goroutines only do I/O.
	reqs := make([]repro.SolveRequestJSON, total)
	var history []repro.SolveRequestJSON
	for i := range reqs {
		if len(history) > 0 && rng.Float64() < repeat {
			reqs[i] = history[rng.Intn(len(history))]
		} else {
			drifted := *base
			drifted.Devices = append([]repro.Device(nil), base.Devices...)
			for j := range drifted.Devices {
				drifted.Devices[j].Gain *= math.Exp(drift * rng.NormFloat64())
			}
			req := repro.SolveRequestJSON{System: repro.SystemToJSON(&drifted)}
			req.Weights.W1, req.Weights.W2 = 0.5, 0.5
			reqs[i] = req
			history = append(history, req)
		}
	}
	// Pre-marshal: per-request bodies, or batch bodies of batchSize items.
	var bodies [][]byte
	path := "/v1/solve"
	if batchSize > 0 {
		path = "/v1/solve-batch"
		for at := 0; at < total; at += batchSize {
			end := at + batchSize
			if end > total {
				end = total
			}
			body, err := json.Marshal(repro.SolveBatchRequestJSON{Requests: reqs[at:end], Priority: "bulk"})
			if err != nil {
				return err
			}
			bodies = append(bodies, body)
		}
	} else {
		for i := range reqs {
			body, err := json.Marshal(reqs[i])
			if err != nil {
				return err
			}
			bodies = append(bodies, body)
		}
	}

	var okCount, failCount atomic.Int64
	var next atomic.Int64
	began := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				// A failed batch round trip fails every instance it
				// carried, so ok+failed always sums to the instance total.
				instances := int64(1)
				if batchSize > 0 {
					instances = int64(batchSize)
					if rem := total - i*batchSize; rem < batchSize {
						instances = int64(rem)
					}
				}
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					failCount.Add(instances)
					continue
				}
				switch {
				case resp.StatusCode != http.StatusOK:
					failCount.Add(instances)
				case batchSize > 0:
					var out repro.SolveBatchResponseJSON
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						failCount.Add(instances)
					} else {
						for _, it := range out.Results {
							if it.OK {
								okCount.Add(1)
							} else {
								failCount.Add(1)
							}
						}
					}
				default:
					okCount.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(began)

	stats, err := fetchStats(ts.URL)
	if err != nil {
		return err
	}
	mode := "per-request"
	if batchSize > 0 {
		mode = fmt.Sprintf("batched x%d", batchSize)
	}
	fmt.Printf("loadgen (%s): %d instances (%d ok, %d failed) in %.3fs = %.1f inst/s over %d clients\n",
		mode, total, okCount.Load(), failCount.Load(), elapsed.Seconds(),
		float64(total)/elapsed.Seconds(), conc)
	fmt.Printf("server:  hits %d, misses %d, warm starts %d, cold solves %d, deduped %d, rejected %d, batches %d\n",
		stats.Hits, stats.Misses, stats.WarmStarts, stats.ColdSolves, stats.Deduped, stats.Rejected, stats.BatchRequests)
	fmt.Printf("solve latency: p50 %.1f ms, p99 %.1f ms; tracked buckets %d\n",
		stats.SolveP50*1e3, stats.SolveP99*1e3, stats.TrackedBuckets)
	for _, b := range stats.Buckets {
		fmt.Printf("  bucket %s: hits %d, misses %d (hit rate %.0f%%), warm %d, cold %d\n",
			b.Bucket, b.Hits, b.Misses, 100*b.HitRate, b.WarmStarts, b.ColdSolves)
	}
	return nil
}

func fetchStats(baseURL string) (repro.ServeStats, error) {
	var stats repro.ServeStats
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return stats, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&stats)
	return stats, err
}
