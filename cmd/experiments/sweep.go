package main

// The -sweep mode replays one drifting-gain scenario stream through every
// solver the serving path offers — the paper's Algorithm 2, the Scheme 1
// comparator (Yang et al., deadline mode) and the linearized-Shannon
// simplified baseline (weighted mode) — through a shared in-process
// serve.Server, and prints a served-objective diff table. It is the
// serving-path complement of the figure sweeps: the same instance stream a
// base station would see, answered by all three algorithms through the one
// cache/fingerprint pipeline (solver-keyed, so entries never cross), with
// the weighted objectives diffed against the simplified baseline and the
// deadline-mode energies diffed against Scheme 1.

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro"
)

// runSweep replays steps drifted instances (N = n devices, log-normal gain
// drift of sweepDrift nepers per step) and prints, per step:
//
//   - the weighted objective (w1 = w2 = 0.5) of Algorithm 2 and of the
//     simplified baseline, with the baseline's excess in percent;
//   - the total energy under a fixed deadline of the proposed deadline-mode
//     solver and of Scheme 1, with Scheme 1's excess in percent.
func runSweep(steps, n int, sweepDrift, deadline, radius float64, seed int64) error {
	srv := repro.NewServer(repro.ServeConfig{})
	defer srv.Close()

	sc := repro.DefaultScenario()
	sc.N = n
	// A wider placement disk than the paper default spreads the SNRs; the
	// simplified-Shannon baseline tracks Algorithm 2 almost exactly in
	// homogeneous deployments (see the ExtB ablation), so the diff table
	// defaults to the regime where the solvers actually disagree.
	sc.RadiusKm = radius
	sys, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	weighted := repro.Weights{W1: 0.5, W2: 0.5}
	energyOnly := repro.Weights{W1: 1, W2: 0}

	solve := func(s *repro.System, w repro.Weights, solver repro.ServeSolverName, opts repro.Options) (repro.ServeResponse, error) {
		return srv.Solve(context.Background(), repro.ServeRequest{
			System:  s,
			Weights: w,
			Options: opts,
			Solver:  solver,
		})
	}
	pct := func(base, other float64) float64 {
		if base == 0 {
			return math.NaN()
		}
		return 100 * (other - base) / base
	}

	fmt.Printf("served-objective sweep: N=%d, radius %.3g km, drift %.3g nepers/step, deadline %.4gs, seed %d\n",
		n, radius, sweepDrift, deadline, seed)
	fmt.Printf("%4s  %12s %12s %8s %8s  %12s %12s %8s\n",
		"step", "alg2 w-obj", "simplified", "obj%", "txE%", "alg2 E/J", "scheme1 E/J", "diff%")
	var sumSimp, sumSimpTx, sumS1 float64
	counted := 0
	for step := 0; step < steps; step++ {
		if step > 0 {
			// One scenario stream: the SAME system drifts between steps, so
			// consecutive instances share a topology bucket and the serving
			// path answers them warm (exactly what a live base station sees).
			for i := range sys.Devices {
				sys.Devices[i].Gain *= math.Exp(sweepDrift * rng.NormFloat64())
			}
		}
		// Each request gets a private snapshot: the server may retain the
		// system for the duration of the solve while we drift the original.
		snap := *sys
		snap.Devices = append([]repro.Device(nil), sys.Devices...)

		a2w, err := solve(&snap, weighted, repro.ServeSolverAlgorithm2, repro.Options{})
		if err != nil {
			return fmt.Errorf("step %d algorithm2 weighted: %w", step, err)
		}
		simp, err := solve(&snap, weighted, repro.ServeSolverSimplified, repro.Options{})
		if err != nil {
			return fmt.Errorf("step %d simplified: %w", step, err)
		}
		dopts := repro.Options{Mode: repro.ModeDeadline, TotalDeadline: deadline}
		a2d, err := solve(&snap, energyOnly, repro.ServeSolverAlgorithm2, dopts)
		if err != nil {
			return fmt.Errorf("step %d algorithm2 deadline: %w", step, err)
		}
		s1, err := solve(&snap, energyOnly, repro.ServeSolverScheme1, dopts)
		if err != nil {
			return fmt.Errorf("step %d scheme1: %w", step, err)
		}

		// The weighted objective is delay-dominated at the paper's
		// constants, so the overall diff hides the simplification's real
		// cost; the transmission-energy column (txE%) is where the
		// linearized Shannon model pays.
		dSimp := pct(a2w.Result.Objective, simp.Result.Objective)
		dSimpTx := pct(a2w.Result.Metrics.TransEnergy, simp.Result.Metrics.TransEnergy)
		dS1 := pct(a2d.Result.Objective, s1.Result.Objective)
		sumSimp += dSimp
		sumSimpTx += dSimpTx
		sumS1 += dS1
		counted++
		fmt.Printf("%4d  %12.6g %12.6g %+7.2f%% %+7.2f%%  %12.6g %12.6g %+7.2f%%\n",
			step, a2w.Result.Objective, simp.Result.Objective, dSimp, dSimpTx,
			a2d.Result.Objective, s1.Result.Objective, dS1)
	}
	if counted > 0 {
		fmt.Printf("mean excess over Algorithm 2: simplified %+.2f%% obj / %+.2f%% tx-energy, scheme1 %+.2f%% energy (over %d steps)\n",
			sumSimp/float64(counted), sumSimpTx/float64(counted), sumS1/float64(counted), counted)
	}
	st := srv.Stats()
	fmt.Printf("serving path: %d requests, %d cache hits, %d warm starts, %d cold solves (p50 %.1f ms)\n",
		st.Requests, st.Hits, st.WarmStarts, st.ColdSolves, st.SolveP50*1e3)
	return nil
}
