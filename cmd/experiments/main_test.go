package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownFigure(t *testing.T) {
	if err := run("99", 1, 1, ""); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestRunSweep(t *testing.T) {
	// A short stream through all three served solvers; any solver/mode
	// mismatch or serving-path regression fails the replay.
	if err := runSweep(3, 8, 0.05, 120, 0.5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigureWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	dir := t.TempDir()
	if err := run("extb", 1, 1, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figextB.csv")); err != nil {
		t.Errorf("csv not written: %v", err)
	}
}
