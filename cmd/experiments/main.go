// Command experiments regenerates the figures of the paper's evaluation
// (Section VII) as plain-text tables, optionally also writing CSV files.
//
// Usage:
//
//	experiments [-fig all|2|3|4|5|6|7|8] [-trials 10] [-seed 1] [-csv DIR]
//	experiments -sweep 20 [-sweepn 15] [-sweepdrift 0.05] [-sweepdeadline 120]
//
// Each sweep point is averaged over -trials independent device draws (the
// paper uses 100; the default of 10 regenerates every qualitative shape in
// a few minutes).
//
// With -sweep S the command instead replays one drifting-gain scenario
// stream of S steps through the serving path under all three solvers
// (algorithm2, scheme1, simplified) and prints a served-objective diff
// table — the live-traffic complement of the figure sweeps.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate: all, 2-8, ext, extA, extB, extC, extD, extE, extF or extG")
		trials = flag.Int("trials", 10, "random device draws averaged per sweep point")
		seed   = flag.Int64("seed", 1, "base RNG seed")
		csvDir = flag.String("csv", "", "also write <dir>/fig<id>.csv files")

		sweep         = flag.Int("sweep", 0, "replay a drifting scenario stream of this many steps through all three served solvers and diff the objectives")
		sweepN        = flag.Int("sweepn", 15, "sweep: devices per scenario")
		sweepDrift    = flag.Float64("sweepdrift", 0.05, "sweep: per-step log-normal gain drift (nepers)")
		sweepDeadline = flag.Float64("sweepdeadline", 120, "sweep: total completion-time limit for the deadline-mode comparison (s)")
		sweepRadius   = flag.Float64("sweepradius", 0.5, "sweep: placement disk radius (km); wider disks spread SNRs and separate the solvers")

		spanExport = flag.String("span-export", "", "POST the run's span to this aggregator URL (a running service's /debug/spans)")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address (net/http/pprof + /debug/traces + /debug/dashboard + /debug/flight + /debug/incident + /metrics)")
		logLevel   = flag.String("log-level", "info", "structured log level (debug|info|warn|error)")
		logJSON    = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		version    = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(repro.ObsVersionString())
		return
	}
	if _, err := repro.ObsSetupLogger(os.Stderr, *logLevel, *logJSON); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	// Graceful interrupt: figure regeneration holds no durable state, so
	// SIGINT/SIGTERM exits cleanly mid-sweep with the conventional status
	// (partially written -csv files are simply regenerated on the next run).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "experiments: received %v, exiting\n", s)
		os.Exit(130)
	}()

	// With -span-export a figure regeneration reports itself to a running
	// aggregator as a single-span trace, so long batch runs are visible on
	// the ops dashboard next to live traffic. With -debug-addr the run
	// mounts the same debug surface as the serving cmds (pprof,
	// /debug/traces, /debug/dashboard, /debug/flight, /debug/incident) —
	// handy for profiling a long figure sweep in flight.
	var tr *repro.ObsTrace
	var exp *repro.TelemetryExporter
	var col *repro.ObsCollector
	var flight *repro.FlightRecorder
	if *spanExport != "" || *debugAddr != "" {
		col = repro.NewObsCollector(repro.ObsConfig{SampleEvery: 1})
		flight = repro.NewFlightRecorder(0)
		if *spanExport != "" {
			exp = repro.NewTelemetryExporter(repro.TelemetryExporterConfig{Origin: "experiments", Target: *spanExport})
		}
		col.SetSink(func(t repro.ObsTraceJSON) {
			if exp != nil {
				exp.Enqueue(t)
			}
			flight.Observe(t)
		})
		_, tr = col.StartTrace(context.Background())
	}
	if *debugAddr != "" {
		dash := repro.TelemetryDashboardConfig{Sources: []repro.TelemetrySource{
			{Name: "runtime", Fetch: func() any { return repro.ReadRuntimeVitals() }},
			{Name: "flight", Fetch: func() any { return flight.StatsJSON() }},
		}}
		debugSrv := &http.Server{Addr: *debugAddr, Handler: repro.TelemetryDebugMux(repro.TelemetryDebugMuxConfig{
			Collector: col,
			Dashboard: &dash,
			Flight:    flight,
			Incident:  repro.IncidentHandler(repro.IncidentBundleConfig{Origin: "experiments", Flight: flight}),
			Metrics:   repro.TelemetryMetricsHandler(repro.WriteRuntimePrometheus, flight.WritePrometheus),
		})}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "experiments: debug listener failed:", err)
			}
		}()
	}
	began := time.Now()

	var err error
	phase := "figures"
	if *sweep > 0 {
		phase = "sweep"
		err = runSweep(*sweep, *sweepN, *sweepDrift, *sweepDeadline, *sweepRadius, *seed)
	} else {
		err = run(*fig, *trials, *seed, *csvDir)
	}
	if tr != nil {
		tr.RecordDur(phase, began, time.Since(began), repro.ObsAttr{Detail: *fig})
		tr.Finish()
		if exp != nil {
			exp.Close()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig string, trials int, seed int64, csvDir string) error {
	cfg := repro.RunConfig{Trials: trials, Seed: seed}
	var figures []repro.Figure

	two := func(a, b repro.Figure, err error) error {
		if err != nil {
			return err
		}
		figures = append(figures, a, b)
		return nil
	}
	start := time.Now()
	switch strings.ToLower(fig) {
	case "all":
		all, err := repro.AllFigures(cfg)
		if err != nil {
			return err
		}
		figures = all
	case "2":
		if err := two(repro.Fig2(cfg)); err != nil {
			return err
		}
	case "3":
		if err := two(repro.Fig3(cfg)); err != nil {
			return err
		}
	case "4":
		if err := two(repro.Fig4(cfg)); err != nil {
			return err
		}
	case "5":
		if err := two(repro.Fig5(cfg)); err != nil {
			return err
		}
	case "6":
		if err := two(repro.Fig6(cfg)); err != nil {
			return err
		}
	case "7":
		f, err := repro.Fig7(cfg)
		if err != nil {
			return err
		}
		figures = append(figures, f)
	case "8":
		f, err := repro.Fig8(cfg)
		if err != nil {
			return err
		}
		figures = append(figures, f)
	case "ext":
		exts, err := repro.AllExtensions(cfg)
		if err != nil {
			return err
		}
		figures = exts
	case "exta":
		if err := two(repro.ExtA(cfg)); err != nil {
			return err
		}
	case "extb":
		f, err := repro.ExtB(cfg)
		if err != nil {
			return err
		}
		figures = append(figures, f)
	case "extc":
		if err := two(repro.ExtC(cfg)); err != nil {
			return err
		}
	case "extd":
		if err := two(repro.ExtD(cfg)); err != nil {
			return err
		}
	case "exte":
		f, err := repro.ExtE(cfg)
		if err != nil {
			return err
		}
		figures = append(figures, f)
	case "extf":
		f, err := repro.ExtF(cfg)
		if err != nil {
			return err
		}
		figures = append(figures, f)
	case "extg":
		if err := two(repro.ExtG(cfg)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}

	for _, f := range figures {
		fmt.Println(f.Table())
	}
	fmt.Printf("regenerated %d figure panel(s) in %v (%d trials/point, seed %d)\n",
		len(figures), time.Since(start).Round(time.Millisecond), trials, seed)

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		for _, f := range figures {
			path := filepath.Join(csvDir, "fig"+f.ID+".csv")
			file, err := os.Create(path)
			if err != nil {
				return err
			}
			werr := f.WriteCSV(file)
			cerr := file.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
			fmt.Println("wrote", path)
		}
	}
	return nil
}
