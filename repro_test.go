package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

func TestFacadeQuickstart(t *testing.T) {
	sc := repro.DefaultScenario()
	sc.N = 10
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Optimize(s, repro.Weights{W1: 0.5, W2: 0.5}, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalEnergy <= 0 || res.Metrics.TotalTime <= 0 {
		t.Errorf("metrics: %+v", res.Metrics)
	}
	if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
		t.Errorf("allocation infeasible: %v", err)
	}
}

func TestFacadeMinCompletionTime(t *testing.T) {
	sc := repro.DefaultScenario()
	sc.N = 8
	s, err := sc.Build(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	alloc, roundTime, err := repro.MinCompletionTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if roundTime <= 0 {
		t.Errorf("round time %g", roundTime)
	}
	if err := s.Validate(alloc, 1e-9); err != nil {
		t.Errorf("allocation: %v", err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	sc := repro.DefaultScenario()
	sc.N = 10
	s, err := sc.Build(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := s.Validate(repro.RandomFreqBenchmark(s, rng), 1e-9); err != nil {
		t.Errorf("RandomFreq: %v", err)
	}
	if err := s.Validate(repro.RandomPowerBenchmark(s, rng), 1e-9); err != nil {
		t.Errorf("RandomPower: %v", err)
	}
	_, minRound, err := repro.MinCompletionTime(s)
	if err != nil {
		t.Fatal(err)
	}
	total := 4 * minRound * s.GlobalRounds
	for name, f := range map[string]func(*repro.System, float64) (repro.Allocation, error){
		"CommunicationOnly": repro.CommunicationOnly,
		"ComputationOnly":   repro.ComputationOnly,
		"Scheme1":           repro.Scheme1,
	} {
		a, err := f(s, total)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := s.ValidateDeadline(a, total/s.GlobalRounds, 1e-6); err != nil {
			t.Errorf("%s deadline: %v", name, err)
		}
	}
}

func TestFacadeWeightPairs(t *testing.T) {
	if got := len(repro.WeightPairs()); got != 5 {
		t.Errorf("WeightPairs = %d", got)
	}
}

func TestFacadeFedAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, _ := repro.SyntheticLogistic(rng, 200, 3, 0.05)
	shards, err := repro.SplitEqual(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	res, err := repro.TrainFedAvg(repro.FedAvgConfig{
		LocalIters: 2, GlobalRounds: 5, LearningRate: 0.3, Dim: 4,
	}, shards, func(round int, m repro.FedAvgModel) { rounds++ })
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 || len(res.GlobalLoss) != 5 {
		t.Errorf("rounds %d, losses %d", rounds, len(res.GlobalLoss))
	}
}
