package repro

import "repro/internal/experiments"

// Figure drivers: each regenerates the corresponding figure(s) of the
// paper's Section VII as numeric series (averaged over cfg.Trials random
// device draws). Render with Figure.Table or Figure.WriteCSV.

// Fig2 regenerates Figs. 2a/2b (energy and delay vs maximum transmit power).
func Fig2(cfg RunConfig) (energy, delay Figure, err error) { return experiments.Fig2(cfg) }

// Fig3 regenerates Figs. 3a/3b (energy and delay vs maximum CPU frequency).
func Fig3(cfg RunConfig) (energy, delay Figure, err error) { return experiments.Fig3(cfg) }

// Fig4 regenerates Figs. 4a/4b (energy and delay vs number of devices).
func Fig4(cfg RunConfig) (energy, delay Figure, err error) { return experiments.Fig4(cfg) }

// Fig5 regenerates Figs. 5a/5b (energy and delay vs placement radius).
func Fig5(cfg RunConfig) (energy, delay Figure, err error) { return experiments.Fig5(cfg) }

// Fig6 regenerates Figs. 6a/6b (energy and delay vs local iterations).
func Fig6(cfg RunConfig) (energy, delay Figure, err error) { return experiments.Fig6(cfg) }

// Fig7 regenerates Fig. 7 (energy vs completion-time limit; proposed vs
// communication-only vs computation-only).
func Fig7(cfg RunConfig) (Figure, error) { return experiments.Fig7(cfg) }

// Fig8 regenerates Fig. 8 (energy vs maximum transmit power under fixed
// deadlines; proposed vs Scheme 1).
func Fig8(cfg RunConfig) (Figure, error) { return experiments.Fig8(cfg) }

// AllFigures regenerates every figure in paper order.
func AllFigures(cfg RunConfig) ([]Figure, error) { return experiments.RunAll(cfg) }

// ExtA regenerates the sample-heterogeneity extension (the experiment the
// paper omits for space in Section VII-B).
func ExtA(cfg RunConfig) (energy, delay Figure, err error) { return experiments.ExtA(cfg) }

// ExtB regenerates the exact-vs-simplified-Shannon ablation (the ref. [3]
// simplification the paper criticizes).
func ExtB(cfg RunConfig) (Figure, error) { return experiments.ExtB(cfg) }

// ExtC regenerates the Subproblem 2 solver ablation (objective & runtime).
func ExtC(cfg RunConfig) (objective, runtime Figure, err error) { return experiments.ExtC(cfg) }

// ExtD regenerates the FDMA-vs-TDMA access-scheme comparison.
func ExtD(cfg RunConfig) (energy, delay Figure, err error) { return experiments.ExtD(cfg) }

// ExtE regenerates the alternation-vs-joint weighted solver comparison.
func ExtE(cfg RunConfig) (Figure, error) { return experiments.ExtE(cfg) }

// ExtF regenerates the wall-time-vs-N scaling measurement (Section VI).
func ExtF(cfg RunConfig) (Figure, error) { return experiments.ExtF(cfg) }

// ExtG regenerates the fading-robustness replay (deadline misses and
// energy inflation of the static allocation under Nakagami-m fading).
func ExtG(cfg RunConfig) (violations, energy Figure, err error) { return experiments.ExtG(cfg) }

// AllExtensions regenerates every extension figure.
func AllExtensions(cfg RunConfig) ([]Figure, error) { return experiments.RunExtensions(cfg) }
