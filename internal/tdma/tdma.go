// Package tdma models the alternative uplink access scheme the paper
// contrasts with in related work ([8], Dinh et al.): time-division multiple
// access, where each device transmits over the *whole* band B for its own
// time slice instead of owning a frequency slice for the whole round.
//
// Per global round, device n computes for T_cmp_n = Rl*c_n*D_n/f_n and then
// uploads d_n bits at rate G_n(p_n, B) during a dedicated slot
// tau_n = d_n / G_n(p_n, B). All computation can overlap other devices'
// slots (devices compute from the round start), so the round time is
//
//	T_round = max( max_n T_cmp_n + tau_(last), sum_n tau_n )  >=  sum tau_n
//
// We adopt the standard simplification used by the TDMA FL literature: the
// slot schedule packs uploads back-to-back after the slowest computation,
// i.e. T_round = max_n T_cmp_n + sum_n tau_n is an upper bound and
// sum_n tau_n a lower bound; we charge the pessimistic bound (computation
// cannot always hide behind other devices' slots when it finishes late).
//
// The package exists for the access-scheme ablation: it lets the
// experiments compare the paper's FDMA allocation against a TDMA allocation
// optimized with the same machinery (per-device 1-D power/frequency
// optimization under the weighted objective).
package tdma

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// ErrInfeasible is returned when no TDMA schedule can satisfy a deadline.
var ErrInfeasible = errors.New("tdma: infeasible configuration")

// Allocation is a TDMA uplink plan: per-device power, frequency and the
// implied slot lengths (everyone uses the full band during its slot).
type Allocation struct {
	// Power is p_n during the device's slot, in watts.
	Power []float64
	// Freq is the CPU frequency f_n in Hz.
	Freq []float64
	// Slots is tau_n = d_n/G_n(p_n, B) in seconds.
	Slots []float64
}

// Metrics aggregates a TDMA allocation, mirroring fl.Metrics.
type Metrics struct {
	// RoundTime is max_n T_cmp_n + sum_n tau_n.
	RoundTime float64
	// TotalTime is Rg * RoundTime.
	TotalTime float64
	// TransEnergy and CompEnergy sum over devices and rounds.
	TransEnergy, CompEnergy float64
	// TotalEnergy is their sum.
	TotalEnergy float64
}

// Evaluate computes the TDMA accounting for an allocation on the system.
func Evaluate(s *fl.System, a Allocation) Metrics {
	var m Metrics
	maxCmp := 0.0
	for i := range s.Devices {
		cmp := s.CompTimeRound(i, a.Freq[i])
		if cmp > maxCmp {
			maxCmp = cmp
		}
		m.TransEnergy += a.Power[i] * a.Slots[i]
		m.CompEnergy += s.CompEnergyRound(i, a.Freq[i])
		m.RoundTime += a.Slots[i]
	}
	m.RoundTime += maxCmp
	m.TransEnergy *= s.GlobalRounds
	m.CompEnergy *= s.GlobalRounds
	m.TotalEnergy = m.TransEnergy + m.CompEnergy
	m.TotalTime = s.GlobalRounds * m.RoundTime
	return m
}

// Optimize chooses per-device powers and frequencies minimizing the
// weighted objective w1*E + w2*T under TDMA.
//
// Unlike FDMA there is no bandwidth coupling: the only coupling is the sum
// of slot lengths inside the round time. The objective decomposes as
//
//	sum_n [ w1*Rg*(p_n*tau_n(p_n) + E_cmp(f_n)) + w2*Rg*tau_n(p_n) ] +
//	w2*Rg*max_n T_cmp_n(f_n)
//
// Powers therefore separate per device (1-D search); frequencies couple
// only through the max term, handled exactly by a 1-D search over the
// compute deadline (same structure as Subproblem 1).
func Optimize(s *fl.System, w fl.Weights) (Allocation, Metrics, error) {
	if err := s.Check(); err != nil {
		return Allocation{}, Metrics{}, err
	}
	if err := w.Check(); err != nil {
		return Allocation{}, Metrics{}, err
	}
	n := s.N()
	a := Allocation{
		Power: make([]float64, n),
		Freq:  make([]float64, n),
		Slots: make([]float64, n),
	}

	// Per-device power: minimize w1*p*tau(p) + w2*tau(p) with
	// tau(p) = d/G(p, B). Both terms are smooth in p; the cost is unimodal
	// (energy rises with p, slot time falls), so grid+golden is robust.
	rg := s.GlobalRounds
	for i, d := range s.Devices {
		cost := func(p float64) float64 {
			g := wireless.Rate(p, s.Bandwidth, d.Gain, s.N0)
			if g <= 0 {
				return math.Inf(1)
			}
			tau := d.UploadBits / g
			return w.W1*rg*p*tau + w.W2*rg*tau
		}
		p, err := numeric.GridRefineMin(cost, d.PMin, d.PMax, 16, 1e-9*d.PMax)
		if err != nil {
			return Allocation{}, Metrics{}, fmt.Errorf("tdma: device %d power search: %w", i, err)
		}
		a.Power[i] = p
		a.Slots[i] = d.UploadBits / wireless.Rate(p, s.Bandwidth, d.Gain, s.N0)
	}

	// Frequencies: minimize w1*Rg*sum E_cmp(f_n) + w2*Rg*max_n T_cmp(f_n).
	// For a candidate compute deadline tc, the cheapest feasible frequency
	// is clamp(Rl*c*D/tc, FMin, FMax); the objective is convex in tc.
	var tcLo, tcHi float64
	for _, d := range s.Devices {
		fast := s.LocalIters * d.CyclesPerIteration() / d.FMax
		slow := s.LocalIters * d.CyclesPerIteration() / d.FMin
		if fast > tcLo {
			tcLo = fast
		}
		if slow > tcHi {
			tcHi = slow
		}
	}
	freqObj := func(tc float64) float64 {
		var e float64
		for i, d := range s.Devices {
			f := numeric.Clamp(s.LocalIters*d.CyclesPerIteration()/tc, d.FMin, d.FMax)
			e += s.CompEnergyRound(i, f)
		}
		return w.W1*rg*e + w.W2*rg*tc
	}
	var tc float64
	switch {
	case w.W2 == 0:
		tc = tcHi
	case w.W1 == 0:
		tc = tcLo
	default:
		var err error
		tc, err = numeric.GoldenSection(freqObj, tcLo, tcHi, 1e-10*math.Max(tcHi, 1))
		if err != nil {
			return Allocation{}, Metrics{}, fmt.Errorf("tdma: deadline search: %w", err)
		}
	}
	for i, d := range s.Devices {
		a.Freq[i] = numeric.Clamp(s.LocalIters*d.CyclesPerIteration()/tc, d.FMin, d.FMax)
	}

	return a, Evaluate(s, a), nil
}

// Objective evaluates the weighted objective for a TDMA allocation.
func Objective(s *fl.System, w fl.Weights, a Allocation) float64 {
	m := Evaluate(s, a)
	return w.W1*m.TotalEnergy + w.W2*m.TotalTime
}
