package tdma

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/wireless"
)

func newTestSystem(n int, seed int64) *fl.System {
	rng := rand.New(rand.NewSource(seed))
	pl := wireless.DefaultPathLoss()
	devs := make([]fl.Device, n)
	for i := range devs {
		devs[i] = fl.Device{
			Samples:         500,
			CyclesPerSample: (1 + 2*rng.Float64()) * 1e4,
			UploadBits:      28.1e3,
			Gain:            pl.SampleGain(rng, wireless.UniformDiskDistanceKm(rng, 0.25)),
			FMin:            1e7,
			FMax:            2e9,
			PMin:            wireless.DBmToWatt(0),
			PMax:            wireless.DBmToWatt(12),
		}
	}
	return &fl.System{
		Devices:      devs,
		Bandwidth:    20e6,
		N0:           wireless.NoisePSDWattPerHz(-174),
		Kappa:        1e-28,
		LocalIters:   10,
		GlobalRounds: 400,
	}
}

func TestOptimizeProducesValidPlan(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s := newTestSystem(10, seed)
		a, m, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, d := range s.Devices {
			if a.Power[i] < d.PMin*(1-1e-9) || a.Power[i] > d.PMax*(1+1e-9) {
				t.Errorf("seed %d: p[%d] = %g outside box", seed, i, a.Power[i])
			}
			if a.Freq[i] < d.FMin || a.Freq[i] > d.FMax {
				t.Errorf("seed %d: f[%d] = %g outside box", seed, i, a.Freq[i])
			}
			wantSlot := d.UploadBits / wireless.Rate(a.Power[i], s.Bandwidth, d.Gain, s.N0)
			if math.Abs(a.Slots[i]-wantSlot) > 1e-9*wantSlot {
				t.Errorf("seed %d: slot[%d] inconsistent", seed, i)
			}
		}
		if m.TotalEnergy <= 0 || m.TotalTime <= 0 {
			t.Errorf("seed %d: metrics %+v", seed, m)
		}
	}
}

func TestEvaluateAccounting(t *testing.T) {
	s := newTestSystem(3, 2)
	a, _, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(s, a)
	var slots, maxCmp, trans, comp float64
	for i := range s.Devices {
		slots += a.Slots[i]
		if c := s.CompTimeRound(i, a.Freq[i]); c > maxCmp {
			maxCmp = c
		}
		trans += a.Power[i] * a.Slots[i]
		comp += s.CompEnergyRound(i, a.Freq[i])
	}
	if math.Abs(m.RoundTime-(maxCmp+slots)) > 1e-12*(maxCmp+slots) {
		t.Errorf("RoundTime %g != maxCmp+slots %g", m.RoundTime, maxCmp+slots)
	}
	if math.Abs(m.TransEnergy-400*trans) > 1e-9*m.TransEnergy {
		t.Errorf("TransEnergy %g", m.TransEnergy)
	}
	if math.Abs(m.CompEnergy-400*comp) > 1e-9*m.CompEnergy {
		t.Errorf("CompEnergy %g", m.CompEnergy)
	}
}

func TestWeightMonotonicity(t *testing.T) {
	s := newTestSystem(12, 5)
	var prevE, prevT float64
	for k, w := range []fl.Weights{
		{W1: 0.9, W2: 0.1}, {W1: 0.5, W2: 0.5}, {W1: 0.1, W2: 0.9},
	} {
		_, m, err := Optimize(s, w)
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 {
			if m.TotalEnergy < prevE*(1-1e-9) {
				t.Errorf("energy should rise as w1 falls: %g -> %g", prevE, m.TotalEnergy)
			}
			if m.TotalTime > prevT*(1+1e-9) {
				t.Errorf("time should fall as w2 rises: %g -> %g", prevT, m.TotalTime)
			}
		}
		prevE, prevT = m.TotalEnergy, m.TotalTime
	}
}

func TestCornerWeights(t *testing.T) {
	s := newTestSystem(6, 3)
	// Pure energy: frequencies at the floor, powers minimizing p*tau.
	a, _, err := Optimize(s, fl.Weights{W1: 1, W2: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range s.Devices {
		if a.Freq[i] != d.FMin {
			t.Errorf("w2=0: f[%d] = %g, want FMin", i, a.Freq[i])
		}
	}
	// Pure delay: every compute time within the tightest common deadline
	// (the bottleneck runs at FMax; others need only match it) and full
	// power for the fastest slots.
	a, _, err = Optimize(s, fl.Weights{W1: 0, W2: 1})
	if err != nil {
		t.Fatal(err)
	}
	var tcMin float64
	for _, d := range s.Devices {
		if v := s.LocalIters * d.CyclesPerIteration() / d.FMax; v > tcMin {
			tcMin = v
		}
	}
	for i, d := range s.Devices {
		if cmp := s.CompTimeRound(i, a.Freq[i]); cmp > tcMin*(1+1e-9) {
			t.Errorf("w1=0: device %d compute time %g exceeds the bottleneck's %g", i, cmp, tcMin)
		}
		if a.Power[i] < d.PMax*(1-1e-6) {
			t.Errorf("w1=0: p[%d] = %g, want PMax", i, a.Power[i])
		}
	}
}

func TestObjectiveConsistency(t *testing.T) {
	s := newTestSystem(5, 7)
	w := fl.Weights{W1: 0.3, W2: 0.7}
	a, m, err := Optimize(s, w)
	if err != nil {
		t.Fatal(err)
	}
	want := w.W1*m.TotalEnergy + w.W2*m.TotalTime
	if got := Objective(s, w, a); math.Abs(got-want) > 1e-9*want {
		t.Errorf("Objective = %g, want %g", got, want)
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	s := newTestSystem(3, 1)
	if _, _, err := Optimize(s, fl.Weights{W1: 0.6, W2: 0.6}); err == nil {
		t.Error("bad weights accepted")
	}
	bad := newTestSystem(3, 1)
	bad.Bandwidth = 0
	if _, _, err := Optimize(bad, fl.Weights{W1: 0.5, W2: 0.5}); err == nil {
		t.Error("bad system accepted")
	}
}

// TDMA slots serialize uploads, so at equal weights its delay should exceed
// FDMA's parallel uploads for populations with many devices — the rationale
// for the paper's FDMA choice. (Not a theorem; checked on draws where the
// FDMA optimizer succeeds.)
func TestSlotSerializationCost(t *testing.T) {
	s := newTestSystem(15, 9)
	_, m, err := Optimize(s, fl.Weights{W1: 0, W2: 1})
	if err != nil {
		t.Fatal(err)
	}
	var slotSum float64
	for _, d := range s.Devices {
		slotSum += d.UploadBits / wireless.Rate(d.PMax, s.Bandwidth, d.Gain, s.N0)
	}
	if m.RoundTime < slotSum {
		t.Errorf("round time %g below the serialized slot sum %g", m.RoundTime, slotSum)
	}
}
