package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestGammaRandMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []float64{0.5, 1, 2, 4, 16} {
		const n = 60000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := GammaRand(rng, shape)
			if x < 0 {
				t.Fatalf("shape %g: negative draw %g", shape, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		// Gamma(shape, 1): mean = shape, var = shape.
		if math.Abs(mean-shape) > 0.05*shape {
			t.Errorf("shape %g: mean %g", shape, mean)
		}
		if math.Abs(variance-shape) > 0.12*shape {
			t.Errorf("shape %g: variance %g", shape, variance)
		}
	}
}

func TestGammaRandDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if GammaRand(rng, 0) != 0 {
		t.Error("shape 0 should return 0")
	}
	if GammaRand(rng, -1) != 0 {
		t.Error("negative shape should return 0")
	}
}

func TestNakagamiPowerFade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Static channel.
	if f := NakagamiPowerFade(rng, math.Inf(1)); f != 1 {
		t.Errorf("m=inf fade = %g, want 1", f)
	}
	// Unit mean at every m; variance 1/m.
	for _, m := range []float64{1, 4, 16} {
		const n = 60000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			f := NakagamiPowerFade(rng, m)
			sum += f
			sumSq += f * f
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-1) > 0.03 {
			t.Errorf("m=%g: mean %g", m, mean)
		}
		if math.Abs(variance-1/m) > 0.15/m {
			t.Errorf("m=%g: variance %g, want %g", m, variance, 1/m)
		}
	}
}
