package numeric

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs, or
// zero for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// MaxOf returns the maximum of xs, or -Inf for an empty slice.
func MaxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MinOf returns the minimum of xs, or +Inf for an empty slice.
func MinOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts its input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// Norm2 returns the Euclidean norm of xs.
func Norm2(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of xs.
func NormInf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
