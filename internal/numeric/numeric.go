// Package numeric provides the scalar numerical routines used throughout the
// reproduction: the Lambert W function, root finding (bisection, Brent,
// Newton), one-dimensional convex minimization (golden section), and small
// statistical helpers.
//
// Everything is implemented from scratch on top of the standard library so
// that the module has no external dependencies. The routines favour
// robustness over raw speed: they are used inside optimizer loops whose
// dominant cost is the per-device waterfilling, not scalar evaluation.
package numeric

import "math"

// Ln2 is the natural logarithm of 2, used pervasively when converting
// between natural-log and base-2 expressions of the Shannon formula.
const Ln2 = math.Ln2

// Clamp returns x restricted to the closed interval [lo, hi].
// It requires lo <= hi and panics otherwise, since a reversed interval
// always indicates a programming error in a caller.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("numeric: Clamp called with lo > hi")
	}
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// Log2p1 returns log2(1+x) computed via math.Log1p for accuracy when x is
// tiny (deep-fade SNRs produce x well below 1e-8).
func Log2p1(x float64) float64 {
	return math.Log1p(x) / Ln2
}

// Cbrt is a thin alias of math.Cbrt kept so call sites in the optimizer read
// like the paper's equations.
func Cbrt(x float64) float64 { return math.Cbrt(x) }

// AlmostEqual reports whether a and b are equal within absolute tolerance
// absTol or relative tolerance relTol (whichever is looser).
func AlmostEqual(a, b, absTol, relTol float64) bool {
	diff := math.Abs(a - b)
	if diff <= absTol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= relTol*scale
}

// IsFiniteNonNeg reports whether x is finite and >= 0. The optimizers use it
// to validate physical quantities (powers, bandwidths, rates).
func IsFiniteNonNeg(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0
}

// SafeDiv returns a/b, or fallback when b == 0.
func SafeDiv(a, b, fallback float64) float64 {
	if b == 0 {
		return fallback
	}
	return a / b
}
