package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSection(t *testing.T) {
	tests := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"parabola", func(x float64) float64 { return (x - 2) * (x - 2) }, -10, 10, 2},
		// The quartic's basin is flat to double precision within ~1e-4 of
		// the minimizer, so only a loose argument tolerance is meaningful.
		{"quartic", func(x float64) float64 { return math.Pow(x-1, 4) }, -5, 5, 1},
		{"abs", func(x float64) float64 { return math.Abs(x + 3) }, -10, 10, -3},
		{"min at lo", func(x float64) float64 { return x }, 0, 5, 0},
		{"min at hi", func(x float64) float64 { return -x }, 0, 5, 5},
		{"exp plus linear", func(x float64) float64 { return math.Exp(x) - 2*x }, -2, 4, math.Log(2)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := GoldenSection(tc.f, tc.lo, tc.hi, 1e-10)
			if err != nil {
				t.Fatalf("GoldenSection: %v", err)
			}
			if !AlmostEqual(got, tc.want, 1e-3, 1e-3) {
				t.Errorf("got %g, want %g", got, tc.want)
			}
			// The function value at the result must not exceed the value at
			// the analytic minimizer.
			if fGot, fWant := tc.f(got), tc.f(tc.want); fGot > fWant+1e-9*(1+math.Abs(fWant)) {
				t.Errorf("f(got)=%g exceeds f(want)=%g", fGot, fWant)
			}
		})
	}
}

func TestGoldenSectionReversed(t *testing.T) {
	if _, err := GoldenSection(func(x float64) float64 { return x * x }, 5, -5, 1e-9); err == nil {
		t.Error("want error on reversed interval")
	}
}

func TestGoldenSectionDegenerate(t *testing.T) {
	got, err := GoldenSection(func(x float64) float64 { return x * x }, 3, 3, 1e-9)
	if err != nil || got != 3 {
		t.Errorf("degenerate interval: got %g, %v", got, err)
	}
}

// TestGoldenSectionRandomQuadratics property-tests against the analytic
// minimizer of a*(x-m)^2 + c.
func TestGoldenSectionRandomQuadratics(t *testing.T) {
	check := func(a, m, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(m) || math.IsNaN(c) {
			return true
		}
		a = math.Mod(math.Abs(a), 100) + 0.01
		m = math.Mod(m, 50)
		c = math.Mod(c, 100) // keep the offset comparable to the curvature term
		f := func(x float64) float64 { return a*(x-m)*(x-m) + c }
		got, err := GoldenSection(f, -60, 60, 1e-10)
		if err != nil {
			return false
		}
		return AlmostEqual(got, m, 1e-6, 1e-6)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeConvex1D(t *testing.T) {
	df := func(x float64) float64 { return 2 * (x - 3) }
	if got := MinimizeConvex1D(df, -10, 10, 1e-12); !AlmostEqual(got, 3, 1e-8, 1e-8) {
		t.Errorf("interior: got %g, want 3", got)
	}
	if got := MinimizeConvex1D(df, 5, 10, 1e-12); got != 5 {
		t.Errorf("min at lo: got %g, want 5", got)
	}
	if got := MinimizeConvex1D(df, -10, 0, 1e-12); got != 0 {
		t.Errorf("min at hi: got %g, want 0", got)
	}
}

func TestGridRefineMin(t *testing.T) {
	// Bimodal: basins at x=-3 (depth 1) and x=4 (depth 2). Plain golden from
	// the full interval can land in the wrong basin; the grid must not.
	f := func(x float64) float64 {
		a := (x+3)*(x+3) - 1
		b := (x-4)*(x-4) - 2
		return math.Min(a, b)
	}
	got, err := GridRefineMin(f, -10, 10, 30, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(got, 4, 1e-4, 1e-4) {
		t.Errorf("got %g, want 4", got)
	}
	// Unimodal: agrees with golden section.
	g := func(x float64) float64 { return (x - 1.5) * (x - 1.5) }
	got, err = GridRefineMin(g, -5, 5, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(got, 1.5, 1e-6, 1e-6) {
		t.Errorf("unimodal: got %g", got)
	}
	// Reversed interval errors.
	if _, err := GridRefineMin(g, 5, -5, 10, 1e-9); err == nil {
		t.Error("want error on reversed interval")
	}
	// Boundary minimum.
	got, _ = GridRefineMin(func(x float64) float64 { return x }, 2, 9, 8, 1e-9)
	if got != 2 {
		t.Errorf("boundary: got %g", got)
	}
}
