package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	tests := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"linear", func(x float64) float64 { return x - 3 }, 0, 10, 3},
		{"cubic", func(x float64) float64 { return x*x*x - 2 }, 0, 2, math.Cbrt(2)},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"root at lo", func(x float64) float64 { return x }, 0, 5, 0},
		{"root at hi", func(x float64) float64 { return x - 5 }, 0, 5, 5},
		{"reversed interval", func(x float64) float64 { return x - 3 }, 10, 0, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Bisect(tc.f, tc.lo, tc.hi, 1e-12)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if !AlmostEqual(got, tc.want, 1e-9, 1e-9) {
				t.Errorf("Bisect = %g, want %g", got, tc.want)
			}
		})
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBisectDecreasing(t *testing.T) {
	f := func(x float64) float64 { return 7 - x }
	got, err := BisectDecreasing(f, 0, 100, 1e-10)
	if err != nil {
		t.Fatalf("BisectDecreasing: %v", err)
	}
	if !AlmostEqual(got, 7, 1e-8, 1e-8) {
		t.Errorf("got %g, want 7", got)
	}
}

func TestBisectDecreasingFlat(t *testing.T) {
	// Step function: +1 below 2, -1 above; root anywhere in the jump.
	f := func(x float64) float64 {
		if x < 2 {
			return 1
		}
		return -1
	}
	got, err := BisectDecreasing(f, 0, 10, 1e-10)
	if err != nil {
		t.Fatalf("BisectDecreasing: %v", err)
	}
	if math.Abs(got-2) > 1e-8 {
		t.Errorf("got %g, want 2", got)
	}
}

func TestBisectDecreasingAllNegative(t *testing.T) {
	f := func(x float64) float64 { return -1 - x }
	got, err := BisectDecreasing(f, 0, 10, 1e-10)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("want ErrNoBracket, got %v", err)
	}
	if got != 0 {
		t.Errorf("should return lo endpoint, got %g", got)
	}
}

func TestBracketUp(t *testing.T) {
	hi, err := BracketUp(func(x float64) bool { return x >= 1000 }, 1, 60)
	if err != nil {
		t.Fatalf("BracketUp: %v", err)
	}
	if hi < 1000 {
		t.Errorf("BracketUp returned %g < 1000", hi)
	}
	if _, err := BracketUp(func(float64) bool { return false }, 1, 10); !errors.Is(err, ErrMaxIterations) {
		t.Errorf("want ErrMaxIterations, got %v", err)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) - 5 }
	b1, err1 := Brent(f, 0, 5, 1e-12)
	b2, err2 := Bisect(f, 0, 5, 1e-12)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if !AlmostEqual(b1, b2, 1e-8, 1e-8) {
		t.Errorf("Brent %g != Bisect %g", b1, b2)
	}
}

func TestBrentPropertyRandomPolynomials(t *testing.T) {
	check := func(a, b, r float64) bool {
		r = math.Mod(math.Abs(r), 10)
		a = math.Mod(math.Abs(a), 5) + 0.1
		f := func(x float64) float64 { return a * (x - r) * (x*x + 1) }
		got, err := Brent(f, -11, 11, 1e-13)
		if err != nil {
			return false
		}
		return AlmostEqual(got, r, 1e-7, 1e-7)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewton1D(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	df := func(x float64) float64 { return 2 * x }
	got, err := Newton1D(f, df, 1, 0, 2, 1e-13)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if !AlmostEqual(got, math.Sqrt2, 1e-9, 1e-9) {
		t.Errorf("got %g, want sqrt(2)", got)
	}
}

func TestNewton1DSafeguard(t *testing.T) {
	// A function whose Newton steps from x0=0.01 would overshoot wildly.
	f := func(x float64) float64 { return math.Atan(x - 4) }
	df := func(x float64) float64 { d := x - 4; return 1 / (1 + d*d) }
	got, err := Newton1D(f, df, 0.01, 0, 100, 1e-12)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if !AlmostEqual(got, 4, 1e-8, 1e-8) {
		t.Errorf("got %g, want 4", got)
	}
}
