package numeric

import (
	"math"
	"math/rand"
)

// GammaRand draws a Gamma(shape, 1) variate using the Marsaglia–Tsang
// squeeze method (with the standard boost for shape < 1). The simulation
// harness uses it for Nakagami-m fading: the received-power fade of a
// Nakagami-m channel is Gamma(m, 1/m), i.e. GammaRand(rng, m)/m.
func GammaRand(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: X_a = X_{a+1} * U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return GammaRand(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// NakagamiPowerFade draws the unit-mean received-power fade of a
// Nakagami-m channel: Gamma(m, 1/m). m = 1 is Rayleigh fading; m -> inf
// approaches a static channel.
func NakagamiPowerFade(rng *rand.Rand, m float64) float64 {
	if math.IsInf(m, 1) {
		return 1
	}
	return GammaRand(rng, m) / m
}
