package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root-finding routine is handed an interval
// whose endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrMaxIterations is returned when an iterative routine exhausts its
// iteration budget before meeting its tolerance.
var ErrMaxIterations = errors.New("numeric: maximum iterations exceeded")

// Bisect finds a root of f on [lo, hi] by bisection. f(lo) and f(hi) must
// have opposite signs (zero counts as either sign). It iterates until the
// interval width falls below tol (absolute) or 200 iterations elapse, which
// is enough to exhaust double precision on any physically scaled interval.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, fmt.Errorf("numeric: Bisect on [%g,%g] f=(%g,%g): %w", lo, hi, flo, fhi, ErrNoBracket)
	}
	for i := 0; i < 200; i++ {
		mid := lo + 0.5*(hi-lo)
		if mid <= lo || mid >= hi { // interval exhausted at double precision
			return mid, nil
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
		if hi-lo <= tol {
			return lo + 0.5*(hi-lo), nil
		}
	}
	return lo + 0.5*(hi-lo), nil
}

// BisectDecreasing finds the root of a (weakly) monotone decreasing function
// f with f(lo) >= 0 >= f(hi) — the shape of every dual "price" search in
// this codebase (the bandwidth price mu, the deadline multiplier gamma).
// Unlike Bisect it tolerates flat segments: it returns the midpoint of the
// final interval.
func BisectDecreasing(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo < 0 && fhi < 0 {
		return lo, fmt.Errorf("numeric: BisectDecreasing f(lo)=%g < 0: %w", flo, ErrNoBracket)
	}
	if flo > 0 && fhi > 0 {
		return hi, fmt.Errorf("numeric: BisectDecreasing f(hi)=%g > 0: %w", fhi, ErrNoBracket)
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + 0.5*(hi-lo)
		if mid <= lo || mid >= hi {
			break
		}
		if f(mid) >= 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + 0.5*(hi-lo), nil
}

// BracketUp grows hi geometrically from start until pred(hi) holds or the
// expansion budget is exhausted. It is used to find upper bisection bounds
// for dual prices whose scale is not known a priori.
func BracketUp(pred func(float64) bool, start float64, maxDoublings int) (float64, error) {
	if start <= 0 {
		start = 1
	}
	hi := start
	for i := 0; i < maxDoublings; i++ {
		if pred(hi) {
			return hi, nil
		}
		hi *= 2
	}
	if pred(hi) {
		return hi, nil
	}
	return hi, fmt.Errorf("numeric: BracketUp gave up at %g: %w", hi, ErrMaxIterations)
}

// Brent finds a root of f on a bracketing interval [lo, hi] using Brent's
// method (inverse quadratic interpolation with bisection safeguards). It is
// faster than plain bisection on smooth functions and used where the solver
// sits on a hot path (per-device rate inversion).
func Brent(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	const eps = 2.220446049250313e-16
	a, b := lo, hi
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("numeric: Brent on [%g,%g]: %w", lo, hi, ErrNoBracket)
	}
	c, fc := b, fb
	var d, e float64
	for i := 0; i < 200; i++ {
		if (fb > 0 && fc > 0) || (fb < 0 && fc < 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*eps*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
	}
	return b, fmt.Errorf("numeric: Brent: %w", ErrMaxIterations)
}

// Newton1D runs a safeguarded Newton iteration for f(x)=0 starting at x0,
// falling back to bisection steps whenever the Newton step leaves [lo, hi].
func Newton1D(f, df func(float64) float64, x0, lo, hi, tol float64) (float64, error) {
	x := Clamp(x0, lo, hi)
	for i := 0; i < 100; i++ {
		fx := f(x)
		if math.Abs(fx) <= tol {
			return x, nil
		}
		d := df(x)
		var next float64
		if d != 0 {
			next = x - fx/d
		}
		if d == 0 || next < lo || next > hi || math.IsNaN(next) {
			// Safeguard: shrink toward the midpoint of the box.
			next = 0.5 * (lo + hi)
		}
		if fx > 0 {
			hi = math.Min(hi, x)
		} else {
			lo = math.Max(lo, x)
		}
		if next <= lo || next >= hi {
			next = 0.5 * (lo + hi)
		}
		if math.Abs(next-x) <= 1e-15*(1+math.Abs(x)) {
			return next, nil
		}
		x = next
	}
	return x, fmt.Errorf("numeric: Newton1D: %w", ErrMaxIterations)
}
