package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLambertW0KnownValues(t *testing.T) {
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{"zero", 0, 0},
		{"one", 1, 0.5671432904097838}, // Omega constant
		{"e", math.E, 1},
		{"branch point", -1 / math.E, -1},
		{"2e^2", 2 * math.Exp(2), 2},
		{"10e^10", 10 * math.Exp(10), 10},
		{"small positive", 1e-9, 1e-9 * (1 - 1e-9)},
		{"near branch", -0.367879, -0.998452},
		{"negative interior", -0.2, -0.2591711018190738},
		{"large", 1e12, 24.43500440493456},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := LambertW0(tc.x)
			if err != nil {
				t.Fatalf("LambertW0(%g) error: %v", tc.x, err)
			}
			if !AlmostEqual(got, tc.want, 1e-6, 1e-6) {
				t.Errorf("LambertW0(%g) = %.12g, want %.12g", tc.x, got, tc.want)
			}
		})
	}
}

func TestLambertW0Domain(t *testing.T) {
	for _, x := range []float64{-1, -0.5, math.Inf(-1)} {
		if _, err := LambertW0(x); !errors.Is(err, ErrLambertWDomain) {
			t.Errorf("LambertW0(%g): want ErrLambertWDomain, got %v", x, err)
		}
	}
	if _, err := LambertW0(math.NaN()); !errors.Is(err, ErrLambertWDomain) {
		t.Errorf("LambertW0(NaN): want ErrLambertWDomain, got %v", err)
	}
}

func TestLambertW0Inf(t *testing.T) {
	got, err := LambertW0(math.Inf(1))
	if err != nil || !math.IsInf(got, 1) {
		t.Errorf("LambertW0(+Inf) = %g, %v; want +Inf, nil", got, err)
	}
}

// TestLambertW0DefiningEquation property-tests w*e^w == x across the domain.
func TestLambertW0DefiningEquation(t *testing.T) {
	check := func(raw float64) bool {
		// Map an arbitrary float into the domain [-1/e, ~1e15).
		x := -1/math.E + math.Abs(math.Mod(raw, 30))*math.Exp(math.Mod(raw, 30))
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		w, err := LambertW0(x)
		if err != nil {
			return false
		}
		back := w * math.Exp(w)
		return AlmostEqual(back, x, 1e-10, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestLambertW0Monotone checks W0 is increasing on its domain.
func TestLambertW0Monotone(t *testing.T) {
	prev := math.Inf(-1)
	for step := 1e-6; step < 1e6; step *= 1.7 {
		x := -1/math.E + step
		w, err := LambertW0(x)
		if err != nil {
			t.Fatalf("LambertW0(%g): %v", x, err)
		}
		if w < prev-1e-12 {
			t.Fatalf("W0 not monotone at x=%g: %g < %g", x, w, prev)
		}
		prev = w
	}
}

func BenchmarkLambertW0(b *testing.B) {
	xs := []float64{-0.3, 0.1, 1, 10, 1e4, 1e8}
	var sink float64
	for i := 0; i < b.N; i++ {
		w, _ := LambertW0(xs[i%len(xs)])
		sink += w
	}
	_ = sink
}
