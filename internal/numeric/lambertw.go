package numeric

import (
	"errors"
	"fmt"
	"math"
)

// branchPoint is -1/e, the left endpoint of the domain of the principal
// branch W0 of the Lambert W function.
var branchPoint = -1.0 / math.E

// ErrLambertWDomain is returned by LambertW0 for arguments below -1/e.
var ErrLambertWDomain = errors.New("numeric: LambertW0 argument below -1/e")

// LambertW0 evaluates the principal branch of the Lambert W function, the
// solution w >= -1 of w*exp(w) = x, for x >= -1/e.
//
// The implementation uses a branch-point series near x = -1/e, asymptotic
// initial guesses elsewhere, and Halley iteration to full double precision.
// The paper's Appendix B uses W on arguments (mu - j_n)/(e*j_n) which are
// guaranteed >= -1/e for any bandwidth price mu >= 0, so domain violations
// here always indicate a caller bug; they are reported as an error rather
// than silently clipped.
func LambertW0(x float64) (float64, error) {
	switch {
	case math.IsNaN(x):
		return math.NaN(), fmt.Errorf("numeric: LambertW0(NaN): %w", ErrLambertWDomain)
	case x < branchPoint:
		// Allow a sliver of floating-point slack right at the branch point.
		if x > branchPoint-1e-12 {
			return -1, nil
		}
		return math.NaN(), fmt.Errorf("numeric: LambertW0(%g) below -1/e: %w", x, ErrLambertWDomain)
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return math.Inf(1), nil
	}

	w := lambertW0Initial(x)

	// Halley iteration: quadratically convergent with a cubic correction;
	// a handful of steps reaches machine precision from the guesses above.
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if f == 0 {
			return w, nil
		}
		wp1 := w + 1
		denom := ew*wp1 - (w+2)*f/(2*wp1)
		if denom == 0 || math.IsNaN(denom) {
			break
		}
		dw := f / denom
		w -= dw
		if math.Abs(dw) <= 1e-15*(1+math.Abs(w)) {
			return w, nil
		}
	}
	// Fall back to bisection if Halley stalled (extremely rare, e.g. at
	// subnormal arguments next to the branch point).
	return lambertW0Bisect(x)
}

// lambertW0Initial produces a starting point accurate enough for Halley
// iteration to converge in a few steps.
func lambertW0Initial(x float64) float64 {
	if x < -0.25 {
		// Branch-point series in p = sqrt(2(e*x+1)):
		// W(x) ~ -1 + p - p^2/3 + 11 p^3/72.
		p := math.Sqrt(2 * (math.E*x + 1))
		return -1 + p - p*p/3 + 11*p*p*p/72
	}
	if x < 1 {
		// Padé-flavoured rational guess around 0: W(x) ~ x(1+...) .
		return x * (1 - x*(1-1.5*x)/(1+x))
	}
	// Asymptotic expansion for large x: W ~ L1 - L2 + L2/L1.
	l1 := math.Log(x)
	l2 := math.Log(l1)
	if l1 <= 0 {
		return l1
	}
	return l1 - l2 + l2/l1
}

// lambertW0Bisect solves w*e^w = x by bisection; used only as a fallback.
func lambertW0Bisect(x float64) (float64, error) {
	lo, hi := -1.0, 1.0
	for lambertG(hi) < x {
		hi *= 2
		if hi > 1e9 {
			return math.NaN(), fmt.Errorf("numeric: LambertW0 bisection failed to bracket %g", x)
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if lambertG(mid) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

func lambertG(w float64) float64 { return w * math.Exp(w) }
