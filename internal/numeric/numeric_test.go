package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
		{3, 3, 3, 3},
	}
	for _, tc := range tests {
		if got := Clamp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestClampPanicsOnReversedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Clamp(1, 5, 0) should panic")
		}
	}()
	Clamp(1, 5, 0)
}

func TestClampProperty(t *testing.T) {
	check := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(x, lo, hi)
		return c >= lo && c <= hi && (c == x || c == lo || c == hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLog2p1(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{0, 0},
		{1, 1},
		{3, 2},
		{7, 3},
		{1e-12, 1e-12 / math.Ln2},
	}
	for _, tc := range tests {
		if got := Log2p1(tc.x); !AlmostEqual(got, tc.want, 1e-14, 1e-10) {
			t.Errorf("Log2p1(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestLog2p1TinyAccuracy(t *testing.T) {
	// Naive log2(1+x) loses all precision at x=1e-18; Log1p keeps it.
	x := 1e-18
	if got := Log2p1(x); !AlmostEqual(got, x/math.Ln2, 0, 1e-12) {
		t.Errorf("Log2p1(1e-18) = %g", got)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9, 0) {
		t.Error("absolute tolerance failed")
	}
	if !AlmostEqual(1e12, 1e12*(1+1e-10), 0, 1e-9) {
		t.Error("relative tolerance failed")
	}
	if AlmostEqual(1, 2, 1e-9, 1e-9) {
		t.Error("1 and 2 should differ")
	}
}

func TestIsFiniteNonNeg(t *testing.T) {
	for _, tc := range []struct {
		x    float64
		want bool
	}{
		{0, true}, {1, true}, {-1, false},
		{math.NaN(), false}, {math.Inf(1), false}, {math.Inf(-1), false},
	} {
		if got := IsFiniteNonNeg(tc.x); got != tc.want {
			t.Errorf("IsFiniteNonNeg(%g) = %t", tc.x, got)
		}
	}
}

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(4, 2, -1); got != 2 {
		t.Errorf("SafeDiv(4,2) = %g", got)
	}
	if got := SafeDiv(4, 0, -1); got != -1 {
		t.Errorf("SafeDiv(4,0) fallback = %g", got)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Mean(xs); got != 3 {
		t.Errorf("Mean = %g", got)
	}
	if got := Sum(xs); got != 15 {
		t.Errorf("Sum = %g", got)
	}
	if got := StdDev(xs); !AlmostEqual(got, math.Sqrt(2.5), 1e-12, 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if got := MaxOf(xs); got != 5 {
		t.Errorf("MaxOf = %g", got)
	}
	if got := MinOf(xs); got != 1 {
		t.Errorf("MinOf = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %g", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestNorms(t *testing.T) {
	xs := []float64{3, -4}
	if got := Norm2(xs); got != 5 {
		t.Errorf("Norm2 = %g", got)
	}
	if got := NormInf(xs); got != 4 {
		t.Errorf("NormInf = %g", got)
	}
}
