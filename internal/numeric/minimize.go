package numeric

import (
	"fmt"
	"math"
)

// invPhi is 1/phi where phi is the golden ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal function f on [lo, hi] and returns the
// minimizer. tol is an absolute tolerance on the argument. The routine is
// exact (to tol) for convex f, which covers every use in this codebase:
// Subproblem 1's objective in the round deadline T, and the per-device
// upload-time split in the Scheme 1 baseline.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if lo > hi {
		return 0, fmt.Errorf("numeric: GoldenSection interval [%g,%g] reversed", lo, hi)
	}
	if hi-lo <= tol {
		return 0.5 * (lo + hi), nil
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 300 && b-a > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	mid := 0.5 * (a + b)
	// Guard against boundary minima: golden section converges to an interior
	// point; compare against the original endpoints explicitly.
	best, fBest := mid, f(mid)
	if fe := f(lo); fe < fBest {
		best, fBest = lo, fe
	}
	if fe := f(hi); fe < fBest {
		best = hi
	}
	return best, nil
}

// GridRefineMin minimizes a possibly multimodal 1-D function on [lo, hi] by
// scanning a uniform grid of gridN points to locate the best basin, then
// refining with golden section inside the bracketing grid cell. It is exact
// for unimodal functions and robust for functions with a few basins (the
// per-device time-split costs in the deadline optimizer are bimodal when a
// bandwidth floor kicks in).
func GridRefineMin(f func(float64) float64, lo, hi float64, gridN int, tol float64) (float64, error) {
	if lo > hi {
		return 0, fmt.Errorf("numeric: GridRefineMin interval [%g,%g] reversed", lo, hi)
	}
	if gridN < 3 {
		gridN = 3
	}
	bestX, bestF := lo, f(lo)
	bestK := 0
	for k := 1; k < gridN; k++ {
		x := lo + (hi-lo)*float64(k)/float64(gridN-1)
		if v := f(x); v < bestF {
			bestX, bestF, bestK = x, v, k
		}
	}
	cellLo := lo + (hi-lo)*float64(maxInt(bestK-1, 0))/float64(gridN-1)
	cellHi := lo + (hi-lo)*float64(minInt(bestK+1, gridN-1))/float64(gridN-1)
	x, err := GoldenSection(f, cellLo, cellHi, tol)
	if err != nil {
		return bestX, err
	}
	if f(x) <= bestF {
		return x, nil
	}
	return bestX, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MinimizeConvex1D minimizes a differentiable convex function given its
// derivative on [lo, hi] by bisecting the derivative; it falls back to
// golden section when the derivative does not change sign (minimum at an
// endpoint).
func MinimizeConvex1D(df func(float64) float64, lo, hi, tol float64) float64 {
	dlo, dhi := df(lo), df(hi)
	switch {
	case dlo >= 0:
		return lo // derivative nonnegative throughout: minimum at lo
	case dhi <= 0:
		return hi // derivative nonpositive throughout: minimum at hi
	}
	x, err := Bisect(df, lo, hi, tol)
	if err != nil {
		return 0.5 * (lo + hi)
	}
	return x
}
