package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
)

// DebugPath is where Middleware serves the trace dump.
const DebugPath = "/debug/traces"

// TracesJSON is the body of GET /debug/traces: the retained ring newest
// first, plus the slowest-N exemplars.
type TracesJSON struct {
	Recent  []TraceJSON `json:"recent"`
	Slowest []TraceJSON `json:"slowest"`
}

// DebugHandler serves the trace dump as JSON (mounted by Middleware at
// DebugPath, and by the cmds on their -debug-addr servers next to pprof).
func (c *Collector) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TracesJSON{Recent: c.Recent(), Slowest: c.Slowest()})
	})
}

// Middleware wraps a front-end handler with the observability boundary:
//
//   - every request gets a trace (per Collector sampling rules), carried
//     on the request context and finished when the handler returns;
//   - the trace ID is echoed in the X-Trace-Id response header;
//   - GET /debug/traces serves the collector's ring + exemplars;
//   - GET /metrics responses get the obs histogram series appended, using
//     the same replay-and-append composition as the ctrl plane.
//
// Long-lived NDJSON delta streams (POST /v1/stream/{id}/deltas) are NOT
// traced as one request — a connection-spanning trace would be
// meaningless — the stream layer starts a fresh trace per delta instead.
// A nil collector returns next unchanged.
func Middleware(c *Collector, next http.Handler) http.Handler {
	if c == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == DebugPath:
			c.DebugHandler().ServeHTTP(w, r)
		case r.Method == http.MethodGet && r.URL.Path == "/metrics":
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			if rec.Code == http.StatusOK {
				_ = c.WritePrometheus(w)
			}
		case isDeltaStream(r):
			next.ServeHTTP(w, r)
		default:
			ctx, tr := c.StartTrace(r.Context())
			if tr == nil {
				next.ServeHTTP(w, r)
				return
			}
			w.Header().Set("X-Trace-Id", tr.ID())
			next.ServeHTTP(w, r.WithContext(ctx))
			tr.Finish()
		}
	})
}

func isDeltaStream(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		strings.HasPrefix(r.URL.Path, "/v1/stream/") &&
		strings.HasSuffix(r.URL.Path, "/deltas")
}
