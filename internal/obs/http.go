package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
)

// DebugPath is where Middleware serves the trace dump.
const DebugPath = "/debug/traces"

// TraceHeader carries the trace ID on both directions of the wire: echoed
// on every traced response, and adopted from incoming requests so a
// router→cell forward keeps one trace identity across processes.
const TraceHeader = "X-Trace-Id"

// TracesJSON is the body of GET /debug/traces: the retained ring newest
// first, plus the slowest-N exemplars.
type TracesJSON struct {
	Recent  []TraceJSON `json:"recent"`
	Slowest []TraceJSON `json:"slowest"`
}

// DebugHandler serves the trace dump as JSON (mounted by Middleware at
// DebugPath, and by the cmds on their -debug-addr servers next to pprof).
func (c *Collector) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TracesJSON{Recent: c.Recent(), Slowest: c.Slowest()})
	})
}

// Middleware wraps a front-end handler with the observability boundary:
//
//   - every request gets a trace (per Collector sampling rules), carried
//     on the request context and finished when the handler returns; an
//     incoming X-Trace-Id header is adopted so cross-process hops share
//     one trace identity;
//   - the trace ID is echoed in the X-Trace-Id response header;
//   - GET /debug/traces serves the collector's ring + exemplars;
//   - GET /v1/version serves the binary's build info;
//   - GET /v1/stats responses get an uptime_seconds field injected;
//   - GET /metrics responses get the obs histogram series appended, using
//     the same replay-and-append composition as the ctrl plane.
//
// Long-lived NDJSON delta streams (POST /v1/stream/{id}/deltas) are NOT
// traced as one request — a connection-spanning trace would be
// meaningless — the stream layer starts a fresh trace per delta instead.
// A nil collector returns next unchanged.
func Middleware(c *Collector, next http.Handler) http.Handler {
	if c == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == DebugPath:
			c.DebugHandler().ServeHTTP(w, r)
		case r.URL.Path == VersionPath:
			VersionHandler().ServeHTTP(w, r)
		case r.Method == http.MethodGet && r.URL.Path == "/v1/stats":
			serveStatsWithUptime(w, r, next)
		case r.Method == http.MethodGet && r.URL.Path == "/metrics":
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			if rec.Code == http.StatusOK {
				_ = c.WritePrometheus(w)
			}
		case isDeltaStream(r):
			next.ServeHTTP(w, r)
		default:
			ctx, tr := c.StartTraceID(r.Context(), r.Header.Get(TraceHeader))
			if tr == nil {
				next.ServeHTTP(w, r)
				return
			}
			w.Header().Set(TraceHeader, tr.ID())
			next.ServeHTTP(w, r.WithContext(ctx))
			tr.Finish()
		}
	})
}

// serveStatsWithUptime replays the stack's GET /v1/stats response with an
// uptime_seconds field injected at the top level, giving every HTTP cmd a
// process-age signal for free. Non-200 or non-object bodies replay
// untouched.
func serveStatsWithUptime(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := httptest.NewRecorder()
	next.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if rec.Code == http.StatusOK {
		var stats map[string]json.RawMessage
		if err := json.Unmarshal(body, &stats); err == nil {
			stats["uptime_seconds"] = json.RawMessage(
				strconv.FormatFloat(Uptime().Seconds(), 'f', 3, 64))
			if merged, err := json.Marshal(stats); err == nil {
				body = append(merged, '\n')
			}
		}
	}
	for k, vs := range rec.Header() {
		if k == "Content-Length" { // body may have been rewritten
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(body)
}

func isDeltaStream(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		strings.HasPrefix(r.URL.Path, "/v1/stream/") &&
		strings.HasSuffix(r.URL.Path, "/deltas")
}
