package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// DebugPath is where Middleware serves the trace dump.
const DebugPath = "/debug/traces"

// SpansPath is where the telemetry aggregator ingests exported span
// batches (see internal/obs/telemetry); Middleware mounts it when
// MiddlewareConfig.Spans is set.
const SpansPath = "/debug/spans"

// FlightPath is where the forensics flight recorder serves its wide-event
// ring (see internal/obs/forensics); Middleware mounts it when
// MiddlewareConfig.Flight is set.
const FlightPath = "/debug/flight"

// IncidentPath is where the forensics layer serves the one-shot incident
// bundle (tar.gz); Middleware mounts it when MiddlewareConfig.Incident is
// set.
const IncidentPath = "/debug/incident"

// TraceHeader carries the trace ID on both directions of the wire: echoed
// on every traced response, and adopted from incoming requests so a
// router→cell forward keeps one trace identity across processes.
const TraceHeader = "X-Trace-Id"

// MaxTraceQueryLimit bounds the limit= parameter of GET /debug/traces.
const MaxTraceQueryLimit = 1024

// TracesJSON is the body of GET /debug/traces: the retained ring newest
// first, plus the slowest-N exemplars.
type TracesJSON struct {
	Recent  []TraceJSON `json:"recent"`
	Slowest []TraceJSON `json:"slowest"`
}

// TraceQuery is the validated query of GET /debug/traces.
type TraceQuery struct {
	// Limit caps how many traces each section returns; 0 means no cap.
	Limit int
	// MinDuration filters out traces that finished faster than it.
	MinDuration time.Duration
	// TraceID, when set, returns only the trace with exactly this ID —
	// the direct lookup an exemplar points at.
	TraceID string
}

// QueryError reports one rejected query parameter. Handlers answer it as
// a typed 400 JSON body instead of silently clamping the value.
type QueryError struct {
	Param  string `json:"param"`
	Value  string `json:"value"`
	Reason string `json:"reason"`
}

func (e *QueryError) Error() string {
	return "bad query parameter " + e.Param + "=" + e.Value + ": " + e.Reason
}

// ParseTraceQuery validates the /debug/traces query parameters. Out-of-
// range values are errors, not clamps: a monitoring script that asks for
// limit=5000 should learn the bound moved, not silently get 1024.
func ParseTraceQuery(q url.Values) (TraceQuery, error) {
	var tq TraceQuery
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return tq, &QueryError{Param: "limit", Value: v, Reason: "not an integer"}
		}
		if n < 1 {
			return tq, &QueryError{Param: "limit", Value: v, Reason: "must be >= 1"}
		}
		if n > MaxTraceQueryLimit {
			return tq, &QueryError{Param: "limit", Value: v, Reason: "must be <= " + strconv.Itoa(MaxTraceQueryLimit)}
		}
		tq.Limit = n
	}
	if v := q.Get("min_duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return tq, &QueryError{Param: "min_duration", Value: v, Reason: "not a duration (try 250ms)"}
		}
		if d < 0 {
			return tq, &QueryError{Param: "min_duration", Value: v, Reason: "must be >= 0"}
		}
		tq.MinDuration = d
	}
	if v := q.Get("trace_id"); v != "" {
		if !validWireID(v) {
			return tq, &QueryError{Param: "trace_id", Value: v, Reason: "not a valid trace id (1-64 chars of [0-9a-zA-Z_-])"}
		}
		tq.TraceID = v
	}
	return tq, nil
}

// WriteQueryError writes err as a 400 JSON body when it is a QueryError
// and reports whether it handled it.
func WriteQueryError(w http.ResponseWriter, err error) bool {
	qe, ok := err.(*QueryError)
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		*QueryError
	}{Error: "bad_query", QueryError: qe})
	return true
}

// FilterTraces applies a validated query to a trace list, preserving
// order.
func FilterTraces(ts []TraceJSON, q TraceQuery) []TraceJSON {
	out := ts[:0:0]
	for _, t := range ts {
		if q.TraceID != "" && t.TraceID != q.TraceID {
			continue
		}
		if q.MinDuration > 0 && time.Duration(t.TotalUS)*time.Microsecond < q.MinDuration {
			continue
		}
		out = append(out, t)
		if q.Limit > 0 && len(out) == q.Limit {
			break
		}
	}
	return out
}

// DebugHandler serves the trace dump as JSON (mounted by Middleware at
// DebugPath, and by the cmds on their -debug-addr servers next to pprof).
// It honours the validated limit/min_duration/trace_id query.
func (c *Collector) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := ParseTraceQuery(r.URL.Query())
		if err != nil {
			if !WriteQueryError(w, err) {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TracesJSON{
			Recent:  FilterTraces(c.Recent(), q),
			Slowest: FilterTraces(c.Slowest(), q),
		})
	})
}

// MiddlewareConfig customizes the debug surfaces of MiddlewareWith beyond
// the per-process defaults. The zero value reproduces Middleware.
type MiddlewareConfig struct {
	// Traces overrides the GET /debug/traces handler; the telemetry layer
	// substitutes its assembled cross-process view for the per-process
	// collector dump.
	Traces http.Handler
	// Spans, when non-nil, is mounted at POST /debug/spans — the telemetry
	// aggregator's ingest endpoint. Ingest requests are never traced.
	Spans http.Handler
	// Flight, when non-nil, is mounted at FlightPath — the forensics
	// flight recorder's wide-event query endpoint.
	Flight http.Handler
	// Incident, when non-nil, is mounted at IncidentPath — the forensics
	// incident-bundle download.
	Incident http.Handler
	// StatsSections are extra top-level sections injected into GET
	// /v1/stats responses, keyed by JSON field name. Fetchers run per
	// request; a nil return drops the section for that response.
	StatsSections map[string]func() any
	// Metrics are extra appenders run after the collector's own series on
	// GET /metrics.
	Metrics []func(io.Writer) error
}

// Middleware wraps a front-end handler with the observability boundary:
//
//   - every request gets a trace (per Collector sampling rules), carried
//     on the request context and finished when the handler returns; an
//     incoming X-Trace-Id header is adopted so cross-process hops share
//     one trace identity;
//   - the trace ID is echoed in the X-Trace-Id response header;
//   - GET /debug/traces serves the collector's ring + exemplars;
//   - GET /v1/version serves the binary's build info;
//   - GET /v1/stats responses get uptime_seconds and the collector's
//     histogram exemplars injected;
//   - GET /metrics responses get the obs histogram series appended, using
//     the same replay-and-append composition as the ctrl plane.
//
// Long-lived NDJSON delta streams (POST /v1/stream/{id}/deltas) are NOT
// traced as one request — a connection-spanning trace would be
// meaningless — the stream layer starts a fresh trace per delta instead.
// A nil collector returns next unchanged.
func Middleware(c *Collector, next http.Handler) http.Handler {
	return MiddlewareWith(c, MiddlewareConfig{}, next)
}

// MiddlewareWith is Middleware with the telemetry-plane extension points
// of MiddlewareConfig wired in.
func MiddlewareWith(c *Collector, mc MiddlewareConfig, next http.Handler) http.Handler {
	if c == nil {
		return next
	}
	traces := mc.Traces
	if traces == nil {
		traces = c.DebugHandler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == DebugPath:
			traces.ServeHTTP(w, r)
		case mc.Spans != nil && r.URL.Path == SpansPath:
			mc.Spans.ServeHTTP(w, r)
		case mc.Flight != nil && r.URL.Path == FlightPath:
			mc.Flight.ServeHTTP(w, r)
		case mc.Incident != nil && r.URL.Path == IncidentPath:
			mc.Incident.ServeHTTP(w, r)
		case r.URL.Path == VersionPath:
			VersionHandler().ServeHTTP(w, r)
		case r.Method == http.MethodGet && r.URL.Path == "/v1/stats":
			serveStatsMerged(w, r, next, c, mc.StatsSections)
		case r.Method == http.MethodGet && r.URL.Path == "/metrics":
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			_, _ = w.Write(rec.Body.Bytes())
			if rec.Code == http.StatusOK {
				_ = c.WritePrometheus(w)
				for _, f := range mc.Metrics {
					_ = f(w)
				}
			}
		case isDeltaStream(r):
			next.ServeHTTP(w, r)
		default:
			ctx, tr := c.StartTraceID(r.Context(), r.Header.Get(TraceHeader))
			if tr == nil {
				next.ServeHTTP(w, r)
				return
			}
			w.Header().Set(TraceHeader, tr.ID())
			next.ServeHTTP(w, r.WithContext(ctx))
			tr.Finish()
		}
	})
}

// serveStatsMerged replays the stack's GET /v1/stats response with
// uptime_seconds, the collector's histogram exemplars, and any configured
// extra sections injected at the top level. Non-200 or non-object bodies
// replay untouched.
func serveStatsMerged(w http.ResponseWriter, r *http.Request, next http.Handler, c *Collector, sections map[string]func() any) {
	rec := httptest.NewRecorder()
	next.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if rec.Code == http.StatusOK {
		var stats map[string]json.RawMessage
		if err := json.Unmarshal(body, &stats); err == nil {
			stats["uptime_seconds"] = json.RawMessage(
				strconv.FormatFloat(Uptime().Seconds(), 'f', 3, 64))
			if ex := c.Exemplars(); len(ex) > 0 {
				if raw, err := json.Marshal(ex); err == nil {
					stats["exemplars"] = raw
				}
			}
			for name, fetch := range sections {
				if fetch == nil {
					continue
				}
				v := fetch()
				if v == nil {
					continue
				}
				if raw, err := json.Marshal(v); err == nil {
					stats[name] = raw
				}
			}
			if merged, err := json.Marshal(stats); err == nil {
				body = append(merged, '\n')
			}
		}
	}
	for k, vs := range rec.Header() {
		if k == "Content-Length" { // body may have been rewritten
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(body)
}

func isDeltaStream(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		strings.HasPrefix(r.URL.Path, "/v1/stream/") &&
		strings.HasSuffix(r.URL.Path, "/deltas")
}
