package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"
)

// VersionPath is where Middleware serves the build-info report.
const VersionPath = "/v1/version"

// processStart anchors the uptime reported by Uptime and injected into
// GET /v1/stats. Package init runs before any listener comes up, so the
// value is a faithful process birth time for serving purposes.
var processStart = time.Now()

// Uptime returns how long this process has been running.
func Uptime() time.Duration { return time.Since(processStart) }

// VersionInfo is the GET /v1/version body: the module path and version
// plus the VCS revision baked in by the Go toolchain, so a deployed binary
// can always say which commit it was built from.
type VersionInfo struct {
	Module      string `json:"module"`
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	// VCSModified marks builds from a dirty working tree.
	VCSModified bool `json:"vcs_modified,omitempty"`
}

var (
	versionOnce sync.Once
	versionInfo VersionInfo
)

// Version reports the running binary's build information via
// debug.ReadBuildInfo (cached after the first call). Binaries built
// without module metadata (some test harnesses) report "(devel)" fields
// rather than failing.
func Version() VersionInfo {
	versionOnce.Do(func() {
		versionInfo = VersionInfo{Module: "unknown", Version: "(devel)"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		versionInfo.Module = bi.Main.Path
		if bi.Main.Version != "" {
			versionInfo.Version = bi.Main.Version
		}
		versionInfo.GoVersion = bi.GoVersion
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				versionInfo.VCSRevision = s.Value
			case "vcs.time":
				versionInfo.VCSTime = s.Value
			case "vcs.modified":
				versionInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return versionInfo
}

// VersionString renders the build info on one line for -version flags:
// "module version (revision, goN.NN)".
func VersionString() string {
	v := Version()
	rev := v.VCSRevision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "no vcs"
	}
	if v.VCSModified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s, %s)", v.Module, v.Version, rev, v.GoVersion)
}

// VersionHandler serves VersionPath (mounted by Middleware on every HTTP
// cmd, and mountable standalone).
func VersionHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(Version())
	})
}
