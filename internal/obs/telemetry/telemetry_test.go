package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/obs"
	"repro/internal/serve"
)

func testSystem(t testing.TB, n int, seed int64) *fl.System {
	t.Helper()
	sc := experiments.Default()
	sc.N = n
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func traceCollector() *obs.Collector {
	return obs.NewCollector(obs.Config{SampleEvery: 1, SlowThreshold: -1})
}

// TestTwoHopAssembledTrace runs a real two-process telemetry plane: a cell
// (serve.Server behind obs middleware) whose exporter POSTs span batches to
// the edge's /debug/spans, and an edge that forwards /v1/solve to the cell
// while exporting its own route span into the same aggregator in-process.
// One routed solve must come back from GET /debug/traces as ONE assembled
// trace containing both hops' spans — the route span from the edge and the
// queue/cache/solve/sp1/sp2 spans from the cell.
func TestTwoHopAssembledTrace(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()

	colCell := traceCollector()
	cellSrv := httptest.NewServer(obs.Middleware(colCell, srv.Handler()))
	defer cellSrv.Close()

	agg := NewAggregator(AggregatorConfig{})
	colEdge := traceCollector()
	edgeInner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tr := obs.FromContext(req.Context())
		began := time.Now()
		fwd, err := http.NewRequest(req.Method, cellSrv.URL+req.URL.Path, req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fwd.Header.Set("Content-Type", req.Header.Get("Content-Type"))
		fwd.Header.Set(obs.TraceHeader, tr.ID())
		resp, err := http.DefaultClient.Do(fwd)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		tr.RecordAttr(obs.PhaseRoute, began, obs.Attr{Cell: 0})
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	})
	edgeSrv := httptest.NewServer(obs.MiddlewareWith(colEdge, obs.MiddlewareConfig{
		Traces: TracesHandler(colEdge, agg),
		Spans:  agg.IngestHandler(),
	}, edgeInner))
	defer edgeSrv.Close()

	// The cell ships its spans across the wire to the edge's aggregator;
	// the edge feeds the same aggregator in-process.
	expCell := NewExporter(ExporterConfig{Origin: "cell-0", Target: edgeSrv.URL})
	defer expCell.Close()
	colCell.SetSink(expCell.Enqueue)
	expEdge := NewExporter(ExporterConfig{Origin: "router", Local: agg})
	defer expEdge.Close()
	colEdge.SetSink(expEdge.Enqueue)

	body := serve.SolveRequestJSON{System: serve.SystemToJSON(testSystem(t, 6, 41))}
	body.Weights.W1, body.Weights.W2 = 0.5, 0.5
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	const wireID = "assembled-trace-0123456789ab"
	req, err := http.NewRequest(http.MethodPost, edgeSrv.URL+"/v1/solve", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, wireID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve through both hops: status %d: %s", resp.StatusCode, b)
	}

	expCell.Flush()
	expEdge.Flush()

	tresp, err := http.Get(edgeSrv.URL + obs.DebugPath + "?trace_id=" + wireID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", obs.DebugPath, tresp.StatusCode)
	}
	var out TracesJSON
	if err := json.NewDecoder(tresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Assembled) != 1 {
		t.Fatalf("assembled traces %d, want exactly 1: %+v", len(out.Assembled), out.Assembled)
	}
	at := out.Assembled[0]
	if at.TraceID != wireID {
		t.Fatalf("assembled trace ID %q, want %q", at.TraceID, wireID)
	}
	hops := map[string]bool{}
	for _, h := range at.Hops {
		hops[h.Origin] = true
	}
	if !hops["router"] || !hops["cell-0"] {
		t.Fatalf("assembled hops %+v, want both router and cell-0", at.Hops)
	}
	byPhase := map[string]string{} // phase -> origin
	for _, s := range at.Spans {
		byPhase[s.Phase] = s.Origin
	}
	if byPhase[obs.PhaseRoute] != "router" {
		t.Fatalf("route span origin %q, want router (spans %+v)", byPhase[obs.PhaseRoute], at.Spans)
	}
	for _, phase := range []string{obs.PhaseQueueWait, obs.PhaseCacheLookup, obs.PhaseSolve, obs.PhaseSP1, obs.PhaseSP2} {
		if byPhase[phase] != "cell-0" {
			t.Fatalf("phase %q origin %q, want cell-0 (spans %+v)", phase, byPhase[phase], at.Spans)
		}
	}
	if at.EndToEndUS <= 0 {
		t.Fatalf("assembled end-to-end %d µs, want > 0", at.EndToEndUS)
	}
	// Span ordering: the assembled timeline is sorted by start.
	for i := 1; i < len(at.Spans); i++ {
		if at.Spans[i].StartUS < at.Spans[i-1].StartUS {
			t.Fatalf("assembled spans out of order at %d: %+v", i, at.Spans)
		}
	}
}

// TestExporterOverflowCountsDrops fills a tiny export buffer faster than it
// flushes and checks overflow is dropped (never blocking the caller) and
// counted, while everything that fit still assembles.
func TestExporterOverflowCountsDrops(t *testing.T) {
	agg := NewAggregator(AggregatorConfig{})
	exp := NewExporter(ExporterConfig{
		Origin:        "cell-0",
		Local:         agg,
		BufferTraces:  4,
		FlushTraces:   1 << 20, // never size-triggered
		FlushInterval: time.Hour,
	})
	for i := 0; i < 32; i++ {
		exp.Enqueue(obs.TraceJSON{
			TraceID: "overflow-" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Spans:   []obs.Span{{Phase: obs.PhaseSolve, DurUS: 5}, {Phase: obs.PhaseTotal, DurUS: 7}},
		})
	}
	if got := exp.SpansDropped(); got != int64(2*(32-4)) {
		t.Fatalf("spans dropped %d, want %d", got, 2*(32-4))
	}
	exp.Close() // flushes the surviving tail
	st := agg.StatsJSON()
	if st.Traces != 4 || st.SpansIngested != 8 {
		t.Fatalf("aggregator got %d traces / %d spans, want 4 / 8", st.Traces, st.SpansIngested)
	}
	es := exp.StatsJSON()
	if es.SpansExported != 8 || es.SpansDropped != 56 {
		t.Fatalf("exporter stats %+v, want 8 exported / 56 dropped", es)
	}
	// The drop counter must surface on /metrics.
	var buf bytes.Buffer
	if err := exp.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_spans_dropped_total 56") {
		t.Fatalf("obs_spans_dropped_total missing from exposition:\n%s", buf.String())
	}
}

// TestAggregatorClockSkew feeds two hops whose batches claim send times in
// the past and checks the skew annotation and the re-anchored end-to-end
// latency: a hop whose clock runs 1s ahead must not inflate the assembled
// duration by that second.
func TestAggregatorClockSkew(t *testing.T) {
	agg := NewAggregator(AggregatorConfig{SlowThreshold: -1})
	recv := time.Now()
	hopStart := recv.Add(-10 * time.Millisecond)

	// Router hop: clock agrees with the aggregator (skew 0), 10ms total.
	agg.Ingest(Batch{
		Origin:     "router",
		SentUnixNS: recv.UnixNano(),
		Traces: []obs.TraceJSON{{
			TraceID: "skewed-trace-1",
			Start:   hopStart,
			TotalUS: 10_000,
			Spans:   []obs.Span{{Phase: obs.PhaseRoute, DurUS: 10_000}},
		}},
	}, recv)
	// Cell hop: its clock runs 1s ahead, so its timestamps land 1s in the
	// future and its batch claims a send time 1s after our receive clock.
	skew := time.Second
	agg.Ingest(Batch{
		Origin:     "cell-0",
		SentUnixNS: recv.Add(skew).UnixNano(),
		Traces: []obs.TraceJSON{{
			TraceID: "skewed-trace-1",
			Start:   hopStart.Add(skew + 2*time.Millisecond),
			TotalUS: 6_000,
			Spans:   []obs.Span{{Phase: obs.PhaseSolve, StartUS: 1_000, DurUS: 5_000}},
		}},
	}, recv)

	got := agg.Assembled(obs.TraceQuery{TraceID: "skewed-trace-1"})
	if len(got) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(got))
	}
	at := got[0]
	var cellHop *HopJSON
	for i := range at.Hops {
		if at.Hops[i].Origin == "cell-0" {
			cellHop = &at.Hops[i]
		}
	}
	if cellHop == nil {
		t.Fatalf("cell hop missing: %+v", at.Hops)
	}
	if cellHop.ClockSkewUS != -skew.Microseconds() {
		t.Fatalf("cell clock skew %d µs, want %d", cellHop.ClockSkewUS, -skew.Microseconds())
	}
	// Re-anchored: the cell hop starts 2ms after the router hop, runs 6ms,
	// so end-to-end is the router's 10ms — not 1s+.
	if at.EndToEndUS != 10_000 {
		t.Fatalf("end-to-end %d µs, want 10000 (skew not re-anchored)", at.EndToEndUS)
	}
}

// TestAggregatorEvictionPrefersFast fills retention and checks the slow
// trace survives eviction while fast ones rotate out.
func TestAggregatorEvictionPrefersFast(t *testing.T) {
	agg := NewAggregator(AggregatorConfig{MaxTraces: 3, SlowThreshold: 50 * time.Millisecond})
	now := time.Now()
	add := func(id string, totalUS int64) {
		agg.Ingest(Batch{Origin: "router", SentUnixNS: now.UnixNano(), Traces: []obs.TraceJSON{{
			TraceID: id, Start: now, TotalUS: totalUS,
			Spans: []obs.Span{{Phase: obs.PhaseTotal, DurUS: totalUS}},
		}}}, now)
	}
	add("slow-one", 80_000) // over the threshold: protected
	add("fast-a", 1_000)
	add("fast-b", 1_000)
	add("fast-c", 1_000) // evicts fast-a, not slow-one
	ids := map[string]bool{}
	for _, tr := range agg.Assembled(obs.TraceQuery{}) {
		ids[tr.TraceID] = true
	}
	if !ids["slow-one"] || ids["fast-a"] || !ids["fast-b"] || !ids["fast-c"] {
		t.Fatalf("retained %v, want slow-one protected and fast-a evicted", ids)
	}
	if st := agg.StatsJSON(); st.TracesEvicted != 1 {
		t.Fatalf("evicted %d, want 1", st.TracesEvicted)
	}
	if !agg.Slowest(obs.TraceQuery{})[0].Slow {
		t.Fatal("slowest assembled trace not marked slow")
	}
}

// TestTracesHandlerQueryValidation checks malformed /debug/traces queries
// come back as typed 400s naming the offending parameter, and that valid
// trace_id filtering narrows every section.
func TestTracesHandlerQueryValidation(t *testing.T) {
	col := traceCollector()
	agg := NewAggregator(AggregatorConfig{SlowThreshold: -1})
	_, tr := col.StartTrace(context.Background())
	tr.Mark(obs.PhaseSolve, obs.Attr{})
	tr.Finish()
	keep := tr.ID()
	_, tr2 := col.StartTrace(context.Background())
	tr2.Finish()
	ts := httptest.NewServer(TracesHandler(col, agg))
	defer ts.Close()

	for _, tc := range []struct{ query, param string }{
		{"?limit=0", "limit"},
		{"?limit=-3", "limit"},
		{"?limit=nope", "limit"},
		{"?limit=99999", "limit"},
		{"?min_duration=fast", "min_duration"},
		{"?min_duration=-5ms", "min_duration"},
		{"?trace_id=bad%20id!", "trace_id"},
	} {
		resp, err := http.Get(ts.URL + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
			Param string `json:"param"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		if resp.StatusCode != http.StatusBadRequest || body.Error != "bad_query" || body.Param != tc.param {
			t.Fatalf("%s: status %d body %+v, want 400 bad_query on %q", tc.query, resp.StatusCode, body, tc.param)
		}
	}

	resp, err := http.Get(ts.URL + "?trace_id=" + keep + "&limit=5&min_duration=0s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid query: status %d", resp.StatusCode)
	}
	var out TracesJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) != 1 || out.Recent[0].TraceID != keep {
		t.Fatalf("trace_id filter returned %+v, want only %q", out.Recent, keep)
	}
}

// TestIngestHandlerRejectsBadInput checks the span-ingest endpoint refuses
// non-POSTs and undecodable bodies without disturbing the aggregator.
func TestIngestHandlerRejectsBadInput(t *testing.T) {
	agg := NewAggregator(AggregatorConfig{})
	ts := httptest.NewServer(agg.IngestHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || body.Error != "bad_batch" {
		t.Fatalf("garbage body: status %d error %q, want 400 bad_batch", resp.StatusCode, body.Error)
	}
	if st := agg.StatsJSON(); st.Batches != 0 || st.SpansIngested != 0 {
		t.Fatalf("aggregator mutated by rejected input: %+v", st)
	}
}

// TestDashboardSSE opens the dashboard feed at a fast interval and checks
// the SSE framing plus a live section in the first frame.
func TestDashboardSSE(t *testing.T) {
	ts := httptest.NewServer(DashboardHandler(DashboardConfig{
		Interval: MinDashboardInterval,
		Sources: []Source{
			{Name: "cluster", Fetch: func() any { return map[string]int{"cells": 3} }},
		},
	}))
	defer ts.Close()

	// Bad interval: typed 400.
	resp, err := http.Get(ts.URL + "?interval=warp")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad interval: status %d, want 400", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawEvent bool
	var data string
	for sc.Scan() {
		line := sc.Text()
		if line == "event: tick" {
			sawEvent = true
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if !sawEvent || data == "" {
		t.Fatalf("SSE framing missing (event seen: %t, data %q)", sawEvent, data)
	}
	var fr struct {
		Seq      int64                      `json:"seq"`
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal([]byte(data), &fr); err != nil {
		t.Fatalf("dashboard frame not JSON: %v\n%s", err, data)
	}
	if string(fr.Sections["cluster"]) != `{"cells":3}` {
		t.Fatalf("cluster section %s, want {\"cells\":3}", fr.Sections["cluster"])
	}
	cancel() // the handler must stop on client disconnect
}
