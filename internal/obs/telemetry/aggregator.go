package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Aggregator defaults.
const (
	DefaultMaxTraces        = 256
	DefaultMaxSpansPerTrace = 512
	DefaultSlowestAssembled = 8
	DefaultMaxBodyBytes     = 8 << 20
)

// AggregatorConfig tunes an Aggregator; the zero value is usable.
type AggregatorConfig struct {
	// MaxTraces bounds the assembled-trace retention; overflow evicts the
	// oldest non-slow trace (slow ones survive while anything faster can
	// go instead).
	MaxTraces int
	// MaxSpansPerTrace caps one trace's stitched span count; overflow is
	// dropped and counted.
	MaxSpansPerTrace int
	// SlowThreshold promotes assembled traces whose end-to-end latency
	// reaches it. Zero means the default; negative disables promotion.
	SlowThreshold time.Duration
	// Slowest is the size of the slowest-assembled exemplar list.
	Slowest int
	// MaxBodyBytes caps a POST /debug/spans request body.
	MaxBodyBytes int64
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.MaxTraces <= 0 {
		c.MaxTraces = DefaultMaxTraces
	}
	if c.MaxSpansPerTrace <= 0 {
		c.MaxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = obs.DefaultSlowThreshold
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0
	}
	if c.Slowest <= 0 {
		c.Slowest = DefaultSlowestAssembled
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// hopRecord is one process's contribution to an assembled trace.
type hopRecord struct {
	origin  string
	start   time.Time // the hop's own clock
	totalUS int64
	skewUS  int64 // apparent skew of the hop's clock vs the aggregator's
	spans   []obs.Span
}

// assembled is the aggregator's working record of one distributed trace.
type assembled struct {
	id    string
	seq   int64 // arrival order, for FIFO eviction
	hops  []*hopRecord
	spans int
}

// endToEnd computes the assembled trace's skew-adjusted start and
// end-to-end duration in microseconds.
func (a *assembled) endToEnd() (time.Time, int64) {
	var start time.Time
	var end int64 // µs since start
	for i, h := range a.hops {
		adj := h.start.Add(time.Duration(h.skewUS) * time.Microsecond)
		if i == 0 || adj.Before(start) {
			start = adj
		}
	}
	for _, h := range a.hops {
		adj := h.start.Add(time.Duration(h.skewUS) * time.Microsecond)
		if e := adj.Sub(start).Microseconds() + h.totalUS; e > end {
			end = e
		}
	}
	return start, end
}

// Aggregator stitches per-hop span exports into assembled cross-process
// traces keyed by trace ID. Hops report on their own clocks; each batch's
// apparent skew (aggregator receive time minus the batch's send stamp —
// an upper bound that includes transit) re-anchors its spans onto one
// timeline, so a router route span and the cell spans it covers nest
// sensibly even across machines.
type Aggregator struct {
	cfg AggregatorConfig

	mu   sync.Mutex
	byID map[string]*assembled
	seq  int64

	batches      atomic.Int64
	spansIn      atomic.Int64
	spansDropped atomic.Int64
	evicted      atomic.Int64
}

// NewAggregator builds an aggregator; the zero config applies defaults.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	return &Aggregator{
		cfg:  cfg.withDefaults(),
		byID: make(map[string]*assembled),
	}
}

// Ingest merges one exported batch, received at recv on the aggregator's
// clock, into the assembled state.
func (a *Aggregator) Ingest(b Batch, recv time.Time) {
	if a == nil {
		return
	}
	skewUS := (recv.UnixNano() - b.SentUnixNS) / 1e3
	a.batches.Add(1)
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, t := range b.Traces {
		if t.TraceID == "" {
			a.spansDropped.Add(int64(len(t.Spans)))
			continue
		}
		e := a.byID[t.TraceID]
		if e == nil {
			a.evictLocked()
			a.seq++
			e = &assembled{id: t.TraceID, seq: a.seq}
			a.byID[t.TraceID] = e
		}
		var hop *hopRecord
		for _, h := range e.hops {
			if h.origin == b.Origin {
				hop = h
				break
			}
		}
		if hop == nil {
			hop = &hopRecord{origin: b.Origin, start: t.Start}
			e.hops = append(e.hops, hop)
		}
		hop.skewUS = skewUS
		if t.TotalUS > hop.totalUS {
			hop.totalUS = t.TotalUS
		}
		for _, s := range t.Spans {
			if e.spans >= a.cfg.MaxSpansPerTrace {
				a.spansDropped.Add(1)
				continue
			}
			hop.spans = append(hop.spans, s)
			e.spans++
			a.spansIn.Add(1)
		}
	}
}

// evictLocked makes room for one more trace, preferring to evict the
// oldest trace below the slow threshold so slow-solve evidence survives
// churn (the end-to-end analogue of the collector's slow promotion).
func (a *Aggregator) evictLocked() {
	if len(a.byID) < a.cfg.MaxTraces {
		return
	}
	var victim, oldest *assembled
	for _, e := range a.byID {
		if oldest == nil || e.seq < oldest.seq {
			oldest = e
		}
		if a.cfg.SlowThreshold > 0 {
			if _, total := e.endToEnd(); time.Duration(total)*time.Microsecond >= a.cfg.SlowThreshold {
				continue // slow: protected
			}
		}
		if victim == nil || e.seq < victim.seq {
			victim = e
		}
	}
	if victim == nil {
		victim = oldest // everything is slow: evict the oldest anyway
	}
	if victim != nil {
		delete(a.byID, victim.id)
		a.evicted.Add(1)
	}
}

// HopJSON summarizes one process's contribution to an assembled trace.
type HopJSON struct {
	// Origin names the exporting process.
	Origin string `json:"origin"`
	// Start is the hop's start re-anchored onto the aggregator's clock.
	Start time.Time `json:"start"`
	// TotalUS is the hop's own end-to-end duration.
	TotalUS int64 `json:"total_us"`
	// ClockSkewUS is the hop's apparent clock skew versus the aggregator:
	// batch receive time minus the hop's send stamp (transit included, so
	// an upper bound). Negative means the hop's clock runs ahead; the
	// hop's timestamps are shifted by this amount onto the aggregator's
	// timeline.
	ClockSkewUS int64 `json:"clock_skew_us"`
	// Spans is how many spans the hop contributed.
	Spans int `json:"spans"`
}

// AssembledSpanJSON is a span on the assembled timeline, tagged with the
// hop that recorded it. StartUS is relative to the assembled trace start.
type AssembledSpanJSON struct {
	Origin string `json:"origin"`
	obs.Span
}

// AssembledTraceJSON is one stitched cross-process trace in
// GET /debug/traces.
type AssembledTraceJSON struct {
	TraceID string `json:"trace_id"`
	// Start is the earliest skew-adjusted hop start.
	Start time.Time `json:"start"`
	// EndToEndUS is the distributed end-to-end latency: latest hop end
	// minus earliest hop start on the adjusted timeline.
	EndToEndUS int64     `json:"end_to_end_us"`
	Slow       bool      `json:"slow"`
	Hops       []HopJSON `json:"hops"`
	// Spans are every hop's spans re-offset onto the assembled timeline,
	// ordered by start.
	Spans []AssembledSpanJSON `json:"spans"`
}

// render materializes one assembled trace. Caller holds a.mu.
func (a *Aggregator) render(e *assembled) AssembledTraceJSON {
	start, total := e.endToEnd()
	out := AssembledTraceJSON{
		TraceID:    e.id,
		Start:      start,
		EndToEndUS: total,
		Slow:       a.cfg.SlowThreshold > 0 && time.Duration(total)*time.Microsecond >= a.cfg.SlowThreshold,
	}
	for _, h := range e.hops {
		adj := h.start.Add(time.Duration(h.skewUS) * time.Microsecond)
		offset := adj.Sub(start).Microseconds()
		out.Hops = append(out.Hops, HopJSON{
			Origin:      h.origin,
			Start:       adj,
			TotalUS:     h.totalUS,
			ClockSkewUS: h.skewUS,
			Spans:       len(h.spans),
		})
		for _, s := range h.spans {
			s.StartUS += offset
			out.Spans = append(out.Spans, AssembledSpanJSON{Origin: h.origin, Span: s})
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].StartUS < out.Spans[j].StartUS })
	sort.SliceStable(out.Hops, func(i, j int) bool { return out.Hops[i].Start.Before(out.Hops[j].Start) })
	return out
}

// matches applies the non-limit parts of a trace query to an assembled
// trace.
func matchesQuery(t AssembledTraceJSON, q obs.TraceQuery) bool {
	if q.TraceID != "" && t.TraceID != q.TraceID {
		return false
	}
	if q.MinDuration > 0 && time.Duration(t.EndToEndUS)*time.Microsecond < q.MinDuration {
		return false
	}
	return true
}

// Assembled returns the assembled traces matching q, newest first.
func (a *Aggregator) Assembled(q obs.TraceQuery) []AssembledTraceJSON {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	entries := make([]*assembled, 0, len(a.byID))
	for _, e := range a.byID {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq > entries[j].seq })
	out := make([]AssembledTraceJSON, 0, len(entries))
	for _, e := range entries {
		t := a.render(e)
		if !matchesQuery(t, q) {
			continue
		}
		out = append(out, t)
		if q.Limit > 0 && len(out) == q.Limit {
			break
		}
	}
	return out
}

// Slowest returns the slowest assembled traces by end-to-end latency,
// slowest first, capped at the configured exemplar count (and q.Limit if
// tighter).
func (a *Aggregator) Slowest(q obs.TraceQuery) []AssembledTraceJSON {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	all := make([]AssembledTraceJSON, 0, len(a.byID))
	for _, e := range a.byID {
		t := a.render(e)
		if !matchesQuery(t, q) {
			continue
		}
		all = append(all, t)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].EndToEndUS > all[j].EndToEndUS })
	n := a.cfg.Slowest
	if q.Limit > 0 && q.Limit < n {
		n = q.Limit
	}
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// IngestHandler serves POST /debug/spans: the wire side of Ingest.
func (a *Aggregator) IngestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var b Batch
		body := http.MaxBytesReader(w, r.Body, a.cfg.MaxBodyBytes)
		if err := json.NewDecoder(body).Decode(&b); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "bad_batch", "reason": err.Error()})
			return
		}
		a.Ingest(b, time.Now())
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": true, "traces": len(b.Traces)})
	})
}

// TracesJSON is the combined body of GET /debug/traces on a process that
// runs an aggregator: the local collector's view plus the assembled
// cross-process traces.
type TracesJSON struct {
	Recent           []obs.TraceJSON      `json:"recent"`
	Slowest          []obs.TraceJSON      `json:"slowest"`
	Assembled        []AssembledTraceJSON `json:"assembled"`
	AssembledSlowest []AssembledTraceJSON `json:"assembled_slowest"`
}

// TracesHandler serves the combined GET /debug/traces view, honouring the
// validated limit/min_duration/trace_id query on every section. Either
// argument may be nil; its sections come back empty.
func TracesHandler(col *obs.Collector, agg *Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := obs.ParseTraceQuery(r.URL.Query())
		if err != nil {
			if !obs.WriteQueryError(w, err) {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(TracesJSON{
			Recent:           obs.FilterTraces(col.Recent(), q),
			Slowest:          obs.FilterTraces(col.Slowest(), q),
			Assembled:        agg.Assembled(q),
			AssembledSlowest: agg.Slowest(q),
		})
	})
}

// AggregatorStatsJSON is the aggregator's /v1/stats section.
type AggregatorStatsJSON struct {
	Traces        int   `json:"traces"`
	Batches       int64 `json:"batches"`
	SpansIngested int64 `json:"spans_ingested"`
	SpansDropped  int64 `json:"spans_dropped"`
	TracesEvicted int64 `json:"traces_evicted"`
}

// StatsJSON snapshots the aggregator's counters.
func (a *Aggregator) StatsJSON() AggregatorStatsJSON {
	if a == nil {
		return AggregatorStatsJSON{}
	}
	a.mu.Lock()
	n := len(a.byID)
	a.mu.Unlock()
	return AggregatorStatsJSON{
		Traces:        n,
		Batches:       a.batches.Load(),
		SpansIngested: a.spansIn.Load(),
		SpansDropped:  a.spansDropped.Load(),
		TracesEvicted: a.evicted.Load(),
	}
}

// WritePrometheus appends the aggregator's series to a /metrics
// exposition. Names are disjoint from the Exporter's so a process running
// both (a router exporting to itself) emits no duplicates.
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	if a == nil {
		return nil
	}
	s := a.StatsJSON()
	var b []byte
	emit := func(name, typ, help string, v int64) {
		b = append(b, "# HELP "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, typ...)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, v, 10)
		b = append(b, '\n')
	}
	emit("obs_span_batches_received_total", "counter", "Span batches ingested by the aggregator.", s.Batches)
	emit("obs_assembly_spans_total", "counter", "Spans stitched into assembled traces.", s.SpansIngested)
	emit("obs_assembly_spans_dropped_total", "counter", "Spans dropped at the per-trace stitch cap.", s.SpansDropped)
	emit("obs_assembled_traces", "gauge", "Assembled traces currently retained.", int64(s.Traces))
	emit("obs_assembled_traces_evicted_total", "counter", "Assembled traces evicted to make room.", s.TracesEvicted)
	_, err := w.Write(b)
	return err
}
