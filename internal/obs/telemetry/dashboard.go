package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// DashboardPath is where the cmds mount the SSE ops dashboard on their
// -debug-addr servers.
const DashboardPath = "/debug/dashboard"

// Dashboard interval bounds for the ?interval= override.
const (
	DefaultDashboardInterval = time.Second
	MinDashboardInterval     = 100 * time.Millisecond
	MaxDashboardInterval     = time.Minute
)

// Source is one named section of the dashboard feed. Fetch runs once per
// tick on the request goroutine; a nil return drops the section from that
// frame.
type Source struct {
	Name  string
	Fetch func() any
}

// DashboardConfig wires the dashboard's data sources.
type DashboardConfig struct {
	// Interval is the default frame cadence; clients may override with a
	// validated ?interval= duration.
	Interval time.Duration
	// Sources are rendered into each frame in order.
	Sources []Source
}

// frame is one SSE data payload.
type frame struct {
	Seq      int64          `json:"seq"`
	At       time.Time      `json:"at"`
	Sections map[string]any `json:"sections"`
}

// DashboardHandler serves GET /debug/dashboard as a Server-Sent Events
// stream: one `tick` event per interval whose data is a JSON object with
// a section per configured source (health windows, alert ring, per-cell
// rates, in-flight trace summaries — whatever the cmd wired). The stream
// runs until the client disconnects. `curl -N` renders it live.
func DashboardHandler(cfg DashboardConfig) http.Handler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultDashboardInterval
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		interval := cfg.Interval
		if v := r.URL.Query().Get("interval"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				_ = obs.WriteQueryError(w, &obs.QueryError{Param: "interval", Value: v, Reason: "not a duration (try 500ms)"})
				return
			}
			if d < MinDashboardInterval || d > MaxDashboardInterval {
				_ = obs.WriteQueryError(w, &obs.QueryError{Param: "interval", Value: v,
					Reason: "must be between " + MinDashboardInterval.String() + " and " + MaxDashboardInterval.String()})
				return
			}
			interval = d
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var seq int64
		emit := func() bool {
			seq++
			f := frame{Seq: seq, At: time.Now(), Sections: make(map[string]any, len(cfg.Sources))}
			for _, s := range cfg.Sources {
				if s.Fetch == nil {
					continue
				}
				if v := s.Fetch(); v != nil {
					f.Sections[s.Name] = v
				}
			}
			data, err := json.Marshal(f)
			if err != nil {
				return false
			}
			if _, err := w.Write(append(append(append(append(
				[]byte("event: tick\nid: "), strconv.FormatInt(seq, 10)...), "\ndata: "...), data...), "\n\n"...)); err != nil {
				return false
			}
			flusher.Flush()
			return true
		}
		if !emit() { // first frame immediately, then on the ticker
			return
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case <-ticker.C:
				if !emit() {
					return
				}
			}
		}
	})
}
