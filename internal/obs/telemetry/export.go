// Package telemetry turns the per-process obs collectors into a
// cluster-wide plane. Cells hang an Exporter off their collector's sink:
// finished traces buffer in a bounded queue and flush — on an interval or
// when the batch fills — to an Aggregator, either in-process or across the
// wire via POST /debug/spans. The aggregator stitches the per-hop exports
// back into assembled cross-process traces keyed by trace ID, annotates
// each hop's apparent clock skew, promotes slow traces on end-to-end
// latency, and serves the combined GET /debug/traces view plus the live
// SSE ops dashboard.
package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Batch is one exporter flush on the wire: the body of POST /debug/spans.
type Batch struct {
	// Origin names the exporting hop (one per process, e.g. "router",
	// "cell-0"); the aggregator tags every contributed span with it.
	Origin string `json:"origin"`
	// SentUnixNS is the origin's wall clock at flush time. The aggregator
	// compares it against its own receive clock to annotate the hop's
	// apparent skew (clock offset plus transit time).
	SentUnixNS int64 `json:"sent_unix_ns"`
	// Traces are the finished traces of this batch.
	Traces []obs.TraceJSON `json:"traces"`
}

// Exporter defaults.
const (
	DefaultBufferTraces  = 256
	DefaultFlushTraces   = 32
	DefaultFlushInterval = 500 * time.Millisecond
)

// ExporterConfig tunes an Exporter. At least one of Target and Local must
// be set for flushes to go anywhere; both may be.
type ExporterConfig struct {
	// Origin names this hop in every batch it sends.
	Origin string
	// Target is the remote aggregator's base URL (the /debug/spans path is
	// appended when missing). Empty disables remote delivery.
	Target string
	// Local is an in-process aggregator fed directly, skipping the wire —
	// how a single-process flcluster self-assembles its router and cell
	// spans.
	Local *Aggregator
	// BufferTraces bounds the pending-trace queue; once full, further
	// traces are dropped and their spans counted in obs_spans_dropped_total.
	BufferTraces int
	// FlushTraces triggers an early flush when the buffer reaches it.
	FlushTraces int
	// FlushInterval is the periodic flush cadence.
	FlushInterval time.Duration
	// Client posts remote batches; nil uses a 2s-timeout client.
	Client *http.Client
	// Logger receives delivery-failure debug logs; nil uses slog.Default().
	Logger *slog.Logger
}

func (c ExporterConfig) withDefaults() ExporterConfig {
	if c.BufferTraces <= 0 {
		c.BufferTraces = DefaultBufferTraces
	}
	if c.FlushTraces <= 0 {
		c.FlushTraces = DefaultFlushTraces
	}
	if c.FlushTraces > c.BufferTraces {
		c.FlushTraces = c.BufferTraces
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Target != "" && !strings.Contains(c.Target, obs.SpansPath) {
		c.Target = strings.TrimSuffix(c.Target, "/") + obs.SpansPath
	}
	return c
}

// Exporter batches finished traces toward an aggregator. Enqueue is
// non-blocking and drop-counting, so a slow or absent aggregator can never
// stall serving: the bounded buffer absorbs bursts, overflow is dropped
// and counted, and a background goroutine flushes on interval or size.
type Exporter struct {
	cfg ExporterConfig

	mu  sync.Mutex
	buf []obs.TraceJSON

	spansExported atomic.Int64
	spansDropped  atomic.Int64
	flushes       atomic.Int64
	sendErrors    atomic.Int64

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewExporter builds an exporter and starts its flush loop. Close it to
// flush the tail and stop the goroutine.
func NewExporter(cfg ExporterConfig) *Exporter {
	e := &Exporter{
		cfg:  cfg.withDefaults(),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	e.buf = make([]obs.TraceJSON, 0, e.cfg.BufferTraces)
	e.wg.Add(1)
	go e.loop()
	return e
}

// Enqueue buffers one finished trace for export; pass it to
// Collector.SetSink. Never blocks: a full buffer drops the trace and
// counts its spans as dropped.
func (e *Exporter) Enqueue(t obs.TraceJSON) {
	e.mu.Lock()
	if len(e.buf) >= e.cfg.BufferTraces {
		e.mu.Unlock()
		e.spansDropped.Add(int64(len(t.Spans)))
		return
	}
	e.buf = append(e.buf, t)
	n := len(e.buf)
	e.mu.Unlock()
	if n >= e.cfg.FlushTraces {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
}

func (e *Exporter) loop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.Flush()
		case <-e.kick:
			e.Flush()
		case <-e.done:
			e.Flush()
			return
		}
	}
}

// Flush synchronously delivers everything buffered. The background loop
// calls it on its triggers; tests and shutdown paths call it directly.
func (e *Exporter) Flush() {
	e.mu.Lock()
	if len(e.buf) == 0 {
		e.mu.Unlock()
		return
	}
	traces := e.buf
	e.buf = make([]obs.TraceJSON, 0, e.cfg.BufferTraces)
	e.mu.Unlock()

	batch := Batch{
		Origin:     e.cfg.Origin,
		SentUnixNS: time.Now().UnixNano(),
		Traces:     traces,
	}
	var spans int64
	for i := range traces {
		spans += int64(len(traces[i].Spans))
	}
	if e.cfg.Local != nil {
		e.cfg.Local.Ingest(batch, time.Now())
	}
	if e.cfg.Target != "" {
		if err := e.post(batch); err != nil {
			e.sendErrors.Add(1)
			e.cfg.Logger.Debug("span export failed",
				"target", e.cfg.Target, "traces", len(traces), "err", err)
		}
	}
	e.spansExported.Add(spans)
	e.flushes.Add(1)
}

func (e *Exporter) post(batch Batch) error {
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	resp, err := e.cfg.Client.Post(e.cfg.Target, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return &statusError{resp.StatusCode}
	}
	return nil
}

type statusError struct{ code int }

func (e *statusError) Error() string { return "aggregator returned status " + strconv.Itoa(e.code) }

// Close flushes the tail and stops the background loop. Idempotent.
func (e *Exporter) Close() {
	e.once.Do(func() { close(e.done) })
	e.wg.Wait()
}

// SpansDropped reports spans lost to export-buffer overflow.
func (e *Exporter) SpansDropped() int64 { return e.spansDropped.Load() }

// ExporterStatsJSON is the exporter's /v1/stats section.
type ExporterStatsJSON struct {
	Origin        string `json:"origin"`
	SpansExported int64  `json:"spans_exported"`
	SpansDropped  int64  `json:"spans_dropped"`
	Flushes       int64  `json:"flushes"`
	SendErrors    int64  `json:"send_errors"`
}

// StatsJSON snapshots the exporter's counters.
func (e *Exporter) StatsJSON() ExporterStatsJSON {
	if e == nil {
		return ExporterStatsJSON{}
	}
	return ExporterStatsJSON{
		Origin:        e.cfg.Origin,
		SpansExported: e.spansExported.Load(),
		SpansDropped:  e.spansDropped.Load(),
		Flushes:       e.flushes.Load(),
		SendErrors:    e.sendErrors.Load(),
	}
}

// WritePrometheus appends the exporter's obs_span* counters to a /metrics
// exposition.
func (e *Exporter) WritePrometheus(w io.Writer) error {
	if e == nil {
		return nil
	}
	var b []byte
	for _, ctr := range []struct {
		name, help string
		v          int64
	}{
		{"obs_spans_exported_total", "Spans flushed out of the export buffer.", e.spansExported.Load()},
		{"obs_spans_dropped_total", "Spans dropped on export-buffer overflow.", e.spansDropped.Load()},
		{"obs_span_flushes_total", "Export batches flushed.", e.flushes.Load()},
		{"obs_span_export_errors_total", "Remote batch deliveries that failed.", e.sendErrors.Load()},
	} {
		b = append(b, "# HELP "...)
		b = append(b, ctr.name...)
		b = append(b, ' ')
		b = append(b, ctr.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, ctr.name...)
		b = append(b, " counter\n"...)
		b = append(b, ctr.name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, ctr.v, 10)
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}
