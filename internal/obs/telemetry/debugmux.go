package telemetry

import (
	"io"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
	"repro/internal/obs/forensics"
)

// DebugMuxConfig wires the shared -debug-addr surface. Every cmd mounts
// the same mux so the debug endpoints behave identically across
// flserved, flcluster, flopt, and experiments — pprof is always present;
// everything else mounts only when wired.
type DebugMuxConfig struct {
	// Collector serves /debug/traces (raw per-process traces); with an
	// Aggregator too, the handler merges assembled cross-cell traces in.
	Collector  *obs.Collector
	Aggregator *Aggregator
	// Dashboard, when non-nil, mounts the SSE ops dashboard.
	Dashboard *DashboardConfig
	// Flight, when non-nil, serves /debug/flight (the wide-event window).
	Flight *forensics.FlightRecorder
	// Incident, when non-nil, serves the one-shot /debug/incident bundle.
	Incident http.Handler
	// Metrics, when non-nil, mirrors the process's /metrics exposition on
	// the debug listener (for cmds whose public listener doesn't carry
	// one, or for scraping past a saturated public port).
	Metrics http.Handler
}

// DebugMux builds the standalone debug mux mounted on -debug-addr: the
// profiling surface never rides the public listener, and every cmd gets
// the identical endpoint set.
func DebugMux(cfg DebugMuxConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.Collector != nil {
		if cfg.Aggregator != nil {
			mux.Handle(obs.DebugPath, TracesHandler(cfg.Collector, cfg.Aggregator))
		} else {
			mux.Handle(obs.DebugPath, cfg.Collector.DebugHandler())
		}
	}
	if cfg.Dashboard != nil {
		mux.Handle(DashboardPath, DashboardHandler(*cfg.Dashboard))
	}
	if cfg.Flight != nil {
		mux.Handle(obs.FlightPath, cfg.Flight.Handler())
	}
	if cfg.Incident != nil {
		mux.Handle(obs.IncidentPath, cfg.Incident)
	}
	if cfg.Metrics != nil {
		mux.Handle("/metrics", cfg.Metrics)
	}
	return mux
}

// MetricsHandler composes Prometheus-text appenders into a standalone GET
// /metrics handler — for cmds (flopt, experiments) whose only listener is
// the debug mux, so the obs_runtime_*/obs_flight_* series still land on a
// scrapeable endpoint. A nil or failing writer is skipped; the exposition
// is whatever the remaining writers produced.
func MetricsHandler(writers ...func(io.Writer) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, wr := range writers {
			if wr != nil {
				_ = wr(w)
			}
		}
	})
}
