// Package obs is the request-scoped observability layer for the serving
// stack: solve-lifecycle traces threaded through context.Context, a
// lock-cheap collector ring with slowest-N exemplars behind GET
// /debug/traces, per-phase latency histograms merged into /metrics, and
// structured slog helpers shared by the cmds.
//
// A Trace is an ordered span list for one request (or one admin
// operation). Layers record spans against whatever trace rides the
// context; a nil *Trace is a valid no-op receiver, so instrumented code
// pays a single pointer check when tracing is disabled or the request was
// sampled out. Traces are created by Collector.StartTrace — normally via
// Middleware at the HTTP boundary — and survive cross-cell handoffs,
// epoch re-routes, and control-plane drains because every layer below
// receives the same context.
package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Span phases recorded by the stack, one constant per lifecycle stage.
// The set is open — Record accepts any phase string — but these names are
// what the histogram series and the README document.
const (
	// PhaseQueueWait is the time a task waited in the worker queue.
	PhaseQueueWait = "queue_wait"
	// PhaseFingerprint is request canonicalization + hashing.
	PhaseFingerprint = "fingerprint"
	// PhaseCacheLookup is the result-cache probe; Detail carries the hit
	// kind ("hit" or "miss").
	PhaseCacheLookup = "cache_lookup"
	// PhaseDedupWait is a follower waiting on an identical in-flight solve.
	PhaseDedupWait = "dedup_wait"
	// PhaseSolve is the full Algorithm 2 run; Detail carries the serving
	// path ("cold", "warm", "warm+dual") and Value the Newton iterations.
	PhaseSolve = "solve"
	// PhaseSP1 / PhaseSP2 split the solve into Subproblem 1 (bandwidth)
	// and Subproblem 2 (power/frequency Newton) time; PhaseSP2's Value is
	// the Newton iteration count.
	PhaseSP1 = "sp1"
	PhaseSP2 = "sp2"
	// PhaseRoute is one per-cell solve attempt inside the cluster router;
	// Cell names the cell tried, Detail "rerouted" marks an epoch re-route.
	PhaseRoute = "route"
	// PhaseDeltaApply is a streaming gain-delta application; Value is the
	// applied sequence number.
	PhaseDeltaApply = "delta_apply"
	// PhaseCoalesceWait is the time a delta spent queued behind an
	// in-flight solve or a drain suspension; Detail "coalesced" marks a
	// delta answered by a covering later re-solve, Value the covering seq.
	PhaseCoalesceWait = "coalesce_wait"
	// PhaseHandoffExtract / PhaseHandoffInject are the two sides of a
	// per-device handoff; Cell names the source / destination cell and
	// Value the cache+warm instances moved.
	PhaseHandoffExtract = "handoff_extract"
	PhaseHandoffInject  = "handoff_inject"
	// PhaseMassPlan is MassHandoff's single-pass repin/collect walk;
	// PhaseMassExtract / PhaseMassInject are its per-cell batch stages
	// (Cell = source / destination, Value = instances moved).
	PhaseMassPlan    = "mass_plan"
	PhaseMassExtract = "mass_extract"
	PhaseMassInject  = "mass_inject"
	// Drain stages inside ctrl.DrainCell: plan the evacuation, suspend the
	// affected sessions, remove the emptied cell, resume sessions. The
	// migration between suspend and remove shows up as mass_* spans.
	PhaseDrainPlan    = "drain_plan"
	PhaseDrainSuspend = "drain_suspend"
	PhaseDrainRemove  = "drain_remove"
	PhaseDrainResume  = "drain_resume"
	// Crash stages inside ctrl.CrashCell: the drain-less removal (nothing
	// migrates — the cell's state dies with it) and the replica promotion
	// that re-seeds the successors (Value = warm seeds injected).
	PhaseCrashRemove  = "crash_remove"
	PhaseCrashPromote = "crash_promote"
	// PhaseError is a zero-duration mark recorded by the HTTP front ends
	// when a request ends in an error response; Detail carries the error
	// string. It exists for requests that fail before any solve span is
	// recorded (malformed bodies, queue-full sheds), so the flight
	// recorder can still attribute the failure.
	PhaseError = "error"
	// PhaseTotal is recorded by Finish for the whole trace.
	PhaseTotal = "total"
)

// CellNone marks a span that is not scoped to a cluster cell.
const CellNone = -1

// Attr carries the optional attributes of a span. Callers that record
// cell-scoped spans set Cell to the real cell ID; everything else passes
// CellNone.
type Attr struct {
	// Cell is the serving cell the span ran on, or CellNone.
	Cell int
	// Detail is a short human-readable qualifier (hit kind, serving path,
	// drain stage notes).
	Detail string
	// Value is a phase-specific integer fact (Newton iters, devices
	// moved, coalesced seq).
	Value int64
}

// Span is one recorded lifecycle stage inside a trace. Offsets and
// durations are microseconds so trace JSON stays compact and readable.
type Span struct {
	Phase   string `json:"phase"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Cell    int    `json:"cell"`
	Detail  string `json:"detail,omitempty"`
	Value   int64  `json:"value,omitempty"`

	dur time.Duration
}

// Trace accumulates the spans of one request. All methods are safe on a
// nil receiver (no-ops), which is the fast path when tracing is disabled
// or the request was sampled out entirely; they are also safe for
// concurrent use, since spans arrive from worker goroutines.
type Trace struct {
	c       *Collector
	id      string
	start   time.Time
	sampled bool

	mu       sync.Mutex
	spans    []Span
	total    time.Duration
	finished bool
}

// ID returns the trace's hex ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Sampled reports whether the trace was chosen for default retention.
// Slow traces are retained regardless (post-hoc promotion in Finish).
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// Record adds a span that started at began and ends now, with no cell
// scope or detail.
func (t *Trace) Record(phase string, began time.Time) {
	if t == nil {
		return
	}
	t.RecordDur(phase, began, time.Since(began), Attr{Cell: CellNone})
}

// RecordAttr adds a span that started at began and ends now, with the
// given attributes.
func (t *Trace) RecordAttr(phase string, began time.Time, a Attr) {
	if t == nil {
		return
	}
	t.RecordDur(phase, began, time.Since(began), a)
}

// RecordDur adds a span with an explicit duration, for phases whose
// timing was measured elsewhere (e.g. the solver's own SP1/SP2 clocks).
func (t *Trace) RecordDur(phase string, began time.Time, dur time.Duration, a Attr) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	s := Span{
		Phase:   phase,
		StartUS: began.Sub(t.start).Microseconds(),
		DurUS:   dur.Microseconds(),
		Cell:    a.Cell,
		Detail:  a.Detail,
		Value:   a.Value,
		dur:     dur,
	}
	t.mu.Lock()
	if !t.finished {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Mark adds a zero-duration event span at the current instant.
func (t *Trace) Mark(phase string, a Attr) {
	if t == nil {
		return
	}
	t.RecordDur(phase, time.Now(), 0, a)
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Total returns the trace's end-to-end duration (zero before Finish).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Finish seals the trace: records the total span, feeds every span into
// the collector's per-phase histograms, and retains the trace in the
// recent ring if it was sampled in — or unconditionally if its total
// crossed the collector's slow threshold (so a slow solve is always
// explainable even at 1-in-N sampling). Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.total = time.Since(t.start)
	t.spans = append(t.spans, Span{
		Phase:   PhaseTotal,
		StartUS: 0,
		DurUS:   t.total.Microseconds(),
		Cell:    CellNone,
		dur:     t.total,
	})
	t.mu.Unlock()
	t.c.observe(t)
}

// TraceJSON is the wire form of a finished trace in GET /debug/traces.
type TraceJSON struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	TotalUS int64     `json:"total_us"`
	Sampled bool      `json:"sampled"`
	Slow    bool      `json:"slow"`
	Spans   []Span    `json:"spans"`
}

func (t *Trace) toJSON(slowAt time.Duration) TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	return TraceJSON{
		TraceID: t.id,
		Start:   t.start,
		TotalUS: t.total.Microseconds(),
		Sampled: t.sampled,
		Slow:    slowAt > 0 && t.total >= slowAt,
		Spans:   spans,
	}
}

// phaseSummary renders "phase=dur phase=dur ..." for slow-trace logs.
func (t *Trace) phaseSummary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b []byte
	for i, s := range t.spans {
		if s.Phase == PhaseTotal {
			continue
		}
		if i > 0 && len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, s.Phase...)
		b = append(b, '=')
		b = append(b, s.dur.String()...)
		if s.Cell != CellNone {
			b = append(b, "@cell"...)
			b = strconv.AppendInt(b, int64(s.Cell), 10)
		}
	}
	return string(b)
}

type traceKey struct{}

// WithTrace returns a context carrying the trace. A nil trace returns
// ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace riding the context, or nil. The nil
// return is usable directly: every Trace method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
