package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a structured logger writing to w: JSON when json is
// true, logfmt-style text otherwise.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// SetupDefault parses the flag values, installs the resulting logger as
// the process default, and returns it. This is the one-liner the four
// cmds share for their -log-level / -log-json flags.
func SetupDefault(w io.Writer, level string, json bool) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	l := NewLogger(w, lv, json)
	slog.SetDefault(l)
	return l, nil
}
