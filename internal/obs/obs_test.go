package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestNilSafety exercises the disabled-tracing fast path: every method on
// a nil trace and a nil collector must be a usable no-op, since that is
// exactly what instrumented code calls when tracing is off.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Sampled() || tr.Total() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace accessors must return zero values")
	}
	tr.Record(PhaseSolve, time.Now())
	tr.RecordAttr(PhaseRoute, time.Now(), Attr{Cell: 1})
	tr.RecordDur(PhaseSP2, time.Now(), time.Millisecond, Attr{Cell: CellNone})
	tr.Mark(PhaseDrainPlan, Attr{Cell: CellNone})
	tr.Finish()

	var c *Collector
	ctx, got := c.StartTrace(context.Background())
	if got != nil {
		t.Fatal("nil collector must hand out nil traces")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil trace must not be attached to the context")
	}
	if c.Recent() != nil || c.Slowest() != nil {
		t.Fatal("nil collector dumps must be empty")
	}
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil collector exposition: err=%v len=%d", err, buf.Len())
	}
}

func TestSampling(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 2, SlowThreshold: -1})
	_, t1 := c.StartTrace(context.Background())
	_, t2 := c.StartTrace(context.Background())
	_, t3 := c.StartTrace(context.Background())
	if !t1.Sampled() || t2.Sampled() || !t3.Sampled() {
		t.Fatalf("1-in-2 sampling: got %v %v %v, want true false true",
			t1.Sampled(), t2.Sampled(), t3.Sampled())
	}
	for _, tr := range []*Trace{t1, t2, t3} {
		tr.Finish()
	}
	if got := len(c.Recent()); got != 2 {
		t.Fatalf("retained %d traces, want the 2 sampled ones", got)
	}

	// Negative sampling disables tracing entirely.
	off := NewCollector(Config{SampleEvery: -1})
	if _, tr := off.StartTrace(context.Background()); tr != nil {
		t.Fatal("SampleEvery < 0 must return nil traces")
	}
}

// TestStartTraceIdempotent checks that nested middlewares and facade
// layers sharing one context do not stack a second trace on it.
func TestStartTraceIdempotent(t *testing.T) {
	c := NewCollector(Config{})
	ctx, tr := c.StartTrace(context.Background())
	ctx2, tr2 := c.StartTrace(ctx)
	if tr2 != tr {
		t.Fatal("StartTrace on a carrying context must return the existing trace")
	}
	if FromContext(ctx2) != tr {
		t.Fatal("context must still carry the original trace")
	}
}

func TestTraceIDsDistinctHex(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1})
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		_, tr := c.StartTrace(context.Background())
		id := tr.ID()
		if len(id) != 16 || strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("trace ID %q is not 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// TestSlowPromotion: an unsampled trace crossing the slow threshold must
// still land in the ring and the slowest list, with a warn log naming its
// trace ID — that is what makes a single slow solve explainable at 1-in-N
// sampling.
func TestSlowPromotion(t *testing.T) {
	var logBuf bytes.Buffer
	c := NewCollector(Config{
		SampleEvery:   1 << 30, // nothing sampled after the first
		SlowThreshold: time.Nanosecond,
		Logger:        slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	c.StartTrace(context.Background()) // burn the always-sampled first slot
	_, tr := c.StartTrace(context.Background())
	if tr.Sampled() {
		t.Fatal("second trace should be sampled out")
	}
	tr.Record(PhaseSolve, time.Now())
	tr.Finish()
	recent := c.Recent()
	if len(recent) != 1 || recent[0].TraceID != tr.ID() {
		t.Fatalf("slow trace not promoted into the ring: %+v", recent)
	}
	if !recent[0].Slow {
		t.Fatal("promoted trace must be marked slow in the dump")
	}
	if slowest := c.Slowest(); len(slowest) != 1 || slowest[0].TraceID != tr.ID() {
		t.Fatalf("slow trace missing from slowest list: %+v", slowest)
	}
	if !strings.Contains(logBuf.String(), tr.ID()) {
		t.Fatalf("slow-trace warn log must carry the trace ID; got %q", logBuf.String())
	}
}

func TestFinishIdempotentAndSealing(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, SlowThreshold: -1})
	_, tr := c.StartTrace(context.Background())
	tr.Record(PhaseFingerprint, time.Now())
	tr.Finish()
	tr.Finish()
	if got := len(c.Recent()); got != 1 {
		t.Fatalf("double Finish retained %d traces, want 1", got)
	}
	n := len(tr.Spans())
	tr.Record(PhaseSolve, time.Now()) // after Finish: dropped
	if len(tr.Spans()) != n {
		t.Fatal("spans recorded after Finish must be dropped")
	}
	var totalSpans int
	for _, s := range tr.Spans() {
		if s.Phase == PhaseTotal {
			totalSpans++
		}
	}
	if totalSpans != 1 {
		t.Fatalf("want exactly one total span, got %d", totalSpans)
	}
}

func TestRingEvictionNewestFirst(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Recent: 3, SlowThreshold: -1})
	var ids []string
	for i := 0; i < 5; i++ {
		_, tr := c.StartTrace(context.Background())
		tr.Finish()
		ids = append(ids, tr.ID())
	}
	recent := c.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring kept %d, want 3", len(recent))
	}
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if recent[i].TraceID != want {
			t.Fatalf("recent[%d] = %s, want %s (newest first)", i, recent[i].TraceID, want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h phaseHist
	h.record(time.Microsecond, "t-a")   // bucket 0: d <= 1µs
	h.record(3*time.Microsecond, "t-b") // bucket 2: 2µs < d <= 4µs
	h.record(time.Hour, "t-c")          // +Inf overflow
	if h.buckets[0] != 1 || h.buckets[2] != 1 || h.buckets[histBuckets] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.buckets)
	}
	if h.count != 3 {
		t.Fatalf("count = %d, want 3", h.count)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, SlowThreshold: -1})
	_, tr := c.StartTrace(context.Background())
	tr.RecordDur(PhaseSolve, time.Now(), 3*time.Microsecond, Attr{Cell: CellNone})
	tr.Finish()
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE obs_phase_seconds histogram",
		`obs_phase_seconds_bucket{phase="solve",le="+Inf"} 1`,
		`obs_phase_seconds_count{phase="solve"} 1`,
		`obs_phase_seconds_count{phase="total"} 1`,
		"obs_traces_started_total 1",
		"obs_traces_retained_total 1",
		"obs_traces_slow_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 1µs bucket must be 0 for the 3µs solve
	// span, and every bucket from 4µs up must be 1.
	if !strings.Contains(out, `obs_phase_seconds_bucket{phase="solve",le="1e-06"} 0`) {
		t.Fatalf("3µs span leaked into the 1µs bucket:\n%s", out)
	}
	if !strings.Contains(out, `obs_phase_seconds_bucket{phase="solve",le="4e-06"} 1`) {
		t.Fatalf("3µs span missing from the cumulative 4µs bucket:\n%s", out)
	}
}

func TestMiddleware(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, SlowThreshold: -1})
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/metrics":
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("downstream_metric 1\n"))
		default:
			tr := FromContext(r.Context())
			tr.Record(PhaseSolve, time.Now())
			w.WriteHeader(http.StatusOK)
		}
	})
	h := Middleware(c, next)

	// A normal request is traced end to end.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/solve", nil))
	id := rec.Header().Get("X-Trace-Id")
	if id == "" {
		t.Fatal("X-Trace-Id header missing")
	}

	// The trace shows up in /debug/traces with its solve span.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, DebugPath, nil))
	var dump TracesJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("decoding %s: %v", DebugPath, err)
	}
	found := false
	for _, tj := range dump.Recent {
		if tj.TraceID == id {
			found = true
			if len(tj.Spans) < 2 || tj.Spans[0].Phase != PhaseSolve {
				t.Fatalf("trace %s spans: %+v", id, tj.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in %s dump", id, DebugPath)
	}

	// /metrics passes the downstream body through and appends obs series.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "downstream_metric 1") {
		t.Fatal("downstream exposition dropped")
	}
	if !strings.Contains(body, "obs_phase_seconds_bucket") {
		t.Fatal("obs histograms not appended to /metrics")
	}

	// NDJSON delta streams are not traced as one request.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/stream/abc/deltas", nil))
	if rec.Header().Get("X-Trace-Id") != "" {
		t.Fatal("delta stream must not get a connection-spanning trace")
	}

	// A nil collector is a pass-through.
	if Middleware(nil, next) == nil {
		t.Fatal("nil-collector middleware must still serve")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}

func TestSetupDefaultJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := SetupDefault(&buf, "warn", true)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept", "k", "v")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, `"msg":"kept"`) {
		t.Fatalf("level filtering / JSON encoding wrong: %q", out)
	}
}
