package obs

import "sync"

// Ring is a bounded append-only event ring: the most recent N appended
// values are retained and Snapshot returns them newest first. It is the
// shared retention primitive behind the trace ring (GET /debug/traces) and
// the health layer's alert ring (GET /debug/alerts). Safe for concurrent
// use; the zero value is unusable — construct with NewRing.
type Ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	next  int
	full  bool
	total int64
}

// NewRing builds a ring retaining the last n values (n < 1 is clamped
// to 1).
func NewRing[T any](n int) *Ring[T] {
	if n < 1 {
		n = 1
	}
	return &Ring[T]{buf: make([]T, n)}
}

// Append retains v, evicting the oldest value once the ring is full.
func (r *Ring[T]) Append(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot copies the retained values, newest first.
func (r *Ring[T]) Snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, len(r.buf))
	for i := r.next - 1; i >= 0; i-- {
		out = append(out, r.buf[i])
	}
	if r.full {
		for i := len(r.buf) - 1; i >= r.next; i-- {
			out = append(out, r.buf[i])
		}
	}
	return out
}

// Len reports how many values are currently retained.
func (r *Ring[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Evicted reports how many values were dropped to make room for newer
// ones — the ring's silent-truncation counter (Total minus Len).
func (r *Ring[T]) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	return r.total - int64(n)
}

// Total reports how many values were ever appended (evicted ones
// included).
func (r *Ring[T]) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
