package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestExemplarsLinkMetricsToTraces records one solve and checks the phase
// histogram remembers its trace ID: via Exemplars() for /v1/stats and as an
// OpenMetrics exemplar suffix on the /metrics bucket line.
func TestExemplarsLinkMetricsToTraces(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, SlowThreshold: -1})
	_, tr := c.StartTrace(context.Background())
	tr.RecordDur(PhaseSolve, time.Now(), 3*time.Microsecond, Attr{Cell: CellNone})
	tr.Finish()

	ex := c.Exemplars()
	var solve *ExemplarJSON
	for i := range ex {
		if ex[i].Phase == PhaseSolve {
			solve = &ex[i]
		}
	}
	if solve == nil || solve.TraceID != tr.ID() {
		t.Fatalf("solve exemplar %+v, want trace %q", solve, tr.ID())
	}
	if solve.LE == "" || solve.Seconds <= 0 {
		t.Fatalf("exemplar missing bucket bound or value: %+v", solve)
	}

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# {trace_id="` + tr.ID() + `"}`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, buf.String())
	}
}

// TestSinkSeesEveryTrace attaches a sink at 1-in-4 sampling and checks ALL
// finished traces are delivered — assembly must not depend on the sampling
// that gates local ring retention.
func TestSinkSeesEveryTrace(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 4, SlowThreshold: -1})
	var got []TraceJSON
	c.SetSink(func(tj TraceJSON) { got = append(got, tj) })
	const n = 8
	for i := 0; i < n; i++ {
		_, tr := c.StartTrace(context.Background())
		tr.Mark(PhaseSolve, Attr{})
		tr.Finish()
	}
	if len(got) != n {
		t.Fatalf("sink saw %d traces, want all %d", len(got), n)
	}
	if len(c.Recent()) >= n {
		t.Fatalf("ring retained %d, sampling should have kept fewer than %d", len(c.Recent()), n)
	}
	c.SetSink(nil)
	_, tr := c.StartTrace(context.Background())
	tr.Finish()
	if len(got) != n {
		t.Fatalf("sink fired after unregistering: %d", len(got))
	}
}

// TestRingEvictedCounts overflows a bounded ring and checks the eviction
// counter: total appended minus retained.
func TestRingEvictedCounts(t *testing.T) {
	r := NewRing[int](3)
	if r.Evicted() != 0 {
		t.Fatalf("fresh ring evicted %d, want 0", r.Evicted())
	}
	for i := 0; i < 10; i++ {
		r.Append(i)
	}
	if r.Evicted() != 7 {
		t.Fatalf("evicted %d, want 7", r.Evicted())
	}
	if got := r.Snapshot(); len(got) != 3 || got[0] != 9 {
		t.Fatalf("snapshot %v, want newest-first [9 8 7]", got)
	}
}
