// Package forensics is the post-hoc layer of the observability stack:
// where internal/obs answers "what happened to this request" and
// internal/health answers "how has this cell been doing lately",
// forensics answers "what was the process doing when things went wrong —
// and can I have the evidence in one file".
//
// It has four parts:
//
//   - FlightRecorder: an always-on, bounded, lock-cheap ring of
//     per-request wide events (one compact Event per finished trace,
//     derived from the trace's spans) fed from the collector sink and
//     queryable at GET /debug/flight with the same validated query
//     parameters as /debug/traces. Sampling-independent: every request
//     lands here even at 1-in-N trace retention.
//
//   - ProfileTrigger: SLO-triggered pprof capture. Wired to health state
//     transitions by the cmds, it writes CPU, heap, goroutine, and mutex
//     profiles under a capture directory per firing — rate-limited,
//     suppression-counted, with bounded on-disk retention (oldest capture
//     directories pruned).
//
//   - Runtime vitals: goroutines, live heap bytes, GC pause p99, and
//     scheduler latency p99 read from runtime/metrics, exported as
//     obs_runtime_* gauges and judged by the health layer's runtime
//     rules.
//
//   - IncidentHandler: GET /debug/incident assembles the flight-recorder
//     window, runtime vitals, the configured sections (alert ring, health
//     windows, convergence observatory, assembled slow traces), and the
//     retained profile captures into one downloadable tar.gz.
package forensics
