package forensics

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults applied by ProfileConfig.withDefaults.
const (
	// DefaultCPUSeconds is how long a triggered CPU profile samples.
	DefaultCPUSeconds = 1.0
	// DefaultMaxCaptures bounds on-disk retention: older capture
	// directories beyond this many are pruned.
	DefaultMaxCaptures = 4
	// DefaultMinInterval rate-limits triggered captures; firings inside
	// the interval are suppressed (and counted).
	DefaultMinInterval = 2 * time.Minute
	// DefaultMutexFraction is installed via runtime.SetMutexProfileFraction
	// when profiling is enabled and no fraction is set, so the mutex
	// profile a trigger captures actually has samples in it.
	DefaultMutexFraction = 5
	// DefaultCaptureRing bounds the in-memory capture-record ring.
	DefaultCaptureRing = 32
)

// ProfileConfig tunes a ProfileTrigger. Dir is required.
type ProfileConfig struct {
	// Dir is the retention root: each firing writes one
	// cap-<seq>-<reason> directory under it.
	Dir string
	// CPUSeconds is the triggered CPU profile's sampling window.
	CPUSeconds float64
	// MaxCaptures bounds how many capture directories are retained on
	// disk; MinInterval rate-limits firings.
	MaxCaptures int
	MinInterval time.Duration
	// MutexFraction is installed when the process has mutex profiling off
	// (runtime fraction 0); <0 leaves the runtime setting untouched.
	MutexFraction int
	// Logger receives capture/prune logs; nil uses slog.Default().
	Logger *slog.Logger
}

func (c ProfileConfig) withDefaults() ProfileConfig {
	if c.CPUSeconds <= 0 {
		c.CPUSeconds = DefaultCPUSeconds
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = DefaultMaxCaptures
	}
	if c.MinInterval <= 0 {
		c.MinInterval = DefaultMinInterval
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = DefaultMutexFraction
	}
	return c
}

// Capture records one trigger firing: where the profiles landed and any
// per-file failures (best-effort — a capture with a failed mutex profile
// still delivers the other three).
type Capture struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Reason string    `json:"reason"`
	Dir    string    `json:"dir"`
	Files  []string  `json:"files"`
	Errors []string  `json:"errors,omitempty"`
}

// ProfileTrigger captures pprof profiles on demand — in practice, when a
// health rule transitions out of ok. Captures are rate-limited
// (suppressions counted, like every other bounded thing in the stack),
// retention on disk is bounded, and capture records land in a ring for
// /v1/stats and the incident bundle. Safe for concurrent use; all methods
// are safe on a nil receiver.
type ProfileTrigger struct {
	cfg ProfileConfig
	log *slog.Logger

	seq        atomic.Int64
	captures   atomic.Int64
	suppressed atomic.Int64
	pruned     atomic.Int64
	lastNS     atomic.Int64 // wall clock of the last admitted capture

	ring *obs.Ring[Capture]

	cpuMu sync.Mutex // one CPU profile at a time, process-wide
	wg    sync.WaitGroup

	now func() time.Time // test hook
}

// NewProfileTrigger builds a trigger rooted at cfg.Dir (created if
// missing).
func NewProfileTrigger(cfg ProfileConfig) (*ProfileTrigger, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("forensics: ProfileConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("forensics: creating profile dir: %w", err)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	if cfg.MutexFraction > 0 && runtime.SetMutexProfileFraction(-1) == 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	return &ProfileTrigger{
		cfg:  cfg,
		log:  log,
		ring: obs.NewRing[Capture](DefaultCaptureRing),
		now:  time.Now,
	}, nil
}

// Close waits for any in-flight background CPU profile to finish.
func (p *ProfileTrigger) Close() {
	if p == nil {
		return
	}
	p.wg.Wait()
}

// sanitizeReason keeps capture directory names shell- and tar-safe.
func sanitizeReason(s string) string {
	var b []byte
	for i := 0; i < len(s) && len(b) < 48; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
			b = append(b, c)
		case c >= 'A' && c <= 'Z':
			b = append(b, c+'a'-'A')
		default:
			b = append(b, '-')
		}
	}
	if len(b) == 0 {
		return "manual"
	}
	return string(b)
}

// Capture fires the trigger: heap, goroutine, and mutex profiles are
// written synchronously; the CPU profile samples for CPUSeconds in the
// background (its file exists immediately and fills as sampling runs).
// Returns ok = false when the firing was rate-limit suppressed.
func (p *ProfileTrigger) Capture(reason string) (Capture, bool) {
	if p == nil {
		return Capture{}, false
	}
	now := p.now()
	for {
		last := p.lastNS.Load()
		if last != 0 && now.Sub(time.Unix(0, last)) < p.cfg.MinInterval {
			p.suppressed.Add(1)
			return Capture{}, false
		}
		if p.lastNS.CompareAndSwap(last, now.UnixNano()) {
			break
		}
	}
	seq := p.seq.Add(1)
	rec := Capture{
		Seq:    seq,
		Time:   now,
		Reason: reason,
		Dir:    filepath.Join(p.cfg.Dir, fmt.Sprintf("cap-%06d-%s", seq, sanitizeReason(reason))),
	}
	if err := os.MkdirAll(rec.Dir, 0o755); err != nil {
		rec.Errors = append(rec.Errors, err.Error())
		p.ring.Append(rec)
		p.log.Warn("profile capture failed", "dir", rec.Dir, "err", err)
		return rec, true
	}
	for _, name := range []string{"heap", "goroutine", "mutex"} {
		file := name + ".pprof"
		if err := writeLookupProfile(filepath.Join(rec.Dir, file), name); err != nil {
			rec.Errors = append(rec.Errors, file+": "+err.Error())
			continue
		}
		rec.Files = append(rec.Files, file)
	}
	cpuPath := filepath.Join(rec.Dir, "cpu.pprof")
	if f, err := os.Create(cpuPath); err != nil {
		rec.Errors = append(rec.Errors, "cpu.pprof: "+err.Error())
	} else {
		rec.Files = append(rec.Files, "cpu.pprof")
		p.wg.Add(1)
		go p.sampleCPU(f)
	}
	sort.Strings(rec.Files)
	p.captures.Add(1)
	p.ring.Append(rec)
	p.prune()
	p.log.Warn("profiles captured", "reason", reason, "dir", rec.Dir,
		"files", strings.Join(rec.Files, ","), "errors", len(rec.Errors))
	return rec, true
}

// writeLookupProfile snapshots one named runtime profile to path.
func writeLookupProfile(path, name string) error {
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("unknown profile %q", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prof.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sampleCPU runs one CPU profile into f. Firings that overlap an already
// running CPU profile (another trigger, or an operator on
// /debug/pprof/profile) queue behind it rather than failing.
func (p *ProfileTrigger) sampleCPU(f *os.File) {
	defer p.wg.Done()
	defer f.Close()
	p.cpuMu.Lock()
	defer p.cpuMu.Unlock()
	if err := pprof.StartCPUProfile(f); err != nil {
		p.log.Warn("cpu profile start failed", "file", f.Name(), "err", err)
		return
	}
	time.Sleep(time.Duration(p.cfg.CPUSeconds * float64(time.Second)))
	pprof.StopCPUProfile()
}

// prune enforces bounded disk retention: capture directories beyond
// MaxCaptures are removed oldest-first (names sort by sequence number).
func (p *ProfileTrigger) prune() {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return
	}
	var caps []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "cap-") {
			caps = append(caps, e.Name())
		}
	}
	sort.Strings(caps)
	for len(caps) > p.cfg.MaxCaptures {
		victim := filepath.Join(p.cfg.Dir, caps[0])
		caps = caps[1:]
		if err := os.RemoveAll(victim); err != nil {
			p.log.Warn("profile prune failed", "dir", victim, "err", err)
			continue
		}
		p.pruned.Add(1)
		p.log.Info("profile capture pruned", "dir", victim)
	}
}

// Recent returns the retained capture records, newest first.
func (p *ProfileTrigger) Recent() []Capture {
	if p == nil {
		return nil
	}
	return p.ring.Snapshot()
}

// ProfileStatsJSON is the trigger's lifecycle accounting.
type ProfileStatsJSON struct {
	Captures   int64 `json:"captures"`
	Suppressed int64 `json:"suppressed"`
	Pruned     int64 `json:"pruned"`
}

// StatsJSON snapshots the trigger's counters.
func (p *ProfileTrigger) StatsJSON() ProfileStatsJSON {
	if p == nil {
		return ProfileStatsJSON{}
	}
	return ProfileStatsJSON{
		Captures:   p.captures.Load(),
		Suppressed: p.suppressed.Load(),
		Pruned:     p.pruned.Load(),
	}
}

// WritePrometheus appends the obs_profile_* series to a /metrics
// exposition.
func (p *ProfileTrigger) WritePrometheus(w io.Writer) error {
	if p == nil {
		return nil
	}
	s := p.StatsJSON()
	var b []byte
	for _, m := range []struct {
		name, help string
		v          int64
	}{
		{"obs_profile_captures_total", "Triggered pprof captures admitted.", s.Captures},
		{"obs_profile_suppressed_total", "Triggered pprof captures rate-limit suppressed.", s.Suppressed},
		{"obs_profile_pruned_total", "Capture directories pruned by bounded retention.", s.Pruned},
	} {
		b = append(b, "# HELP "...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = append(b, m.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, m.name...)
		b = append(b, " counter\n"...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.v, 10)
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}
