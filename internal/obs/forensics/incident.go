package forensics

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Section is one named JSON document of the incident bundle, fetched at
// bundle time. The cmds wire the layers the forensics package must not
// import (alert ring, health windows, convergence observatory, assembled
// traces) through this seam.
type Section struct {
	// Name becomes <Name>.json inside the bundle.
	Name string
	// Fetch runs on the request goroutine; a nil return drops the
	// section from that bundle.
	Fetch func() any
}

// BundleConfig wires the incident bundle's contents.
type BundleConfig struct {
	// Origin names the process ("flserved", "flcluster") in meta.json.
	Origin string
	// Flight contributes flight.json (the wide-event window, filtered by
	// the request's validated query). Optional.
	Flight *FlightRecorder
	// Profiles contributes profiles.json plus the retained capture files
	// under profiles/. Optional.
	Profiles *ProfileTrigger
	// Sections are the extra JSON documents, in bundle order.
	Sections []Section
}

// bundleMeta is the bundle's meta.json: enough to identify which process
// produced the artifact and when.
type bundleMeta struct {
	Origin        string    `json:"origin"`
	GeneratedAt   time.Time `json:"generated_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	Version       string    `json:"version"`
	Contents      []string  `json:"contents"`
}

// IncidentHandler serves GET /debug/incident: one tar.gz assembling the
// flight-recorder window, runtime vitals, every configured section, and
// the retained profile captures — the single artifact an operator
// downloads instead of hand-collecting four debug endpoints. The flight
// window honors the same validated limit/min_duration/trace_id query as
// /debug/traces.
func IncidentHandler(cfg BundleConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := obs.ParseTraceQuery(r.URL.Query())
		if err != nil {
			if !obs.WriteQueryError(w, err) {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}

		name := "incident-" + cfg.Origin + "-" + time.Now().UTC().Format("20060102T150405Z") + ".tar.gz"
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
		w.WriteHeader(http.StatusOK)

		gz := gzip.NewWriter(w)
		tw := tar.NewWriter(gz)
		// Past the header the stream is committed; write errors (client
		// went away) just stop the walk.
		_ = writeBundle(tw, cfg, q)
		_ = tw.Close()
		_ = gz.Close()
	})
}

// writeBundle streams every bundle entry; the first write error aborts.
func writeBundle(tw *tar.Writer, cfg BundleConfig, q obs.TraceQuery) error {
	meta := bundleMeta{
		Origin:        cfg.Origin,
		GeneratedAt:   time.Now(),
		UptimeSeconds: obs.Uptime().Seconds(),
		Version:       obs.VersionString(),
	}
	type doc struct {
		name string
		v    any
	}
	docs := []doc{}
	if cfg.Flight != nil {
		docs = append(docs, doc{"flight.json", FlightJSON{
			Events:          cfg.Flight.Events(q),
			FlightStatsJSON: cfg.Flight.StatsJSON(),
		}})
	}
	docs = append(docs, doc{"runtime.json", ReadVitals()})
	for _, s := range cfg.Sections {
		if s.Fetch == nil {
			continue
		}
		if v := s.Fetch(); v != nil {
			docs = append(docs, doc{s.Name + ".json", v})
		}
	}
	var captures []Capture
	if cfg.Profiles != nil {
		captures = cfg.Profiles.Recent()
		docs = append(docs, doc{"profiles.json", struct {
			Captures []Capture        `json:"captures"`
			Stats    ProfileStatsJSON `json:"stats"`
		}{captures, cfg.Profiles.StatsJSON()}})
	}
	for _, d := range docs {
		meta.Contents = append(meta.Contents, d.name)
	}
	for _, c := range captures {
		for _, f := range c.Files {
			meta.Contents = append(meta.Contents, "profiles/"+filepath.Base(c.Dir)+"/"+f)
		}
	}

	if err := writeJSONEntry(tw, "meta.json", meta); err != nil {
		return err
	}
	for _, d := range docs {
		if err := writeJSONEntry(tw, d.name, d.v); err != nil {
			return err
		}
	}
	// Profile files stream straight off disk; a capture pruned or still
	// being written between Recent() and here is skipped, not fatal.
	for _, c := range captures {
		for _, f := range c.Files {
			src := filepath.Join(c.Dir, f)
			dst := "profiles/" + filepath.Base(c.Dir) + "/" + f
			if err := writeFileEntry(tw, dst, src); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeJSONEntry marshals v as one indented JSON tar entry.
func writeJSONEntry(tw *tar.Writer, name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		data = []byte(`{"error":` + strconv.Quote(err.Error()) + `}`)
	}
	data = append(data, '\n')
	if err := tw.WriteHeader(&tar.Header{
		Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: time.Now(),
	}); err != nil {
		return err
	}
	_, err = tw.Write(data)
	return err
}

// writeFileEntry copies one on-disk file into the tar; a missing file is
// skipped silently (bounded retention may have pruned it mid-bundle).
func writeFileEntry(tw *tar.Writer, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil
	}
	if err := tw.WriteHeader(&tar.Header{
		Name: name, Mode: 0o644, Size: st.Size(), ModTime: st.ModTime(),
	}); err != nil {
		return err
	}
	// CopyN against the Stat size: a cpu.pprof still growing in the
	// background must not overrun the declared entry size.
	_, err = io.CopyN(tw, f, st.Size())
	return err
}
