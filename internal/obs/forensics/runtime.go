package forensics

import (
	"io"
	"math"
	"runtime"
	"runtime/metrics"
	"strconv"
)

// runtime/metrics sample names read by ReadVitals. Read as one batch —
// the runtime fills a batch atomically enough for dashboard purposes.
const (
	metricHeapBytes = "/memory/classes/heap/objects:bytes"
	metricGCPauses  = "/sched/pauses/total/gc:seconds"
	metricSchedLat  = "/sched/latencies:seconds"
	metricGCCycles  = "/gc/cycles/total:gc-cycles"
)

// Vitals is one reading of the Go runtime's health signals: the inputs to
// the obs_runtime_* gauges, the health layer's runtime rules, and the
// dashboard's "runtime" section.
type Vitals struct {
	// Goroutines is the live goroutine count — the leak detector.
	Goroutines int `json:"goroutines"`
	// HeapBytes is the live heap (bytes occupied by objects).
	HeapBytes uint64 `json:"heap_bytes"`
	// GCPauseP99Seconds is the p99 of all stop-the-world GC pauses since
	// process start; GCCycles the completed GC count.
	GCPauseP99Seconds float64 `json:"gc_pause_p99_seconds"`
	GCCycles          uint64  `json:"gc_cycles"`
	// SchedLatencyP99Seconds is the p99 of goroutine scheduling latency
	// (time runnable before running) since process start — the runtime's
	// own queue-wait signal.
	SchedLatencyP99Seconds float64 `json:"sched_latency_p99_seconds"`
}

// ReadVitals samples the runtime. Cheap enough for a health tick or a
// dashboard frame (no stop-the-world).
func ReadVitals() Vitals {
	samples := []metrics.Sample{
		{Name: metricHeapBytes},
		{Name: metricGCPauses},
		{Name: metricSchedLat},
		{Name: metricGCCycles},
	}
	metrics.Read(samples)
	v := Vitals{Goroutines: runtime.NumGoroutine()}
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case metricHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				v.HeapBytes = s.Value.Uint64()
			}
		case metricGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				v.GCPauseP99Seconds = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		case metricSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				v.SchedLatencyP99Seconds = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		case metricGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				v.GCCycles = s.Value.Uint64()
			}
		}
	}
	return v
}

// histQuantile estimates a quantile from a runtime/metrics histogram,
// attributing each bucket's mass to its upper bound (the conservative
// reading — same convention as the health windows' max-over-bucket
// quantiles). Unbounded tail buckets fall back to their lower bound.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// WriteRuntimePrometheus appends the obs_runtime_* series — the Go
// runtime vitals every cmd exports on /metrics — reading a fresh sample
// per scrape.
func WriteRuntimePrometheus(w io.Writer) error {
	v := ReadVitals()
	var b []byte
	add := func(name, typ, help, labels string, val string) {
		b = append(b, "# HELP "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, typ...)
		b = append(b, '\n')
		b = append(b, name...)
		if labels != "" {
			b = append(b, '{')
			b = append(b, labels...)
			b = append(b, '}')
		}
		b = append(b, ' ')
		b = append(b, val...)
		b = append(b, '\n')
	}
	add("obs_runtime_goroutines", "gauge", "Live goroutines.", "",
		strconv.Itoa(v.Goroutines))
	add("obs_runtime_heap_bytes", "gauge", "Live heap bytes (objects).", "",
		strconv.FormatUint(v.HeapBytes, 10))
	add("obs_runtime_gc_pause_seconds", "gauge", "GC stop-the-world pause quantile since process start.", `quantile="0.99"`,
		strconv.FormatFloat(v.GCPauseP99Seconds, 'g', -1, 64))
	add("obs_runtime_sched_latency_seconds", "gauge", "Goroutine scheduling latency quantile since process start.", `quantile="0.99"`,
		strconv.FormatFloat(v.SchedLatencyP99Seconds, 'g', -1, 64))
	add("obs_runtime_gc_cycles_total", "counter", "Completed GC cycles.", "",
		strconv.FormatUint(v.GCCycles, 10))
	_, err := w.Write(b)
	return err
}
