package forensics

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func mkTrace(id string, totalUS int64) obs.TraceJSON {
	return obs.TraceJSON{TraceID: id, Start: time.Unix(1000, 0), TotalUS: totalUS}
}

func TestEventFromTraceDerivation(t *testing.T) {
	tr := obs.TraceJSON{TraceID: "t1", TotalUS: 5000, Slow: true, Spans: []obs.Span{
		{Phase: obs.PhaseQueueWait, DurUS: 120, Detail: "interactive", Cell: obs.CellNone},
		{Phase: obs.PhaseCacheLookup, Detail: "miss", Cell: obs.CellNone},
		{Phase: obs.PhaseSolve, DurUS: 4000, Detail: "warm+dual", Value: 7, Cell: 3},
	}}
	e := EventFromTrace(tr)
	if e.Path != "warm_dual" || e.Cache != "miss" || e.Queue != "interactive" ||
		e.QueueWaitUS != 120 || e.NewtonIters != 7 || e.Cell != 3 || !e.Slow {
		t.Fatalf("derived event %+v", e)
	}

	errTr := obs.TraceJSON{TraceID: "t2", Spans: []obs.Span{
		{Phase: obs.PhaseSolve, Detail: "error: queue full", Cell: obs.CellNone},
	}}
	if e := EventFromTrace(errTr); e.Error != "queue full" || e.Path != "" {
		t.Fatalf("error event %+v", e)
	}
}

// TestFlightOverflow: the bounded ring drops oldest, counts the drops, and
// keeps serving while writers keep appending.
func TestFlightOverflow(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Observe(mkTrace(fmt.Sprintf("t%02d", i), int64(i)*1000))
	}
	s := f.StatsJSON()
	if s.Observed != 20 || s.Dropped != 12 || s.Retained != 8 {
		t.Fatalf("stats %+v, want observed 20 dropped 12 retained 8", s)
	}
	ev := f.Events(obs.TraceQuery{})
	if len(ev) != 8 || ev[0].TraceID != "t19" || ev[7].TraceID != "t12" {
		t.Fatalf("events: got %d newest %q oldest %q", len(ev), ev[0].TraceID, ev[len(ev)-1].TraceID)
	}

	// Query parity with /debug/traces: limit, trace_id, min_duration.
	if got := f.Events(obs.TraceQuery{Limit: 3}); len(got) != 3 {
		t.Fatalf("limit: got %d", len(got))
	}
	if got := f.Events(obs.TraceQuery{TraceID: "t15"}); len(got) != 1 || got[0].TraceID != "t15" {
		t.Fatalf("trace_id filter: %+v", got)
	}
	if got := f.Events(obs.TraceQuery{MinDuration: 18 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("min_duration filter: got %d, want 2", len(got))
	}

	// Serving is unaffected by concurrent appends (run under -race in CI).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			f.Observe(mkTrace("hot", 1))
		}
	}()
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", obs.FlightPath+"?limit=4", nil))
	wg.Wait()
	if rec.Code != 200 {
		t.Fatalf("flight handler: status %d", rec.Code)
	}
	var body FlightJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("flight body: %v", err)
	}
	if len(body.Events) != 4 {
		t.Fatalf("flight body: %d events, want 4", len(body.Events))
	}

	// The validated query rejects garbage exactly like /debug/traces.
	rec = httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", obs.FlightPath+"?limit=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad query: status %d, want 400", rec.Code)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Observe(mkTrace("x", 1))
	if got := f.Events(obs.TraceQuery{}); got != nil {
		t.Fatalf("nil Events: %v", got)
	}
	if s := f.StatsJSON(); s != (FlightStatsJSON{}) {
		t.Fatalf("nil stats: %+v", s)
	}
	if err := f.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

// TestProfileTriggerRateLimitAndPrune: captures inside MinInterval are
// suppressed (and counted); retention on disk stays bounded with prunes
// counted.
func TestProfileTriggerRateLimitAndPrune(t *testing.T) {
	dir := t.TempDir()
	trig, err := NewProfileTrigger(ProfileConfig{
		Dir: dir, CPUSeconds: 0.05, MaxCaptures: 2, MinInterval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trig.Close()
	clock := time.Unix(10000, 0)
	trig.now = func() time.Time { return clock }

	rec, ok := trig.Capture("queue-wait-p99-breached")
	if !ok {
		t.Fatal("first capture suppressed")
	}
	for _, want := range []string{"cpu.pprof", "goroutine.pprof", "heap.pprof"} {
		found := false
		for _, f := range rec.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("capture files %v missing %s (errors: %v)", rec.Files, want, rec.Errors)
		}
	}
	if !strings.Contains(filepath.Base(rec.Dir), "queue-wait-p99-breached") {
		t.Fatalf("capture dir %q does not carry the reason", rec.Dir)
	}

	// Within MinInterval: suppressed, counted, nothing written.
	clock = clock.Add(10 * time.Second)
	if _, ok := trig.Capture("again"); ok {
		t.Fatal("capture inside MinInterval admitted")
	}
	if s := trig.StatsJSON(); s.Captures != 1 || s.Suppressed != 1 {
		t.Fatalf("stats %+v, want 1 capture / 1 suppressed", s)
	}

	// Past MinInterval: admitted. Two more captures overflow MaxCaptures=2.
	for i := 0; i < 2; i++ {
		clock = clock.Add(2 * time.Minute)
		if _, ok := trig.Capture("later"); !ok {
			t.Fatalf("capture %d past MinInterval suppressed", i)
		}
	}
	trig.Close() // wait out background CPU profiles before counting dirs

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var caps []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cap-") {
			caps = append(caps, e.Name())
		}
	}
	if len(caps) != 2 {
		t.Fatalf("retained dirs %v, want 2", caps)
	}
	s := trig.StatsJSON()
	if s.Captures != 3 || s.Pruned < 1 {
		t.Fatalf("stats %+v, want 3 captures and >=1 pruned", s)
	}
	if got := trig.Recent(); len(got) != 3 || got[0].Seq != 3 {
		t.Fatalf("recent: %d records, newest seq %d", len(got), got[0].Seq)
	}
}

func TestProfileTriggerNilSafe(t *testing.T) {
	var trig *ProfileTrigger
	if _, ok := trig.Capture("x"); ok {
		t.Fatal("nil trigger admitted a capture")
	}
	trig.Close()
	if s := trig.StatsJSON(); s != (ProfileStatsJSON{}) {
		t.Fatalf("nil stats: %+v", s)
	}
	if err := trig.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

// TestIncidentBundle: the tar.gz round-trips with the flight window, the
// wired sections, runtime vitals, and at least one on-disk profile file.
func TestIncidentBundle(t *testing.T) {
	flight := NewFlightRecorder(16)
	for i := 0; i < 5; i++ {
		flight.Observe(mkTrace(fmt.Sprintf("t%d", i), 1000))
	}
	trig, err := NewProfileTrigger(ProfileConfig{Dir: t.TempDir(), CPUSeconds: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := trig.Capture("test"); !ok {
		t.Fatal("capture suppressed")
	}
	trig.Close()

	h := IncidentHandler(BundleConfig{
		Origin:   "test",
		Flight:   flight,
		Profiles: trig,
		Sections: []Section{
			{Name: "alerts", Fetch: func() any { return []string{"a1"} }},
			{Name: "skipped", Fetch: func() any { return nil }},
		},
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", obs.IncidentPath+"?limit=3", nil))
	if rec.Code != 200 {
		t.Fatalf("incident: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("content type %q", ct)
	}

	gz, err := gzip.NewReader(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	got := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		got[hdr.Name] = data
	}

	for _, want := range []string{"meta.json", "flight.json", "runtime.json", "alerts.json", "profiles.json"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("bundle missing %s (have %v)", want, keys(got))
		}
	}
	if _, ok := got["skipped.json"]; ok {
		t.Fatal("nil-fetch section must be dropped")
	}
	var fl FlightJSON
	if err := json.Unmarshal(got["flight.json"], &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Events) != 3 { // ?limit=3 flows through to the flight window
		t.Fatalf("flight.json: %d events, want 3", len(fl.Events))
	}
	profileFiles := 0
	for name := range got {
		if strings.HasPrefix(name, "profiles/") && strings.HasSuffix(name, ".pprof") {
			profileFiles++
		}
	}
	if profileFiles == 0 {
		t.Fatalf("bundle has no profile files (have %v)", keys(got))
	}
	var meta bundleMeta
	if err := json.Unmarshal(got["meta.json"], &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Origin != "test" || len(meta.Contents) == 0 {
		t.Fatalf("meta %+v", meta)
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestReadVitals(t *testing.T) {
	v := ReadVitals()
	if v.Goroutines <= 0 {
		t.Fatalf("goroutines %d", v.Goroutines)
	}
	if v.HeapBytes == 0 {
		t.Fatalf("heap bytes 0")
	}
	var buf bytes.Buffer
	if err := WriteRuntimePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obs_runtime_goroutines", "obs_runtime_heap_bytes",
		"obs_runtime_gc_pause_seconds", "obs_runtime_gc_cycles_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}
