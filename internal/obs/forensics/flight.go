package forensics

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// DefaultFlightEvents is the stock flight-recorder ring capacity. At one
// event per request it holds the last few minutes of a busy process —
// wide enough to cover the window between an SLO breach and an operator
// downloading /debug/incident.
const DefaultFlightEvents = 4096

// Event is one request's wide event: the handful of facts an incident
// investigation asks of every request, flattened out of the trace's spans
// into one fixed-shape record. Microsecond durations keep the ring and
// its JSON dump compact.
type Event struct {
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	TotalUS int64     `json:"total_us"`
	// Cell is the serving cell (the last cell-scoped span wins, so an
	// epoch re-route reports the cell that finally answered), or -1.
	Cell int `json:"cell"`
	// Path is the serving path: "cold", "warm", "warm_dual", or "" for
	// requests that never reached the solver (cache hits, errors).
	Path string `json:"path,omitempty"`
	// Cache is the cache-lookup outcome ("hit" or "miss"), if any.
	Cache string `json:"cache,omitempty"`
	// Queue is the dispatch queue the request waited in ("interactive" or
	// "bulk"); QueueWaitUS the total time it spent there.
	Queue       string `json:"queue,omitempty"`
	QueueWaitUS int64  `json:"queue_wait_us,omitempty"`
	// NewtonIters is the solve's Newton iteration count (0 on the
	// dual-seeded warm path — that is the point of dual seeding).
	NewtonIters int64 `json:"newton_iters,omitempty"`
	// Error is the failure string for requests that ended in an error
	// (solver errors, queue-full sheds, malformed bodies).
	Error string `json:"error,omitempty"`
	// Slow mirrors the trace's slow-promotion flag.
	Slow bool `json:"slow,omitempty"`
}

// EventFromTrace flattens one finished trace into its wide event.
func EventFromTrace(t obs.TraceJSON) Event {
	e := Event{TraceID: t.TraceID, Start: t.Start, TotalUS: t.TotalUS, Cell: obs.CellNone, Slow: t.Slow}
	for _, s := range t.Spans {
		if s.Cell != obs.CellNone {
			e.Cell = s.Cell
		}
		switch s.Phase {
		case obs.PhaseQueueWait:
			e.QueueWaitUS += s.DurUS
			e.Queue = s.Detail
		case obs.PhaseCacheLookup:
			e.Cache = s.Detail
		case obs.PhaseSolve:
			if msg, ok := strings.CutPrefix(s.Detail, "error: "); ok {
				e.Error = msg
				continue
			}
			e.Path = s.Detail
			if e.Path == "warm+dual" { // span detail predates the label form
				e.Path = "warm_dual"
			}
			e.NewtonIters = s.Value
		case obs.PhaseError:
			e.Error = s.Detail
		}
	}
	return e
}

// FlightRecorder is the always-on wide-event ring. It hangs off the
// collector sink (Observe runs on the request goroutine at trace Finish),
// so the per-request cost is one event derivation plus one ring append —
// a single short mutex hold, same budget as trace retention itself.
// All methods are safe on a nil receiver.
type FlightRecorder struct {
	ring     *obs.Ring[Event]
	observed atomic.Int64
}

// NewFlightRecorder builds a recorder retaining the last n events
// (n <= 0 means DefaultFlightEvents).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{ring: obs.NewRing[Event](n)}
}

// Observe derives and retains the wide event of one finished trace.
// Chain it after the telemetry exporter on the collector sink.
func (f *FlightRecorder) Observe(t obs.TraceJSON) {
	if f == nil {
		return
	}
	f.observed.Add(1)
	f.ring.Append(EventFromTrace(t))
}

// Events returns the retained events newest first, filtered by the same
// validated query as /debug/traces (limit, min_duration, trace_id).
func (f *FlightRecorder) Events(q obs.TraceQuery) []Event {
	if f == nil {
		return nil
	}
	all := f.ring.Snapshot()
	out := all[:0:0]
	for _, e := range all {
		if q.TraceID != "" && e.TraceID != q.TraceID {
			continue
		}
		if q.MinDuration > 0 && time.Duration(e.TotalUS)*time.Microsecond < q.MinDuration {
			continue
		}
		out = append(out, e)
		if q.Limit > 0 && len(out) == q.Limit {
			break
		}
	}
	return out
}

// FlightStatsJSON is the recorder's lifecycle accounting: how many events
// were ever observed, how many the bounded ring evicted (the
// drop-counter), and how many are retained right now.
type FlightStatsJSON struct {
	Observed int64 `json:"observed"`
	Dropped  int64 `json:"dropped"`
	Retained int   `json:"retained"`
}

// StatsJSON snapshots the recorder's counters.
func (f *FlightRecorder) StatsJSON() FlightStatsJSON {
	if f == nil {
		return FlightStatsJSON{}
	}
	return FlightStatsJSON{
		Observed: f.observed.Load(),
		Dropped:  f.ring.Evicted(),
		Retained: f.ring.Len(),
	}
}

// FlightJSON is the body of GET /debug/flight.
type FlightJSON struct {
	Events []Event `json:"events"`
	FlightStatsJSON
}

// Handler serves GET /debug/flight: the event ring newest first, honoring
// the validated limit/min_duration/trace_id query.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := obs.ParseTraceQuery(r.URL.Query())
		if err != nil {
			if !obs.WriteQueryError(w, err) {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(FlightJSON{Events: f.Events(q), FlightStatsJSON: f.StatsJSON()})
	})
}

// WritePrometheus appends the obs_flight_* series to a /metrics
// exposition.
func (f *FlightRecorder) WritePrometheus(w io.Writer) error {
	if f == nil {
		return nil
	}
	s := f.StatsJSON()
	var b []byte
	for _, m := range []struct {
		name, typ, help string
		v               int64
	}{
		{"obs_flight_events_total", "counter", "Wide events observed by the flight recorder.", s.Observed},
		{"obs_flight_events_dropped_total", "counter", "Wide events evicted from the bounded flight ring.", s.Dropped},
		{"obs_flight_events_retained", "gauge", "Wide events currently retained in the flight ring.", int64(s.Retained)},
	} {
		b = append(b, "# HELP "...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = append(b, m.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, m.name...)
		b = append(b, ' ')
		b = append(b, m.typ...)
		b = append(b, '\n')
		b = append(b, m.name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.v, 10)
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}
