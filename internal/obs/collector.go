package obs

import (
	"context"
	"io"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultSampleEvery retains 1 in 16 finished traces in the ring
	// (slow traces are always retained).
	DefaultSampleEvery = 16
	// DefaultSlowThreshold promotes and warn-logs traces at or above it.
	DefaultSlowThreshold = 250 * time.Millisecond
	// DefaultRecent / DefaultSlowest size the retention ring and the
	// slowest-N exemplar list.
	DefaultRecent  = 64
	DefaultSlowest = 8
)

// histBuckets are the fixed log-spaced histogram bounds: 1µs doubling up
// to ~2.1s, plus a +Inf overflow bucket. Every phase shares the layout so
// the /metrics series are directly comparable.
const histBuckets = 22

// Config tunes a Collector; the zero value is usable (all defaults).
type Config struct {
	// SampleEvery retains 1 in N finished traces; 1 retains every trace.
	// Negative disables tracing entirely: StartTrace returns a nil trace
	// and the whole stack falls to its nil-check fast path.
	SampleEvery int
	// SlowThreshold promotes traces into the ring regardless of sampling
	// and logs them at warn level. Zero means the default; negative
	// disables promotion and slow logging.
	SlowThreshold time.Duration
	// Recent is the retention ring capacity; Slowest the exemplar count.
	Recent  int
	Slowest int
	// Logger receives slow-trace warnings; nil uses slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = DefaultSlowThreshold
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0
	}
	if c.Recent <= 0 {
		c.Recent = DefaultRecent
	}
	if c.Slowest <= 0 {
		c.Slowest = DefaultSlowest
	}
	return c
}

// phaseHist is one phase's fixed-bucket latency histogram; mutated only
// under the collector mutex. Each bucket remembers the trace ID and value
// of the last observation that landed in it — an OpenMetrics exemplar, the
// link from a histogram spike back to an inspectable trace.
type phaseHist struct {
	buckets [histBuckets + 1]int64 // +1 for +Inf
	sum     time.Duration
	count   int64

	exemplarID  [histBuckets + 1]string
	exemplarDur [histBuckets + 1]time.Duration
}

func (h *phaseHist) record(d time.Duration, traceID string) {
	b := histBuckets // +Inf
	for i := 0; i < histBuckets; i++ {
		if d <= time.Microsecond<<i {
			b = i
			break
		}
	}
	h.buckets[b]++
	h.sum += d
	h.count++
	if traceID != "" {
		h.exemplarID[b] = traceID
		h.exemplarDur[b] = d
	}
}

// leString renders bucket i's upper bound in seconds ("+Inf" for the
// overflow bucket), matching the exposition's le labels.
func leString(i int) string {
	if i >= histBuckets {
		return "+Inf"
	}
	return strconv.FormatFloat((time.Microsecond << i).Seconds(), 'g', -1, 64)
}

// Collector owns the per-process trace ring, slowest-N exemplars, and
// per-phase histograms. One collector serves a whole process — in
// cluster mode every cell's spans land here via the shared context — and
// all methods are safe on a nil receiver, so wiring is optional at every
// layer.
type Collector struct {
	cfg Config

	seq   atomic.Uint64 // sampling counter
	idseq atomic.Uint64 // trace-ID counter
	idkey uint64        // per-process ID mixing key

	started  atomic.Int64
	retained atomic.Int64
	slow     atomic.Int64

	ring *Ring[*Trace] // retention ring, self-synchronized

	mu      sync.Mutex
	slowest []*Trace // sorted by total descending, capped at cfg.Slowest
	hist    map[string]*phaseHist

	sink atomic.Pointer[func(TraceJSON)]
}

// SetSink registers fn to receive every finished trace as JSON; nil
// unregisters. The telemetry exporter hangs off this hook to ship spans
// toward an aggregator. Every finished trace is delivered, not only the
// sampled/retained ones, so cross-process assembly does not depend on two
// processes making the same sampling decision. fn runs on the request
// goroutine at Finish and must not block.
func (c *Collector) SetSink(fn func(TraceJSON)) {
	if c == nil {
		return
	}
	if fn == nil {
		c.sink.Store(nil)
		return
	}
	c.sink.Store(&fn)
}

// NewCollector builds a collector. The zero Config applies defaults
// (1-in-16 sampling, 250ms slow threshold, 64-entry ring, 8 exemplars).
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:   cfg,
		idkey: uint64(time.Now().UnixNano()),
		ring:  NewRing[*Trace](cfg.Recent),
		hist:  make(map[string]*phaseHist),
	}
}

// splitmix64 mixes the ID counter into well-spread 64-bit trace IDs
// without a per-request crypto/rand syscall.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StartTrace begins a trace for one request and returns a context
// carrying it. On a nil collector, or with sampling disabled
// (SampleEvery < 0), it returns (ctx, nil) — the nil trace no-ops
// everywhere, so this is the zero-overhead path. If the context already
// carries a trace, that trace is returned unchanged, which makes nested
// middlewares and facade layers idempotent.
func (c *Collector) StartTrace(ctx context.Context) (context.Context, *Trace) {
	return c.StartTraceID(ctx, "")
}

// StartTraceID is StartTrace but adopts id as the trace ID when it is a
// valid wire ID (non-empty, ≤64 chars of [0-9a-zA-Z_-]); otherwise a
// fresh ID is minted. This is how a cluster-internal HTTP hop keeps one
// trace identity across processes: the router's middleware mints, the
// cell's middleware adopts the forwarded X-Trace-Id.
func (c *Collector) StartTraceID(ctx context.Context, id string) (context.Context, *Trace) {
	if c == nil || c.cfg.SampleEvery < 0 {
		return ctx, nil
	}
	if t := FromContext(ctx); t != nil {
		return ctx, t
	}
	if !validWireID(id) {
		id = ""
	}
	n := c.seq.Add(1)
	c.started.Add(1)
	if id == "" {
		id = formatID(splitmix64(c.idkey ^ c.idseq.Add(1)))
	}
	t := &Trace{
		c:       c,
		id:      id,
		start:   time.Now(),
		sampled: (n-1)%uint64(c.cfg.SampleEvery) == 0,
		spans:   make([]Span, 0, 8),
	}
	return WithTrace(ctx, t), t
}

// validWireID accepts trace IDs safe to adopt from the wire: 1–64 chars
// of [0-9a-zA-Z_-]. Anything else (empty, junk, log-injection attempts)
// is discarded in favor of a minted ID.
func validWireID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func formatID(x uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// observe is called once per Finish: fold the spans into the histograms
// and decide retention. One short mutex hold per request end.
func (c *Collector) observe(t *Trace) {
	if c == nil {
		return
	}
	slow := c.cfg.SlowThreshold > 0 && t.total >= c.cfg.SlowThreshold
	keep := t.sampled || slow

	c.mu.Lock()
	t.mu.Lock()
	for i := range t.spans {
		h := c.hist[t.spans[i].Phase]
		if h == nil {
			h = &phaseHist{}
			c.hist[t.spans[i].Phase] = h
		}
		h.record(t.spans[i].dur, t.id)
	}
	t.mu.Unlock()
	if keep {
		c.ring.Append(t)
		i := sort.Search(len(c.slowest), func(i int) bool { return c.slowest[i].total < t.total })
		if i < c.cfg.Slowest {
			c.slowest = append(c.slowest, nil)
			copy(c.slowest[i+1:], c.slowest[i:])
			c.slowest[i] = t
			if len(c.slowest) > c.cfg.Slowest {
				c.slowest = c.slowest[:c.cfg.Slowest]
			}
		}
	}
	c.mu.Unlock()

	if keep {
		c.retained.Add(1)
	}
	if slow {
		c.slow.Add(1)
		logger := c.cfg.Logger
		if logger == nil {
			logger = slog.Default()
		}
		logger.Warn("slow trace",
			"trace_id", t.id,
			"total", t.total.String(),
			"phases", t.phaseSummary())
	}

	if f := c.sink.Load(); f != nil {
		(*f)(t.toJSON(c.cfg.SlowThreshold))
	}
}

// ExemplarJSON links one histogram bucket to a recently observed trace.
type ExemplarJSON struct {
	// Phase is the span phase whose histogram holds the exemplar.
	Phase string `json:"phase"`
	// LE is the bucket's upper bound in seconds ("+Inf" for overflow).
	LE string `json:"le"`
	// TraceID identifies the trace to look up on /debug/traces?trace_id=.
	TraceID string `json:"trace_id"`
	// Seconds is the exemplar observation itself.
	Seconds float64 `json:"seconds"`
}

// Exemplars returns, per phase, the exemplar of the highest populated
// bucket — the most recently observed worst-case sample, the one a p99
// spike investigation wants to open first. Sorted by phase.
func (c *Collector) Exemplars() []ExemplarJSON {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]ExemplarJSON, 0, len(c.hist))
	for phase, h := range c.hist {
		for i := histBuckets; i >= 0; i-- {
			if h.exemplarID[i] == "" {
				continue
			}
			out = append(out, ExemplarJSON{
				Phase:   phase,
				LE:      leString(i),
				TraceID: h.exemplarID[i],
				Seconds: h.exemplarDur[i].Seconds(),
			})
			break
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// Recent returns the retained traces, newest first, as debug JSON.
func (c *Collector) Recent() []TraceJSON {
	if c == nil {
		return nil
	}
	traces := c.ring.Snapshot()
	out := make([]TraceJSON, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.toJSON(c.cfg.SlowThreshold))
	}
	return out
}

// Slowest returns the slowest-N exemplars, slowest first, as debug JSON.
func (c *Collector) Slowest() []TraceJSON {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	traces := make([]*Trace, len(c.slowest))
	copy(traces, c.slowest)
	c.mu.Unlock()
	out := make([]TraceJSON, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.toJSON(c.cfg.SlowThreshold))
	}
	return out
}

// WritePrometheus appends the obs series to a /metrics exposition:
// per-phase duration histograms (real _bucket/_sum/_count series with
// log-spaced le bounds) plus trace lifecycle counters.
func (c *Collector) WritePrometheus(w io.Writer) error {
	if c == nil {
		return nil
	}
	type snap struct {
		phase string
		h     phaseHist
	}
	c.mu.Lock()
	snaps := make([]snap, 0, len(c.hist))
	for phase, h := range c.hist {
		snaps = append(snaps, snap{phase, *h})
	}
	c.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].phase < snaps[j].phase })

	var b []byte
	b = append(b, "# HELP obs_phase_seconds Solve-lifecycle per-phase latency by span phase.\n"...)
	b = append(b, "# TYPE obs_phase_seconds histogram\n"...)
	for _, s := range snaps {
		cum := int64(0)
		for i := 0; i <= histBuckets; i++ {
			cum += s.h.buckets[i]
			b = append(b, `obs_phase_seconds_bucket{phase="`...)
			b = append(b, s.phase...)
			b = append(b, `",le="`...)
			b = append(b, leString(i)...)
			b = append(b, `"} `...)
			b = strconv.AppendInt(b, cum, 10)
			// OpenMetrics exemplar: link the bucket to the last trace that
			// landed in it, so a histogram spike is one lookup away from an
			// inspectable trace (/debug/traces?trace_id=).
			if id := s.h.exemplarID[i]; id != "" {
				b = append(b, ` # {trace_id="`...)
				b = append(b, id...)
				b = append(b, `"} `...)
				b = strconv.AppendFloat(b, s.h.exemplarDur[i].Seconds(), 'g', -1, 64)
			}
			b = append(b, '\n')
		}
		b = append(b, `obs_phase_seconds_sum{phase="`...)
		b = append(b, s.phase...)
		b = append(b, `"} `...)
		b = strconv.AppendFloat(b, s.h.sum.Seconds(), 'g', -1, 64)
		b = append(b, '\n')
		b = append(b, `obs_phase_seconds_count{phase="`...)
		b = append(b, s.phase...)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, s.h.count, 10)
		b = append(b, '\n')
	}
	for _, ctr := range []struct {
		name, help string
		v          int64
	}{
		{"obs_traces_started_total", "Traces started (every request when tracing is enabled).", c.started.Load()},
		{"obs_traces_retained_total", "Traces retained in the debug ring (sampled in, or slow-promoted).", c.retained.Load()},
		{"obs_traces_slow_total", "Traces at or above the slow threshold.", c.slow.Load()},
		{"obs_traces_evicted_total", "Retained traces evicted from the debug ring by newer ones.", c.ring.Evicted()},
	} {
		b = append(b, "# HELP "...)
		b = append(b, ctr.name...)
		b = append(b, ' ')
		b = append(b, ctr.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, ctr.name...)
		b = append(b, " counter\n"...)
		b = append(b, ctr.name...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, ctr.v, 10)
		b = append(b, '\n')
	}
	_, err := w.Write(b)
	return err
}
