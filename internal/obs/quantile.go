package obs

import (
	"math"
	"sort"
	"time"
)

// Quantile reads the q-quantile from an ascending float64 slice by nearest
// rank (ceil(q*n) - 1), which keeps upper quantiles honest for small
// samples: the p99 of two values is the larger one, not the smaller.
// Returns 0 on an empty sample. Shared by the serving stats and the health
// layer's rolling windows so every quantile in the system means the same
// thing.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[rank(len(sorted), q)]
}

// QuantileDur is Quantile over an ascending duration slice.
func QuantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[rank(len(sorted), q)]
}

// DurationQuantiles reports the p50 and p99 of a latency sample in seconds
// (zeros for an empty sample). The sample is sorted in place.
func DurationQuantiles(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return QuantileDur(lat, 0.50).Seconds(), QuantileDur(lat, 0.99).Seconds()
}

func rank(n int, q float64) int {
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
