package stream

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/serve"
)

func testSystem(t testing.TB, n int, seed int64) *fl.System {
	t.Helper()
	sc := experiments.Default()
	sc.N = n
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func balanced() fl.Weights { return fl.Weights{W1: 0.5, W2: 0.5} }

// testManager builds a manager over a single 2-worker server; the cleanup
// closes both.
func testManager(t testing.TB, cfg Config) *Manager {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2})
	m := NewManager(NewServeBackend(srv), cfg)
	t.Cleanup(func() {
		m.Close()
		srv.Close()
	})
	return m
}

func openSession(t testing.TB, m *Manager, s *fl.System) (*Session, Update) {
	t.Helper()
	sess, upd, err := m.Open(context.Background(), "dev-1", serve.Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	return sess, upd
}

// sparseDrift mutates k random gains by a log-normal factor and returns the
// delta carrying their new absolute values.
func sparseDrift(s *fl.System, seq uint64, k int, sigma float64, rng *rand.Rand) Delta {
	gains := make(map[int]float64, k)
	for len(gains) < k {
		i := rng.Intn(len(s.Devices))
		if _, ok := gains[i]; ok {
			continue
		}
		gains[i] = s.Devices[i].Gain * math.Exp(sigma*rng.NormFloat64())
	}
	return Delta{Seq: seq, Gains: gains}
}

func TestSessionDeltaHitsWarmDualSeededPath(t *testing.T) {
	m := testManager(t, Config{})
	base := testSystem(t, 10, 1)
	sess, upd := openSession(t, m, base)
	if upd.Response.Source != serve.SourceCold {
		t.Fatalf("opening solve source = %q, want cold", upd.Response.Source)
	}

	rng := rand.New(rand.NewSource(2))
	expected := append([]fl.Device(nil), base.Devices...)
	for seq := uint64(1); seq <= 8; seq++ {
		d := sparseDrift(&fl.System{Devices: expected}, seq, 3, 0.3, rng)
		for i, g := range d.Gains {
			expected[i].Gain = g
		}
		upd, err := m.Apply(context.Background(), sess.ID(), d)
		if err != nil {
			t.Fatalf("delta %d: %v", seq, err)
		}
		if upd.Seq != seq {
			t.Fatalf("update seq = %d, want %d", upd.Seq, seq)
		}
		if upd.Response.Source != serve.SourceWarm {
			t.Fatalf("delta %d source = %q, want warm", seq, upd.Response.Source)
		}
		if !upd.Response.DualSeeded {
			t.Fatalf("delta %d not dual-seeded", seq)
		}
		newton := 0
		for _, it := range upd.Response.Result.Iterations {
			newton += it.NewtonIters
		}
		if newton != 0 {
			t.Fatalf("delta %d ran %d Newton iterations, want 0 on the dual-seeded path", seq, newton)
		}
	}

	// The authoritative state tracked every applied gain.
	snap := sess.SystemSnapshot()
	for i := range expected {
		if snap.Devices[i].Gain != expected[i].Gain {
			t.Fatalf("device %d gain %g != expected %g", i, snap.Devices[i].Gain, expected[i].Gain)
		}
	}
	if sess.Seq() != 8 {
		t.Fatalf("session seq = %d, want 8", sess.Seq())
	}
	st := m.Stats()
	if st.SolveWarm != 8 || st.SolveDualSeeded != 8 || st.Deltas != 8 {
		t.Fatalf("stats = %+v, want 8 warm / 8 dual-seeded / 8 deltas", st)
	}
}

func TestIncrementalFingerprintMatchesServerBuckets(t *testing.T) {
	// A delta-applied instance and the identical full re-POST must land on
	// the same cache entry: replaying a delta's resulting system through
	// the plain path has to be an exact-fingerprint cache hit.
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	m := NewManager(NewServeBackend(srv), Config{})
	defer m.Close()

	base := testSystem(t, 10, 3)
	sess, _ := openSession(t, m, base)
	rng := rand.New(rand.NewSource(4))
	d := sparseDrift(base, 1, 2, 0.3, rng)
	upd, err := m.Apply(context.Background(), sess.ID(), d)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Solve(context.Background(), serve.Request{System: sess.SystemSnapshot(), Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != serve.SourceCache {
		t.Fatalf("full re-POST of the delta state source = %q, want cache", resp.Source)
	}
	if resp.Fingerprint != upd.Response.Fingerprint {
		t.Fatalf("fingerprints diverge: delta %+v vs full %+v", upd.Response.Fingerprint, resp.Fingerprint)
	}
}

func TestStaleSeqRejected(t *testing.T) {
	m := testManager(t, Config{})
	base := testSystem(t, 6, 5)
	sess, _ := openSession(t, m, base)

	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 3, Gains: map[int]float64{0: base.Devices[0].Gain * 1.5}}); err != nil {
		t.Fatal(err)
	}
	before := sess.SystemSnapshot()
	for _, seq := range []uint64{0, 1, 3} {
		_, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: seq, Gains: map[int]float64{1: base.Devices[1].Gain * 2}})
		if !errors.Is(err, ErrStaleSeq) {
			t.Fatalf("seq %d: err = %v, want ErrStaleSeq", seq, err)
		}
	}
	// Rejected deltas must not have touched the authoritative state.
	after := sess.SystemSnapshot()
	for i := range before.Devices {
		if before.Devices[i].Gain != after.Devices[i].Gain {
			t.Fatalf("stale delta mutated device %d gain", i)
		}
	}
	if sess.Seq() != 3 {
		t.Fatalf("seq advanced to %d on rejected deltas", sess.Seq())
	}
	// Gaps are allowed.
	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 10, Gains: map[int]float64{0: base.Devices[0].Gain * 1.7}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().DeltaErrors; got != 3 {
		t.Fatalf("delta_errors = %d, want 3", got)
	}
}

func TestBadDeltaRejected(t *testing.T) {
	m := testManager(t, Config{})
	base := testSystem(t, 6, 6)
	sess, _ := openSession(t, m, base)

	cases := []struct {
		name string
		d    Delta
	}{
		{"empty", Delta{Seq: 1}},
		{"index out of range", Delta{Seq: 1, Gains: map[int]float64{6: 1e-8}}},
		{"negative index", Delta{Seq: 1, Gains: map[int]float64{-1: 1e-8}}},
		{"non-positive gain", Delta{Seq: 1, Gains: map[int]float64{0: 0}}},
		{"NaN gain", Delta{Seq: 1, Gains: map[int]float64{0: math.NaN()}}},
		{"infinite gain", Delta{Seq: 1, Gains: map[int]float64{0: math.Inf(1)}}},
		{"bad weights", Delta{Seq: 1, Weights: &fl.Weights{W1: 0.9, W2: 0.9}}},
		{"deadline on weighted session", Delta{Seq: 1, TotalDeadline: ptr(120.0)}},
	}
	for _, tc := range cases {
		if _, err := m.Apply(context.Background(), sess.ID(), tc.d); !errors.Is(err, ErrBadDelta) {
			t.Errorf("%s: err = %v, want ErrBadDelta", tc.name, err)
		}
	}
	if sess.Seq() != 0 {
		t.Fatalf("bad deltas advanced seq to %d", sess.Seq())
	}
	// A partially bad delta (one good gain, one bad index) must not apply
	// the good half.
	before := sess.SystemSnapshot()
	_, err := m.Apply(context.Background(), sess.ID(),
		Delta{Seq: 1, Gains: map[int]float64{0: before.Devices[0].Gain * 2, 17: 1e-9}})
	if !errors.Is(err, ErrBadDelta) {
		t.Fatalf("mixed delta: err = %v, want ErrBadDelta", err)
	}
	if got := sess.SystemSnapshot().Devices[0].Gain; got != before.Devices[0].Gain {
		t.Fatalf("rejected delta applied its valid half: gain %g != %g", got, before.Devices[0].Gain)
	}
}

func ptr[T any](v T) *T { return &v }

func TestWeightsDeltaChangesTopologyBucket(t *testing.T) {
	m := testManager(t, Config{})
	base := testSystem(t, 8, 7)
	sess, upd0 := openSession(t, m, base)
	topo0 := upd0.Response.Fingerprint.Topo

	upd, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Weights: &fl.Weights{W1: 0.8, W2: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Response.Fingerprint.Topo == topo0 {
		t.Fatalf("weight change kept topology bucket %x", topo0)
	}
	// A follow-up gains-only delta reuses the NEW topo hash and must agree
	// with a from-scratch fingerprint (checked by the cache hit below).
	rng := rand.New(rand.NewSource(8))
	if _, err := m.Apply(context.Background(), sess.ID(), sparseDrift(sess.SystemSnapshot(), 2, 2, 0.3, rng)); err != nil {
		t.Fatal(err)
	}
	resp, _, err := m.be.Solve(context.Background(), "", serve.Request{System: sess.SystemSnapshot(), Weights: fl.Weights{W1: 0.8, W2: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != serve.SourceCache {
		t.Fatalf("re-POST after weights+gains deltas source = %q, want cache", resp.Source)
	}
}

func TestDeadlineModeSessionDeadlineDelta(t *testing.T) {
	m := testManager(t, Config{})
	base := testSystem(t, 8, 9)
	sess, _, err := m.Open(context.Background(), "", serve.Request{
		System:  base,
		Weights: fl.Weights{W1: 1, W2: 0},
		Options: core.Options{Mode: core.ModeDeadline, TotalDeadline: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	upd, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, TotalDeadline: ptr(170.0)})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Response.Result.Metrics.TotalTime > 170+1e-6 {
		t.Fatalf("total time %g exceeds updated deadline", upd.Response.Result.Metrics.TotalTime)
	}
}

func TestSessionLimitAndClose(t *testing.T) {
	m := testManager(t, Config{MaxSessions: 2})
	base := testSystem(t, 6, 10)

	a, _ := openSession(t, m, base)
	drift := testSystem(t, 6, 11)
	if _, _, err := m.Open(context.Background(), "", serve.Request{System: drift, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Open(context.Background(), "", serve.Request{System: testSystem(t, 6, 12), Weights: balanced()}); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third open err = %v, want ErrSessionLimit", err)
	}
	sum, err := m.CloseSession(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	if sum.SessionID != a.ID() {
		t.Fatalf("close summary names %q, want %q", sum.SessionID, a.ID())
	}
	if _, _, err := m.Open(context.Background(), "", serve.Request{System: testSystem(t, 6, 13), Weights: balanced()}); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	// The closed session is gone.
	if _, err := m.Apply(context.Background(), a.ID(), Delta{Seq: 1, Gains: map[int]float64{0: 1e-8}}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("apply on closed session err = %v, want ErrNoSession", err)
	}
	if _, err := m.CloseSession("nope"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("close unknown session err = %v, want ErrNoSession", err)
	}
	st := m.Stats()
	if st.ActiveSessions != 2 || st.SessionsOpened != 3 || st.SessionsClosed != 1 || st.SessionsRejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIdleTTLExpiresSessions(t *testing.T) {
	m := testManager(t, Config{IdleTTL: 30 * time.Millisecond, SweepInterval: 10 * time.Millisecond})
	base := testSystem(t, 6, 14)
	sess, _ := openSession(t, m, base)

	deadline := time.Now().Add(5 * time.Second)
	for m.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Len() != 0 {
		t.Fatal("idle session not swept")
	}
	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Gains: map[int]float64{0: 1e-8}}); !errors.Is(err, ErrNoSession) {
		t.Fatalf("apply on expired session err = %v, want ErrNoSession", err)
	}
	if got := m.Stats().SessionsExpired; got != 1 {
		t.Fatalf("sessions_expired = %d, want 1", got)
	}
}

func TestSolverErrorKeepsStateAndSeqRetryable(t *testing.T) {
	// An infeasible deadline update applies (state) but fails to solve; the
	// seq must not advance, so the client can retry with a corrected value
	// under the same number.
	m := testManager(t, Config{})
	base := testSystem(t, 8, 15)
	sess, _, err := m.Open(context.Background(), "", serve.Request{
		System:  base,
		Weights: fl.Weights{W1: 1, W2: 0},
		Options: core.Options{Mode: core.ModeDeadline, TotalDeadline: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, TotalDeadline: ptr(1e-6)}); !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("impossible deadline err = %v, want core.ErrInfeasible", err)
	}
	if sess.Seq() != 0 {
		t.Fatalf("failed solve advanced seq to %d", sess.Seq())
	}
	// Retry the same seq with a feasible deadline.
	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, TotalDeadline: ptr(160.0)}); err != nil {
		t.Fatalf("retry after solver failure: %v", err)
	}
	if sess.Seq() != 1 {
		t.Fatalf("seq = %d after successful retry, want 1", sess.Seq())
	}
}

func TestManagerCloseRejectsEverything(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	m := NewManager(NewServeBackend(srv), Config{})
	base := testSystem(t, 6, 16)
	sess, _ := openSession(t, m, base)
	m.Close()
	m.Close() // idempotent

	if _, _, err := m.Open(context.Background(), "", serve.Request{System: base, Weights: balanced()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("open after close err = %v, want ErrClosed", err)
	}
	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Gains: map[int]float64{0: 1e-8}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close err = %v, want ErrClosed", err)
	}
	if _, err := m.CloseSession(sess.ID()); !errors.Is(err, ErrClosed) {
		t.Fatalf("close-session after close err = %v, want ErrClosed", err)
	}
}
