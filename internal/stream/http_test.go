package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/serve"
)

// streamServer spins up the wrapped HTTP stack over a single server.
func streamServer(t testing.TB) *httptest.Server {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2})
	m := NewManager(NewServeBackend(srv), Config{})
	ts := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		srv.Close()
	})
	return ts
}

func openHTTP(t testing.TB, ts *httptest.Server, s *fl.System, deviceID string) OpenResponseJSON {
	t.Helper()
	req := serve.SolveRequestJSON{System: serve.SystemToJSON(s), DeviceID: deviceID}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("open status %d: %s", resp.StatusCode, b)
	}
	var out OpenResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPStreamLifecycle(t *testing.T) {
	ts := streamServer(t)
	base := testSystem(t, 8, 21)
	open := openHTTP(t, ts, base, "dev-http")
	if open.SessionID == "" {
		t.Fatal("empty session id")
	}
	if open.Result.Source != string(serve.SourceCold) {
		t.Fatalf("opening solve source = %q, want cold", open.Result.Source)
	}

	// Stream three sparse deltas plus one stale and one bad over a single
	// NDJSON request; the response must carry one update line per delta,
	// ok lines warm+dual-seeded, error lines typed but non-fatal.
	rng := rand.New(rand.NewSource(22))
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	gains := func(seq uint64) DeltaJSON {
		d := DeltaJSON{Seq: seq, Gains: map[int]float64{}}
		for len(d.Gains) < 2 {
			i := rng.Intn(base.N())
			d.Gains[i] = base.Devices[i].Gain * math.Exp(0.3*rng.NormFloat64())
		}
		return d
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := enc.Encode(gains(seq)); err != nil {
			t.Fatal(err)
		}
	}
	_ = enc.Encode(DeltaJSON{Seq: 2, Gains: map[int]float64{0: 1e-8}})  // stale
	_ = enc.Encode(DeltaJSON{Seq: 9, Gains: map[int]float64{99: 1e-8}}) // bad index
	_ = enc.Encode(gains(10))

	resp, err := http.Post(ts.URL+"/v1/stream/"+open.SessionID+"/deltas", NDJSONContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != NDJSONContentType {
		t.Fatalf("content type %q", ct)
	}
	var updates []UpdateJSON
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var u UpdateJSON
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatalf("bad update line %q: %v", sc.Text(), err)
		}
		updates = append(updates, u)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(updates) != 6 {
		t.Fatalf("got %d update lines, want 6", len(updates))
	}
	for i, wantOK := range []bool{true, true, true, false, false, true} {
		if updates[i].OK != wantOK {
			t.Fatalf("update %d ok = %v (%+v)", i, updates[i].OK, updates[i])
		}
	}
	for _, i := range []int{0, 1, 2, 5} {
		u := updates[i]
		if u.Result == nil || u.Result.Source != string(serve.SourceWarm) || !u.Result.DualSeeded {
			t.Fatalf("update %d not warm+dual-seeded: %+v", i, u)
		}
		if u.Result.NewtonIters != 0 {
			t.Fatalf("update %d newton_iters = %d, want 0", i, u.Result.NewtonIters)
		}
	}
	if !strings.Contains(updates[3].Error, "stale") {
		t.Fatalf("stale update error = %q", updates[3].Error)
	}
	if !strings.Contains(updates[4].Error, "out of range") {
		t.Fatalf("bad-index update error = %q", updates[4].Error)
	}
	if updates[5].Seq != 10 {
		t.Fatalf("last update seq = %d, want 10", updates[5].Seq)
	}

	// Combined stats carry the stream section next to the server counters.
	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats struct {
		serve.Snapshot
		Stream Snapshot `json:"stream"`
	}
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 {
		t.Fatal("backend counters missing from combined stats")
	}
	if stats.Stream.ActiveSessions != 1 || stats.Stream.Deltas != 4 || stats.Stream.DeltaErrors != 2 {
		t.Fatalf("stream stats = %+v", stats.Stream)
	}

	// Metrics expose both the backend and the flstream series.
	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mt.Body.Close()
	mb, _ := io.ReadAll(mt.Body)
	for _, series := range []string{"flserve_requests_total", "flstream_active_sessions 1", "flstream_deltas_total 4", `flstream_solves_total{source="warm"} 4`} {
		if !strings.Contains(string(mb), series) {
			t.Fatalf("metrics missing %q:\n%s", series, mb)
		}
	}

	// Close the session; a second close 404s.
	creq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/"+open.SessionID, nil)
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var sum CloseSummary
	if err := json.NewDecoder(cresp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.LastSeq != 10 || sum.Deltas != 4 {
		t.Fatalf("close summary = %+v", sum)
	}
	cresp2, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatal(err)
	}
	cresp2.Body.Close()
	if cresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second close status %d, want 404", cresp2.StatusCode)
	}
}

func TestHTTPDeltasLiveInterleaved(t *testing.T) {
	// The wire contract a live client depends on: one delta written, one
	// update read back, repeatedly, over a single connection — the server
	// must answer each delta before the client sends the next (full-duplex
	// HTTP/1.1, flushed per line).
	ts := streamServer(t)
	base := testSystem(t, 8, 26)
	open := openHTTP(t, ts, base, "dev-live")

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream/"+open.SessionID+"/deltas", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	enc := json.NewEncoder(pw)
	dec := json.NewDecoder(resp.Body)
	rng := rand.New(rand.NewSource(27))
	for seq := uint64(1); seq <= 5; seq++ {
		i := rng.Intn(base.N())
		d := DeltaJSON{Seq: seq, Gains: map[int]float64{i: base.Devices[i].Gain * math.Exp(0.2*rng.NormFloat64())}}
		if err := enc.Encode(d); err != nil {
			t.Fatalf("delta %d write: %v", seq, err)
		}
		var u UpdateJSON
		if err := dec.Decode(&u); err != nil {
			t.Fatalf("delta %d read-back: %v", seq, err)
		}
		if !u.OK || u.Seq != seq {
			t.Fatalf("delta %d update = %+v", seq, u)
		}
		if u.Result.Source != string(serve.SourceWarm) || !u.Result.DualSeeded {
			t.Fatalf("delta %d not warm+dual-seeded: %+v", seq, u.Result)
		}
	}
	pw.Close()
	if err := dec.Decode(new(UpdateJSON)); err != io.EOF {
		t.Fatalf("stream did not end cleanly after body close: %v", err)
	}
}

func TestHTTPDeltasUnknownSessionAndMalformedLine(t *testing.T) {
	ts := streamServer(t)
	resp, err := http.Post(ts.URL+"/v1/stream/deadbeef/deltas", NDJSONContentType, strings.NewReader("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status %d, want 404", resp.StatusCode)
	}

	base := testSystem(t, 6, 23)
	open := openHTTP(t, ts, base, "")
	// A malformed line terminates the stream with one error line.
	resp, err = http.Post(ts.URL+"/v1/stream/"+open.SessionID+"/deltas", NDJSONContentType,
		strings.NewReader("{\"seq\": not-json\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %q", len(lines), body)
	}
	var u UpdateJSON
	if err := json.Unmarshal([]byte(lines[0]), &u); err != nil {
		t.Fatal(err)
	}
	if u.OK || !strings.Contains(u.Error, "decoding delta") {
		t.Fatalf("malformed-line update = %+v", u)
	}
}

func TestHTTPOpenValidation(t *testing.T) {
	ts := streamServer(t)
	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed open status %d, want 400", resp.StatusCode)
	}
	// A system that fails validation opens no session.
	req := serve.SolveRequestJSON{}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, _ := json.Marshal(req)
	resp, err = http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty system open status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPBaseRoutesStillServed(t *testing.T) {
	// The wrapped handler must remain a drop-in for the plain API.
	ts := streamServer(t)
	base := testSystem(t, 6, 24)
	req := serve.SolveRequestJSON{System: serve.SystemToJSON(base)}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("plain solve status %d: %s", resp.StatusCode, b)
	}
	var out serve.SolveResponseJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Source != string(serve.SourceCold) {
		t.Fatalf("plain solve source %q", out.Source)
	}
}

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrStaleSeq, http.StatusConflict},
		{ErrBadDelta, http.StatusBadRequest},
		{ErrNoSession, http.StatusNotFound},
		{ErrSessionLimit, http.StatusTooManyRequests},
		{ErrClosed, http.StatusServiceUnavailable},
		{serve.ErrOverloaded, http.StatusServiceUnavailable},
		{core.ErrInfeasible, http.StatusUnprocessableEntity},
		{fmt.Errorf("wrapped: %w", ErrStaleSeq), http.StatusConflict},
		{errors.New("other"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := StatusFor(tc.err); got != tc.want {
			t.Errorf("StatusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestHTTPClusterStreamStats(t *testing.T) {
	// The same streaming layer mounts over the cluster front end, with the
	// cluster's aggregate stats shape preserved under the stream section.
	r := cluster.New(cluster.Config{Cells: 2, Cell: serve.Config{Workers: 2}})
	m := NewManager(NewClusterBackend(r), Config{})
	ts := httptest.NewServer(Handler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		r.Close()
	})

	base := testSystem(t, 6, 25)
	open := openHTTP(t, ts, base, "dev-cl")
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(DeltaJSON{Seq: 1, Gains: map[int]float64{0: base.Devices[0].Gain * 1.5}})
	resp, err := http.Post(ts.URL+"/v1/stream/"+open.SessionID+"/deltas", NDJSONContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var u UpdateJSON
	if err := json.NewDecoder(resp.Body).Decode(&u); err != nil {
		t.Fatal(err)
	}
	if !u.OK || u.Cell != open.Cell {
		t.Fatalf("cluster delta update = %+v, want ok in cell %d", u, open.Cell)
	}

	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var stats struct {
		Aggregate serve.Snapshot `json:"aggregate"`
		Stream    Snapshot       `json:"stream"`
	}
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Aggregate.Requests < 2 {
		t.Fatalf("aggregate requests = %d, want >= 2", stats.Aggregate.Requests)
	}
	if stats.Stream.ActiveSessions != 1 || stats.Stream.Deltas != 1 {
		t.Fatalf("stream stats = %+v", stats.Stream)
	}
}
