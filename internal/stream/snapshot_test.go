package stream

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/serve"
)

// TestSessionSnapshotResumeWithoutStaleSeq is the restart contract: a
// session snapshotted after N deltas and restored into a fresh manager
// must accept delta N+1 — the client never sees ErrStaleSeq because of
// the restart — and the re-solve must come back warm off the restored
// server state.
func TestSessionSnapshotResumeWithoutStaleSeq(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	m := NewManager(NewServeBackend(srv), Config{})
	defer m.Close()

	sys := testSystem(t, 8, 1)
	sess, _, err := m.Open(context.Background(), "dev-1", serve.Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := m.Apply(context.Background(), sess.ID(), sparseDrift(sys, seq, 2, 0.05, rng)); err != nil {
			t.Fatal(err)
		}
	}

	snaps := m.ExportSessions()
	if len(snaps) != 1 {
		t.Fatalf("exported %d sessions, want 1", len(snaps))
	}
	if snaps[0].Seq != 3 || snaps[0].ID != sess.ID() {
		t.Fatalf("snapshot seq %d id %q, want 3 / %q", snaps[0].Seq, snaps[0].ID, sess.ID())
	}

	// "Restart": fresh server + manager, state restored from the export.
	srv2 := serve.New(serve.Config{Workers: 2})
	defer srv2.Close()
	srv2.ImportState(srv.ExportState())
	m2 := NewManager(NewServeBackend(srv2), Config{})
	defer m2.Close()
	if n := m2.RestoreSessions(snaps); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	if got := m2.Stats().SessionsRestored; got != 1 {
		t.Fatalf("sessions_restored counter %d, want 1", got)
	}

	// The client continues exactly where it left off: next seq is 4.
	upd, err := m2.Apply(context.Background(), sess.ID(), sparseDrift(sys, 4, 2, 0.05, rng))
	if err != nil {
		t.Fatalf("post-restore delta 4: %v", err)
	}
	if upd.Seq != 4 {
		t.Fatalf("post-restore update seq %d, want 4", upd.Seq)
	}
	// The restored state must keep serving hot: a cache hit when the
	// drifted gains land back in a solved bucket, otherwise a warm +
	// dual-seeded re-solve. Cold means the restore lost the state.
	switch upd.Response.Source {
	case serve.SourceCache:
	case serve.SourceWarm:
		if !upd.Response.DualSeeded {
			t.Fatalf("post-restore warm re-solve not dual-seeded")
		}
	default:
		t.Fatalf("post-restore re-solve source %q: restored state not used", upd.Response.Source)
	}

	// Replays from before the snapshot still answer the usual typed error.
	if _, err := m2.Apply(context.Background(), sess.ID(), sparseDrift(sys, 2, 1, 0.05, rng)); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("replayed old seq after restore: err %v, want ErrStaleSeq", err)
	}
}

// TestRestoreSessionsSkipsConflictsAndOverflow checks restore never
// clobbers a live session with the same ID and respects MaxSessions.
func TestRestoreSessionsSkipsConflictsAndOverflow(t *testing.T) {
	m := testManager(t, Config{MaxSessions: 2})
	sys := testSystem(t, 8, 5)
	sess, _ := openSession(t, m, sys)

	snaps := m.ExportSessions()
	// Restoring over the still-open original is a no-op.
	if n := m.RestoreSessions(snaps); n != 0 {
		t.Fatalf("restore over live session recreated %d, want 0", n)
	}

	// Fill the table, then restoring one more (fresh ID) must be refused.
	if _, _, err := m.Open(context.Background(), "dev-2", serve.Request{System: testSystem(t, 8, 6), Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	extra := snaps[0]
	extra.ID = sess.ID() + "-copy"
	if n := m.RestoreSessions([]SessionSnapshot{extra}); n != 0 {
		t.Fatalf("restore past MaxSessions recreated %d, want 0", n)
	}
}
