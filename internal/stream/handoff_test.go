package stream

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fl"
	"repro/internal/serve"
)

// TestActiveSessionSurvivesHandoff drives deltas through a cluster-backed
// session WHILE the device hands off between cells: no update may be lost
// (every sequence number applies, in order, to the authoritative state) and
// the post-move re-solves must still be warm and dual-seeded — the handoff
// migrated the topology bucket's allocation + dual state to the new cell.
func TestActiveSessionSurvivesHandoff(t *testing.T) {
	r := cluster.New(cluster.Config{Cells: 2, Cell: serve.Config{Workers: 2}})
	defer r.Close()
	m := NewManager(NewClusterBackend(r), Config{})
	defer m.Close()

	base := testSystem(t, 10, 31)
	const dev = "dev-moving"
	sess, upd0, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	from := upd0.Cell
	to := 1 - from
	if got := r.Route(dev); got != from {
		t.Fatalf("device routed to cell %d, opening solve served by %d", got, from)
	}

	// A few settled deltas so the source cell holds warm state to migrate.
	rng := rand.New(rand.NewSource(32))
	expected := append([]fl.Device(nil), base.Devices...)
	apply := func(seq uint64) Update {
		t.Helper()
		d := sparseDrift(&fl.System{Devices: expected}, seq, 2, 0.1, rng)
		for i, g := range d.Gains {
			expected[i].Gain = g
		}
		u, err := m.Apply(context.Background(), sess.ID(), d)
		if err != nil {
			t.Fatalf("delta %d: %v", seq, err)
		}
		return u
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if u := apply(seq); u.Cell != from {
			t.Fatalf("pre-handoff delta %d served by cell %d, want %d", seq, u.Cell, from)
		}
	}

	// Deltas in flight while the handoff runs. The applier goroutine owns
	// the delta sequence; the main goroutine fires the handoff concurrently,
	// so solves race the migration in both cells.
	const inflight = 20
	var wg sync.WaitGroup
	updates := make([]Update, 0, inflight)
	handoffGate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(handoffGate) }) }
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer openGate() // never leave the main goroutine blocked on a failure
		prng := rand.New(rand.NewSource(33))
		for seq := uint64(5); seq < 5+inflight; seq++ {
			d := sparseDrift(&fl.System{Devices: expected}, seq, 2, 0.1, prng)
			for i, g := range d.Gains {
				expected[i].Gain = g
			}
			u, err := m.Apply(context.Background(), sess.ID(), d)
			if err != nil {
				t.Errorf("in-flight delta %d: %v", seq, err)
				return
			}
			updates = append(updates, u)
			if seq == 5+inflight/2 {
				openGate() // fire the handoff mid-stream
			}
		}
	}()
	<-handoffGate
	rep, err := r.Handoff(context.Background(), dev, from, to)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if rep.MigratedWarm == 0 && rep.MigratedResults == 0 {
		t.Fatalf("handoff migrated nothing: %+v", rep)
	}

	// No lost updates: every in-flight delta applied and the authoritative
	// state matches the client's own bookkeeping exactly.
	if len(updates) != inflight {
		t.Fatalf("got %d in-flight updates, want %d", len(updates), inflight)
	}
	if got := sess.Seq(); got != 4+inflight {
		t.Fatalf("session seq = %d, want %d", got, 4+inflight)
	}
	snap := sess.SystemSnapshot()
	for i := range expected {
		if snap.Devices[i].Gain != expected[i].Gain {
			t.Fatalf("device %d gain %g != expected %g (lost update)", i, snap.Devices[i].Gain, expected[i].Gain)
		}
	}

	// Post-move deltas route to the destination cell and still ride the
	// warm + dual-seeded path off the migrated state.
	for seq := uint64(5 + inflight); seq < 8+inflight; seq++ {
		u := apply(seq)
		if u.Cell != to {
			t.Fatalf("post-handoff delta %d served by cell %d, want %d", seq, u.Cell, to)
		}
		if u.Response.Source != serve.SourceWarm {
			t.Fatalf("post-handoff delta %d source = %q, want warm", seq, u.Response.Source)
		}
		if !u.Response.DualSeeded {
			t.Fatalf("post-handoff delta %d not dual-seeded", seq)
		}
		newton := 0
		for _, it := range u.Response.Result.Iterations {
			newton += it.NewtonIters
		}
		if newton != 0 {
			t.Fatalf("post-handoff delta %d ran %d Newton iterations, want 0", seq, newton)
		}
	}

	// The in-flight updates themselves were all served somewhere real and
	// in sequence order.
	lastSeq := uint64(4)
	for _, u := range updates {
		if u.Seq != lastSeq+1 {
			t.Fatalf("update order broke: seq %d after %d", u.Seq, lastSeq)
		}
		lastSeq = u.Seq
		if u.Cell != from && u.Cell != to {
			t.Fatalf("update %d served by unknown cell %d", u.Seq, u.Cell)
		}
	}
}

// TestHandoffRefingerprintRacesDeltas hammers the narrowest window: the
// router's handoff history re-fingerprints retained request systems while
// the session applies deltas, so every system handed to the backend (the
// opening solve included) must be a snapshot, never the live in-place-
// mutated authoritative state. Run under -race this fails if either Open
// or Apply leaks s.sys by reference.
func TestHandoffRefingerprintRacesDeltas(t *testing.T) {
	r := cluster.New(cluster.Config{Cells: 2, Cell: serve.Config{Workers: 2}})
	defer r.Close()
	m := NewManager(NewClusterBackend(r), Config{})
	defer m.Close()

	base := testSystem(t, 8, 36)
	const dev = "dev-race"
	sess, upd0, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	cellA := upd0.Cell
	cellB := 1 - cellA

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Ping-pong handoffs re-fingerprint the device's full history on
		// every hop, maximizing reads of the retained request systems.
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			from, to := cellA, cellB
			if i%2 == 1 {
				from, to = cellB, cellA
			}
			if _, err := r.Handoff(context.Background(), dev, from, to); err != nil {
				t.Errorf("handoff %d: %v", i, err)
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(37))
	expected := append([]fl.Device(nil), base.Devices...)
	for seq := uint64(1); seq <= 30; seq++ {
		d := sparseDrift(&fl.System{Devices: expected}, seq, 2, 0.1, rng)
		for i, g := range d.Gains {
			expected[i].Gain = g
		}
		if _, err := m.Apply(context.Background(), sess.ID(), d); err != nil {
			t.Fatalf("delta %d: %v", seq, err)
		}
	}
	close(done)
	wg.Wait()
	if got := sess.Seq(); got != 30 {
		t.Fatalf("session seq = %d, want 30", got)
	}
}

// TestHandoffMigratesOpeningInstanceAfterDeltas is the deterministic
// regression for the same leak: the handoff history must remember the
// opening solve's system AS SERVED. If Open handed the live state to the
// backend, later deltas would mutate the retained record and the handoff
// would re-fingerprint the opening instance under the drifted gains —
// extracting the wrong cache key and stranding the opening solution in the
// source cell. A replay of the original system after the move must
// therefore be a cache hit in the destination.
func TestHandoffMigratesOpeningInstanceAfterDeltas(t *testing.T) {
	r := cluster.New(cluster.Config{Cells: 2, Cell: serve.Config{Workers: 2}})
	defer r.Close()
	m := NewManager(NewClusterBackend(r), Config{})
	defer m.Close()

	base := testSystem(t, 8, 38)
	orig := cloneSystem(base)
	const dev = "dev-orig"
	sess, upd0, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	from := upd0.Cell
	to := 1 - from

	// Drift far enough that the session state leaves the opening
	// instance's exact fingerprint bucket.
	if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Gains: map[int]float64{
		0: base.Devices[0].Gain * 2,
		3: base.Devices[3].Gain * 0.5,
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Handoff(context.Background(), dev, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 2 {
		t.Fatalf("handoff saw %d instances, want 2 (opening + delta)", rep.Instances)
	}
	if rep.MigratedResults != 2 {
		t.Fatalf("handoff migrated %d results, want 2 — the opening instance was re-fingerprinted under the wrong gains", rep.MigratedResults)
	}
	resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: orig, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if cell != to {
		t.Fatalf("replay served by cell %d, want %d", cell, to)
	}
	if resp.Source != serve.SourceCache {
		t.Fatalf("replay of the opening instance after handoff source = %q, want cache", resp.Source)
	}
}

// TestHandoffPinMovesSessionRouting pins down the routing half alone: after
// a handoff the session's next delta must be served by the destination cell
// even with no concurrency involved.
func TestHandoffPinMovesSessionRouting(t *testing.T) {
	r := cluster.New(cluster.Config{Cells: 3, Cell: serve.Config{Workers: 2}})
	defer r.Close()
	m := NewManager(NewClusterBackend(r), Config{})
	defer m.Close()

	base := testSystem(t, 8, 34)
	const dev = "dev-pin"
	sess, upd0, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	from := upd0.Cell
	to := (from + 1) % 3
	if _, err := r.Handoff(context.Background(), dev, from, to); err != nil {
		t.Fatal(err)
	}
	u, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Gains: map[int]float64{0: base.Devices[0].Gain * 1.3}})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cell != to {
		t.Fatalf("post-handoff delta served by cell %d, want %d", u.Cell, to)
	}
	if u.Response.Source != serve.SourceWarm || !u.Response.DualSeeded {
		t.Fatalf("post-handoff solve source=%q dualSeeded=%v, want warm+seeded", u.Response.Source, u.Response.DualSeeded)
	}
}
