package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/fl"
	"repro/internal/serve"
)

// NDJSONContentType is the media type of the delta and update streams.
const NDJSONContentType = "application/x-ndjson"

// maxOpenBody bounds the session-opening body (one full system, same limit
// as POST /v1/solve).
const maxOpenBody = 8 << 20

// maxDeltaStream bounds one delta-stream request body. Deltas are tiny, so
// this fits hundreds of thousands of updates per connection; a client
// simply reopens the stream (same session) when it runs out.
const maxDeltaStream = 256 << 20

// OpenResponseJSON is the body of a successful POST /v1/stream.
type OpenResponseJSON struct {
	SessionID string `json:"session_id"`
	// Seq is the session's last applied sequence number (0 at open); the
	// first delta must carry a larger one.
	Seq  uint64 `json:"seq"`
	Cell int    `json:"cell"`
	// Result is the opening solve's outcome.
	Result serve.SolveResponseJSON `json:"result"`
}

// WeightsJSON is the wire form of an objective-weight update.
type WeightsJSON struct {
	W1 float64 `json:"w1"`
	W2 float64 `json:"w2"`
}

// DeltaJSON is one line of the NDJSON delta stream posted to
// POST /v1/stream/{id}/deltas. Gains maps device index to the new absolute
// channel gain.
type DeltaJSON struct {
	Seq            uint64          `json:"seq"`
	Gains          map[int]float64 `json:"gains,omitempty"`
	Weights        *WeightsJSON    `json:"weights,omitempty"`
	TotalDeadlineS *float64        `json:"total_deadline_s,omitempty"`
}

// ToDelta converts the wire form to the native delta.
func (d DeltaJSON) ToDelta() Delta {
	out := Delta{Seq: d.Seq, Gains: d.Gains, TotalDeadline: d.TotalDeadlineS}
	if d.Weights != nil {
		out.Weights = &fl.Weights{W1: d.Weights.W1, W2: d.Weights.W2}
	}
	return out
}

// UpdateJSON is one line of the NDJSON update stream answering a delta. A
// rejected or failed delta carries ok=false and the error; the session (and
// the stream) stays usable unless the error line says otherwise.
type UpdateJSON struct {
	Seq   uint64 `json:"seq"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Cell  int    `json:"cell"`
	// Result carries the allocation plus solve metadata (source,
	// dual_seeded, newton_iters, solve_seconds, fingerprint).
	Result *serve.SolveResponseJSON `json:"result,omitempty"`
}

// StatusFor maps streaming errors to HTTP statuses, falling back to the
// serving layer's mapping. Within an NDJSON delta stream, per-delta
// rejections (stale seq, bad delta) are reported as ok=false update lines
// on the already-committed 200 response, not as HTTP statuses; those arms
// exist for callers embedding Apply behind their own one-shot endpoints.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, ErrStaleSeq):
		return http.StatusConflict
	case errors.Is(err, ErrBadDelta):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoSession):
		return http.StatusNotFound
	case errors.Is(err, ErrSessionLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return serve.StatusFor(err)
	}
}

// Handler mounts the streaming API over the backend's base HTTP API:
//
//	POST   /v1/stream              open a session (full SolveRequestJSON)
//	POST   /v1/stream/{id}/deltas  NDJSON deltas in, NDJSON updates out
//	DELETE /v1/stream/{id}         close a session
//	GET    /v1/stats               backend stats + "stream" section
//	GET    /metrics                backend exposition + flstream series
//
// Every other route is delegated to the backend handler, so the wrapped
// handler is a drop-in replacement for it.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/stream", m.handleOpen)
	mux.HandleFunc("POST /v1/stream/{id}/deltas", m.handleDeltas)
	mux.HandleFunc("DELETE /v1/stream/{id}", m.handleClose)
	mux.HandleFunc("GET /v1/stats", m.handleStats)
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.Handle("/", m.be.Handler())
	return mux
}

func (m *Manager) handleOpen(w http.ResponseWriter, r *http.Request) {
	var in serve.SolveRequestJSON
	r.Body = http.MaxBytesReader(w, r.Body, maxOpenBody)
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	req, err := serve.RequestFromJSON(in)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sess, upd, err := m.Open(r.Context(), in.DeviceID, req)
	if err != nil {
		httpError(w, StatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, OpenResponseJSON{
		SessionID: sess.ID(),
		Seq:       0,
		Cell:      upd.Cell,
		Result:    serve.ResponseToJSON(upd.Response),
	})
}

// handleDeltas drives one session from an NDJSON request body, answering
// each delta with an NDJSON update line flushed immediately (so a client
// reading with `curl --no-buffer` sees every re-solve as it lands). Rejected
// deltas (stale seq, bad delta) and solver failures produce an ok=false
// line and the stream continues; a vanished session or an undecodable line
// ends it.
func (m *Manager) handleDeltas(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := m.lookup(id); err != nil {
		httpError(w, StatusFor(err), err)
		return
	}
	// A live client interleaves delta writes with update reads on one
	// connection; without full duplex the HTTP/1 server consumes the rest
	// of the request body at the first response write, eating every delta
	// the client has yet to send. Best-effort: a transport that cannot
	// grant it still works for fully-buffered bodies.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out immediately so a streaming client's Do()
		// returns before the first delta is sent.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(u UpdateJSON) {
		_ = enc.Encode(u)
		if flusher != nil {
			flusher.Flush()
		}
	}

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxDeltaStream))
	for {
		var dj DeltaJSON
		if err := dec.Decode(&dj); err != nil {
			if !errors.Is(err, io.EOF) {
				emit(UpdateJSON{OK: false, Error: "decoding delta: " + err.Error()})
			}
			return
		}
		// One trace per delta, not per connection: the obs middleware skips
		// this long-lived endpoint, so the lifecycle trace starts here.
		ctx, tr := m.cfg.Trace.StartTrace(r.Context())
		upd, err := m.Apply(ctx, id, dj.ToDelta())
		tr.Finish()
		if err != nil {
			emit(UpdateJSON{Seq: dj.Seq, OK: false, Error: err.Error()})
			if errors.Is(err, ErrNoSession) || errors.Is(err, ErrClosed) ||
				errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
				r.Context().Err() != nil {
				return
			}
			continue
		}
		rj := serve.ResponseToJSON(upd.Response)
		emit(UpdateJSON{Seq: upd.Seq, OK: true, Cell: upd.Cell, Result: &rj})
	}
}

func (m *Manager) handleClose(w http.ResponseWriter, r *http.Request) {
	sum, err := m.CloseSession(r.PathValue("id"))
	if err != nil {
		httpError(w, StatusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleStats merges the backend's stats object with the streaming
// counters under a "stream" key, so /v1/stats stays one endpoint whether
// or not the streaming layer is mounted.
func (m *Manager) handleStats(w http.ResponseWriter, _ *http.Request) {
	raw, err := json.Marshal(m.be.StatsPayload())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	sj, err := json.Marshal(m.Stats())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	obj["stream"] = sj
	writeJSON(w, http.StatusOK, obj)
}

func (m *Manager) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", serve.PromContentType)
	m.be.WriteMetrics(w)
	pw := serve.NewPromWriter(w)
	m.Stats().WritePrometheus(pw, "flstream", "")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
