package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TestPerDeltaTraces checks the streaming trace contract: the HTTP
// middleware skips the long-lived NDJSON connection, so with a collector
// wired into the manager each delta gets its OWN lifecycle trace — a
// distinct trace ID per update line, with the delta_apply span and the
// serving-layer spans riding the same per-delta trace.
func TestPerDeltaTraces(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	col := obs.NewCollector(obs.Config{SampleEvery: 1, SlowThreshold: -1})
	m := NewManager(NewServeBackend(srv), Config{Trace: col})
	ts := httptest.NewServer(Handler(m))
	defer func() {
		ts.Close()
		m.Close()
		srv.Close()
	}()

	base := testSystem(t, 6, 31)
	open := openHTTP(t, ts, base, "dev-traced")

	const deltas = 3
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for seq := uint64(1); seq <= deltas; seq++ {
		d := DeltaJSON{Seq: seq, Gains: map[int]float64{
			0: base.Devices[0].Gain * (1 + 0.2*float64(seq)),
		}}
		if err := enc.Encode(d); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/stream/"+open.SessionID+"/deltas", NDJSONContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta stream status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("delta-stream connection must not carry one trace ID, got %q", got)
	}

	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var u UpdateJSON
		if err := json.Unmarshal(sc.Bytes(), &u); err != nil {
			t.Fatal(err)
		}
		if !u.OK {
			t.Fatalf("update seq %d failed: %s", u.Seq, u.Error)
		}
		if u.Result.TraceID == "" {
			t.Fatalf("update seq %d carries no trace ID", u.Seq)
		}
		if seen[u.Result.TraceID] {
			t.Fatalf("trace ID %s reused across deltas — traces must be per delta", u.Result.TraceID)
		}
		seen[u.Result.TraceID] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != deltas {
		t.Fatalf("got %d distinct per-delta trace IDs, want %d", len(seen), deltas)
	}

	// Every retained delta trace carries the delta_apply span.
	applied := 0
	for _, tj := range col.Recent() {
		for _, sp := range tj.Spans {
			if sp.Phase == obs.PhaseDeltaApply {
				applied++
				if !seen[tj.TraceID] {
					t.Fatalf("retained delta trace %s not answered to the client", tj.TraceID)
				}
			}
		}
	}
	if applied != deltas {
		t.Fatalf("%d delta_apply spans retained, want %d", applied, deltas)
	}
}
