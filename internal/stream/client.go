package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serve"
)

// OpenSession opens a delta session over HTTP: one POST /v1/stream with a
// full solve request. It is the client half of the streaming API, shared
// by both load generators and usable as a minimal reference client.
func OpenSession(baseURL string, req serve.SolveRequestJSON) (OpenResponseJSON, error) {
	var out OpenResponseJSON
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := http.Post(baseURL+"/v1/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return out, fmt.Errorf("stream: open session: status %d: %s", resp.StatusCode, b)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// DeltaStream is a live NDJSON connection to a session's deltas endpoint:
// Send writes one delta line, Recv reads one update line back. The two
// halves ride a single full-duplex HTTP request, so a lock-step
// Send/Recv loop sees each re-solve as it lands. Not safe for concurrent
// use; one goroutine owns the stream.
type DeltaStream struct {
	enc  *json.Encoder
	dec  *json.Decoder
	pw   *io.PipeWriter
	resp *http.Response
}

// OpenDeltaStream connects to the session's deltas endpoint.
func OpenDeltaStream(baseURL, sessionID string) (*DeltaStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/stream/"+sessionID+"/deltas", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", NDJSONContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		pw.Close()
		return nil, fmt.Errorf("stream: delta stream: status %d: %s", resp.StatusCode, b)
	}
	return &DeltaStream{
		enc:  json.NewEncoder(pw),
		dec:  json.NewDecoder(resp.Body),
		pw:   pw,
		resp: resp,
	}, nil
}

// Send writes one delta line.
func (s *DeltaStream) Send(d DeltaJSON) error { return s.enc.Encode(d) }

// Recv reads the next update line (io.EOF after the server ends the
// stream).
func (s *DeltaStream) Recv() (UpdateJSON, error) {
	var u UpdateJSON
	err := s.dec.Decode(&u)
	return u, err
}

// Close tears the connection down (both the request body and the response
// stream).
func (s *DeltaStream) Close() error {
	err := s.pw.Close()
	if cerr := s.resp.Body.Close(); err == nil {
		err = cerr
	}
	return err
}
