package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/serve"
)

// slowManager builds a manager whose backend solver sleeps before solving,
// so deltas reliably pile up behind an in-flight re-solve.
func slowManager(t testing.TB, delay time.Duration) *Manager {
	t.Helper()
	srv := serve.New(serve.Config{
		Workers: 2,
		Solver: func(s *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			time.Sleep(delay)
			return core.Optimize(s, w, o)
		},
	})
	m := NewManager(NewServeBackend(srv), Config{})
	t.Cleanup(func() {
		m.Close()
		srv.Close()
	})
	return m
}

// stagedSeq reads the session's staged (applied-but-maybe-unsolved)
// sequence number.
func stagedSeq(s *Session) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingSeq
}

func waitFor(t testing.TB, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeltasCoalesceBehindSlowSolve piles three deltas behind one slow
// re-solve: the first solves alone, the two queued ones must be answered
// by ONE covering re-solve of the latest state (not one each), counted as
// coalesced, with every caller acked under its own sequence number and the
// authoritative state reflecting all three.
func TestDeltasCoalesceBehindSlowSolve(t *testing.T) {
	m := slowManager(t, 150*time.Millisecond)
	base := testSystem(t, 8, 60)
	sess, _ := openSession(t, m, base)
	solvesBefore := sessionSolves(m)

	gain := func(i int, f float64) map[int]float64 {
		return map[int]float64{i: base.Devices[i].Gain * f}
	}
	type result struct {
		upd Update
		err error
	}
	results := make([]result, 4)
	var wg sync.WaitGroup
	applyAsync := func(k int, seq uint64, gains map[int]float64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			upd, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: seq, Gains: gains})
			results[k] = result{upd, err}
		}()
		// The next delta may only launch once this one has staged, or the
		// arrival order (and thus seq validation) would be racy.
		waitFor(t, "delta staging", func() bool { return stagedSeq(sess) >= seq })
	}
	applyAsync(1, 1, gain(0, 1.5))
	applyAsync(2, 2, gain(1, 1.4))
	applyAsync(3, 3, gain(0, 1.8)) // overwrites delta 1's device-0 value
	wg.Wait()

	for k := 1; k <= 3; k++ {
		if results[k].err != nil {
			t.Fatalf("delta %d: %v", k, results[k].err)
		}
		if results[k].upd.Seq != uint64(k) {
			t.Fatalf("delta %d acked with seq %d", k, results[k].upd.Seq)
		}
	}
	if got := sess.Seq(); got != 3 {
		t.Fatalf("session seq %d, want 3", got)
	}
	snap := sess.SystemSnapshot()
	if snap.Devices[0].Gain != base.Devices[0].Gain*1.8 || snap.Devices[1].Gain != base.Devices[1].Gain*1.4 {
		t.Fatalf("authoritative state missed a coalesced delta: %+v", snap.Devices[:2])
	}

	st := m.Stats()
	if st.Deltas != 3 {
		t.Fatalf("deltas_applied %d, want 3", st.Deltas)
	}
	if st.DeltasCoalesced != 1 {
		t.Fatalf("deltas_coalesced %d, want 1 (deltas 2+3 queued; one solved for both, the other coalesced)", st.DeltasCoalesced)
	}
	if solves := sessionSolves(m) - solvesBefore; solves != 2 {
		t.Fatalf("%d re-solves for 3 deltas, want 2 (1 + 1 covering)", solves)
	}
	// Deltas 2 and 3 were covered by the same solve: identical responses.
	if results[2].upd.Response.Fingerprint != results[3].upd.Response.Fingerprint {
		t.Fatalf("coalesced deltas answered from different solves")
	}
}

// sessionSolves totals the per-path solve counters (each incremented once
// per actual backend re-solve, coalesced followers excluded).
func sessionSolves(m *Manager) int64 {
	st := m.Stats()
	return st.SolveCache + st.SolveWarm + st.SolveCold
}

// TestSuspendQueuesAndCoalescesReplay is the drain replay queue in
// isolation: a suspended session accepts and stages deltas in sequence
// order (no ErrStaleSeq), then Resume collapses the whole backlog into
// one covering re-solve.
func TestSuspendQueuesAndCoalescesReplay(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	m := NewManager(NewServeBackend(srv), Config{})
	defer m.Close()
	base := testSystem(t, 8, 61)
	const dev = "dev-suspended"
	sess, _, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	solvesBefore := sessionSolves(m)

	if n := m.SuspendDevices(map[string]bool{dev: true}); n != 1 {
		t.Fatalf("suspended %d sessions, want 1", n)
	}
	const backlog = 5
	type result struct {
		upd Update
		err error
	}
	results := make([]result, backlog+1)
	var wg sync.WaitGroup
	expected := append([]fl.Device(nil), base.Devices...)
	for seq := uint64(1); seq <= backlog; seq++ {
		i := int(seq) % len(expected)
		g := expected[i].Gain * (1 + 0.05*float64(seq))
		expected[i].Gain = g
		wg.Add(1)
		go func(seq uint64, i int, g float64) {
			defer wg.Done()
			upd, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: seq, Gains: map[int]float64{i: g}})
			results[seq] = result{upd, err}
		}(seq, i, g)
		waitFor(t, "suspended delta staging", func() bool { return stagedSeq(sess) >= seq })
	}
	// Nothing may solve while suspended.
	time.Sleep(30 * time.Millisecond)
	if got := sessionSolves(m) - solvesBefore; got != 0 {
		t.Fatalf("%d solves ran while suspended, want 0", got)
	}
	if got := sess.Seq(); got != 0 {
		t.Fatalf("seq advanced to %d while suspended", got)
	}

	if n := m.ResumeDevices(map[string]bool{dev: true}); n != 1 {
		t.Fatalf("resumed %d sessions, want 1", n)
	}
	wg.Wait()
	for seq := 1; seq <= backlog; seq++ {
		if results[seq].err != nil {
			t.Fatalf("suspended delta %d failed: %v", seq, results[seq].err)
		}
		if results[seq].upd.Seq != uint64(seq) {
			t.Fatalf("delta %d acked with seq %d", seq, results[seq].upd.Seq)
		}
	}
	if got := sess.Seq(); got != backlog {
		t.Fatalf("post-resume seq %d, want %d", got, backlog)
	}
	snap := sess.SystemSnapshot()
	for i := range expected {
		if snap.Devices[i].Gain != expected[i].Gain {
			t.Fatalf("device %d gain %g != expected %g", i, snap.Devices[i].Gain, expected[i].Gain)
		}
	}
	if got := sessionSolves(m) - solvesBefore; got != 1 {
		t.Fatalf("%d re-solves for the %d-delta backlog, want 1 covering solve", got, backlog)
	}
	if st := m.Stats(); st.DeltasCoalesced != backlog-1 {
		t.Fatalf("deltas_coalesced %d, want %d", st.DeltasCoalesced, backlog-1)
	}
}

// TestFailedCoveringSolveKeepsSeqContract pins the failure path of
// coalescing: two deltas stage behind a suspension, the first covering
// re-solve after resume fails (injected), and whichever queued caller
// re-solves next must cover ITS OWN sequence number even though the
// failure rolled the staging baseline back. Regression: without bumping
// pendingSeq back up, the second solver ran with a target below its seq,
// reported success without advancing the session, and the same sequence
// number was later accepted twice.
func TestFailedCoveringSolveKeepsSeqContract(t *testing.T) {
	var fail atomic.Bool
	srv := serve.New(serve.Config{
		Workers: 2,
		Solver: func(s *fl.System, w fl.Weights, o core.Options) (core.Result, error) {
			if fail.CompareAndSwap(true, false) {
				return core.Result{}, errors.New("injected solver failure")
			}
			return core.Optimize(s, w, o)
		},
	})
	defer srv.Close()
	m := NewManager(NewServeBackend(srv), Config{})
	defer m.Close()
	base := testSystem(t, 8, 63)
	const dev = "dev-failed-cover"
	sess, _, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}

	m.SuspendDevices(map[string]bool{dev: true})
	type result struct {
		upd Update
		err error
	}
	results := make([]result, 3)
	var wg sync.WaitGroup
	for seq := uint64(1); seq <= 2; seq++ {
		i := int(seq)
		g := base.Devices[i].Gain * (1 + 0.2*float64(seq))
		wg.Add(1)
		go func(seq uint64, i int, g float64) {
			defer wg.Done()
			upd, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: seq, Gains: map[int]float64{i: g}})
			results[seq] = result{upd, err}
		}(seq, i, g)
		waitFor(t, "suspended delta staging", func() bool { return stagedSeq(sess) >= seq })
	}
	fail.Store(true) // the first covering solve after resume fails
	m.ResumeDevices(map[string]bool{dev: true})
	wg.Wait()

	var okSeqs []uint64
	var failures int
	for seq := 1; seq <= 2; seq++ {
		if results[seq].err != nil {
			failures++
			continue
		}
		if results[seq].upd.Seq != uint64(seq) {
			t.Fatalf("delta %d acked with seq %d", seq, results[seq].upd.Seq)
		}
		okSeqs = append(okSeqs, uint64(seq))
	}
	if failures != 1 || len(okSeqs) != 1 {
		t.Fatalf("%d failures / %d successes, want exactly 1 each (results %+v)", failures, len(okSeqs), results[1:])
	}
	// The session advanced exactly to the succeeded caller's seq...
	if got := sess.Seq(); got != okSeqs[0] {
		t.Fatalf("session seq %d after partial failure, want %d (the acked delta's number)", got, okSeqs[0])
	}
	// ...and that number can never be accepted again.
	if _, err := m.Apply(context.Background(), sess.ID(),
		Delta{Seq: okSeqs[0], Gains: map[int]float64{0: base.Devices[0].Gain * 3}}); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("re-applying acked seq %d: err = %v, want ErrStaleSeq", okSeqs[0], err)
	}
	// The authoritative state kept both staged gains (the failed delta is
	// absorbed by the next covering solve, never rolled back).
	snap := sess.SystemSnapshot()
	for seq := 1; seq <= 2; seq++ {
		want := base.Devices[seq].Gain * (1 + 0.2*float64(seq))
		if snap.Devices[seq].Gain != want {
			t.Fatalf("device %d gain %g != staged %g", seq, snap.Devices[seq].Gain, want)
		}
	}
}

// TestQueuedDeltaHonorsContext: a delta parked behind a suspension must
// return when its context expires instead of blocking until resume, and
// the sequence baseline must roll back so the client can retry the same
// number.
func TestQueuedDeltaHonorsContext(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	m := NewManager(NewServeBackend(srv), Config{})
	defer m.Close()
	base := testSystem(t, 8, 64)
	const dev = "dev-ctx"
	sess, _, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}

	m.SuspendDevices(map[string]bool{dev: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	began := time.Now()
	_, err = m.Apply(ctx, sess.ID(), Delta{Seq: 1, Gains: map[int]float64{0: base.Devices[0].Gain * 1.5}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("suspended delta err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(began); waited > 3*time.Second {
		t.Fatalf("cancelled delta blocked %v (until resume?)", waited)
	}
	m.ResumeDevices(map[string]bool{dev: true})
	// The rolled-back number is accepted on retry and re-solves normally.
	upd, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Gains: map[int]float64{0: base.Devices[0].Gain * 1.5}})
	if err != nil {
		t.Fatalf("retry after ctx abort: %v", err)
	}
	if upd.Seq != 1 || sess.Seq() != 1 {
		t.Fatalf("retry acked seq %d, session seq %d, want 1/1", upd.Seq, sess.Seq())
	}
}

// TestSuspendWaitsForInFlightSolve: SuspendDevices must not return while a
// re-solve for the session is still running — the caller is about to
// migrate backend state and needs quiescence.
func TestSuspendWaitsForInFlightSolve(t *testing.T) {
	m := slowManager(t, 120*time.Millisecond)
	base := testSystem(t, 8, 62)
	const dev = "dev-quiesce"
	sess, _, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		defer close(done)
		if _, err := m.Apply(context.Background(), sess.ID(), Delta{Seq: 1, Gains: map[int]float64{0: base.Devices[0].Gain * 1.5}}); err != nil {
			t.Errorf("in-flight delta: %v", err)
		}
	}()
	<-started
	waitFor(t, "solve to start", func() bool {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		return sess.solving
	})
	m.SuspendDevices(map[string]bool{dev: true})
	// Quiescent on return: the solve completed (the session may not have
	// been unlocked into the caller yet, but the backend is done).
	sess.mu.Lock()
	stillSolving := sess.solving
	sess.mu.Unlock()
	if stillSolving {
		t.Fatal("SuspendDevices returned with a solve in flight")
	}
	m.ResumeDevices(map[string]bool{dev: true})
	<-done
}
