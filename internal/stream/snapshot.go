package stream

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/serve"
)

// This file is the session half of the durable-state story: a Manager can
// export every open session to a serializable form and a restarted
// process can restore them under the SAME IDs and sequence baselines, so
// a client that was at seq N before the restart continues at N+1 without
// ever seeing ErrStaleSeq.

// SessionSnapshot is one open session's serializable state: everything
// needed to recreate it after a restart. The snapshot is taken at the
// session's last SOLVED sequence number — deltas applied but not yet
// covered by a solve are not staged into the snapshot (their gains are
// absolute values; the client retries them idempotently).
type SessionSnapshot struct {
	ID       string           `json:"id"`
	DeviceID string           `json:"device_id,omitempty"`
	System   *fl.System       `json:"system"`
	Weights  fl.Weights       `json:"weights"`
	Options  core.Options     `json:"options"`
	Solver   serve.SolverName `json:"solver,omitempty"`
	Seq      uint64           `json:"seq"`
	Deltas   int64            `json:"deltas"`
}

// ExportSessions snapshots every open session. Each session is captured
// under its own lock at a consistent point: the authoritative system as
// of the last applied delta, with the sequence baseline at the last
// SOLVED seq — a restore therefore re-admits any delta numbers that were
// applied but never solved, which is exactly the retry contract a failed
// solve already gives clients.
func (m *Manager) ExportSessions() []SessionSnapshot {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	out := make([]SessionSnapshot, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			continue
		}
		snap := SessionSnapshot{
			ID:       s.id,
			DeviceID: s.deviceID,
			System:   cloneSystem(s.sys),
			Weights:  s.weights,
			Options:  s.opts,
			Solver:   s.solver,
			Seq:      s.seq,
			Deltas:   s.deltas,
		}
		s.mu.Unlock()
		// Seeds and workspaces are the serving layer's job, and never
		// serializable anyway.
		snap.Options.Start, snap.Options.DualStart, snap.Options.Work, snap.Options.Trace = nil, nil, nil, nil
		out = append(out, snap)
	}
	return out
}

// RestoreSessions recreates sessions from snapshots under their original
// IDs. No opening solve runs — the restored cluster's caches are seeded
// separately (by the snapshot's server state) and the first delta after
// the restart re-solves through the normal path. The topology hash is
// deliberately NOT restored: the first delta re-fingerprints the full
// request once, then incremental hashing resumes. Snapshots whose ID is
// already open are skipped (restore into a live manager must not clobber
// newer state); the returned count is how many sessions were actually
// restored. Restores beyond MaxSessions are dropped.
func (m *Manager) RestoreSessions(snaps []SessionSnapshot) int {
	n := 0
	for _, snap := range snaps {
		if snap.ID == "" || snap.System == nil {
			continue
		}
		s := &Session{
			id:       snap.ID,
			deviceID: snap.DeviceID,
			sys:      cloneSystem(snap.System),
			weights:  snap.Weights,
			opts:     snap.Options,
			solver:   snap.Solver,
			seq:      snap.Seq,
			// Validation advances on pendingSeq: restoring it to the solved
			// baseline re-admits exactly the numbers a failed solve would.
			pendingSeq: snap.Seq,
			deltas:     snap.Deltas,
		}
		s.cond = sync.NewCond(&s.mu)
		s.opts.Start, s.opts.DualStart, s.opts.Work, s.opts.Trace = nil, nil, nil, nil
		s.touch()
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return n
		}
		if _, exists := m.sessions[snap.ID]; exists || len(m.sessions)+m.pending >= m.cfg.MaxSessions {
			m.mu.Unlock()
			continue
		}
		m.sessions[snap.ID] = s
		m.mu.Unlock()
		m.stats.sessionsRestored.Add(1)
		n++
	}
	return n
}
