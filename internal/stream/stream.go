// Package stream is the streaming gain-update subsystem: a session-oriented
// delta layer over the allocation service (internal/serve) and the
// multi-cell cluster (internal/cluster).
//
// The paper's allocation problem is re-solved whenever device channel gains
// drift. The plain serving path forces clients to re-POST the entire system
// even when only a few gains changed, re-paying JSON decode, full
// fingerprinting and a cold solve for what is a tiny perturbation of an
// instance the server has already solved. A stream session fixes that:
//
//   - the client opens a session with one full system; the server pins the
//     authoritative state server-side and answers with a session ID;
//   - each subsequent delta message carries only the sparse per-device gain
//     changes (plus optional weight/deadline updates) and a strictly
//     increasing sequence number;
//   - the session applies the delta to its pinned system in place,
//     re-fingerprints incrementally (gains-only deltas reuse the cached
//     topology-bucket hash and re-hash just the gains), and re-solves
//     through the backend — where the topology bucket's warm-start
//     allocation and Subproblem 2 dual state (Options.DualStart) let the
//     drifted re-solve skip its Newton iterations entirely;
//   - every update is answered with the new allocation plus solve metadata:
//     the path taken (cache/warm/cold), whether the dual seed was consumed,
//     Newton iteration count and latency.
//
// Sessions are bounded (max sessions, idle TTL) and survive cross-cell
// handoff: session state lives above the cells, deltas route by device ID
// (following the handoff pin), and the existing cluster Handoff machinery
// migrates the cached warm allocation and dual state, so the first
// post-move re-solve is still warm and dual-seeded.
package stream

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/obs"
	"repro/internal/serve"
)

// ErrStaleSeq rejects a delta whose sequence number does not advance the
// session: regressions and replays must fail loudly, or a reordered client
// stream would silently rewind the authoritative gains.
var ErrStaleSeq = errors.New("stream: stale delta sequence number")

// ErrBadDelta rejects a malformed delta (empty, out-of-range device index,
// non-positive or non-finite value, weight/deadline update that the
// session's mode cannot consume). The session state is left untouched.
var ErrBadDelta = errors.New("stream: bad delta")

// ErrNoSession flags an unknown, closed or expired session ID.
var ErrNoSession = errors.New("stream: unknown session")

// ErrSessionLimit rejects an open when the session table is full.
var ErrSessionLimit = errors.New("stream: too many sessions")

// ErrClosed is returned for requests arriving after the manager closed.
var ErrClosed = errors.New("stream: manager closed")

// Config parameterizes a Manager. The zero value is usable.
type Config struct {
	// MaxSessions bounds the number of concurrently open sessions; opens
	// beyond it fail with ErrSessionLimit. Default 1024.
	MaxSessions int
	// IdleTTL expires sessions that have not applied a delta (or been
	// opened) for this long. Zero selects the 5-minute default; negative
	// disables expiry.
	IdleTTL time.Duration
	// SweepInterval is how often the background sweeper scans for expired
	// sessions (expiry is also checked lazily on access). Default 30s,
	// clamped to IdleTTL when that is shorter.
	SweepInterval time.Duration
	// Trace, when non-nil, gives each NDJSON delta its own lifecycle
	// trace: the HTTP middleware deliberately skips the long-lived delta
	// stream (one connection-spanning trace would be meaningless), so the
	// manager starts a per-delta trace here instead. Per-delta trace IDs
	// surface in the update lines' trace_id field. Nil disables.
	Trace *obs.Collector
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 5 * time.Minute
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 30 * time.Second
	}
	if c.IdleTTL > 0 && c.SweepInterval > c.IdleTTL {
		c.SweepInterval = c.IdleTTL
	}
	return c
}

// Delta is one sparse update to a session's authoritative system. Gains
// carries absolute replacement values (not multipliers), so re-applying a
// delta after a failed solve is idempotent.
type Delta struct {
	// Seq is the client's sequence number; it must exceed the session's
	// last applied one (gaps are allowed — clients may coalesce).
	Seq uint64
	// Gains maps device index to the device's new channel gain.
	Gains map[int]float64
	// Weights, when non-nil, replaces the objective weight pair.
	Weights *fl.Weights
	// TotalDeadline, when non-nil, replaces the deadline-mode total
	// completion time (seconds). Rejected for weighted-mode sessions.
	TotalDeadline *float64
}

// Update is the outcome of one applied delta (or of the session-opening
// solve, with Seq 0).
type Update struct {
	// SessionID identifies the session the update belongs to.
	SessionID string
	// Seq echoes the applied delta's sequence number.
	Seq uint64
	// Cell is the cell that served the re-solve (0 on a single server).
	Cell int
	// Response is the serving-layer outcome: allocation, metrics, source
	// (cache/warm/cold), dual-seed flag, fingerprint and solve time.
	Response serve.Response
	// Elapsed is the wall time of the whole apply (validation, in-place
	// application, fingerprint, queueing and solve).
	Elapsed time.Duration
}

// Session pins one client's authoritative system state server-side. All
// methods are safe for concurrent use; deltas validate and apply to the
// authoritative state strictly in sequence order, while their re-solves
// coalesce: when several deltas queue behind a slow solve (or behind a
// drain suspension), the state absorbs all of them and ONE re-solve of the
// latest state answers them all.
type Session struct {
	id       string
	deviceID string

	mu      sync.Mutex
	cond    *sync.Cond // signals solve completion, resume and close
	sys     *fl.System // authoritative; mutated in place by deltas
	weights fl.Weights
	opts    core.Options
	solver  serve.SolverName
	// seq is the last sequence number covered by a successful re-solve;
	// pendingSeq is the last one applied to sys (>= seq — the gap is the
	// backlog a coalesced solve will cover). Validation advances on
	// pendingSeq; a failed solve rolls pendingSeq back to seq so the
	// client may retry the same number (gains are absolute, so
	// re-application is idempotent).
	seq        uint64
	pendingSeq uint64
	solving    bool   // a re-solve for this session is in flight
	suspended  bool   // drain in progress: deltas apply and queue, no solves
	topo       uint64 // cached topology-bucket hash
	hasTopo    bool
	topoDirty  bool   // weights/deadline changed since topo was computed
	lastUpd    Update // outcome of the last successful re-solve
	deltas     int64
	closed     bool

	lastUsed atomic.Int64 // unix nanoseconds
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// DeviceID returns the device the session routes as.
func (s *Session) DeviceID() string { return s.deviceID }

// Seq returns the last applied sequence number (0 before the first delta).
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Deltas returns how many deltas the session has applied.
func (s *Session) Deltas() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltas
}

// SystemSnapshot returns a private copy of the session's current
// authoritative system.
func (s *Session) SystemSnapshot() *fl.System {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cloneSystem(s.sys)
}

func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// markClosed flags the session closed and wakes every queued delta so no
// goroutine stays parked on a session that will never solve again.
func (s *Session) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Session) idle(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastUsed.Load()))
}

// cloneSystem copies a system deeply enough for independent mutation: the
// device slice is the only reference field.
func cloneSystem(s *fl.System) *fl.System {
	out := *s
	out.Devices = append([]fl.Device(nil), s.Devices...)
	return &out
}

// Manager owns the session table over one backend. It does not own the
// backend: closing the manager leaves the underlying server/router running.
type Manager struct {
	cfg Config
	be  Backend

	mu       sync.Mutex
	sessions map[string]*Session
	pending  int // opens holding a slot while their first solve runs
	closed   bool

	stats     Stats
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewManager builds a session manager over the backend and starts its
// expiry sweeper. Call Close to stop it.
func NewManager(be Backend, cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		be:       be,
		sessions: make(map[string]*Session),
		done:     make(chan struct{}),
	}
	if m.cfg.IdleTTL > 0 {
		m.wg.Add(1)
		go m.sweeper()
	}
	return m
}

// Close stops the sweeper and closes every session. Safe to call more than
// once. The backend is left running (the caller owns it).
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		m.mu.Lock()
		m.closed = true
		sessions := m.sessions
		m.sessions = make(map[string]*Session)
		m.mu.Unlock()
		close(m.done)
		for _, s := range sessions {
			s.markClosed()
		}
	})
	m.wg.Wait()
}

// Len returns the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Snapshot {
	snap := m.stats.snapshot()
	m.mu.Lock()
	snap.ActiveSessions = len(m.sessions)
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		if s.suspended {
			snap.SuspendedSessions++
		}
		s.mu.Unlock()
	}
	return snap
}

// sweeper evicts idle sessions in the background so an abandoned client
// cannot hold its slot (and its pinned system) until the next access.
func (m *Manager) sweeper() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			m.mu.Lock()
			for id, s := range m.sessions {
				if s.idle(now) > m.cfg.IdleTTL {
					delete(m.sessions, id)
					m.stats.sessionsExpired.Add(1)
					s.markClosed()
				}
			}
			m.mu.Unlock()
		case <-m.done:
			return
		}
	}
}

// newSessionID draws a random 64-bit hex identifier.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("stream: drawing session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Open creates a session from a full solve request, running the opening
// solve through the backend (routed by deviceID on a cluster). The request's
// system is copied — the caller keeps ownership of its own — and any
// caller-provided Start/DualStart/Work/Fingerprint are dropped: seeds are
// the serving layer's job. On solver or validation failure no session is
// created. The returned Update carries Seq 0.
func (m *Manager) Open(ctx context.Context, deviceID string, req serve.Request) (*Session, Update, error) {
	if req.System == nil {
		return nil, Update{}, fmt.Errorf("nil system: %w", serve.ErrBadRequest)
	}
	// Reserve a slot before the (slow) opening solve so a stampede of opens
	// cannot overshoot MaxSessions while their first solves are in flight.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, Update{}, ErrClosed
	}
	if len(m.sessions)+m.pending >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.stats.sessionsRejected.Add(1)
		return nil, Update{}, fmt.Errorf("%d sessions open: %w", m.cfg.MaxSessions, ErrSessionLimit)
	}
	m.pending++
	m.mu.Unlock()
	release := func() {
		m.mu.Lock()
		m.pending--
		m.mu.Unlock()
	}

	id, err := newSessionID()
	if err != nil {
		release()
		return nil, Update{}, err
	}
	s := &Session{
		id:       id,
		deviceID: deviceID,
		sys:      cloneSystem(req.System),
		weights:  req.Weights,
		opts:     req.Options,
		solver:   req.Solver,
	}
	s.cond = sync.NewCond(&s.mu)
	s.opts.Start, s.opts.DualStart, s.opts.Work = nil, nil, nil
	s.touch()

	began := time.Now()
	// The opening solve gets a snapshot, not the live authoritative state:
	// the backend retains served systems (the cluster's handoff history
	// re-fingerprints them later), and future deltas mutate s.sys in place.
	resp, cell, err := m.be.Solve(ctx, deviceID, serve.Request{
		System:  cloneSystem(s.sys),
		Weights: s.weights,
		Options: s.opts,
		Solver:  s.solver,
	})
	if err != nil {
		release()
		return nil, Update{}, err
	}
	s.topo, s.hasTopo = resp.Fingerprint.Topo, true

	m.mu.Lock()
	m.pending--
	if m.closed {
		m.mu.Unlock()
		return nil, Update{}, ErrClosed
	}
	m.sessions[id] = s
	m.mu.Unlock()
	m.stats.sessionsOpened.Add(1)
	m.stats.countSolve(resp)
	return s, Update{SessionID: id, Seq: 0, Cell: cell, Response: resp, Elapsed: time.Since(began)}, nil
}

// lookup resolves a session ID, lazily expiring idle sessions.
func (m *Manager) lookup(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("session %q: %w", id, ErrNoSession)
	}
	if m.cfg.IdleTTL > 0 && s.idle(time.Now()) > m.cfg.IdleTTL {
		delete(m.sessions, id)
		m.stats.sessionsExpired.Add(1)
		s.markClosed()
		return nil, fmt.Errorf("session %q expired: %w", id, ErrNoSession)
	}
	return s, nil
}

// Apply validates and applies one delta to the session, then re-solves the
// updated system through the backend. Validation is all-or-nothing: a
// rejected delta (ErrStaleSeq, ErrBadDelta) leaves the session untouched.
// A delta that applies but whose solve fails keeps the applied state and
// does NOT advance the sequence number, so the client may retry the same
// delta (gains are absolute values; re-application is idempotent).
//
// Re-solves coalesce under backlog: a delta arriving while the session's
// previous re-solve is still in flight (or while a drain has the session
// suspended) applies to the authoritative state immediately and queues.
// When the in-flight solve lands, ONE re-solve of the latest state covers
// the whole queue — every queued caller gets that solve's outcome (tagged
// with its own sequence number), and the skipped per-delta solves are
// counted as coalesced in the stream stats. Order is preserved by
// construction: deltas apply in strictly increasing sequence order, and a
// covering solve always sees the newest state.
func (m *Manager) Apply(ctx context.Context, sessionID string, d Delta) (Update, error) {
	s, err := m.lookup(sessionID)
	if err != nil {
		m.stats.deltaErrors.Add(1)
		return Update{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		m.stats.deltaErrors.Add(1)
		return Update{}, fmt.Errorf("session %q: %w", sessionID, ErrNoSession)
	}
	s.touch()
	if err := s.validate(d); err != nil {
		m.stats.deltaErrors.Add(1)
		return Update{}, err
	}

	tr := obs.FromContext(ctx)
	began := time.Now()
	// Apply in place. Only a weight/deadline change moves the instance to a
	// different topology bucket; gains-only deltas keep the cached hash.
	for i, g := range d.Gains {
		s.sys.Devices[i].Gain = g
	}
	if d.Weights != nil {
		s.weights = *d.Weights
		s.topoDirty = true
	}
	if d.TotalDeadline != nil {
		s.opts.TotalDeadline = *d.TotalDeadline
		s.topoDirty = true
	}
	s.pendingSeq = d.Seq

	// Queue while a re-solve is in flight or the session is suspended for a
	// drain; the wait ends when the solve lands, the drain resumes, the
	// session closes, or the caller's context expires (the AfterFunc
	// broadcast is what turns a ctx cancellation into a wake-up — a cond
	// cannot select on a channel).
	stopCtxWake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stopCtxWake()
	waitCause := ""
	if s.suspended {
		waitCause = "suspended"
	} else if s.solving {
		waitCause = "solve in flight"
	}
	waitBegan := time.Now()
	for (s.solving || s.suspended) && s.seq < d.Seq && !s.closed && ctx.Err() == nil {
		s.cond.Wait()
	}
	if waitCause != "" {
		tr.RecordAttr(obs.PhaseCoalesceWait, waitBegan, obs.Attr{Detail: waitCause, Value: int64(d.Seq)})
	}
	switch {
	case s.closed:
		m.stats.deltaErrors.Add(1)
		return Update{}, fmt.Errorf("session %q: %w", sessionID, ErrNoSession)
	case s.seq < d.Seq && ctx.Err() != nil:
		// Abandoned wait: the delta stays applied to the authoritative
		// state (a later covering solve absorbs it), but the sequence
		// baseline rolls back like a failed solve so the client may retry
		// the same number — unless later deltas already staged past it.
		if s.pendingSeq == d.Seq {
			s.pendingSeq = s.seq
		}
		m.stats.deltaErrors.Add(1)
		return Update{}, ctx.Err()
	case s.seq >= d.Seq:
		// Coalesced: a covering re-solve (of this seq or a later one) ran
		// while this delta was queued. Hand its outcome back, privately
		// cloned — Result is documented caller-mutable.
		m.stats.deltasCoalesced.Add(1)
		m.stats.deltas.Add(1)
		s.deltas++
		upd := s.lastUpd
		upd.Seq = d.Seq
		upd.Response = upd.Response.Clone()
		upd.Elapsed = time.Since(began)
		tr.RecordAttr(obs.PhaseDeltaApply, began, obs.Attr{Cell: upd.Cell, Detail: "coalesced", Value: int64(d.Seq)})
		return upd, nil
	}

	// Become the solver for everything staged so far. A failed solve may
	// have rolled pendingSeq below this delta's seq while it sat queued;
	// its gains are still applied (absolute values, idempotent), so the
	// covering solve must advance at least to it or a success would be
	// reported without moving the sequence, re-admitting the number later.
	if s.pendingSeq < d.Seq {
		s.pendingSeq = d.Seq
	}
	target := s.pendingSeq
	s.solving = true
	// The backend keeps references to served systems (the cluster's handoff
	// history re-fingerprints them later), so each solve gets an immutable
	// snapshot rather than the live, in-place-mutated authoritative state.
	req := serve.Request{
		System:  cloneSystem(s.sys),
		Weights: s.weights,
		Options: s.opts,
		Solver:  s.solver,
	}
	var fp serve.Fingerprint
	if s.hasTopo && !s.topoDirty {
		fp = serve.FingerprintGains(s.topo, req.System, m.be.Quantization())
	} else {
		fp = serve.FingerprintRequest(req, m.be.Quantization())
	}
	s.topo, s.hasTopo, s.topoDirty = fp.Topo, true, false
	req.Fingerprint = &fp

	s.mu.Unlock()
	resp, cell, err := m.be.Solve(ctx, s.deviceID, req)
	s.mu.Lock()
	s.solving = false
	s.cond.Broadcast()
	if err != nil {
		// Roll the validation baseline back to the last solved seq so the
		// client may retry the failed delta under the same number — unless
		// later deltas already staged beyond the failed target (their
		// staging stands; one of their callers re-solves next).
		if s.pendingSeq == target {
			s.pendingSeq = s.seq
		}
		m.stats.deltaErrors.Add(1)
		tr.RecordAttr(obs.PhaseDeltaApply, began, obs.Attr{Detail: "error: " + err.Error(), Value: int64(d.Seq)})
		return Update{}, err
	}
	if target > s.seq {
		s.seq = target
	}
	s.deltas++
	m.stats.deltas.Add(1)
	m.stats.countSolve(resp)
	s.lastUpd = Update{
		SessionID: sessionID,
		Seq:       target,
		Cell:      cell,
		Response:  resp,
		Elapsed:   time.Since(began),
	}
	upd := s.lastUpd
	upd.Seq = d.Seq
	upd.Response = upd.Response.Clone()
	upd.Elapsed = time.Since(began)
	tr.RecordAttr(obs.PhaseDeltaApply, began, obs.Attr{Cell: cell, Detail: "solved", Value: int64(target)})
	return upd, nil
}

// validate checks a delta against the session without mutating anything;
// the caller holds s.mu.
func (s *Session) validate(d Delta) error {
	if d.Seq <= s.pendingSeq {
		return fmt.Errorf("seq %d does not advance last applied %d: %w", d.Seq, s.pendingSeq, ErrStaleSeq)
	}
	if len(d.Gains) == 0 && d.Weights == nil && d.TotalDeadline == nil {
		return fmt.Errorf("empty delta: %w", ErrBadDelta)
	}
	n := s.sys.N()
	for i, g := range d.Gains {
		if i < 0 || i >= n {
			return fmt.Errorf("device index %d out of range [0,%d): %w", i, n, ErrBadDelta)
		}
		if !(g > 0) || math.IsInf(g, 0) {
			return fmt.Errorf("device %d gain %g must be positive and finite: %w", i, g, ErrBadDelta)
		}
	}
	if d.Weights != nil {
		if err := d.Weights.Check(); err != nil {
			return fmt.Errorf("%v: %w", err, ErrBadDelta)
		}
	}
	if d.TotalDeadline != nil {
		if s.opts.Mode != core.ModeDeadline {
			return fmt.Errorf("total deadline update on a weighted-mode session: %w", ErrBadDelta)
		}
		if !(*d.TotalDeadline > 0) || math.IsInf(*d.TotalDeadline, 0) {
			return fmt.Errorf("total deadline %g must be positive and finite: %w", *d.TotalDeadline, ErrBadDelta)
		}
	}
	return nil
}

// SessionDevices returns the device ID of every open session (duplicates
// collapsed, sessions without a device skipped). Control planes use it to
// find the sessions a membership change is about to move.
func (m *Manager) SessionDevices() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[string]bool, len(m.sessions))
	var devs []string
	for _, s := range m.sessions {
		if s.deviceID == "" || seen[s.deviceID] {
			continue
		}
		seen[s.deviceID] = true
		devs = append(devs, s.deviceID)
	}
	return devs
}

// SuspendDevices pauses the re-solve path of every open session owned by
// one of the given devices, and returns how many sessions it suspended.
// While suspended, deltas keep validating and applying to the
// authoritative state in sequence order — so a drain never surfaces
// ErrStaleSeq to a client — but they queue instead of solving.
// SuspendDevices blocks until no suspended session has a solve in flight,
// so on return the backend state of those devices is quiescent and safe to
// migrate. Pair with ResumeDevices.
func (m *Manager) SuspendDevices(devices map[string]bool) int {
	n := 0
	for _, s := range m.byDevices(devices) {
		s.mu.Lock()
		if !s.closed {
			s.suspended = true
			n++
			for s.solving {
				s.cond.Wait()
			}
		}
		s.mu.Unlock()
	}
	return n
}

// ResumeDevices lifts a SuspendDevices suspension: every queued delta
// wakes, the backlog coalesces, and one re-solve of the latest state (on
// the post-migration cell, reached through the usual device routing)
// answers the whole queue. Returns how many sessions it resumed.
func (m *Manager) ResumeDevices(devices map[string]bool) int {
	n := 0
	for _, s := range m.byDevices(devices) {
		s.mu.Lock()
		if s.suspended {
			s.suspended = false
			n++
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
	return n
}

// byDevices snapshots the open sessions owned by the given devices.
func (m *Manager) byDevices(devices map[string]bool) []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Session
	for _, s := range m.sessions {
		if devices[s.deviceID] {
			out = append(out, s)
		}
	}
	return out
}

// CloseSummary reports a closed session's final state.
type CloseSummary struct {
	SessionID string `json:"session_id"`
	// LastSeq is the last applied sequence number.
	LastSeq uint64 `json:"last_seq"`
	// Deltas is how many deltas the session applied.
	Deltas int64 `json:"deltas_applied"`
}

// CloseSession removes a session, returning its final counters.
func (m *Manager) CloseSession(id string) (CloseSummary, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return CloseSummary{}, ErrClosed
	}
	if !ok {
		return CloseSummary{}, fmt.Errorf("session %q: %w", id, ErrNoSession)
	}
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	sum := CloseSummary{SessionID: id, LastSeq: s.seq, Deltas: s.deltas}
	s.mu.Unlock()
	m.stats.sessionsClosed.Add(1)
	return sum, nil
}
