package stream

import (
	"sync/atomic"

	"repro/internal/serve"
)

// Stats aggregates the streaming layer's counters; all fields are updated
// atomically on the delta path.
type Stats struct {
	sessionsOpened   atomic.Int64
	sessionsClosed   atomic.Int64
	sessionsExpired  atomic.Int64
	sessionsRejected atomic.Int64
	sessionsRestored atomic.Int64
	deltas           atomic.Int64
	deltasCoalesced  atomic.Int64
	deltaErrors      atomic.Int64
	solveCache       atomic.Int64
	solveWarm        atomic.Int64
	solveCold        atomic.Int64
	solveDualSeeded  atomic.Int64
}

// countSolve attributes one session solve (opening solve or delta re-solve)
// to its serving path.
func (st *Stats) countSolve(resp serve.Response) {
	switch resp.Source {
	case serve.SourceCache:
		st.solveCache.Add(1)
	case serve.SourceWarm:
		st.solveWarm.Add(1)
	default:
		st.solveCold.Add(1)
	}
	if resp.DualSeeded {
		st.solveDualSeeded.Add(1)
	}
}

// Snapshot is a point-in-time copy of the streaming counters, shaped for
// the "stream" section of GET /v1/stats.
type Snapshot struct {
	// ActiveSessions is the current session-table occupancy.
	ActiveSessions int `json:"active_sessions"`
	// SuspendedSessions is how many of them are currently suspended by a
	// drain or migration (SuspendDevices without a matching resume yet) —
	// the live signal the ops dashboard shows during a drain arc.
	SuspendedSessions int `json:"suspended_sessions"`
	// SessionsOpened/Closed/Expired/Rejected count session lifecycle
	// events (Rejected are opens refused at MaxSessions).
	SessionsOpened   int64 `json:"sessions_opened"`
	SessionsClosed   int64 `json:"sessions_closed"`
	SessionsExpired  int64 `json:"sessions_expired"`
	SessionsRejected int64 `json:"sessions_rejected"`
	// SessionsRestored counts sessions recreated from a snapshot at boot.
	SessionsRestored int64 `json:"sessions_restored"`
	// Deltas counts applied deltas; DeltasCoalesced counts the subset that
	// queued behind a slow solve (or a drain suspension) and were answered
	// by a covering re-solve of a later state instead of a solve of their
	// own; DeltaErrors counts rejected or failed ones (stale seq, bad
	// delta, unknown session, solver error).
	Deltas          int64 `json:"deltas_applied"`
	DeltasCoalesced int64 `json:"deltas_coalesced"`
	DeltaErrors     int64 `json:"delta_errors"`
	// SolveCache/Warm/Cold split session solves (open + delta) by serving
	// path; SolveDualSeeded counts the warm solves that also consumed the
	// cached Subproblem 2 dual state.
	SolveCache      int64 `json:"solve_cache_hits"`
	SolveWarm       int64 `json:"solve_warm_starts"`
	SolveCold       int64 `json:"solve_cold_solves"`
	SolveDualSeeded int64 `json:"solve_dual_seeded"`
}

func (st *Stats) snapshot() Snapshot {
	return Snapshot{
		SessionsOpened:   st.sessionsOpened.Load(),
		SessionsClosed:   st.sessionsClosed.Load(),
		SessionsExpired:  st.sessionsExpired.Load(),
		SessionsRejected: st.sessionsRejected.Load(),
		SessionsRestored: st.sessionsRestored.Load(),
		Deltas:           st.deltas.Load(),
		DeltasCoalesced:  st.deltasCoalesced.Load(),
		DeltaErrors:      st.deltaErrors.Load(),
		SolveCache:       st.solveCache.Load(),
		SolveWarm:        st.solveWarm.Load(),
		SolveCold:        st.solveCold.Load(),
		SolveDualSeeded:  st.solveDualSeeded.Load(),
	}
}

// WritePrometheus emits the streaming counters under the given prefix
// (e.g. "flstream") and raw label list (without braces; empty for none).
func (s Snapshot) WritePrometheus(p *serve.PromWriter, prefix, labels string) {
	counters := []struct {
		name, help string
		v          int64
	}{
		{"sessions_opened_total", "Stream sessions opened.", s.SessionsOpened},
		{"sessions_closed_total", "Stream sessions closed by the client.", s.SessionsClosed},
		{"sessions_expired_total", "Stream sessions evicted at the idle TTL.", s.SessionsExpired},
		{"sessions_rejected_total", "Stream opens refused at the session limit.", s.SessionsRejected},
		{"sessions_restored_total", "Stream sessions recreated from a snapshot at boot.", s.SessionsRestored},
		{"deltas_total", "Gain deltas applied across all sessions.", s.Deltas},
		{"deltas_coalesced_total", "Deltas answered by a covering coalesced re-solve instead of their own.", s.DeltasCoalesced},
		{"delta_errors_total", "Deltas rejected (stale seq, bad delta, unknown session) or failed in the solver.", s.DeltaErrors},
	}
	for _, c := range counters {
		p.Counter(prefix+"_"+c.name, c.help, labels, float64(c.v))
	}
	for _, sv := range []struct {
		source string
		v      int64
	}{{"cache", s.SolveCache}, {"warm", s.SolveWarm}, {"cold", s.SolveCold}} {
		sl := `source="` + sv.source + `"`
		if labels != "" {
			sl = labels + "," + sl
		}
		p.Counter(prefix+"_solves_total", "Session solves by serving path.", sl, float64(sv.v))
	}
	p.Counter(prefix+"_dual_seeded_total", "Session solves that consumed the cached SP2 dual state.", labels, float64(s.SolveDualSeeded))
	p.Gauge(prefix+"_active_sessions", "Currently open stream sessions.", labels, float64(s.ActiveSessions))
	p.Gauge(prefix+"_suspended_sessions", "Sessions currently suspended by a drain or migration.", labels, float64(s.SuspendedSessions))
}
