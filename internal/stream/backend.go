package stream

import (
	"context"
	"io"
	"net/http"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// Backend abstracts what a session manager re-solves against: a single
// allocation server or a multi-cell cluster router. Both expose the same
// wire API underneath, so the streaming layer mounts uniformly on top of
// either front end.
type Backend interface {
	// Solve answers one request, routed by deviceID where the backend
	// shards (a single server ignores it). The int names the serving cell
	// (always 0 on a single server).
	Solve(ctx context.Context, deviceID string, req serve.Request) (serve.Response, int, error)
	// Quantization is the fingerprint quantization sessions precompute
	// incremental fingerprints under; it must match what Solve buckets
	// with.
	Quantization() serve.Quantization
	// StatsPayload returns the backend's JSON stats snapshot, embedded
	// verbatim into the combined GET /v1/stats body.
	StatsPayload() any
	// WriteMetrics writes the backend's Prometheus text exposition; the
	// streaming layer appends its own series after it.
	WriteMetrics(w io.Writer)
	// Handler is the backend's base HTTP API; the streaming handler
	// delegates every non-streaming route to it.
	Handler() http.Handler
}

// serveBackend adapts a single serve.Server.
type serveBackend struct{ s *serve.Server }

// NewServeBackend wraps a single allocation server as a session backend.
func NewServeBackend(s *serve.Server) Backend { return serveBackend{s: s} }

func (b serveBackend) Solve(ctx context.Context, _ string, req serve.Request) (serve.Response, int, error) {
	resp, err := b.s.Solve(ctx, req)
	return resp, 0, err
}

func (b serveBackend) Quantization() serve.Quantization { return b.s.Quantization() }
func (b serveBackend) StatsPayload() any                { return b.s.Stats() }
func (b serveBackend) Handler() http.Handler            { return b.s.Handler() }

func (b serveBackend) WriteMetrics(w io.Writer) {
	pw := serve.NewPromWriter(w)
	b.s.Stats().WritePrometheus(pw, "flserve", "")
}

// clusterBackend adapts a multi-cell cluster.Router; session solves are
// device-routed (pin, else consistent hash), so a session follows its
// device across handoffs.
type clusterBackend struct{ r *cluster.Router }

// NewClusterBackend wraps a cluster router as a session backend.
func NewClusterBackend(r *cluster.Router) Backend { return clusterBackend{r: r} }

func (b clusterBackend) Solve(ctx context.Context, deviceID string, req serve.Request) (serve.Response, int, error) {
	return b.r.Solve(ctx, cluster.CellAuto, deviceID, req)
}

func (b clusterBackend) Quantization() serve.Quantization { return b.r.Quantization() }
func (b clusterBackend) StatsPayload() any                { return b.r.Stats() }
func (b clusterBackend) Handler() http.Handler            { return b.r.Handler() }

func (b clusterBackend) WriteMetrics(w io.Writer) {
	_ = b.r.Stats().WritePrometheus(w)
}
