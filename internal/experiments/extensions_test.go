package experiments

import "testing"

func TestExtAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension regeneration is slow")
	}
	eFig, tFig, err := ExtA(RunConfig{Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(eFig.Series) != 3 || len(tFig.Series) != 3 {
		t.Fatalf("series %d/%d", len(eFig.Series), len(tFig.Series))
	}
	// Delay grows with spread for the time-weighted series (the max-shaped
	// round time is driven by the largest D_n).
	for _, s := range tFig.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("series %s: delay should grow with spread: %v", s.Label, s.Y)
		}
	}
}

func TestExtBShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension regeneration is slow")
	}
	fig, err := ExtB(RunConfig{Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prop, simp := fig.Series[0], fig.Series[1]
	for i := range prop.Y {
		if prop.Y[i] > simp.Y[i]*(1+1e-9) {
			t.Errorf("radius %g: exact-Shannon allocation %g worse than simplified %g",
				prop.X[i], prop.Y[i], simp.Y[i])
		}
	}
	// The relative penalty grows with the radius (SNR heterogeneity).
	first := simp.Y[0]/prop.Y[0] - 1
	last := simp.Y[len(simp.Y)-1]/prop.Y[len(prop.Y)-1] - 1
	if last <= first {
		t.Errorf("simplification penalty should grow with radius: %g -> %g", first, last)
	}
}

func TestExtCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension regeneration is slow")
	}
	objFig, timeFig, err := ExtC(RunConfig{Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(objFig.Series) != 3 || len(timeFig.Series) != 3 {
		t.Fatalf("series %d/%d", len(objFig.Series), len(timeFig.Series))
	}
	newton, direct, hybrid := objFig.Series[0], objFig.Series[1], objFig.Series[2]
	for i := range hybrid.Y {
		// The hybrid must match the better of its two components.
		if hybrid.Y[i] > newton.Y[i]*(1+1e-6) {
			t.Errorf("w1=%g: hybrid %g worse than Newton-only %g", hybrid.X[i], hybrid.Y[i], newton.Y[i])
		}
		if hybrid.Y[i] > direct.Y[i]*(1+1e-6) {
			t.Errorf("w1=%g: hybrid %g worse than direct %g", hybrid.X[i], hybrid.Y[i], direct.Y[i])
		}
	}
}

func TestExtDShape(t *testing.T) {
	if testing.Short() {
		t.Skip("extension regeneration is slow")
	}
	eFig, tFig, err := ExtD(RunConfig{Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// TDMA serializes uploads: at every weight its delay exceeds FDMA's.
	fdma, tdmaS := tFig.Series[0], tFig.Series[1]
	for i := range fdma.Y {
		if tdmaS.Y[i] <= fdma.Y[i] {
			t.Errorf("w1=%g: TDMA delay %g not above FDMA %g", fdma.X[i], tdmaS.Y[i], fdma.Y[i])
		}
	}
	if len(eFig.Series) != 2 {
		t.Fatalf("energy series %d", len(eFig.Series))
	}
}
