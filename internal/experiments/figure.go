package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	// Label names the curve (legend entry).
	Label string
	// X and Y are the sweep coordinates.
	X, Y []float64
}

// Figure is a reproduced plot, stored as numeric series.
type Figure struct {
	// ID is the paper's figure identifier, e.g. "2a".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel and YLabel name the axes (with units).
	XLabel, YLabel string
	// Series are the curves.
	Series []Series
}

// Table renders the figure as an aligned plain-text table: one row per
// sweep point, one column per series.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	rows := [][]string{headers}
	for i, x := range f.Series[0].X {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for r, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[c]+2, cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "(y axis: %s)\n", f.YLabel)
	return b.String()
}

// WriteCSV emits the figure as CSV with an x column followed by one column
// per series.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{f.XLabel}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: csv header: %w", err)
	}
	if len(f.Series) > 0 {
		for i, x := range f.Series[0].X {
			row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiments: csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}
