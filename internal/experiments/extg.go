package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/sim"
)

// ExtG replays the weighted-optimal allocation under per-round Nakagami-m
// fading (m = 1 is Rayleigh; large m approaches the paper's static channel)
// and measures the open-loop robustness of the static allocation: the
// fraction of rounds missing the optimizer's own deadline and the realized
// energy inflation over the model's prediction. The paper's model is
// fade-free; this quantifies how much headroom a deployment should add.
func ExtG(cfg RunConfig) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	ms := []float64{1, 2, 4, 8, 16, 64}
	headrooms := []float64{1.0, 1.1, 1.25, 1.5}
	const replayRounds = 1000
	violFig := Figure{ID: "extG-violations", Title: "deadline misses under Nakagami-m fading (static allocation, w1=w2=0.5)",
		XLabel: "Nakagami m (1 = Rayleigh)", YLabel: "rounds over deadline*headroom (%)"}
	energyFig := Figure{ID: "extG-energy", Title: "realized energy inflation under Nakagami-m fading",
		XLabel: "Nakagami m (1 = Rayleigh)", YLabel: "realized / modeled energy"}
	violSeries := make([]Series, len(headrooms))
	for k, h := range headrooms {
		violSeries[k] = Series{Label: fmt.Sprintf("headroom %.2fx", h)}
	}
	infl := Series{Label: "energy ratio"}
	for _, m := range ms {
		m := m
		rates := make([]float64, len(headrooms))
		var energyRatio float64
		n := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
			s, err := Default().Build(rng)
			if err != nil {
				continue
			}
			res, err := core.Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, core.Options{})
			if err != nil {
				continue
			}
			sum, err := sim.Run(s, res.Allocation, sim.Config{NakagamiM: m, Rounds: replayRounds}, rng)
			if err != nil {
				continue
			}
			for k, h := range headrooms {
				miss := 0
				for _, rec := range sum.Records {
					if rec.Time > res.RoundDeadline*h {
						miss++
					}
				}
				rates[k] += 100 * float64(miss) / float64(len(sum.Records))
			}
			modeled := res.Metrics.TotalEnergy / s.GlobalRounds * replayRounds
			energyRatio += sum.TotalEnergy / modeled
			n++
		}
		if n == 0 {
			return Figure{}, Figure{}, fmt.Errorf("experiments: ExtG failed at m=%g", m)
		}
		for k := range headrooms {
			violSeries[k].X = append(violSeries[k].X, m)
			violSeries[k].Y = append(violSeries[k].Y, rates[k]/float64(n))
		}
		infl.X = append(infl.X, m)
		infl.Y = append(infl.Y, energyRatio/float64(n))
	}
	violFig.Series = violSeries
	energyFig.Series = append(energyFig.Series, infl)
	return violFig, energyFig, nil
}
