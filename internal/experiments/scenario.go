// Package experiments regenerates every figure of the paper's evaluation
// (Section VII): scenario generation with the paper's default parameters,
// per-figure sweep drivers, seed-averaged runners and plain-text/CSV
// emitters for the resulting series.
package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/fl"
	"repro/internal/wireless"
)

// ErrBadScenario flags malformed scenario parameters.
var ErrBadScenario = errors.New("experiments: bad scenario")

// Scenario is a parameterized deployment matching Section VII-A. Zero
// values are not meaningful; start from Default and override.
type Scenario struct {
	// N is the number of devices.
	N int
	// RadiusKm is the radius of the disk devices are placed in.
	RadiusKm float64
	// SamplesPerDevice is D_n when TotalSamples == 0.
	SamplesPerDevice float64
	// SampleSpread draws heterogeneous dataset sizes:
	// D_n = SamplesPerDevice * (1 + SampleSpread*u_n) with u_n ~ U[-1, 1].
	// Zero (the default) reproduces the paper's homogeneous setting; the
	// ExtA extension sweeps it (the experiment the paper omits for space).
	SampleSpread float64
	// TotalSamples, when positive, is split equally across devices
	// (the Fig. 4 setting of 25000 samples).
	TotalSamples float64
	// CyclesMin and CyclesMax bound the uniform draw of c_n.
	CyclesMin, CyclesMax float64
	// UploadBits is d_n.
	UploadBits float64
	// Kappa is the effective switched capacitance.
	Kappa float64
	// FMinHz and FMaxHz bound CPU frequencies.
	FMinHz, FMaxHz float64
	// PMinDBm and PMaxDBm bound transmit powers.
	PMinDBm, PMaxDBm float64
	// BandwidthHz is the total uplink bandwidth B.
	BandwidthHz float64
	// N0DBmHz is the noise PSD in dBm/Hz.
	N0DBmHz float64
	// LocalIters and GlobalRounds are R_l and R_g.
	LocalIters, GlobalRounds float64
	// PathLoss is the channel model.
	PathLoss wireless.PathLossModel
}

// Default returns the paper's Section VII-A parameters: N=50 devices, 500
// samples each, c_n ~ U[1,3]x1e4 cycles/sample, kappa=1e-28, d_n=28.1 kbit,
// f up to 2 GHz, p in [0, 12] dBm, B=20 MHz, N0=-174 dBm/Hz, R_l=10,
// R_g=400.
//
// Interpretation notes: the paper places devices "in a circular area of
// size 500m x 500m", which we read as the disk inscribed in that bounding
// box — radius 0.25 km (a 0.5 km radius makes several of the paper's own
// tight-deadline operating points, e.g. Fig. 8's T=80 s at p_max=5 dBm,
// infeasible for a sizable fraction of shadowing draws). The paper states
// no f_min; we use 10 MHz as a conservative floor so every box is
// well-posed.
func Default() Scenario {
	return Scenario{
		N:                50,
		RadiusKm:         0.25,
		SamplesPerDevice: 500,
		CyclesMin:        1e4,
		CyclesMax:        3e4,
		UploadBits:       28.1e3,
		Kappa:            1e-28,
		FMinHz:           1e7,
		FMaxHz:           2e9,
		PMinDBm:          0,
		PMaxDBm:          12,
		BandwidthHz:      20e6,
		N0DBmHz:          -174,
		LocalIters:       10,
		GlobalRounds:     400,
		PathLoss:         wireless.DefaultPathLoss(),
	}
}

// Build draws a random device population from the scenario.
func (sc Scenario) Build(rng *rand.Rand) (*fl.System, error) {
	if sc.N <= 0 {
		return nil, fmt.Errorf("experiments: scenario with N=%d: %w", sc.N, ErrBadScenario)
	}
	if sc.SampleSpread < 0 {
		return nil, fmt.Errorf("experiments: negative SampleSpread %g: %w", sc.SampleSpread, ErrBadScenario)
	}
	samples := sc.SamplesPerDevice
	if sc.TotalSamples > 0 {
		samples = sc.TotalSamples / float64(sc.N)
	}
	devs := make([]fl.Device, sc.N)
	for i := range devs {
		dn := samples
		if sc.SampleSpread > 0 {
			dn = samples * (1 + sc.SampleSpread*(2*rng.Float64()-1))
			if dn < 1 {
				dn = 1
			}
		}
		devs[i] = fl.Device{
			Samples:         dn,
			CyclesPerSample: sc.CyclesMin + rng.Float64()*(sc.CyclesMax-sc.CyclesMin),
			UploadBits:      sc.UploadBits,
			Gain:            sc.PathLoss.SampleGain(rng, wireless.UniformDiskDistanceKm(rng, sc.RadiusKm)),
			FMin:            sc.FMinHz,
			FMax:            sc.FMaxHz,
			PMin:            wireless.DBmToWatt(sc.PMinDBm),
			PMax:            wireless.DBmToWatt(sc.PMaxDBm),
		}
	}
	s := &fl.System{
		Devices:      devs,
		Bandwidth:    sc.BandwidthHz,
		N0:           wireless.NoisePSDWattPerHz(sc.N0DBmHz),
		Kappa:        sc.Kappa,
		LocalIters:   sc.LocalIters,
		GlobalRounds: sc.GlobalRounds,
	}
	if err := s.Check(); err != nil {
		return nil, err
	}
	return s, nil
}

// WeightPairs are the five (w1, w2) pairs of Figs. 2-4.
func WeightPairs() []fl.Weights {
	return []fl.Weights{
		{W1: 0.9, W2: 0.1},
		{W1: 0.7, W2: 0.3},
		{W1: 0.5, W2: 0.5},
		{W1: 0.3, W2: 0.7},
		{W1: 0.1, W2: 0.9},
	}
}

// WeightLabel formats a weight pair the way the paper's legends do.
func WeightLabel(w fl.Weights) string {
	return fmt.Sprintf("w1=%.1f,w2=%.1f", w.W1, w.W2)
}
