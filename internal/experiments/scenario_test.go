package experiments

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBuildRejectsNegativeSampleSpread(t *testing.T) {
	sc := Default()
	sc.SampleSpread = -0.5
	if _, err := sc.Build(rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("Build with SampleSpread=-0.5: err=%v, want ErrBadScenario", err)
	}
}

func TestBuildRejectsNonPositiveN(t *testing.T) {
	sc := Default()
	sc.N = 0
	if _, err := sc.Build(rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("Build with N=0: err=%v, want ErrBadScenario", err)
	}
}
