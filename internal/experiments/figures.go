package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
)

// RunConfig controls figure regeneration.
type RunConfig struct {
	// Trials is the number of random user draws averaged per sweep point
	// (the paper uses 100).
	Trials int
	// Seed is the base RNG seed; trial t of any figure uses Seed+t.
	Seed int64
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Trials <= 0 {
		c.Trials = 10
	}
	return c
}

// averageOver runs f for each trial and returns the mean of the collected
// values, skipping trials where f reports an error (returning how many
// succeeded).
func averageOver(cfg RunConfig, f func(trial int, rng *rand.Rand) (float64, error)) (float64, int) {
	var sum float64
	n := 0
	for t := 0; t < cfg.Trials; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)))
		v, err := f(t, rng)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// averagePair is averageOver for experiments that report an (energy, time)
// pair from a single optimizer run.
func averagePair(cfg RunConfig, f func(rng *rand.Rand) (float64, float64, error)) (float64, float64, int) {
	var sumE, sumT float64
	n := 0
	for t := 0; t < cfg.Trials; t++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)))
		e, tv, err := f(rng)
		if err != nil {
			continue
		}
		sumE += e
		sumT += tv
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return sumE / float64(n), sumT / float64(n), n
}

// weightedPoint runs the proposed optimizer and returns (energy, time).
func weightedPoint(sc Scenario, w fl.Weights, rng *rand.Rand) (float64, float64, error) {
	s, err := sc.Build(rng)
	if err != nil {
		return 0, 0, err
	}
	res, err := core.Optimize(s, w, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	return res.Metrics.TotalEnergy, res.Metrics.TotalTime, nil
}

// sweepWeighted produces the energy and delay figures for a parameterized
// sweep with the five weight-pair series, plus an optional benchmark series.
func sweepWeighted(cfg RunConfig, xs []float64, apply func(Scenario, float64) Scenario,
	benchmark func(*fl.System, float64, *rand.Rand) fl.Allocation,
	idE, idT, title, xlabel string) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	pairs := WeightPairs()
	nSeries := len(pairs)
	if benchmark != nil {
		nSeries++
	}
	energySeries := make([]Series, nSeries)
	timeSeries := make([]Series, nSeries)
	for si, w := range pairs {
		energySeries[si] = Series{Label: WeightLabel(w)}
		timeSeries[si] = Series{Label: WeightLabel(w)}
	}
	if benchmark != nil {
		energySeries[nSeries-1] = Series{Label: "benchmark"}
		timeSeries[nSeries-1] = Series{Label: "benchmark"}
	}

	for _, x := range xs {
		sc := apply(Default(), x)
		for si, w := range pairs {
			w := w
			e, tV, n := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
				return weightedPoint(sc, w, rng)
			})
			if n == 0 {
				return Figure{}, Figure{}, fmt.Errorf("experiments: no successful trial at %s=%g for %s", xlabel, x, WeightLabel(w))
			}
			energySeries[si].X = append(energySeries[si].X, x)
			energySeries[si].Y = append(energySeries[si].Y, e)
			timeSeries[si].X = append(timeSeries[si].X, x)
			timeSeries[si].Y = append(timeSeries[si].Y, tV)
		}
		if benchmark != nil {
			be, bt, n := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
				s, err := sc.Build(rng)
				if err != nil {
					return 0, 0, err
				}
				m := s.Evaluate(benchmark(s, x, rng))
				return m.TotalEnergy, m.TotalTime, nil
			})
			if n == 0 {
				return Figure{}, Figure{}, fmt.Errorf("experiments: benchmark failed at %s=%g", xlabel, x)
			}
			energySeries[nSeries-1].X = append(energySeries[nSeries-1].X, x)
			energySeries[nSeries-1].Y = append(energySeries[nSeries-1].Y, be)
			timeSeries[nSeries-1].X = append(timeSeries[nSeries-1].X, x)
			timeSeries[nSeries-1].Y = append(timeSeries[nSeries-1].Y, bt)
		}
	}
	eFig := Figure{ID: idE, Title: title, XLabel: xlabel, YLabel: "total energy (J)", Series: energySeries}
	tFig := Figure{ID: idT, Title: title, XLabel: xlabel, YLabel: "total time (s)", Series: timeSeries}
	return eFig, tFig, nil
}

// Fig2 reproduces Figs. 2a/2b: energy and delay versus the maximum transmit
// power limit (5-12 dBm), five weight pairs plus the random-frequency
// benchmark.
func Fig2(cfg RunConfig) (Figure, Figure, error) {
	xs := []float64{5, 6, 7, 8, 9, 10, 11, 12}
	return sweepWeighted(cfg, xs,
		func(sc Scenario, x float64) Scenario { sc.PMaxDBm = x; return sc },
		func(s *fl.System, _ float64, rng *rand.Rand) fl.Allocation { return baselines.RandomFreq(s, rng) },
		"2a", "2b", "energy/delay vs maximum transmit power", "p_max (dBm)")
}

// Fig3 reproduces Figs. 3a/3b: energy and delay versus the maximum CPU
// frequency (0.2-2 GHz), five weight pairs plus the random-power benchmark.
func Fig3(cfg RunConfig) (Figure, Figure, error) {
	xs := []float64{0.2e9, 0.4e9, 0.6e9, 0.8e9, 1.0e9, 1.2e9, 1.4e9, 1.6e9, 1.8e9, 2.0e9}
	return sweepWeighted(cfg, xs,
		func(sc Scenario, x float64) Scenario { sc.FMaxHz = x; return sc },
		func(s *fl.System, _ float64, rng *rand.Rand) fl.Allocation { return baselines.RandomPower(s, rng) },
		"3a", "3b", "energy/delay vs maximum CPU frequency", "f_max (Hz)")
}

// Fig4 reproduces Figs. 4a/4b: energy and delay versus the number of devices
// (20-80) with 25000 total samples split equally; five weight pairs.
func Fig4(cfg RunConfig) (Figure, Figure, error) {
	xs := []float64{20, 30, 40, 50, 60, 70, 80}
	return sweepWeighted(cfg, xs,
		func(sc Scenario, x float64) Scenario {
			sc.N = int(x)
			sc.TotalSamples = 25000
			return sc
		},
		nil,
		"4a", "4b", "energy/delay vs number of devices (25000 samples total)", "number of devices")
}

// Fig5 reproduces Figs. 5a/5b: energy and delay versus the placement radius
// (0.1-1.5 km) for N in {20, 50, 80} at w1 = w2 = 0.5.
func Fig5(cfg RunConfig) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5}
	ns := []int{20, 50, 80}
	w := fl.Weights{W1: 0.5, W2: 0.5}
	eFig := Figure{ID: "5a", Title: "energy vs placement radius (w1=w2=0.5)", XLabel: "radius (km)", YLabel: "total energy (J)"}
	tFig := Figure{ID: "5b", Title: "delay vs placement radius (w1=w2=0.5)", XLabel: "radius (km)", YLabel: "total time (s)"}
	for _, n := range ns {
		eS := Series{Label: fmt.Sprintf("N=%d", n)}
		tS := Series{Label: fmt.Sprintf("N=%d", n)}
		for _, x := range xs {
			sc := Default()
			sc.N = n
			sc.RadiusKm = x
			e, tV, cnt := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
				return weightedPoint(sc, w, rng)
			})
			if cnt == 0 {
				return Figure{}, Figure{}, fmt.Errorf("experiments: Fig5 no successful trial at radius %g, N=%d", x, n)
			}
			eS.X = append(eS.X, x)
			eS.Y = append(eS.Y, e)
			tS.X = append(tS.X, x)
			tS.Y = append(tS.Y, tV)
		}
		eFig.Series = append(eFig.Series, eS)
		tFig.Series = append(tFig.Series, tS)
	}
	return eFig, tFig, nil
}

// Fig6 reproduces Figs. 6a/6b: energy and delay versus the number of local
// iterations R_l (10-110) for R_g in {50, 100, 200, 300, 400} at
// w1 = w2 = 0.5.
func Fig6(cfg RunConfig) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{10, 30, 50, 70, 90, 110}
	rgs := []float64{50, 100, 200, 300, 400}
	w := fl.Weights{W1: 0.5, W2: 0.5}
	eFig := Figure{ID: "6a", Title: "energy vs local iterations (w1=w2=0.5)", XLabel: "R_l", YLabel: "total energy (J)"}
	tFig := Figure{ID: "6b", Title: "delay vs local iterations (w1=w2=0.5)", XLabel: "R_l", YLabel: "total time (s)"}
	for _, rg := range rgs {
		eS := Series{Label: fmt.Sprintf("Rg=%.0f", rg)}
		tS := Series{Label: fmt.Sprintf("Rg=%.0f", rg)}
		for _, x := range xs {
			sc := Default()
			sc.LocalIters = x
			sc.GlobalRounds = rg
			e, tV, cnt := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
				return weightedPoint(sc, w, rng)
			})
			if cnt == 0 {
				return Figure{}, Figure{}, fmt.Errorf("experiments: Fig6 no successful trial at Rl=%g, Rg=%g", x, rg)
			}
			eS.X = append(eS.X, x)
			eS.Y = append(eS.Y, e)
			tS.X = append(tS.X, x)
			tS.Y = append(tS.Y, tV)
		}
		eFig.Series = append(eFig.Series, eS)
		tFig.Series = append(tFig.Series, tS)
	}
	return eFig, tFig, nil
}

// Fig7 reproduces Fig. 7: total energy versus the maximum completion time
// limit T (100-150 s) at p_max = 10 dBm, comparing the proposed
// deadline-mode optimizer against communication-only and computation-only
// optimization.
func Fig7(cfg RunConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{100, 110, 120, 130, 140, 150}
	sc := Default()
	sc.PMaxDBm = 10
	fig := Figure{ID: "7", Title: "energy vs completion-time limit (p_max=10 dBm)",
		XLabel: "T (s)", YLabel: "total energy (J)"}
	kinds := []struct {
		label string
		run   func(*fl.System, float64) (float64, error)
	}{
		{"proposed", func(s *fl.System, total float64) (float64, error) {
			res, err := core.Optimize(s, fl.Weights{W1: 1, W2: 0},
				core.Options{Mode: core.ModeDeadline, TotalDeadline: total})
			if err != nil {
				return 0, err
			}
			return res.Metrics.TotalEnergy, nil
		}},
		{"communication only", func(s *fl.System, total float64) (float64, error) {
			a, err := baselines.CommunicationOnly(s, total)
			if err != nil {
				return 0, err
			}
			return s.Evaluate(a).TotalEnergy, nil
		}},
		{"computation only", func(s *fl.System, total float64) (float64, error) {
			a, err := baselines.ComputationOnly(s, total)
			if err != nil {
				return 0, err
			}
			return s.Evaluate(a).TotalEnergy, nil
		}},
	}
	for _, k := range kinds {
		series := Series{Label: k.label}
		for _, x := range xs {
			v, n := averageOver(cfg, func(_ int, rng *rand.Rand) (float64, error) {
				s, err := sc.Build(rng)
				if err != nil {
					return 0, err
				}
				return k.run(s, x)
			})
			if n == 0 {
				return Figure{}, fmt.Errorf("experiments: Fig7 %s failed at T=%g on all trials", k.label, x)
			}
			series.X = append(series.X, x)
			series.Y = append(series.Y, v)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// Fig8 reproduces Fig. 8: total energy versus the maximum transmit power
// limit (5-12 dBm) for the proposed deadline-mode optimizer and the Scheme 1
// surrogate at completion-time limits T in {80, 100, 150} s.
func Fig8(cfg RunConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{5, 6, 7, 8, 9, 10, 11, 12}
	deadlines := []float64{80, 100, 150}
	fig := Figure{ID: "8", Title: "energy vs maximum transmit power under fixed deadlines",
		XLabel: "p_max (dBm)", YLabel: "total energy (J)"}
	for _, deadline := range deadlines {
		propSeries := Series{Label: fmt.Sprintf("proposed (T=%.0f)", deadline)}
		schSeries := Series{Label: fmt.Sprintf("scheme 1 (T=%.0f)", deadline)}
		for _, x := range xs {
			sc := Default()
			sc.PMaxDBm = x
			prop, n1 := averageOver(cfg, func(_ int, rng *rand.Rand) (float64, error) {
				s, err := sc.Build(rng)
				if err != nil {
					return 0, err
				}
				res, err := core.Optimize(s, fl.Weights{W1: 1, W2: 0},
					core.Options{Mode: core.ModeDeadline, TotalDeadline: deadline})
				if err != nil {
					return 0, err
				}
				return res.Metrics.TotalEnergy, nil
			})
			sch, n2 := averageOver(cfg, func(_ int, rng *rand.Rand) (float64, error) {
				s, err := sc.Build(rng)
				if err != nil {
					return 0, err
				}
				a, err := baselines.Scheme1(s, deadline, baselines.Scheme1Options{})
				if err != nil {
					return 0, err
				}
				return s.Evaluate(a).TotalEnergy, nil
			})
			if n1 == 0 || n2 == 0 {
				return Figure{}, fmt.Errorf("experiments: Fig8 failed at p_max=%g, T=%g (proposed %d, scheme1 %d trials)",
					x, deadline, n1, n2)
			}
			propSeries.X = append(propSeries.X, x)
			propSeries.Y = append(propSeries.Y, prop)
			schSeries.X = append(schSeries.X, x)
			schSeries.Y = append(schSeries.Y, sch)
		}
		fig.Series = append(fig.Series, propSeries, schSeries)
	}
	return fig, nil
}

// RunAll regenerates every figure and returns them in paper order.
func RunAll(cfg RunConfig) ([]Figure, error) {
	var out []Figure
	add2 := func(a, b Figure, err error) error {
		if err != nil {
			return err
		}
		out = append(out, a, b)
		return nil
	}
	if err := add2(Fig2(cfg)); err != nil {
		return nil, err
	}
	if err := add2(Fig3(cfg)); err != nil {
		return nil, err
	}
	if err := add2(Fig4(cfg)); err != nil {
		return nil, err
	}
	if err := add2(Fig5(cfg)); err != nil {
		return nil, err
	}
	if err := add2(Fig6(cfg)); err != nil {
		return nil, err
	}
	f7, err := Fig7(cfg)
	if err != nil {
		return nil, err
	}
	f8, err := Fig8(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, f7, f8)
	return out, nil
}
