package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/tdma"
)

// Extension experiments beyond the paper's printed evaluation. Each is
// motivated by the paper's own text: ExtA is the heterogeneous-samples
// experiment omitted "due to the space limitation" (§VII-B), ExtB
// quantifies the ref.-[3] Shannon simplification the paper criticizes
// (§II-A), ExtC ablates the Subproblem 2 solver choices this reproduction
// documents in DESIGN.md, and ExtD compares FDMA against the TDMA access
// scheme of the related work [8].

// ExtA sweeps the sample-size spread across devices at a fixed mean
// (D_n = 500*(1 +- spread)), the experiment the paper omits for space. The
// paper's stated expectation is that D_n correlates positively with both
// metrics; with a fixed *mean*, heterogeneity instead shifts load across
// devices and the max-shaped delay term grows while energy stays flat.
func ExtA(cfg RunConfig) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	pairs := []fl.Weights{{W1: 0.9, W2: 0.1}, {W1: 0.5, W2: 0.5}, {W1: 0.1, W2: 0.9}}
	eFig := Figure{ID: "extA-energy", Title: "energy vs sample-size spread (mean D_n = 500)",
		XLabel: "spread (fraction of mean)", YLabel: "total energy (J)"}
	tFig := Figure{ID: "extA-delay", Title: "delay vs sample-size spread (mean D_n = 500)",
		XLabel: "spread (fraction of mean)", YLabel: "total time (s)"}
	for _, w := range pairs {
		w := w
		eS := Series{Label: WeightLabel(w)}
		tS := Series{Label: WeightLabel(w)}
		for _, x := range xs {
			sc := Default()
			sc.SampleSpread = x
			e, tV, n := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
				return weightedPoint(sc, w, rng)
			})
			if n == 0 {
				return Figure{}, Figure{}, fmt.Errorf("experiments: ExtA failed at spread %g", x)
			}
			eS.X = append(eS.X, x)
			eS.Y = append(eS.Y, e)
			tS.X = append(tS.X, x)
			tS.Y = append(tS.Y, tV)
		}
		eFig.Series = append(eFig.Series, eS)
		tFig.Series = append(tFig.Series, tS)
	}
	return eFig, tFig, nil
}

// ExtB compares the proposed deadline-mode allocator against the
// simplified-Shannon allocation of ref. [3] (noise not scaling with
// bandwidth), both judged under the exact rate formula at the same
// per-draw deadline (2x the physical minimum), across the placement radius
// — the simplification hurts most when SNRs are heterogeneous.
func ExtB(cfg RunConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	fig := Figure{ID: "extB", Title: "exact vs simplified Shannon bandwidth allocation (deadline = 2x minimum)",
		XLabel: "radius (km)", YLabel: "total energy (J)"}
	prop := Series{Label: "proposed (exact Shannon)"}
	simp := Series{Label: "simplified noise (ref. [3] style)"}
	for _, x := range xs {
		sc := Default()
		sc.RadiusKm = x
		pv, sv, n := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
			s, err := sc.Build(rng)
			if err != nil {
				return 0, 0, err
			}
			mt, err := core.SolveMinTime(s)
			if err != nil {
				return 0, 0, err
			}
			total := 2 * mt.RoundDeadline * s.GlobalRounds
			res, err := core.Optimize(s, fl.Weights{W1: 1, W2: 0},
				core.Options{Mode: core.ModeDeadline, TotalDeadline: total})
			if err != nil {
				return 0, 0, err
			}
			a, err := baselines.SimplifiedShannonDeadline(s, total)
			if err != nil {
				return 0, 0, err
			}
			return res.Metrics.TotalEnergy, s.Evaluate(a).TotalEnergy, nil
		})
		if n == 0 {
			return Figure{}, fmt.Errorf("experiments: ExtB failed at radius %g", x)
		}
		prop.X = append(prop.X, x)
		prop.Y = append(prop.Y, pv)
		simp.X = append(simp.X, x)
		simp.Y = append(simp.Y, sv)
	}
	fig.Series = append(fig.Series, prop, simp)
	return fig, nil
}

// ExtE quantifies how much the paper's alternating Algorithm 2 leaves on
// the table in the weighted mode: under tight weights the alternation
// freezes the transmission variables at their initialization (DESIGN.md),
// while the joint 1-D-over-deadline solver explores the full tradeoff.
func ExtE(cfg RunConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	fig := Figure{ID: "extE", Title: "weighted objective: paper's alternation vs joint deadline search",
		XLabel: "w1", YLabel: "weighted objective w1*E + w2*T"}
	alt := Series{Label: "Algorithm 2 (alternating)"}
	joint := Series{Label: "joint (1-D over T)"}
	for _, x := range xs {
		w := fl.Weights{W1: x, W2: 1 - x}
		av, jv, n := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
			s, err := Default().Build(rng)
			if err != nil {
				return 0, 0, err
			}
			a, err := core.Optimize(s, w, core.Options{})
			if err != nil {
				return 0, 0, err
			}
			j, err := core.Optimize(s, w, core.Options{JointWeighted: true})
			if err != nil {
				return 0, 0, err
			}
			return a.Objective, j.Objective, nil
		})
		if n == 0 {
			return Figure{}, fmt.Errorf("experiments: ExtE failed at w1=%g", x)
		}
		alt.X = append(alt.X, x)
		alt.Y = append(alt.Y, av)
		joint.X = append(joint.X, x)
		joint.Y = append(joint.Y, jv)
	}
	fig.Series = append(fig.Series, alt, joint)
	return fig, nil
}

// ExtC ablates the Subproblem 2 solver: the paper's Algorithm 1 alone, the
// direct reduction alone, and the default hybrid — objective achieved and
// wall time, swept over the energy weight.
func ExtC(cfg RunConfig) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	methods := []struct {
		label  string
		method core.SP2Method
	}{
		{"Algorithm 1 (paper)", core.SP2NewtonOnly},
		{"direct reduction", core.SP2DirectOnly},
		{"hybrid (default)", core.SP2Hybrid},
	}
	objFig := Figure{ID: "extC-objective", Title: "SP2 solver ablation: achieved objective",
		XLabel: "w1", YLabel: "weighted objective"}
	timeFig := Figure{ID: "extC-runtime", Title: "SP2 solver ablation: optimizer wall time",
		XLabel: "w1", YLabel: "mean wall time (ms)"}
	for _, m := range methods {
		m := m
		oS := Series{Label: m.label}
		tS := Series{Label: m.label}
		for _, x := range xs {
			w := fl.Weights{W1: x, W2: 1 - x}
			var elapsed time.Duration
			v, n := averageOver(cfg, func(_ int, rng *rand.Rand) (float64, error) {
				s, err := Default().Build(rng)
				if err != nil {
					return 0, err
				}
				start := time.Now()
				res, err := core.Optimize(s, w, core.Options{SP2Solver: m.method})
				elapsed += time.Since(start)
				if err != nil {
					return 0, err
				}
				return res.Objective, nil
			})
			if n == 0 {
				return Figure{}, Figure{}, fmt.Errorf("experiments: ExtC %s failed at w1=%g", m.label, x)
			}
			oS.X = append(oS.X, x)
			oS.Y = append(oS.Y, v)
			tS.X = append(tS.X, x)
			tS.Y = append(tS.Y, float64(elapsed.Milliseconds())/float64(n))
		}
		objFig.Series = append(objFig.Series, oS)
		timeFig.Series = append(timeFig.Series, tS)
	}
	return objFig, timeFig, nil
}

// ExtD compares the paper's FDMA allocation against an optimized TDMA
// schedule (full band per slot, related work [8]) across the energy weight.
func ExtD(cfg RunConfig) (Figure, Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	eFig := Figure{ID: "extD-energy", Title: "FDMA (proposed) vs TDMA: total energy",
		XLabel: "w1", YLabel: "total energy (J)"}
	tFig := Figure{ID: "extD-delay", Title: "FDMA (proposed) vs TDMA: total delay",
		XLabel: "w1", YLabel: "total time (s)"}
	fdmaE := Series{Label: "FDMA (proposed)"}
	fdmaT := Series{Label: "FDMA (proposed)"}
	tdmaE := Series{Label: "TDMA"}
	tdmaT := Series{Label: "TDMA"}
	for _, x := range xs {
		w := fl.Weights{W1: x, W2: 1 - x}
		fe, ft, n1 := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
			return weightedPoint(Default(), w, rng)
		})
		te, tt, n2 := averagePair(cfg, func(rng *rand.Rand) (float64, float64, error) {
			s, err := Default().Build(rng)
			if err != nil {
				return 0, 0, err
			}
			_, m, err := tdma.Optimize(s, w)
			if err != nil {
				return 0, 0, err
			}
			return m.TotalEnergy, m.TotalTime, nil
		})
		if n1 == 0 || n2 == 0 {
			return Figure{}, Figure{}, fmt.Errorf("experiments: ExtD failed at w1=%g", x)
		}
		fdmaE.X = append(fdmaE.X, x)
		fdmaE.Y = append(fdmaE.Y, fe)
		fdmaT.X = append(fdmaT.X, x)
		fdmaT.Y = append(fdmaT.Y, ft)
		tdmaE.X = append(tdmaE.X, x)
		tdmaE.Y = append(tdmaE.Y, te)
		tdmaT.X = append(tdmaT.X, x)
		tdmaT.Y = append(tdmaT.Y, tt)
	}
	eFig.Series = append(eFig.Series, fdmaE, tdmaE)
	tFig.Series = append(tFig.Series, fdmaT, tdmaT)
	return eFig, tFig, nil
}

// ExtF measures optimizer wall time against the number of devices — the
// empirical counterpart of the paper's Section VI complexity analysis
// (their CVX-based pipeline is O(K*(i0+1)*N^4.5*log(1/eps)); the
// closed-form waterfilling implemented here scales near-linearly in N, with
// logarithmic bisection factors).
func ExtF(cfg RunConfig) (Figure, error) {
	cfg = cfg.withDefaults()
	xs := []float64{10, 25, 50, 100, 200, 400}
	fig := Figure{ID: "extF", Title: "optimizer wall time vs number of devices",
		XLabel: "number of devices", YLabel: "mean wall time (ms)"}
	kinds := []struct {
		label string
		run   func(s *fl.System) error
	}{
		{"weighted (Algorithm 2)", func(s *fl.System) error {
			_, err := core.Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, core.Options{})
			return err
		}},
		{"deadline (dual decomposition)", func(s *fl.System) error {
			mt, err := core.SolveMinTime(s)
			if err != nil {
				return err
			}
			_, err = core.Optimize(s, fl.Weights{W1: 1, W2: 0},
				core.Options{Mode: core.ModeDeadline, TotalDeadline: 3 * mt.RoundDeadline * s.GlobalRounds})
			return err
		}},
	}
	for _, k := range kinds {
		k := k
		series := Series{Label: k.label}
		for _, x := range xs {
			sc := Default()
			sc.N = int(x)
			var elapsed time.Duration
			_, n := averageOver(cfg, func(_ int, rng *rand.Rand) (float64, error) {
				s, err := sc.Build(rng)
				if err != nil {
					return 0, err
				}
				start := time.Now()
				if err := k.run(s); err != nil {
					return 0, err
				}
				elapsed += time.Since(start)
				return 0, nil
			})
			if n == 0 {
				return Figure{}, fmt.Errorf("experiments: ExtF %s failed at N=%g", k.label, x)
			}
			series.X = append(series.X, x)
			series.Y = append(series.Y, float64(elapsed.Microseconds())/1e3/float64(n))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RunExtensions regenerates every extension figure.
func RunExtensions(cfg RunConfig) ([]Figure, error) {
	var out []Figure
	a1, a2, err := ExtA(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, a1, a2)
	b, err := ExtB(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, b)
	c1, c2, err := ExtC(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, c1, c2)
	d1, d2, err := ExtD(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, d1, d2)
	e, err := ExtE(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, e)
	f, err := ExtF(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, f)
	g1, g2, err := ExtG(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, g1, g2)
	return out, nil
}
