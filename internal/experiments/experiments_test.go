package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fl"
)

func TestDefaultScenarioBuild(t *testing.T) {
	sc := Default()
	s, err := sc.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 50 {
		t.Errorf("N = %d", s.N())
	}
	if s.Bandwidth != 20e6 {
		t.Errorf("B = %g", s.Bandwidth)
	}
	for i, d := range s.Devices {
		if d.Samples != 500 {
			t.Errorf("device %d samples %g", i, d.Samples)
		}
		if d.CyclesPerSample < 1e4 || d.CyclesPerSample > 3e4 {
			t.Errorf("device %d cycles %g outside [1,3]e4", i, d.CyclesPerSample)
		}
	}
}

func TestScenarioTotalSamplesSplit(t *testing.T) {
	sc := Default()
	sc.N = 40
	sc.TotalSamples = 25000
	s, err := sc.Build(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range s.Devices {
		if d.Samples != 625 {
			t.Errorf("device %d samples %g, want 625", i, d.Samples)
		}
	}
}

func TestScenarioDeterminism(t *testing.T) {
	sc := Default()
	s1, _ := sc.Build(rand.New(rand.NewSource(9)))
	s2, _ := sc.Build(rand.New(rand.NewSource(9)))
	for i := range s1.Devices {
		if s1.Devices[i].Gain != s2.Devices[i].Gain {
			t.Fatal("same seed must give identical gains")
		}
	}
	// Changing a box limit must not consume randomness (gains unchanged).
	sc2 := sc
	sc2.PMaxDBm = 7
	s3, _ := sc2.Build(rand.New(rand.NewSource(9)))
	for i := range s1.Devices {
		if s1.Devices[i].Gain != s3.Devices[i].Gain {
			t.Fatal("changing PMax must not change the channel draw")
		}
	}
}

func TestWeightPairs(t *testing.T) {
	pairs := WeightPairs()
	if len(pairs) != 5 {
		t.Fatalf("want 5 pairs, got %d", len(pairs))
	}
	for _, w := range pairs {
		if err := w.Check(); err != nil {
			t.Errorf("pair %v invalid: %v", w, err)
		}
	}
	if got := WeightLabel(fl.Weights{W1: 0.9, W2: 0.1}); got != "w1=0.9,w2=0.1" {
		t.Errorf("label = %q", got)
	}
}

func TestFigureTableAndCSV(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	tab := fig.Table()
	for _, want := range []string{"Figure t", "a", "b", "10", "40", "y"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "x,a,b" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "1,10,30" {
		t.Errorf("csv row = %q", lines[1])
	}
	empty := Figure{ID: "e", Title: "empty"}
	if !strings.Contains(empty.Table(), "no data") {
		t.Error("empty figure table should say so")
	}
}

// smallCfg keeps shape tests fast.
func smallCfg() RunConfig { return RunConfig{Trials: 2, Seed: 7} }

// TestFig2Shape verifies the qualitative claims of Fig. 2: energy increases
// as w1 decreases, and the benchmark's energy is far above every proposed
// curve.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	eFig, tFig, err := Fig2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(eFig.Series) != 6 || len(tFig.Series) != 6 {
		t.Fatalf("series count %d/%d", len(eFig.Series), len(tFig.Series))
	}
	// Energy ordering across weight pairs at each x: larger w1 -> lower E.
	for xi := range eFig.Series[0].X {
		for si := 1; si < 5; si++ {
			if eFig.Series[si].Y[xi] < eFig.Series[si-1].Y[xi]*(1-1e-6) {
				t.Errorf("x#%d: energy ordering broken between %s and %s (%g < %g)",
					xi, eFig.Series[si].Label, eFig.Series[si-1].Label,
					eFig.Series[si].Y[xi], eFig.Series[si-1].Y[xi])
			}
			if tFig.Series[si].Y[xi] > tFig.Series[si-1].Y[xi]*(1+1e-6) {
				t.Errorf("x#%d: delay ordering broken between %s and %s",
					xi, tFig.Series[si].Label, tFig.Series[si-1].Label)
			}
		}
		// Benchmark (last series) worse than every proposed curve on energy.
		bench := eFig.Series[5].Y[xi]
		for si := 0; si < 5; si++ {
			if eFig.Series[si].Y[xi] > bench {
				t.Errorf("x#%d: %s energy %g above benchmark %g",
					xi, eFig.Series[si].Label, eFig.Series[si].Y[xi], bench)
			}
		}
	}
}

// TestFig4Shape: energy decreases with N (fixed total samples).
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	eFig, _, err := Fig4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range eFig.Series {
		if s.Y[0] <= s.Y[len(s.Y)-1] {
			t.Errorf("series %s: energy should fall with N: %v", s.Label, s.Y)
		}
	}
}

// TestFig6Shape: energy and delay increase with R_l and with R_g.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	eFig, tFig, err := Fig6(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{eFig, tFig} {
		for _, s := range fig.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1]*(1-1e-6) {
					t.Errorf("fig %s series %s not increasing in R_l: %v", fig.ID, s.Label, s.Y)
				}
			}
		}
		// Across series (growing Rg), values at the same x must increase.
		for xi := range fig.Series[0].X {
			for si := 1; si < len(fig.Series); si++ {
				if fig.Series[si].Y[xi] < fig.Series[si-1].Y[xi]*(1-1e-6) {
					t.Errorf("fig %s not increasing in R_g at x#%d", fig.ID, xi)
				}
			}
		}
	}
}

// TestFig7Shape: proposed lowest; gaps shrink as the deadline relaxes.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	fig, err := Fig7(RunConfig{Trials: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	prop, comm, comp := fig.Series[0], fig.Series[1], fig.Series[2]
	for xi := range prop.X {
		if prop.Y[xi] > comm.Y[xi]*(1+1e-6) {
			t.Errorf("T=%g: proposed %g above communication-only %g", prop.X[xi], prop.Y[xi], comm.Y[xi])
		}
		if prop.Y[xi] > comp.Y[xi]*(1+1e-6) {
			t.Errorf("T=%g: proposed %g above computation-only %g", prop.X[xi], prop.Y[xi], comp.Y[xi])
		}
	}
	// Energy decreases as the deadline relaxes.
	for xi := 1; xi < len(prop.X); xi++ {
		if prop.Y[xi] > prop.Y[xi-1]*(1+1e-6) {
			t.Errorf("proposed energy rose when T relaxed: %v", prop.Y)
		}
	}
}

// TestFig8Shape: proposed below Scheme 1 for each deadline; tighter
// deadlines cost more energy.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	fig, err := Fig8(RunConfig{Trials: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for k := 0; k < 3; k++ {
		prop, sch := fig.Series[2*k], fig.Series[2*k+1]
		for xi := range prop.X {
			if prop.Y[xi] > sch.Y[xi]*(1+1e-6) {
				t.Errorf("%s: proposed %g above scheme 1 %g at p_max=%g",
					prop.Label, prop.Y[xi], sch.Y[xi], prop.X[xi])
			}
		}
	}
}
