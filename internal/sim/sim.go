// Package sim replays an allocation over the R_g global rounds of the FL
// campaign with per-round small-scale fading, measuring what the paper's
// static model cannot: how the realized energy, completion time and
// deadline-violation rate degrade when the channel varies around the mean
// gains the allocation was optimized for.
//
// Fading model: each device's per-round gain is g_n * F where F is a
// unit-mean Nakagami-m power fade (Gamma(m, 1/m)); m = 1 is Rayleigh,
// m -> inf recovers the paper's static channel exactly (verified in tests).
// Devices retransmit at their allocated power and bandwidth regardless of
// the fade — the pessimistic "open-loop" reading of a static allocation.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// ErrBadInput flags invalid simulation parameters.
var ErrBadInput = errors.New("sim: bad input")

// Config parameterizes a campaign replay.
type Config struct {
	// NakagamiM is the fading figure (1 = Rayleigh, +Inf = static).
	NakagamiM float64
	// Rounds overrides the system's R_g when positive.
	Rounds int
	// RoundDeadline, when positive, is the per-round deadline used for
	// violation counting (e.g. the optimizer's Result.RoundDeadline).
	RoundDeadline float64
}

// RoundRecord is the accounting of one simulated global round.
type RoundRecord struct {
	// Time is the realized round time max_n(T_cmp_n + T_up_n).
	Time float64
	// Energy is the realized energy of the round across devices.
	Energy float64
	// Violated reports whether the round exceeded the configured deadline.
	Violated bool
}

// Summary aggregates a campaign replay.
type Summary struct {
	// Rounds is the number of simulated global rounds.
	Rounds int
	// TotalEnergy and TotalTime are the realized campaign totals.
	TotalEnergy, TotalTime float64
	// MeanRoundTime and P95RoundTime describe the round-time distribution.
	MeanRoundTime, P95RoundTime float64
	// Violations counts rounds that exceeded the configured deadline.
	Violations int
	// Records holds the per-round detail (length Rounds).
	Records []RoundRecord
}

// ViolationRate returns the fraction of rounds exceeding the deadline.
func (s Summary) ViolationRate() float64 {
	if s.Rounds == 0 {
		return 0
	}
	return float64(s.Violations) / float64(s.Rounds)
}

// Run replays the campaign under the fading configuration.
func Run(s *fl.System, a fl.Allocation, cfg Config, rng *rand.Rand) (Summary, error) {
	if err := s.Check(); err != nil {
		return Summary{}, err
	}
	if err := s.Validate(a, 1e-6); err != nil {
		return Summary{}, fmt.Errorf("sim: allocation: %w", err)
	}
	if !(cfg.NakagamiM > 0) && !math.IsInf(cfg.NakagamiM, 1) {
		return Summary{}, fmt.Errorf("sim: NakagamiM = %g: %w", cfg.NakagamiM, ErrBadInput)
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = int(s.GlobalRounds)
	}
	if rounds <= 0 {
		return Summary{}, fmt.Errorf("sim: no rounds: %w", ErrBadInput)
	}

	// Per-device static parts.
	n := s.N()
	compTime := make([]float64, n)
	compEnergy := make([]float64, n)
	for i := range s.Devices {
		compTime[i] = s.CompTimeRound(i, a.Freq[i])
		compEnergy[i] = s.CompEnergyRound(i, a.Freq[i])
	}

	sum := Summary{Rounds: rounds, Records: make([]RoundRecord, rounds)}
	times := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		var rec RoundRecord
		for i, d := range s.Devices {
			fade := numeric.NakagamiPowerFade(rng, cfg.NakagamiM)
			g := d.Gain * fade
			rate := wireless.Rate(a.Power[i], a.Bandwidth[i], g, s.N0)
			var up float64
			if rate > 0 {
				up = d.UploadBits / rate
			} else {
				up = math.Inf(1)
			}
			if t := compTime[i] + up; t > rec.Time {
				rec.Time = t
			}
			rec.Energy += compEnergy[i] + a.Power[i]*up
		}
		if cfg.RoundDeadline > 0 && rec.Time > cfg.RoundDeadline*(1+1e-9) {
			rec.Violated = true
			sum.Violations++
		}
		sum.Records[r] = rec
		sum.TotalEnergy += rec.Energy
		sum.TotalTime += rec.Time
		times[r] = rec.Time
	}
	sort.Float64s(times)
	sum.MeanRoundTime = sum.TotalTime / float64(rounds)
	idx := int(math.Ceil(0.95*float64(rounds))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= rounds {
		idx = rounds - 1
	}
	sum.P95RoundTime = times[idx]
	return sum, nil
}
