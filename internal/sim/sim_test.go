package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/wireless"
)

func newTestSystem(n int, seed int64) *fl.System {
	rng := rand.New(rand.NewSource(seed))
	pl := wireless.DefaultPathLoss()
	devs := make([]fl.Device, n)
	for i := range devs {
		devs[i] = fl.Device{
			Samples:         500,
			CyclesPerSample: (1 + 2*rng.Float64()) * 1e4,
			UploadBits:      28.1e3,
			Gain:            pl.SampleGain(rng, wireless.UniformDiskDistanceKm(rng, 0.25)),
			FMin:            1e7,
			FMax:            2e9,
			PMin:            wireless.DBmToWatt(0),
			PMax:            wireless.DBmToWatt(12),
		}
	}
	return &fl.System{
		Devices:      devs,
		Bandwidth:    20e6,
		N0:           wireless.NoisePSDWattPerHz(-174),
		Kappa:        1e-28,
		LocalIters:   10,
		GlobalRounds: 400,
	}
}

// A static channel (m = inf) must reproduce the analytic model exactly.
func TestStaticChannelMatchesModel(t *testing.T) {
	s := newTestSystem(8, 1)
	res, err := core.Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(s, res.Allocation, Config{NakagamiM: math.Inf(1)}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if rel(sum.TotalEnergy, m.TotalEnergy) > 1e-9 {
		t.Errorf("energy %g vs model %g", sum.TotalEnergy, m.TotalEnergy)
	}
	if rel(sum.TotalTime, m.TotalTime) > 1e-9 {
		t.Errorf("time %g vs model %g", sum.TotalTime, m.TotalTime)
	}
	if sum.Violations != 0 {
		t.Errorf("static channel produced %d violations without a deadline", sum.Violations)
	}
}

// Stronger fading (smaller m) must produce more deadline violations and
// more realized energy (Jensen: upload time is convex in the fade).
func TestFadingSeverityMonotonicity(t *testing.T) {
	s := newTestSystem(10, 3)
	res, err := core.Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfgBase := Config{Rounds: 2000, RoundDeadline: res.RoundDeadline}
	var prevViol float64 = -1
	var prevEnergy float64
	for _, m := range []float64{math.Inf(1), 8, 2, 1} {
		cfg := cfgBase
		cfg.NakagamiM = m
		sum, err := Run(s, res.Allocation, cfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if sum.ViolationRate() < prevViol-0.02 {
			t.Errorf("m=%g: violation rate %g fell below the milder channel's %g",
				m, sum.ViolationRate(), prevViol)
		}
		if prevEnergy > 0 && sum.TotalEnergy < prevEnergy*0.98 {
			t.Errorf("m=%g: energy %g fell below the milder channel's %g", m, sum.TotalEnergy, prevEnergy)
		}
		prevViol = sum.ViolationRate()
		prevEnergy = sum.TotalEnergy
	}
	// Rayleigh must actually violate a deadline sized for the mean channel.
	if prevViol == 0 {
		t.Error("Rayleigh fading produced zero violations at the static-optimal deadline")
	}
}

func TestSummaryStatistics(t *testing.T) {
	s := newTestSystem(5, 4)
	res, err := core.Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(s, res.Allocation, Config{NakagamiM: 4, Rounds: 500}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rounds != 500 || len(sum.Records) != 500 {
		t.Fatalf("rounds %d records %d", sum.Rounds, len(sum.Records))
	}
	if sum.P95RoundTime < sum.MeanRoundTime {
		t.Errorf("p95 %g below mean %g", sum.P95RoundTime, sum.MeanRoundTime)
	}
	var total float64
	for _, r := range sum.Records {
		total += r.Time
	}
	if rel(total, sum.TotalTime) > 1e-12 {
		t.Errorf("record times %g != total %g", total, sum.TotalTime)
	}
}

func TestRunValidation(t *testing.T) {
	s := newTestSystem(3, 5)
	a := s.MaxResourceAllocation()
	if _, err := Run(s, a, Config{NakagamiM: 0}, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadInput) {
		t.Errorf("m=0: want ErrBadInput, got %v", err)
	}
	bad := a.Clone()
	bad.Power[0] = -1
	if _, err := Run(s, bad, Config{NakagamiM: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid allocation accepted")
	}
	zeroRounds := *s
	zeroRounds.GlobalRounds = 0
	if _, err := Run(&zeroRounds, a, Config{NakagamiM: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	s := newTestSystem(4, 6)
	a := s.MaxResourceAllocation()
	s1, err := Run(s, a, Config{NakagamiM: 2, Rounds: 50}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Run(s, a, Config{NakagamiM: 2, Rounds: 50}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if s1.TotalEnergy != s2.TotalEnergy || s1.TotalTime != s2.TotalTime {
		t.Error("same seed should give identical replays")
	}
}

func rel(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}
