package fedavg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSyntheticLogisticShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, w := SyntheticLogistic(rng, 200, 5, 0)
	if ds.Len() != 200 {
		t.Fatalf("len = %d", ds.Len())
	}
	if len(w) != 6 {
		t.Fatalf("weights = %d, want dim+1", len(w))
	}
	for i, x := range ds.X {
		if len(x) != 6 {
			t.Fatalf("x[%d] dim = %d", i, len(x))
		}
		if x[5] != 1 {
			t.Fatalf("x[%d] bias = %g", i, x[5])
		}
		if ds.Y[i] != 0 && ds.Y[i] != 1 {
			t.Fatalf("label %g", ds.Y[i])
		}
	}
}

func TestSplitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds, _ := SyntheticLogistic(rng, 100, 3, 0)
	shards, err := SplitEqual(ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sh := range shards {
		total += sh.Len()
		if sh.Len() < 100/7 || sh.Len() > 100/7+1 {
			t.Errorf("shard size %d not near-equal", sh.Len())
		}
	}
	if total != 100 {
		t.Errorf("total %d", total)
	}
	if _, err := SplitEqual(ds, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("parts=0: want ErrBadConfig, got %v", err)
	}
	if _, err := SplitEqual(ds, 101); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too many parts: want ErrBadConfig, got %v", err)
	}
}

func TestLossGradientConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, _ := SyntheticLogistic(rng, 50, 4, 0.05)
	m := NewModel(5)
	for j := range m.W {
		m.W[j] = rng.NormFloat64() * 0.3
	}
	g := m.Gradient(ds)
	// Finite-difference check.
	const h = 1e-6
	for j := range m.W {
		mp := m.Clone()
		mp.W[j] += h
		mm := m.Clone()
		mm.W[j] -= h
		fd := (mp.Loss(ds) - mm.Loss(ds)) / (2 * h)
		if math.Abs(fd-g[j]) > 1e-5*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %g, FD %g", j, g[j], fd)
		}
	}
}

func TestLossNonNegativeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, _ := SyntheticLogistic(rng, 30, 3, 0.1)
		m := NewModel(4)
		for j := range m.W {
			m.W[j] = rng.NormFloat64() * 2
		}
		return m.Loss(ds) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTrainReducesLossAndLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, _ := SyntheticLogistic(rng, 600, 4, 0.02)
	shards, err := SplitEqual(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LocalIters: 5, GlobalRounds: 40, LearningRate: 0.5, Dim: 5}
	hookCalls := 0
	res, err := Train(cfg, shards, func(round int, m Model) { hookCalls++ })
	if err != nil {
		t.Fatal(err)
	}
	if hookCalls != cfg.GlobalRounds {
		t.Errorf("hook called %d times, want %d", hookCalls, cfg.GlobalRounds)
	}
	first, last := res.GlobalLoss[0], res.GlobalLoss[len(res.GlobalLoss)-1]
	if last >= first {
		t.Errorf("loss did not decrease: %g -> %g", first, last)
	}
	// Labels are Bernoulli draws from the true model, so compare against the
	// Bayes-optimal accuracy of the generator rather than a fixed bar.
	rng2 := rand.New(rand.NewSource(4))
	_, trueW := SyntheticLogistic(rng2, 1, 4, 0.02) // same seed => same true weights
	bayes := Model{W: trueW}.Accuracy(ds)
	if acc := res.Model.Accuracy(ds); acc < bayes-0.05 {
		t.Errorf("accuracy %g more than 5pp below the Bayes model's %g", acc, bayes)
	}
}

func TestTrainMatchesCentralizedWithOneShardOneIter(t *testing.T) {
	// FedAvg with a single shard and LocalIters=1 is plain gradient descent.
	rng := rand.New(rand.NewSource(5))
	ds, _ := SyntheticLogistic(rng, 100, 3, 0)
	cfg := Config{LocalIters: 1, GlobalRounds: 15, LearningRate: 0.3, Dim: 4}
	fed, err := Train(cfg, []Dataset{ds}, nil)
	if err != nil {
		t.Fatal(err)
	}
	manual := NewModel(4)
	for k := 0; k < 15; k++ {
		g := manual.Gradient(ds)
		for j := range manual.W {
			manual.W[j] -= 0.3 * g[j]
		}
	}
	for j := range manual.W {
		if math.Abs(manual.W[j]-fed.Model.W[j]) > 1e-12 {
			t.Fatalf("w[%d]: fed %g vs manual %g", j, fed.Model.W[j], manual.W[j])
		}
	}
}

func TestTrainWeightedAggregation(t *testing.T) {
	// Two shards of different sizes: the aggregate must weight by D_n/D.
	rng := rand.New(rand.NewSource(6))
	ds, _ := SyntheticLogistic(rng, 90, 2, 0)
	big := Dataset{X: ds.X[:60], Y: ds.Y[:60]}
	small := Dataset{X: ds.X[60:], Y: ds.Y[60:]}
	cfg := Config{LocalIters: 2, GlobalRounds: 1, LearningRate: 0.1, Dim: 3}
	res, err := Train(cfg, []Dataset{big, small}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute by hand.
	local := func(sh Dataset) Model {
		m := NewModel(3)
		for it := 0; it < 2; it++ {
			g := m.Gradient(sh)
			for j := range m.W {
				m.W[j] -= 0.1 * g[j]
			}
		}
		return m
	}
	lb, ls := local(big), local(small)
	for j := 0; j < 3; j++ {
		want := (60*lb.W[j] + 30*ls.W[j]) / 90
		if math.Abs(res.Model.W[j]-want) > 1e-12 {
			t.Errorf("w[%d] = %g, want %g", j, res.Model.W[j], want)
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds, _ := SyntheticLogistic(rng, 20, 2, 0)
	good := Config{LocalIters: 1, GlobalRounds: 1, LearningRate: 0.1, Dim: 3}
	for _, bad := range []Config{
		{LocalIters: 0, GlobalRounds: 1, LearningRate: 0.1, Dim: 3},
		{LocalIters: 1, GlobalRounds: 0, LearningRate: 0.1, Dim: 3},
		{LocalIters: 1, GlobalRounds: 1, LearningRate: 0, Dim: 3},
		{LocalIters: 1, GlobalRounds: 1, LearningRate: 0.1, Dim: 0},
	} {
		if _, err := Train(bad, []Dataset{ds}, nil); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %+v: want ErrBadConfig, got %v", bad, err)
		}
	}
	if _, err := Train(good, nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no shards: want ErrBadConfig, got %v", err)
	}
	wrongDim := Dataset{X: [][]float64{{1, 2}}, Y: []float64{1}}
	if _, err := Train(good, []Dataset{wrongDim}, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("wrong dim: want ErrBadConfig, got %v", err)
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %g", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %g", s)
	}
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %g", s)
	}
	if l := logistic1p(1000); l != 1000 {
		t.Errorf("logistic1p(1000) = %g", l)
	}
	if l := logistic1p(-1000); l != 0 {
		t.Errorf("logistic1p(-1000) = %g", l)
	}
}
