package fedavg

import "fmt"

// Config parameterizes FedAvg training. LocalIters and GlobalRounds mirror
// the paper's R_l and R_g.
type Config struct {
	// LocalIters is R_l, full-batch gradient steps per device per round.
	LocalIters int
	// GlobalRounds is R_g, the number of aggregation rounds.
	GlobalRounds int
	// LearningRate is the local gradient step size.
	LearningRate float64
	// Dim is the model dimension (features + bias).
	Dim int
}

func (c Config) check() error {
	if c.LocalIters <= 0 || c.GlobalRounds <= 0 || c.LearningRate <= 0 || c.Dim <= 0 {
		return fmt.Errorf("fedavg: config %+v has non-positive field: %w", c, ErrBadConfig)
	}
	return nil
}

// RoundHook is invoked after every global round with the round index and
// the fresh global model; examples use it to charge per-round energy/time.
type RoundHook func(round int, global Model)

// TrainResult reports a completed FedAvg run.
type TrainResult struct {
	// Model is the final global model.
	Model Model
	// GlobalLoss traces the D_n/D-weighted training loss after each round.
	GlobalLoss []float64
}

// Train runs FedAvg (the paper's Fig. 1 loop): each round, every device
// performs LocalIters full-batch gradient steps from the current global
// model — note each local iteration uses all D_n samples, matching the
// energy model's c_n*D_n cycles — and the server aggregates parameters
// weighted by D_n/D.
func Train(cfg Config, shards []Dataset, hook RoundHook) (TrainResult, error) {
	if err := cfg.check(); err != nil {
		return TrainResult{}, err
	}
	if len(shards) == 0 {
		return TrainResult{}, fmt.Errorf("fedavg: no shards: %w", ErrBadConfig)
	}
	var total float64
	for i, sh := range shards {
		if sh.Len() == 0 {
			return TrainResult{}, fmt.Errorf("fedavg: shard %d empty: %w", i, ErrBadConfig)
		}
		if len(sh.X[0]) != cfg.Dim {
			return TrainResult{}, fmt.Errorf("fedavg: shard %d dimension %d != %d: %w", i, len(sh.X[0]), cfg.Dim, ErrBadConfig)
		}
		total += float64(sh.Len())
	}

	global := NewModel(cfg.Dim)
	res := TrainResult{GlobalLoss: make([]float64, 0, cfg.GlobalRounds)}
	for round := 0; round < cfg.GlobalRounds; round++ {
		agg := make([]float64, cfg.Dim)
		for _, sh := range shards {
			local := global.Clone()
			for it := 0; it < cfg.LocalIters; it++ {
				g := local.Gradient(sh)
				for j := range local.W {
					local.W[j] -= cfg.LearningRate * g[j]
				}
			}
			wgt := float64(sh.Len()) / total
			for j := range agg {
				agg[j] += wgt * local.W[j]
			}
		}
		global = Model{W: agg}
		var loss float64
		for _, sh := range shards {
			loss += float64(sh.Len()) / total * global.Loss(sh)
		}
		res.GlobalLoss = append(res.GlobalLoss, loss)
		if hook != nil {
			hook(round, global)
		}
	}
	res.Model = global
	return res, nil
}
