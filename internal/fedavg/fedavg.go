// Package fedavg implements the FedAvg training loop of McMahan et al. that
// the paper's system model assumes (Section III): every device runs R_l
// full-batch local iterations per global round, uploads its parameters, and
// the base station aggregates them weighted by dataset size D_n/D.
//
// The paper itself treats R_l and R_g as exogenous constants and reports no
// accuracy numbers; this package exists so the examples can tie the resource
// allocation to a live training process (synthetic logistic regression) and
// so tests can verify the aggregation semantics the energy model charges
// for.
package fedavg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadConfig flags invalid training configuration.
var ErrBadConfig = errors.New("fedavg: bad configuration")

// Dataset is a labelled design matrix for binary classification with labels
// in {0, 1}.
type Dataset struct {
	// X holds one feature vector per row.
	X [][]float64
	// Y holds the labels, one per row of X.
	Y []float64
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.X) }

// SyntheticLogistic draws n samples of dimension dim from a ground-truth
// logistic model with standard-normal features, returning the dataset and
// the true weight vector (including a bias as the last coordinate).
// labelNoise in [0, 0.5) flips each label independently with that
// probability.
func SyntheticLogistic(rng *rand.Rand, n, dim int, labelNoise float64) (Dataset, []float64) {
	w := make([]float64, dim+1)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	ds := Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, dim+1)
		for j := 0; j < dim; j++ {
			x[j] = rng.NormFloat64()
		}
		x[dim] = 1 // bias feature
		z := dot(w, x)
		p := sigmoid(z)
		y := 0.0
		if rng.Float64() < p {
			y = 1
		}
		if rng.Float64() < labelNoise {
			y = 1 - y
		}
		ds.X[i] = x
		ds.Y[i] = y
	}
	return ds, w
}

// SplitEqual partitions ds into parts contiguous shards of (near) equal
// size, mimicking the paper's equal-data setting.
func SplitEqual(ds Dataset, parts int) ([]Dataset, error) {
	if parts <= 0 || ds.Len() < parts {
		return nil, fmt.Errorf("fedavg: cannot split %d samples into %d parts: %w", ds.Len(), parts, ErrBadConfig)
	}
	out := make([]Dataset, parts)
	n := ds.Len()
	for p := 0; p < parts; p++ {
		lo := p * n / parts
		hi := (p + 1) * n / parts
		out[p] = Dataset{X: ds.X[lo:hi], Y: ds.Y[lo:hi]}
	}
	return out, nil
}

// Model is a logistic-regression parameter vector.
type Model struct {
	// W is the weight vector (bias folded in as the last coordinate).
	W []float64
}

// NewModel returns a zero-initialized model of the given dimension.
func NewModel(dim int) Model { return Model{W: make([]float64, dim)} }

// Clone deep-copies the model.
func (m Model) Clone() Model {
	w := make([]float64, len(m.W))
	copy(w, m.W)
	return Model{W: w}
}

// Loss returns the mean logistic loss of the model on ds (the paper's
// l_n(w), eq. in Section III).
func (m Model) Loss(ds Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	for i, x := range ds.X {
		z := dot(m.W, x)
		// Numerically stable: log(1+e^z) - y*z.
		sum += logistic1p(z) - ds.Y[i]*z
	}
	return sum / float64(ds.Len())
}

// Gradient returns the gradient of Loss on ds.
func (m Model) Gradient(ds Dataset) []float64 {
	g := make([]float64, len(m.W))
	if ds.Len() == 0 {
		return g
	}
	for i, x := range ds.X {
		e := sigmoid(dot(m.W, x)) - ds.Y[i]
		for j, xj := range x {
			g[j] += e * xj
		}
	}
	inv := 1 / float64(ds.Len())
	for j := range g {
		g[j] *= inv
	}
	return g
}

// Accuracy returns the 0/1 accuracy of the model on ds.
func (m Model) Accuracy(ds Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		pred := 0.0
		if dot(m.W, x) > 0 {
			pred = 1
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// logistic1p computes log(1 + e^z) stably.
func logistic1p(z float64) float64 {
	if z > 0 {
		return z + math.Log1p(math.Exp(-z))
	}
	return math.Log1p(math.Exp(z))
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
