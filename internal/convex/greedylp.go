package convex

import (
	"fmt"
	"sort"
)

// GreedyLP solves the separable linear program
//
//	min  sum_i c_i x_i
//	s.t. lo_i <= x_i <= hi_i,  sum_i x_i <= budget
//
// exactly: every variable starts at its lower bound; variables with negative
// cost are raised toward their upper bound in order of increasing cost until
// the budget is exhausted. This is the structure of the paper's problem
// (A.6) (residual bandwidth allocation across devices whose rate constraint
// is slack).
//
// It returns ErrInfeasible when sum lo_i > budget.
func GreedyLP(c, lo, hi []float64, budget float64) ([]float64, error) {
	n := len(c)
	if len(lo) != n || len(hi) != n {
		return nil, fmt.Errorf("convex: GreedyLP length mismatch (%d,%d,%d)", n, len(lo), len(hi))
	}
	x := make([]float64, n)
	used := 0.0
	for i := 0; i < n; i++ {
		if lo[i] > hi[i] {
			return nil, fmt.Errorf("convex: GreedyLP box %d reversed [%g,%g]: %w", i, lo[i], hi[i], ErrInfeasible)
		}
		x[i] = lo[i]
		used += lo[i]
	}
	if used > budget*(1+1e-12)+1e-18 {
		return nil, fmt.Errorf("convex: GreedyLP lower bounds %g exceed budget %g: %w", used, budget, ErrInfeasible)
	}
	remaining := budget - used

	// Raise the cheapest (most negative cost) variables first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return c[order[a]] < c[order[b]] })
	for _, i := range order {
		if c[i] >= 0 || remaining <= 0 {
			break
		}
		room := hi[i] - x[i]
		if room > remaining {
			room = remaining
		}
		x[i] += room
		remaining -= room
	}
	return x, nil
}

// ProjectSimplex returns the Euclidean projection of v onto the scaled
// simplex {x : x_i >= 0, sum_i x_i = total}. It uses the standard O(n log n)
// threshold algorithm.
func ProjectSimplex(v []float64, total float64) []float64 {
	n := len(v)
	if n == 0 || total < 0 {
		return nil
	}
	u := make([]float64, n)
	copy(u, v)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	var cum, theta float64
	k := 0
	for i := 0; i < n; i++ {
		cum += u[i]
		t := (cum - total) / float64(i+1)
		if u[i]-t > 0 {
			k = i + 1
			theta = t
		}
	}
	if k == 0 { // all mass on the largest coordinate
		theta = (cum - total) / float64(n)
	}
	out := make([]float64, n)
	for i, vi := range v {
		d := vi - theta
		if d > 0 {
			out[i] = d
		}
	}
	return out
}
