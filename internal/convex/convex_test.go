package convex

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestMinimizeUnconstrainedQuadratic(t *testing.T) {
	// min (x-3)^2 + (y+1)^2 with loose boxes.
	p := Problem{
		Objective: func(x []float64) float64 {
			return (x[0]-3)*(x[0]-3) + (x[1]+1)*(x[1]+1)
		},
		Gradient: func(x, out []float64) {
			out[0] = 2 * (x[0] - 3)
			out[1] = 2 * (x[1] + 1)
		},
		Lower: []float64{-100, -100},
		Upper: []float64{100, 100},
	}
	x, err := Minimize(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-5) || !almostEq(x[1], -1, 1e-5) {
		t.Errorf("x = %v, want [3 -1]", x)
	}
}

func TestMinimizeActiveBox(t *testing.T) {
	// min (x-3)^2 with x <= 1: optimum at the boundary x=1.
	p := Problem{
		Objective: func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) },
		Gradient:  func(x, out []float64) { out[0] = 2 * (x[0] - 3) },
		Lower:     []float64{-10},
		Upper:     []float64{1},
	}
	x, err := Minimize(p, []float64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-4) {
		t.Errorf("x = %v, want 1", x)
	}
}

func TestMinimizeWithInequality(t *testing.T) {
	// min x+y s.t. x^2+y^2 <= 2: optimum (-1,-1).
	p := Problem{
		Objective: func(x []float64) float64 { return x[0] + x[1] },
		Gradient:  func(x, out []float64) { out[0], out[1] = 1, 1 },
		Ineqs: []Constraint{{
			F: func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] - 2 },
			Grad: func(x, out []float64) {
				out[0] = 2 * x[0]
				out[1] = 2 * x[1]
			},
		}},
	}
	x, err := Minimize(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], -1, 1e-4) || !almostEq(x[1], -1, 1e-4) {
		t.Errorf("x = %v, want [-1 -1]", x)
	}
}

func TestMinimizeCouplingBudget(t *testing.T) {
	// min 1/x + 4/y s.t. x + y <= 3, x,y > 0. Lagrangian: 1/x^2 = 4/y^2 = mu
	// => y = 2x, x = 1, y = 2.
	p := Problem{
		Objective: func(x []float64) float64 { return 1/x[0] + 4/x[1] },
		Gradient: func(x, out []float64) {
			out[0] = -1 / (x[0] * x[0])
			out[1] = -4 / (x[1] * x[1])
		},
		Ineqs: []Constraint{{
			F:    func(x []float64) float64 { return x[0] + x[1] - 3 },
			Grad: func(x, out []float64) { out[0], out[1] = 1, 1 },
		}},
		Lower: []float64{1e-9, 1e-9},
	}
	x, err := Minimize(p, []float64{0.5, 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-3) || !almostEq(x[1], 2, 1e-3) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestMinimizeRejectsInfeasibleStart(t *testing.T) {
	p := Problem{
		Objective: func(x []float64) float64 { return x[0] },
		Gradient:  func(x, out []float64) { out[0] = 1 },
		Lower:     []float64{0},
		Upper:     []float64{1},
	}
	if _, err := Minimize(p, []float64{2}, Options{}); !errors.Is(err, ErrNotStrictlyFeasible) {
		t.Errorf("want ErrNotStrictlyFeasible, got %v", err)
	}
	if _, err := Minimize(p, []float64{0}, Options{}); !errors.Is(err, ErrNotStrictlyFeasible) {
		t.Errorf("boundary start: want ErrNotStrictlyFeasible, got %v", err)
	}
}

func TestMinimizeEmptyStart(t *testing.T) {
	if _, err := Minimize(Problem{}, nil, Options{}); err == nil {
		t.Error("want error for empty start point")
	}
}

// TestMinimizeRandomQP validates against analytically solvable box QPs:
// min sum a_i (x_i - m_i)^2 over a box is clamping m to the box.
func TestMinimizeRandomQP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		a := make([]float64, n)
		m := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		x0 := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = 0.5 + rng.Float64()*4
			m[i] = rng.NormFloat64() * 3
			lo[i] = -2
			hi[i] = 2
			x0[i] = 0
		}
		p := Problem{
			Objective: func(x []float64) float64 {
				var s float64
				for i := range x {
					d := x[i] - m[i]
					s += a[i] * d * d
				}
				return s
			},
			Gradient: func(x, out []float64) {
				for i := range x {
					out[i] = 2 * a[i] * (x[i] - m[i])
				}
			},
			Lower: lo,
			Upper: hi,
		}
		x, err := Minimize(p, x0, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			want := math.Max(lo[i], math.Min(hi[i], m[i]))
			if !almostEq(x[i], want, 1e-3) {
				t.Errorf("trial %d: x[%d] = %g, want %g", trial, i, x[i], want)
			}
		}
	}
}

func TestGreedyLP(t *testing.T) {
	tests := []struct {
		name   string
		c      []float64
		lo, hi []float64
		budget float64
		want   []float64
	}{
		{
			name: "all negative, budget binds cheapest first",
			c:    []float64{-3, -1, -2},
			lo:   []float64{0, 0, 0},
			hi:   []float64{2, 2, 2},
			// order: idx0 (-3) gets 2, idx2 (-2) gets 1, idx1 gets 0
			budget: 3,
			want:   []float64{2, 0, 1},
		},
		{
			name:   "positive costs stay at lower bounds",
			c:      []float64{1, 2},
			lo:     []float64{0.5, 0.25},
			hi:     []float64{5, 5},
			budget: 10,
			want:   []float64{0.5, 0.25},
		},
		{
			name:   "budget slack, all negatives saturate",
			c:      []float64{-1, -1},
			lo:     []float64{0, 0},
			hi:     []float64{1, 1},
			budget: 10,
			want:   []float64{1, 1},
		},
		{
			name:   "zero cost not raised",
			c:      []float64{0, -1},
			lo:     []float64{0, 0},
			hi:     []float64{4, 4},
			budget: 5,
			want:   []float64{0, 4},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := GreedyLP(tc.c, tc.lo, tc.hi, tc.budget)
			if err != nil {
				t.Fatal(err)
			}
			for i := range tc.want {
				if !almostEq(got[i], tc.want[i], 1e-12) {
					t.Errorf("x[%d] = %g, want %g", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestGreedyLPInfeasible(t *testing.T) {
	_, err := GreedyLP([]float64{1}, []float64{5}, []float64{6}, 1)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
	_, err = GreedyLP([]float64{1}, []float64{5}, []float64{4}, 100)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("reversed box: want ErrInfeasible, got %v", err)
	}
}

// Property: GreedyLP output is feasible and no feasible single-coordinate
// perturbation improves the objective (exchange argument).
func TestGreedyLPOptimalityProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		var loSum float64
		for i := 0; i < n; i++ {
			c[i] = rng.NormFloat64()
			lo[i] = rng.Float64()
			hi[i] = lo[i] + rng.Float64()*3
			loSum += lo[i]
		}
		budget := loSum + rng.Float64()*4
		x, err := GreedyLP(c, lo, hi, budget)
		if err != nil {
			return false
		}
		var sum float64
		for i := range x {
			if x[i] < lo[i]-1e-12 || x[i] > hi[i]+1e-12 {
				return false
			}
			sum += x[i]
		}
		if sum > budget+1e-9 {
			return false
		}
		// Exchange check: moving mass from a higher-cost raised variable to
		// a lower-cost unsaturated one must not be possible.
		slack := budget - sum
		for i := 0; i < n; i++ {
			// Could we raise x[i] profitably with remaining slack?
			if c[i] < -1e-12 && x[i] < hi[i]-1e-9 && slack > 1e-9 {
				return false
			}
			for j := 0; j < n; j++ {
				if c[j] < c[i]-1e-9 && x[i] > lo[i]+1e-9 && x[j] < hi[j]-1e-9 && c[j] < 0 {
					return false // swap would strictly improve
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectSimplex(t *testing.T) {
	tests := []struct {
		name  string
		v     []float64
		total float64
		want  []float64
	}{
		{"already on simplex", []float64{0.5, 0.5}, 1, []float64{0.5, 0.5}},
		{"uniform shift", []float64{2, 2}, 1, []float64{0.5, 0.5}},
		{"clip negative", []float64{1, -5}, 1, []float64{1, 0}},
		{"scaled total", []float64{3, 1}, 8, []float64{5, 3}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := ProjectSimplex(tc.v, tc.total)
			for i := range tc.want {
				if !almostEq(got[i], tc.want[i], 1e-9) {
					t.Errorf("x[%d] = %g, want %g", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// Property: the projection lies on the simplex and is no farther from v than
// any random simplex point (projection optimality spot-check).
func TestProjectSimplexProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		total := 0.5 + rng.Float64()*5
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		x := ProjectSimplex(v, total)
		var sum float64
		for _, xi := range x {
			if xi < -1e-12 {
				return false
			}
			sum += xi
		}
		if !almostEq(sum, total, 1e-9) {
			return false
		}
		// Random competitor on the simplex.
		comp := make([]float64, n)
		var cs float64
		for i := range comp {
			comp[i] = rng.Float64()
			cs += comp[i]
		}
		for i := range comp {
			comp[i] *= total / cs
		}
		dx, dc := 0.0, 0.0
		for i := range v {
			dx += (x[i] - v[i]) * (x[i] - v[i])
			dc += (comp[i] - v[i]) * (comp[i] - v[i])
		}
		return dx <= dc+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
