// Package convex implements small-scale convex optimization routines:
//
//   - Minimize: a log-barrier interior-point method for smooth convex
//     programs with inequality and box constraints. The reproduction uses it
//     as an *independent oracle* to validate the closed-form KKT solvers
//     derived from the paper's appendices; it is deliberately generic and
//     derivative-light (finite-difference Hessians), trading speed for
//     trustworthiness.
//   - GreedyLP: exact solver for separable linear programs with box bounds
//     and one coupling budget constraint — the structure of problem (A.6).
//   - ProjectSimplex: Euclidean projection onto a scaled simplex, used by
//     tests of the Subproblem 1 dual.
package convex

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrInfeasible is returned when a solver can prove the instance infeasible.
var ErrInfeasible = errors.New("convex: infeasible problem")

// ErrNotStrictlyFeasible is returned when the starting point violates (or
// touches) an inequality, which the barrier method cannot recover from.
var ErrNotStrictlyFeasible = errors.New("convex: start point not strictly feasible")

// Constraint is a smooth convex inequality g(x) <= 0.
type Constraint struct {
	// F evaluates g(x).
	F func(x []float64) float64
	// Grad writes the gradient of g into out (len(out) == len(x)).
	Grad func(x, out []float64)
}

// Problem describes min f(x) s.t. g_i(x) <= 0, lo <= x <= hi.
type Problem struct {
	// Objective evaluates f(x).
	Objective func(x []float64) float64
	// Gradient writes grad f into out.
	Gradient func(x, out []float64)
	// Ineqs are the smooth inequality constraints.
	Ineqs []Constraint
	// Lower and Upper are optional elementwise box bounds; a nil slice means
	// unbounded on that side. Use math.Inf entries for per-coordinate holes.
	Lower, Upper []float64
}

// Options tunes Minimize. The zero value is replaced by defaults.
type Options struct {
	// MaxOuter bounds barrier continuation steps.
	MaxOuter int
	// MaxNewton bounds Newton iterations per barrier subproblem.
	MaxNewton int
	// TInit is the initial barrier weight t (objective scaled by t).
	TInit float64
	// TScale is the barrier growth factor per outer iteration.
	TScale float64
	// Tol is the duality-gap style stopping tolerance m/t < Tol.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxOuter <= 0 {
		o.MaxOuter = 60
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 80
	}
	if o.TInit <= 0 {
		o.TInit = 1
	}
	if o.TScale <= 1 {
		o.TScale = 8
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Minimize runs the barrier method from the strictly feasible point x0 and
// returns an approximate minimizer. It does not mutate x0.
func Minimize(p Problem, x0 []float64, opts Options) ([]float64, error) {
	opts = opts.withDefaults()
	n := len(x0)
	if n == 0 {
		return nil, errors.New("convex: empty start point")
	}
	x := linalg.CopyOf(x0)
	if err := checkStrict(p, x); err != nil {
		return nil, err
	}

	// Count barrier terms for the gap criterion.
	m := len(p.Ineqs)
	for i := 0; i < n; i++ {
		if lower(p, i) > math.Inf(-1) {
			m++
		}
		if upper(p, i) < math.Inf(1) {
			m++
		}
	}
	if m == 0 {
		m = 1
	}

	t := opts.TInit
	for outer := 0; outer < opts.MaxOuter; outer++ {
		if err := newtonCenter(p, x, t, opts.MaxNewton); err != nil {
			return nil, fmt.Errorf("convex: centering at t=%g: %w", t, err)
		}
		if float64(m)/t < opts.Tol {
			return x, nil
		}
		t *= opts.TScale
	}
	return x, nil
}

func lower(p Problem, i int) float64 {
	if p.Lower == nil {
		return math.Inf(-1)
	}
	return p.Lower[i]
}

func upper(p Problem, i int) float64 {
	if p.Upper == nil {
		return math.Inf(1)
	}
	return p.Upper[i]
}

func checkStrict(p Problem, x []float64) error {
	for i := range x {
		if x[i] <= lower(p, i) || x[i] >= upper(p, i) {
			return fmt.Errorf("convex: x[%d]=%g outside open box (%g,%g): %w",
				i, x[i], lower(p, i), upper(p, i), ErrNotStrictlyFeasible)
		}
	}
	for k, c := range p.Ineqs {
		if v := c.F(x); v >= 0 {
			return fmt.Errorf("convex: inequality %d = %g >= 0 at start: %w", k, v, ErrNotStrictlyFeasible)
		}
	}
	return nil
}

// barrierValue evaluates t*f(x) + phi(x), returning +Inf outside the domain.
func barrierValue(p Problem, x []float64, t float64) float64 {
	v := t * p.Objective(x)
	for i := range x {
		if lo := lower(p, i); lo > math.Inf(-1) {
			d := x[i] - lo
			if d <= 0 {
				return math.Inf(1)
			}
			v -= math.Log(d)
		}
		if hi := upper(p, i); hi < math.Inf(1) {
			d := hi - x[i]
			if d <= 0 {
				return math.Inf(1)
			}
			v -= math.Log(d)
		}
	}
	for _, c := range p.Ineqs {
		g := c.F(x)
		if g >= 0 {
			return math.Inf(1)
		}
		v -= math.Log(-g)
	}
	return v
}

// barrierGrad writes the gradient of the barrier-augmented objective.
func barrierGrad(p Problem, x []float64, t float64, out, scratch []float64) {
	p.Gradient(x, out)
	linalg.Scale(t, out)
	for i := range x {
		if lo := lower(p, i); lo > math.Inf(-1) {
			out[i] -= 1 / (x[i] - lo)
		}
		if hi := upper(p, i); hi < math.Inf(1) {
			out[i] += 1 / (hi - x[i])
		}
	}
	for _, c := range p.Ineqs {
		g := c.F(x)
		c.Grad(x, scratch)
		inv := -1 / g // g < 0 in the domain
		linalg.AXPY(inv, scratch, out)
	}
}

// newtonCenter minimizes the barrier subproblem at weight t in place.
func newtonCenter(p Problem, x []float64, t float64, maxIter int) error {
	n := len(x)
	grad := make([]float64, n)
	scratch := make([]float64, n)
	gPlus := make([]float64, n)
	gMinus := make([]float64, n)
	hess := linalg.NewDense(n, n)

	for iter := 0; iter < maxIter; iter++ {
		barrierGrad(p, x, t, grad, scratch)

		// Finite-difference Hessian of the barrier gradient (central).
		for i := 0; i < n; i++ {
			h := 1e-6 * (1 + math.Abs(x[i]))
			// Keep the probes inside the open domain.
			xi := x[i]
			x[i] = xi + h
			if barrierValue(p, x, t) == math.Inf(1) {
				x[i] = xi
				h = -h // probe inward only
				x[i] = xi + h
			}
			barrierGrad(p, x, t, gPlus, scratch)
			x[i] = xi - h
			if barrierValue(p, x, t) == math.Inf(1) {
				// One-sided difference from the feasible side.
				x[i] = xi
				barrierGrad(p, x, t, gMinus, scratch)
				for j := 0; j < n; j++ {
					hess.Set(i, j, (gPlus[j]-gMinus[j])/h)
				}
				continue
			}
			barrierGrad(p, x, t, gMinus, scratch)
			x[i] = xi
			for j := 0; j < n; j++ {
				hess.Set(i, j, (gPlus[j]-gMinus[j])/(2*h))
			}
		}
		hess.Symmetrize()

		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = -grad[i]
		}
		step, err := linalg.SolveSPD(hess, rhs)
		if err != nil {
			// Fall back to steepest descent when the FD Hessian is broken.
			step = rhs
		}

		// Newton decrement stopping rule.
		lambda2 := -linalg.Dot(grad, step)
		if lambda2 < 0 {
			// Not a descent direction (FD noise): use gradient.
			step = linalg.CopyOf(rhs)
			lambda2 = linalg.Dot(grad, grad)
		}
		if lambda2/2 < 1e-12 {
			return nil
		}

		// Backtracking line search keeping strict feasibility.
		f0 := barrierValue(p, x, t)
		alpha := 1.0
		const c1, shrink = 1e-4, 0.5
		improved := false
		for ls := 0; ls < 60; ls++ {
			trial := linalg.CopyOf(x)
			linalg.AXPY(alpha, step, trial)
			fv := barrierValue(p, trial, t)
			if fv < f0-c1*alpha*lambda2/2 || (fv < f0 && alpha < 1e-6) {
				copy(x, trial)
				improved = true
				break
			}
			alpha *= shrink
		}
		if !improved {
			return nil // stalled at (numerical) optimum
		}
	}
	return nil
}
