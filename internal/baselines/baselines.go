// Package baselines implements the comparison schemes of the paper's
// evaluation (Section VII):
//
//   - the random benchmark of Figs. 2-3 (random CPU frequency at full power,
//     or random transmit power at full frequency, with an equal bandwidth
//     split);
//   - communication-only optimization (fixed frequencies, optimized powers
//     and bandwidths) and computation-only optimization (fixed powers and
//     bandwidths, optimized frequencies) for Fig. 7;
//   - a Scheme 1 surrogate (Yang et al. [7]: energy minimization under a
//     hard deadline) for Fig. 8, reproduced as block-coordinate descent
//     without the joint sum-of-ratios treatment of (p, B) — the structural
//     weakness the paper exploits.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// ErrInfeasible is returned when a baseline cannot satisfy its deadline.
var ErrInfeasible = errors.New("baselines: infeasible configuration")

// RandomFreq is the benchmark of Fig. 2: each device draws its CPU frequency
// uniformly from [0.1, 2] GHz (clipped to its box), transmits at full power,
// and receives an equal bandwidth share B/N.
func RandomFreq(s *fl.System, rng *rand.Rand) fl.Allocation {
	a := fl.NewAllocation(s.N())
	frac := 1.0 / float64(s.N())
	for i, d := range s.Devices {
		f := 0.1e9 + rng.Float64()*(2e9-0.1e9)
		a.Freq[i] = numeric.Clamp(f, d.FMin, d.FMax)
		a.Power[i] = d.PMax
		a.Bandwidth[i] = s.Bandwidth * frac
	}
	return a
}

// RandomPower is the benchmark of Fig. 3: each device draws its transmit
// power uniformly (in dBm) between 0 and 12 dBm (clipped to its box), runs
// its CPU at full frequency, and receives an equal bandwidth share B/N.
func RandomPower(s *fl.System, rng *rand.Rand) fl.Allocation {
	a := fl.NewAllocation(s.N())
	frac := 1.0 / float64(s.N())
	for i, d := range s.Devices {
		p := wireless.DBmToWatt(12 * rng.Float64())
		a.Power[i] = numeric.Clamp(p, d.PMin, d.PMax)
		a.Freq[i] = d.FMax
		a.Bandwidth[i] = s.Bandwidth * frac
	}
	return a
}

// CommunicationOnly reproduces the "communication optimization only" scheme
// of Fig. 7: frequencies are fixed from the deadline split
// f_n = Rg*Rl*c_n*D_n / (T - Rg*max_m(d_m/r0_m)) — the value derived from
// constraint (9a) with initial rates r0 at p = PMax, B_n = B/(2N) — and only
// the transmission side (p, B) is optimized.
func CommunicationOnly(s *fl.System, totalDeadline float64) (fl.Allocation, error) {
	n := s.N()
	init := s.EqualSplitAllocation(0.5/float64(n), math.Inf(1), math.Inf(1))
	var maxUp float64
	for i := range s.Devices {
		if up := s.UploadTimeRound(i, init.Power[i], init.Bandwidth[i]); up > maxUp {
			maxUp = up
		}
	}
	compBudget := totalDeadline - s.GlobalRounds*maxUp
	if compBudget <= 0 {
		return fl.Allocation{}, fmt.Errorf("baselines: deadline %g leaves no computation budget: %w", totalDeadline, ErrInfeasible)
	}
	a := fl.NewAllocation(n)
	roundDeadline := totalDeadline / s.GlobalRounds
	rmin := make([]float64, n)
	for i, d := range s.Devices {
		f := s.GlobalRounds * s.LocalIters * d.CyclesPerIteration() / compBudget
		a.Freq[i] = numeric.Clamp(f, d.FMin, d.FMax)
		residual := roundDeadline - s.CompTimeRound(i, a.Freq[i])
		if residual <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: device %d has no upload window: %w", i, ErrInfeasible)
		}
		rmin[i] = d.UploadBits / residual
	}
	sp2, err := core.SolveSubproblem2Direct(s, s.GlobalRounds, rmin)
	if err != nil {
		return fl.Allocation{}, fmt.Errorf("baselines: CommunicationOnly transmission solve: %w", err)
	}
	copy(a.Power, sp2.Power)
	copy(a.Bandwidth, sp2.Bandwidth)
	return a, nil
}

// ComputationOnly reproduces the "computation optimization only" scheme of
// Fig. 7: transmission is fixed at p_n = PMax, B_n = B/(2N) (the setting the
// paper reports as strongest for this baseline), and only the CPU
// frequencies are optimized: the cheapest f_n meeting the deadline.
func ComputationOnly(s *fl.System, totalDeadline float64) (fl.Allocation, error) {
	n := s.N()
	a := s.EqualSplitAllocation(0.5/float64(n), math.Inf(1), math.Inf(1)) // p = PMax
	roundDeadline := totalDeadline / s.GlobalRounds
	for i, d := range s.Devices {
		up := s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
		residual := roundDeadline - up
		if residual <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: device %d upload alone exceeds the deadline: %w", i, ErrInfeasible)
		}
		need := s.LocalIters * d.CyclesPerIteration() / residual
		if need > d.FMax*(1+1e-9) {
			return fl.Allocation{}, fmt.Errorf("baselines: device %d needs %g Hz > FMax: %w", i, need, ErrInfeasible)
		}
		a.Freq[i] = numeric.Clamp(need, d.FMin, d.FMax)
	}
	return a, nil
}
