package baselines

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/numeric"
)

// SimplifiedShannon reproduces the bandwidth-allocation style the paper
// criticizes in ref. [3] (Section II-A): the noise term inside the Shannon
// logarithm is "forcefully assumed as a constant that does not scale with
// the allocated bandwidth". Under that approximation the rate is *linear*
// in B with a fixed per-device spectral efficiency
//
//	s_n = log2(1 + pmax*g_n / (N0 * B/N))      [evaluated at the equal split]
//
// so the bandwidth allocation trivializes to proportional division by the
// rate requirements — exactly the easy problem [3] solves. This routine
// runs the same outer loop as Algorithm 2 but replaces Subproblem 2 with
// that proportional rule (at full power, as the linearized model sees no
// bandwidth-power coupling to exploit). Evaluating the result under the
// exact Shannon formula quantifies the cost of the simplification (the
// ExtB ablation).
func SimplifiedShannon(s *fl.System, w fl.Weights) (fl.Allocation, error) {
	if err := s.Check(); err != nil {
		return fl.Allocation{}, err
	}
	if err := w.Check(); err != nil {
		return fl.Allocation{}, err
	}
	n := s.N()
	a := s.MaxResourceAllocation()

	// Fixed spectral efficiencies at the equal-split SNR.
	refNoise := s.N0 * s.Bandwidth / float64(n)
	se := make([]float64, n)
	for i, d := range s.Devices {
		se[i] = numeric.Log2p1(d.PMax * d.Gain / refNoise)
		if se[i] <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: device %d zero simplified efficiency: %w", i, ErrInfeasible)
		}
	}

	for iter := 0; iter < 8; iter++ {
		upTimes := make([]float64, n)
		for i := range upTimes {
			upTimes[i] = s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
		}
		sp1, err := core.SolveSubproblem1(s, w, upTimes)
		if err != nil {
			return fl.Allocation{}, fmt.Errorf("baselines: SimplifiedShannon SP1: %w", err)
		}
		copy(a.Freq, sp1.Freq)

		// Linear-rate bandwidth rule: B_n proportional to the bandwidth the
		// simplified model thinks meets the rate floor, scaled to spend B.
		var sum float64
		req := make([]float64, n)
		for i, d := range s.Devices {
			residual := sp1.RoundDeadline - s.CompTimeRound(i, a.Freq[i])
			if residual <= 0 {
				return fl.Allocation{}, fmt.Errorf("baselines: device %d no upload window: %w", i, ErrInfeasible)
			}
			req[i] = d.UploadBits / residual / se[i]
			sum += req[i]
		}
		if sum <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: degenerate simplified requirements: %w", ErrInfeasible)
		}
		scale := s.Bandwidth / sum
		prev := a.Clone()
		for i := range s.Devices {
			a.Bandwidth[i] = req[i] * scale
			a.Power[i] = s.Devices[i].PMax
		}
		if a.Distance(prev) <= 1e-9 {
			break
		}
	}
	// The proportional rule can leave a device short under the *true*
	// formula; the evaluation is still well-defined (its upload just takes
	// longer and the realized round time grows), which is precisely the
	// failure mode the ablation measures.
	return a, nil
}

// SimplifiedShannonDeadline is the fixed-deadline variant of
// SimplifiedShannon used by the ExtB ablation: frequencies fill the
// residual after the equal-split upload times, bandwidth follows the
// linear-rate proportional rule, and power stays at the cap (the linearized
// model sees no power-bandwidth coupling). The returned allocation is then
// judged under the exact Shannon formula.
func SimplifiedShannonDeadline(s *fl.System, totalDeadline float64) (fl.Allocation, error) {
	if err := s.Check(); err != nil {
		return fl.Allocation{}, err
	}
	n := s.N()
	roundDeadline := totalDeadline / s.GlobalRounds
	a := s.EqualSplitAllocation(1/float64(n), math.Inf(1), math.Inf(1)) // p = PMax, f = FMax

	refNoise := s.N0 * s.Bandwidth / float64(n)
	var sum float64
	req := make([]float64, n)
	for i, d := range s.Devices {
		up := s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
		residual := roundDeadline - up
		if residual <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: simplified device %d upload exceeds deadline: %w", i, ErrInfeasible)
		}
		need := s.LocalIters * d.CyclesPerIteration() / residual
		if need > d.FMax*(1+1e-9) {
			return fl.Allocation{}, fmt.Errorf("baselines: simplified device %d needs %g Hz: %w", i, need, ErrInfeasible)
		}
		a.Freq[i] = numeric.Clamp(need, d.FMin, d.FMax)
		se := numeric.Log2p1(d.PMax * d.Gain / refNoise)
		if se <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: simplified device %d zero efficiency: %w", i, ErrInfeasible)
		}
		uploadBudget := roundDeadline - s.CompTimeRound(i, a.Freq[i])
		req[i] = d.UploadBits / uploadBudget / se
		sum += req[i]
	}
	if sum <= 0 {
		return fl.Allocation{}, fmt.Errorf("baselines: simplified degenerate requirements: %w", ErrInfeasible)
	}
	scale := s.Bandwidth / sum
	for i := range s.Devices {
		a.Bandwidth[i] = req[i] * scale
	}
	return a, nil
}
