package baselines

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/wireless"
)

func newTestSystem(n int, seed int64) *fl.System {
	rng := rand.New(rand.NewSource(seed))
	pl := wireless.DefaultPathLoss()
	devs := make([]fl.Device, n)
	for i := range devs {
		devs[i] = fl.Device{
			Samples:         500,
			CyclesPerSample: (1 + 2*rng.Float64()) * 1e4,
			UploadBits:      28.1e3,
			Gain:            pl.SampleGain(rng, wireless.UniformDiskDistanceKm(rng, 0.5)),
			FMin:            1e7,
			FMax:            2e9,
			PMin:            wireless.DBmToWatt(0),
			PMax:            wireless.DBmToWatt(12),
		}
	}
	return &fl.System{
		Devices:      devs,
		Bandwidth:    20e6,
		N0:           wireless.NoisePSDWattPerHz(-174),
		Kappa:        1e-28,
		LocalIters:   10,
		GlobalRounds: 400,
	}
}

func TestRandomBenchmarksFeasible(t *testing.T) {
	s := newTestSystem(10, 1)
	rng := rand.New(rand.NewSource(2))
	a := RandomFreq(s, rng)
	if err := s.Validate(a, 1e-9); err != nil {
		t.Errorf("RandomFreq infeasible: %v", err)
	}
	for i, d := range s.Devices {
		if a.Power[i] != d.PMax {
			t.Errorf("RandomFreq power[%d] should be PMax", i)
		}
		if a.Freq[i] < 0.1e9-1 || a.Freq[i] > 2e9+1 {
			t.Errorf("RandomFreq f[%d] = %g outside [0.1, 2] GHz", i, a.Freq[i])
		}
	}
	b := RandomPower(s, rng)
	if err := s.Validate(b, 1e-9); err != nil {
		t.Errorf("RandomPower infeasible: %v", err)
	}
	for i, d := range s.Devices {
		if b.Freq[i] != d.FMax {
			t.Errorf("RandomPower f[%d] should be FMax", i)
		}
		if b.Power[i] < d.PMin || b.Power[i] > d.PMax {
			t.Errorf("RandomPower p[%d] outside box", i)
		}
	}
}

func TestRandomBenchmarkDeterministicInSeed(t *testing.T) {
	s := newTestSystem(5, 1)
	a1 := RandomFreq(s, rand.New(rand.NewSource(7)))
	a2 := RandomFreq(s, rand.New(rand.NewSource(7)))
	if a1.Distance(a2) != 0 {
		t.Error("same seed should give identical benchmark draws")
	}
}

// pickDeadline returns a total deadline scaled from the physical minimum.
func pickDeadline(t *testing.T, s *fl.System, factor float64) float64 {
	t.Helper()
	mt, err := core.SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	return factor * mt.RoundDeadline * s.GlobalRounds
}

func TestCommunicationOnly(t *testing.T) {
	s := newTestSystem(8, 3)
	total := pickDeadline(t, s, 4)
	a, err := CommunicationOnly(s, total)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(a, total/s.GlobalRounds, 1e-6); err != nil {
		t.Errorf("deadline violated: %v", err)
	}
}

func TestComputationOnly(t *testing.T) {
	s := newTestSystem(8, 3)
	total := pickDeadline(t, s, 4)
	a, err := ComputationOnly(s, total)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(a, total/s.GlobalRounds, 1e-6); err != nil {
		t.Errorf("deadline violated: %v", err)
	}
	// Transmission side must be untouched: p = PMax, B = B/(2N).
	for i, d := range s.Devices {
		if a.Power[i] != d.PMax {
			t.Errorf("power[%d] modified", i)
		}
		if relDiff(a.Bandwidth[i], s.Bandwidth/(2*float64(s.N()))) > 1e-12 {
			t.Errorf("bandwidth[%d] modified", i)
		}
	}
}

// Fig. 7's ordering: proposed <= communication-only <= computation-only in
// total energy at a common deadline.
func TestFig7Ordering(t *testing.T) {
	okProposed, okComm := 0, 0
	const trials = 6
	for seed := int64(1); seed <= trials; seed++ {
		s := newTestSystem(10, seed)
		// Factor 6 puts the system in the paper's Fig. 7 regime, where the
		// fixed transmission side of computation-only costs more than the
		// conservative frequency split of communication-only. At tighter
		// deadlines the computation term dominates and the two baselines
		// swap — the proposed scheme beats both in either regime (also
		// asserted below).
		total := pickDeadline(t, s, 6)
		prop, err := core.Optimize(s, fl.Weights{W1: 1, W2: 0},
			core.Options{Mode: core.ModeDeadline, TotalDeadline: total})
		if err != nil {
			t.Fatalf("seed %d proposed: %v", seed, err)
		}
		comm, err := CommunicationOnly(s, total)
		if err != nil {
			t.Fatalf("seed %d comm-only: %v", seed, err)
		}
		comp, err := ComputationOnly(s, total)
		if err != nil {
			t.Fatalf("seed %d comp-only: %v", seed, err)
		}
		eProp := prop.Metrics.TotalEnergy
		eComm := s.Evaluate(comm).TotalEnergy
		eComp := s.Evaluate(comp).TotalEnergy
		if eProp <= eComm*(1+1e-6) {
			okProposed++
		}
		if eComm <= eComp*(1+1e-6) {
			okComm++
		}
	}
	if okProposed < trials {
		t.Errorf("proposed beat communication-only in only %d/%d draws", okProposed, trials)
	}
	if okComm < trials-1 { // allow one draw where fixed-f hurts comm-only
		t.Errorf("communication-only beat computation-only in only %d/%d draws", okComm, trials)
	}
}

func TestScheme1FeasibleAndWorseThanProposed(t *testing.T) {
	wins := 0
	const trials = 6
	for seed := int64(1); seed <= trials; seed++ {
		s := newTestSystem(10, seed)
		total := pickDeadline(t, s, 2) // tight-ish deadline: the paper's gap regime
		sch, err := Scheme1(s, total, Scheme1Options{})
		if err != nil {
			t.Fatalf("seed %d scheme1: %v", seed, err)
		}
		if err := s.ValidateDeadline(sch, total/s.GlobalRounds, 1e-6); err != nil {
			t.Errorf("seed %d: Scheme1 deadline violated: %v", seed, err)
		}
		prop, err := core.Optimize(s, fl.Weights{W1: 1, W2: 0},
			core.Options{Mode: core.ModeDeadline, TotalDeadline: total})
		if err != nil {
			t.Fatalf("seed %d proposed: %v", seed, err)
		}
		if prop.Metrics.TotalEnergy <= s.Evaluate(sch).TotalEnergy*(1+1e-9) {
			wins++
		}
	}
	if wins < trials {
		t.Errorf("proposed beat Scheme 1 in only %d/%d draws", wins, trials)
	}
}

func TestBaselinesInfeasibleDeadlines(t *testing.T) {
	s := newTestSystem(6, 5)
	tiny := pickDeadline(t, s, 0.05)
	if _, err := ComputationOnly(s, tiny); !errors.Is(err, ErrInfeasible) {
		t.Errorf("ComputationOnly: want ErrInfeasible, got %v", err)
	}
	if _, err := Scheme1(s, tiny, Scheme1Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Scheme1: want ErrInfeasible, got %v", err)
	}
	if _, err := CommunicationOnly(s, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("CommunicationOnly: want ErrInfeasible, got %v", err)
	}
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}
