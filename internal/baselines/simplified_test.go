package baselines

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fl"
)

func TestSimplifiedShannonFeasible(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s := newTestSystem(10, seed)
		a, err := SimplifiedShannon(s, fl.Weights{W1: 0.5, W2: 0.5})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(a, 1e-6); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestSimplifiedShannonDeadlineWorseThanProposed(t *testing.T) {
	wins := 0
	const trials = 6
	for seed := int64(1); seed <= trials; seed++ {
		s := newTestSystem(10, seed)
		total := pickDeadline(t, s, 2)
		simp, err := SimplifiedShannonDeadline(s, total)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(simp, 1e-6); err != nil {
			t.Errorf("seed %d: simplified infeasible wrt boxes: %v", seed, err)
		}
		prop, err := core.Optimize(s, fl.Weights{W1: 1, W2: 0},
			core.Options{Mode: core.ModeDeadline, TotalDeadline: total})
		if err != nil {
			t.Fatalf("seed %d proposed: %v", seed, err)
		}
		if prop.Metrics.TotalEnergy <= s.Evaluate(simp).TotalEnergy*(1+1e-9) {
			wins++
		}
	}
	if wins < trials {
		t.Errorf("proposed beat the simplified rule in only %d/%d draws", wins, trials)
	}
}

func TestSimplifiedShannonRejectsBadInput(t *testing.T) {
	s := newTestSystem(3, 1)
	if _, err := SimplifiedShannon(s, fl.Weights{W1: 0.6, W2: 0.6}); err == nil {
		t.Error("bad weights accepted")
	}
	tiny := pickDeadline(t, s, 0.01)
	if _, err := SimplifiedShannonDeadline(s, tiny); !errors.Is(err, ErrInfeasible) {
		t.Errorf("tiny deadline: want ErrInfeasible, got %v", err)
	}
}
