package baselines

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// Scheme1Options tunes the Scheme 1 surrogate.
type Scheme1Options struct {
	// Sweeps is the number of block-coordinate sweeps (default 3, matching
	// the few outer iterations of [7]'s Algorithm 3).
	Sweeps int
}

// Scheme1 reproduces the state-of-the-art comparator of Fig. 8 — Yang et
// al. [7]: minimize total energy subject to a hard completion-time limit.
// The original solves its own convex formulation exactly but treats the
// coupled (p, B) pair through separate subproblems rather than the joint
// fractional treatment of this paper. We reproduce that structural
// restriction as block-coordinate descent from the paper's initial point
// (p = PMax, B = B/(2N)):
//
//	f-block: cheapest frequencies meeting the deadline;
//	B-block: bandwidth waterfilling at *fixed* powers;
//	p-block: cheapest powers meeting the rate floors at fixed bandwidths.
//
// Because the B-block prices bandwidth at the current powers instead of
// accounting for the power reduction extra bandwidth enables, its fixed
// point is suboptimal relative to the joint solution — most visibly under
// tight deadlines, which is exactly the regime where Fig. 8 reports the
// largest gap.
func Scheme1(s *fl.System, totalDeadline float64, opts Scheme1Options) (fl.Allocation, error) {
	if opts.Sweeps <= 0 {
		opts.Sweeps = 3
	}
	n := s.N()
	a := s.EqualSplitAllocation(0.5/float64(n), math.Inf(1), math.Inf(1)) // p = PMax, f = FMax
	roundDeadline := totalDeadline / s.GlobalRounds

	// Pre-repair: waterfill bandwidth at full power against the loosest
	// possible rate floors (f = FMax) so a device starved by the equal
	// split cannot block the deadline before the sweeps begin. ([7] seeds
	// its iteration from the delay-minimization solution of [14], which
	// plays the same role.)
	rmin := make([]float64, n)
	for i, d := range s.Devices {
		residual := roundDeadline - s.CompTimeRound(i, d.FMax)
		if residual <= 0 {
			return fl.Allocation{}, fmt.Errorf("baselines: Scheme1 device %d compute floor exceeds deadline: %w", i, ErrInfeasible)
		}
		rmin[i] = d.UploadBits / residual
	}
	if bands, err := waterfillFixedPower(s, a.Power, rmin); err == nil {
		copy(a.Bandwidth, bands)
	} else {
		return fl.Allocation{}, err
	}
	for sweep := 0; sweep < opts.Sweeps; sweep++ {
		// ---- f-block: cheapest feasible frequency.
		for i, d := range s.Devices {
			up := s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
			residual := roundDeadline - up
			if residual <= 0 {
				return fl.Allocation{}, fmt.Errorf("baselines: Scheme1 device %d upload exceeds deadline: %w", i, ErrInfeasible)
			}
			need := s.LocalIters * d.CyclesPerIteration() / residual
			if need > d.FMax*(1+1e-9) {
				return fl.Allocation{}, fmt.Errorf("baselines: Scheme1 device %d needs %g Hz: %w", i, need, ErrInfeasible)
			}
			a.Freq[i] = numeric.Clamp(need, d.FMin, d.FMax)
		}
		// Rate floors induced by the frequencies.
		for i, d := range s.Devices {
			residual := roundDeadline - s.CompTimeRound(i, a.Freq[i])
			if residual <= 0 {
				return fl.Allocation{}, fmt.Errorf("baselines: Scheme1 device %d has no upload window: %w", i, ErrInfeasible)
			}
			rmin[i] = d.UploadBits / residual
		}
		// ---- B-block: waterfill bandwidth at fixed powers.
		bands, err := waterfillFixedPower(s, a.Power, rmin)
		if err != nil {
			return fl.Allocation{}, err
		}
		copy(a.Bandwidth, bands)
		// ---- p-block: cheapest power meeting the floor at the new bands.
		for i, d := range s.Devices {
			p := wireless.PowerForRate(rmin[i], a.Bandwidth[i], d.Gain, s.N0)
			a.Power[i] = numeric.Clamp(p, d.PMin, d.PMax)
		}
	}
	return a, nil
}

// waterfillFixedPower allocates bandwidth minimizing sum_n p_n*d_n/G_n at
// fixed powers, subject to G_n >= rmin_n and sum B_n <= B. Transmission
// energy is convex decreasing in B at fixed p, so equalizing the marginal
// saving -dE/dB = p*d*G_B/G^2 across devices (with per-device floors) is
// optimal for this restricted block.
func waterfillFixedPower(s *fl.System, power, rmin []float64) ([]float64, error) {
	n := s.N()
	floors := make([]float64, n)
	var sumFloor float64
	for i, d := range s.Devices {
		b, err := wireless.BandwidthForRate(rmin[i], power[i], d.Gain, s.N0)
		if err != nil {
			return nil, fmt.Errorf("baselines: device %d cannot reach %g bit/s at p=%g: %w", i, rmin[i], power[i], ErrInfeasible)
		}
		floors[i] = b
		sumFloor += b
	}
	if sumFloor > s.Bandwidth*(1+1e-9) {
		return nil, fmt.Errorf("baselines: floors %g exceed B=%g: %w", sumFloor, s.Bandwidth, ErrInfeasible)
	}

	marginal := func(i int, b float64) float64 {
		d := s.Devices[i]
		g := wireless.Rate(power[i], b, d.Gain, s.N0)
		theta := power[i] * d.Gain / (s.N0 * b)
		gb := numeric.Log2p1(theta) - theta/((1+theta)*math.Ln2)
		return power[i] * d.UploadBits * gb / (g * g)
	}
	bandAt := func(i int, lambda float64) float64 {
		if marginal(i, floors[i]) <= lambda {
			return floors[i]
		}
		hi := floors[i] * 2
		for iter := 0; marginal(i, hi) > lambda; iter++ {
			hi *= 4
			if iter > 300 {
				return hi
			}
		}
		b, err := numeric.BisectDecreasing(func(b float64) float64 { return marginal(i, b) - lambda }, floors[i], hi, 1e-9*hi)
		if err != nil {
			return floors[i]
		}
		return b
	}
	demand := func(lambda float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += bandAt(i, lambda)
		}
		return sum
	}
	var lamHi float64
	for i := 0; i < n; i++ {
		if m := marginal(i, floors[i]); m > lamHi {
			lamHi = m
		}
	}
	if lamHi <= 0 {
		lamHi = 1
	}
	// Search against a slightly slackened budget: under tight deadlines the
	// floors sum to B within float error, and the exact budget may be
	// unattainable on either side of the bisection. The result is rescaled
	// back inside the true budget below.
	target := s.Bandwidth * (1 + 1e-9)
	lambda := lamHi
	lamLo := lamHi
	for demand(lamLo) <= target && lamLo > 1e-300 {
		lamLo /= 16
	}
	if demand(lamLo) > target {
		var err error
		lambda, err = numeric.BisectDecreasing(func(l float64) float64 { return demand(l) - target }, lamLo, lamHi, 0)
		if err != nil {
			return nil, fmt.Errorf("baselines: bandwidth waterfilling: %w", err)
		}
	}
	// Otherwise the floors fill the budget at every price: keep lamHi.
	bands := make([]float64, n)
	var sumB float64
	for i := 0; i < n; i++ {
		bands[i] = bandAt(i, lambda)
		sumB += bands[i]
	}
	if sumB > 0 {
		scale := s.Bandwidth / sumB
		if scale < 1 {
			for i := range bands {
				bands[i] = math.Max(bands[i]*scale, floors[i])
			}
		} else {
			for i := range bands {
				bands[i] *= scale
			}
		}
	}
	return bands, nil
}
