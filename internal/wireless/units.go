// Package wireless models the paper's single-cell uplink: dB/dBm unit
// conversions, the 3GPP-style path-loss law 128.1 + 37.6*log10(d_km) with
// 8 dB log-normal shadowing, uniform-disk device placement, and the exact
// Shannon rate G(p, B) = B*log2(1 + p*g/(N0*B)) together with its inverses
// (bandwidth-for-rate and power-for-rate).
//
// All quantities are SI internally: watts, hertz, seconds, bits. dBm and dB
// appear only at the API edges via the conversion helpers in this file.
package wireless

import "math"

// DBmToWatt converts a power level in dBm to watts.
func DBmToWatt(dbm float64) float64 {
	return math.Pow(10, dbm/10) * 1e-3
}

// WattToDBm converts a power in watts to dBm. Zero or negative input yields
// -Inf, matching the mathematical limit.
func WattToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(w*1e3)
}

// DBToLinear converts a gain/loss in dB to a linear ratio.
func DBToLinear(db float64) float64 {
	return math.Pow(10, db/10)
}

// LinearToDB converts a linear power ratio to dB. Zero or negative input
// yields -Inf.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// NoisePSDWattPerHz converts a noise power spectral density in dBm/Hz (the
// paper uses -174 dBm/Hz) to W/Hz.
func NoisePSDWattPerHz(dbmPerHz float64) float64 {
	return DBmToWatt(dbmPerHz)
}
