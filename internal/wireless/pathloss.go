package wireless

import (
	"math"
	"math/rand"
)

// PathLossModel is the log-distance path loss with log-normal shadowing used
// by the paper (Section VII-A): PL(dB) = RefDB + SlopeDB*log10(d_km), plus a
// zero-mean Gaussian shadowing term with standard deviation ShadowSigmaDB.
type PathLossModel struct {
	// RefDB is the intercept in dB at 1 km (paper: 128.1).
	RefDB float64
	// SlopeDB is the dB-per-decade distance slope (paper: 37.6).
	SlopeDB float64
	// ShadowSigmaDB is the shadow-fading standard deviation in dB (paper: 8).
	ShadowSigmaDB float64
	// MinDistanceKm clips distances below this floor so the model stays
	// finite for devices arbitrarily close to the base station (default 1 m).
	MinDistanceKm float64
}

// DefaultPathLoss returns the paper's channel parameters.
func DefaultPathLoss() PathLossModel {
	return PathLossModel{RefDB: 128.1, SlopeDB: 37.6, ShadowSigmaDB: 8, MinDistanceKm: 1e-3}
}

// LossDB returns the deterministic path loss in dB at distance dKm.
func (m PathLossModel) LossDB(dKm float64) float64 {
	minD := m.MinDistanceKm
	if minD <= 0 {
		minD = 1e-3
	}
	if dKm < minD {
		dKm = minD
	}
	return m.RefDB + m.SlopeDB*math.Log10(dKm)
}

// SampleGain draws a linear channel power gain at distance dKm including a
// shadowing realization from rng.
func (m PathLossModel) SampleGain(rng *rand.Rand, dKm float64) float64 {
	shadow := rng.NormFloat64() * m.ShadowSigmaDB
	return DBToLinear(-(m.LossDB(dKm) + shadow))
}

// MeanGain returns the linear gain at distance dKm without shadowing.
func (m PathLossModel) MeanGain(dKm float64) float64 {
	return DBToLinear(-m.LossDB(dKm))
}

// UniformDiskDistanceKm draws the distance of a point placed uniformly at
// random in a disk of the given radius (density proportional to r, hence the
// square root).
func UniformDiskDistanceKm(rng *rand.Rand, radiusKm float64) float64 {
	return radiusKm * math.Sqrt(rng.Float64())
}

// SampleGains draws n channel gains for devices placed uniformly in a disk
// of radius radiusKm around the base station.
func (m PathLossModel) SampleGains(rng *rand.Rand, n int, radiusKm float64) []float64 {
	gains := make([]float64, n)
	for i := range gains {
		gains[i] = m.SampleGain(rng, UniformDiskDistanceKm(rng, radiusKm))
	}
	return gains
}
