package wireless

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestUnitConversions(t *testing.T) {
	tests := []struct {
		dbm  float64
		watt float64
	}{
		{0, 1e-3},
		{30, 1},
		{10, 10e-3},
		{-174, 3.9810717055349565e-21},
		{12, 15.848931924611133e-3},
	}
	for _, tc := range tests {
		if got := DBmToWatt(tc.dbm); !almostEq(got, tc.watt, 1e-12) {
			t.Errorf("DBmToWatt(%g) = %g, want %g", tc.dbm, got, tc.watt)
		}
		if got := WattToDBm(tc.watt); !almostEq(got, tc.dbm, 1e-9) {
			t.Errorf("WattToDBm(%g) = %g, want %g", tc.watt, got, tc.dbm)
		}
	}
	if !math.IsInf(WattToDBm(0), -1) {
		t.Error("WattToDBm(0) should be -Inf")
	}
	if !math.IsInf(LinearToDB(-1), -1) {
		t.Error("LinearToDB(-1) should be -Inf")
	}
	if got := DBToLinear(3); !almostEq(got, 1.9952623149688795, 1e-12) {
		t.Errorf("DBToLinear(3) = %g", got)
	}
}

func TestUnitRoundTripProperty(t *testing.T) {
	check := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200)
		if math.IsNaN(dbm) {
			return true
		}
		return almostEq(WattToDBm(DBmToWatt(dbm)), dbm, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPathLoss(t *testing.T) {
	m := DefaultPathLoss()
	if got := m.LossDB(1); got != 128.1 {
		t.Errorf("LossDB(1km) = %g, want 128.1", got)
	}
	if got := m.LossDB(10); !almostEq(got, 128.1+37.6, 1e-12) {
		t.Errorf("LossDB(10km) = %g", got)
	}
	// Distance floor keeps gains finite.
	if got := m.LossDB(0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("LossDB(0) = %g, want finite", got)
	}
	if m.LossDB(0) != m.LossDB(1e-3) {
		t.Error("distances below the floor should clip to the floor")
	}
	// Mean gain decreases with distance.
	if m.MeanGain(0.1) <= m.MeanGain(1) {
		t.Error("gain should decrease with distance")
	}
}

func TestSampleGainStatistics(t *testing.T) {
	m := DefaultPathLoss()
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	var sumDB, sumSqDB float64
	for i := 0; i < n; i++ {
		g := m.SampleGain(rng, 0.5)
		db := -LinearToDB(g) // path loss + shadowing in dB
		sumDB += db
		sumSqDB += db * db
	}
	mean := sumDB / n
	std := math.Sqrt(sumSqDB/n - mean*mean)
	wantMean := m.LossDB(0.5)
	if math.Abs(mean-wantMean) > 0.2 {
		t.Errorf("mean loss = %g dB, want ~%g", mean, wantMean)
	}
	if math.Abs(std-8) > 0.2 {
		t.Errorf("shadowing std = %g dB, want ~8", std)
	}
}

func TestUniformDiskDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 50000
	radius := 2.0
	var inside float64
	for i := 0; i < n; i++ {
		d := UniformDiskDistanceKm(rng, radius)
		if d < 0 || d > radius {
			t.Fatalf("distance %g outside [0, %g]", d, radius)
		}
		if d <= radius/2 {
			inside++
		}
	}
	// P(d <= R/2) = 1/4 for uniform area density.
	if frac := inside / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("P(d<=R/2) = %g, want 0.25", frac)
	}
}

func TestSampleGains(t *testing.T) {
	m := DefaultPathLoss()
	rng := rand.New(rand.NewSource(3))
	gains := m.SampleGains(rng, 50, 0.5)
	if len(gains) != 50 {
		t.Fatalf("len = %d", len(gains))
	}
	for i, g := range gains {
		if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
			t.Errorf("gain[%d] = %g not a valid linear gain", i, g)
		}
	}
}

func TestRate(t *testing.T) {
	const n0 = 3.9810717055349565e-21 // -174 dBm/Hz
	g := 1e-11
	p := 0.01 // 10 dBm
	b := 4e5
	snr := p * g / (n0 * b)
	want := b * math.Log2(1+snr)
	if got := Rate(p, b, g, n0); !almostEq(got, want, 1e-12) {
		t.Errorf("Rate = %g, want %g", got, want)
	}
	// Continuous extensions.
	if Rate(p, 0, g, n0) != 0 {
		t.Error("Rate with B=0 should be 0")
	}
	if Rate(0, b, g, n0) != 0 {
		t.Error("Rate with p=0 should be 0")
	}
	if Rate(p, b, 0, n0) != 0 {
		t.Error("Rate with g=0 should be 0")
	}
}

func TestRateMonotoneAndConcaveInB(t *testing.T) {
	const n0 = 4e-21
	g, p := 1e-11, 0.01
	prev := 0.0
	prevDelta := math.Inf(1)
	for b := 1e4; b < 1e8; b *= 1.3 {
		r := Rate(p, b, g, n0)
		if r <= prev {
			t.Fatalf("rate not increasing in B at %g", b)
		}
		delta := r - prev
		_ = prevDelta
		prev = r
		prevDelta = delta
	}
	// Approaches but never exceeds the wideband limit.
	limit := RateLimit(p, g, n0)
	if prev >= limit {
		t.Errorf("rate %g exceeded limit %g", prev, limit)
	}
	if Rate(p, 1e15, g, n0) < 0.999*limit {
		t.Errorf("rate at huge B should approach limit")
	}
}

func TestPowerForRateRoundTrip(t *testing.T) {
	const n0 = 4e-21
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := math.Pow(10, -9-4*rng.Float64()) // 1e-13..1e-9
		b := 1e4 + rng.Float64()*1e7
		p := 1e-4 + rng.Float64()*0.02
		r := Rate(p, b, g, n0)
		back := PowerForRate(r, b, g, n0)
		return almostEq(back, p, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if PowerForRate(0, 1e6, 1e-11, n0) != 0 {
		t.Error("zero rate needs zero power")
	}
	if !math.IsInf(PowerForRate(1, 0, 1e-11, n0), 1) {
		t.Error("zero bandwidth with positive rate needs infinite power")
	}
}

func TestBandwidthForRateRoundTrip(t *testing.T) {
	const n0 = 4e-21
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := math.Pow(10, -9-4*rng.Float64())
		b := 1e4 + rng.Float64()*1e7
		p := 1e-4 + rng.Float64()*0.02
		r := Rate(p, b, g, n0)
		back, err := BandwidthForRate(r, p, g, n0)
		if err != nil {
			return false
		}
		return almostEq(back, b, 1e-6)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthForRateUnreachable(t *testing.T) {
	const n0 = 4e-21
	p, g := 0.01, 1e-11
	limit := RateLimit(p, g, n0)
	if _, err := BandwidthForRate(limit*1.01, p, g, n0); !errors.Is(err, ErrRateUnreachable) {
		t.Errorf("want ErrRateUnreachable, got %v", err)
	}
	if _, err := BandwidthForRate(limit, p, g, n0); !errors.Is(err, ErrRateUnreachable) {
		t.Errorf("rate at exactly the limit should be unreachable, got %v", err)
	}
	if b, err := BandwidthForRate(0, p, g, n0); err != nil || b != 0 {
		t.Errorf("zero rate: %g, %v", b, err)
	}
}

func TestSpectralEfficiency(t *testing.T) {
	const n0 = 4e-21
	p, g, b := 0.01, 1e-11, 1e6
	se := SpectralEfficiency(p, b, g, n0)
	if !almostEq(se, Rate(p, b, g, n0)/b, 1e-12) {
		t.Errorf("SpectralEfficiency = %g", se)
	}
	if SpectralEfficiency(p, 0, g, n0) != 0 {
		t.Error("zero bandwidth should give zero efficiency")
	}
}

// Lemma 1 of the paper: G(p, B) is jointly concave. Verify the Hessian is
// negative semidefinite at random points via the analytic form in Appendix A.
func TestRateConcavityLemma1(t *testing.T) {
	const n0 = 4e-21
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := math.Pow(10, -9-4*rng.Float64())
		p := 1e-4 + rng.Float64()*0.02
		b := 1e4 + rng.Float64()*1e7
		x1 := rng.NormFloat64()
		x2 := rng.NormFloat64()
		// Appendix A: x^T H x = -(x1*g*B - x2*g*p)^2 / (B^3 N0^2 (gp/(BN0)+1)^2 ln2)
		num := x1*g*b - x2*g*p
		quad := -(num * num) / (b * b * b * n0 * n0 * math.Pow(g*p/(b*n0)+1, 2) * math.Ln2)
		if quad > 1e-20 {
			return false
		}
		// Cross-check with finite differences of Rate along (x1, x2).
		eps := 1e-6
		f := func(s float64) float64 { return Rate(p+s*eps*x1*p, b+s*eps*x2*b, g, n0) }
		second := f(1) - 2*f(0) + f(-1)
		return second <= 1e-3*math.Abs(f(0))+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
