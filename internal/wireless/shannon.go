package wireless

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// ErrRateUnreachable is returned when a requested rate exceeds the wideband
// capacity limit p*g/(N0*ln2) and therefore cannot be met with any bandwidth.
var ErrRateUnreachable = errors.New("wireless: rate exceeds wideband capacity limit")

// Rate evaluates the exact Shannon rate (paper eq. (1)):
//
//	G(p, B) = B * log2(1 + p*g / (N0*B))   [bit/s]
//
// with the continuous extensions G(p, 0) = 0 and G(0, B) = 0. It never
// simplifies the noise term (the simplification in ref. [3] is exactly what
// the paper criticizes).
func Rate(p, bandwidth, gain, n0 float64) float64 {
	if bandwidth <= 0 || p <= 0 || gain <= 0 {
		return 0
	}
	snr := p * gain / (n0 * bandwidth)
	return bandwidth * numeric.Log2p1(snr)
}

// RateLimit returns lim_{B->inf} G(p, B) = p*g/(N0*ln2), the wideband
// capacity ceiling for a given power.
func RateLimit(p, gain, n0 float64) float64 {
	if p <= 0 || gain <= 0 {
		return 0
	}
	return p * gain / (n0 * math.Ln2)
}

// PowerForRate returns the transmit power that achieves exactly rate r on
// bandwidth B (the inverse of Rate in p, closed form):
//
//	p = (2^(r/B) - 1) * N0 * B / g
func PowerForRate(r, bandwidth, gain, n0 float64) float64 {
	if r <= 0 {
		return 0
	}
	if bandwidth <= 0 || gain <= 0 {
		return math.Inf(1)
	}
	return (math.Exp2(r/bandwidth) - 1) * n0 * bandwidth / gain
}

// BandwidthForRate returns the bandwidth B solving G(p, B) = r for fixed
// power p. G is strictly increasing and concave in B with limit
// RateLimit(p), so the solution exists iff r < RateLimit(p); otherwise
// ErrRateUnreachable is returned.
func BandwidthForRate(r, p, gain, n0 float64) (float64, error) {
	if r <= 0 {
		return 0, nil
	}
	limit := RateLimit(p, gain, n0)
	if r >= limit {
		return 0, fmt.Errorf("wireless: rate %g >= limit %g: %w", r, limit, ErrRateUnreachable)
	}
	f := func(b float64) float64 { return Rate(p, b, gain, n0) - r }
	// Lower bracket: at B = r the SNR is p*g/(N0*r); rate >= r iff
	// log2(1+snr) >= 1. Start from a bandwidth that certainly undershoots.
	lo := r / 40 // rate <= 40 bit/s/Hz is far above any physical efficiency here
	for f(lo) > 0 {
		lo /= 8
		if lo < 1e-30 {
			return 0, fmt.Errorf("wireless: BandwidthForRate bracket collapse for r=%g", r)
		}
	}
	hi, err := numeric.BracketUp(func(b float64) bool { return f(b) >= 0 }, math.Max(lo*2, r), 200)
	if err != nil {
		return 0, fmt.Errorf("wireless: BandwidthForRate: %w", err)
	}
	b, err := numeric.Brent(f, lo, hi, 1e-12*hi)
	if err != nil {
		return 0, fmt.Errorf("wireless: BandwidthForRate: %w", err)
	}
	return b, nil
}

// SpectralEfficiency returns r/B in bit/s/Hz for the pair (p, B).
func SpectralEfficiency(p, bandwidth, gain, n0 float64) float64 {
	if bandwidth <= 0 {
		return 0
	}
	return Rate(p, bandwidth, gain, n0) / bandwidth
}
