package fl

import (
	"fmt"
	"math"

	"repro/internal/wireless"
)

// Metrics is the full energy/latency accounting of an allocation, matching
// equations (1)–(7) of the paper.
type Metrics struct {
	// Rates holds r_n in bit/s.
	Rates []float64
	// UploadTimes holds T_up_n in seconds (per global round).
	UploadTimes []float64
	// CompTimes holds T_cmp_n in seconds (per global round, R_l iterations).
	CompTimes []float64
	// RoundTime is max_n (T_cmp_n + T_up_n) for one global round.
	RoundTime float64
	// TotalTime is R_g * RoundTime, the completion time T.
	TotalTime float64
	// TransEnergy is the transmission energy summed over devices and rounds.
	TransEnergy float64
	// CompEnergy is the computation energy summed over devices and rounds.
	CompEnergy float64
	// TotalEnergy is E = TransEnergy + CompEnergy.
	TotalEnergy float64
}

// Rate returns the Shannon rate of device n under the allocation.
func (s *System) Rate(n int, p, b float64) float64 {
	return wireless.Rate(p, b, s.Devices[n].Gain, s.N0)
}

// CompTimeRound returns T_cmp_n = R_l * c_n * D_n / f for one global round.
func (s *System) CompTimeRound(n int, f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return s.LocalIters * s.Devices[n].CyclesPerIteration() / f
}

// CompEnergyRound returns E_cmp_n = kappa * R_l * c_n * D_n * f^2 for one
// global round (equation (5)).
func (s *System) CompEnergyRound(n int, f float64) float64 {
	return s.Kappa * s.LocalIters * s.Devices[n].CyclesPerIteration() * f * f
}

// UploadTimeRound returns T_up_n = d_n / r_n for one global round, +Inf when
// the rate is zero (equation (2)).
func (s *System) UploadTimeRound(n int, p, b float64) float64 {
	r := s.Rate(n, p, b)
	if r <= 0 {
		return math.Inf(1)
	}
	return s.Devices[n].UploadBits / r
}

// TransEnergyRound returns E_trans_n = p_n * T_up_n for one global round
// (equation (3)).
func (s *System) TransEnergyRound(n int, p, b float64) float64 {
	return p * s.UploadTimeRound(n, p, b)
}

// Evaluate computes the complete Metrics for an allocation. It does not
// check feasibility; combine with Validate when needed.
func (s *System) Evaluate(a Allocation) Metrics {
	var m Metrics
	s.EvaluateInto(a, &m)
	return m
}

// EvaluateInto computes the complete Metrics into m, reusing its slice
// capacity when sufficient. Hot loops that re-evaluate every iteration (the
// optimizer's objective trace) use it to stay allocation-free.
func (s *System) EvaluateInto(a Allocation, m *Metrics) {
	n := s.N()
	m.Rates = growFloats(m.Rates, n)
	m.UploadTimes = growFloats(m.UploadTimes, n)
	m.CompTimes = growFloats(m.CompTimes, n)
	m.RoundTime, m.TransEnergy, m.CompEnergy = 0, 0, 0
	for i := 0; i < n; i++ {
		m.Rates[i] = s.Rate(i, a.Power[i], a.Bandwidth[i])
		m.UploadTimes[i] = s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
		m.CompTimes[i] = s.CompTimeRound(i, a.Freq[i])
		if rt := m.CompTimes[i] + m.UploadTimes[i]; rt > m.RoundTime {
			m.RoundTime = rt
		}
		m.TransEnergy += a.Power[i] * m.UploadTimes[i]
		m.CompEnergy += s.CompEnergyRound(i, a.Freq[i])
	}
	m.TransEnergy *= s.GlobalRounds
	m.CompEnergy *= s.GlobalRounds
	m.TotalEnergy = m.TransEnergy + m.CompEnergy
	m.TotalTime = s.GlobalRounds * m.RoundTime
}

// growFloats returns a slice of length n, reusing s's backing array when it
// is large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Objective evaluates the weighted objective (8): w1*E + w2*T.
func (s *System) Objective(w Weights, a Allocation) float64 {
	m := s.Evaluate(a)
	return w.W1*m.TotalEnergy + w.W2*m.TotalTime
}

// Validate checks that the allocation satisfies constraints (8a)–(8c) within
// the given relative tolerance (use 0 for exact checking; the optimizers use
// ~1e-6 to absorb floating-point residue).
func (s *System) Validate(a Allocation, relTol float64) error {
	n := s.N()
	if len(a.Power) != n || len(a.Bandwidth) != n || len(a.Freq) != n {
		return fmt.Errorf("fl: allocation size mismatch (want %d): %w", n, ErrInfeasibleAllocation)
	}
	var sumB float64
	for i, d := range s.Devices {
		p, b, f := a.Power[i], a.Bandwidth[i], a.Freq[i]
		if math.IsNaN(p) || math.IsNaN(b) || math.IsNaN(f) {
			return fmt.Errorf("fl: device %d has NaN variable: %w", i, ErrInfeasibleAllocation)
		}
		if p < d.PMin*(1-relTol) || p > d.PMax*(1+relTol) {
			return fmt.Errorf("fl: device %d power %g outside [%g,%g]: %w", i, p, d.PMin, d.PMax, ErrInfeasibleAllocation)
		}
		if f < d.FMin*(1-relTol) || f > d.FMax*(1+relTol) {
			return fmt.Errorf("fl: device %d frequency %g outside [%g,%g]: %w", i, f, d.FMin, d.FMax, ErrInfeasibleAllocation)
		}
		if b <= 0 {
			return fmt.Errorf("fl: device %d bandwidth %g must be positive: %w", i, b, ErrInfeasibleAllocation)
		}
		sumB += b
	}
	if sumB > s.Bandwidth*(1+relTol) {
		return fmt.Errorf("fl: total bandwidth %g exceeds %g: %w", sumB, s.Bandwidth, ErrInfeasibleAllocation)
	}
	return nil
}

// ValidateDeadline additionally checks the per-round deadline
// T_cmp_n + T_up_n <= roundDeadline for every device (constraint (9a)).
func (s *System) ValidateDeadline(a Allocation, roundDeadline, relTol float64) error {
	if err := s.Validate(a, relTol); err != nil {
		return err
	}
	for i := range s.Devices {
		rt := s.CompTimeRound(i, a.Freq[i]) + s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
		if rt > roundDeadline*(1+relTol) {
			return fmt.Errorf("fl: device %d round time %g exceeds deadline %g: %w",
				i, rt, roundDeadline, ErrInfeasibleAllocation)
		}
	}
	return nil
}

// EqualSplitAllocation returns the benchmark-style allocation: every device
// gets bandwidth B*frac (the paper uses frac = 1/N for the random benchmark
// and 1/(2N) for baseline initialization), power p and frequency f clamped
// to each device's box.
func (s *System) EqualSplitAllocation(frac, p, f float64) Allocation {
	a := NewAllocation(s.N())
	for i, d := range s.Devices {
		a.Bandwidth[i] = s.Bandwidth * frac
		a.Power[i] = math.Max(d.PMin, math.Min(d.PMax, p))
		a.Freq[i] = math.Max(d.FMin, math.Min(d.FMax, f))
	}
	return a
}

// MaxResourceAllocation returns the natural feasible starting point of
// Algorithm 2: p_n = PMax, f_n = FMax, B_n = B/N.
func (s *System) MaxResourceAllocation() Allocation {
	a := NewAllocation(s.N())
	frac := 1.0 / float64(s.N())
	for i, d := range s.Devices {
		a.Power[i] = d.PMax
		a.Freq[i] = d.FMax
		a.Bandwidth[i] = s.Bandwidth * frac
	}
	return a
}
