package fl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wireless"
)

// testSystem builds a small deterministic system resembling the paper's
// parameter scales.
func testSystem(n int) *System {
	devs := make([]Device, n)
	for i := range devs {
		devs[i] = Device{
			Samples:         500,
			CyclesPerSample: 2e4,
			UploadBits:      28.1e3,
			Gain:            1e-11 * float64(i+1),
			FMin:            1e7,
			FMax:            2e9,
			PMin:            1e-3,
			PMax:            15.8e-3,
		}
	}
	return &System{
		Devices:      devs,
		Bandwidth:    20e6,
		N0:           wireless.NoisePSDWattPerHz(-174),
		Kappa:        1e-28,
		LocalIters:   10,
		GlobalRounds: 400,
	}
}

func TestSystemCheck(t *testing.T) {
	s := testSystem(3)
	if err := s.Check(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	bad := testSystem(3)
	bad.Devices[1].Gain = 0
	if err := bad.Check(); !errors.Is(err, ErrInvalidSystem) {
		t.Errorf("zero gain: want ErrInvalidSystem, got %v", err)
	}
	bad2 := testSystem(3)
	bad2.Devices[0].FMin = 3e9 // above FMax
	if err := bad2.Check(); !errors.Is(err, ErrInvalidSystem) {
		t.Errorf("reversed box: want ErrInvalidSystem, got %v", err)
	}
	empty := &System{Bandwidth: 1, N0: 1, Kappa: 1, LocalIters: 1, GlobalRounds: 1}
	if err := empty.Check(); !errors.Is(err, ErrInvalidSystem) {
		t.Errorf("empty system: want ErrInvalidSystem, got %v", err)
	}
	noBand := testSystem(2)
	noBand.Bandwidth = 0
	if err := noBand.Check(); !errors.Is(err, ErrInvalidSystem) {
		t.Errorf("zero bandwidth: want ErrInvalidSystem, got %v", err)
	}
}

func TestWeightsCheck(t *testing.T) {
	for _, tc := range []struct {
		w  Weights
		ok bool
	}{
		{Weights{0.5, 0.5}, true},
		{Weights{1, 0}, true},
		{Weights{0, 1}, true},
		{Weights{0.6, 0.6}, false},
		{Weights{-0.1, 1.1}, false},
	} {
		err := tc.w.Check()
		if tc.ok && err != nil {
			t.Errorf("Weights%v: unexpected error %v", tc.w, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Weights%v: expected error", tc.w)
		}
	}
}

func TestEnergyTimeFormulas(t *testing.T) {
	s := testSystem(2)
	// Hand-computed against equations (2), (3), (5), (7).
	const f = 1e9
	d := s.Devices[0]
	wantCompTime := 10 * 2e4 * 500 / f
	if got := s.CompTimeRound(0, f); !almostEq(got, wantCompTime, 1e-12) {
		t.Errorf("CompTimeRound = %g, want %g", got, wantCompTime)
	}
	wantCompEnergy := 1e-28 * 10 * 2e4 * 500 * f * f
	if got := s.CompEnergyRound(0, f); !almostEq(got, wantCompEnergy, 1e-12) {
		t.Errorf("CompEnergyRound = %g, want %g", got, wantCompEnergy)
	}
	p, b := 0.01, 4e5
	r := wireless.Rate(p, b, d.Gain, s.N0)
	if got := s.Rate(0, p, b); !almostEq(got, r, 1e-12) {
		t.Errorf("Rate = %g, want %g", got, r)
	}
	if got := s.UploadTimeRound(0, p, b); !almostEq(got, d.UploadBits/r, 1e-12) {
		t.Errorf("UploadTimeRound = %g", got)
	}
	if got := s.TransEnergyRound(0, p, b); !almostEq(got, p*d.UploadBits/r, 1e-12) {
		t.Errorf("TransEnergyRound = %g", got)
	}
	if got := s.CompTimeRound(0, 0); !math.IsInf(got, 1) {
		t.Errorf("CompTimeRound(f=0) = %g, want +Inf", got)
	}
	if got := s.UploadTimeRound(0, 0, b); !math.IsInf(got, 1) {
		t.Errorf("UploadTimeRound(p=0) = %g, want +Inf", got)
	}
}

func TestEvaluateAggregation(t *testing.T) {
	s := testSystem(3)
	a := s.MaxResourceAllocation()
	m := s.Evaluate(a)
	// Round time must be the max of the per-device sums.
	want := 0.0
	var wantTrans, wantComp float64
	for i := range s.Devices {
		rt := m.CompTimes[i] + m.UploadTimes[i]
		if rt > want {
			want = rt
		}
		wantTrans += a.Power[i] * m.UploadTimes[i]
		wantComp += s.CompEnergyRound(i, a.Freq[i])
	}
	if !almostEq(m.RoundTime, want, 1e-12) {
		t.Errorf("RoundTime = %g, want %g", m.RoundTime, want)
	}
	if !almostEq(m.TotalTime, 400*want, 1e-12) {
		t.Errorf("TotalTime = %g", m.TotalTime)
	}
	if !almostEq(m.TransEnergy, 400*wantTrans, 1e-12) {
		t.Errorf("TransEnergy = %g", m.TransEnergy)
	}
	if !almostEq(m.CompEnergy, 400*wantComp, 1e-12) {
		t.Errorf("CompEnergy = %g", m.CompEnergy)
	}
	if !almostEq(m.TotalEnergy, m.TransEnergy+m.CompEnergy, 1e-12) {
		t.Errorf("TotalEnergy = %g", m.TotalEnergy)
	}
}

func TestObjectiveWeighting(t *testing.T) {
	s := testSystem(2)
	a := s.MaxResourceAllocation()
	m := s.Evaluate(a)
	if got := s.Objective(Weights{1, 0}, a); !almostEq(got, m.TotalEnergy, 1e-12) {
		t.Errorf("w1=1 objective = %g, want %g", got, m.TotalEnergy)
	}
	if got := s.Objective(Weights{0, 1}, a); !almostEq(got, m.TotalTime, 1e-12) {
		t.Errorf("w2=1 objective = %g, want %g", got, m.TotalTime)
	}
	half := s.Objective(Weights{0.5, 0.5}, a)
	if !almostEq(half, 0.5*m.TotalEnergy+0.5*m.TotalTime, 1e-12) {
		t.Errorf("w=0.5 objective = %g", half)
	}
}

func TestValidate(t *testing.T) {
	s := testSystem(3)
	a := s.MaxResourceAllocation()
	if err := s.Validate(a, 1e-9); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
	over := a.Clone()
	over.Power[0] = s.Devices[0].PMax * 2
	if err := s.Validate(over, 1e-9); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("power violation: got %v", err)
	}
	under := a.Clone()
	under.Freq[1] = s.Devices[1].FMin / 2
	if err := s.Validate(under, 1e-9); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("frequency violation: got %v", err)
	}
	tooMuchBand := a.Clone()
	for i := range tooMuchBand.Bandwidth {
		tooMuchBand.Bandwidth[i] = s.Bandwidth
	}
	if err := s.Validate(tooMuchBand, 1e-9); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("bandwidth violation: got %v", err)
	}
	nan := a.Clone()
	nan.Power[2] = math.NaN()
	if err := s.Validate(nan, 1e-9); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("NaN: got %v", err)
	}
	short := NewAllocation(2)
	if err := s.Validate(short, 1e-9); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("size mismatch: got %v", err)
	}
}

func TestValidateDeadline(t *testing.T) {
	s := testSystem(2)
	a := s.MaxResourceAllocation()
	m := s.Evaluate(a)
	if err := s.ValidateDeadline(a, m.RoundTime*1.01, 1e-9); err != nil {
		t.Errorf("deadline met but rejected: %v", err)
	}
	if err := s.ValidateDeadline(a, m.RoundTime*0.5, 1e-9); !errors.Is(err, ErrInfeasibleAllocation) {
		t.Errorf("deadline broken but accepted")
	}
}

func TestEqualSplitAllocationClamps(t *testing.T) {
	s := testSystem(4)
	a := s.EqualSplitAllocation(1.0/8, 100 /* above PMax */, 1 /* below FMin */)
	for i, d := range s.Devices {
		if a.Power[i] != d.PMax {
			t.Errorf("power[%d] = %g, want clamped to %g", i, a.Power[i], d.PMax)
		}
		if a.Freq[i] != d.FMin {
			t.Errorf("freq[%d] = %g, want clamped to %g", i, a.Freq[i], d.FMin)
		}
		if !almostEq(a.Bandwidth[i], s.Bandwidth/8, 1e-12) {
			t.Errorf("bandwidth[%d] = %g", i, a.Bandwidth[i])
		}
	}
}

func TestAllocationCloneAndDistance(t *testing.T) {
	s := testSystem(2)
	a := s.MaxResourceAllocation()
	b := a.Clone()
	if a.Distance(b) != 0 {
		t.Errorf("distance to clone = %g", a.Distance(b))
	}
	b.Power[0] *= 2
	if d := a.Distance(b); !almostEq(d, 0.5, 1e-12) {
		t.Errorf("distance after doubling power = %g, want 0.5", d)
	}
	b.Power[0] = a.Power[0]
	b.Freq[1] *= 1.1
	if d := a.Distance(b); d <= 0 {
		t.Error("distance should detect frequency change")
	}
}

// Property: evaluation is scale-consistent — doubling GlobalRounds doubles
// energies and total time but leaves RoundTime unchanged.
func TestEvaluateRoundScaling(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := testSystem(1 + rng.Intn(5))
		a := s.MaxResourceAllocation()
		for i := range a.Power {
			a.Power[i] = s.Devices[i].PMin + rng.Float64()*(s.Devices[i].PMax-s.Devices[i].PMin)
			a.Freq[i] = s.Devices[i].FMin + rng.Float64()*(s.Devices[i].FMax-s.Devices[i].FMin)
		}
		m1 := s.Evaluate(a)
		s2 := *s
		s2.GlobalRounds *= 2
		m2 := (&s2).Evaluate(a)
		return almostEq(m2.TotalEnergy, 2*m1.TotalEnergy, 1e-9) &&
			almostEq(m2.TotalTime, 2*m1.TotalTime, 1e-9) &&
			almostEq(m2.RoundTime, m1.RoundTime, 1e-12)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: computation energy grows as f^2 and computation time as 1/f.
func TestCompScalingLaws(t *testing.T) {
	s := testSystem(1)
	check := func(raw float64) bool {
		f := 1e8 + math.Abs(math.Mod(raw, 1.9e9))
		e1, e2 := s.CompEnergyRound(0, f), s.CompEnergyRound(0, 2*f)
		t1, t2 := s.CompTimeRound(0, f), s.CompTimeRound(0, 2*f)
		return almostEq(e2, 4*e1, 1e-9) && almostEq(t2, t1/2, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}
