// Package fl models the federated-learning deployment of the paper (Section
// III): N devices attached to one base station over FDMA, each holding D_n
// samples, spending c_n CPU cycles per sample, and uploading d_n bits per
// global round. It provides the energy and completion-time accounting
// (equations (1)–(7)), the Allocation type holding the decision variables
// (p, B, f), feasibility validation, and the weighted objective (8).
package fl

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidSystem is returned by System.Check for malformed parameters.
var ErrInvalidSystem = errors.New("fl: invalid system parameters")

// ErrInfeasibleAllocation is returned by Validate for allocations that break
// a constraint of problem (8).
var ErrInfeasibleAllocation = errors.New("fl: infeasible allocation")

// Device holds the static parameters of a single participating device.
type Device struct {
	// Samples is D_n, the number of local training samples.
	Samples float64
	// CyclesPerSample is c_n, CPU cycles needed per sample per local
	// iteration.
	CyclesPerSample float64
	// UploadBits is d_n, the size of one model upload in bits.
	UploadBits float64
	// Gain is g_n, the linear channel power gain to the base station.
	Gain float64
	// FMin and FMax bound the CPU frequency in Hz (constraint (8b)).
	FMin, FMax float64
	// PMin and PMax bound the transmit power in watts (constraint (8a)).
	PMin, PMax float64
}

// CyclesPerIteration returns c_n * D_n, the CPU cycles of one local
// iteration over the device's full dataset.
func (d Device) CyclesPerIteration() float64 { return d.CyclesPerSample * d.Samples }

// System is a complete FL deployment: the device population plus the shared
// wireless and training constants.
type System struct {
	// Devices is the set N of participating devices.
	Devices []Device
	// Bandwidth is B, the total uplink bandwidth in Hz (constraint (8c)).
	Bandwidth float64
	// N0 is the noise power spectral density in W/Hz.
	N0 float64
	// Kappa is the effective switched capacitance of the device CPUs.
	Kappa float64
	// LocalIters is R_l, local iterations per global round.
	LocalIters float64
	// GlobalRounds is R_g, the number of global aggregation rounds.
	GlobalRounds float64
}

// N returns the number of devices.
func (s *System) N() int { return len(s.Devices) }

// Check validates the static parameters.
func (s *System) Check() error {
	if s.N() == 0 {
		return fmt.Errorf("fl: no devices: %w", ErrInvalidSystem)
	}
	if !(s.Bandwidth > 0) || !(s.N0 > 0) || !(s.Kappa > 0) ||
		!(s.LocalIters > 0) || !(s.GlobalRounds > 0) {
		return fmt.Errorf("fl: non-positive shared constant: %w", ErrInvalidSystem)
	}
	for i, d := range s.Devices {
		switch {
		case !(d.Samples > 0), !(d.CyclesPerSample > 0), !(d.UploadBits > 0), !(d.Gain > 0):
			return fmt.Errorf("fl: device %d has non-positive data/channel parameter: %w", i, ErrInvalidSystem)
		case !(d.FMin > 0) || d.FMin > d.FMax:
			return fmt.Errorf("fl: device %d frequency box [%g,%g]: %w", i, d.FMin, d.FMax, ErrInvalidSystem)
		case !(d.PMin > 0) || d.PMin > d.PMax:
			return fmt.Errorf("fl: device %d power box [%g,%g]: %w", i, d.PMin, d.PMax, ErrInvalidSystem)
		}
	}
	return nil
}

// Weights are the objective weights (w1, w2) of problem (8); they must be
// nonnegative and sum to 1.
type Weights struct {
	// W1 multiplies total energy.
	W1 float64
	// W2 multiplies total completion time.
	W2 float64
}

// Check validates the weight pair.
func (w Weights) Check() error {
	if w.W1 < 0 || w.W2 < 0 || math.Abs(w.W1+w.W2-1) > 1e-9 {
		return fmt.Errorf("fl: weights (%g,%g) must be nonnegative and sum to 1: %w", w.W1, w.W2, ErrInvalidSystem)
	}
	return nil
}

// Allocation holds the per-device decision variables of problem (8).
type Allocation struct {
	// Power is p_n in watts.
	Power []float64
	// Bandwidth is B_n in Hz.
	Bandwidth []float64
	// Freq is f_n in Hz.
	Freq []float64
}

// NewAllocation allocates zeroed slices for n devices.
func NewAllocation(n int) Allocation {
	return Allocation{
		Power:     make([]float64, n),
		Bandwidth: make([]float64, n),
		Freq:      make([]float64, n),
	}
}

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation {
	out := NewAllocation(len(a.Power))
	copy(out.Power, a.Power)
	copy(out.Bandwidth, a.Bandwidth)
	copy(out.Freq, a.Freq)
	return out
}

// Distance returns the infinity-norm distance between two allocations with
// each variable normalized by its own scale, the convergence metric of
// Algorithm 2's outer loop.
func (a Allocation) Distance(b Allocation) float64 {
	var m float64
	acc := func(x, y float64) {
		scale := math.Max(math.Abs(x), math.Abs(y))
		if scale == 0 {
			return
		}
		if d := math.Abs(x-y) / scale; d > m {
			m = d
		}
	}
	for i := range a.Power {
		acc(a.Power[i], b.Power[i])
		acc(a.Bandwidth[i], b.Bandwidth[i])
		acc(a.Freq[i], b.Freq[i])
	}
	return m
}
