package core

import (
	"errors"
	"testing"

	"repro/internal/fl"
)

func TestOptimizeWeightedBasic(t *testing.T) {
	for _, w := range []fl.Weights{
		{W1: 0.9, W2: 0.1}, {W1: 0.7, W2: 0.3}, {W1: 0.5, W2: 0.5},
		{W1: 0.3, W2: 0.7}, {W1: 0.1, W2: 0.9},
	} {
		s := newTestSystem(8, 11)
		res, err := Optimize(s, w, Options{})
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
			t.Errorf("w=%v: final allocation infeasible: %v", w, err)
		}
		// The optimizer must beat its own starting point.
		start := s.Objective(w, s.MaxResourceAllocation())
		if res.Objective > start*(1+1e-9) {
			t.Errorf("w=%v: objective %g worse than start %g", w, res.Objective, start)
		}
		if len(res.Iterations) == 0 {
			t.Errorf("w=%v: no iteration trace", w)
		}
	}
}

// The weighted objective must be non-increasing across outer iterations
// (Section VI convergence argument).
func TestOptimizeMonotoneDescent(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := newTestSystem(7, seed)
		res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{MaxOuter: 15})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prev := res.Iterations[0].Objective
		for k := 1; k < len(res.Iterations); k++ {
			cur := res.Iterations[k].Objective
			if cur > prev*(1+1e-7) {
				t.Errorf("seed %d: objective rose at iteration %d: %g -> %g", seed, k, prev, cur)
			}
			prev = cur
		}
	}
}

func TestOptimizeConverges(t *testing.T) {
	s := newTestSystem(6, 21)
	res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{MaxOuter: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		last := res.Iterations[len(res.Iterations)-1]
		t.Errorf("did not converge in 40 iterations (last distance %g)", last.Distance)
	}
}

// Higher w1 (energy emphasis) must not increase energy, and higher w2 must
// not increase delay — the Pareto sweep of Fig. 2.
func TestOptimizeWeightMonotonicity(t *testing.T) {
	s := newTestSystem(10, 5)
	weights := []fl.Weights{
		{W1: 0.9, W2: 0.1}, {W1: 0.7, W2: 0.3}, {W1: 0.5, W2: 0.5},
		{W1: 0.3, W2: 0.7}, {W1: 0.1, W2: 0.9},
	}
	var energies, times []float64
	for _, w := range weights {
		res, err := Optimize(s, w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, res.Metrics.TotalEnergy)
		times = append(times, res.Metrics.TotalTime)
	}
	for k := 1; k < len(weights); k++ {
		// Decreasing w1: energy should weakly rise, time weakly fall.
		if energies[k] < energies[k-1]*(1-1e-6) {
			t.Errorf("energy not monotone in w1: %v", energies)
		}
		if times[k] > times[k-1]*(1+1e-6) {
			t.Errorf("time not monotone in w2: %v", times)
		}
	}
}

func TestOptimizePureDelayCorner(t *testing.T) {
	s := newTestSystem(5, 6)
	res, err := Optimize(s, fl.Weights{W1: 0, W2: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(res.RoundDeadline, mt.RoundDeadline) > 1e-9 {
		t.Errorf("w1=0 deadline %g != min-time %g", res.RoundDeadline, mt.RoundDeadline)
	}
}

func TestOptimizePureEnergyCorner(t *testing.T) {
	s := newTestSystem(5, 7)
	res, err := Optimize(s, fl.Weights{W1: 1, W2: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All CPUs at the floor (computation energy is then minimal).
	for i, d := range s.Devices {
		if res.Allocation.Freq[i] != d.FMin {
			t.Errorf("f[%d] = %g, want FMin under pure energy", i, res.Allocation.Freq[i])
		}
	}
	// Energy no worse than any of the weighted runs.
	half, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalEnergy > half.Metrics.TotalEnergy*(1+1e-6) {
		t.Errorf("pure-energy run (%g J) worse than w=0.5 run (%g J)",
			res.Metrics.TotalEnergy, half.Metrics.TotalEnergy)
	}
}

func TestOptimizeDeadlineMode(t *testing.T) {
	s := newTestSystem(8, 13)
	mt, err := SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	// A deadline 3x the physical minimum: comfortably feasible.
	total := 3 * mt.RoundDeadline * s.GlobalRounds
	res, err := Optimize(s, fl.Weights{W1: 1, W2: 0}, Options{Mode: ModeDeadline, TotalDeadline: total})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(res.Allocation, total/s.GlobalRounds, 1e-6); err != nil {
		t.Errorf("deadline violated: %v", err)
	}
	// Looser deadline => no more energy.
	res2, err := Optimize(s, fl.Weights{W1: 1, W2: 0}, Options{Mode: ModeDeadline, TotalDeadline: 2 * total})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.TotalEnergy > res.Metrics.TotalEnergy*(1+1e-6) {
		t.Errorf("energy rose when the deadline relaxed: %g -> %g",
			res.Metrics.TotalEnergy, res2.Metrics.TotalEnergy)
	}
}

func TestOptimizeDeadlineInfeasible(t *testing.T) {
	s := newTestSystem(5, 14)
	mt, err := SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.5 * mt.RoundDeadline * s.GlobalRounds
	if _, err := Optimize(s, fl.Weights{W1: 1, W2: 0}, Options{Mode: ModeDeadline, TotalDeadline: total}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestOptimizeOptionValidation(t *testing.T) {
	s := newTestSystem(3, 15)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	if _, err := Optimize(s, fl.Weights{W1: 0.9, W2: 0.3}, Options{}); err == nil {
		t.Error("bad weights accepted")
	}
	if _, err := Optimize(s, w, Options{Mode: ModeDeadline}); !errors.Is(err, ErrBadInput) {
		t.Errorf("missing deadline: want ErrBadInput, got %v", err)
	}
	bad := fl.NewAllocation(3) // all zeros: infeasible start
	if _, err := Optimize(s, w, Options{Start: &bad}); err == nil {
		t.Error("infeasible start accepted")
	}
}

func TestOptimizeWithPaperPathways(t *testing.T) {
	s := newTestSystem(6, 16)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	std, err := Optimize(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Optimize(s, w, Options{UsePaperSP1Dual: true, UsePaperSP2Dual: true})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(std.Objective, paper.Objective) > 1e-2 {
		t.Errorf("pathway disagreement: %g vs %g", std.Objective, paper.Objective)
	}
}

func TestOptimizeCustomStart(t *testing.T) {
	s := newTestSystem(5, 17)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	start := s.EqualSplitAllocation(0.5/float64(s.N()), s.Devices[0].PMax, s.Devices[0].FMax)
	res, err := Optimize(s, w, Options{Start: &start})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Optimize(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(res.Objective, def.Objective) > 5e-2 {
		t.Errorf("start sensitivity too high: %g vs %g", res.Objective, def.Objective)
	}
}
