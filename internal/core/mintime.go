package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/wireless"
)

// MinTimeResult is the solution of the pure delay-minimization problem.
type MinTimeResult struct {
	// Allocation runs every CPU and amplifier at its ceiling and
	// waterfills bandwidth to equalize round times.
	Allocation fl.Allocation
	// RoundDeadline is the minimal achievable per-round time.
	RoundDeadline float64
}

// SolveMinTime computes the minimum achievable per-round completion time
//
//	min_B max_n ( T_cmp_n(FMax) + d_n / G_n(PMax, B_n) )  s.t. sum B_n <= B,
//
// by bisecting the deadline: a candidate T is feasible iff the total
// bandwidth needed to give every device rate d_n/(T - T_cmp_n) at full power
// fits in B. It serves three purposes: the w1 = 0 corner of the weighted
// problem, feasibility screening for ModeDeadline, and baseline setup.
func SolveMinTime(s *fl.System) (MinTimeResult, error) {
	if err := s.Check(); err != nil {
		return MinTimeResult{}, err
	}
	n := s.N()
	cmp := make([]float64, n)
	maxCmp := 0.0
	for i, d := range s.Devices {
		cmp[i] = s.LocalIters * d.CyclesPerIteration() / d.FMax
		if cmp[i] > maxCmp {
			maxCmp = cmp[i]
		}
	}

	// bandNeeded returns the total bandwidth required to hit deadline t, or
	// +Inf when some device cannot reach its required rate at full power.
	bandNeeded := func(t float64, out []float64) float64 {
		var sum float64
		for i, d := range s.Devices {
			residual := t - cmp[i]
			if residual <= 0 {
				return math.Inf(1)
			}
			need := d.UploadBits / residual
			b, err := wireless.BandwidthForRate(need, d.PMax, d.Gain, s.N0)
			if err != nil {
				return math.Inf(1)
			}
			if out != nil {
				out[i] = b
			}
			sum += b
		}
		return sum
	}

	// Bracket: grow t from just above the computation bound until feasible.
	lo := maxCmp
	hi := maxCmp + 1e-6
	for iter := 0; bandNeeded(hi, nil) > s.Bandwidth; iter++ {
		hi = maxCmp + (hi-maxCmp)*4
		if iter > 400 {
			return MinTimeResult{}, fmt.Errorf("core: SolveMinTime cannot find a feasible deadline: %w", ErrInfeasible)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12*hi; iter++ {
		mid := lo + 0.5*(hi-lo)
		if bandNeeded(mid, nil) <= s.Bandwidth {
			hi = mid
		} else {
			lo = mid
		}
	}

	alloc := fl.NewAllocation(n)
	bands := make([]float64, n)
	sum := bandNeeded(hi, bands)
	if math.IsInf(sum, 1) {
		return MinTimeResult{}, fmt.Errorf("core: SolveMinTime final evaluation infeasible: %w", ErrInfeasible)
	}
	// Hand unused band out proportionally: it can only reduce upload times.
	if slack := s.Bandwidth - sum; slack > 0 && sum > 0 {
		scale := s.Bandwidth / sum
		for i := range bands {
			bands[i] *= scale
		}
	}
	for i, d := range s.Devices {
		alloc.Power[i] = d.PMax
		alloc.Freq[i] = d.FMax
		alloc.Bandwidth[i] = bands[i]
	}
	m := s.Evaluate(alloc)
	return MinTimeResult{Allocation: alloc, RoundDeadline: m.RoundTime}, nil
}
