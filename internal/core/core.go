// Package core implements the paper's contribution: the joint
// energy/completion-time resource allocation for federated learning over
// FDMA (Algorithm 2), built from
//
//   - Subproblem 1 (eq. (10)): optimal CPU frequencies and round deadline
//     given the current upload times — a convex program solved exactly both
//     directly (1-D golden section over the deadline) and via the paper's
//     Lagrangian dual (17);
//   - Subproblem 2 (eq. (11)): minimal transmission energy over powers and
//     bandwidths — an NP-hard sum-of-ratios program handled with the
//     Newton-like method of Jong (Algorithm 1), whose inner convex program
//     SP2_v2 (eq. (21)) is solved in closed form per Theorem 2/Appendix B
//     (Lambert-W waterfilling on the bandwidth price);
//   - a min-time solver used for feasibility probing, the w1 = 0 corner, and
//     baseline initialization.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fl"
)

// ErrInfeasible is returned when no allocation can satisfy the constraints
// (e.g. a deadline below the physical minimum round time).
var ErrInfeasible = errors.New("core: infeasible instance")

// ErrBadInput flags malformed arguments (wrong lengths, non-positive
// weights where positive ones are required).
var ErrBadInput = errors.New("core: bad input")

// SP2Method selects how Subproblem 2 is solved.
type SP2Method int

const (
	// SP2Hybrid (default) runs the paper's Algorithm 1 and polishes the
	// result with the direct reduction solver, returning the better
	// allocation. Algorithm 1's damped Newton iteration can stall when the
	// inner SP2_v2 solution is bang-bang in the multipliers; the polish
	// restores global optimality in those cases at negligible cost.
	SP2Hybrid SP2Method = iota
	// SP2NewtonOnly runs the paper's Algorithm 1 alone (fidelity mode).
	SP2NewtonOnly
	// SP2DirectOnly runs only the reduction-based global solver
	// (SolveSubproblem2Direct).
	SP2DirectOnly
)

// Mode selects the optimizer's operating regime.
type Mode int

const (
	// ModeWeighted solves problem (8)/(9): minimize w1*E + w2*T with the
	// round deadline a free variable.
	ModeWeighted Mode = iota + 1
	// ModeDeadline solves the energy-only variant used in Figs. 7 and 8:
	// minimize E subject to a fixed total completion time (w1 = 1, w2 = 0,
	// T fixed), the setting of Scheme 1 comparisons.
	ModeDeadline
)

// Options configures the optimizer (Algorithm 2).
type Options struct {
	// Mode selects weighted or deadline-constrained operation; defaults to
	// ModeWeighted.
	Mode Mode
	// TotalDeadline is the fixed total completion time in seconds for
	// ModeDeadline (the per-round deadline is TotalDeadline/Rg).
	TotalDeadline float64
	// MaxOuter bounds Algorithm 2 iterations (paper: K). Default 30.
	MaxOuter int
	// MaxNewton bounds Algorithm 1 iterations (paper: i0). Default 50.
	MaxNewton int
	// OuterTol is the allocation-distance stopping tolerance (paper: eps0).
	// Default 1e-6.
	OuterTol float64
	// PhiTol is the |phi| stopping tolerance of Algorithm 1. Default 1e-9
	// relative to the initial residual.
	PhiTol float64
	// Xi and Epsilon are the line-search parameters of Algorithm 1
	// (paper: xi, eps in (0,1)). Defaults 0.5 and 0.01.
	Xi, Epsilon float64
	// UsePaperSP1Dual switches Subproblem 1 to the paper's dual (17)
	// pathway instead of the direct 1-D solve. Both give the same optimum;
	// the direct solve additionally honours the frequency boxes exactly.
	UsePaperSP1Dual bool
	// UsePaperSP2Dual switches SP2_v2 to the literal Appendix-B dual
	// (all-binding price root + greedy (A.6)) instead of the clamp-aware
	// waterfilling.
	UsePaperSP2Dual bool
	// SP2Solver selects the Subproblem 2 strategy (default SP2Hybrid).
	SP2Solver SP2Method
	// JointWeighted replaces the paper's alternating loop in ModeWeighted
	// with the joint 1-D-over-deadline solver (SolveWeightedJoint), which
	// restores the compute/communicate tradeoff the alternation freezes.
	// Slower (one deadline solve per search point) but strictly stronger.
	JointWeighted bool
	// Start optionally overrides the initial allocation; when nil the
	// optimizer starts from p = PMax, f = FMax, B = B/N.
	Start *fl.Allocation
	// DualStart optionally seeds Subproblem 2 with a converged dual state
	// from a neighbouring instance (typically cached next to the Start
	// allocation). A valid seed certifies the start point as a Newton fixed
	// point: the first SP2 call verifies the certificate with one residual
	// evaluation and, under the hybrid solver's direct polish, accepts it
	// with zero Newton iterations when the relative residual is below
	// DualSeedTol; the cached bandwidth price narrows the inner bisection
	// bracket. A stale or malformed seed (wrong length, non-finite or
	// non-positive entries, residual above tolerance) is safely ignored and
	// the solve proceeds exactly as unseeded.
	DualStart *DualState
	// DualSeedTol is the relative phi-residual tolerance at which a seeded
	// Subproblem 2 accepts its certificate, measured against the magnitude
	// of the residual's constituent terms. Default 1e-6, matching the outer
	// loop's allocation resolution (OuterTol).
	DualSeedTol float64
	// Work optionally supplies reusable scratch memory; when nil the
	// optimizer borrows a pooled workspace. Callers that solve in a loop
	// (serving workers) pass their own to keep the hot path allocation-free.
	// A Workspace must not be shared between concurrent solves.
	Work *Workspace
	// Trace, when non-nil, receives per-phase solver timing (SP1/SP2 wall
	// time, Newton and outer iteration counts). The serving layer points
	// this at a request-scoped struct so a lifecycle trace can attribute
	// solve time to its subproblems; unset, the hook costs one nil check
	// per phase.
	Trace *SolveTrace
}

// Dual-seed certificate outcomes recorded in SolveTrace.DualSeedOutcome.
const (
	// DualSeedNone: no valid dual seed was offered to the first SP2 call.
	DualSeedNone = "none"
	// DualSeedAccepted: the raw cached multipliers passed the residual
	// certificate — the solve skipped its Newton iterations outright.
	DualSeedAccepted = "accepted"
	// DualSeedProjected: the raw multipliers missed, but the certificate
	// projected through the start allocation onto the current channel
	// gains passed the re-check.
	DualSeedProjected = "projected"
	// DualSeedRejected: both checks missed and the full iteration ran.
	DualSeedRejected = "rejected"
	// DualSeedErrored: the seeded inner solve failed and the solve fell
	// back to the unseeded step-3 init.
	DualSeedErrored = "errored"
)

// SolveTrace accumulates per-phase timing facts for one Optimize call.
// The caller owns the struct and Optimize adds into it, so a staged or
// retried solve aggregates naturally. Fields are written without
// synchronization: do not share one SolveTrace between concurrent solves.
type SolveTrace struct {
	// SP1Time and SP2Time are cumulative wall time spent in Subproblem 1
	// (frequencies/deadline) and Subproblem 2 (powers/bandwidths). In
	// ModeDeadline, SP1Time covers the min-time feasibility probe and
	// SP2Time the joint dual-decomposition solve.
	SP1Time time.Duration
	SP2Time time.Duration
	// NewtonIters totals Subproblem 2 Newton iterations; OuterIters counts
	// Algorithm 2 outer loops (1 for the one-shot deadline path).
	NewtonIters int
	OuterIters  int
	// DualSeedOutcome records the fate of the dual-seed certificate at the
	// first Subproblem 2 call — the externally seeded one — as a DualSeed*
	// label ("" when SP2 never ran). Later calls inside the same Optimize
	// are self-seeded confirmation iterations and do not overwrite it.
	DualSeedOutcome string
	// BracketSeeded and BracketDiscovered count inner SP2_v2 price
	// searches whose bisection bracket came from a carried clearing price
	// versus from-scratch discovery; BracketRelWidth accumulates each
	// search's relative bracket width (muHi-muLo)/mu at bisection entry,
	// so BracketRelWidth/(BracketSeeded+BracketDiscovered) is the solve's
	// mean bracket quality.
	BracketSeeded     int
	BracketDiscovered int
	BracketRelWidth   float64
}

func (o Options) withDefaults() Options {
	if o.Mode == 0 {
		o.Mode = ModeWeighted
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 30
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 50
	}
	if o.OuterTol <= 0 {
		o.OuterTol = 1e-6
	}
	if o.PhiTol <= 0 {
		o.PhiTol = 1e-9
	}
	if o.Xi <= 0 || o.Xi >= 1 {
		o.Xi = 0.5
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		o.Epsilon = 0.01
	}
	if o.DualSeedTol <= 0 {
		o.DualSeedTol = 1e-6
	}
	return o
}

func (o Options) check(s *fl.System, w fl.Weights) error {
	if err := s.Check(); err != nil {
		return err
	}
	if err := w.Check(); err != nil {
		return err
	}
	if o.Mode == ModeDeadline && !(o.TotalDeadline > 0) {
		return fmt.Errorf("core: ModeDeadline needs TotalDeadline > 0: %w", ErrBadInput)
	}
	if o.Start != nil {
		if err := s.Validate(*o.Start, 1e-9); err != nil {
			return fmt.Errorf("core: Start allocation: %w", err)
		}
	}
	return nil
}

// IterationTrace records one outer iteration of Algorithm 2 for convergence
// diagnostics and tests.
type IterationTrace struct {
	// Objective is the weighted objective after the iteration.
	Objective float64
	// RoundDeadline is the per-round deadline T chosen by Subproblem 1.
	RoundDeadline float64
	// Distance is the allocation change versus the previous iterate.
	Distance float64
	// NewtonIters is the number of Algorithm 1 iterations used.
	NewtonIters int
	// PhiResidual is |phi| at Algorithm 1 exit.
	PhiResidual float64
}

// Result is the output of the optimizer.
type Result struct {
	// Allocation is the final (p, B, f).
	Allocation fl.Allocation
	// RoundDeadline is the final per-round deadline T (seconds).
	RoundDeadline float64
	// Metrics is the full accounting at the final allocation.
	Metrics fl.Metrics
	// Objective is the achieved weighted objective value.
	Objective float64
	// Iterations traces the outer loop.
	Iterations []IterationTrace
	// Converged reports whether the outer loop met OuterTol before MaxOuter.
	Converged bool
	// Duals is the converged Subproblem 2 dual state at the final
	// allocation (nil when the solve never ran SP2: deadline mode, w1 = 0,
	// joint weighted, baselines). Cache it next to the allocation and pass
	// it back via Options.DualStart to let a neighbouring solve skip the
	// Newton iteration.
	Duals *DualState
}
