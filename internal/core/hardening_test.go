package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fl"
	"repro/internal/wireless"
)

// Failure-injection and edge-case hardening for the full optimizer stack.

func TestOptimizeSingleDevice(t *testing.T) {
	s := newTestSystem(1, 1)
	for _, w := range []fl.Weights{{W1: 1, W2: 0}, {W1: 0.5, W2: 0.5}, {W1: 0, W2: 1}} {
		res, err := Optimize(s, w, Options{})
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
			t.Errorf("w=%v: %v", w, err)
		}
		// A single device gets the whole band.
		if res.Allocation.Bandwidth[0] < s.Bandwidth*0.999 {
			t.Errorf("w=%v: single device got only %g of %g Hz", w, res.Allocation.Bandwidth[0], s.Bandwidth)
		}
	}
}

func TestOptimizeDeepFadeDevice(t *testing.T) {
	// One device 60 dB below the rest: the optimizer must still produce a
	// feasible allocation (the weak device simply absorbs bandwidth/time).
	s := newTestSystem(6, 2)
	s.Devices[3].Gain *= 1e-6
	res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{})
	if err != nil {
		t.Fatalf("deep fade: %v", err)
	}
	if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
		t.Errorf("deep fade: %v", err)
	}
	// The weak device should hold more bandwidth than the median device.
	var sum float64
	for _, b := range res.Allocation.Bandwidth {
		sum += b
	}
	if res.Allocation.Bandwidth[3] < sum/float64(s.N())/2 {
		t.Errorf("deep-fade device starved: %g of %g total", res.Allocation.Bandwidth[3], sum)
	}
}

func TestOptimizeDegenerateBoxes(t *testing.T) {
	// Pinned power and frequency boxes (pmin == pmax, fmin == fmax): the
	// only remaining freedom is bandwidth.
	s := newTestSystem(5, 3)
	for i := range s.Devices {
		s.Devices[i].PMin = s.Devices[i].PMax
		s.Devices[i].FMin = s.Devices[i].FMax
	}
	res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{})
	if err != nil {
		t.Fatalf("degenerate boxes: %v", err)
	}
	for i, d := range s.Devices {
		if res.Allocation.Power[i] != d.PMax || res.Allocation.Freq[i] != d.FMax {
			t.Errorf("device %d moved a pinned variable", i)
		}
	}
	if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
		t.Errorf("degenerate boxes: %v", err)
	}
}

func TestOptimizeHeterogeneousUploadSizes(t *testing.T) {
	// 100x spread in d_n.
	s := newTestSystem(6, 4)
	for i := range s.Devices {
		s.Devices[i].UploadBits = 28.1e3 * float64(1+10*i)
	}
	res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{})
	if err != nil {
		t.Fatalf("heterogeneous uploads: %v", err)
	}
	if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
		t.Errorf("heterogeneous uploads: %v", err)
	}
}

func TestOptimizeManyDevicesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N smoke test")
	}
	s := newTestSystem(200, 5)
	res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{})
	if err != nil {
		t.Fatalf("N=200: %v", err)
	}
	if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-6); err != nil {
		t.Errorf("N=200: %v", err)
	}
}

// Property: for random feasible systems and weights, the optimizer output
// is always feasible and never worse than the max-resource start.
func TestOptimizeAlwaysFeasibleProperty(t *testing.T) {
	check := func(seed int64, rawW float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		s := newTestSystem(n, seed)
		if math.IsNaN(rawW) || math.IsInf(rawW, 0) {
			return true
		}
		w1 := 0.05 + 0.9*math.Abs(math.Mod(rawW, 1))
		w := fl.Weights{W1: w1, W2: 1 - w1}
		res, err := Optimize(s, w, Options{})
		if err != nil {
			return false
		}
		if err := s.ValidateDeadline(res.Allocation, res.RoundDeadline, 1e-5); err != nil {
			return false
		}
		return res.Objective <= s.Objective(w, s.MaxResourceAllocation())*(1+1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSolveMinTimeSingleWeakDevice(t *testing.T) {
	s := newTestSystem(4, 6)
	s.Devices[0].Gain = 1e-16 // extremely weak but nonzero
	res, err := SolveMinTime(s)
	if err != nil {
		t.Fatalf("weak device: %v", err)
	}
	if err := s.Validate(res.Allocation, 1e-6); err != nil {
		t.Errorf("weak device: %v", err)
	}
}

func TestDeadlineModeAtExactMinimum(t *testing.T) {
	// A deadline exactly at the physical minimum (within slack) must either
	// solve or fail cleanly — never panic or return an invalid allocation.
	s := newTestSystem(5, 7)
	mt, err := SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	total := mt.RoundDeadline * s.GlobalRounds * (1 + 1e-7)
	res, err := Optimize(s, fl.Weights{W1: 1, W2: 0}, Options{Mode: ModeDeadline, TotalDeadline: total})
	if err != nil {
		t.Logf("tight deadline rejected cleanly: %v", err)
		return
	}
	if err := s.ValidateDeadline(res.Allocation, total/s.GlobalRounds, 1e-4); err != nil {
		t.Errorf("tight deadline: %v", err)
	}
}

func TestRateLimitGuardsPropagate(t *testing.T) {
	// rmin above the wideband limit must surface ErrInfeasible through the
	// whole stack, not NaNs.
	s := newTestSystem(3, 8)
	rmin := make([]float64, 3)
	for i, d := range s.Devices {
		rmin[i] = wireless.RateLimit(d.PMax, d.Gain, s.N0) * 1.5
	}
	if _, err := SolveSubproblem2Direct(s, 1, rmin); err == nil {
		t.Error("expected error for super-capacity rate floors")
	}
	a := s.MaxResourceAllocation()
	if _, err := SolveSubproblem2(s, 1, rmin, a.Power, a.Bandwidth, Options{}); err == nil {
		t.Error("expected error through Algorithm 1 as well")
	}
}
