package core

import (
	"strings"
	"testing"

	"repro/internal/fl"
)

func TestResultSummary(t *testing.T) {
	s := newTestSystem(4, 1)
	res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	for _, want := range []string{"objective:", "total energy:", "trace:", "converged:"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestDescentViolations(t *testing.T) {
	r := Result{Iterations: []IterationTrace{
		{Objective: 100}, {Objective: 90}, {Objective: 95}, {Objective: 80},
	}}
	if got := r.DescentViolations(1e-9); got != 1 {
		t.Errorf("violations = %d, want 1", got)
	}
	if got := r.DescentViolations(0.10); got != 0 {
		t.Errorf("with 10%% tolerance = %d, want 0", got)
	}
	empty := Result{}
	if empty.DescentViolations(0) != 0 {
		t.Error("empty trace should have zero violations")
	}
}

// Healthy optimizer runs must report zero descent violations.
func TestNoDescentViolationsInPractice(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s := newTestSystem(6, seed)
		res, err := Optimize(s, fl.Weights{W1: 0.5, W2: 0.5}, Options{MaxOuter: 12})
		if err != nil {
			t.Fatal(err)
		}
		if v := res.DescentViolations(1e-7); v != 0 {
			t.Errorf("seed %d: %d descent violations:\n%s", seed, v, res.Summary())
		}
	}
}
