package core

import (
	"fmt"
	"strings"
)

// Summary renders a compact human-readable report of an optimization
// result: the aggregate energy/latency split and the outer-loop trace.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "objective:        %.6g\n", r.Objective)
	fmt.Fprintf(&b, "total energy:     %.6g J (trans %.6g J + comp %.6g J)\n",
		r.Metrics.TotalEnergy, r.Metrics.TransEnergy, r.Metrics.CompEnergy)
	fmt.Fprintf(&b, "total time:       %.6g s (round %.6g s)\n", r.Metrics.TotalTime, r.Metrics.RoundTime)
	fmt.Fprintf(&b, "round deadline:   %.6g s\n", r.RoundDeadline)
	fmt.Fprintf(&b, "converged:        %t in %d outer iteration(s)\n", r.Converged, len(r.Iterations))
	if len(r.Iterations) > 0 {
		b.WriteString("trace:\n")
		b.WriteString("  iter  objective      deadline    distance    newton  |phi|\n")
		for k, it := range r.Iterations {
			fmt.Fprintf(&b, "  %-4d  %-12.6g  %-10.4g  %-10.3g  %-6d  %.3g\n",
				k, it.Objective, it.RoundDeadline, it.Distance, it.NewtonIters, it.PhiResidual)
		}
	}
	return b.String()
}

// DescentViolations counts outer iterations whose objective rose beyond the
// given relative tolerance — a diagnostic of the monotone-descent guarantee
// (Section VI); zero for healthy runs.
func (r Result) DescentViolations(relTol float64) int {
	count := 0
	for k := 1; k < len(r.Iterations); k++ {
		prev, cur := r.Iterations[k-1].Objective, r.Iterations[k].Objective
		if cur > prev*(1+relTol) {
			count++
		}
	}
	return count
}
