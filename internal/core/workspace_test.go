package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
)

// driftSystem returns a copy of s with every gain multiplied by
// exp(sigma * z_i), the serving layer's channel-drift model.
func driftSystem(s *fl.System, sigma float64, rng *rand.Rand) *fl.System {
	out := *s
	out.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= math.Exp(sigma * rng.NormFloat64())
	}
	return &out
}

func newtonTotal(r Result) int {
	tot := 0
	for _, it := range r.Iterations {
		tot += it.NewtonIters
	}
	return tot
}

// TestDualStartSeededMatchesCold is the correctness contract of dual-state
// warm starts: on randomized drifted scenarios, a solve seeded with a
// neighbour's allocation and dual state reaches the cold solve's objective
// to tolerance, with a feasible allocation and no more Newton iterations.
func TestDualStartSeededMatchesCold(t *testing.T) {
	w := fl.Weights{W1: 0.5, W2: 0.5}
	for seed := int64(1); seed <= 4; seed++ {
		s := newTestSystem(12, seed)
		base, err := Optimize(s, w, Options{})
		if err != nil {
			t.Fatalf("seed %d: base solve: %v", seed, err)
		}
		if base.Duals == nil {
			t.Fatalf("seed %d: base solve exported no duals", seed)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 3; trial++ {
			drifted := driftSystem(s, 0.2, rng)
			cold, err := Optimize(drifted, w, Options{})
			if err != nil {
				t.Fatalf("seed %d trial %d: cold: %v", seed, trial, err)
			}
			start := base.Allocation.Clone()
			seeded, err := Optimize(drifted, w, Options{Start: &start, DualStart: base.Duals})
			if err != nil {
				t.Fatalf("seed %d trial %d: seeded: %v", seed, trial, err)
			}
			if rel := relDiff(seeded.Objective, cold.Objective); rel > 1e-6 {
				t.Errorf("seed %d trial %d: seeded objective %.10g vs cold %.10g (rel %.3g)",
					seed, trial, seeded.Objective, cold.Objective, rel)
			}
			if seeded.Objective > cold.Objective*(1+1e-6) {
				t.Errorf("seed %d trial %d: seeded objective worse than cold", seed, trial)
			}
			if err := drifted.Validate(seeded.Allocation, 1e-6); err != nil {
				t.Errorf("seed %d trial %d: seeded allocation infeasible: %v", seed, trial, err)
			}
			if ns, nc := newtonTotal(seeded), newtonTotal(cold); ns > nc {
				t.Errorf("seed %d trial %d: seeded used %d Newton iterations, cold %d", seed, trial, ns, nc)
			}
			if seeded.Duals == nil || !seeded.Duals.ValidFor(drifted.N()) {
				t.Errorf("seed %d trial %d: seeded solve exported invalid duals", seed, trial)
			}
		}
	}
}

// TestDualSeedSkipsNewton pins the perf contract the serving layer relies
// on: with both the allocation and the dual state seeded from a converged
// neighbour, the whole solve runs zero Newton iterations, while an
// allocation-only warm start still pays at least one.
func TestDualSeedSkipsNewton(t *testing.T) {
	w := fl.Weights{W1: 0.5, W2: 0.5}
	s := newTestSystem(12, 3)
	base, err := Optimize(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	drifted := driftSystem(s, 0.2, rng)

	start := base.Allocation.Clone()
	allocOnly, err := Optimize(drifted, w, Options{Start: &start})
	if err != nil {
		t.Fatal(err)
	}
	start2 := base.Allocation.Clone()
	seeded, err := Optimize(drifted, w, Options{Start: &start2, DualStart: base.Duals})
	if err != nil {
		t.Fatal(err)
	}
	if got := newtonTotal(seeded); got != 0 {
		t.Errorf("dual-seeded solve used %d Newton iterations, want 0", got)
	}
	if got := newtonTotal(allocOnly); got < 1 {
		t.Errorf("allocation-only warm start used %d Newton iterations, want >= 1 (the dual seed is what skips them)", got)
	}
	if rel := relDiff(seeded.Objective, allocOnly.Objective); rel > 1e-6 {
		t.Errorf("seeded and allocation-only objectives differ by %.3g relative", rel)
	}
}

// TestDualStartInvalidIgnored feeds the solver malformed and stale dual
// seeds: every one must be ignored or absorbed — same objective as the
// unseeded solve to tolerance, never an error or a corrupted allocation.
func TestDualStartInvalidIgnored(t *testing.T) {
	w := fl.Weights{W1: 0.5, W2: 0.5}
	s := newTestSystem(10, 2)
	clean, err := Optimize(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	posVec := func(v float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}
	bad := map[string]*DualState{
		"wrong length": {Mu: 1, Nu: posVec(1)[:n-1], Beta: posVec(1)},
		"empty":        {},
		"nan nu":       {Mu: 1, Nu: append(posVec(1)[:n-1], math.NaN()), Beta: posVec(1)},
		"inf beta":     {Mu: 1, Nu: posVec(1), Beta: append(posVec(1)[:n-1], math.Inf(1))},
		"negative nu":  {Mu: 1, Nu: append(posVec(1)[:n-1], -2), Beta: posVec(1)},
		"zero beta":    {Mu: 1, Nu: posVec(1), Beta: append(posVec(1)[:n-1], 0)},
		"negative mu":  {Mu: -3, Nu: posVec(1), Beta: posVec(1)},
		"inf mu":       {Mu: math.Inf(1), Nu: posVec(1), Beta: posVec(1)},
		// Valid-looking but wildly wrong magnitudes: must fail the residual
		// certificate and converge through the normal iteration.
		"stale garbage": {Mu: 12345, Nu: posVec(1e12), Beta: posVec(1e-12)},
	}
	for name, seed := range bad {
		res, err := Optimize(s, w, Options{DualStart: seed})
		if err != nil {
			t.Errorf("%s: solve failed: %v", name, err)
			continue
		}
		if rel := relDiff(res.Objective, clean.Objective); rel > 1e-6 {
			t.Errorf("%s: objective %.10g vs clean %.10g (rel %.3g)", name, res.Objective, clean.Objective, rel)
		}
		if err := s.Validate(res.Allocation, 1e-6); err != nil {
			t.Errorf("%s: allocation infeasible: %v", name, err)
		}
	}
}

// TestWorkspaceReuseMatches solves different instances through one shared
// workspace and checks each against a fresh-memory solve: reuse must never
// leak state between solves.
func TestWorkspaceReuseMatches(t *testing.T) {
	w := fl.Weights{W1: 0.5, W2: 0.5}
	ws := NewWorkspace()
	for seed := int64(1); seed <= 3; seed++ {
		for _, n := range []int{5, 12, 8} { // shrink and grow the buffers
			s := newTestSystem(n, seed)
			shared, err := Optimize(s, w, Options{Work: ws})
			if err != nil {
				t.Fatalf("n=%d seed=%d shared: %v", n, seed, err)
			}
			fresh, err := Optimize(s, w, Options{Work: NewWorkspace()})
			if err != nil {
				t.Fatalf("n=%d seed=%d fresh: %v", n, seed, err)
			}
			if shared.Objective != fresh.Objective {
				t.Errorf("n=%d seed=%d: shared workspace objective %.17g != fresh %.17g",
					n, seed, shared.Objective, fresh.Objective)
			}
			if d := shared.Allocation.Distance(fresh.Allocation); d != 0 {
				t.Errorf("n=%d seed=%d: allocations differ by %g", n, seed, d)
			}
		}
	}
}

// TestPrevDiffZeroAlloc asserts the outer loop's previous-iterate diff —
// formerly a Clone + Distance per iteration — performs zero allocations.
func TestPrevDiffZeroAlloc(t *testing.T) {
	s := newTestSystem(50, 1)
	ws := NewWorkspace()
	ws.grow(s.N())
	a := s.MaxResourceAllocation()
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		ws.stashPrev(a)
		sink += ws.distPrev(a)
	})
	if allocs != 0 {
		t.Fatalf("prev-iterate stash+diff allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// TestOptimizeWorkspaceAllocs bounds the full weighted solve's allocations
// when the caller reuses a workspace. The seed repository ran ~80
// allocations per solve; the workspace path must stay under half that (the
// residue is the returned Result: allocation, metrics, duals, trace).
func TestOptimizeWorkspaceAllocs(t *testing.T) {
	s := newTestSystem(50, 1)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	ws := NewWorkspace()
	opts := Options{Work: ws}
	if _, err := Optimize(s, w, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Optimize(s, w, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Fatalf("Optimize with reused workspace allocates %.1f times per run, want <= 40", allocs)
	}
}
