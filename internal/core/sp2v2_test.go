package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/convex"
	"repro/internal/fl"
	"repro/internal/wireless"
)

// randomSP2Instance draws (nu, beta, rmin) the way Algorithm 1 would: from a
// feasible (p, B) point, with rate floors at a fraction of current rates.
func randomSP2Instance(s *fl.System, seed int64) (nu, beta, rmin []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := s.N()
	nu = make([]float64, n)
	beta = make([]float64, n)
	rmin = make([]float64, n)
	w1Rg := (0.1 + 0.9*rng.Float64()) * s.GlobalRounds
	for i, d := range s.Devices {
		p := d.PMin + rng.Float64()*(d.PMax-d.PMin)
		b := s.Bandwidth / float64(n) * (0.5 + rng.Float64())
		g := s.Rate(i, p, b)
		nu[i] = w1Rg / g
		beta[i] = p * d.UploadBits / g
		rmin[i] = g * (0.1 + 0.6*rng.Float64())
	}
	return nu, beta, rmin
}

// sp2Objective evaluates sum nu_n (p_n d_n - beta_n G_n).
func sp2Objective(s *fl.System, nu, beta, p, b []float64) float64 {
	var sum float64
	for i, d := range s.Devices {
		sum += nu[i] * (p[i]*d.UploadBits - beta[i]*s.Rate(i, p[i], b[i]))
	}
	return sum
}

func checkSP2Feasible(t *testing.T, s *fl.System, rmin, p, b []float64) {
	t.Helper()
	var sumB float64
	for i, d := range s.Devices {
		if p[i] < d.PMin*(1-1e-9) || p[i] > d.PMax*(1+1e-9) {
			t.Errorf("p[%d] = %g outside [%g,%g]", i, p[i], d.PMin, d.PMax)
		}
		if b[i] <= 0 {
			t.Errorf("B[%d] = %g not positive", i, b[i])
		}
		if r := s.Rate(i, p[i], b[i]); r < rmin[i]*(1-1e-6) {
			t.Errorf("rate[%d] = %g below floor %g", i, r, rmin[i])
		}
		sumB += b[i]
	}
	if sumB > s.Bandwidth*(1+1e-9) {
		t.Errorf("sum B = %g exceeds %g", sumB, s.Bandwidth)
	}
}

func TestSolveSP2v2FeasibilityAndShape(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		s := newTestSystem(5, seed)
		nu, beta, rmin := randomSP2Instance(s, seed+100)
		res, err := SolveSP2v2(s, nu, beta, rmin)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSP2Feasible(t, s, rmin, res.Power, res.Bandwidth)
		if res.Mu <= 0 {
			t.Errorf("seed %d: clearing price %g should be positive", seed, res.Mu)
		}
		// The band constraint always binds at the optimum (extra bandwidth
		// strictly reduces transmission energy).
		var sumB float64
		for _, b := range res.Bandwidth {
			sumB += b
		}
		if sumB < s.Bandwidth*0.999 {
			t.Errorf("seed %d: only %g of %g Hz used", seed, sumB, s.Bandwidth)
		}
	}
}

// The closed-form waterfilling must match the generic barrier oracle.
func TestSolveSP2v2MatchesBarrierOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle comparison is slow")
	}
	for seed := int64(1); seed <= 8; seed++ {
		s := newTestSystem(4, seed)
		nu, beta, rmin := randomSP2Instance(s, seed+7)
		res, err := SolveSP2v2(s, nu, beta, rmin)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		oracleObj, oracleErr := sp2BarrierOracle(s, nu, beta, rmin)
		if oracleErr != nil {
			t.Fatalf("seed %d oracle: %v", seed, oracleErr)
		}
		got := sp2Objective(s, nu, beta, res.Power, res.Bandwidth)
		// The closed form must not be worse than the oracle beyond solver
		// slack (the oracle itself is approximate).
		scale := math.Max(math.Abs(got), math.Abs(oracleObj))
		if got > oracleObj+2e-3*scale {
			t.Errorf("seed %d: waterfilling obj %.8g worse than oracle %.8g", seed, got, oracleObj)
		}
	}
}

// sp2BarrierOracle solves SP2_v2 with the generic interior-point method and
// returns the objective value.
func sp2BarrierOracle(s *fl.System, nu, beta, rmin []float64) (float64, error) {
	n := s.N()
	// Variables x = [p_1..p_n, B_1..B_n].
	lower := make([]float64, 2*n)
	upper := make([]float64, 2*n)
	x0 := make([]float64, 2*n)
	for i, d := range s.Devices {
		lower[i] = d.PMin
		upper[i] = d.PMax
		lower[n+i] = 1 // 1 Hz floor keeps logs finite
		upper[n+i] = s.Bandwidth
		x0[i] = d.PMax * 0.999
		x0[n+i] = s.Bandwidth / float64(n) * 0.98
	}
	dG := func(i int, p, b float64) (gp, gb float64) {
		theta := p * s.Devices[i].Gain / (s.N0 * b)
		gp = s.Devices[i].Gain / (s.N0 * math.Ln2 * (1 + theta))
		gb = math.Log2(1+theta) - theta/((1+theta)*math.Ln2)
		return gp, gb
	}
	prob := convex.Problem{
		Objective: func(x []float64) float64 {
			var sum float64
			for i, d := range s.Devices {
				sum += nu[i] * (x[i]*d.UploadBits - beta[i]*s.Rate(i, x[i], x[n+i]))
			}
			return sum
		},
		Gradient: func(x, out []float64) {
			for i, d := range s.Devices {
				gp, gb := dG(i, x[i], x[n+i])
				out[i] = nu[i] * (d.UploadBits - beta[i]*gp)
				out[n+i] = -nu[i] * beta[i] * gb
			}
		},
		Lower: lower,
		Upper: upper,
	}
	// sum B <= B_total.
	prob.Ineqs = append(prob.Ineqs, convex.Constraint{
		F: func(x []float64) float64 {
			var sum float64
			for i := 0; i < n; i++ {
				sum += x[n+i]
			}
			return sum - s.Bandwidth
		},
		Grad: func(x, out []float64) {
			for i := range out {
				out[i] = 0
			}
			for i := 0; i < n; i++ {
				out[n+i] = 1
			}
		},
	})
	// Rate floors: rmin - G <= 0.
	for i := range s.Devices {
		i := i
		prob.Ineqs = append(prob.Ineqs, convex.Constraint{
			F: func(x []float64) float64 { return rmin[i] - s.Rate(i, x[i], x[n+i]) },
			Grad: func(x, out []float64) {
				for j := range out {
					out[j] = 0
				}
				gp, gb := dG(i, x[i], x[n+i])
				out[i] = -gp
				out[n+i] = -gb
			},
		})
	}
	// Verify x0 strict feasibility wrt rates (instances are drawn that way).
	for i := range s.Devices {
		if s.Rate(i, x0[i], x0[n+i]) <= rmin[i] {
			// Push bandwidth up for this device within the budget.
			x0[n+i] = math.Min(s.Bandwidth*0.5, x0[n+i]*4)
		}
	}
	xs, err := convex.Minimize(prob, x0, convex.Options{Tol: 1e-10})
	if err != nil {
		return 0, err
	}
	var obj float64
	for i, d := range s.Devices {
		obj += nu[i] * (xs[i]*d.UploadBits - beta[i]*s.Rate(i, xs[i], xs[n+i]))
	}
	return obj, nil
}

func TestSolveSP2v2PaperDualAgrees(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		s := newTestSystem(5, seed)
		nu, beta, rmin := randomSP2Instance(s, seed+55)
		wf, err := SolveSP2v2(s, nu, beta, rmin)
		if err != nil {
			t.Fatalf("seed %d waterfilling: %v", seed, err)
		}
		pd, err := SolveSP2v2PaperDual(s, nu, beta, rmin)
		if err != nil {
			t.Fatalf("seed %d paper dual: %v", seed, err)
		}
		checkSP2Feasible(t, s, rmin, pd.Power, pd.Bandwidth)
		objWF := sp2Objective(s, nu, beta, wf.Power, wf.Bandwidth)
		objPD := sp2Objective(s, nu, beta, pd.Power, pd.Bandwidth)
		// The waterfilling folds the tau clamp into the price search and
		// must never be meaningfully worse than the literal pathway.
		scale := math.Max(math.Abs(objWF), math.Abs(objPD))
		if objWF > objPD+1e-6*scale {
			t.Errorf("seed %d: waterfilling %.10g worse than paper dual %.10g", seed, objWF, objPD)
		}
	}
}

func TestSolveSP2v2Infeasible(t *testing.T) {
	s := newTestSystem(3, 3)
	nu, beta, rmin := randomSP2Instance(s, 9)
	// Demand wideband-impossible rates.
	for i, d := range s.Devices {
		rmin[i] = wireless.RateLimit(d.PMax, d.Gain, s.N0) * 2
	}
	if _, err := SolveSP2v2(s, nu, beta, rmin); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unreachable rates: want ErrInfeasible, got %v", err)
	}
	// Rates reachable per-device but not jointly within B.
	nu2, beta2, rmin2 := randomSP2Instance(s, 10)
	for i, d := range s.Devices {
		lim := wireless.RateLimit(d.PMax, d.Gain, s.N0)
		rmin2[i] = lim * 0.999999 // needs essentially infinite bandwidth
	}
	if _, err := SolveSP2v2(s, nu2, beta2, rmin2); !errors.Is(err, ErrInfeasible) {
		t.Errorf("band overcommitted: want ErrInfeasible, got %v", err)
	}
	_ = nu2
	_ = beta2
}

func TestSolveSP2v2BadInput(t *testing.T) {
	s := newTestSystem(3, 4)
	nu, beta, rmin := randomSP2Instance(s, 4)
	if _, err := SolveSP2v2(s, nu[:2], beta, rmin); !errors.Is(err, ErrBadInput) {
		t.Errorf("short nu: want ErrBadInput, got %v", err)
	}
	nuBad := append([]float64(nil), nu...)
	nuBad[0] = 0
	if _, err := SolveSP2v2(s, nuBad, beta, rmin); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero nu: want ErrBadInput, got %v", err)
	}
	rminBad := append([]float64(nil), rmin...)
	rminBad[1] = 0
	if _, err := SolveSP2v2(s, nu, beta, rminBad); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero rmin: want ErrBadInput, got %v", err)
	}
}

// KKT spot check: at the solution, interior devices (no box or rate
// constraint active) must share the bandwidth price:
// nu*beta*dG/dB = mu, and nu*(d - beta*dG/dp) = 0.
func TestSolveSP2v2KKTStationarity(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := newTestSystem(6, seed)
		nu, beta, rmin := randomSP2Instance(s, seed+31)
		res, err := SolveSP2v2(s, nu, beta, rmin)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range s.Devices {
			p, b := res.Power[i], res.Bandwidth[i]
			interiorP := p > d.PMin*(1+1e-6) && p < d.PMax*(1-1e-6)
			rateSlack := s.Rate(i, p, b) > rmin[i]*(1+1e-6)
			if !(interiorP && rateSlack) {
				continue
			}
			theta := p * d.Gain / (s.N0 * b)
			gp := d.Gain / (s.N0 * math.Ln2 * (1 + theta))
			gb := math.Log2(1+theta) - theta/((1+theta)*math.Ln2)
			// Stationarity in p: nu*(d - beta*gp) = 0.
			if r := math.Abs(nu[i] * (d.UploadBits - beta[i]*gp)); r > 1e-6*nu[i]*d.UploadBits {
				t.Errorf("seed %d device %d: p-stationarity residual %g", seed, i, r)
			}
			// Stationarity in B: nu*beta*gb = mu.
			if relDiff(nu[i]*beta[i]*gb, res.Mu) > 1e-5 {
				t.Errorf("seed %d device %d: B-stationarity %g vs mu %g",
					seed, i, nu[i]*beta[i]*gb, res.Mu)
			}
		}
	}
}
