package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
)

// SP2Result is the solution of Subproblem 2 (eq. (11)) produced by
// Algorithm 1.
type SP2Result struct {
	// Power and Bandwidth are the final p_n, B_n.
	Power, Bandwidth []float64
	// Iterations is the number of Newton-like outer iterations used.
	Iterations int
	// PhiResidual is |phi(beta, nu)| at exit (0 at an exact fixed point).
	PhiResidual float64
	// CommEnergy is the achieved weighted transmission energy
	// w1*Rg*sum_n p_n*d_n/G_n, the Subproblem 2 objective.
	CommEnergy float64
}

// phiResidual computes |phi(beta, nu)| of eq. (26) at rates g.
func phiResidual(w1Rg float64, d, p, g, beta, nu []float64) float64 {
	var sum float64
	for i := range d {
		f1 := -p[i]*d[i] + beta[i]*g[i]
		f2 := -w1Rg + nu[i]*g[i]
		sum += f1*f1 + f2*f2
	}
	return math.Sqrt(sum)
}

// SolveSubproblem2 runs Algorithm 1: the Newton-like iteration of Jong for
// the sum-of-ratios program (11). Starting from a feasible (p, B) with rates
// at least rmin, it alternates
//
//	nu_n = w1*Rg / G_n,  beta_n = p_n*d_n / G_n          (step 3, eq. (22)-(23))
//	(p, B) <- argmin SP2_v2(nu, beta)                    (step 4, Theorem 2)
//	damped Newton update of (beta, nu) per (29)-(31)     (steps 5-6)
//
// until phi = 0 (the fixed point where the SP2_v2 solution is optimal for
// the original fractional program) or MaxNewton iterations. useIPaperDual
// selects the literal Appendix-B inner solver.
func SolveSubproblem2(s *fl.System, w1Rg float64, rmin []float64, startP, startB []float64, opts Options) (SP2Result, error) {
	opts = opts.withDefaults()
	n := s.N()
	if len(rmin) != n || len(startP) != n || len(startB) != n {
		return SP2Result{}, fmt.Errorf("core: SolveSubproblem2 slice lengths: %w", ErrBadInput)
	}
	if !(w1Rg > 0) {
		return SP2Result{}, fmt.Errorf("core: SolveSubproblem2 needs w1*Rg > 0 (w1=0 is handled by SolveMinTime): %w", ErrBadInput)
	}
	if opts.SP2Solver == SP2DirectOnly {
		return SolveSubproblem2Direct(s, w1Rg, rmin)
	}

	d := make([]float64, n)
	for i, dev := range s.Devices {
		d[i] = dev.UploadBits
	}
	p := append([]float64(nil), startP...)
	b := append([]float64(nil), startB...)

	rates := func(p, b []float64) []float64 {
		g := make([]float64, n)
		for i := range g {
			g[i] = s.Rate(i, p[i], b[i])
			if !(g[i] > 0) {
				g[i] = math.SmallestNonzeroFloat64
			}
		}
		return g
	}

	// Initialize (nu, beta) from the start point per step 3.
	g := rates(p, b)
	nu := make([]float64, n)
	beta := make([]float64, n)
	for i := range g {
		nu[i] = w1Rg / g[i]
		beta[i] = p[i] * d[i] / g[i]
	}

	// evalPhi is the residual map of eq. (26) as a function of the
	// multipliers: it re-solves SP2_v2 at (nu, beta) — the argmin x(beta,nu)
	// is part of phi's definition in Jong's method, so the damped line
	// search (29) must re-solve per trial, not reuse a stale point.
	evalPhi := func(beta, nu []float64) (float64, []float64, []float64, []float64, error) {
		inner, err := solveInner(s, nu, beta, rmin, opts.UsePaperSP2Dual)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		gg := rates(inner.Power, inner.Bandwidth)
		return phiResidual(w1Rg, d, inner.Power, gg, beta, nu), inner.Power, inner.Bandwidth, gg, nil
	}

	residual, pCur, bCur, gCur, err := evalPhi(beta, nu)
	if err != nil {
		return SP2Result{}, fmt.Errorf("core: Algorithm 1 initial solve: %w", err)
	}
	p, b, g = pCur, bCur, gCur
	phi0 := residual

	var iters int
	for iters = 0; iters < opts.MaxNewton; iters++ {
		if residual <= opts.PhiTol*(1+phi0) {
			break
		}
		// Newton direction (30) with the diagonal Jacobian diag(G_n):
		// sigma1_n = (p_n d_n - beta_n G_n)/G_n, sigma2_n = (w1Rg - nu_n G_n)/G_n.
		sigma1 := make([]float64, n)
		sigma2 := make([]float64, n)
		for i := range g {
			sigma1[i] = (p[i]*d[i] - beta[i]*g[i]) / g[i]
			sigma2[i] = (w1Rg - nu[i]*g[i]) / g[i]
		}
		stepTaken := false
		xi := 1.0 // xi^j with j starting at 0
		for j := 0; j < 30; j++ {
			nb := make([]float64, n)
			nn := make([]float64, n)
			ok := true
			for i := range g {
				nb[i] = beta[i] + xi*sigma1[i]
				nn[i] = nu[i] + xi*sigma2[i]
				if !(nb[i] > 0) || !(nn[i] > 0) {
					ok = false
					break
				}
			}
			if ok {
				trial, pT, bT, gT, errT := evalPhi(nb, nn)
				if errT == nil && trial <= (1-opts.Epsilon*xi)*residual {
					beta, nu = nb, nn
					residual, p, b, g = trial, pT, bT, gT
					stepTaken = true
					break
				}
			}
			xi *= opts.Xi
		}
		if !stepTaken {
			// Even heavily damped steps no longer reduce phi: numerical
			// fixed point of the iteration.
			break
		}
	}

	res := SP2Result{Power: p, Bandwidth: b, Iterations: iters, PhiResidual: residual}
	for i := range g {
		res.CommEnergy += w1Rg * p[i] * d[i] / g[i]
	}
	if opts.SP2Solver == SP2Hybrid {
		if direct, derr := SolveSubproblem2Direct(s, w1Rg, rmin); derr == nil && direct.CommEnergy < res.CommEnergy {
			direct.Iterations = res.Iterations
			direct.PhiResidual = res.PhiResidual
			return direct, nil
		}
	}
	return res, nil
}

func solveInner(s *fl.System, nu, beta, rmin []float64, paperDual bool) (SP2v2Result, error) {
	if paperDual {
		return SolveSP2v2PaperDual(s, nu, beta, rmin)
	}
	return SolveSP2v2(s, nu, beta, rmin)
}

// CommEnergyWeighted returns w1Rg * sum_n p_n d_n / G_n for an explicit
// allocation — the Subproblem 2 objective, exposed for tests and baselines.
func CommEnergyWeighted(s *fl.System, w1Rg float64, p, b []float64) float64 {
	var sum float64
	for i, dev := range s.Devices {
		g := s.Rate(i, p[i], b[i])
		if g <= 0 {
			return math.Inf(1)
		}
		sum += p[i] * dev.UploadBits / g
	}
	return w1Rg * sum
}
