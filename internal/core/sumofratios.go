package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
)

// SP2Result is the solution of Subproblem 2 (eq. (11)) produced by
// Algorithm 1.
type SP2Result struct {
	// Power and Bandwidth are the final p_n, B_n.
	Power, Bandwidth []float64
	// Iterations is the number of Newton-like outer iterations used.
	Iterations int
	// PhiResidual is |phi(beta, nu)| at exit (0 at an exact fixed point).
	PhiResidual float64
	// CommEnergy is the achieved weighted transmission energy
	// w1*Rg*sum_n p_n*d_n/G_n, the Subproblem 2 objective.
	CommEnergy float64
	// Duals is the self-consistent dual state at the returned allocation
	// (nu_n = w1Rg/G_n, beta_n = p_n*d_n/G_n, plus the final inner
	// bandwidth price). When Options.Work was provided its slices alias the
	// workspace and are overwritten by the next solve on it.
	Duals DualState
}

// phiResidual computes |phi(beta, nu)| of eq. (26) at rates g.
func phiResidual(w1Rg float64, d, p, g, beta, nu []float64) float64 {
	var sum float64
	for i := range d {
		f1 := -p[i]*d[i] + beta[i]*g[i]
		f2 := -w1Rg + nu[i]*g[i]
		sum += f1*f1 + f2*f2
	}
	return math.Sqrt(sum)
}

// phiReference is the magnitude of the residual's constituent terms,
// sqrt(sum_n ((p_n d_n)^2 + (w1Rg)^2)): the scale against which a phi value
// counts as converged. Unlike the legacy phi0-relative check it does not
// depend on the start point, so a seeded solve can recognize an
// already-converged init.
func phiReference(w1Rg float64, d, p []float64) float64 {
	var sum float64
	for i := range d {
		pd := p[i] * d[i]
		sum += pd*pd + w1Rg*w1Rg
	}
	return math.Sqrt(sum)
}

// SolveSubproblem2 runs Algorithm 1: the Newton-like iteration of Jong for
// the sum-of-ratios program (11). Starting from a feasible (p, B) with rates
// at least rmin, it alternates
//
//	nu_n = w1*Rg / G_n,  beta_n = p_n*d_n / G_n          (step 3, eq. (22)-(23))
//	(p, B) <- argmin SP2_v2(nu, beta)                    (step 4, Theorem 2)
//	damped Newton update of (beta, nu) per (29)-(31)     (steps 5-6)
//
// until phi = 0 (the fixed point where the SP2_v2 solution is optimal for
// the original fractional program) or MaxNewton iterations.
//
// A valid Options.DualStart changes the convergence bookkeeping, not the
// mathematics: it certifies the start point as the converged fixed point of
// a neighbouring instance, so after the mandatory first inner solve the
// iteration may stop at zero Newton steps when the measured relative
// residual confirms the certificate (<= DualSeedTol of the residual term
// magnitude). The certificate is only honoured under SP2Hybrid, whose
// direct-solver polish bounds the result by the subproblem's global optimum
// regardless of the seed's quality; a stale seed simply fails the residual
// check and the full iteration runs. The seed's bandwidth price narrows the
// inner bisection bracket either way.
func SolveSubproblem2(s *fl.System, w1Rg float64, rmin []float64, startP, startB []float64, opts Options) (SP2Result, error) {
	opts = opts.withDefaults()
	n := s.N()
	if len(rmin) != n || len(startP) != n || len(startB) != n {
		return SP2Result{}, fmt.Errorf("core: SolveSubproblem2 slice lengths: %w", ErrBadInput)
	}
	if !(w1Rg > 0) {
		return SP2Result{}, fmt.Errorf("core: SolveSubproblem2 needs w1*Rg > 0 (w1=0 is handled by SolveMinTime): %w", ErrBadInput)
	}
	if opts.SP2Solver == SP2DirectOnly {
		return SolveSubproblem2Direct(s, w1Rg, rmin)
	}

	// The workspace owns every slice below. A caller-provided one is reused
	// as documented; otherwise a private one is allocated (not pooled: the
	// returned slices alias it).
	ws := opts.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.grow(n)
	// Snapshot the workspace's monotonic bracket counters; the deltas at
	// return are this call's contribution to the solve trace.
	brS0, brD0, brW0 := ws.brSeeded, ws.brDiscovered, ws.brRelSum

	d := ws.d
	for i, dev := range s.Devices {
		d[i] = dev.UploadBits
	}

	ratesInto := func(p, b, g []float64) {
		for i := range g {
			g[i] = s.Rate(i, p[i], b[i])
			if !(g[i] > 0) {
				g[i] = math.SmallestNonzeroFloat64
			}
		}
	}

	// evalPhi is the residual map of eq. (26) as a function of the
	// multipliers: it re-solves SP2_v2 at (nu, beta) — the argmin x(beta,nu)
	// is part of phi's definition in Jong's method, so the damped line
	// search (29) must re-solve per trial, not reuse a stale point. The
	// inner solution lands in (outP, outB, outG).
	evalPhi := func(beta, nu, outP, outB, outG []float64) (float64, error) {
		if err := solveInner(s, nu, beta, rmin, opts.UsePaperSP2Dual, ws, outP, outB); err != nil {
			return 0, err
		}
		ratesInto(outP, outB, outG)
		return phiResidual(w1Rg, d, outP, outG, beta, nu), nil
	}

	nu, beta := ws.nu, ws.beta
	curP, curB, curG := ws.curP, ws.curB, ws.curG
	triP, triB, triG := ws.triP, ws.triB, ws.triG

	// Initialize (nu, beta) per step 3 from the start point, or from the
	// dual seed. The seeded path tries the raw cached multipliers first
	// (exact for a replayed instance); when their residual misses the
	// certificate tolerance — channel gains drifted, so the cached 1/G_n
	// scale is off — it falls back to the step-3 init at the certified
	// start allocation, which projects the same fixed point onto the
	// current gains, and accepts that when it passes instead.
	seed := opts.DualStart
	seeded := opts.SP2Solver == SP2Hybrid && seed.ValidFor(n)
	seedOutcome := DualSeedNone
	if seeded && seed.Mu > 0 {
		ws.lastMu = seed.Mu
	}
	stepThreeInit := func(beta, nu []float64) {
		ratesInto(startP, startB, triG)
		for i := range nu {
			nu[i] = w1Rg / triG[i]
			beta[i] = startP[i] * d[i] / triG[i]
		}
	}
	if seeded {
		copy(nu, seed.Nu)
		copy(beta, seed.Beta)
	} else {
		stepThreeInit(beta, nu)
	}

	residual, err := evalPhi(beta, nu, curP, curB, curG)
	if err != nil && seeded {
		// A seed sound enough to pass validation can still push the inner
		// program somewhere degenerate; fall back to the unseeded init.
		seeded = false
		seedOutcome = DualSeedErrored
		stepThreeInit(beta, nu)
		residual, err = evalPhi(beta, nu, curP, curB, curG)
	}
	if err != nil {
		return SP2Result{}, fmt.Errorf("core: Algorithm 1 initial solve: %w", err)
	}
	accepted := false
	if seeded {
		seedOutcome = DualSeedRejected
		if ref := phiReference(w1Rg, d, curP); residual <= opts.DualSeedTol*(1+ref) {
			accepted = true
			seedOutcome = DualSeedAccepted
		} else {
			// Gains drifted: project the certificate through the start
			// allocation and re-check.
			stepThreeInit(ws.nb, ws.nn)
			trial, terr := evalPhi(ws.nb, ws.nn, triP, triB, triG)
			if terr == nil && trial <= residual {
				ws.nb, ws.beta = ws.beta, ws.nb
				ws.nn, ws.nu = ws.nu, ws.nn
				beta, nu = ws.beta, ws.nu
				ws.curP, ws.triP = ws.triP, ws.curP
				ws.curB, ws.triB = ws.triB, ws.curB
				ws.curG, ws.triG = ws.triG, ws.curG
				curP, curB, curG = ws.curP, ws.curB, ws.curG
				triP, triB, triG = ws.triP, ws.triB, ws.triG
				residual = trial
				if ref := phiReference(w1Rg, d, curP); residual <= opts.DualSeedTol*(1+ref) {
					accepted = true
					seedOutcome = DualSeedProjected
				}
			}
		}
	}
	phi0 := residual

	var iters int
	if !accepted {
		for iters = 0; iters < opts.MaxNewton; iters++ {
			if residual <= opts.PhiTol*(1+phi0) {
				break
			}
			// Newton direction (30) with the diagonal Jacobian diag(G_n):
			// sigma1_n = (p_n d_n - beta_n G_n)/G_n, sigma2_n = (w1Rg - nu_n G_n)/G_n.
			sigma1, sigma2 := ws.sigma1, ws.sigma2
			for i := range curG {
				sigma1[i] = (curP[i]*d[i] - beta[i]*curG[i]) / curG[i]
				sigma2[i] = (w1Rg - nu[i]*curG[i]) / curG[i]
			}
			stepTaken := false
			xi := 1.0 // xi^j with j starting at 0
			for j := 0; j < 30; j++ {
				nb, nn := ws.nb, ws.nn
				ok := true
				for i := range curG {
					nb[i] = beta[i] + xi*sigma1[i]
					nn[i] = nu[i] + xi*sigma2[i]
					if !(nb[i] > 0) || !(nn[i] > 0) {
						ok = false
						break
					}
				}
				if ok {
					trial, errT := evalPhi(nb, nn, triP, triB, triG)
					if errT == nil && trial <= (1-opts.Epsilon*xi)*residual {
						// Accept by swapping buffers: the rejected iterate's
						// storage becomes the next trial's scratch.
						ws.beta, ws.nb = ws.nb, ws.beta
						ws.nu, ws.nn = ws.nn, ws.nu
						beta, nu = ws.beta, ws.nu
						ws.curP, ws.triP = ws.triP, ws.curP
						ws.curB, ws.triB = ws.triB, ws.curB
						ws.curG, ws.triG = ws.triG, ws.curG
						curP, curB, curG = ws.curP, ws.curB, ws.curG
						triP, triB, triG = ws.triP, ws.triB, ws.triG
						residual = trial
						stepTaken = true
						break
					}
				}
				xi *= opts.Xi
			}
			if !stepTaken {
				// Even heavily damped steps no longer reduce phi: numerical
				// fixed point of the iteration.
				break
			}
		}
	}

	res := SP2Result{Power: curP, Bandwidth: curB, Iterations: iters, PhiResidual: residual}
	for i := range curG {
		res.CommEnergy += w1Rg * curP[i] * d[i] / curG[i]
	}
	if opts.SP2Solver == SP2Hybrid {
		if direct, derr := solveSubproblem2DirectInto(s, w1Rg, rmin, ws, ws.dirP, ws.dirB); derr == nil && direct.CommEnergy < res.CommEnergy {
			direct.Iterations = res.Iterations
			direct.PhiResidual = res.PhiResidual
			res = direct
		}
	}
	// Export the self-consistent dual state at whatever allocation is being
	// returned; a neighbouring solve seeds from it.
	ratesInto(res.Power, res.Bandwidth, curG)
	for i := range curG {
		ws.outNu[i] = w1Rg / curG[i]
		ws.outBeta[i] = res.Power[i] * d[i] / curG[i]
	}
	res.Duals = DualState{Mu: ws.lastMu, Nu: ws.outNu, Beta: ws.outBeta}
	if tr := opts.Trace; tr != nil {
		tr.BracketSeeded += ws.brSeeded - brS0
		tr.BracketDiscovered += ws.brDiscovered - brD0
		tr.BracketRelWidth += ws.brRelSum - brW0
		// First call wins: within one Optimize, only the first SP2 call sees
		// the external seed; later ones re-seed from their own iterates.
		if tr.DualSeedOutcome == "" {
			tr.DualSeedOutcome = seedOutcome
		}
	}
	return res, nil
}

// solveInner dispatches the inner SP2_v2 solve, writing powers and
// bandwidths into outP/outB. paperDual selects the literal Appendix-B inner
// solver (fidelity mode, not allocation-free).
func solveInner(s *fl.System, nu, beta, rmin []float64, paperDual bool, ws *Workspace, outP, outB []float64) error {
	if paperDual {
		inner, err := SolveSP2v2PaperDual(s, nu, beta, rmin)
		if err != nil {
			return err
		}
		copy(outP, inner.Power)
		copy(outB, inner.Bandwidth)
		if inner.Mu > 0 {
			ws.lastMu = inner.Mu
		}
		return nil
	}
	_, _, err := solveSP2v2Into(s, nu, beta, rmin, ws, outP, outB)
	return err
}

// CommEnergyWeighted returns w1Rg * sum_n p_n d_n / G_n for an explicit
// allocation — the Subproblem 2 objective, exposed for tests and baselines.
func CommEnergyWeighted(s *fl.System, w1Rg float64, p, b []float64) float64 {
	var sum float64
	for i, dev := range s.Devices {
		g := s.Rate(i, p[i], b[i])
		if g <= 0 {
			return math.Inf(1)
		}
		sum += p[i] * dev.UploadBits / g
	}
	return w1Rg * sum
}
