package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/numeric"
)

// SolveWeightedJoint minimizes the weighted objective (8) by a 1-D search
// over the round deadline T, solving the fixed-deadline energy problem
// exactly (dual decomposition, solveDeadlineJoint) at each candidate:
//
//	min_T  w1 * E*(T) + w2 * Rg * T,
//
// where E*(T) is the minimum total energy at per-round deadline T. E* is
// non-increasing in T, so the objective is the sum of a decreasing and a
// linear term — unimodal in practice — and a bracketed golden section finds
// the optimum.
//
// Rationale (see DESIGN.md): the paper's Algorithm 2 freezes the
// transmission variables whenever Subproblem 1's deadline is tight — the
// rate floors then equal the current rates and, from the full-power start,
// the bandwidth floors exactly fill B, so Subproblem 2 must return its
// input. The alternation therefore only ever tunes frequencies in the
// tight-weight regime. This solver restores the full compute/communicate
// tradeoff at the cost of one deadline solve per search point.
func SolveWeightedJoint(s *fl.System, w fl.Weights, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.check(s, w); err != nil {
		return Result{}, err
	}
	if w.W1 == 0 || w.W2 == 0 {
		// Corners are degenerate for the T-search (no tradeoff); the
		// standard pathways already solve them well.
		return Optimize(s, w, opts)
	}

	mt, err := SolveMinTime(s)
	if err != nil {
		return Result{}, err
	}
	tMin := mt.RoundDeadline * (1 + 1e-9)

	type point struct {
		alloc fl.Allocation
		obj   float64
		ok    bool
	}
	cache := map[float64]point{}
	eval := func(t float64) point {
		if p, hit := cache[t]; hit {
			return p
		}
		var p point
		alloc, err := solveDeadlineJoint(s, t)
		if err == nil {
			m := s.Evaluate(alloc)
			p = point{alloc: alloc, obj: w.W1*m.TotalEnergy + w.W2*s.GlobalRounds*t, ok: true}
		} else {
			p.obj = math.Inf(1)
		}
		cache[t] = p
		return p
	}

	// Bracket: expand T geometrically from the physical floor until the
	// objective turns upward (the linear w2 term eventually dominates).
	lo := tMin
	hi := tMin * 2
	prev := eval(lo).obj
	for iter := 0; iter < 60; iter++ {
		cur := eval(hi).obj
		if cur > prev && !math.IsInf(cur, 1) {
			break
		}
		prev = cur
		hi *= 2
	}

	tStar, err := numeric.GridRefineMin(func(t float64) float64 { return eval(t).obj }, lo, hi, 12, 2e-3*hi)
	if err != nil {
		return Result{}, fmt.Errorf("core: weighted joint deadline search: %w", err)
	}
	best := eval(tStar)
	if !best.ok {
		// Fall back to the nearest cached feasible point.
		for t, p := range cache {
			if p.ok && (math.IsInf(best.obj, 1) || p.obj < best.obj) {
				best = p
				tStar = t
			}
		}
		if !best.ok {
			return Result{}, fmt.Errorf("core: no feasible deadline in [%g, %g]: %w", lo, hi, ErrInfeasible)
		}
	}

	res := Result{
		Allocation:    best.alloc,
		RoundDeadline: tStar,
		Metrics:       s.Evaluate(best.alloc),
		Converged:     true,
	}
	res.Objective = w.W1*res.Metrics.TotalEnergy + w.W2*res.Metrics.TotalTime
	res.Iterations = []IterationTrace{{Objective: res.Objective, RoundDeadline: tStar}}
	return res, nil
}
