package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/numeric"
)

// SP1Result is the solution of Subproblem 1 (eq. (10)).
type SP1Result struct {
	// Freq holds the optimal CPU frequencies f_n.
	Freq []float64
	// RoundDeadline is the optimal per-round deadline T.
	RoundDeadline float64
	// Objective is the Subproblem-1 objective value
	// w1*Rg*sum kappa*Rl*c_n*D_n*f_n^2 + w2*Rg*T.
	Objective float64
}

// sp1Objective evaluates the Subproblem 1 objective for a given deadline,
// frequencies implied by freqForDeadline.
func sp1Objective(s *fl.System, w fl.Weights, upTimes []float64, deadline float64) float64 {
	var energy float64
	for n := range s.Devices {
		f := freqForDeadline(s, n, upTimes[n], deadline)
		energy += s.CompEnergyRound(n, f)
	}
	return w.W1*s.GlobalRounds*energy + w.W2*s.GlobalRounds*deadline
}

// freqForDeadline returns the cheapest feasible frequency for device n given
// its upload time and the candidate per-round deadline: the exact frequency
// that fills the residual time, clamped to the box. (Computation energy is
// increasing in f, so the smallest feasible f is optimal.)
func freqForDeadline(s *fl.System, n int, upTime, deadline float64) float64 {
	d := s.Devices[n]
	residual := deadline - upTime
	if residual <= 0 {
		return d.FMax // infeasible deadline; caller screens this out
	}
	need := s.LocalIters * d.CyclesPerIteration() / residual
	return numeric.Clamp(need, d.FMin, d.FMax)
}

// SolveSubproblem1 solves Subproblem 1 exactly: given the current upload
// times T_up_n, it chooses the per-round deadline T and frequencies f_n
// minimizing w1*Rg*sum_n kappa*Rl*c_n*D_n*f_n^2 + w2*Rg*T subject to the
// frequency boxes and T_cmp_n + T_up_n <= T.
//
// The objective is convex in T on the feasible interval
// [max_n(T_cmp(FMax)+T_up), max_n(T_cmp(FMin)+T_up)] because
// f_n(T) = max(Rl*c_n*D_n/(T-T_up_n), FMin) is convex positive decreasing;
// golden section therefore finds the global optimum.
func SolveSubproblem1(s *fl.System, w fl.Weights, upTimes []float64) (SP1Result, error) {
	return solveSubproblem1Into(s, w, upTimes, nil)
}

// solveSubproblem1Into is SolveSubproblem1 writing the frequencies into
// freq when non-nil (workspace reuse; the result's Freq aliases it).
func solveSubproblem1Into(s *fl.System, w fl.Weights, upTimes, freq []float64) (SP1Result, error) {
	n := s.N()
	if len(upTimes) != n {
		return SP1Result{}, fmt.Errorf("core: SolveSubproblem1 upTimes length %d, want %d: %w", len(upTimes), n, ErrBadInput)
	}
	var tLo, tHi float64
	for i, d := range s.Devices {
		if !(upTimes[i] >= 0) || math.IsInf(upTimes[i], 1) {
			return SP1Result{}, fmt.Errorf("core: upload time %d = %g: %w", i, upTimes[i], ErrBadInput)
		}
		cmpFast := s.LocalIters * d.CyclesPerIteration() / d.FMax
		cmpSlow := s.LocalIters * d.CyclesPerIteration() / d.FMin
		if t := cmpFast + upTimes[i]; t > tLo {
			tLo = t
		}
		if t := cmpSlow + upTimes[i]; t > tHi {
			tHi = t
		}
	}

	var deadline float64
	switch {
	case w.W2 == 0:
		// Pure energy: the deadline constraint never binds; run every CPU at
		// its floor.
		deadline = tHi
	case w.W1 == 0:
		// Pure delay: tightest feasible deadline.
		deadline = tLo
	default:
		var err error
		deadline, err = numeric.GoldenSection(func(t float64) float64 {
			return sp1Objective(s, w, upTimes, t)
		}, tLo, tHi, 1e-10*math.Max(tHi, 1))
		if err != nil {
			return SP1Result{}, fmt.Errorf("core: SolveSubproblem1: %w", err)
		}
	}

	if freq == nil {
		freq = make([]float64, n)
	}
	res := SP1Result{Freq: freq, RoundDeadline: deadline}
	for i := range s.Devices {
		res.Freq[i] = freqForDeadline(s, i, upTimes[i], deadline)
	}
	res.Objective = sp1Objective(s, w, upTimes, deadline)
	return res, nil
}

// SolveSubproblem1Dual solves Subproblem 1 through the paper's Lagrangian
// dual (17): maximize sum_n (2^(-2/3)+2^(1/3)) h c_n D_n lambda_n^(2/3) +
// T_up_n lambda_n over the scaled simplex sum lambda = w2*Rg, with
// h = Rl*(w1*kappa*Rg)^(1/3). Stationarity couples the devices through a
// shared multiplier gamma:
//
//	(2/3)*K_n*lambda_n^(-1/3) + T_up_n = gamma,  K_n = (2^(-2/3)+2^(1/3))*h*c_n*D_n
//
// so lambda_n(gamma) = ((2K_n/3)/(gamma - T_up_n))^3, and gamma is found by
// bisecting sum_n lambda_n(gamma) = w2*Rg. Frequencies follow from (16)
// with the clamp of (18) (implemented with the corrected upper clamp; the
// paper's printed min(f_min, ...) is a typo).
//
// The dual ignores the frequency boxes until the final clamp, exactly as the
// paper does; SolveSubproblem1 handles the boxes exactly and is the default.
// Both agree whenever no box binds (property-tested).
func SolveSubproblem1Dual(s *fl.System, w fl.Weights, upTimes []float64) (SP1Result, error) {
	n := s.N()
	if len(upTimes) != n {
		return SP1Result{}, fmt.Errorf("core: SolveSubproblem1Dual upTimes length: %w", ErrBadInput)
	}
	if w.W1 <= 0 || w.W2 <= 0 {
		// The dual expressions divide by w1 and normalize by w2; corner
		// weights are handled by the direct solver.
		return SolveSubproblem1(s, w, upTimes)
	}

	h := s.LocalIters * math.Cbrt(w.W1*s.Kappa*s.GlobalRounds)
	coef := math.Pow(2, -2.0/3) + math.Pow(2, 1.0/3)
	k := make([]float64, n)
	maxUp := 0.0
	for i, d := range s.Devices {
		k[i] = coef * h * d.CyclesPerSample * d.Samples
		if upTimes[i] > maxUp {
			maxUp = upTimes[i]
		}
	}
	target := w.W2 * s.GlobalRounds

	lambdaSum := func(gamma float64) float64 {
		var sum float64
		for i := range k {
			den := gamma - upTimes[i]
			if den <= 0 {
				return math.Inf(1)
			}
			l := 2 * k[i] / (3 * den)
			sum += l * l * l
		}
		return sum
	}

	// sum lambda(gamma) decreases from +Inf (gamma -> maxUp+) to 0; bracket
	// and bisect sum = target.
	gLo := maxUp + 1e-18
	gHi, err := numeric.BracketUp(func(g float64) bool { return lambdaSum(maxUp+g) <= target }, 1e-12, 400)
	if err != nil {
		return SP1Result{}, fmt.Errorf("core: SolveSubproblem1Dual bracket: %w", err)
	}
	gamma, err := numeric.BisectDecreasing(func(g float64) float64 {
		return lambdaSum(g) - target
	}, gLo, maxUp+gHi, 1e-15*(maxUp+gHi))
	if err != nil {
		return SP1Result{}, fmt.Errorf("core: SolveSubproblem1Dual: %w", err)
	}

	res := SP1Result{Freq: make([]float64, n)}
	deadline := 0.0
	for i, d := range s.Devices {
		den := gamma - upTimes[i]
		l := 2 * k[i] / (3 * den)
		lambda := l * l * l
		fStar := math.Cbrt(lambda / (2 * w.W1 * s.GlobalRounds * s.Kappa))
		res.Freq[i] = numeric.Clamp(fStar, d.FMin, d.FMax) // corrected (18)
		if t := s.CompTimeRound(i, res.Freq[i]) + upTimes[i]; t > deadline {
			deadline = t
		}
	}
	res.RoundDeadline = deadline
	res.Objective = 0
	for i := range s.Devices {
		res.Objective += s.CompEnergyRound(i, res.Freq[i])
	}
	res.Objective = w.W1*s.GlobalRounds*res.Objective + w.W2*s.GlobalRounds*deadline
	return res, nil
}
