package core

import (
	"errors"
	"testing"

	"repro/internal/wireless"
)

func TestSolveSubproblem2DirectFeasible(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		s := newTestSystem(6, seed)
		a := s.MaxResourceAllocation()
		w1Rg := 0.5 * s.GlobalRounds
		rmin := make([]float64, s.N())
		for i := range s.Devices {
			rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.4
		}
		res, err := SolveSubproblem2Direct(s, w1Rg, rmin)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSP2Feasible(t, s, rmin, res.Power, res.Bandwidth)
	}
}

// The direct solver must never be worse than Algorithm 1 (it is provably
// globally optimal), and Algorithm 1 should land within a few percent.
func TestDirectDominatesNewton(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		s := newTestSystem(6, seed)
		a := s.MaxResourceAllocation()
		w1Rg := 0.5 * s.GlobalRounds
		rmin := make([]float64, s.N())
		for i := range s.Devices {
			rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.4
		}
		newton, err := SolveSubproblem2(s, w1Rg, rmin, a.Power, a.Bandwidth,
			Options{SP2Solver: SP2NewtonOnly, MaxNewton: 100})
		if err != nil {
			t.Fatalf("seed %d newton: %v", seed, err)
		}
		direct, err := SolveSubproblem2Direct(s, w1Rg, rmin)
		if err != nil {
			t.Fatalf("seed %d direct: %v", seed, err)
		}
		if direct.CommEnergy > newton.CommEnergy*(1+1e-9) {
			t.Errorf("seed %d: direct %g worse than newton %g", seed, direct.CommEnergy, newton.CommEnergy)
		}
		if newton.CommEnergy > direct.CommEnergy*1.10 {
			t.Errorf("seed %d: Algorithm 1 landed %g, more than 10%% above the optimum %g",
				seed, newton.CommEnergy, direct.CommEnergy)
		}
	}
}

// The direct solver must satisfy the fractional program's KKT structure:
// every device is either rate-pinned, at pmin, or at a forced corner; no
// device sits strictly inside (pmin, pmax) with a slack rate.
func TestDirectPowerStructure(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := newTestSystem(7, seed)
		a := s.MaxResourceAllocation()
		rmin := make([]float64, s.N())
		for i := range s.Devices {
			rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.5
		}
		res, err := SolveSubproblem2Direct(s, s.GlobalRounds, rmin)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range s.Devices {
			p := res.Power[i]
			rate := s.Rate(i, p, res.Bandwidth[i])
			atPMin := p <= d.PMin*(1+1e-9)
			ratePinned := rate <= rmin[i]*(1+1e-6)
			if !atPMin && !ratePinned {
				t.Errorf("seed %d device %d: p=%g interior with slack rate %g > rmin %g",
					seed, i, p, rate, rmin[i])
			}
		}
	}
}

// Waterfilling equalizes marginal energy savings: all devices strictly above
// their forced floor share a common -dE/dB (spot check via finite
// differences on the reduced energy function).
func TestDirectEqualMarginals(t *testing.T) {
	s := newTestSystem(6, 4)
	a := s.MaxResourceAllocation()
	rmin := make([]float64, s.N())
	for i := range s.Devices {
		rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.3
	}
	res, err := SolveSubproblem2Direct(s, s.GlobalRounds, rmin)
	if err != nil {
		t.Fatal(err)
	}
	reducedEnergy := func(i int, b float64) float64 {
		d := s.Devices[i]
		p := wireless.PowerForRate(rmin[i], b, d.Gain, s.N0)
		if p < d.PMin {
			p = d.PMin
		}
		return p * d.UploadBits / s.Rate(i, p, b)
	}
	var first float64
	count := 0
	for i, d := range s.Devices {
		b := res.Bandwidth[i]
		bf, _ := wireless.BandwidthForRate(rmin[i], d.PMax, d.Gain, s.N0)
		if b <= bf*(1+1e-6) {
			continue // at the forced floor: marginal may exceed the price
		}
		h := b * 1e-6
		// The reduced energy has a kink where the power hits PMin; a device
		// parked exactly at its junction satisfies a subgradient condition
		// rather than marginal equality, so skip it.
		if bj, err := wireless.BandwidthForRate(rmin[i], d.PMin, d.Gain, s.N0); err == nil && relDiff(b, bj) < 1e-3 {
			continue
		}
		m := -(reducedEnergy(i, b+h) - reducedEnergy(i, b-h)) / (2 * h)
		if count == 0 {
			first = m
		} else if relDiff(m, first) > 1e-2 {
			t.Errorf("device %d marginal %g != %g", i, m, first)
		}
		count++
	}
	if count < 2 {
		t.Skip("fewer than two interior devices in this draw")
	}
}

func TestSolveSubproblem2DirectErrors(t *testing.T) {
	s := newTestSystem(3, 2)
	if _, err := SolveSubproblem2Direct(s, 0, []float64{1, 1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("w1Rg=0: want ErrBadInput, got %v", err)
	}
	if _, err := SolveSubproblem2Direct(s, 1, []float64{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short rmin: want ErrBadInput, got %v", err)
	}
	if _, err := SolveSubproblem2Direct(s, 1, []float64{1, 0, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero rmin: want ErrBadInput, got %v", err)
	}
	huge := make([]float64, 3)
	for i, d := range s.Devices {
		huge[i] = wireless.RateLimit(d.PMax, d.Gain, s.N0) * 2
	}
	if _, err := SolveSubproblem2Direct(s, 1, huge); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unreachable rates: want ErrInfeasible, got %v", err)
	}
}
