package core

import (
	"fmt"
	"math"

	"repro/internal/convex"
	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// SP2v2Result is the solution of the inner convex program SP2_v2 (eq. (21)).
type SP2v2Result struct {
	// Power and Bandwidth are the optimal p_n and B_n.
	Power, Bandwidth []float64
	// Mu is the bandwidth price (the multiplier of sum B_n <= B).
	Mu float64
	// Objective is sum_n nu_n*(p_n*d_n - beta_n*G_n(p_n, B_n)).
	Objective float64
}

// sp2Device carries the per-device constants of one SP2_v2 solve.
type sp2Device struct {
	nu, beta   float64 // multipliers fixed by Algorithm 1's outer loop
	d, g       float64 // upload bits, channel gain
	rmin       float64 // minimum rate from the deadline constraint
	pmin, pmax float64
	j          float64 // nu*d*N0/g (paper's j_n)
	a0         float64 // nu*beta
	snr0       float64 // Lambda0 - 1: the unconstrained optimal SNR
	mu0        float64 // reservation price where the p box transitions
	bFromPmin  float64 // bandwidth putting p exactly at pmin at snr0
	bFromPmax  float64 // bandwidth putting p exactly at pmax at snr0
	bForced    float64 // min bandwidth meeting rmin at pmax (feasibility floor)
}

// sp2Alloc is one device's allocation at a given price.
type sp2Alloc struct {
	b, p     float64
	marginal bool // device sits on its flat interior segment at this price
}

// buildSP2Devices validates inputs and precomputes per-device constants.
func buildSP2Devices(s *fl.System, nu, beta, rmin []float64) ([]sp2Device, error) {
	return buildSP2DevicesInto(nil, s, nu, beta, rmin)
}

// buildSP2DevicesInto is buildSP2Devices writing into devs when it has the
// capacity (workspace reuse).
func buildSP2DevicesInto(devs []sp2Device, s *fl.System, nu, beta, rmin []float64) ([]sp2Device, error) {
	n := s.N()
	if len(nu) != n || len(beta) != n || len(rmin) != n {
		return nil, fmt.Errorf("core: SP2v2 slice lengths: %w", ErrBadInput)
	}
	if cap(devs) < n {
		devs = make([]sp2Device, n)
	} else {
		devs = devs[:n]
	}
	var sumForced float64
	for i, d := range s.Devices {
		if !(nu[i] > 0) || !(beta[i] > 0) {
			return nil, fmt.Errorf("core: SP2v2 device %d nu=%g beta=%g must be positive: %w", i, nu[i], beta[i], ErrBadInput)
		}
		if !(rmin[i] > 0) {
			return nil, fmt.Errorf("core: SP2v2 device %d rmin=%g must be positive: %w", i, rmin[i], ErrBadInput)
		}
		sd := sp2Device{
			nu: nu[i], beta: beta[i],
			d: d.UploadBits, g: d.Gain,
			rmin: rmin[i], pmin: d.PMin, pmax: d.PMax,
		}
		sd.j = sd.nu * sd.d * s.N0 / sd.g
		sd.a0 = sd.nu * sd.beta
		lambda0 := sd.a0 / (sd.j * math.Ln2) // beta*g/(N0*d*ln2)
		bf, err := wireless.BandwidthForRate(sd.rmin, sd.pmax, sd.g, s.N0)
		if err != nil {
			return nil, fmt.Errorf("core: SP2v2 device %d cannot meet rate %g even at pmax: %w (%v)", i, sd.rmin, ErrInfeasible, err)
		}
		sd.bForced = bf
		sumForced += bf
		if lambda0 <= 1+1e-12 {
			// Degenerate multipliers (possible in early Algorithm 1 iterates):
			// the unconstrained SNR target collapses; mark by snr0 = 0 and
			// treat the device as always rate-bound.
			sd.snr0 = 0
		} else {
			sd.snr0 = lambda0 - 1
			sd.mu0 = sd.a0*math.Log2(lambda0) + sd.j - sd.a0/math.Ln2
			sd.bFromPmin = sd.pmin * sd.g / (s.N0 * sd.snr0)
			sd.bFromPmax = sd.pmax * sd.g / (s.N0 * sd.snr0)
		}
		devs[i] = sd
	}
	if sumForced > s.Bandwidth*(1+budgetSlack) {
		return nil, fmt.Errorf("core: SP2v2 minimum bandwidths %g exceed B=%g: %w", sumForced, s.Bandwidth, ErrInfeasible)
	}
	return devs, nil
}

// budgetSlack is the relative slack applied to the bandwidth budget during
// the price search. Algorithm 2 routinely produces rate floors that equal
// the current rates exactly (Subproblem 1 fills each device's time budget),
// putting the instance on the feasibility boundary where the aggregate
// demand plateaus within a few ulps of B; the slack absorbs that, and the
// final allocation is rescaled back inside the true budget.
const budgetSlack = 1e-9

// snrForPrice solves the fixed-a bandwidth stationarity
//
//	a * [log2(1+theta) - theta/((1+theta)*ln2)] = mu
//
// for the SNR theta in closed form via Lambert W: with x = 1+theta and
// c = 1 + mu*ln2/a, the solution is x = -1/W0(-exp(-c)).
func snrForPrice(a, mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	c := 1 + mu*math.Ln2/a
	arg := -math.Exp(-c)
	w, err := numeric.LambertW0(arg)
	if err != nil || w >= 0 {
		// arg in (-1/e, 0) guarantees w in (-1, 0); failures mean c
		// overflowed, i.e. an astronomically high price: SNR -> infinity.
		return math.Inf(1)
	}
	x := -1 / w
	if x <= 1 {
		return 0
	}
	return x - 1
}

// bindingSNR solves the joint (p, B) stationarity on the rate-constraint
// surface (paper eq. (A.4) territory): a(mu) = (mu-j)*ln2 / W((mu-j)/(e*j)),
// Lambda = a/(j*ln2), returning Lambda-1.
func bindingSNR(j, mu float64) float64 {
	diff := mu - j
	if math.Abs(diff) <= 1e-300 || math.Abs(diff) <= 1e-14*j {
		return math.E - 1 // limit: a = e*j*ln2 => Lambda = e
	}
	w, err := numeric.LambertW0(diff / (math.E * j))
	if err != nil || w == 0 {
		return math.E - 1
	}
	a := diff * math.Ln2 / w
	lambda := a / (j * math.Ln2)
	if lambda <= 1 {
		return 0
	}
	return lambda - 1
}

// allocAtPrice computes the optimal (B, p) of one device at bandwidth price
// mu, folding in the power box and the rate constraint.
func (sd sp2Device) allocAtPrice(n0, mu float64) sp2Alloc {
	if sd.snr0 > 0 {
		// Unconstrained-by-rate optimum: SNR set by the price, power clipped
		// by regime.
		theta := snrForPrice(sd.a0, mu)
		var al sp2Alloc
		switch {
		case math.IsInf(theta, 1):
			al = sp2Alloc{b: 0, p: sd.pmin}
		case theta < sd.snr0: // cheap bandwidth: pmax regime
			al = sp2Alloc{b: sd.pmax * sd.g / (n0 * theta), p: sd.pmax}
		case theta > sd.snr0: // expensive bandwidth: pmin regime
			al = sp2Alloc{b: sd.pmin * sd.g / (n0 * theta), p: sd.pmin}
		default: // exactly marginal: park at the low end of the flat segment
			al = sp2Alloc{b: sd.bFromPmin, p: sd.pmin, marginal: true}
		}
		if al.b > 0 && wireless.Rate(al.p, al.b, sd.g, n0) >= sd.rmin {
			return al
		}
	}
	// Rate constraint binds: joint stationarity on the constraint surface.
	theta := bindingSNR(sd.j, mu)
	if theta > 0 {
		b := sd.rmin / numeric.Log2p1(theta)
		p := theta * n0 * b / sd.g
		switch {
		case p > sd.pmax:
			// Price pushes the SNR beyond what pmax affords: forced corner.
			return sp2Alloc{b: sd.bForced, p: sd.pmax}
		case p < sd.pmin:
			// Cheapest rate-rmin point with the power floor.
			bb, err := wireless.BandwidthForRate(sd.rmin, sd.pmin, sd.g, n0)
			if err != nil {
				// rmin unreachable at pmin: stay on the unclipped surface.
				return sp2Alloc{b: b, p: sd.pmin}
			}
			return sp2Alloc{b: bb, p: sd.pmin}
		default:
			return sp2Alloc{b: b, p: p}
		}
	}
	return sp2Alloc{b: sd.bForced, p: sd.pmax}
}

// SolveSP2v2 solves SP2_v2 (eq. (21)) by clamp-aware waterfilling on the
// bandwidth price mu. Per device and price, the optimal SNR has a Lambert-W
// closed form (Theorem 2 / Appendix B, extended with exact handling of the
// power box and the tau_n >= 0 projection); the aggregate bandwidth demand
// S(mu) is non-increasing, and bisection clears S(mu) = B. Devices whose
// reservation price mu0 equals the clearing price split the residual band
// along their flat segments.
func SolveSP2v2(s *fl.System, nu, beta, rmin []float64) (SP2v2Result, error) {
	n := s.N()
	res := SP2v2Result{Power: make([]float64, n), Bandwidth: make([]float64, n)}
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	ws.grow(n)
	ws.lastMu = 0
	mu, obj, err := solveSP2v2Into(s, nu, beta, rmin, ws, res.Power, res.Bandwidth)
	if err != nil {
		return SP2v2Result{}, err
	}
	res.Mu, res.Objective = mu, obj
	return res, nil
}

// solveSP2v2Into is SolveSP2v2 writing powers and bandwidths into
// caller-provided slices and drawing scratch (device table, per-price
// allocations) from ws. A positive ws.lastMu seeds the price bracket: the
// clearing price of a neighbouring solve is verified with two demand probes
// and, when it still brackets, replaces the from-scratch bracket discovery.
func solveSP2v2Into(s *fl.System, nu, beta, rmin []float64, ws *Workspace, outP, outB []float64) (float64, float64, error) {
	devs, err := buildSP2DevicesInto(ws.devs[:0], s, nu, beta, rmin)
	if err != nil {
		return 0, 0, err
	}
	ws.devs = devs
	total := s.Bandwidth * (1 + budgetSlack)

	demand := func(mu float64) float64 {
		var sum float64
		for _, sd := range devs {
			sum += sd.allocAtPrice(s.N0, mu).b
		}
		return sum
	}

	// Bracket the clearing price. Demand diverges as mu -> 0+ (bandwidth is
	// always valuable) and falls to the forced floor as mu -> infinity. A
	// seeded price shortcuts the discovery when it still brackets.
	var muLo, muHi float64
	seededBracket := false
	if seed := ws.lastMu; seed > 0 && !math.IsInf(seed, 1) {
		lo, hi := seed/16, seed*16
		if demand(lo) > total && demand(hi) <= total {
			muLo, muHi = lo, hi
			seededBracket = true
		}
	}
	if muHi == 0 {
		muLo = math.Inf(1)
		for _, sd := range devs {
			if sd.mu0 > 0 && sd.mu0 < muLo {
				muLo = sd.mu0
			}
			if sd.j < muLo {
				muLo = sd.j
			}
		}
		if math.IsInf(muLo, 1) || muLo <= 0 {
			muLo = 1
		}
		muLo *= 1e-9
		for demand(muLo) <= total && muLo > 1e-300 {
			muLo /= 16
		}
		muHi, err = numeric.BracketUp(func(mu float64) bool { return demand(mu) <= total }, muLo*2, 600)
		if err != nil {
			return 0, 0, fmt.Errorf("core: SP2v2 price bracket: %w", ErrInfeasible)
		}
	}
	mu, err := numeric.BisectDecreasing(func(mu float64) float64 { return demand(mu) - total }, muLo, muHi, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("core: SP2v2 price bisection: %w", err)
	}
	ws.lastMu = mu
	if seededBracket {
		ws.brSeeded++
	} else {
		ws.brDiscovered++
	}
	if mu > 0 {
		ws.brRelSum += (muHi - muLo) / mu
	}

	// Evaluate on the feasible (low-demand) side of the clearing price and
	// hand the residual band to marginal devices along their flat segments.
	side := mu
	if demand(side) > total {
		side = math.Nextafter(mu, math.Inf(1))
		for k := 0; k < 64 && demand(side) > total; k++ {
			side *= 1 + 1e-12
		}
	}
	var used float64
	allocs := ws.allocs[:len(devs)]
	for i, sd := range devs {
		allocs[i] = sd.allocAtPrice(s.N0, side)
		used += allocs[i].b
	}
	leftover := total - used
	if leftover > 0 {
		// Marginal devices absorb the residual up to their pmax end, SNR
		// pinned at snr0 (power scales with bandwidth along the segment).
		for i := range devs {
			sd := devs[i]
			if !allocs[i].marginal && !(sd.snr0 > 0 && math.Abs(sd.mu0-mu) <= 1e-6*math.Max(sd.mu0, mu)) {
				continue
			}
			if sd.snr0 <= 0 {
				continue
			}
			room := sd.bFromPmax - allocs[i].b
			if room <= 0 {
				continue
			}
			add := math.Min(room, leftover)
			allocs[i].b += add
			allocs[i].p = sd.snr0 * s.N0 * allocs[i].b / sd.g
			leftover -= add
			if leftover <= 0 {
				break
			}
		}
	}

	var finalSum float64
	for i, sd := range devs {
		al := allocs[i]
		// Final safety: honour the power box and the rate floor exactly.
		al.p = numeric.Clamp(al.p, sd.pmin, sd.pmax)
		if al.b <= 0 || wireless.Rate(al.p, al.b, sd.g, s.N0) < sd.rmin*(1-1e-9) {
			al.b = math.Max(al.b, sd.bForced)
			al.p = sd.pmax
		}
		allocs[i] = al
		finalSum += al.b
	}
	// Rescale the budget slack away: a uniform shrink of at most a few
	// parts in 1e9 keeps rates within the 1e-6 validation tolerance.
	if finalSum > s.Bandwidth {
		scale := s.Bandwidth / finalSum
		for i := range allocs {
			allocs[i].b *= scale
		}
	}
	var obj float64
	for i, sd := range devs {
		al := allocs[i]
		outP[i] = al.p
		outB[i] = al.b
		obj += sd.nu * (al.p*sd.d - sd.beta*wireless.Rate(al.p, al.b, sd.g, s.N0))
	}
	return mu, obj, nil
}

// SolveSP2v2PaperDual solves SP2_v2 along the paper's literal Appendix-B
// pathway: first bisect g'(mu) = sum_n rmin_n*ln2/(W_n+1) - B = 0 (derived
// assuming every tau_n > 0), then clamp tau_n = max(., 0); devices with
// tau_n > 0 bind their rate constraints with the closed-form bandwidth, and
// the remaining devices split the residual band through the linear program
// (A.6) solved greedily. Power follows eq. (38) with clipping.
//
// The pathway is kept for fidelity and comparison; SolveSP2v2 folds the
// clamping into the price search and is never worse (property-tested).
func SolveSP2v2PaperDual(s *fl.System, nu, beta, rmin []float64) (SP2v2Result, error) {
	devs, err := buildSP2Devices(s, nu, beta, rmin)
	if err != nil {
		return SP2v2Result{}, err
	}
	total := s.Bandwidth

	// g'(mu): all-binding bandwidth demand minus B. W_n+1 -> 0+ as mu -> 0
	// (demand diverges) and grows with mu (demand -> 0), so a root exists.
	gPrime := func(mu float64) float64 {
		var sum float64
		for _, sd := range devs {
			w, werr := numeric.LambertW0((mu - sd.j) / (math.E * sd.j))
			if werr != nil || w <= -1 {
				return math.Inf(1)
			}
			sum += sd.rmin * math.Ln2 / (w + 1)
		}
		return sum - total
	}
	muLo := devs[0].j * 1e-9
	for gPrime(muLo) <= 0 && muLo > 1e-300 {
		muLo /= 16
	}
	muHi, err := numeric.BracketUp(func(mu float64) bool { return gPrime(mu) <= 0 }, muLo*2, 600)
	if err != nil {
		return SP2v2Result{}, fmt.Errorf("core: paper dual bracket: %w", ErrInfeasible)
	}
	mu, err := numeric.BisectDecreasing(gPrime, muLo, muHi, 0)
	if err != nil {
		return SP2v2Result{}, fmt.Errorf("core: paper dual bisection: %w", err)
	}

	n := len(devs)
	res := SP2v2Result{Power: make([]float64, n), Bandwidth: make([]float64, n), Mu: mu}
	slack := make([]int, 0, n)
	var bandLeft = total
	for i, sd := range devs {
		// tau_n per (A.4), clamped at zero.
		theta := bindingSNR(sd.j, mu)
		a := sd.j * math.Ln2 * (1 + theta)
		tau := a - sd.a0
		if tau > 0 || sd.snr0 <= 0 {
			al := sd.allocAtPrice(s.N0, mu) // binding path incl. power clip
			res.Power[i] = al.p
			res.Bandwidth[i] = al.b
			bandLeft -= al.b
		} else {
			slack = append(slack, i)
		}
	}
	if len(slack) > 0 {
		cost := make([]float64, len(slack))
		lo := make([]float64, len(slack))
		hi := make([]float64, len(slack))
		for k, i := range slack {
			sd := devs[i]
			cost[k] = -sd.mu0 // (A.6) objective coefficient
			bRate := sd.rmin / numeric.Log2p1(sd.snr0)
			lo[k] = math.Max(sd.bFromPmin, bRate)
			hi[k] = math.Max(sd.bFromPmax, lo[k])
		}
		bs, lpErr := convex.GreedyLP(cost, lo, hi, math.Max(bandLeft, 0))
		if lpErr != nil {
			// The all-binding price overcommitted the band; fall back to the
			// clamp-aware solver, which cannot.
			return SolveSP2v2(s, nu, beta, rmin)
		}
		for k, i := range slack {
			sd := devs[i]
			res.Bandwidth[i] = bs[k]
			res.Power[i] = numeric.Clamp(sd.snr0*s.N0*bs[k]/sd.g, sd.pmin, sd.pmax) // eq. (38)
		}
	}
	for i, sd := range devs {
		if res.Bandwidth[i] <= 0 || wireless.Rate(res.Power[i], res.Bandwidth[i], sd.g, s.N0) < sd.rmin*(1-1e-9) {
			res.Bandwidth[i] = math.Max(res.Bandwidth[i], sd.bForced)
			res.Power[i] = sd.pmax
		}
		res.Objective += sd.nu * (res.Power[i]*sd.d - sd.beta*wireless.Rate(res.Power[i], res.Bandwidth[i], sd.g, s.N0))
	}
	var sumB float64
	for _, b := range res.Bandwidth {
		sumB += b
	}
	if sumB > total*(1+1e-9) {
		return SolveSP2v2(s, nu, beta, rmin)
	}
	return res, nil
}
