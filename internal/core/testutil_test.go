package core

import (
	"math"
	"math/rand"

	"repro/internal/fl"
	"repro/internal/wireless"
)

// newTestSystem builds a paper-scale system with n devices and randomized
// channel gains / cycle counts, deterministic in seed.
func newTestSystem(n int, seed int64) *fl.System {
	rng := rand.New(rand.NewSource(seed))
	pl := wireless.DefaultPathLoss()
	devs := make([]fl.Device, n)
	for i := range devs {
		devs[i] = fl.Device{
			Samples:         500,
			CyclesPerSample: (1 + 2*rng.Float64()) * 1e4,
			UploadBits:      28.1e3,
			Gain:            pl.SampleGain(rng, wireless.UniformDiskDistanceKm(rng, 0.5)),
			FMin:            1e7,
			FMax:            2e9,
			PMin:            wireless.DBmToWatt(0),
			PMax:            wireless.DBmToWatt(12),
		}
	}
	return &fl.System{
		Devices:      devs,
		Bandwidth:    20e6,
		N0:           wireless.NoisePSDWattPerHz(-174),
		Kappa:        1e-28,
		LocalIters:   10,
		GlobalRounds: 400,
	}
}

// feasibleUploadTimes returns the upload times of the max-resource start.
func feasibleUploadTimes(s *fl.System) []float64 {
	a := s.MaxResourceAllocation()
	up := make([]float64, s.N())
	for i := range up {
		up[i] = s.UploadTimeRound(i, a.Power[i], a.Bandwidth[i])
	}
	return up
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}
