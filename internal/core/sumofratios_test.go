package core

import (
	"errors"
	"testing"
)

func TestSolveSubproblem2ReducesEnergy(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		s := newTestSystem(6, seed)
		a := s.MaxResourceAllocation()
		w1Rg := 0.5 * s.GlobalRounds
		rmin := make([]float64, s.N())
		for i := range s.Devices {
			rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.5
		}
		startEnergy := CommEnergyWeighted(s, w1Rg, a.Power, a.Bandwidth)
		res, err := SolveSubproblem2(s, w1Rg, rmin, a.Power, a.Bandwidth, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkSP2Feasible(t, s, rmin, res.Power, res.Bandwidth)
		if res.CommEnergy > startEnergy*(1+1e-9) {
			t.Errorf("seed %d: energy rose from %g to %g", seed, startEnergy, res.CommEnergy)
		}
		if res.CommEnergy <= 0 {
			t.Errorf("seed %d: non-positive energy %g", seed, res.CommEnergy)
		}
	}
}

// At Algorithm 1's fixed point, (22)-(23) hold: nu_n = w1Rg/G_n and
// beta_n = p_n d_n/G_n, i.e. phi ~ 0.
func TestSolveSubproblem2FixedPoint(t *testing.T) {
	s := newTestSystem(5, 3)
	a := s.MaxResourceAllocation()
	w1Rg := 0.7 * s.GlobalRounds
	rmin := make([]float64, s.N())
	for i := range s.Devices {
		rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.4
	}
	res, err := SolveSubproblem2(s, w1Rg, rmin, a.Power, a.Bandwidth, Options{MaxNewton: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Residual must have collapsed by many orders of magnitude relative to
	// the objective scale.
	if res.PhiResidual > 1e-5*(1+res.CommEnergy) {
		t.Errorf("phi residual %g too large (energy %g, iters %d)",
			res.PhiResidual, res.CommEnergy, res.Iterations)
	}
}

// Algorithm 1 should find the same solution from different feasible starts
// (global optimum of the fractional program).
func TestSolveSubproblem2StartInvariance(t *testing.T) {
	s := newTestSystem(5, 8)
	w1Rg := 0.5 * s.GlobalRounds
	a1 := s.MaxResourceAllocation()
	rmin := make([]float64, s.N())
	for i := range s.Devices {
		rmin[i] = s.Rate(i, a1.Power[i], a1.Bandwidth[i]) * 0.3
	}
	r1, err := SolveSubproblem2(s, w1Rg, rmin, a1.Power, a1.Bandwidth, Options{MaxNewton: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Second start: equal split with smaller bandwidth, power at 60% of max.
	a2 := s.EqualSplitAllocation(0.5/float64(s.N()), 0, 0)
	for i, d := range s.Devices {
		a2.Power[i] = d.PMin + 0.6*(d.PMax-d.PMin)
	}
	// Its rates must still clear rmin for a fair comparison; verify.
	for i := range s.Devices {
		if s.Rate(i, a2.Power[i], a2.Bandwidth[i]) < rmin[i] {
			t.Skip("alternate start infeasible for this draw")
		}
	}
	r2, err := SolveSubproblem2(s, w1Rg, rmin, a2.Power, a2.Bandwidth, Options{MaxNewton: 100})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(r1.CommEnergy, r2.CommEnergy) > 1e-4 {
		t.Errorf("start dependence: %g vs %g", r1.CommEnergy, r2.CommEnergy)
	}
}

func TestSolveSubproblem2BadInput(t *testing.T) {
	s := newTestSystem(3, 1)
	a := s.MaxResourceAllocation()
	rmin := []float64{1, 1, 1}
	if _, err := SolveSubproblem2(s, 0, rmin, a.Power, a.Bandwidth, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("w1Rg=0: want ErrBadInput, got %v", err)
	}
	if _, err := SolveSubproblem2(s, 1, rmin[:2], a.Power, a.Bandwidth, Options{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short rmin: want ErrBadInput, got %v", err)
	}
}

func TestSolveSubproblem2PaperDualPath(t *testing.T) {
	s := newTestSystem(5, 4)
	a := s.MaxResourceAllocation()
	w1Rg := 0.5 * s.GlobalRounds
	rmin := make([]float64, s.N())
	for i := range s.Devices {
		rmin[i] = s.Rate(i, a.Power[i], a.Bandwidth[i]) * 0.5
	}
	wf, err := SolveSubproblem2(s, w1Rg, rmin, a.Power, a.Bandwidth, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := SolveSubproblem2(s, w1Rg, rmin, a.Power, a.Bandwidth, Options{UsePaperSP2Dual: true})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(wf.CommEnergy, pd.CommEnergy) > 1e-3 {
		t.Errorf("inner-solver disagreement: %g vs %g", wf.CommEnergy, pd.CommEnergy)
	}
}
