package core

import (
	"fmt"
	"time"

	"repro/internal/fl"
)

// Optimize runs the paper's resource allocation (Algorithm 2): starting from
// a feasible allocation, it alternates Subproblem 1 (frequencies and round
// deadline, given upload times) and Subproblem 2 (powers and bandwidths via
// the Newton-like sum-of-ratios method, given minimum rates from the
// deadline) until the allocation stops moving or MaxOuter iterations.
//
// The weighted objective is non-increasing across both half-steps: SP1 is
// solved exactly for (f, T) with transmission terms fixed, and SP2 minimizes
// transmission energy while preserving every rate floor, hence the deadline.
//
// The hot loop is allocation-free: scratch memory comes from Options.Work,
// or from a shared pool when the caller brings none. A caller-provided
// Options.DualStart seeds the first Subproblem 2 call (see SolveSubproblem2);
// later calls are seeded from the previous iteration's converged duals, so
// the confirmation iterations of a converged run skip their Newton steps.
// The converged dual state of the final iteration is exported in
// Result.Duals for caching.
func Optimize(s *fl.System, w fl.Weights, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := opts.check(s, w); err != nil {
		return Result{}, err
	}

	if opts.Mode == ModeWeighted && opts.JointWeighted && w.W1 > 0 && w.W2 > 0 {
		jw := opts
		jw.JointWeighted = false // break the dispatch cycle
		return SolveWeightedJoint(s, w, jw)
	}

	// Pure-delay corner: Subproblem 2's objective vanishes (nu_n = 0); the
	// whole problem reduces to min-max time, solved directly.
	if opts.Mode == ModeWeighted && w.W1 == 0 {
		mt, err := SolveMinTime(s)
		if err != nil {
			return Result{}, err
		}
		m := s.Evaluate(mt.Allocation)
		return Result{
			Allocation:    mt.Allocation,
			RoundDeadline: mt.RoundDeadline,
			Metrics:       m,
			Objective:     s.Objective(w, mt.Allocation),
			Converged:     true,
		}, nil
	}

	alloc := s.MaxResourceAllocation()
	if opts.Start != nil {
		alloc = opts.Start.Clone()
	}

	var roundDeadline float64
	if opts.Mode == ModeDeadline {
		roundDeadline = opts.TotalDeadline / s.GlobalRounds
		// Screen feasibility once, and repair the start point when it cannot
		// meet the deadline even at full frequency. For tracing, the probe
		// plays SP1's role (it fixes the deadline side) and the joint solve
		// below plays SP2's.
		var t0 time.Time
		if opts.Trace != nil {
			t0 = time.Now()
		}
		mt, err := SolveMinTime(s)
		if opts.Trace != nil {
			opts.Trace.SP1Time += time.Since(t0)
		}
		if err != nil {
			return Result{}, err
		}
		if mt.RoundDeadline > roundDeadline*(1+1e-9) {
			return Result{}, fmt.Errorf("core: deadline %gs/round below the physical minimum %gs/round: %w",
				roundDeadline, mt.RoundDeadline, ErrInfeasible)
		}
		// Fixed-deadline energy minimization is solved in one shot by dual
		// decomposition on the bandwidth budget: alternating f/(p,B) updates
		// would ratchet each device's rate floor at its incoming upload
		// time, conceding the compute/communicate tradeoff (see
		// solveDeadlineJoint).
		if opts.Trace != nil {
			t0 = time.Now()
		}
		joint, err := solveDeadlineJoint(s, roundDeadline)
		if opts.Trace != nil {
			opts.Trace.SP2Time += time.Since(t0)
			opts.Trace.OuterIters++
		}
		if err != nil {
			return Result{}, err
		}
		res := Result{
			Allocation:    joint,
			RoundDeadline: roundDeadline,
			Metrics:       s.Evaluate(joint),
			Converged:     true,
		}
		res.Objective = res.Metrics.TotalEnergy
		res.Iterations = []IterationTrace{{Objective: res.Objective, RoundDeadline: roundDeadline}}
		return res, nil
	}

	// Scratch memory: the pooled fallback is safe because everything the
	// Result carries out of this function is copied off the workspace
	// before it returns to the pool.
	ws := opts.Work
	if ws == nil {
		ws = wsPool.Get().(*Workspace)
		defer wsPool.Put(ws)
		opts.Work = ws
	}
	ws.grow(s.N())
	ws.lastMu = 0

	res := Result{Iterations: make([]IterationTrace, 0, opts.MaxOuter)}
	ws.stashPrev(alloc)
	externalSeed := opts.DualStart
	var haveDuals bool
	var duals DualState
	for k := 0; k < opts.MaxOuter; k++ {
		upTimes := ws.upTimes
		for i := range upTimes {
			upTimes[i] = s.UploadTimeRound(i, alloc.Power[i], alloc.Bandwidth[i])
		}

		// ---- Subproblem 1: frequencies and the round deadline.
		var sp1 SP1Result
		var err error
		var t0 time.Time
		if opts.Trace != nil {
			t0 = time.Now()
		}
		if opts.UsePaperSP1Dual {
			sp1, err = SolveSubproblem1Dual(s, w, upTimes)
		} else {
			sp1, err = solveSubproblem1Into(s, w, upTimes, ws.freq)
		}
		if opts.Trace != nil {
			opts.Trace.SP1Time += time.Since(t0)
			opts.Trace.OuterIters++
		}
		if err != nil {
			return Result{}, fmt.Errorf("core: Algorithm 2 iteration %d, SP1: %w", k, err)
		}
		copy(alloc.Freq, sp1.Freq)
		roundDeadline = sp1.RoundDeadline

		// ---- Subproblem 2: powers and bandwidths at the new rate floors.
		trace := IterationTrace{RoundDeadline: roundDeadline}
		if w.W1 > 0 {
			w1Rg := w.W1 * s.GlobalRounds
			rmin := ws.rmin
			for i := range s.Devices {
				residual := roundDeadline - s.CompTimeRound(i, alloc.Freq[i])
				if residual <= 0 {
					return Result{}, fmt.Errorf("core: device %d has no upload window at T=%g: %w", i, roundDeadline, ErrInfeasible)
				}
				rmin[i] = s.Devices[i].UploadBits / residual
			}
			if k == 0 {
				opts.DualStart = externalSeed
			} else {
				// Seed the confirmation iterations from the previous SP2's
				// converged duals: when SP1 barely moved the rate floors the
				// residual check accepts them with zero Newton steps.
				opts.DualStart = &duals
			}
			if opts.Trace != nil {
				t0 = time.Now()
			}
			sp2, err := SolveSubproblem2(s, w1Rg, rmin, alloc.Power, alloc.Bandwidth, opts)
			if opts.Trace != nil {
				opts.Trace.SP2Time += time.Since(t0)
			}
			if err != nil {
				return Result{}, fmt.Errorf("core: Algorithm 2 iteration %d, SP2: %w", k, err)
			}
			copy(alloc.Power, sp2.Power)
			copy(alloc.Bandwidth, sp2.Bandwidth)
			trace.NewtonIters = sp2.Iterations
			trace.PhiResidual = sp2.PhiResidual
			if opts.Trace != nil {
				opts.Trace.NewtonIters += sp2.Iterations
			}
			duals = sp2.Duals
			haveDuals = true
		}

		trace.Objective = objectiveFor(s, w, alloc, opts)
		trace.Distance = ws.distPrev(alloc)
		res.Iterations = append(res.Iterations, trace)
		if trace.Distance <= opts.OuterTol {
			res.Converged = true
			break
		}
		ws.stashPrev(alloc)
	}

	res.Allocation = alloc
	res.RoundDeadline = roundDeadline
	res.Metrics = s.Evaluate(alloc)
	res.Objective = objectiveFor(s, w, alloc, opts)
	if haveDuals {
		// Copied off the workspace: the Result outlives the pooled scratch.
		res.Duals = duals.Clone()
	}
	return res, nil
}

// objectiveFor evaluates the objective consistent with the operating mode:
// the weighted sum (8) in ModeWeighted, total energy in ModeDeadline. The
// per-iteration metrics scratch lives in the workspace.
func objectiveFor(s *fl.System, w fl.Weights, a fl.Allocation, opts Options) float64 {
	if opts.Work == nil {
		if opts.Mode == ModeDeadline {
			return s.Evaluate(a).TotalEnergy
		}
		return s.Objective(w, a)
	}
	m := &opts.Work.metrics
	s.EvaluateInto(a, m)
	if opts.Mode == ModeDeadline {
		return m.TotalEnergy
	}
	return w.W1*m.TotalEnergy + w.W2*m.TotalTime
}
