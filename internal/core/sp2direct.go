package core

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// SolveSubproblem2Direct solves Subproblem 2 (eq. (11)) to global optimality
// by a reduction the sum-of-ratios machinery does not need but that the
// problem's monotonicity admits:
//
// The per-device transmission energy p*d/G(p,B) is strictly increasing in p
// at fixed B (G > p*dG/dp everywhere), so the optimal power is the smallest
// feasible one: p_n(B) = max(PMin, PowerForRate(rmin_n, B)). Substituting
// p_n(B) leaves a separable convex program in the bandwidths alone,
//
//	min sum_n E_n(B_n)   s.t.  B_n >= bForced_n,  sum_n B_n <= B,
//
// where E_n is convex and decreasing (rate-pinned branch: the classical
// power-for-rate function is convex in B; free branch: pmin*d/G(pmin, B) is
// convex since 1/G is; the branches meet with increasing slopes). A
// waterfilling bisection on the common marginal value -E_n'(B_n) solves it
// exactly.
//
// This routine is used to cross-validate — and by default polish — the
// paper's Algorithm 1, whose damped Newton iteration can stall on instances
// where the inner SP2_v2 solution is bang-bang in the multipliers.
func SolveSubproblem2Direct(s *fl.System, w1Rg float64, rmin []float64) (SP2Result, error) {
	n := s.N()
	outP := make([]float64, n)
	outB := make([]float64, n)
	ws := wsPool.Get().(*Workspace)
	defer wsPool.Put(ws)
	ws.grow(n)
	return solveSubproblem2DirectInto(s, w1Rg, rmin, ws, outP, outB)
}

// solveSubproblem2DirectInto is SolveSubproblem2Direct writing powers and
// bandwidths into caller-provided slices, with the reduced-device table
// drawn from ws.
func solveSubproblem2DirectInto(s *fl.System, w1Rg float64, rmin []float64, ws *Workspace, outP, outB []float64) (SP2Result, error) {
	n := s.N()
	if len(rmin) != n {
		return SP2Result{}, fmt.Errorf("core: SolveSubproblem2Direct rmin length: %w", ErrBadInput)
	}
	if !(w1Rg > 0) {
		return SP2Result{}, fmt.Errorf("core: SolveSubproblem2Direct needs w1*Rg > 0: %w", ErrBadInput)
	}

	devs := ws.rdevs
	if cap(devs) < n {
		devs = make([]reducedDevice, n)
		ws.rdevs = devs
	}
	devs = devs[:n]
	var sumForced float64
	for i, d := range s.Devices {
		rd, err := newReducedDevice(d, s.N0, rmin[i])
		if err != nil {
			return SP2Result{}, fmt.Errorf("core: device %d: %w", i, err)
		}
		devs[i] = rd
		sumForced += rd.bForced
	}
	if sumForced > s.Bandwidth*(1+budgetSlack) {
		return SP2Result{}, fmt.Errorf("core: minimum bandwidths %g exceed B=%g: %w", sumForced, s.Bandwidth, ErrInfeasible)
	}

	_, bands, err := waterfillReducedInto(devs, s.N0, s.Bandwidth, outB)
	if err != nil {
		return SP2Result{}, err
	}

	res := SP2Result{
		Power:     outP,
		Bandwidth: bands,
	}
	for i, rd := range devs {
		p := rd.power(s.N0, bands[i])
		res.Power[i] = p
		g := wireless.Rate(p, bands[i], rd.g, s.N0)
		res.CommEnergy += w1Rg * p * rd.d / g
	}
	return res, nil
}

// waterfillReduced equalizes the marginal energy saving across reduced
// devices within the bandwidth budget and returns the clearing water level
// and the bandwidths (rescaled onto the exact budget, floors re-applied).
func waterfillReduced(devs []reducedDevice, n0, budget float64) (float64, []float64, error) {
	return waterfillReducedInto(devs, n0, budget, nil)
}

// waterfillReducedInto is waterfillReduced writing into bands when non-nil
// (workspace reuse).
func waterfillReducedInto(devs []reducedDevice, n0, budget float64, bands []float64) (float64, []float64, error) {
	demand := func(lambda float64) float64 {
		var sum float64
		for _, rd := range devs {
			sum += rd.bandAt(n0, lambda)
		}
		return sum
	}
	var lamHi float64
	for _, rd := range devs {
		if m := rd.marginal(n0, rd.bForced); m > lamHi {
			lamHi = m
		}
	}
	if lamHi <= 0 {
		lamHi = 1
	}
	lambda := lamHi
	lamLo := lamHi
	target := budget * (1 + budgetSlack)
	for demand(lamLo) <= target && lamLo > 1e-300 {
		lamLo /= 16
	}
	if demand(lamLo) > target {
		var err error
		lambda, err = numeric.BisectDecreasing(func(l float64) float64 { return demand(l) - target }, lamLo, lamHi, 0)
		if err != nil {
			return 0, nil, fmt.Errorf("core: reduced waterfilling: %w", err)
		}
	}
	// Otherwise the floors fill the whole budget at any price: keep lamHi.

	if bands == nil {
		bands = make([]float64, len(devs))
	}
	var sumB float64
	for i, rd := range devs {
		bands[i] = rd.bandAt(n0, lambda)
		sumB += bands[i]
	}
	if sumB > 0 {
		scale := budget / sumB
		for i := range bands {
			bands[i] *= scale
		}
	}
	for i, rd := range devs {
		if bands[i] < rd.bForced {
			bands[i] = rd.bForced
		}
	}
	return lambda, bands, nil
}
