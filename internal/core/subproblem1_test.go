package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fl"
)

func TestSolveSubproblem1Basic(t *testing.T) {
	s := newTestSystem(5, 1)
	up := feasibleUploadTimes(s)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	res, err := SolveSubproblem1(s, w, up)
	if err != nil {
		t.Fatal(err)
	}
	// Frequencies respect boxes and the deadline.
	for i, d := range s.Devices {
		if res.Freq[i] < d.FMin || res.Freq[i] > d.FMax {
			t.Errorf("f[%d] = %g outside box", i, res.Freq[i])
		}
		if rt := s.CompTimeRound(i, res.Freq[i]) + up[i]; rt > res.RoundDeadline*(1+1e-9) {
			t.Errorf("device %d misses the deadline: %g > %g", i, rt, res.RoundDeadline)
		}
	}
	// Objective matches direct evaluation.
	var energy float64
	for i := range s.Devices {
		energy += s.CompEnergyRound(i, res.Freq[i])
	}
	want := w.W1*s.GlobalRounds*energy + w.W2*s.GlobalRounds*res.RoundDeadline
	if relDiff(res.Objective, want) > 1e-12 {
		t.Errorf("objective %g, want %g", res.Objective, want)
	}
}

// The optimizer must be no worse than any deadline on a dense grid
// (global optimality of the 1-D search).
func TestSolveSubproblem1GridOptimality(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := newTestSystem(4, seed)
		up := feasibleUploadTimes(s)
		for _, w := range []fl.Weights{{W1: 0.9, W2: 0.1}, {W1: 0.5, W2: 0.5}, {W1: 0.1, W2: 0.9}} {
			res, err := SolveSubproblem1(s, w, up)
			if err != nil {
				t.Fatal(err)
			}
			// Dense scan over deadlines.
			var tLo, tHi float64
			for i, d := range s.Devices {
				if v := s.LocalIters*d.CyclesPerIteration()/d.FMax + up[i]; v > tLo {
					tLo = v
				}
				if v := s.LocalIters*d.CyclesPerIteration()/d.FMin + up[i]; v > tHi {
					tHi = v
				}
			}
			for k := 0; k <= 400; k++ {
				tt := tLo + (tHi-tLo)*float64(k)/400
				if obj := sp1Objective(s, w, up, tt); obj < res.Objective*(1-1e-6) {
					t.Errorf("seed %d w=%v: grid deadline %g has objective %g < solver's %g",
						seed, w, tt, obj, res.Objective)
				}
			}
		}
	}
}

func TestSolveSubproblem1CornerWeights(t *testing.T) {
	s := newTestSystem(4, 2)
	up := feasibleUploadTimes(s)

	// w2 = 0: pure energy => all frequencies at the floor.
	res, err := SolveSubproblem1(s, fl.Weights{W1: 1, W2: 0}, up)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range s.Devices {
		if res.Freq[i] != d.FMin {
			t.Errorf("w2=0: f[%d] = %g, want FMin", i, res.Freq[i])
		}
	}

	// w1 = 0: pure delay => tightest deadline; the max-round device runs at
	// FMax.
	res0, err := SolveSubproblem1(s, fl.Weights{W1: 0, W2: 1}, up)
	if err != nil {
		t.Fatal(err)
	}
	var wantLo float64
	for i, d := range s.Devices {
		if v := s.LocalIters*d.CyclesPerIteration()/d.FMax + up[i]; v > wantLo {
			wantLo = v
		}
	}
	if relDiff(res0.RoundDeadline, wantLo) > 1e-9 {
		t.Errorf("w1=0 deadline %g, want %g", res0.RoundDeadline, wantLo)
	}
}

// Direct and paper-dual solvers agree when the frequency boxes do not bind.
func TestSubproblem1DualMatchesDirect(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s := newTestSystem(5, seed)
		// Widen the boxes so the dual's unboxed KKT solution is feasible.
		for i := range s.Devices {
			s.Devices[i].FMin = 1e3
			s.Devices[i].FMax = 1e13
		}
		up := feasibleUploadTimes(s)
		for _, w := range []fl.Weights{{W1: 0.7, W2: 0.3}, {W1: 0.5, W2: 0.5}, {W1: 0.2, W2: 0.8}} {
			direct, err := SolveSubproblem1(s, w, up)
			if err != nil {
				t.Fatal(err)
			}
			dual, err := SolveSubproblem1Dual(s, w, up)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(direct.Objective, dual.Objective) > 1e-5 {
				t.Errorf("seed %d w=%v: direct obj %g vs dual %g", seed, w, direct.Objective, dual.Objective)
			}
			for i := range s.Devices {
				if relDiff(direct.Freq[i], dual.Freq[i]) > 1e-3 {
					t.Errorf("seed %d w=%v: f[%d] direct %g vs dual %g",
						seed, w, i, direct.Freq[i], dual.Freq[i])
				}
			}
		}
	}
}

// At an interior optimum every device with an unclamped frequency has
// T_cmp + T_up equal to the deadline (complementary slackness, eq. (15)).
func TestSubproblem1ComplementarySlackness(t *testing.T) {
	s := newTestSystem(5, 3)
	for i := range s.Devices {
		s.Devices[i].FMin = 1e3
		s.Devices[i].FMax = 1e13
	}
	up := feasibleUploadTimes(s)
	res, err := SolveSubproblem1(s, fl.Weights{W1: 0.5, W2: 0.5}, up)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Devices {
		rt := s.CompTimeRound(i, res.Freq[i]) + up[i]
		if relDiff(rt, res.RoundDeadline) > 1e-6 {
			t.Errorf("device %d: round time %g != deadline %g (lambda_n > 0 requires equality)",
				i, rt, res.RoundDeadline)
		}
	}
}

func TestSubproblem1DualKKTStationarity(t *testing.T) {
	// At the dual optimum, f* = cbrt(lambda/(2 w1 Rg kappa)) must satisfy
	// the primal stationarity (13): 2 w1 Rg kappa f^3 = lambda. Implied by
	// construction; instead verify the shared-multiplier property: the dual
	// derivative gamma equals T_cmp/f-marginal... we check that all devices
	// share one gamma = T_up_n + (2/3) K_n lambda_n^{-1/3}.
	s := newTestSystem(4, 9)
	for i := range s.Devices {
		s.Devices[i].FMin = 1e3
		s.Devices[i].FMax = 1e13
	}
	up := feasibleUploadTimes(s)
	w := fl.Weights{W1: 0.6, W2: 0.4}
	res, err := SolveSubproblem1Dual(s, w, up)
	if err != nil {
		t.Fatal(err)
	}
	h := s.LocalIters * math.Cbrt(w.W1*s.Kappa*s.GlobalRounds)
	coef := math.Pow(2, -2.0/3) + math.Pow(2, 1.0/3)
	var gamma0 float64
	for i, d := range s.Devices {
		lambda := 2 * w.W1 * s.GlobalRounds * s.Kappa * math.Pow(res.Freq[i], 3)
		k := coef * h * d.CyclesPerSample * d.Samples
		gamma := up[i] + (2.0/3)*k*math.Pow(lambda, -1.0/3)
		if i == 0 {
			gamma0 = gamma
		} else if relDiff(gamma, gamma0) > 1e-6 {
			t.Errorf("device %d: gamma %g != gamma0 %g", i, gamma, gamma0)
		}
	}
}

func TestSolveSubproblem1BadInput(t *testing.T) {
	s := newTestSystem(3, 4)
	if _, err := SolveSubproblem1(s, fl.Weights{W1: 0.5, W2: 0.5}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short upTimes: want ErrBadInput, got %v", err)
	}
	if _, err := SolveSubproblem1(s, fl.Weights{W1: 0.5, W2: 0.5}, []float64{1, math.Inf(1), 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("infinite upload time: want ErrBadInput, got %v", err)
	}
}

func TestFreqForDeadline(t *testing.T) {
	s := newTestSystem(1, 5)
	d := s.Devices[0]
	cmpAtMax := s.LocalIters * d.CyclesPerIteration() / d.FMax
	// Exactly feasible deadline: frequency pegs at FMax.
	if f := freqForDeadline(s, 0, 0.1, 0.1+cmpAtMax); relDiff(f, d.FMax) > 1e-12 {
		t.Errorf("tight deadline: f = %g, want FMax", f)
	}
	// Very loose deadline: frequency clamps at FMin.
	if f := freqForDeadline(s, 0, 0.1, 1e9); f != d.FMin {
		t.Errorf("loose deadline: f = %g, want FMin", f)
	}
	// Interior: exact fill.
	deadline := 0.1 + 2*cmpAtMax
	f := freqForDeadline(s, 0, 0.1, deadline)
	if rt := s.CompTimeRound(0, f) + 0.1; relDiff(rt, deadline) > 1e-9 {
		t.Errorf("interior: round time %g != deadline %g", rt, deadline)
	}
}
