package core

import (
	"math"
	"sync"

	"repro/internal/fl"
)

// DualState is the converged dual state of a Subproblem 2 solve: the
// bandwidth price of the inner convex program and the per-device Newton
// multipliers of Algorithm 1 at its fixed point. Cached next to an
// allocation it certifies that allocation as a Newton fixed point, so a
// later solve seeded with both (Options.Start + Options.DualStart) can skip
// the Newton iteration entirely once one residual evaluation confirms the
// certificate (see SolveSubproblem2), and the price seeds the inner
// bisection bracket.
type DualState struct {
	// Mu is the SP2_v2 bandwidth price (multiplier of sum B_n <= B) at the
	// final inner solve.
	Mu float64
	// Nu and Beta are Algorithm 1's per-device multipliers at the fixed
	// point: nu_n = w1*Rg/G_n, beta_n = p_n*d_n/G_n at the returned
	// allocation.
	Nu, Beta []float64
}

// ValidFor reports whether the dual state can seed an N-device solve: the
// lengths match and every multiplier is positive and finite (the price may
// be zero, meaning unknown). Invalid states are ignored by the solver, never
// an error: a stale seed must not fail a solve that works without it.
func (d *DualState) ValidFor(n int) bool {
	if d == nil || len(d.Nu) != n || len(d.Beta) != n {
		return false
	}
	if !(d.Mu >= 0) || math.IsInf(d.Mu, 0) {
		return false
	}
	for i := range d.Nu {
		if !(d.Nu[i] > 0) || math.IsInf(d.Nu[i], 0) || !(d.Beta[i] > 0) || math.IsInf(d.Beta[i], 0) {
			return false
		}
	}
	return true
}

// Clone deep-copies the dual state (nil stays nil).
func (d *DualState) Clone() *DualState {
	if d == nil {
		return nil
	}
	return &DualState{
		Mu:   d.Mu,
		Nu:   append([]float64(nil), d.Nu...),
		Beta: append([]float64(nil), d.Beta...),
	}
}

// Workspace holds the scratch memory of one solver invocation so the hot
// loops of Optimize, Subproblem 1 and Subproblem 2 run allocation-free.
// A Workspace is not safe for concurrent use; give each goroutine its own
// (serving workers hold one each). The zero value is ready to use — buffers
// grow on first use and are retained across solves.
//
// Results returned by the exported solver entry points never alias a
// caller-provided Workspace except where documented (SolveSubproblem2 with
// Options.Work set returns slices that the next solve on the same Workspace
// overwrites).
type Workspace struct {
	n int

	// Optimize outer loop.
	upTimes, rmin       []float64
	prevP, prevB, prevF []float64
	freq                []float64
	metrics             fl.Metrics

	// Subproblem 2 Newton iteration.
	d                []float64
	nu, beta, nb, nn []float64
	sigma1, sigma2   []float64
	curP, curB, curG []float64
	triP, triB, triG []float64
	outNu, outBeta   []float64

	// Inner SP2_v2 solver.
	devs   []sp2Device
	allocs []sp2Alloc

	// Direct (reduction) solver, used by the hybrid polish.
	rdevs      []reducedDevice
	dirP, dirB []float64

	// lastMu carries the most recent inner clearing price within a solve;
	// it seeds the next price bisection's bracket. Reset by grow and
	// overridden by a DualStart seed.
	lastMu float64

	// Bracket telemetry, accumulated by solveSP2v2Into and harvested as a
	// per-call delta into SolveTrace by SolveSubproblem2. Monotonic across
	// the workspace's lifetime; only differences are meaningful.
	brSeeded     int
	brDiscovered int
	brRelSum     float64
}

// NewWorkspace returns an empty workspace (buffers grow on first use).
func NewWorkspace() *Workspace { return &Workspace{} }

// grow sizes every buffer for n devices and resets the price seed when the
// device count changes (a price from another instance family would only
// waste the bracket probes).
func (ws *Workspace) grow(n int) {
	if ws.n != n {
		ws.lastMu = 0
	}
	ws.n = n
	ws.upTimes = growF(ws.upTimes, n)
	ws.rmin = growF(ws.rmin, n)
	ws.prevP = growF(ws.prevP, n)
	ws.prevB = growF(ws.prevB, n)
	ws.prevF = growF(ws.prevF, n)
	ws.freq = growF(ws.freq, n)
	ws.d = growF(ws.d, n)
	ws.nu = growF(ws.nu, n)
	ws.beta = growF(ws.beta, n)
	ws.nb = growF(ws.nb, n)
	ws.nn = growF(ws.nn, n)
	ws.sigma1 = growF(ws.sigma1, n)
	ws.sigma2 = growF(ws.sigma2, n)
	ws.curP = growF(ws.curP, n)
	ws.curB = growF(ws.curB, n)
	ws.curG = growF(ws.curG, n)
	ws.triP = growF(ws.triP, n)
	ws.triB = growF(ws.triB, n)
	ws.triG = growF(ws.triG, n)
	ws.outNu = growF(ws.outNu, n)
	ws.outBeta = growF(ws.outBeta, n)
	ws.dirP = growF(ws.dirP, n)
	ws.dirB = growF(ws.dirB, n)
	if cap(ws.devs) < n {
		ws.devs = make([]sp2Device, n)
	} else {
		ws.devs = ws.devs[:n]
	}
	if cap(ws.allocs) < n {
		ws.allocs = make([]sp2Alloc, n)
	} else {
		ws.allocs = ws.allocs[:n]
	}
	if cap(ws.rdevs) < n {
		ws.rdevs = make([]reducedDevice, n)
	} else {
		ws.rdevs = ws.rdevs[:n]
	}
}

// stashPrev copies the allocation into the previous-iterate buffers; paired
// with distPrev it replaces the per-iteration Clone/Distance garbage of the
// outer loop with an in-place diff.
func (ws *Workspace) stashPrev(a fl.Allocation) {
	copy(ws.prevP, a.Power)
	copy(ws.prevB, a.Bandwidth)
	copy(ws.prevF, a.Freq)
}

// distPrev returns the normalized infinity-norm distance between the
// allocation and the stashed previous iterate (the outer-loop convergence
// metric), without allocating.
func (ws *Workspace) distPrev(a fl.Allocation) float64 {
	prev := fl.Allocation{Power: ws.prevP, Bandwidth: ws.prevB, Freq: ws.prevF}
	return a.Distance(prev)
}

// growF returns a float64 slice of length n, reusing the backing array when
// it is large enough.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// wsPool recycles workspaces for solver calls that do not bring their own
// (Options.Work == nil). Only entry points that copy every returned value
// out of the workspace may use the pool.
var wsPool = sync.Pool{New: func() any { return &Workspace{} }}
