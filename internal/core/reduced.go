package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// reducedDevice models one device's transmission energy after eliminating
// the power variable: since p*d/G(p,B) is strictly increasing in p at fixed
// B, the optimal power is always p(B) = clamp(PowerForRate(rmin, B), PMin,
// PMax), leaving energy as a convex decreasing function of bandwidth alone.
type reducedDevice struct {
	d, g       float64
	pmin, pmax float64
	rmin       float64
	bForced    float64 // bandwidth where p(B) = pmax: the feasibility floor
	bJunction  float64 // bandwidth where p(B) = pmin (+Inf if unreachable)
}

// newReducedDevice validates and precomputes the reduction for one device.
func newReducedDevice(dev fl.Device, n0, rmin float64) (reducedDevice, error) {
	rd := reducedDevice{d: dev.UploadBits, g: dev.Gain, pmin: dev.PMin, pmax: dev.PMax, rmin: rmin}
	if !(rmin > 0) {
		return rd, fmt.Errorf("core: rmin=%g must be positive: %w", rmin, ErrBadInput)
	}
	bf, err := wireless.BandwidthForRate(rmin, dev.PMax, dev.Gain, n0)
	if err != nil {
		return rd, fmt.Errorf("core: rate %g unreachable at pmax: %w (%v)", rmin, ErrInfeasible, err)
	}
	rd.bForced = bf
	// Probe reachability before solving: rmin is routinely unreachable at
	// PMin, and the error path allocates on what is a hot loop (one
	// reduced-device rebuild per direct SP2 solve).
	if rmin < wireless.RateLimit(dev.PMin, dev.Gain, n0) {
		if bj, err := wireless.BandwidthForRate(rmin, dev.PMin, dev.Gain, n0); err == nil {
			rd.bJunction = bj
		} else {
			rd.bJunction = math.Inf(1)
		}
	} else {
		rd.bJunction = math.Inf(1)
	}
	return rd, nil
}

// power returns the reduced optimal power at bandwidth b.
func (rd reducedDevice) power(n0, b float64) float64 {
	return numeric.Clamp(wireless.PowerForRate(rd.rmin, b, rd.g, n0), rd.pmin, rd.pmax)
}

// energy returns the per-round transmission energy at bandwidth b under the
// reduced power rule.
func (rd reducedDevice) energy(n0, b float64) float64 {
	p := rd.power(n0, b)
	g := wireless.Rate(p, b, rd.g, n0)
	if g <= 0 {
		return math.Inf(1)
	}
	return p * rd.d / g
}

// marginal returns -dE/dB at bandwidth b: the energy saved per extra hertz,
// a positive quantity decreasing in b.
func (rd reducedDevice) marginal(n0, b float64) float64 {
	if b < rd.bJunction {
		// Rate-pinned: E = (d/rmin)*p(B), p(B) = (2^(rmin/B)-1)*N0*B/g, so
		// dp/dB = (N0/g)*(e^x*(1-x) - 1) with x = rmin*ln2/B. The expm1 form
		// avoids catastrophic cancellation for small x:
		// e^x*(1-x) - 1 = expm1(x)*(1-x) - x = -x^2/2 - x^3/3 - ...
		x := rd.rmin * math.Ln2 / b
		dp := n0 / rd.g * (math.Expm1(x)*(1-x) - x)
		return -rd.d / rd.rmin * dp
	}
	// Free branch: E = pmin*d/G(pmin, B).
	gRate := wireless.Rate(rd.pmin, b, rd.g, n0)
	theta := rd.pmin * rd.g / (n0 * b)
	gb := numeric.Log2p1(theta) - theta/((1+theta)*math.Ln2)
	return rd.pmin * rd.d * gb / (gRate * gRate)
}

// bandAt returns the bandwidth at water level lambda: the b >= bForced with
// marginal(b) = lambda, or bForced when even there the marginal is below
// lambda.
func (rd reducedDevice) bandAt(n0, lambda float64) float64 {
	if rd.marginal(n0, rd.bForced) <= lambda {
		return rd.bForced
	}
	hi := rd.bForced * 2
	for iter := 0; rd.marginal(n0, hi) > lambda; iter++ {
		hi *= 4
		if iter > 300 {
			return hi
		}
	}
	b, err := numeric.BisectDecreasing(func(b float64) float64 {
		return rd.marginal(n0, b) - lambda
	}, rd.bForced, hi, 1e-9*hi)
	if err != nil {
		return rd.bForced
	}
	return b
}
