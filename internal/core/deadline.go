package core

import (
	"fmt"
	"math"

	"repro/internal/fl"
	"repro/internal/numeric"
	"repro/internal/wireless"
)

// solveDeadlineJoint solves the fixed-deadline energy minimization (the
// w1 = 1, w2 = 0, fixed-T setting of Figs. 7-8) by dual decomposition on the
// single coupling constraint sum B_n <= B:
//
// At a bandwidth price lambda, each device independently chooses its upload
// time share t (hence frequency f = clamp(Rl*c*D/(T-t), FMin, FMax) and rate
// floor d/t) and bandwidth B, minimizing
//
//	kappa*Rl*c*D*f(t)^2 + E_tr(d/t, B) + lambda*B,
//
// where E_tr is the reduced transmission energy (power eliminated, see
// reducedDevice). The inner bandwidth choice is the reduced waterfilling
// condition; the outer time split is a 1-D search. Bisection on lambda
// clears the band. Unlike alternating f/(p,B) updates — which ratchet every
// device's rate floor at its incoming upload time — the price decomposition
// explores the full compute/communicate tradeoff and is what makes the
// proposed scheme dominate the block-coordinate Scheme 1 baseline.
func solveDeadlineJoint(s *fl.System, roundDeadline float64) (fl.Allocation, error) {
	n := s.N()
	type devPlan struct {
		tLo, tHi float64
		cycles   float64 // Rl * c_n * D_n
	}
	plans := make([]devPlan, n)
	for i, d := range s.Devices {
		cycles := s.LocalIters * d.CyclesPerIteration()
		tHi := roundDeadline - cycles/d.FMax
		if tHi <= 0 {
			return fl.Allocation{}, fmt.Errorf("core: device %d compute floor %g exceeds round deadline %g: %w",
				i, cycles/d.FMax, roundDeadline, ErrInfeasible)
		}
		// Fastest conceivable upload: full power over the whole band.
		rTop := wireless.Rate(d.PMax, s.Bandwidth, d.Gain, s.N0)
		if rTop <= 0 {
			return fl.Allocation{}, fmt.Errorf("core: device %d has zero rate: %w", i, ErrInfeasible)
		}
		tLo := d.UploadBits / rTop * (1 + 1e-9)
		if tLo >= tHi {
			return fl.Allocation{}, fmt.Errorf("core: device %d cannot fit upload %gs before deadline: %w", i, tLo, ErrInfeasible)
		}
		plans[i] = devPlan{tLo: tLo, tHi: tHi, cycles: cycles}
	}

	// bestSplit returns device i's optimal (t, B) at price lambda, along
	// with the implied reduced device for that rate floor.
	bestSplit := func(i int, lambda float64) (float64, float64, error) {
		d := s.Devices[i]
		pl := plans[i]
		cost := func(t float64) float64 {
			rd, err := newReducedDevice(d, s.N0, d.UploadBits/t)
			if err != nil {
				return math.Inf(1)
			}
			b := rd.bandAt(s.N0, lambda)
			f := numeric.Clamp(pl.cycles/(roundDeadline-t), d.FMin, d.FMax)
			return s.Kappa*pl.cycles*f*f + rd.energy(s.N0, b) + lambda*b
		}
		t, err := numeric.GridRefineMin(cost, pl.tLo, pl.tHi, 24, 1e-8*roundDeadline)
		if err != nil {
			return 0, 0, fmt.Errorf("core: device %d split search: %w", i, err)
		}
		rd, err := newReducedDevice(d, s.N0, d.UploadBits/t)
		if err != nil {
			return 0, 0, err
		}
		return t, rd.bandAt(s.N0, lambda), nil
	}

	demand := func(lambda float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			_, b, err := bestSplit(i, lambda)
			if err != nil {
				return math.Inf(1)
			}
			sum += b
		}
		return sum
	}

	// Bracket the price. High lambda pushes every device to its tightest
	// bandwidth (longest affordable upload at pmax); demand may still exceed
	// the budget — then the instance is infeasible.
	lamLo, lamHi := 1e-12, 1.0
	for demand(lamLo) <= s.Bandwidth && lamLo > 1e-300 {
		lamLo /= 256
	}
	grew := 0
	for demand(lamHi) > s.Bandwidth {
		lamHi *= 16
		grew++
		if grew > 200 {
			return fl.Allocation{}, fmt.Errorf("core: no bandwidth price clears the deadline instance: %w", ErrInfeasible)
		}
	}
	if demand(lamLo) <= s.Bandwidth {
		lamLo = lamHi // degenerate: floors fill the band at any price
	}
	lambda, err := numeric.BisectDecreasing(func(l float64) float64 { return demand(l) - s.Bandwidth },
		math.Min(lamLo, lamHi), lamHi, 1e-10*lamHi)
	if err != nil {
		return fl.Allocation{}, fmt.Errorf("core: deadline price bisection: %w", err)
	}

	// Extract the splits on the feasible side of the clearing price: demand
	// jumps where a device's optimal split switches basins, and the
	// bisection midpoint may sit a hair on the over-committed side. Nudge
	// lambda upward (with growing steps) until the induced bandwidth floors
	// fit the budget.
	splits := make([]float64, n)
	extract := func(lam float64) (float64, error) {
		var floorSum float64
		for i, d := range s.Devices {
			t, _, err := bestSplit(i, lam)
			if err != nil {
				return 0, err
			}
			splits[i] = t
			rd, err := newReducedDevice(d, s.N0, d.UploadBits/t)
			if err != nil {
				return 0, err
			}
			floorSum += rd.bForced
		}
		return floorSum, nil
	}
	eps := 1e-12
	for k := 0; ; k++ {
		floorSum, err := extract(lambda)
		if err != nil {
			return fl.Allocation{}, err
		}
		if floorSum <= s.Bandwidth*(1+budgetSlack) {
			break
		}
		if k >= 64 {
			return fl.Allocation{}, fmt.Errorf("core: deadline splits never fit the band (floors %g > %g): %w",
				floorSum, s.Bandwidth, ErrInfeasible)
		}
		lambda *= 1 + eps
		eps *= 4
	}

	// Polish away the decomposition's residual gap (price jumps leave a
	// little misallocated band): alternate an exact bandwidth waterfill at
	// the fixed splits with per-device re-splits at the fixed bands. Every
	// half-step is an exact block minimization, so the total energy is
	// non-increasing; a few passes suffice.
	var bands []float64
	reduced := make([]reducedDevice, n)
	rebuild := func() error {
		for i, d := range s.Devices {
			rd, err := newReducedDevice(d, s.N0, d.UploadBits/splits[i])
			if err != nil {
				return err
			}
			reduced[i] = rd
		}
		return nil
	}
	if err := rebuild(); err != nil {
		return fl.Allocation{}, err
	}
	for pass := 0; pass < 4; pass++ {
		var werr error
		_, bands, werr = waterfillReduced(reduced, s.N0, s.Bandwidth)
		if werr != nil {
			return fl.Allocation{}, werr
		}
		if pass == 3 {
			break
		}
		// Re-split each device at its fixed bandwidth.
		for i, d := range s.Devices {
			b := bands[i]
			pl := plans[i]
			cost := func(t float64) float64 {
				r := d.UploadBits / t
				p := numeric.Clamp(wireless.PowerForRate(r, b, d.Gain, s.N0), d.PMin, d.PMax)
				g := wireless.Rate(p, b, d.Gain, s.N0)
				if g < r*(1-1e-12) {
					return math.Inf(1) // cannot reach this rate at pmax on band b
				}
				f := numeric.Clamp(pl.cycles/(roundDeadline-t), d.FMin, d.FMax)
				return s.Kappa*pl.cycles*f*f + p*d.UploadBits/g
			}
			if t, gerr := numeric.GridRefineMin(cost, pl.tLo, pl.tHi, 24, 1e-9*roundDeadline); gerr == nil &&
				cost(t) <= cost(splits[i]) {
				splits[i] = t
			}
		}
		if err := rebuild(); err != nil {
			return fl.Allocation{}, err
		}
	}

	alloc := fl.NewAllocation(n)
	for i, d := range s.Devices {
		rd := reduced[i]
		alloc.Bandwidth[i] = math.Max(bands[i], rd.bForced)
		alloc.Power[i] = rd.power(s.N0, alloc.Bandwidth[i])
		alloc.Freq[i] = numeric.Clamp(plans[i].cycles/(roundDeadline-splits[i]), d.FMin, d.FMax)
	}
	return alloc, nil
}
