package core

import (
	"math"
	"testing"

	"repro/internal/wireless"
)

func TestSolveMinTimeFeasibleAndTight(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := newTestSystem(6, seed)
		res, err := SolveMinTime(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(res.Allocation, 1e-9); err != nil {
			t.Fatalf("seed %d: infeasible result: %v", seed, err)
		}
		m := s.Evaluate(res.Allocation)
		if relDiff(m.RoundTime, res.RoundDeadline) > 1e-9 {
			t.Errorf("seed %d: reported deadline %g vs evaluated %g", seed, res.RoundDeadline, m.RoundTime)
		}
		// Tightness: a 0.5% smaller deadline must be infeasible — the total
		// bandwidth needed to hit it exceeds B.
		target := res.RoundDeadline * 0.995
		var need float64
		for _, d := range s.Devices {
			residual := target - s.LocalIters*d.CyclesPerIteration()/d.FMax
			if residual <= 0 {
				need = math.Inf(1)
				break
			}
			b, err := wireless.BandwidthForRate(d.UploadBits/residual, d.PMax, d.Gain, s.N0)
			if err != nil {
				need = math.Inf(1)
				break
			}
			need += b
		}
		if need <= s.Bandwidth {
			t.Errorf("seed %d: deadline %g not minimal (%g also feasible with band %g)",
				seed, res.RoundDeadline, target, need)
		}
	}
}

func TestSolveMinTimeUsesCeilings(t *testing.T) {
	s := newTestSystem(4, 2)
	res, err := SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range s.Devices {
		if res.Allocation.Power[i] != d.PMax {
			t.Errorf("power[%d] should be PMax", i)
		}
		if res.Allocation.Freq[i] != d.FMax {
			t.Errorf("freq[%d] should be FMax", i)
		}
	}
	// All bandwidth is spent (leftover is redistributed).
	var sum float64
	for _, b := range res.Allocation.Bandwidth {
		sum += b
	}
	if relDiff(sum, s.Bandwidth) > 1e-6 {
		t.Errorf("bandwidth used %g of %g", sum, s.Bandwidth)
	}
}

func TestSolveMinTimeRejectsBadSystem(t *testing.T) {
	s := newTestSystem(2, 1)
	s.Bandwidth = 0
	if _, err := SolveMinTime(s); err == nil {
		t.Error("want error for zero bandwidth")
	}
}
