package core

import (
	"testing"

	"repro/internal/fl"
)

// The joint weighted solver must never be worse than the paper's
// alternation (which freezes the transmission side under tight weights).
func TestWeightedJointDominatesAlternation(t *testing.T) {
	if testing.Short() {
		t.Skip("joint weighted solver sweep is slow")
	}
	for seed := int64(1); seed <= 3; seed++ {
		s := newTestSystem(8, seed)
		for _, w := range []fl.Weights{{W1: 0.7, W2: 0.3}, {W1: 0.3, W2: 0.7}} {
			alt, err := Optimize(s, w, Options{})
			if err != nil {
				t.Fatalf("seed %d alternation: %v", seed, err)
			}
			joint, err := SolveWeightedJoint(s, w, Options{})
			if err != nil {
				t.Fatalf("seed %d joint: %v", seed, err)
			}
			if joint.Objective > alt.Objective*(1+1e-3) {
				t.Errorf("seed %d w=%v: joint %g worse than alternation %g",
					seed, w, joint.Objective, alt.Objective)
			}
			if err := s.ValidateDeadline(joint.Allocation, joint.RoundDeadline, 1e-6); err != nil {
				t.Errorf("seed %d: joint allocation infeasible: %v", seed, err)
			}
		}
	}
}

func TestWeightedJointCorners(t *testing.T) {
	s := newTestSystem(5, 3)
	// Corner weights route to the standard pathways.
	res, err := SolveWeightedJoint(s, fl.Weights{W1: 0, W2: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := SolveMinTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(res.RoundDeadline, mt.RoundDeadline) > 1e-9 {
		t.Errorf("w1=0 corner: %g vs min-time %g", res.RoundDeadline, mt.RoundDeadline)
	}
	if _, err := SolveWeightedJoint(s, fl.Weights{W1: 1, W2: 0}, Options{}); err != nil {
		t.Errorf("w2=0 corner: %v", err)
	}
}

func TestOptimizeJointWeightedOption(t *testing.T) {
	s := newTestSystem(6, 4)
	w := fl.Weights{W1: 0.5, W2: 0.5}
	viaOption, err := Optimize(s, w, Options{JointWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := SolveWeightedJoint(s, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(viaOption.Objective, direct.Objective) > 1e-9 {
		t.Errorf("option dispatch mismatch: %g vs %g", viaOption.Objective, direct.Objective)
	}
}
