package replica

import (
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/stream"
)

// SnapshotterConfig parameterizes a Snapshotter. Path and Capture are
// required.
type SnapshotterConfig struct {
	// Path is the snapshot file (its directory is created on first save).
	Path string
	// Interval is the periodic-save cadence. Zero selects 30 seconds;
	// negative disables the ticker (saves happen only via SaveNow and the
	// final flush in Close).
	Interval time.Duration
	// Capture produces the snapshot to persist; it runs on the ticker
	// goroutine and must be safe to call concurrently with traffic (the
	// serve/stream export paths are).
	Capture func() Snapshot
	// Logger receives save/restore events; nil uses slog.Default().
	Logger *slog.Logger
}

// Snapshotter persists periodic snapshots of a serving process. Start
// launches the ticker; Close performs one final flush and stops it — the
// graceful-shutdown path that makes a SIGTERM lose at most nothing
// instead of at most one interval.
type Snapshotter struct {
	cfg SnapshotterConfig
	log *slog.Logger

	saves     atomic.Int64
	saveErrs  atomic.Int64
	lastBytes atomic.Int64
	lastUnix  atomic.Int64

	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewSnapshotter builds a snapshotter; call Start to begin the ticker.
func NewSnapshotter(cfg SnapshotterConfig) *Snapshotter {
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	return &Snapshotter{cfg: cfg, log: log, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the periodic-save loop (a no-op when Interval < 0, or
// when already started).
func (s *Snapshotter) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.done)
		if s.cfg.Interval < 0 {
			<-s.stop
			return
		}
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				if err := s.SaveNow(); err != nil {
					s.log.Warn("snapshot save failed", "path", s.cfg.Path, "err", err)
				}
			}
		}
	}()
}

// SaveNow captures and persists one snapshot synchronously.
func (s *Snapshotter) SaveNow() error {
	snap := s.cfg.Capture()
	snap.SavedAt = time.Now()
	data, err := Encode(snap)
	if err != nil {
		s.saveErrs.Add(1)
		return err
	}
	if err := Save(s.cfg.Path, snap); err != nil {
		s.saveErrs.Add(1)
		return err
	}
	s.saves.Add(1)
	s.lastBytes.Store(int64(len(data)))
	s.lastUnix.Store(snap.SavedAt.UnixNano())
	return nil
}

// Close flushes one final snapshot and stops the ticker; the flush error
// (if any) is returned so shutdown paths can log it. Safe to call more
// than once.
func (s *Snapshotter) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		if s.started.Load() {
			<-s.done
		}
		err = s.SaveNow()
	})
	return err
}

// SnapshotterStats is the snapshotter's counter view for /v1/stats and
// /metrics.
type SnapshotterStats struct {
	Saves      int64     `json:"saves"`
	SaveErrors int64     `json:"save_errors"`
	LastBytes  int64     `json:"last_bytes"`
	LastSaved  time.Time `json:"last_saved,omitempty"`
}

// Stats snapshots the save counters.
func (s *Snapshotter) Stats() SnapshotterStats {
	st := SnapshotterStats{
		Saves:      s.saves.Load(),
		SaveErrors: s.saveErrs.Load(),
		LastBytes:  s.lastBytes.Load(),
	}
	if ns := s.lastUnix.Load(); ns != 0 {
		st.LastSaved = time.Unix(0, ns)
	}
	return st
}

// WritePrometheus emits the snapshot_* series.
func (st SnapshotterStats) WritePrometheus(pw *serve.PromWriter) {
	pw.Counter("snapshot_saves_total", "Snapshots persisted (periodic and final flushes).", "", float64(st.Saves))
	pw.Counter("snapshot_save_errors_total", "Snapshot saves that failed.", "", float64(st.SaveErrors))
	pw.Gauge("snapshot_last_bytes", "Encoded size of the most recent snapshot.", "", float64(st.LastBytes))
	if !st.LastSaved.IsZero() {
		pw.Gauge("snapshot_last_save_timestamp_seconds", "Unix time of the most recent successful save.", "", float64(st.LastSaved.UnixNano())/1e9)
	}
}

// CaptureServer builds a Capture for a single-server process: the
// server's state as cell 0, plus the manager's sessions (mgr may be
// nil).
func CaptureServer(srv *serve.Server, mgr *stream.Manager) func() Snapshot {
	return func() Snapshot {
		snap := Snapshot{Cells: []CellState{{Cell: 0, State: srv.ExportState()}}}
		if mgr != nil {
			snap.Sessions = mgr.ExportSessions()
		}
		return snap
	}
}

// CaptureCluster builds a Capture for a cluster: every live cell's state
// under its ID, plus the manager's sessions (mgr may be nil).
func CaptureCluster(r *cluster.Router, mgr *stream.Manager) func() Snapshot {
	return func() Snapshot {
		var snap Snapshot
		for _, id := range r.CellIDs() {
			srv, ok := r.CellServer(id)
			if !ok {
				continue // removed between CellIDs and here
			}
			snap.Cells = append(snap.Cells, CellState{Cell: id, State: srv.ExportState()})
		}
		if mgr != nil {
			snap.Sessions = mgr.ExportSessions()
		}
		return snap
	}
}

// RestoreReport summarizes what a restore landed.
type RestoreReport struct {
	// Cells is how many cell-state sections were imported; Results and
	// WarmSeeds what they carried.
	Cells     int `json:"cells"`
	Results   int `json:"results"`
	WarmSeeds int `json:"warm_seeds"`
	// Sessions is how many stream sessions were recreated.
	Sessions int `json:"sessions"`
}

// RestoreServer imports a snapshot into a single-server process: every
// cell section lands in the one server (state is valid anywhere — all
// cells share one fingerprint quantization), and sessions are recreated
// in the manager (skipped when mgr is nil).
func RestoreServer(srv *serve.Server, mgr *stream.Manager, snap Snapshot) RestoreReport {
	var rep RestoreReport
	for _, cs := range snap.Cells {
		srv.ImportState(cs.State)
		rep.Cells++
		rep.Results += len(cs.State.Results)
		rep.WarmSeeds += len(cs.State.Warm)
	}
	if mgr != nil {
		rep.Sessions = mgr.RestoreSessions(snap.Sessions)
	}
	return rep
}

// RestoreCluster imports a snapshot into a cluster: each cell section
// lands on its original cell when that ID is still a member, otherwise
// it is spread round-robin over the live cells (valid anywhere — shared
// quantization; a later rebalance or plain cache misses settle any
// misplacement). Sessions are recreated in the manager (skipped when mgr
// is nil).
func RestoreCluster(r *cluster.Router, mgr *stream.Manager, snap Snapshot) RestoreReport {
	var rep RestoreReport
	ids := r.CellIDs()
	next := 0
	for _, cs := range snap.Cells {
		srv, ok := r.CellServer(cs.Cell)
		if !ok {
			if len(ids) == 0 {
				continue
			}
			srv, ok = r.CellServer(ids[next%len(ids)])
			next++
			if !ok {
				continue
			}
		}
		srv.ImportState(cs.State)
		rep.Cells++
		rep.Results += len(cs.State.Results)
		rep.WarmSeeds += len(cs.State.Warm)
	}
	if mgr != nil {
		rep.Sessions = mgr.RestoreSessions(snap.Sessions)
	}
	return rep
}

// BootRestore loads the snapshot at path and hands it to restore,
// degrading every failure to a cold start: a missing file boots silently
// cold, a corrupt/truncated/version-skewed one boots cold with a WARN.
// The boolean reports whether a snapshot was actually restored. Boot
// never fails because of a snapshot.
func BootRestore(path string, log *slog.Logger, restore func(Snapshot) RestoreReport) (RestoreReport, bool) {
	if log == nil {
		log = slog.Default()
	}
	snap, err := Load(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Warn("snapshot restore failed, starting cold", "path", path, "err", err)
		}
		return RestoreReport{}, false
	}
	rep := restore(snap)
	log.Info("snapshot restored",
		"path", path, "saved_at", snap.SavedAt,
		"cells", rep.Cells, "results", rep.Results, "warm_seeds", rep.WarmSeeds, "sessions", rep.Sessions)
	return rep, true
}
