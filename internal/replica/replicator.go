package replica

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/serve"
)

// ReplicatorConfig parameterizes a Replicator. Router is required.
type ReplicatorConfig struct {
	// Router is the cluster whose solves are observed and whose cells the
	// replicas protect.
	Router *cluster.Router
	// Interval is the flush cadence: how long a solve may sit dirty
	// before its warm state is shipped (the replication lag bound under
	// light traffic). Zero selects 1 second; negative disables the ticker
	// (tests drive Flush directly).
	Interval time.Duration
	// MaxDirty triggers an early flush when this many devices are dirty,
	// so the lag stays bounded under heavy churn too. Default 256.
	MaxDirty int
	// MaxDevices bounds the per-source-cell replica store; beyond it an
	// arbitrary device's replica is evicted (best-effort, like the warm
	// index). Default 65536.
	MaxDevices int
	// Logger receives flush/promotion events; nil uses slog.Default().
	Logger *slog.Logger
}

func (c ReplicatorConfig) withDefaults() ReplicatorConfig {
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.MaxDirty <= 0 {
		c.MaxDirty = 256
	}
	if c.MaxDevices <= 0 {
		c.MaxDevices = 65536
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// dirtyEntry tracks one device with unshipped solves: the cell that
// served them, the fingerprints touched, and when it first went dirty
// (the age of the oldest unshipped state — the current replication lag).
type dirtyEntry struct {
	cell  int
	fps   map[uint64]serve.Fingerprint // keyed by exact fingerprint
	since time.Time
}

// warmBundle is one replicated warm seed: the fingerprint it is filed
// under and the allocation + dual state that make a successor's first
// re-solve warm and dual-seeded. Replication deliberately ships the warm
// state only, never the solution cache: a crash degrades the keyspace to
// warm-but-not-cached, and the cache refills on the successor naturally.
type warmBundle struct {
	fp    serve.Fingerprint
	warm  *fl.Allocation
	duals *core.DualState
}

// devReplica is one device's replicated state held for a source cell.
type devReplica struct {
	bundles   map[uint64]warmBundle // keyed by topology bucket
	shippedAt time.Time
}

// Replicator coalesces the cluster's solve stream into asynchronous
// warm-state shipments keyed by source cell — the in-process stand-in
// for shipping to each cell's ring successor over the network. The hook
// installed on the router marks devices dirty; the flush loop ships each
// dirty device's warm allocation + dual seed into the replica store
// (bounded lag: one shipment covers all solves since the last); Promote
// injects a dead cell's replicas into the post-crash ring owners.
type Replicator struct {
	cfg ReplicatorConfig
	log *slog.Logger

	mu    sync.Mutex
	dirty map[string]*dirtyEntry
	// store holds each source cell's replicas: store[cell][device]. On a
	// crash, store[cell] is exactly what Promote hands the successors.
	store map[int]map[string]*devReplica

	flushes      atomic.Int64
	shippedWarm  atomic.Int64
	flushDropped atomic.Int64
	promotions   atomic.Int64
	promotedWarm atomic.Int64
	lostDirty    atomic.Int64

	kick      chan struct{}
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewReplicator builds a replicator and installs its solve hook on the
// router; call Start to begin the flush loop, Close to stop it and
// uninstall the hook.
func NewReplicator(cfg ReplicatorConfig) *Replicator {
	cfg = cfg.withDefaults()
	r := &Replicator{
		cfg:   cfg,
		log:   cfg.Logger,
		dirty: make(map[string]*dirtyEntry),
		store: make(map[int]map[string]*devReplica),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	cfg.Router.SetServeHook(r.observe)
	return r
}

// observe is the router's per-solve hook: mark the device dirty under
// its serving cell. It runs on the request path, so the critical section
// is a map upsert and nothing more; the actual state copy happens on the
// flush goroutine.
func (r *Replicator) observe(deviceID string, cell int, fp serve.Fingerprint) {
	r.mu.Lock()
	d := r.dirty[deviceID]
	if d == nil {
		d = &dirtyEntry{fps: make(map[uint64]serve.Fingerprint, 4), since: time.Now()}
		r.dirty[deviceID] = d
	}
	d.cell = cell
	d.fps[fp.Exact] = fp
	n := len(r.dirty)
	r.mu.Unlock()
	if n >= r.cfg.MaxDirty {
		select {
		case r.kick <- struct{}{}:
		default:
		}
	}
}

// Start launches the flush loop (ticker + early-flush kicks).
func (r *Replicator) Start() {
	if !r.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(r.done)
		var tick <-chan time.Time
		if r.cfg.Interval > 0 {
			t := time.NewTicker(r.cfg.Interval)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-r.stop:
				return
			case <-tick:
				r.Flush()
			case <-r.kick:
				r.Flush()
			}
		}
	}()
}

// Close stops the flush loop and uninstalls the router hook. Safe to
// call more than once.
func (r *Replicator) Close() {
	r.closeOnce.Do(func() {
		r.cfg.Router.SetServeHook(nil)
		close(r.stop)
		if r.started.Load() {
			<-r.done
		}
	})
}

// Flush ships every dirty device's warm state into the replica store:
// the dirty set is swapped out under the lock, each source cell's
// fingerprints are peeked in one batch (copies — the serving cell keeps
// its state), and the warm allocation + dual seed land in the store
// keyed by source cell. Returns how many warm seeds shipped.
func (r *Replicator) Flush() int {
	r.mu.Lock()
	if len(r.dirty) == 0 {
		r.mu.Unlock()
		return 0
	}
	dirty := r.dirty
	r.dirty = make(map[string]*dirtyEntry)
	r.mu.Unlock()
	r.flushes.Add(1)

	// Group by source cell, preserving per-device attribution.
	type devFps struct {
		dev string
		fps []serve.Fingerprint
	}
	byCell := make(map[int][]devFps)
	for dev, d := range dirty {
		fps := make([]serve.Fingerprint, 0, len(d.fps))
		for _, fp := range d.fps {
			fps = append(fps, fp)
		}
		byCell[d.cell] = append(byCell[d.cell], devFps{dev: dev, fps: fps})
	}

	shipped := 0
	now := time.Now()
	for cell, devs := range byCell {
		srv, ok := r.cfg.Router.CellServer(cell)
		if !ok {
			// The cell died between the solve and the flush; its state is
			// gone and there is nothing to ship. Promote already counted
			// the dirty entries it saw — these arrived after.
			r.flushDropped.Add(int64(len(devs)))
			continue
		}
		// One batched peek per (cell, device): bundles stay attributed to
		// the device so promotion can re-key them by ring owner.
		for _, df := range devs {
			migs := srv.PeekBatch(df.fps)
			var bundles []warmBundle
			for i, m := range migs {
				warm, duals := m.Warm, m.WarmDuals
				if warm == nil && m.Result != nil {
					// Warm bucket evicted but the solution survives: its
					// allocation is just as good a seed (mirrors the
					// handoff path's prepareMigration).
					warm = &m.Result.Allocation
					duals = m.Result.Duals
				}
				if warm == nil {
					continue
				}
				bundles = append(bundles, warmBundle{fp: df.fps[i], warm: warm, duals: duals})
			}
			if len(bundles) == 0 {
				continue
			}
			r.mu.Lock()
			cellStore := r.store[cell]
			if cellStore == nil {
				cellStore = make(map[string]*devReplica)
				r.store[cell] = cellStore
			}
			rep := cellStore[df.dev]
			if rep == nil {
				if len(cellStore) >= r.cfg.MaxDevices {
					for k := range cellStore {
						delete(cellStore, k)
						break
					}
				}
				rep = &devReplica{bundles: make(map[uint64]warmBundle, len(bundles))}
				cellStore[df.dev] = rep
			}
			for _, b := range bundles {
				rep.bundles[b.fp.Topo] = b
			}
			rep.shippedAt = now
			r.mu.Unlock()
			shipped += len(bundles)
		}
	}
	r.shippedWarm.Add(int64(shipped))
	return shipped
}

// PromoteReport summarizes one crash promotion.
type PromoteReport struct {
	// Cell is the dead cell whose replicas were promoted.
	Cell int `json:"cell"`
	// Devices is how many devices had replicated state; WarmSeeds how
	// many warm allocation + dual bundles landed on successors.
	Devices   int `json:"devices"`
	WarmSeeds int `json:"warm_seeds"`
	// LostDirty is how many devices had solves still unflushed at crash
	// time — state inside the replication lag window, lost with the cell.
	LostDirty int `json:"lost_dirty"`
	// MaxLagSeconds is the age of the stalest promoted replica (how far
	// behind the primary the replica was when the cell died).
	MaxLagSeconds float64 `json:"max_lag_seconds"`
	// PerCell counts the warm seeds injected into each successor.
	PerCell map[int]int `json:"per_cell,omitempty"`
}

// Promote injects a dead cell's replicas into the devices' post-crash
// ring owners. Call AFTER the cell has been removed from the ring: the
// installed ring is then the post-crash ring, so RingOwners resolves
// exactly where each device's traffic now lands. Dirty entries still
// pointing at the dead cell are dropped and counted — they are the lag
// window's loss.
func (r *Replicator) Promote(cell int) PromoteReport {
	rep := PromoteReport{Cell: cell, PerCell: make(map[int]int)}
	r.mu.Lock()
	devs := r.store[cell]
	delete(r.store, cell)
	for dev, d := range r.dirty {
		if d.cell == cell {
			delete(r.dirty, dev)
			rep.LostDirty++
		}
	}
	r.mu.Unlock()
	r.promotions.Add(1)
	r.lostDirty.Add(int64(rep.LostDirty))
	if len(devs) == 0 {
		return rep
	}

	devices := make([]string, 0, len(devs))
	for dev := range devs {
		devices = append(devices, dev)
	}
	owners := r.cfg.Router.RingOwners(devices)
	now := time.Now()

	type ship struct {
		fps  []serve.Fingerprint
		migs []serve.Migration
	}
	byOwner := make(map[int]*ship)
	for dev, replica := range devs {
		owner := owners[dev]
		s := byOwner[owner]
		if s == nil {
			s = &ship{}
			byOwner[owner] = s
		}
		for _, b := range replica.bundles {
			s.fps = append(s.fps, b.fp)
			s.migs = append(s.migs, serve.Migration{Warm: b.warm, WarmDuals: b.duals})
		}
		if lag := now.Sub(replica.shippedAt).Seconds(); lag > rep.MaxLagSeconds {
			rep.MaxLagSeconds = lag
		}
		rep.Devices++
	}
	for owner, s := range byOwner {
		srv, ok := r.cfg.Router.CellServer(owner)
		if !ok {
			continue // owner died too; its own promotion will cover what it can
		}
		srv.InjectBatch(s.fps, s.migs)
		rep.WarmSeeds += len(s.fps)
		rep.PerCell[owner] += len(s.fps)
	}
	r.promotedWarm.Add(int64(rep.WarmSeeds))
	return rep
}

// ReplicaStats is the replicator's counter view for /v1/stats and
// /metrics.
type ReplicaStats struct {
	Flushes      int64 `json:"flushes"`
	ShippedWarm  int64 `json:"shipped_warm_seeds"`
	FlushDropped int64 `json:"flush_dropped_devices"`
	Promotions   int64 `json:"promotions"`
	PromotedWarm int64 `json:"promoted_warm_seeds"`
	LostDirty    int64 `json:"lost_dirty_devices"`
	// DirtyDevices is the current unshipped backlog; DirtyLagSeconds the
	// age of its oldest entry (the current replication lag).
	DirtyDevices    int     `json:"dirty_devices"`
	DirtyLagSeconds float64 `json:"dirty_lag_seconds"`
	// StoreDevices is the total replicated device count across source
	// cells; StoreCells how many source cells have replicas.
	StoreDevices int `json:"store_devices"`
	StoreCells   int `json:"store_cells"`
}

// Stats snapshots the replicator.
func (r *Replicator) Stats() ReplicaStats {
	st := ReplicaStats{
		Flushes:      r.flushes.Load(),
		ShippedWarm:  r.shippedWarm.Load(),
		FlushDropped: r.flushDropped.Load(),
		Promotions:   r.promotions.Load(),
		PromotedWarm: r.promotedWarm.Load(),
		LostDirty:    r.lostDirty.Load(),
	}
	now := time.Now()
	r.mu.Lock()
	st.DirtyDevices = len(r.dirty)
	for _, d := range r.dirty {
		if lag := now.Sub(d.since).Seconds(); lag > st.DirtyLagSeconds {
			st.DirtyLagSeconds = lag
		}
	}
	st.StoreCells = len(r.store)
	for _, devs := range r.store {
		st.StoreDevices += len(devs)
	}
	r.mu.Unlock()
	return st
}

// WritePrometheus emits the replica_* series.
func (st ReplicaStats) WritePrometheus(pw *serve.PromWriter) {
	pw.Counter("replica_flushes_total", "Replication flush passes.", "", float64(st.Flushes))
	pw.Counter("replica_shipped_warm_seeds_total", "Warm allocation+dual bundles shipped to the replica store.", "", float64(st.ShippedWarm))
	pw.Counter("replica_flush_dropped_devices_total", "Dirty devices dropped at flush because their cell was gone.", "", float64(st.FlushDropped))
	pw.Counter("replica_promotions_total", "Crash promotions executed.", "", float64(st.Promotions))
	pw.Counter("replica_promoted_warm_seeds_total", "Warm bundles injected into successors at promotion.", "", float64(st.PromotedWarm))
	pw.Counter("replica_lost_dirty_devices_total", "Devices whose unflushed solves were lost with a crashed cell.", "", float64(st.LostDirty))
	pw.Gauge("replica_dirty_devices", "Devices with solves not yet shipped.", "", float64(st.DirtyDevices))
	pw.Gauge("replica_lag_seconds", "Age of the oldest unshipped solve (current replication lag).", "", st.DirtyLagSeconds)
	pw.Gauge("replica_store_devices", "Devices with replicated state across all source cells.", "", float64(st.StoreDevices))
	pw.Gauge("replica_store_cells", "Source cells with replicated state.", "", float64(st.StoreCells))
}
