package replica

import (
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func sampleSnapshot() Snapshot {
	return Snapshot{
		SavedAt: time.Unix(1700000000, 0).UTC(),
		Cells: []CellState{{
			Cell: 2,
			State: serve.ServerState{
				Results: []serve.CachedResult{{Key: 42, Result: core.Result{Objective: 1.5, Converged: true}}},
			},
		}},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SavedAt.Equal(want.SavedAt) || len(got.Cells) != 1 || got.Cells[0].Cell != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Cells[0].State.Results[0].Key != 42 || got.Cells[0].State.Results[0].Result.Objective != 1.5 {
		t.Fatalf("payload mismatch: %+v", got.Cells[0].State.Results[0])
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":        {},
		"short header": data[:headerLen-3],
		"truncated":    data[:len(data)-5],
		"bad magic":    append([]byte("NOTASNAP"), data[len(snapMagic):]...),
		"flipped payload byte": func() []byte {
			c := append([]byte(nil), data...)
			c[headerLen+4] ^= 0xFF
			return c
		}(),
	}
	for name, buf := range cases {
		if _, err := Decode(buf); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Errorf("%s: err %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	skewed := append([]byte("FLSNAP99"), data[len(snapMagic):]...)
	if _, err := Decode(skewed); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version-skewed decode err %v, want ErrSnapshotVersion", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "state.snap")
	want := sampleSnapshot()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SavedAt.Equal(want.SavedAt) {
		t.Fatalf("loaded SavedAt %v, want %v", got.SavedAt, want.SavedAt)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot: %v", len(entries), entries)
	}
}

// TestBootRestoreDegradesToColdStart is the never-fail-boot contract: a
// missing, truncated, corrupt or version-skewed snapshot file must all
// come back as a clean cold start, with the restore callback untouched.
func TestBootRestoreDegradesToColdStart(t *testing.T) {
	dir := t.TempDir()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	good, err := Encode(sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}

	files := map[string][]byte{
		"missing.snap":   nil, // not written at all
		"empty.snap":     {},
		"truncated.snap": good[:len(good)-7],
		"corrupt.snap": func() []byte {
			c := append([]byte(nil), good...)
			c[headerLen] ^= 0x55
			return c
		}(),
		"version.snap": append([]byte("FLSNAP77"), good[len(snapMagic):]...),
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if content != nil {
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		called := false
		rep, ok := BootRestore(path, log, func(Snapshot) RestoreReport {
			called = true
			return RestoreReport{Cells: 1}
		})
		if ok || called || rep.Cells != 0 {
			t.Errorf("%s: restore ran (ok=%t called=%t rep=%+v), want cold start", name, ok, called, rep)
		}
	}

	// And the healthy path restores.
	path := filepath.Join(dir, "good.snap")
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, ok := BootRestore(path, log, func(Snapshot) RestoreReport { return RestoreReport{Cells: 1} })
	if !ok || rep.Cells != 1 {
		t.Fatalf("good snapshot: ok=%t rep=%+v, want restored", ok, rep)
	}
}
