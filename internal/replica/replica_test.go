package replica

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/serve"
)

func testSystem(t testing.TB, n int, seed int64) *fl.System {
	t.Helper()
	sc := experiments.Default()
	sc.N = n
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func balanced() fl.Weights { return fl.Weights{W1: 0.5, W2: 0.5} }

func testRouter(t testing.TB, cells int) *cluster.Router {
	t.Helper()
	r := cluster.New(cluster.Config{Cells: cells, Cell: serve.Config{Workers: 2}})
	t.Cleanup(r.Close)
	return r
}

// driftGains drifts every gain far enough to leave the exact fingerprint
// bucket while staying inside the warm-start topology bucket.
func driftGains(s *fl.System, sigma float64, rng *rand.Rand) *fl.System {
	out := *s
	out.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= math.Exp(sigma * rng.NormFloat64())
	}
	return &out
}

func newtonIters(resp serve.Response) int {
	n := 0
	for _, it := range resp.Result.Iterations {
		n += it.NewtonIters
	}
	return n
}

// TestSnapshotterSaveRestore runs the snapshot lifecycle end to end: a
// warmed server is captured on Close (the graceful-shutdown flush), and a
// fresh "restarted" server restored from the file answers the exact
// replay from cache and a drifted replay warm + dual-seeded.
func TestSnapshotterSaveRestore(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	sys := testSystem(t, 8, 1)
	if _, err := srv.Solve(context.Background(), serve.Request{System: sys, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cell.snap")
	snapper := NewSnapshotter(SnapshotterConfig{Path: path, Interval: -1, Capture: CaptureServer(srv, nil)})
	snapper.Start()
	if err := snapper.Close(); err != nil {
		t.Fatal(err)
	}
	st := snapper.Stats()
	if st.Saves != 1 || st.SaveErrors != 0 || st.LastBytes == 0 {
		t.Fatalf("snapshotter stats after close: %+v", st)
	}

	srv2 := serve.New(serve.Config{Workers: 2})
	defer srv2.Close()
	rep, ok := BootRestore(path, nil, func(snap Snapshot) RestoreReport {
		return RestoreServer(srv2, nil, snap)
	})
	if !ok || rep.Cells != 1 || rep.Results != 1 || rep.WarmSeeds != 1 {
		t.Fatalf("boot restore: ok=%t rep=%+v", ok, rep)
	}

	exact, err := srv2.Solve(context.Background(), serve.Request{System: sys, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Source != serve.SourceCache {
		t.Fatalf("restored exact replay source %q, want cache", exact.Source)
	}
	drifted, err := srv2.Solve(context.Background(), serve.Request{System: driftGains(sys, 0.05, rand.New(rand.NewSource(2))), Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Source != serve.SourceWarm || !drifted.DualSeeded {
		t.Fatalf("restored drifted solve source %q dualSeeded %t, want warm + dual-seeded", drifted.Source, drifted.DualSeeded)
	}
	if n := newtonIters(drifted); n != 0 {
		t.Fatalf("restored dual-seeded solve took %d Newton iterations, want 0", n)
	}
}

// TestReplicatorPromote is the crash acceptance path: devices solve
// across a cluster, the replicator ships their warm state, a cell is
// removed WITHOUT draining, and Promote lands its replicas on the
// post-crash ring owners — so the drifted re-solve for a replicated
// device is warm + dual-seeded with zero Newton iterations instead of
// cold.
func TestReplicatorPromote(t *testing.T) {
	r := testRouter(t, 3)
	rep := NewReplicator(ReplicatorConfig{Router: r, Interval: -1})
	defer rep.Close()

	// Route enough devices that every cell serves at least one.
	type served struct {
		dev  string
		sys  *fl.System
		cell int
	}
	var byCell [3][]served
	for i := 0; i < 9; i++ {
		dev := fmt.Sprintf("ue-%d", i)
		sys := testSystem(t, 8, int64(100+i))
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != serve.SourceCold {
			t.Fatalf("first solve for %s source %q, want cold", dev, resp.Source)
		}
		byCell[cell] = append(byCell[cell], served{dev: dev, sys: sys, cell: cell})
	}

	if shipped := rep.Flush(); shipped == 0 {
		t.Fatal("flush shipped nothing despite dirty devices")
	}
	st := rep.Stats()
	if st.Flushes != 1 || st.StoreDevices != 9 || st.DirtyDevices != 0 {
		t.Fatalf("post-flush stats: %+v", st)
	}

	// Pick a victim that served someone, leave one of its devices dirty
	// again (unflushed at crash time → counted lost).
	victim := -1
	for c := range byCell {
		if len(byCell[c]) > 0 {
			victim = c
			break
		}
	}
	if victim < 0 {
		t.Fatal("no cell served any device")
	}
	loss := byCell[victim][0]
	rng := rand.New(rand.NewSource(7))
	if _, _, err := r.Solve(context.Background(), victim, loss.dev, serve.Request{System: driftGains(loss.sys, 0.05, rng), Weights: balanced()}); err != nil {
		t.Fatal(err)
	}

	// Crash: remove without drain, then promote against the new ring.
	if err := r.RemoveCell(victim); err != nil {
		t.Fatal(err)
	}
	report := rep.Promote(victim)
	if report.Cell != victim || report.Devices != len(byCell[victim]) {
		t.Fatalf("promote report %+v, want %d devices of cell %d", report, len(byCell[victim]), victim)
	}
	if report.WarmSeeds == 0 || report.LostDirty != 1 {
		t.Fatalf("promote report %+v, want warm seeds > 0 and 1 lost dirty device", report)
	}
	for owner := range report.PerCell {
		if owner == victim {
			t.Fatalf("promotion injected into the dead cell: %+v", report.PerCell)
		}
	}

	// Every replicated device of the dead cell re-solves warm +
	// dual-seeded on its successor, with zero Newton iterations — the
	// keyspace degraded to warm-but-not-cached, not cold.
	for _, sv := range byCell[victim] {
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, sv.dev, serve.Request{System: driftGains(sv.sys, 0.05, rng), Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if cell == victim {
			t.Fatalf("device %s still routed to dead cell %d", sv.dev, victim)
		}
		if resp.Source != serve.SourceWarm || !resp.DualSeeded {
			t.Fatalf("post-crash re-solve for %s: source %q dualSeeded %t, want warm + dual-seeded", sv.dev, resp.Source, resp.DualSeeded)
		}
		if n := newtonIters(resp); n != 0 {
			t.Fatalf("post-crash dual-seeded re-solve for %s took %d Newton iterations, want 0", sv.dev, n)
		}
	}

	st = rep.Stats()
	if st.Promotions != 1 || st.PromotedWarm != int64(report.WarmSeeds) || st.LostDirty != 1 {
		t.Fatalf("post-promote stats: %+v", st)
	}
	var buf strings.Builder
	st.WritePrometheus(serve.NewPromWriter(&buf))
	out := buf.String()
	for _, series := range []string{"replica_promotions_total 1", "replica_lost_dirty_devices_total 1", "replica_shipped_warm_seeds_total"} {
		if !strings.Contains(out, series) {
			t.Fatalf("metrics missing %q:\n%s", series, out)
		}
	}
}

// TestReplicatorFlushCoalesces checks repeated solves for one device
// coalesce into a single dirty entry, and that a flush after the cell is
// already gone drops (and counts) the orphaned entries instead of
// shipping stale pointers.
func TestReplicatorFlushCoalesces(t *testing.T) {
	r := testRouter(t, 2)
	rep := NewReplicator(ReplicatorConfig{Router: r, Interval: -1})
	defer rep.Close()

	sys := testSystem(t, 8, 3)
	rng := rand.New(rand.NewSource(11))
	var lastCell int
	for i := 0; i < 4; i++ {
		_, cell, err := r.Solve(context.Background(), cluster.CellAuto, "ue-co", serve.Request{System: driftGains(sys, 0.05, rng), Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		lastCell = cell
	}
	if st := rep.Stats(); st.DirtyDevices != 1 {
		t.Fatalf("4 solves for one device left %d dirty entries, want 1 (coalesced)", st.DirtyDevices)
	}

	// Kill the serving cell before the flush: nothing to peek, entries
	// dropped and counted.
	if err := r.RemoveCell(lastCell); err != nil {
		t.Fatal(err)
	}
	if shipped := rep.Flush(); shipped != 0 {
		t.Fatalf("flush after cell death shipped %d seeds, want 0", shipped)
	}
	if st := rep.Stats(); st.FlushDropped != 1 || st.DirtyDevices != 0 {
		t.Fatalf("post-drop stats: %+v", st)
	}
}

// TestCaptureRestoreCluster round-trips a cluster snapshot, including a
// cell section whose ID no longer exists on the restored ring (spread
// over the live cells instead of dropped).
func TestCaptureRestoreCluster(t *testing.T) {
	src := testRouter(t, 3)
	var systems []*fl.System
	for i := 0; i < 3; i++ {
		sys := testSystem(t, 8, int64(200+i))
		systems = append(systems, sys)
		if _, _, err := src.Solve(context.Background(), i, fmt.Sprintf("ue-%d", i), serve.Request{System: sys, Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}
	snap := CaptureCluster(src, nil)()
	if len(snap.Cells) != 3 {
		t.Fatalf("captured %d cell sections, want 3", len(snap.Cells))
	}

	// Restore into a smaller cluster: cell 2's section is an orphan.
	dst := testRouter(t, 2)
	rep := RestoreCluster(dst, nil, snap)
	if rep.Cells != 3 || rep.Results != 3 || rep.WarmSeeds != 3 {
		t.Fatalf("cluster restore report %+v, want 3 cells / 3 results / 3 warm seeds", rep)
	}
	// The orphaned state still serves: its exact replay must be a cache
	// hit on whichever live cell received it.
	found := false
	for _, id := range dst.CellIDs() {
		srv, ok := dst.CellServer(id)
		if !ok {
			continue
		}
		resp, err := srv.Solve(context.Background(), serve.Request{System: systems[2], Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source == serve.SourceCache {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("orphaned cell section was not restored onto any live cell")
	}
}
