// Package replica is the durability layer over the serving stack: it
// makes the expensive state a cell accumulates — cached solutions,
// warm-start allocations, Subproblem 2 dual seeds, pinned stream
// sessions — survive process death.
//
// Two mechanisms, two failure modes:
//
//   - Snapshot/restore (Snapshotter) covers planned restarts and whole-
//     process crashes WITH a disk: every cell's cache/warm/dual state and
//     every open stream session serialize to one versioned, checksummed
//     file on a ticker and on graceful shutdown (atomic rename — a crash
//     mid-write leaves the previous snapshot intact). A restarted
//     process restores it at boot, so post-restart solves are warm +
//     dual-seeded and clients resume their sessions at the next sequence
//     number without ever seeing ErrStaleSeq. A corrupt, truncated or
//     version-skewed file degrades to a cold start — never a failed
//     boot.
//
//   - Ring-successor replication (Replicator) covers a single cell dying
//     WITHOUT warning. Every successful device-routed solve marks its
//     fingerprint dirty; a background flush coalesces the dirty set
//     (bounded lag — one shipment covers however many solves landed
//     since the last) and copies each device's warm allocation + dual
//     seed to an in-memory replica keyed by the owning cell. When the
//     control plane removes a cell WITHOUT a drain (ctrl.CrashCell),
//     Promote injects the dead cell's replicas into each device's
//     post-crash ring owner — so the keyspace degrades to
//     warm-but-not-cached instead of cold, and the first re-solve after
//     the crash runs 0 Newton iterations off the replicated dual seed.
package replica

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"repro/internal/serve"
	"repro/internal/stream"
)

// ErrSnapshotVersion flags a snapshot written by an incompatible codec
// version: the file is a recognizable snapshot, but its payload layout is
// not ours to parse. Restore falls back to a cold start.
var ErrSnapshotVersion = errors.New("replica: snapshot version mismatch")

// ErrSnapshotCorrupt flags a snapshot that fails structural validation:
// missing magic, truncated envelope, or checksum mismatch. Restore falls
// back to a cold start.
var ErrSnapshotCorrupt = errors.New("replica: snapshot corrupt")

// The envelope: an 8-byte magic whose trailing digits carry the codec
// version, an 8-byte little-endian payload length, an 8-byte FNV-1a
// checksum of the payload, then the JSON payload itself. Magic-with-
// version keeps the two failure modes distinguishable: a file whose
// prefix matches but whose version digits differ is ErrSnapshotVersion;
// anything else malformed is ErrSnapshotCorrupt.
const (
	snapMagic       = "FLSNAP01"
	snapMagicPrefix = "FLSNAP"
	headerLen       = len(snapMagic) + 8 + 8
)

// CellState pairs one cell's serializable hot state with its ID, so a
// restored cluster can land each cell's state back where it was (or
// spread it over the live cells when the membership changed).
type CellState struct {
	Cell  int               `json:"cell"`
	State serve.ServerState `json:"state"`
}

// Snapshot is the full durable state of one serving process: every
// cell's cache/warm/dual state plus every open stream session.
type Snapshot struct {
	// SavedAt is when the snapshot was captured.
	SavedAt time.Time `json:"saved_at"`
	// Cells holds each live cell's state (one entry, cell 0, for a
	// single-server flserved process).
	Cells []CellState `json:"cells,omitempty"`
	// Sessions holds every open stream session.
	Sessions []stream.SessionSnapshot `json:"sessions,omitempty"`
}

// Encode serializes a snapshot into the versioned, checksummed envelope.
func Encode(snap Snapshot) ([]byte, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("replica: encoding snapshot: %w", err)
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, snapMagic)
	binary.LittleEndian.PutUint64(buf[len(snapMagic):], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[len(snapMagic)+8:], checksum(payload))
	copy(buf[headerLen:], payload)
	return buf, nil
}

// Decode validates the envelope and unmarshals the payload. Version skew
// answers ErrSnapshotVersion; a short, unrecognizable or checksum-failing
// buffer answers ErrSnapshotCorrupt.
func Decode(data []byte) (Snapshot, error) {
	var snap Snapshot
	if len(data) < headerLen {
		return snap, fmt.Errorf("%d bytes is shorter than the %d-byte header: %w", len(data), headerLen, ErrSnapshotCorrupt)
	}
	magic := string(data[:len(snapMagic)])
	if magic != snapMagic {
		if len(magic) >= len(snapMagicPrefix) && magic[:len(snapMagicPrefix)] == snapMagicPrefix {
			return snap, fmt.Errorf("snapshot written by codec %q, this build reads %q: %w", magic, snapMagic, ErrSnapshotVersion)
		}
		return snap, fmt.Errorf("bad magic %q: %w", magic, ErrSnapshotCorrupt)
	}
	size := binary.LittleEndian.Uint64(data[len(snapMagic):])
	sum := binary.LittleEndian.Uint64(data[len(snapMagic)+8:])
	payload := data[headerLen:]
	if uint64(len(payload)) != size {
		return snap, fmt.Errorf("payload %d bytes, header says %d (truncated?): %w", len(payload), size, ErrSnapshotCorrupt)
	}
	if checksum(payload) != sum {
		return snap, fmt.Errorf("checksum mismatch: %w", ErrSnapshotCorrupt)
	}
	if err := json.Unmarshal(payload, &snap); err != nil {
		return snap, fmt.Errorf("payload passes checksum but fails to parse: %v: %w", err, ErrSnapshotCorrupt)
	}
	return snap, nil
}

// Save writes a snapshot to path atomically: encode, write to a temp
// file in the same directory, fsync, rename. A crash at any point leaves
// either the old snapshot or the new one — never a torn file.
func Save(path string, snap Snapshot) error {
	data, err := Encode(snap)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: creating snapshot dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("replica: creating temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("replica: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("replica: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("replica: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("replica: installing snapshot: %w", err)
	}
	return nil
}

// Load reads and decodes the snapshot at path. A missing file is the
// caller's os.IsNotExist to check; corruption and version skew come back
// as the typed sentinel errors.
func Load(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	return Decode(data)
}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(payload)
	return h.Sum64()
}
