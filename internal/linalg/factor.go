package linalg

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L with A = L L^T for a
// symmetric positive-definite matrix A. It returns ErrSingular when a pivot
// is not strictly positive.
func Cholesky(a *Dense) (*Dense, error) {
	n, c := a.Dims()
	if n != c {
		return nil, fmt.Errorf("linalg: Cholesky of %dx%d: %w", n, c, ErrDimension)
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			diag += v * v
		}
		d := a.At(j, j) - diag
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: Cholesky pivot %d = %g: %w", j, d, ErrSingular)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A by forward
// then backward substitution.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n, _ := l.Dims()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveCholesky rhs %d for %dx%d: %w", len(b), n, n, ErrDimension)
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves A x = b for symmetric positive-definite A, retrying with
// escalating diagonal damping when A is only semidefinite (as happens for
// barrier Hessians evaluated far from the central path). The damping is
// relative to the largest entry of A so the behaviour is scale-free.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	work := a.Clone()
	var lastErr error
	for _, damp := range []float64{0, 1e-12, 1e-9, 1e-6, 1e-3} {
		if damp > 0 {
			work = a.Clone()
			work.AddDiag(damp * scale)
		}
		l, err := Cholesky(work)
		if err != nil {
			lastErr = err
			continue
		}
		return SolveCholesky(l, b)
	}
	return nil, fmt.Errorf("linalg: SolveSPD failed at all damping levels: %w", lastErr)
}

// LU computes a partially pivoted LU factorization in place on a copy and
// returns the combined factors plus the permutation. Used for general
// (non-symmetric) systems, e.g. Jacobians in tests.
func LU(a *Dense) (*Dense, []int, error) {
	n, c := a.Dims()
	if n != c {
		return nil, nil, fmt.Errorf("linalg: LU of %dx%d: %w", n, c, ErrDimension)
	}
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, mx := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > mx {
				p, mx = i, a
			}
		}
		if mx == 0 || math.IsNaN(mx) {
			return nil, nil, fmt.Errorf("linalg: LU pivot %d: %w", k, ErrSingular)
		}
		if p != k {
			for j := 0; j < n; j++ {
				v := lu.At(k, j)
				lu.Set(k, j, lu.At(p, j))
				lu.Set(p, j, v)
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return lu, perm, nil
}

// SolveLU solves A x = b given LU factors and permutation from LU.
func SolveLU(lu *Dense, perm []int, b []float64) ([]float64, error) {
	n, _ := lu.Dims()
	if len(b) != n || len(perm) != n {
		return nil, fmt.Errorf("linalg: SolveLU shapes: %w", ErrDimension)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[perm[i]]
	}
	// Forward substitution with unit lower factor.
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= lu.At(i, k) * x[k]
		}
		x[i] = s
	}
	// Back substitution with upper factor.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= lu.At(i, k) * x[k]
		}
		x[i] = s / lu.At(i, i)
	}
	return x, nil
}

// SolveGeneral solves A x = b via LU with partial pivoting.
func SolveGeneral(a *Dense, b []float64) ([]float64, error) {
	lu, perm, err := LU(a)
	if err != nil {
		return nil, err
	}
	return SolveLU(lu, perm, b)
}
