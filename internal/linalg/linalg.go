// Package linalg implements the small dense linear-algebra kernel used by
// the generic convex solver: vectors, row-major dense matrices, Cholesky and
// LU factorizations. Problem sizes in this repository are tiny (at most a
// few hundred variables), so the implementations favour clarity and
// numerical safety over blocking or vectorization.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// ErrSingular is returned when a factorization encounters a (numerically)
// singular or non-positive-definite matrix.
var ErrSingular = errors.New("linalg: singular or non-PD matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r x c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: NewDense(%d, %d): non-positive size", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFromRows builds a matrix from row slices, which must be non-empty
// and uniform in length.
func NewDenseFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: NewDenseFromRows: empty input: %w", ErrDimension)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: NewDenseFromRows: ragged row %d: %w", i, ErrDimension)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Dims returns the matrix shape.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero resets all entries to zero, retaining the allocation.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// MulVec computes y = M x. It returns an error when len(x) != cols.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("linalg: MulVec %dx%d by vec %d: %w", m.rows, m.cols, len(x), ErrDimension)
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// Symmetrize replaces M by (M + M^T)/2; it panics on non-square input. The
// barrier solver uses it to scrub the asymmetry that finite-difference
// Hessians accumulate.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// AddDiag adds v to every diagonal entry (Tikhonov / Levenberg damping).
func (m *Dense) AddDiag(v float64) {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	for i := 0; i < n; i++ {
		m.data[i*m.cols+i] += v
	}
}

// MaxAbs returns the largest absolute entry (used to scale damping).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
