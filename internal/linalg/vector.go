package linalg

// Vector helpers. All operate on plain []float64 so callers can interoperate
// with the rest of the codebase without wrapper types.

// Dot returns the inner product of a and b; it panics on length mismatch
// because that is always a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CopyOf returns a fresh copy of x.
func CopyOf(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Sub returns a - b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
