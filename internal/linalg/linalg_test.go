package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, -4)
	m.Add(1, 2, 1)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != -3 {
		t.Errorf("At values wrong: %g %g", m.At(0, 0), m.At(1, 2))
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases the original")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero did not clear")
	}
}

func TestNewDensePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(0, 1) should panic")
		}
	}()
	NewDense(0, 1)
}

func TestNewDenseFromRows(t *testing.T) {
	m, err := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g", m.At(1, 0))
	}
	if _, err := NewDenseFromRows([][]float64{{1}, {2, 3}}); !errors.Is(err, ErrDimension) {
		t.Errorf("ragged rows: want ErrDimension, got %v", err)
	}
	if _, err := NewDenseFromRows(nil); !errors.Is(err, ErrDimension) {
		t.Errorf("nil rows: want ErrDimension, got %v", err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewDenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y, err := m.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("want ErrDimension, got %v", err)
	}
}

func TestSymmetrizeAndDiag(t *testing.T) {
	m, _ := NewDenseFromRows([][]float64{{1, 4}, {0, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 {
		t.Errorf("Symmetrize: %g %g", m.At(0, 1), m.At(1, 0))
	}
	m.AddDiag(3)
	if m.At(0, 0) != 4 || m.At(1, 1) != 4 {
		t.Errorf("AddDiag: %g %g", m.At(0, 0), m.At(1, 1))
	}
	if m.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %g", m.MaxAbs())
	}
}

func randSPD(rng *rand.Rand, n int) *Dense {
	// A = B B^T + n*I is SPD for any B.
	b := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			a.Set(i, j, s)
		}
	}
	a.AddDiag(float64(n))
	return a
}

func TestCholeskySolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(xTrue)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky: %v", err)
		}
		x, err := SolveCholesky(l, b)
		if err != nil {
			t.Fatalf("SolveCholesky: %v", err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
	rect := NewDense(2, 3)
	if _, err := Cholesky(rect); !errors.Is(err, ErrDimension) {
		t.Errorf("want ErrDimension, got %v", err)
	}
}

func TestSolveSPDDampsSemidefinite(t *testing.T) {
	// Rank-1 PSD matrix; plain Cholesky fails, damping succeeds.
	a, _ := NewDenseFromRows([][]float64{{1, 1}, {1, 1}})
	x, err := SolveSPD(a, []float64{2, 2})
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	// Any x with x1+x2 ~ 2 is acceptable for the damped system.
	if !almostEq(x[0]+x[1], 2, 1e-2) {
		t.Errorf("solution %v does not satisfy damped system", x)
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		a.AddDiag(3) // keep well-conditioned
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(xTrue)
		x, err := SolveGeneral(a, b)
		if err != nil {
			t.Fatalf("SolveGeneral: %v", err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-7) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveGeneral(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a, _ := NewDenseFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveGeneral(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 5 || x[1] != 3 {
		t.Errorf("x = %v, want [5 3]", x)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Errorf("Dot = %g", Dot(a, b))
	}
	y := CopyOf(b)
	AXPY(2, a, y)
	if y[0] != 6 || y[2] != 12 {
		t.Errorf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 {
		t.Errorf("Scale = %v", y)
	}
	d := Sub(b, a)
	if d[0] != 3 || d[1] != 3 || d[2] != 3 {
		t.Errorf("Sub = %v", d)
	}
	s := AddVec(a, b)
	if s[0] != 5 || s[2] != 9 {
		t.Errorf("AddVec = %v", s)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot should panic on mismatched lengths")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: Cholesky factor reproduces the matrix.
func TestCholeskyReconstruction(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
