package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndInRange(t *testing.T) {
	a := newRing(5, 64)
	b := newRing(5, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("device-%d", i)
		ca, cb := a.cell(key), b.cell(key)
		if ca != cb {
			t.Fatalf("key %q routed to %d and %d on identical rings", key, ca, cb)
		}
		if ca < 0 || ca >= 5 {
			t.Fatalf("key %q routed to cell %d, want [0,5)", key, ca)
		}
	}
}

func TestRingCoversAllCells(t *testing.T) {
	r := newRing(8, 64)
	seen := make(map[int]int)
	for i := 0; i < 4096; i++ {
		seen[r.cell(fmt.Sprintf("device-%d", i))]++
	}
	for c := 0; c < 8; c++ {
		if seen[c] == 0 {
			t.Errorf("cell %d received no keys out of 4096", c)
		}
	}
}

// TestRingStableUnderGrowth is the property consistent hashing buys: going
// from N to N+1 cells must not remap the keys that stay — a key either
// keeps its cell or moves to the new one.
func TestRingStableUnderGrowth(t *testing.T) {
	small := newRing(4, 64)
	big := newRing(5, 64)
	var moved, movedElsewhere int
	const keys = 4096
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("device-%d", i)
		before, after := small.cell(key), big.cell(key)
		if before != after {
			moved++
			if after != 4 {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere > 0 {
		t.Errorf("%d keys moved between pre-existing cells on growth (consistent hashing should only move keys to the new cell)", movedElsewhere)
	}
	// Expect ~1/5 of keys to move; allow generous slack for hash variance.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("%d/%d keys moved to the new cell, want roughly %d", moved, keys, keys/5)
	}
}
