package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndInRange(t *testing.T) {
	a := newRing(5, 64)
	b := newRing(5, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("device-%d", i)
		ca, cb := a.cell(key), b.cell(key)
		if ca != cb {
			t.Fatalf("key %q routed to %d and %d on identical rings", key, ca, cb)
		}
		if ca < 0 || ca >= 5 {
			t.Fatalf("key %q routed to cell %d, want [0,5)", key, ca)
		}
	}
}

func TestRingCoversAllCells(t *testing.T) {
	r := newRing(8, 64)
	seen := make(map[int]int)
	for i := 0; i < 4096; i++ {
		seen[r.cell(fmt.Sprintf("device-%d", i))]++
	}
	for c := 0; c < 8; c++ {
		if seen[c] == 0 {
			t.Errorf("cell %d received no keys out of 4096", c)
		}
	}
}

// TestRingRemapInvariants is the property-style membership contract over
// several cluster sizes, for both directions of change:
//
//   - adding one cell to N remaps ~1/(N+1) of a large key sample, and
//     every moved key moves TO the new cell (a key whose owner did not
//     change never remaps);
//   - removing one of N cells remaps ~1/N of the sample, and every moved
//     key moves FROM the removed cell (survivor-owned keys stay put).
func TestRingRemapInvariants(t *testing.T) {
	const keys = 8192
	key := func(i int) string { return fmt.Sprintf("device-%d", i) }
	// tolerated relative deviation from the ideal fraction; virtual-node
	// hashing is noisy at small N, so the band is generous but still tight
	// enough to catch a mod-N-style full reshuffle (which moves ~(N-1)/N).
	within := func(moved, total int, ideal float64) bool {
		frac := float64(moved) / float64(total)
		return frac > ideal/2.5 && frac < ideal*2.5
	}

	for _, n := range []int{2, 3, 4, 6, 8} {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		base := newRingFor(ids, 64)

		// Growth: splice cell n in.
		grown := newRingFor(append(append([]int(nil), ids...), n), 64)
		moved := 0
		for i := 0; i < keys; i++ {
			before, after := base.cell(key(i)), grown.cell(key(i))
			if before == after {
				continue
			}
			moved++
			if after != n {
				t.Fatalf("N=%d growth: key %q moved %d -> %d, not to the new cell %d", n, key(i), before, after, n)
			}
		}
		if ideal := 1 / float64(n+1); !within(moved, keys, ideal) {
			t.Errorf("N=%d growth moved %d/%d keys, want ~%.0f", n, moved, keys, ideal*keys)
		}

		// Shrink: splice each cell out in turn.
		for victim := 0; victim < n && n > 1; victim++ {
			rest := make([]int, 0, n-1)
			for _, c := range ids {
				if c != victim {
					rest = append(rest, c)
				}
			}
			shrunk := newRingFor(rest, 64)
			moved := 0
			for i := 0; i < keys; i++ {
				before, after := base.cell(key(i)), shrunk.cell(key(i))
				if before == after {
					continue
				}
				moved++
				if before != victim {
					t.Fatalf("N=%d remove %d: key %q moved %d -> %d although its owner survived", n, victim, key(i), before, after)
				}
			}
			if ideal := 1 / float64(n); !within(moved, keys, ideal) {
				t.Errorf("N=%d removing cell %d moved %d/%d keys, want ~%.0f", n, victim, moved, keys, ideal*keys)
			}
		}
	}
}

// TestRingRoundTripIdentity removes a cell and splices the same ID back:
// the ring must be exactly the starting ring, so a cell rejoining after
// maintenance reclaims precisely its old keys.
func TestRingRoundTripIdentity(t *testing.T) {
	base := newRingFor([]int{0, 1, 2, 3, 4}, 64)
	rejoined := newRingFor([]int{0, 1, 2, 3, 4}, 64)
	for i := 0; i < 2048; i++ {
		k := fmt.Sprintf("device-%d", i)
		if base.cell(k) != rejoined.cell(k) {
			t.Fatalf("key %q owner changed across an identity round trip", k)
		}
	}
	// Sparse ID sets (post-removal membership) behave the same way.
	a := newRingFor([]int{0, 2, 7}, 64)
	b := newRingFor([]int{0, 2, 7}, 64)
	for i := 0; i < 2048; i++ {
		k := fmt.Sprintf("device-%d", i)
		if a.cell(k) != b.cell(k) {
			t.Fatalf("sparse ring not deterministic for %q", k)
		}
	}
}

// TestRingStableUnderGrowth is the property consistent hashing buys: going
// from N to N+1 cells must not remap the keys that stay — a key either
// keeps its cell or moves to the new one.
func TestRingStableUnderGrowth(t *testing.T) {
	small := newRing(4, 64)
	big := newRing(5, 64)
	var moved, movedElsewhere int
	const keys = 4096
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("device-%d", i)
		before, after := small.cell(key), big.cell(key)
		if before != after {
			moved++
			if after != 4 {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere > 0 {
		t.Errorf("%d keys moved between pre-existing cells on growth (consistent hashing should only move keys to the new cell)", movedElsewhere)
	}
	// Expect ~1/5 of keys to move; allow generous slack for hash variance.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("%d/%d keys moved to the new cell, want roughly %d", moved, keys, keys/5)
	}
}
