package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func traceCollector() *obs.Collector {
	return obs.NewCollector(obs.Config{SampleEvery: 1, SlowThreshold: -1})
}

func spansByPhase(spans []obs.Span, phase string) []obs.Span {
	var out []obs.Span
	for _, s := range spans {
		if s.Phase == phase {
			out = append(out, s)
		}
	}
	return out
}

// TestSolveTraceSpansRoute checks that a routed solve records its serving
// cell on the request's trace and that the serving layers below stamped
// the same trace (one ID end to end).
func TestSolveTraceSpansRoute(t *testing.T) {
	r := testRouter(t, 3)
	s := testSystem(t, 6, 11)
	col := traceCollector()
	ctx, tr := col.StartTrace(context.Background())
	resp, cell, err := r.Solve(ctx, CellAuto, "ue-route-trace", serve.Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if resp.TraceID != tr.ID() {
		t.Fatalf("response trace ID %q, want %q", resp.TraceID, tr.ID())
	}
	routes := spansByPhase(tr.Spans(), obs.PhaseRoute)
	if len(routes) != 1 || routes[0].Cell != cell {
		t.Fatalf("route spans %+v, want one on cell %d", routes, cell)
	}
	for _, phase := range []string{obs.PhaseFingerprint, obs.PhaseCacheLookup, obs.PhaseQueueWait, obs.PhaseSolve} {
		if len(spansByPhase(tr.Spans(), phase)) == 0 {
			t.Fatalf("phase %q missing from routed solve trace: %+v", phase, tr.Spans())
		}
	}
}

// TestHandoffTraceContinuity moves a device's cached state across cells
// under one trace and checks both sides landed as spans of that single
// trace: extract scoped to the source cell, inject to the destination.
func TestHandoffTraceContinuity(t *testing.T) {
	r := testRouter(t, 3)
	s := testSystem(t, 6, 12)
	const dev = "ue-handoff-trace"
	if _, _, err := r.Solve(context.Background(), 0, dev, serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}

	col := traceCollector()
	ctx, tr := col.StartTrace(context.Background())
	rep, err := r.Handoff(ctx, dev, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	spans := tr.Spans()
	extracts := spansByPhase(spans, obs.PhaseHandoffExtract)
	injects := spansByPhase(spans, obs.PhaseHandoffInject)
	if len(extracts) != 1 || len(injects) != 1 {
		t.Fatalf("want one extract and one inject span, got %+v", spans)
	}
	if extracts[0].Cell != 0 || injects[0].Cell != 2 {
		t.Fatalf("extract cell %d / inject cell %d, want 0 / 2", extracts[0].Cell, injects[0].Cell)
	}
	if extracts[0].Value != int64(rep.Instances) {
		t.Fatalf("extract span value %d, report instances %d", extracts[0].Value, rep.Instances)
	}
	recent := col.Recent()
	if len(recent) != 1 || recent[0].TraceID != tr.ID() {
		t.Fatalf("handoff trace not retained: %+v", recent)
	}
}

// TestMassHandoffTraceContinuity batches moves out of two source cells and
// checks one trace carries the plan plus per-cell extract/inject spans from
// every cell involved — nothing drops when the migration spans cells.
func TestMassHandoffTraceContinuity(t *testing.T) {
	r := testRouter(t, 3)
	var moves []Move
	for d := 0; d < 6; d++ {
		dev := "ue-mass-" + strconv.Itoa(d)
		src := d % 2 // pin half on cell 0, half on cell 1
		if _, _, err := r.Solve(context.Background(), src, dev, serve.Request{System: testSystem(t, 5, int64(300+d)), Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
		moves = append(moves, Move{DeviceID: dev, To: 2})
	}

	col := traceCollector()
	ctx, tr := col.StartTrace(context.Background())
	rep, err := r.MassHandoff(ctx, moves, true)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	spans := tr.Spans()
	if plans := spansByPhase(spans, obs.PhaseMassPlan); len(plans) != 1 || plans[0].Value != int64(rep.Instances) {
		t.Fatalf("mass_plan spans %+v, want one with value %d", plans, rep.Instances)
	}
	srcCells := map[int]bool{}
	for _, sp := range spansByPhase(spans, obs.PhaseMassExtract) {
		srcCells[sp.Cell] = true
	}
	if !srcCells[0] || !srcCells[1] {
		t.Fatalf("mass_extract spans missing a source cell: %+v", spans)
	}
	injects := spansByPhase(spans, obs.PhaseMassInject)
	if len(injects) != 1 || injects[0].Cell != 2 {
		t.Fatalf("mass_inject spans %+v, want one on cell 2", injects)
	}
}

// TestHTTPTraceAdoptionAcrossHop stacks two obs-wrapped HTTP services —
// an edge that forwards to a cluster — and checks one trace ID flows from
// the client's X-Trace-Id header through both hops: the edge adopts the
// wire ID instead of minting its own, forwards it, and the cluster side
// adopts it again, so both collectors retain the SAME trace.
func TestHTTPTraceAdoptionAcrossHop(t *testing.T) {
	r := testRouter(t, 2)
	colCell := traceCollector()
	cellSrv := httptest.NewServer(obs.Middleware(colCell, r.Handler()))
	defer cellSrv.Close()

	colEdge := traceCollector()
	edgeSrv := httptest.NewServer(obs.Middleware(colEdge, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Forward router-style, carrying this hop's trace on the wire.
		tr := obs.FromContext(req.Context())
		fwd, err := http.NewRequest(req.Method, cellSrv.URL+req.URL.Path, req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fwd.Header.Set("Content-Type", req.Header.Get("Content-Type"))
		fwd.Header.Set(obs.TraceHeader, tr.ID())
		resp, err := http.DefaultClient.Do(fwd)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	})))
	defer edgeSrv.Close()

	body, err := json.Marshal(solveBody(testSystem(t, 5, 21), "ue-wire-trace"))
	if err != nil {
		t.Fatal(err)
	}
	const wireID = "wire-trace-0123456789abcdef"
	req, err := http.NewRequest(http.MethodPost, edgeSrv.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, wireID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("solve through both hops: status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != wireID {
		t.Fatalf("edge response trace header %q, want the client's %q", got, wireID)
	}
	for name, col := range map[string]*obs.Collector{"edge": colEdge, "cell": colCell} {
		recent := col.Recent()
		if len(recent) != 1 || recent[0].TraceID != wireID {
			t.Fatalf("%s collector retained %+v, want one trace with ID %q", name, recent, wireID)
		}
	}

	// A malformed wire ID must not be adopted: the middleware mints a
	// fresh one instead of letting arbitrary bytes into logs and dumps.
	req2, err := http.NewRequest(http.MethodPost, edgeSrv.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(obs.TraceHeader, "not a valid id!")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	minted := resp2.Header.Get(obs.TraceHeader)
	if minted == "" || minted == "not a valid id!" {
		t.Fatalf("malformed wire ID handling: response header %q, want a freshly minted ID", minted)
	}
}
