package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// TestSolveBatchRoutesByDevice fans a batch across devices pinned to
// different cells and checks each item lands in its device's cell, in
// request order, with the router's history updated for later handoffs.
func TestSolveBatchRoutesByDevice(t *testing.T) {
	r := testRouter(t, 3)
	defer r.Close()
	s := testSystem(t, 6, 1)

	// Pin two devices to known cells through explicit solves.
	if _, _, err := r.Solve(context.Background(), 0, "dev-a", serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Solve(context.Background(), 2, "dev-b", serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}

	reqs := []serve.Request{
		{System: s, Weights: balanced()},
		{System: s, Weights: balanced()},
		{System: s, Weights: balanced()},
	}
	items, cells := r.SolveBatch(context.Background(), reqs, []string{"dev-a", "dev-b", "dev-c"}, serve.PriorityBulk)
	if len(items) != 3 || len(cells) != 3 {
		t.Fatalf("got %d items / %d cells, want 3 / 3", len(items), len(cells))
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
	}
	if cells[0] != 0 || cells[1] != 2 {
		t.Errorf("pinned devices served by cells (%d, %d), want (0, 2)", cells[0], cells[1])
	}
	if want := r.Route("dev-c"); cells[2] != want {
		t.Errorf("unpinned device served by cell %d, want hash cell %d", cells[2], want)
	}
	// The pinned devices' items replayed instances their cells already
	// cached (planted by the explicit solves).
	if items[0].Response.Source != serve.SourceCache || items[1].Response.Source != serve.SourceCache {
		t.Errorf("pinned replays = (%q, %q), want cache hits", items[0].Response.Source, items[1].Response.Source)
	}
}

// TestClusterBatchHTTP exercises the routed POST /v1/solve-batch end to
// end, including the per-item serving cell and the stats rollup.
func TestClusterBatchHTTP(t *testing.T) {
	r := testRouter(t, 2)
	defer r.Close()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	s := testSystem(t, 6, 1)

	item := serve.SolveRequestJSON{System: serve.SystemToJSON(s), DeviceID: "ue-7"}
	item.Weights.W1, item.Weights.W2 = 0.5, 0.5
	body, _ := json.Marshal(serve.SolveBatchRequestJSON{Requests: []serve.SolveRequestJSON{item, item}})
	resp, err := http.Post(ts.URL+"/v1/solve-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	// Every OK item must carry an explicit "cell" key: cell 0 is a real
	// index, so it must not be omitted from the wire form.
	var generic struct {
		Results []map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatal(err)
	}
	for i, m := range generic.Results {
		if _, ok := m["cell"]; !ok {
			t.Errorf("item %d has no cell key: %s", i, raw)
		}
	}
	var out SolveBatchResponseJSON
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(out.Results))
	}
	want := r.Route("ue-7")
	for i, it := range out.Results {
		if !it.OK {
			t.Fatalf("item %d: %s", i, it.Error)
		}
		if it.Cell != want {
			t.Errorf("item %d served by cell %d, want %d", i, it.Cell, want)
		}
	}

	st := r.Stats()
	if st.Aggregate.BatchRequests != 1 || st.Aggregate.BatchItems != 2 {
		t.Errorf("aggregate batch counters = (%d, %d), want (1, 2)",
			st.Aggregate.BatchRequests, st.Aggregate.BatchItems)
	}
	if st.Aggregate.TrackedBuckets == 0 {
		t.Error("aggregate tracked buckets = 0, want > 0")
	}
}
