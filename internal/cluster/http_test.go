package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fl"
	"repro/internal/serve"
)

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func solveBody(s *fl.System, deviceID string) serve.SolveRequestJSON {
	req := serve.SolveRequestJSON{System: serve.SystemToJSON(s), DeviceID: deviceID}
	req.Weights.W1, req.Weights.W2 = 0.5, 0.5
	return req
}

func TestHTTPExplicitCellAndHandoff(t *testing.T) {
	r := testRouter(t, 3)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	s := testSystem(t, 6, 11)
	req := solveBody(s, "ue-7")

	// Solve explicitly in cell 1.
	resp, body := postJSON(t, ts.URL+"/v1/cells/1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit solve: status %d: %s", resp.StatusCode, body)
	}
	var out SolveResponseJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cell != 1 || out.Source != "cold" {
		t.Fatalf("explicit solve: cell %d source %q, want 1/cold", out.Cell, out.Source)
	}

	// Handoff 1 -> 2 over HTTP.
	resp, body = postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{DeviceID: "ue-7", FromCell: 1, ToCell: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: status %d: %s", resp.StatusCode, body)
	}
	var rep HandoffReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.MigratedResults != 1 {
		t.Fatalf("handoff migrated %d results, want 1: %+v", rep.MigratedResults, rep)
	}

	// Routed replay: destination cell 2 serves from its (migrated) cache.
	resp, body = postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed replay: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cell != 2 || out.Source != "cache" {
		t.Fatalf("post-handoff replay: cell %d source %q, want 2/cache", out.Cell, out.Source)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	r := testRouter(t, 2)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	for name, do := range map[string]func() (*http.Response, []byte){
		"bad cell id": func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/cells/nope/solve", solveBody(testSystem(t, 4, 1), ""))
		},
		"handoff no device": func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{FromCell: 0, ToCell: 1})
		},
	} {
		resp, body := do()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, resp.StatusCode, body)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed json: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPUnknownCellTyped404 pins the uniform unknown-cell contract:
// every endpoint that takes a cell ID answers a well-formed ID that is not
// a member with 404 and the machine-readable {"error":"unknown_cell",
// "cell":N} body — the same shape everywhere, so clients branch on one
// code instead of parsing per-endpoint prose.
func TestHTTPUnknownCellTyped404(t *testing.T) {
	r := testRouter(t, 2)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		do   func() (*http.Response, []byte)
		cell int
	}{
		"explicit solve, out of range": {func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/cells/9/solve", solveBody(testSystem(t, 4, 1), ""))
		}, 9},
		"explicit solve, negative must not alias CellAuto": {func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/cells/-1/solve", solveBody(testSystem(t, 4, 1), ""))
		}, -1},
		"handoff, unknown destination": {func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{DeviceID: "d", FromCell: 0, ToCell: 7})
		}, 7},
		"handoff, unknown source": {func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{DeviceID: "d", FromCell: -3, ToCell: 1})
		}, -3},
	} {
		resp, body := tc.do()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404 (%s)", name, resp.StatusCode, body)
			continue
		}
		var e ErrorJSON
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: undecodable error body %q: %v", name, body, err)
			continue
		}
		if e.Error != "unknown_cell" || e.Cell == nil || *e.Cell != tc.cell {
			t.Errorf("%s: body %s, want {\"error\":\"unknown_cell\",\"cell\":%d}", name, body, tc.cell)
		}
	}
}

// TestHTTPIntegrationLoadWithMigration is the acceptance scenario: an
// N-cell router under a migrating replay load. Every handoff is
// immediately followed by a replay and a drifted solve in the destination
// cell; the replay must be a cache hit and the drifted solve a warm start
// (never cold), and /v1/stats must report per-cell counters consistent
// with the aggregate rollup.
func TestHTTPIntegrationLoadWithMigration(t *testing.T) {
	const cells = 3
	r := testRouter(t, cells)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(13))
	type ue struct {
		base *fl.System
		body serve.SolveRequestJSON
		cell int
	}
	ues := make([]*ue, 4)
	for i := range ues {
		base := testSystem(t, 5, int64(20+i))
		u := &ue{base: base, body: solveBody(base, fmt.Sprintf("ue-%d", i))}
		// First contact: routed solve, remember the serving cell.
		resp, body := postJSON(t, ts.URL+"/v1/solve", u.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ue %d first solve: status %d: %s", i, resp.StatusCode, body)
		}
		var out SolveResponseJSON
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		u.cell = out.Cell
		ues[i] = u
	}

	var handoffs, replays, drifts int
	for round := 0; round < 6; round++ {
		u := ues[round%len(ues)]
		to := (u.cell + 1 + rng.Intn(cells-1)) % cells
		if to == u.cell {
			to = (to + 1) % cells
		}
		resp, body := postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{DeviceID: u.body.DeviceID, FromCell: u.cell, ToCell: to})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("handoff round %d: status %d: %s", round, resp.StatusCode, body)
		}
		u.cell = to
		handoffs++

		// Immediately after the handoff, the destination must serve the
		// exact replay from cache...
		var out SolveResponseJSON
		resp, body = postJSON(t, ts.URL+"/v1/solve", u.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replay round %d: status %d: %s", round, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Cell != to || out.Source != "cache" {
			t.Fatalf("round %d replay: cell %d source %q, want %d/cache", round, out.Cell, out.Source, to)
		}
		replays++

		// ...and warm-start the drifted follow-up (fresh gains, same
		// topology) — the migration carried the warm index too.
		drifted := *u.base
		drifted.Devices = append([]fl.Device(nil), u.base.Devices...)
		for j := range drifted.Devices {
			drifted.Devices[j].Gain *= math.Exp(0.25 * rng.NormFloat64())
		}
		driftReq := solveBody(&drifted, u.body.DeviceID)
		resp, body = postJSON(t, ts.URL+"/v1/solve", driftReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drift round %d: status %d: %s", round, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Cell != to {
			t.Fatalf("round %d drift: served by cell %d, want pinned %d", round, out.Cell, to)
		}
		if out.Source == "cold" {
			t.Fatalf("round %d drift: cold solve in destination, want warm (or cache)", round)
		}
		// The next replay should reproduce this instance.
		u.body = driftReq
		u.base = &drifted
		drifts++
	}

	// Stats consistency: per-cell counters sum to the aggregate, and the
	// router counted every handoff.
	resp, body := postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{DeviceID: "ue-0", FromCell: ues[0].cell, ToCell: ues[0].cell})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no-op handoff: status %d: %s", resp.StatusCode, body)
	}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != cells {
		t.Fatalf("%d cell snapshots, want %d", len(st.Cells), cells)
	}
	var req64, hits, warm, cold int64
	for _, c := range st.Cells {
		req64 += c.Requests
		hits += c.Hits
		warm += c.WarmStarts
		cold += c.ColdSolves
	}
	a := st.Aggregate
	if a.Requests != req64 || a.Hits != hits || a.WarmStarts != warm || a.ColdSolves != cold {
		t.Fatalf("aggregate/per-cell mismatch: agg %+v, sums req %d hits %d warm %d cold %d", a, req64, hits, warm, cold)
	}
	wantRequests := int64(len(ues) + replays + drifts)
	if a.Requests != wantRequests {
		t.Fatalf("aggregate requests %d, want %d", a.Requests, wantRequests)
	}
	if a.Handoffs != int64(handoffs+1) {
		t.Fatalf("aggregate handoffs %d, want %d", a.Handoffs, handoffs+1)
	}
	if a.Hits < int64(replays) {
		t.Fatalf("aggregate hits %d < %d replays that must all have hit", a.Hits, replays)
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	r := testRouter(t, 2)
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	s := testSystem(t, 5, 30)
	if resp, body := postJSON(t, ts.URL+"/v1/cells/0/solve", solveBody(s, "m-dev")); resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/handoff", HandoffRequestJSON{DeviceID: "m-dev", FromCell: 0, ToCell: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("handoff: status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(text)
	for _, want := range []string{
		`flserve_requests_total{cell="0"} 1`,
		`flserve_requests_total{cell="1"} 0`,
		`flserve_cache_entries{cell="1"} 1`, // migrated by the handoff
		`flserve_cache_entries{cell="0"} 0`, // and gone from the source
		"flcluster_handoffs_total 1",
		"flcluster_migrated_results_total 1",
		`flcluster_routed_total{via="explicit"} 1`,
		`flcluster_solve_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Exactly one TYPE header per metric name, however many cells emit it.
	if n := strings.Count(body, "# TYPE flserve_requests_total "); n != 1 {
		t.Errorf("%d TYPE headers for flserve_requests_total, want 1", n)
	}
}
