package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/serve"
)

// massDev is one migrating device of the equivalence test.
type massDev struct {
	id  string
	sys *fl.System
}

// TestMassHandoffMatchesPerDeviceHandoff migrates the same device
// population once through the batched path and once through a sequential
// per-device Handoff loop (on a twin router) and checks both leave the
// cluster in the same state: destination cache hits, drifted warm starts,
// sources emptied.
func TestMassHandoffMatchesPerDeviceHandoff(t *testing.T) {
	const devices = 12
	batched := testRouter(t, 3)
	loop := testRouter(t, 3)

	states := make([]*massDev, devices)
	var moves []Move
	for d := range states {
		st := &massDev{id: devName(d), sys: testSystem(t, 5, int64(700+d))}
		states[d] = st
		for _, r := range []*Router{batched, loop} {
			if _, _, err := r.Solve(context.Background(), d%3, st.id, serve.Request{System: st.sys, Weights: balanced()}); err != nil {
				t.Fatal(err)
			}
		}
		moves = append(moves, Move{DeviceID: st.id, To: (d%3 + 1) % 3})
	}

	rep, err := batched.MassHandoff(context.Background(), moves, true)
	if err != nil {
		t.Fatal(err)
	}
	for d, mv := range moves {
		if _, err := loop.Handoff(context.Background(), mv.DeviceID, d%3, mv.To); err != nil {
			t.Fatal(err)
		}
	}

	if rep.Moves != devices || rep.Devices != devices || rep.Instances != devices {
		t.Fatalf("mass report %+v, want %d moves/devices/instances", rep, devices)
	}
	if rep.MigratedResults != devices || rep.MigratedWarm != devices {
		t.Fatalf("mass report migrated %d results / %d warm, want %d each", rep.MigratedResults, rep.MigratedWarm, devices)
	}

	// Each cell lost its 4 resident entries and received the 4 incoming
	// ones — migration moves cache entries, it never duplicates them.
	for c := 0; c < 3; c++ {
		if got := batched.Cell(c).Stats().CacheEntries; got != devices/3 {
			t.Fatalf("cell %d holds %d cache entries after mass handoff, want %d", c, got, devices/3)
		}
	}

	rng := rand.New(rand.NewSource(42))
	for d, st := range states {
		to := (d%3 + 1) % 3
		for name, r := range map[string]*Router{"batched": batched, "loop": loop} {
			if got := r.Route(st.id); got != to {
				t.Fatalf("%s: device %s routes to %d, want pinned %d", name, st.id, got, to)
			}
			// Exact replay: cache hit at the destination.
			resp, cell, err := r.Solve(context.Background(), CellAuto, st.id, serve.Request{System: st.sys, Weights: balanced()})
			if err != nil {
				t.Fatal(err)
			}
			if cell != to || resp.Source != serve.SourceCache {
				t.Fatalf("%s: device %s replay cell %d source %q, want %d/cache", name, st.id, cell, resp.Source, to)
			}
		}
		// Drifted solve warm-starts off the migrated state (batched router).
		drifted := driftGains(st.sys, 0.25, rng)
		resp, _, err := batched.Solve(context.Background(), CellAuto, st.id, serve.Request{System: drifted, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != serve.SourceWarm {
			t.Fatalf("device %s drifted post-mass-handoff solve source %q, want warm", st.id, resp.Source)
		}
	}

}

// TestMassHandoffPinSemantics checks the two routing modes: pin=true
// captures the devices at the destination, pin=false returns them to hash
// routing.
func TestMassHandoffPinSemantics(t *testing.T) {
	r := testRouter(t, 2)
	s := testSystem(t, 5, 800)
	const dev = "ue-pin-mode"
	if _, _, err := r.Solve(context.Background(), CellAuto, dev, serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	owner := r.Route(dev)
	other := 1 - owner

	if _, err := r.MassHandoff(context.Background(), []Move{{DeviceID: dev, To: other}}, true); err != nil {
		t.Fatal(err)
	}
	if got := r.Route(dev); got != other {
		t.Fatalf("pin=true: route %d, want %d", got, other)
	}

	// pin=false back to the ring owner: the pin clears, hashing rules again.
	if _, err := r.MassHandoff(context.Background(), []Move{{DeviceID: dev, To: owner}}, false); err != nil {
		t.Fatal(err)
	}
	if got := r.Route(dev); got != owner {
		t.Fatalf("pin=false: route %d, want ring owner %d", got, owner)
	}
	if st := r.Stats(); st.Aggregate.PinnedDevices != 0 {
		t.Fatalf("%d pinned devices after pin=false, want 0", st.Aggregate.PinnedDevices)
	}
}

// TestMassHandoffValidation: unknown destinations and empty device IDs
// fail the whole batch before anything moves.
func TestMassHandoffValidation(t *testing.T) {
	r := testRouter(t, 2)
	s := testSystem(t, 5, 810)
	if _, _, err := r.Solve(context.Background(), 0, "ue-keep", serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	var uc UnknownCellError
	if _, err := r.MassHandoff(context.Background(), []Move{{DeviceID: "ue-keep", To: 1}, {DeviceID: "x", To: 9}}, true); !errors.As(err, &uc) || uc.Cell != 9 {
		t.Fatalf("err = %v, want UnknownCellError{9}", err)
	}
	if _, err := r.MassHandoff(context.Background(), []Move{{DeviceID: "", To: 1}}, true); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("err = %v, want ErrNoDevice", err)
	}
	// Nothing moved: the replay still hits in cell 0.
	resp, cell, err := r.Solve(context.Background(), CellAuto, "ue-keep", serve.Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if cell != 0 || resp.Source != serve.SourceCache {
		t.Fatalf("after failed batch: cell %d source %q, want 0/cache", cell, resp.Source)
	}
}

// TestMassHandoffRecordsAtDestinationUntouched: records already living on
// the destination are skipped (no instances counted, nothing re-injected).
func TestMassHandoffRecordsAtDestinationUntouched(t *testing.T) {
	r := testRouter(t, 2)
	s := testSystem(t, 5, 820)
	const dev = "ue-already-home"
	if _, _, err := r.Solve(context.Background(), 1, dev, serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	rep, err := r.MassHandoff(context.Background(), []Move{{DeviceID: dev, To: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 0 || rep.Devices != 0 || rep.MigratedResults != 0 {
		t.Fatalf("report %+v, want all-zero for an already-home device", rep)
	}
}

func devName(d int) string { return "ue-mass-" + string(rune('a'+d)) }
