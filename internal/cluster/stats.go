package cluster

import (
	"io"
	"strconv"
	"time"

	"repro/internal/serve"
)

// CellStats is one cell's snapshot, tagged with its index.
type CellStats struct {
	Cell int `json:"cell"`
	serve.Snapshot
}

// Aggregate is the cluster-wide rollup: every counter and occupancy gauge
// summed over cells, latency quantiles recomputed from the merged recent
// windows (quantiles do not sum), plus the router's own counters.
type Aggregate struct {
	serve.Snapshot
	// Generation is the current ring generation (bumped once per
	// membership change); CellsAdded/CellsRemoved count the changes.
	Generation   uint64 `json:"ring_generation"`
	CellsAdded   int64  `json:"cells_added"`
	CellsRemoved int64  `json:"cells_removed"`
	// Handoffs counts completed Handoff calls (no-ops included);
	// MassHandoffs counts batched MassHandoff calls.
	Handoffs     int64 `json:"handoffs"`
	MassHandoffs int64 `json:"mass_handoffs"`
	// Rerouted counts requests that re-resolved onto a post-change owner
	// after racing a membership change (the epoch check firing).
	Rerouted int64 `json:"rerouted"`
	// MigratedResults counts solution-cache entries moved across cells.
	MigratedResults int64 `json:"migrated_results"`
	// MigratedWarm counts warm-start allocations moved across cells.
	MigratedWarm int64 `json:"migrated_warm_starts"`
	// PinnedDevices is how many devices are currently pinned to a cell.
	PinnedDevices int `json:"pinned_devices"`
	// TrackedDevices is how many devices the router holds state for.
	TrackedDevices int `json:"tracked_devices"`
	// RoutedExplicit/RoutedPinned/RoutedHashed break down how requests
	// chose their cell.
	RoutedExplicit int64 `json:"routed_explicit"`
	RoutedPinned   int64 `json:"routed_pinned"`
	RoutedHashed   int64 `json:"routed_hashed"`
}

// Stats is the cluster snapshot: the rollup plus every cell.
type Stats struct {
	Aggregate Aggregate   `json:"aggregate"`
	Cells     []CellStats `json:"cells"`
}

// Stats snapshots every live cell and rolls the counters up. Cells are
// reported by ID (IDs are stable across membership changes and never
// reused).
func (r *Router) Stats() Stats {
	mem := r.mem.Load()
	out := Stats{Cells: make([]CellStats, len(mem.ids))}
	agg := &out.Aggregate
	var lat, hitLat, qwLat []time.Duration
	for i, id := range mem.ids {
		c := mem.cells[id]
		snap := c.Stats()
		out.Cells[i] = CellStats{Cell: id, Snapshot: snap}
		agg.Requests += snap.Requests
		agg.Hits += snap.Hits
		agg.Misses += snap.Misses
		agg.WarmStarts += snap.WarmStarts
		agg.ColdSolves += snap.ColdSolves
		agg.Deduped += snap.Deduped
		agg.Rejected += snap.Rejected
		agg.Errors += snap.Errors
		agg.CacheEntries += snap.CacheEntries
		agg.WarmEntries += snap.WarmEntries
		agg.QueueLen += snap.QueueLen
		agg.BulkQueueLen += snap.BulkQueueLen
		agg.BatchRequests += snap.BatchRequests
		agg.BatchItems += snap.BatchItems
		agg.TrackedBuckets += snap.TrackedBuckets
		agg.Convergence.Merge(snap.Convergence)
		lat = append(lat, c.SolveLatencies()...)
		hitLat = append(hitLat, c.CacheHitLatencies()...)
		qwLat = append(qwLat, c.QueueWaitLatencies()...)
	}
	agg.SolveP50, agg.SolveP99 = serve.LatencyQuantiles(lat)
	agg.CacheHitP50, agg.CacheHitP99 = serve.LatencyQuantiles(hitLat)
	agg.QueueWaitP50, agg.QueueWaitP99 = serve.LatencyQuantiles(qwLat)
	agg.Generation = mem.gen
	agg.CellsAdded = r.cellsAdded.Load()
	agg.CellsRemoved = r.cellsRemoved.Load()
	agg.Handoffs = r.handoffs.Load()
	agg.MassHandoffs = r.massHandoffs.Load()
	agg.Rerouted = r.rerouted.Load()
	agg.MigratedResults = r.migratedResults.Load()
	agg.MigratedWarm = r.migratedWarm.Load()
	agg.RoutedExplicit = r.routedExplicit.Load()
	agg.RoutedPinned = r.routedPinned.Load()
	agg.RoutedHashed = r.routedHashed.Load()
	r.mu.Lock()
	agg.TrackedDevices = len(r.devices)
	for _, st := range r.devices {
		if st.pinned {
			agg.PinnedDevices++
		}
	}
	r.mu.Unlock()
	return out
}

// WritePrometheus emits the cluster in Prometheus text exposition: each
// cell's series under the "flserve" prefix with a cell label, and the
// router's own counters plus the merged latency quantiles under
// "flcluster". Per-cell series are left unaggregated (summing is the
// monitoring system's job; pre-summed duplicates would double-count).
func (s Stats) WritePrometheus(w io.Writer) error {
	pw := serve.NewPromWriter(w)
	for _, c := range s.Cells {
		c.Snapshot.WritePrometheus(pw, "flserve", `cell="`+strconv.Itoa(c.Cell)+`"`)
	}
	a := s.Aggregate
	pw.Gauge("flcluster_ring_generation", "Current consistent-hash ring generation.", "", float64(a.Generation))
	pw.Gauge("flcluster_cells", "Live cells in the cluster.", "", float64(len(s.Cells)))
	pw.Counter("flcluster_cells_added_total", "Cells added at runtime.", "", float64(a.CellsAdded))
	pw.Counter("flcluster_cells_removed_total", "Cells removed at runtime.", "", float64(a.CellsRemoved))
	pw.Counter("flcluster_handoffs_total", "Cross-cell device handoffs.", "", float64(a.Handoffs))
	pw.Counter("flcluster_mass_handoffs_total", "Batched mass migrations (drains, rebalances, mobility events).", "", float64(a.MassHandoffs))
	pw.Counter("flcluster_rerouted_total", "Requests re-resolved after racing a membership change.", "", float64(a.Rerouted))
	pw.Counter("flcluster_migrated_results_total", "Solution-cache entries moved across cells.", "", float64(a.MigratedResults))
	pw.Counter("flcluster_migrated_warm_starts_total", "Warm-start allocations moved across cells.", "", float64(a.MigratedWarm))
	pw.Counter("flcluster_routed_total", "Requests by routing decision.", `via="explicit"`, float64(a.RoutedExplicit))
	pw.Counter("flcluster_routed_total", "Requests by routing decision.", `via="pinned"`, float64(a.RoutedPinned))
	pw.Counter("flcluster_routed_total", "Requests by routing decision.", `via="hashed"`, float64(a.RoutedHashed))
	pw.Gauge("flcluster_pinned_devices", "Devices currently pinned to a cell.", "", float64(a.PinnedDevices))
	pw.Gauge("flcluster_tracked_devices", "Devices the router holds state for.", "", float64(a.TrackedDevices))
	pw.Gauge("flcluster_solve_latency_seconds", "Cluster-wide recent solve latency quantiles.", `quantile="0.5"`, a.SolveP50)
	pw.Gauge("flcluster_solve_latency_seconds", "Cluster-wide recent solve latency quantiles.", `quantile="0.99"`, a.SolveP99)
	pw.Gauge("flcluster_cache_hit_latency_seconds", "Cluster-wide recent cache-hit path latency quantiles.", `quantile="0.5"`, a.CacheHitP50)
	pw.Gauge("flcluster_cache_hit_latency_seconds", "Cluster-wide recent cache-hit path latency quantiles.", `quantile="0.99"`, a.CacheHitP99)
	pw.Gauge("flcluster_queue_wait_seconds", "Cluster-wide recent queue-wait quantiles.", `quantile="0.5"`, a.QueueWaitP50)
	pw.Gauge("flcluster_queue_wait_seconds", "Cluster-wide recent queue-wait quantiles.", `quantile="0.99"`, a.QueueWaitP99)
	pw.Gauge("flcluster_queue_len", "Cluster-wide instantaneous queue depth (interactive).", "", float64(a.QueueLen))
	pw.Gauge("flcluster_bulk_queue_len", "Cluster-wide instantaneous queue depth (bulk).", "", float64(a.BulkQueueLen))
	return pw.Err()
}
