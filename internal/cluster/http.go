package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// SolveResponseJSON is a solve response plus the cell that served it.
type SolveResponseJSON struct {
	serve.SolveResponseJSON
	Cell int `json:"cell"`
}

// HandoffRequestJSON is the body of POST /v1/handoff.
type HandoffRequestJSON struct {
	DeviceID string `json:"device_id"`
	FromCell int    `json:"from_cell"`
	ToCell   int    `json:"to_cell"`
}

// BatchItemJSON is one item of a routed batch response: the single-server
// item plus the serving cell (meaningful when OK; cell 0 is a real index,
// so no omitempty).
type BatchItemJSON struct {
	serve.BatchItemJSON
	Cell int `json:"cell"`
}

// SolveBatchResponseJSON is the body of a successful POST /v1/solve-batch.
type SolveBatchResponseJSON struct {
	Results []BatchItemJSON `json:"results"`
}

// Handler returns the cluster's HTTP API:
//
//	POST /v1/cells/{id}/solve  solve in an explicit cell (pins the device)
//	POST /v1/solve             solve routed by device_id (pin, else hash)
//	POST /v1/solve-batch       many device-routed solves in one body
//	POST /v1/handoff           migrate a device's cached state across cells
//	GET  /v1/stats             aggregate + per-cell counters (JSON)
//	GET  /metrics              Prometheus text exposition
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, req *http.Request) {
		r.handleSolve(w, req, CellAuto)
	})
	mux.HandleFunc("POST /v1/solve-batch", r.handleSolveBatch)
	mux.HandleFunc("POST /v1/cells/{id}/solve", func(w http.ResponseWriter, req *http.Request) {
		id, err := strconv.Atoi(req.PathValue("id"))
		if err != nil {
			httpError(w, req, http.StatusBadRequest, fmt.Errorf("malformed cell id %q", req.PathValue("id")))
			return
		}
		if id < 0 {
			// id < 0 must not fall through: -1 is CellAuto internally, and
			// an explicit URL aliasing to hash routing would mask typos. A
			// well-formed-but-negative id is an unknown cell like any other.
			WriteError(w, UnknownCellError{Cell: id})
			return
		}
		r.handleSolve(w, req, id)
	})
	mux.HandleFunc("POST /v1/handoff", r.handleHandoff)
	mux.HandleFunc("GET /v1/stats", r.handleStats)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	return mux
}

// maxBody mirrors the single-server bound on request bodies.
const maxBody = 8 << 20

func (r *Router) handleSolve(w http.ResponseWriter, req *http.Request, cell int) {
	var in serve.SolveRequestJSON
	req.Body = http.MaxBytesReader(w, req.Body, maxBody)
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, req, http.StatusRequestEntityTooLarge, err)
			return
		}
		httpError(w, req, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	sreq, err := serve.RequestFromJSON(in)
	if err != nil {
		httpError(w, req, http.StatusBadRequest, err)
		return
	}
	resp, servedBy, err := r.Solve(req.Context(), cell, in.DeviceID, sreq)
	if err != nil {
		httpError(w, req, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SolveResponseJSON{
		SolveResponseJSON: serve.ResponseToJSON(resp),
		Cell:              servedBy,
	})
}

func (r *Router) handleSolveBatch(w http.ResponseWriter, req *http.Request) {
	dec, ok := serve.ReadBatchRequest(w, req)
	if !ok {
		return
	}
	valid := dec.Valid()
	sub := make([]serve.Request, len(valid))
	ids := make([]string, len(valid))
	for k, i := range valid {
		sub[k] = dec.Requests[i]
		ids[k] = dec.DeviceIDs[i]
	}
	items, cells := r.SolveBatch(req.Context(), sub, ids, dec.Priority)
	out := SolveBatchResponseJSON{Results: make([]BatchItemJSON, len(dec.Requests))}
	for i, err := range dec.Errs {
		if err != nil {
			out.Results[i] = BatchItemJSON{BatchItemJSON: serve.BatchItemJSON{Error: err.Error()}}
		}
	}
	for k, i := range valid {
		out.Results[i] = BatchItemJSON{BatchItemJSON: serve.BatchItemToJSON(items[k]), Cell: cells[k]}
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleHandoff(w http.ResponseWriter, req *http.Request) {
	var in HandoffRequestJSON
	req.Body = http.MaxBytesReader(w, req.Body, maxBody)
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		httpError(w, req, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	rep, err := r.Handoff(req.Context(), in.DeviceID, in.FromCell, in.ToCell)
	if err != nil {
		httpError(w, req, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, r.Stats())
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", serve.PromContentType)
	_ = r.Stats().WritePrometheus(w)
}

// statusFor extends the single-server error mapping with the router's own
// errors. Unknown cells are 404s — the resource genuinely does not exist,
// and every endpoint answers them with the same typed body (see
// WriteError) so clients can branch on one shape.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownCell):
		return http.StatusNotFound
	case errors.Is(err, ErrNoDevice), errors.Is(err, ErrLastCell):
		return http.StatusBadRequest
	default:
		return serve.StatusFor(err)
	}
}

// ErrorJSON is the error body of every cluster (and control-plane)
// endpoint. Unknown-cell errors carry the machine-readable form: Error is
// the fixed code "unknown_cell" and Cell names the offending ID; other
// errors carry their message.
type ErrorJSON struct {
	Error string `json:"error"`
	Cell  *int   `json:"cell,omitempty"`
}

// WriteError writes the uniform JSON error body for err, picking the
// status from the cluster error mapping. Shared by the cluster front end
// and the control plane so an unknown cell looks identical on every
// endpoint: 404 {"error":"unknown_cell","cell":N}.
func WriteError(w http.ResponseWriter, err error) {
	var uc UnknownCellError
	if errors.As(err, &uc) {
		writeJSON(w, http.StatusNotFound, ErrorJSON{Error: "unknown_cell", Cell: &uc.Cell})
		return
	}
	writeJSON(w, statusFor(err), ErrorJSON{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes the error body and stamps a zero-duration PhaseError
// mark on the request's trace, so errored requests surface in the flight
// recorder with their error string attached.
func httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	obs.FromContext(r.Context()).RecordAttr(obs.PhaseError, time.Now(),
		obs.Attr{Cell: obs.CellNone, Detail: err.Error(), Value: int64(status)})
	var uc UnknownCellError
	if errors.As(err, &uc) {
		WriteError(w, err)
		return
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
