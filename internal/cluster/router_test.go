package cluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/serve"
)

func testSystem(t testing.TB, n int, seed int64) *fl.System {
	t.Helper()
	sc := experiments.Default()
	sc.N = n
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func balanced() fl.Weights { return fl.Weights{W1: 0.5, W2: 0.5} }

func testRouter(t testing.TB, cells int) *Router {
	t.Helper()
	r := New(Config{Cells: cells, Cell: serve.Config{Workers: 2}})
	t.Cleanup(r.Close)
	return r
}

// driftGains drifts every gain far enough to leave the 0.25 dB exact
// bucket (sigma in nepers).
func driftGains(s *fl.System, sigma float64, rng *rand.Rand) *fl.System {
	out := *s
	out.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= math.Exp(sigma * rng.NormFloat64())
	}
	return &out
}

func TestRouteHashFallbackAndPinning(t *testing.T) {
	r := testRouter(t, 4)
	s := testSystem(t, 6, 1)
	req := serve.Request{System: s, Weights: balanced()}

	// Unpinned: consistent hash, deterministic.
	want := r.Route("dev-a")
	if got := r.Route("dev-a"); got != want {
		t.Fatalf("Route not deterministic: %d then %d", want, got)
	}

	// Device-routed solve serves the hashed cell.
	resp, cell, err := r.Solve(context.Background(), CellAuto, "dev-a", req)
	if err != nil {
		t.Fatal(err)
	}
	if cell != want {
		t.Fatalf("auto solve served by cell %d, Route says %d", cell, want)
	}
	if resp.Source != serve.SourceCold {
		t.Fatalf("first solve source %q, want cold", resp.Source)
	}

	// An explicit-cell solve pins the device there.
	explicit := (want + 1) % r.Cells()
	if _, cell, err = r.Solve(context.Background(), explicit, "dev-a", req); err != nil || cell != explicit {
		t.Fatalf("explicit solve: cell %d err %v, want %d", cell, err, explicit)
	}
	if got := r.Route("dev-a"); got != explicit {
		t.Fatalf("after explicit solve Route = %d, want pinned %d", got, explicit)
	}

	// Out-of-range explicit cells are rejected.
	if _, _, err := r.Solve(context.Background(), r.Cells(), "dev-a", req); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("cell %d accepted: %v", r.Cells(), err)
	}
}

func TestHandoffMigratesCacheAndWarm(t *testing.T) {
	r := testRouter(t, 3)
	s := testSystem(t, 8, 2)
	req := serve.Request{System: s, Weights: balanced()}
	const dev = "ue-42"

	// Serve the device in cell 0 (explicit → pinned, recorded).
	first, cell, err := r.Solve(context.Background(), 0, dev, req)
	if err != nil {
		t.Fatal(err)
	}
	if cell != 0 || first.Source != serve.SourceCold {
		t.Fatalf("setup solve: cell %d source %q", cell, first.Source)
	}

	rep, err := r.Handoff(context.Background(), dev, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 1 || rep.MigratedResults != 1 {
		t.Fatalf("handoff report %+v, want 1 instance and 1 migrated result", rep)
	}

	// The pin follows the device.
	if got := r.Route(dev); got != 2 {
		t.Fatalf("after handoff Route = %d, want 2", got)
	}

	// Exact replay, device-routed: destination answers from its cache
	// without solving.
	replay, cell, err := r.Solve(context.Background(), CellAuto, dev, req)
	if err != nil {
		t.Fatal(err)
	}
	if cell != 2 {
		t.Fatalf("replay served by cell %d, want 2", cell)
	}
	if replay.Source != serve.SourceCache {
		t.Fatalf("post-handoff replay source %q, want cache", replay.Source)
	}
	if replay.Result.Objective != first.Result.Objective {
		t.Fatalf("migrated objective %v != original %v", replay.Result.Objective, first.Result.Objective)
	}

	// Drifted replay in the destination: warm start from the migrated
	// allocation, not a cold solve.
	drifted := driftGains(s, 0.25, rand.New(rand.NewSource(3)))
	warm, _, err := r.Solve(context.Background(), CellAuto, dev, serve.Request{System: drifted, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != serve.SourceWarm {
		t.Fatalf("drifted post-handoff solve source %q, want warm", warm.Source)
	}

	// The source cell's cache entry is gone (migrated, not copied): its
	// occupancy dropped to zero and the same instance there has to solve
	// again. The warm bucket is deliberately left behind (shared hint), so
	// the re-solve may warm-start — but never hit the cache.
	if occ := r.Cell(0).Stats().CacheEntries; occ != 0 {
		t.Fatalf("source cell still holds %d cache entries after handoff", occ)
	}
	gone, _, err := r.Solve(context.Background(), 0, dev+"-other", req)
	if err != nil {
		t.Fatal(err)
	}
	if gone.Source == serve.SourceCache {
		t.Fatal("source cell served from cache after its entry migrated away")
	}
}

// TestHandoffLeavesSharedWarmBucket pins the copy-not-steal semantics of
// warm migration: a second device sharing the source cell's topology
// bucket keeps warm-starting after the first device moves away.
func TestHandoffLeavesSharedWarmBucket(t *testing.T) {
	r := testRouter(t, 2)
	base := testSystem(t, 6, 4)
	rng := rand.New(rand.NewSource(8))

	// Two devices, same topology (gains drifted): they share cell 0's
	// topology bucket.
	if _, _, err := r.Solve(context.Background(), 0, "mover", serve.Request{System: base, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Handoff(context.Background(), "mover", 0, 1); err != nil {
		t.Fatal(err)
	}
	stay, _, err := r.Solve(context.Background(), 0, "stayer", serve.Request{System: driftGains(base, 0.25, rng), Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if stay.Source != serve.SourceWarm {
		t.Fatalf("staying device's post-handoff solve source %q, want warm (bucket must survive the neighbour's move)", stay.Source)
	}
}

// TestFailedExplicitSolveDoesNotPin pins routing-state hygiene: a rejected
// explicit-cell solve must not capture the device.
func TestFailedExplicitSolveDoesNotPin(t *testing.T) {
	r := testRouter(t, 3)
	s := testSystem(t, 4, 6)
	before := r.Route("dev-x")
	// Bogus solver: rejected before anything is served.
	_, _, err := r.Solve(context.Background(), (before+1)%3, "dev-x", serve.Request{System: s, Weights: balanced(), Solver: "bogus"})
	if err == nil {
		t.Fatal("bogus solver accepted")
	}
	if got := r.Route("dev-x"); got != before {
		t.Fatalf("failed explicit solve moved the pin: %d -> %d", before, got)
	}
}

// TestHandoffBaselineCarriesNoWarmSeed: baseline results migrate as cache
// entries only — their solvers never read a start, so planting warm seeds
// would waste bounded slots.
func TestHandoffBaselineCarriesNoWarmSeed(t *testing.T) {
	r := testRouter(t, 2)
	s := testSystem(t, 6, 12)
	req := serve.Request{System: s, Weights: balanced(), Solver: serve.SolverSimplified}
	if _, _, err := r.Solve(context.Background(), 0, "b-dev", req); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Handoff(context.Background(), "b-dev", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MigratedResults != 1 || rep.MigratedWarm != 0 {
		t.Fatalf("baseline handoff report %+v, want 1 result and 0 warm seeds", rep)
	}
	resp, _, err := r.Solve(context.Background(), CellAuto, "b-dev", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != serve.SourceCache {
		t.Fatalf("baseline replay after handoff source %q, want cache", resp.Source)
	}
}

func TestHandoffValidation(t *testing.T) {
	r := testRouter(t, 2)
	if _, err := r.Handoff(context.Background(), "", 0, 1); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("empty device: %v", err)
	}
	if _, err := r.Handoff(context.Background(), "d", -1, 1); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("from -1: %v", err)
	}
	if _, err := r.Handoff(context.Background(), "d", 0, 2); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("to 2 of 2: %v", err)
	}
	// Unknown device: no records, but the pin is established.
	rep, err := r.Handoff(context.Background(), "newcomer", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instances != 0 || rep.MigratedResults != 0 {
		t.Fatalf("unknown device migrated something: %+v", rep)
	}
	if got := r.Route("newcomer"); got != 1 {
		t.Fatalf("newcomer routed to %d, want pinned 1", got)
	}
	// Same-cell handoff is a pin-only no-op.
	if rep, err = r.Handoff(context.Background(), "newcomer", 1, 1); err != nil || rep.Instances != 0 {
		t.Fatalf("same-cell handoff: %+v, %v", rep, err)
	}
}

func TestClusterStatsAggregateConsistent(t *testing.T) {
	r := testRouter(t, 3)
	rng := rand.New(rand.NewSource(5))
	base := testSystem(t, 6, 7)
	for i := 0; i < 12; i++ {
		sys := base
		if i%3 != 0 {
			sys = driftGains(base, 0.25, rng)
		}
		dev := []string{"a", "b", "c", "d"}[i%4]
		if _, _, err := r.Solve(context.Background(), CellAuto, dev, serve.Request{System: sys, Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Handoff(context.Background(), "a", r.Route("a"), (r.Route("a")+1)%3); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if len(st.Cells) != 3 {
		t.Fatalf("%d cell snapshots, want 3", len(st.Cells))
	}
	var requests, hits, warm, cold, cacheEntries int64
	for _, c := range st.Cells {
		requests += c.Requests
		hits += c.Hits
		warm += c.WarmStarts
		cold += c.ColdSolves
		cacheEntries += int64(c.CacheEntries)
	}
	a := st.Aggregate
	if a.Requests != requests || a.Hits != hits || a.WarmStarts != warm || a.ColdSolves != cold {
		t.Fatalf("aggregate %+v does not sum per-cell counters (req %d hits %d warm %d cold %d)", a, requests, hits, warm, cold)
	}
	if int64(a.CacheEntries) != cacheEntries {
		t.Fatalf("aggregate cache entries %d, per-cell sum %d", a.CacheEntries, cacheEntries)
	}
	if a.Requests != 12 {
		t.Fatalf("aggregate requests %d, want 12", a.Requests)
	}
	if a.Handoffs != 1 {
		t.Fatalf("aggregate handoffs %d, want 1", a.Handoffs)
	}
	if a.RoutedPinned+a.RoutedHashed+a.RoutedExplicit != 12 {
		t.Fatalf("routing breakdown %d+%d+%d, want 12", a.RoutedExplicit, a.RoutedPinned, a.RoutedHashed)
	}
	if hits+warm+cold > 0 && !(a.SolveP50 > 0) {
		t.Fatalf("aggregate latency quantiles missing: %+v", a)
	}
}

// TestHandoffRespectsPerCellQuantization hands off between cells and backs
// the migrated entry's re-fingerprinting claim: the destination hit works
// even though fingerprints were computed per cell (here with identical
// quantization, the property the config template guarantees; the API
// recomputes rather than copies, which this asserts indirectly via the
// record's fingerprint update on a second handoff hop).
func TestHandoffTwoHops(t *testing.T) {
	r := testRouter(t, 3)
	s := testSystem(t, 6, 9)
	req := serve.Request{System: s, Weights: balanced()}
	const dev = "hopper"

	if _, _, err := r.Solve(context.Background(), 0, dev, req); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Handoff(context.Background(), dev, 0, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Handoff(context.Background(), dev, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MigratedResults != 1 {
		t.Fatalf("second hop migrated %d results, want 1 (record should follow the device)", rep.MigratedResults)
	}
	resp, cell, err := r.Solve(context.Background(), CellAuto, dev, req)
	if err != nil {
		t.Fatal(err)
	}
	if cell != 2 || resp.Source != serve.SourceCache {
		t.Fatalf("after two hops: cell %d source %q, want 2/cache", cell, resp.Source)
	}
}
