package cluster

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over cell indices. Each cell contributes
// `replicas` virtual points; a key routes to the cell owning the first
// point clockwise of the key's hash. Consistent hashing keeps the
// device-to-cell map stable under resizing: growing an N-cell cluster to
// N+1 cells remaps only ~1/(N+1) of the unpinned devices, instead of
// reshuffling nearly all of them as `hash mod N` would.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	cell int
}

// newRing builds the ring for cells cells with the given virtual-node
// count per cell (minimum 1).
func newRing(cells, replicas int) ring {
	ids := make([]int, cells)
	for c := range ids {
		ids[c] = c
	}
	return newRingFor(ids, replicas)
}

// newRingFor builds the ring over an explicit cell-ID set. A cell's
// virtual points depend only on its own ID, so splicing a cell in or out
// leaves every other cell's points exactly where they were — the property
// that bounds remapping to the joining/leaving cell's arcs. An N-cell ring
// over IDs 0..N-1 is bit-identical to newRing(N, replicas).
func newRingFor(ids []int, replicas int) ring {
	if replicas < 1 {
		replicas = 1
	}
	r := ring{points: make([]ringPoint, 0, len(ids)*replicas)}
	for _, c := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash: fnv1a(fmt.Sprintf("cell/%d/replica/%d", c, v)),
				cell: c,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].cell < r.points[j].cell
	})
	return r
}

// cell returns the owning cell for key (-1 on an empty ring; the router
// never installs one, but the hash must stay total).
func (r ring) cell(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point, the first owns
	}
	return r.points[i].cell
}

// fnv1a hashes a string with 64-bit FNV-1a (deterministic across
// processes, unlike hash/maphash), finished with a murmur-style avalanche:
// raw FNV of short, near-identical strings ("cell/3/replica/17") leaves
// the high bits — the ones the sorted ring searches on — badly clustered,
// which starved whole cells in distribution tests.
func fnv1a(s string) uint64 {
	const (
		offsetBasis = 14695981039346656037
		prime       = 1099511628211
	)
	h := uint64(offsetBasis)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
