// Package cluster shards the allocation service of internal/serve across
// the cells of a cellular deployment. Each cell is a full serve.Server —
// its own worker pool, solution cache and warm-start index — and a Router
// in front of them
//
//   - routes requests by explicit cell ID, by a pin established through
//     handoff, or (for unpinned devices) by consistent hashing of the
//     device ID;
//   - hands devices off between cells, re-fingerprinting and migrating
//     their cached solutions and warm-start allocations so the first solve
//     after a move is a warm or cached hit instead of a cold solve;
//   - aggregates per-cell counters into cluster-wide stats (rolled-up
//     hit/miss/latency, cache sizes) and a Prometheus exposition;
//   - exposes an HTTP front end (POST /v1/cells/{id}/solve, POST
//     /v1/solve, POST /v1/handoff, GET /v1/stats, GET /metrics) used by
//     cmd/flcluster.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/serve"
)

// CellAuto routes a request by device pin / consistent hash instead of an
// explicit cell index.
const CellAuto = -1

// ErrUnknownCell flags a cell index outside [0, Cells).
var ErrUnknownCell = errors.New("cluster: unknown cell")

// ErrNoDevice flags a handoff without a device ID.
var ErrNoDevice = errors.New("cluster: missing device id")

// Config parameterizes a Router. The zero value is usable.
type Config struct {
	// Cells is the number of per-cell servers. Default 4.
	Cells int
	// Cell is the per-cell serve.Config template; every cell gets an
	// identical (but fully independent) server built from it.
	Cell serve.Config
	// HistoryPerDevice bounds how many distinct recent instances the
	// router remembers per device for handoff re-fingerprinting.
	// Default 8.
	HistoryPerDevice int
	// MaxDevices bounds the device-state map (pins + histories); beyond
	// it, an arbitrary device's state is evicted. Default 65536.
	MaxDevices int
	// HashReplicas is the virtual-node count per cell on the consistent
	// hash ring. Default 64.
	HashReplicas int
}

func (c Config) withDefaults() Config {
	if c.Cells <= 0 {
		c.Cells = 4
	}
	if c.HistoryPerDevice <= 0 {
		c.HistoryPerDevice = 8
	}
	if c.MaxDevices <= 0 {
		c.MaxDevices = 65536
	}
	if c.HashReplicas <= 0 {
		c.HashReplicas = 64
	}
	return c
}

// record is one instance a device was recently served, kept so a handoff
// can re-fingerprint it in the destination cell and migrate its cached
// state. The request is retained by reference and never mutated.
type record struct {
	req  serve.Request
	cell int
	// fpExact (under the serving cell's quantization at record time)
	// dedupes the history; migration always re-fingerprints fresh.
	fpExact uint64
}

// deviceState is the router's memory of one device.
type deviceState struct {
	pinned  bool
	cell    int // the pinned cell, valid when pinned
	records []record
}

// Router owns the per-cell servers and the device routing state.
type Router struct {
	cfg   Config
	cells []*serve.Server
	ring  ring

	mu      sync.Mutex
	devices map[string]*deviceState

	handoffs        atomic.Int64
	migratedResults atomic.Int64
	migratedWarm    atomic.Int64
	routedExplicit  atomic.Int64
	routedPinned    atomic.Int64
	routedHashed    atomic.Int64
}

// New builds the router and starts every cell's worker pool. Call Close to
// stop them.
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		cells:   make([]*serve.Server, cfg.Cells),
		ring:    newRing(cfg.Cells, cfg.HashReplicas),
		devices: make(map[string]*deviceState),
	}
	for i := range r.cells {
		r.cells[i] = serve.New(cfg.Cell)
	}
	return r
}

// Close stops every cell's worker pool (in-flight solves finish).
func (r *Router) Close() {
	for _, c := range r.cells {
		c.Close()
	}
}

// Cells returns the cell count.
func (r *Router) Cells() int { return len(r.cells) }

// Cell returns the i-th cell server (panics outside [0, Cells)); it backs
// tests and benchmarks that need to poke one cell directly.
func (r *Router) Cell(i int) *serve.Server { return r.cells[i] }

// Quantization returns the fingerprint quantization shared by every cell
// (all cells are built from the one Config.Cell template). Streaming delta
// sessions use it to precompute fingerprints incrementally.
func (r *Router) Quantization() serve.Quantization { return r.cfg.Cell.Quantization }

// Route resolves the cell a device-routed request would be served by
// without serving anything: the pinned cell when a handoff or explicit
// solve pinned the device, the consistent-hash cell otherwise.
func (r *Router) Route(deviceID string) int {
	r.mu.Lock()
	st, ok := r.devices[deviceID]
	pinned := ok && st.pinned
	cell := 0
	if pinned {
		cell = st.cell
	}
	r.mu.Unlock()
	if pinned {
		return cell
	}
	return r.ring.cell(deviceID)
}

// Solve serves one request. cell selects the serving cell explicitly, or
// routes by deviceID when CellAuto: the device's pinned cell if any, its
// consistent-hash cell otherwise. A *successful* explicit-cell solve pins
// the device to that cell (the device demonstrably lives there now), so
// later device-routed requests follow it; a failed one leaves the routing
// state untouched — an overloaded or rejecting cell must not capture the
// device. The serving cell index is returned alongside the response.
func (r *Router) Solve(ctx context.Context, cell int, deviceID string, req serve.Request) (serve.Response, int, error) {
	explicit := false
	switch {
	case cell == CellAuto:
		if st := r.pinOf(deviceID); st >= 0 {
			cell = st
			r.routedPinned.Add(1)
		} else {
			cell = r.ring.cell(deviceID)
			r.routedHashed.Add(1)
		}
	case cell < 0 || cell >= len(r.cells):
		return serve.Response{}, 0, fmt.Errorf("cell %d of %d: %w", cell, len(r.cells), ErrUnknownCell)
	default:
		explicit = true
		r.routedExplicit.Add(1)
	}
	resp, err := r.cells[cell].Solve(ctx, req)
	if err != nil {
		return serve.Response{}, cell, err
	}
	if deviceID != "" {
		if explicit {
			r.pin(deviceID, cell)
		}
		r.remember(deviceID, cell, req, resp.Fingerprint.Exact)
	}
	return resp, cell, nil
}

// SolveBatch serves many device-routed requests in one call: every item is
// routed exactly as a CellAuto Solve (device pin, else consistent hash),
// the items are grouped by destination cell, and each cell's group runs as
// one serve.SolveBatch — cache lookups and in-batch deduplication amortized
// per cell, the solves queued at the given priority. deviceIDs[i] names the
// device behind reqs[i] (empty routes to the hash of ""). Items come back
// in request order together with the cell that served each.
func (r *Router) SolveBatch(ctx context.Context, reqs []serve.Request, deviceIDs []string, pri serve.Priority) ([]serve.BatchItem, []int) {
	items := make([]serve.BatchItem, len(reqs))
	cells := make([]int, len(reqs))
	byCell := make(map[int][]int)
	for i := range reqs {
		var cell int
		if st := r.pinOf(deviceIDs[i]); st >= 0 {
			cell = st
			r.routedPinned.Add(1)
		} else {
			cell = r.ring.cell(deviceIDs[i])
			r.routedHashed.Add(1)
		}
		cells[i] = cell
		byCell[cell] = append(byCell[cell], i)
	}
	var wg sync.WaitGroup
	for cell, idxs := range byCell {
		wg.Add(1)
		go func(cell int, idxs []int) {
			defer wg.Done()
			sub := make([]serve.Request, len(idxs))
			for k, i := range idxs {
				sub[k] = reqs[i]
			}
			for k, it := range r.cells[cell].SolveBatch(ctx, sub, pri) {
				items[idxs[k]] = it
			}
		}(cell, idxs)
	}
	wg.Wait()
	for i, it := range items {
		if it.Err == nil && deviceIDs[i] != "" {
			r.remember(deviceIDs[i], cells[i], reqs[i], it.Response.Fingerprint.Exact)
		}
	}
	return items, cells
}

// pinOf returns the pinned cell for a device, or -1.
func (r *Router) pinOf(deviceID string) int {
	if deviceID == "" {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.devices[deviceID]; ok && st.pinned {
		return st.cell
	}
	return -1
}

// pin pins a device to a cell.
func (r *Router) pin(deviceID string, cell int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(deviceID)
	st.pinned, st.cell = true, cell
}

// remember appends a served instance to the device's history, deduping on
// the exact fingerprint and keeping the most recent HistoryPerDevice.
func (r *Router) remember(deviceID string, cell int, req serve.Request, fpExact uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(deviceID)
	for i := range st.records {
		if st.records[i].fpExact == fpExact {
			// Refresh recency and the serving cell, then move to the end.
			rec := st.records[i]
			rec.cell = cell
			st.records = append(append(st.records[:i], st.records[i+1:]...), rec)
			return
		}
	}
	st.records = append(st.records, record{req: req, cell: cell, fpExact: fpExact})
	if len(st.records) > r.cfg.HistoryPerDevice {
		st.records = st.records[len(st.records)-r.cfg.HistoryPerDevice:]
	}
}

// state returns (creating if needed) the device's state; callers hold
// r.mu. The map is bounded: at MaxDevices an arbitrary other device is
// evicted, like the warm index — routing state is a best-effort hint, an
// evicted device simply falls back to hash routing and cold solves.
func (r *Router) state(deviceID string) *deviceState {
	if st, ok := r.devices[deviceID]; ok {
		return st
	}
	if len(r.devices) >= r.cfg.MaxDevices {
		for k := range r.devices {
			delete(r.devices, k)
			break
		}
	}
	st := &deviceState{}
	r.devices[deviceID] = st
	return st
}

// HandoffReport summarizes one cross-cell device handoff.
type HandoffReport struct {
	DeviceID string `json:"device_id"`
	FromCell int    `json:"from_cell"`
	ToCell   int    `json:"to_cell"`
	// Instances is how many tracked instances of the device were
	// re-fingerprinted against the source cell.
	Instances int `json:"instances"`
	// MigratedResults counts solution-cache entries moved to the
	// destination cell.
	MigratedResults int `json:"migrated_results"`
	// MigratedWarm counts warm-start allocations moved (a migrated result
	// with no separate warm entry still seeds the destination's index).
	MigratedWarm int `json:"migrated_warm_starts"`
}

// Handoff moves a device from one cell to another: every tracked instance
// of the device is re-fingerprinted under the destination cell's
// quantization, its cached solution is extracted from the source cell and
// injected into the destination (the warm-start allocation is copied, not
// removed — the source's topology bucket may be serving devices that did
// not move), and the device is pinned to the destination so device-routed
// requests follow it. After a handoff the first solve of a carried
// instance in the destination is a cache hit (exact replay) or a warm
// start (drifted gains), and the source cell no longer holds the cache
// entry.
//
// Instances whose history says they were last served by a different cell
// than from are left where they are. A device the router has never seen is
// still pinned to the destination.
func (r *Router) Handoff(deviceID string, from, to int) (HandoffReport, error) {
	if deviceID == "" {
		return HandoffReport{}, ErrNoDevice
	}
	if from < 0 || from >= len(r.cells) {
		return HandoffReport{}, fmt.Errorf("from cell %d of %d: %w", from, len(r.cells), ErrUnknownCell)
	}
	if to < 0 || to >= len(r.cells) {
		return HandoffReport{}, fmt.Errorf("to cell %d of %d: %w", to, len(r.cells), ErrUnknownCell)
	}
	rep := HandoffReport{DeviceID: deviceID, FromCell: from, ToCell: to}

	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(deviceID)
	st.pinned, st.cell = true, to
	r.handoffs.Add(1)
	if from == to {
		return rep, nil
	}
	src, dst := r.cells[from], r.cells[to]
	for i := range st.records {
		rec := &st.records[i]
		if rec.cell != from {
			continue
		}
		rep.Instances++
		fpSrc := serve.FingerprintRequest(rec.req, src.Quantization())
		m := src.Extract(fpSrc)
		fpDst := serve.FingerprintRequest(rec.req, dst.Quantization())
		rec.cell, rec.fpExact = to, fpDst.Exact
		if !rec.req.Solver.Warmable() {
			// Baseline solvers never read a seeded start; planting their
			// allocations in the destination's warm index would only burn
			// bounded slots on entries no solve can consume.
			m.Warm, m.WarmDuals = nil, nil
		} else if m.Warm == nil && m.Result != nil {
			// The source's warm bucket was evicted but the solution
			// survived: its allocation (and dual state) is just as good a
			// seed.
			m.Warm = &m.Result.Allocation
			m.WarmDuals = m.Result.Duals
		}
		if m.Result == nil && m.Warm == nil {
			continue // expired or evicted at the source; nothing to carry
		}
		dst.Inject(fpDst, m)
		if m.Result != nil {
			rep.MigratedResults++
			r.migratedResults.Add(1)
		}
		if m.Warm != nil {
			rep.MigratedWarm++
			r.migratedWarm.Add(1)
		}
	}
	return rep, nil
}
