// Package cluster shards the allocation service of internal/serve across
// the cells of a cellular deployment. Each cell is a full serve.Server —
// its own worker pool, solution cache and warm-start index — and a Router
// in front of them
//
//   - routes requests by explicit cell ID, by a pin established through
//     handoff, or (for unpinned devices) by consistent hashing of the
//     device ID;
//   - hands devices off between cells, re-fingerprinting and migrating
//     their cached solutions and warm-start allocations so the first solve
//     after a move is a warm or cached hit instead of a cold solve;
//   - supports runtime membership changes: AddCell splices a fresh cell
//     into the consistent-hash ring and RemoveCell splices one out, each
//     installing a new ring generation; routing is epoch-checked, so a
//     request racing a membership change re-resolves onto the post-change
//     owner instead of failing against a cell that no longer exists;
//   - migrates devices in bulk: MassHandoff moves a whole set of devices
//     (a mass-mobility event, a cell drain, a rebalance) with one routing
//     lock acquisition and one bulk state transfer per cell, reusing the
//     fingerprints recorded when the instances were served instead of
//     re-hashing every instance per device;
//   - aggregates per-cell counters into cluster-wide stats (rolled-up
//     hit/miss/latency, cache sizes) and a Prometheus exposition;
//   - exposes an HTTP front end (POST /v1/cells/{id}/solve, POST
//     /v1/solve, POST /v1/handoff, GET /v1/stats, GET /metrics) used by
//     cmd/flcluster.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// CellAuto routes a request by device pin / consistent hash instead of an
// explicit cell index.
const CellAuto = -1

// ErrUnknownCell flags a cell ID that is not (or no longer) a member of
// the cluster. Errors carrying a concrete ID are UnknownCellError values
// that unwrap to this sentinel.
var ErrUnknownCell = errors.New("cluster: unknown cell")

// ErrLastCell refuses a removal that would leave the cluster empty.
var ErrLastCell = errors.New("cluster: cannot remove the last cell")

// ErrNoDevice flags a handoff without a device ID.
var ErrNoDevice = errors.New("cluster: missing device id")

// UnknownCellError is the typed form of ErrUnknownCell: it names the cell
// ID that failed to resolve, so HTTP front ends can answer with the
// uniform {"error":"unknown_cell","cell":N} body.
type UnknownCellError struct {
	Cell int
}

func (e UnknownCellError) Error() string { return fmt.Sprintf("cluster: unknown cell %d", e.Cell) }

// Unwrap makes errors.Is(err, ErrUnknownCell) hold.
func (e UnknownCellError) Unwrap() error { return ErrUnknownCell }

// Config parameterizes a Router. The zero value is usable.
type Config struct {
	// Cells is the number of per-cell servers at startup (IDs 0..Cells-1).
	// Default 4. Cells added later get fresh IDs; IDs are never reused.
	Cells int
	// Cell is the per-cell serve.Config template; every cell (initial or
	// added at runtime) gets an identical (but fully independent) server
	// built from it. All cells therefore share one fingerprint
	// quantization, which is what lets bulk migration reuse recorded
	// fingerprints instead of re-hashing per cell.
	Cell serve.Config
	// HistoryPerDevice bounds how many distinct recent instances the
	// router remembers per device for handoff re-fingerprinting.
	// Default 8.
	HistoryPerDevice int
	// MaxDevices bounds the device-state map (pins + histories); beyond
	// it, an arbitrary device's state is evicted. Default 65536.
	MaxDevices int
	// HashReplicas is the virtual-node count per cell on the consistent
	// hash ring. Default 64.
	HashReplicas int
}

func (c Config) withDefaults() Config {
	if c.Cells <= 0 {
		c.Cells = 4
	}
	if c.HistoryPerDevice <= 0 {
		c.HistoryPerDevice = 8
	}
	if c.MaxDevices <= 0 {
		c.MaxDevices = 65536
	}
	if c.HashReplicas <= 0 {
		c.HashReplicas = 64
	}
	return c
}

// membership is one immutable generation of the cell set. Every
// membership change (AddCell, RemoveCell) installs a fresh value under a
// bumped generation number; requests snapshot the pointer once and route
// within that epoch. Immutability is what makes the epoch check cheap: a
// request that solved under generation G compares one integer to learn
// whether the world moved underneath it.
type membership struct {
	gen   uint64
	ids   []int // sorted live cell IDs
	cells map[int]*serve.Server
	ring  ring
}

func (m *membership) server(id int) (*serve.Server, bool) {
	s, ok := m.cells[id]
	return s, ok
}

// record is one instance a device was recently served, kept so a handoff
// can re-fingerprint it in the destination cell and migrate its cached
// state. The request is retained by reference and never mutated.
type record struct {
	req  serve.Request
	cell int
	// fp is the instance's fingerprint under the serving cell's
	// quantization at record time. Since every cell is built from the one
	// Config.Cell template, the same fingerprint is valid in every other
	// cell, which is what lets MassHandoff migrate without re-hashing;
	// the per-device Handoff still re-fingerprints fresh (it documents the
	// general contract and is the reference the bulk path is tested
	// against).
	fp serve.Fingerprint
}

// deviceState is the router's memory of one device.
type deviceState struct {
	pinned  bool
	cell    int // the pinned cell, valid when pinned
	records []record
}

// Router owns the per-cell servers and the device routing state.
type Router struct {
	cfg Config

	// mem is the current membership; memMu serializes changes to it (the
	// pointer itself is atomic so the request path never takes memMu).
	mem    atomic.Pointer[membership]
	memMu  sync.Mutex
	nextID int // next cell ID to assign; guarded by memMu

	mu      sync.Mutex
	devices map[string]*deviceState

	// serveHook, when set, observes every successful device-attributed
	// solve (deviceID, serving cell, fingerprint) after the router's own
	// bookkeeping. The replication layer uses it to mark fingerprints
	// dirty for successor shipment; it runs outside every router lock and
	// must be fast and non-blocking.
	serveHook atomic.Pointer[func(deviceID string, cell int, fp serve.Fingerprint)]

	handoffs        atomic.Int64
	massHandoffs    atomic.Int64
	migratedResults atomic.Int64
	migratedWarm    atomic.Int64
	routedExplicit  atomic.Int64
	routedPinned    atomic.Int64
	routedHashed    atomic.Int64
	rerouted        atomic.Int64
	cellsAdded      atomic.Int64
	cellsRemoved    atomic.Int64
}

// New builds the router and starts every cell's worker pool. Call Close to
// stop them.
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		nextID:  cfg.Cells,
		devices: make(map[string]*deviceState),
	}
	ids := make([]int, cfg.Cells)
	cells := make(map[int]*serve.Server, cfg.Cells)
	for i := range ids {
		ids[i] = i
		cells[i] = serve.New(cfg.Cell)
	}
	r.mem.Store(&membership{
		gen:   0,
		ids:   ids,
		cells: cells,
		ring:  newRingFor(ids, cfg.HashReplicas),
	})
	return r
}

// Close stops every live cell's worker pool (in-flight solves finish).
// Cells removed earlier were closed at removal.
func (r *Router) Close() {
	for _, c := range r.mem.Load().cells {
		c.Close()
	}
}

// Cells returns the current cell count.
func (r *Router) Cells() int { return len(r.mem.Load().ids) }

// CellIDs returns the sorted IDs of the live cells.
func (r *Router) CellIDs() []int {
	return append([]int(nil), r.mem.Load().ids...)
}

// Generation returns the current ring generation; it increases by one per
// membership change.
func (r *Router) Generation() uint64 { return r.mem.Load().gen }

// Cell returns the cell server with the given ID (panics for a non-member
// ID); it backs tests and benchmarks that need to poke one cell directly.
func (r *Router) Cell(id int) *serve.Server {
	s, ok := r.mem.Load().server(id)
	if !ok {
		panic(UnknownCellError{Cell: id})
	}
	return s
}

// HasCell reports whether id is a live member.
func (r *Router) HasCell(id int) bool {
	_, ok := r.mem.Load().server(id)
	return ok
}

// CellServer is the non-panicking form of Cell: it returns the cell
// server with the given ID, or false for a non-member.
func (r *Router) CellServer(id int) (*serve.Server, bool) {
	return r.mem.Load().server(id)
}

// SetServeHook installs (or, with nil, clears) the per-solve observer:
// fn is called after every successful device-attributed solve with the
// device, the serving cell and the response fingerprint. It runs on the
// request path outside the router locks, so it must be cheap; the
// replication layer's hook just flips a dirty bit.
func (r *Router) SetServeHook(fn func(deviceID string, cell int, fp serve.Fingerprint)) {
	if fn == nil {
		r.serveHook.Store(nil)
		return
	}
	r.serveHook.Store(&fn)
}

func (r *Router) notifyServe(deviceID string, cell int, fp serve.Fingerprint) {
	if h := r.serveHook.Load(); h != nil {
		(*h)(deviceID, cell, fp)
	}
}

// RingOwners resolves each device's CURRENT ring owner, pins ignored.
// After a crash removal the installed ring is already the post-crash
// ring, so the owners are exactly where the dead cell's keyspace lands —
// which is where the replication layer promotes its bundles to.
func (r *Router) RingOwners(devices []string) map[string]int {
	mem := r.mem.Load()
	owners := make(map[string]int, len(devices))
	for _, dev := range devices {
		owners[dev] = mem.ring.cell(dev)
	}
	return owners
}

// Quantization returns the fingerprint quantization shared by every cell
// (all cells are built from the one Config.Cell template). Streaming delta
// sessions use it to precompute fingerprints incrementally.
func (r *Router) Quantization() serve.Quantization { return r.cfg.Cell.Quantization }

// AddCell spins up a fresh cell from the Config.Cell template, splices it
// into the consistent-hash ring and installs the next ring generation. It
// returns the new cell's ID. Only the keyspace arcs claimed by the new
// cell change owners (~1/(N+1) of the unpinned keys); migrating the
// remapped devices' cached state is the control plane's job (see
// internal/ctrl), not the router's — until it happens, remapped devices
// simply cold-solve in their new cell.
func (r *Router) AddCell() int {
	r.memMu.Lock()
	defer r.memMu.Unlock()
	old := r.mem.Load()
	id := r.nextID
	r.nextID++
	ids := append(append([]int(nil), old.ids...), id)
	sort.Ints(ids)
	cells := make(map[int]*serve.Server, len(ids))
	for k, v := range old.cells {
		cells[k] = v
	}
	cells[id] = serve.New(r.cfg.Cell)
	r.mem.Store(&membership{
		gen:   old.gen + 1,
		ids:   ids,
		cells: cells,
		ring:  newRingFor(ids, r.cfg.HashReplicas),
	})
	r.cellsAdded.Add(1)
	return id
}

// RemoveCell splices a cell out of the ring (installing the next
// generation) and closes its server. Requests racing the removal are
// epoch-checked: a solve that finds the cell closed under a newer
// generation re-resolves onto the post-removal owner. RemoveCell does NOT
// migrate the cell's cached state or repin its devices — drain first
// (MassHandoff; internal/ctrl orchestrates suspend → migrate → remove) or
// accept the cold solves. Removing the last cell is refused.
func (r *Router) RemoveCell(id int) error {
	r.memMu.Lock()
	defer r.memMu.Unlock()
	old := r.mem.Load()
	srv, ok := old.cells[id]
	if !ok {
		return UnknownCellError{Cell: id}
	}
	if len(old.ids) == 1 {
		return fmt.Errorf("cell %d is the only member: %w", id, ErrLastCell)
	}
	ids := make([]int, 0, len(old.ids)-1)
	for _, c := range old.ids {
		if c != id {
			ids = append(ids, c)
		}
	}
	cells := make(map[int]*serve.Server, len(ids))
	for k, v := range old.cells {
		if k != id {
			cells[k] = v
		}
	}
	r.mem.Store(&membership{
		gen:   old.gen + 1,
		ids:   ids,
		cells: cells,
		ring:  newRingFor(ids, r.cfg.HashReplicas),
	})
	r.cellsRemoved.Add(1)
	// Close after the new membership is visible: new arrivals route past
	// the cell, and the stragglers already inside it either finish (solves
	// run to completion) or fail with ErrClosed and re-resolve.
	srv.Close()
	return nil
}

// routeIn resolves a device's cell within one membership epoch: the pinned
// cell when it is still a member, the consistent-hash owner otherwise. The
// counters attribute the decision.
func (r *Router) routeIn(mem *membership, deviceID string) int {
	if cell := r.pinOf(deviceID); cell >= 0 {
		if _, ok := mem.server(cell); ok {
			r.routedPinned.Add(1)
			return cell
		}
		// The pinned cell left the cluster (a drain repins devices, but a
		// plain RemoveCell or an eviction race can leave a stale pin);
		// fall through to the ring rather than failing the request.
	}
	r.routedHashed.Add(1)
	return mem.ring.cell(deviceID)
}

// Route resolves the cell a device-routed request would be served by
// without serving anything: the pinned cell when a handoff or explicit
// solve pinned the device (and the cell is still a member), the
// consistent-hash cell otherwise.
func (r *Router) Route(deviceID string) int {
	mem := r.mem.Load()
	r.mu.Lock()
	st, ok := r.devices[deviceID]
	pinned := ok && st.pinned
	cell := 0
	if pinned {
		cell = st.cell
	}
	r.mu.Unlock()
	if pinned {
		if _, ok := mem.server(cell); ok {
			return cell
		}
	}
	return mem.ring.cell(deviceID)
}

// Solve serves one request. cell selects the serving cell explicitly, or
// routes by deviceID when CellAuto: the device's pinned cell if any, its
// consistent-hash cell otherwise. A *successful* explicit-cell solve pins
// the device to that cell (the device demonstrably lives there now), so
// later device-routed requests follow it; a failed one leaves the routing
// state untouched — an overloaded or rejecting cell must not capture the
// device. The serving cell ID is returned alongside the response.
//
// Routing is epoch-checked: the route is resolved against one membership
// snapshot, and if the serving cell turns out closed while a newer
// generation is installed (a membership change raced the request), the
// request re-resolves once against the post-change ring instead of
// surfacing ErrClosed for a cell that no longer exists.
func (r *Router) Solve(ctx context.Context, cell int, deviceID string, req serve.Request) (serve.Response, int, error) {
	explicit := cell != CellAuto
	tr := obs.FromContext(ctx)
	for {
		mem := r.mem.Load()
		target := cell
		if explicit {
			if _, ok := mem.server(target); !ok {
				return serve.Response{}, 0, UnknownCellError{Cell: target}
			}
			r.routedExplicit.Add(1)
		} else {
			target = r.routeIn(mem, deviceID)
		}
		srv, ok := mem.server(target)
		if !ok { // only reachable for a poisoned ring; defensive
			return serve.Response{}, 0, UnknownCellError{Cell: target}
		}
		var attemptBegan time.Time
		if tr != nil {
			attemptBegan = time.Now()
		}
		resp, err := srv.Solve(ctx, req)
		if err != nil {
			if !explicit && errors.Is(err, serve.ErrClosed) && r.mem.Load().gen != mem.gen {
				// Epoch check failed: the membership moved while we were
				// queued on a cell that has since been drained. Land on
				// the post-move owner.
				r.rerouted.Add(1)
				tr.RecordAttr(obs.PhaseRoute, attemptBegan, obs.Attr{Cell: target, Detail: "rerouted: cell closed mid-flight"})
				continue
			}
			return serve.Response{}, target, err
		}
		tr.RecordAttr(obs.PhaseRoute, attemptBegan, obs.Attr{Cell: target})
		if deviceID != "" {
			if explicit {
				r.pin(deviceID, target)
			}
			r.remember(deviceID, target, req, resp.Fingerprint)
			r.notifyServe(deviceID, target, resp.Fingerprint)
		}
		return resp, target, nil
	}
}

// SolveBatch serves many device-routed requests in one call: every item is
// routed exactly as a CellAuto Solve (device pin, else consistent hash),
// the items are grouped by destination cell, and each cell's group runs as
// one serve.SolveBatch — cache lookups and in-batch deduplication amortized
// per cell, the solves queued at the given priority. deviceIDs[i] names the
// device behind reqs[i] (empty routes to the hash of ""). Items come back
// in request order together with the cell that served each. The whole
// batch routes within one membership epoch; items racing a membership
// change fail individually rather than re-routing.
func (r *Router) SolveBatch(ctx context.Context, reqs []serve.Request, deviceIDs []string, pri serve.Priority) ([]serve.BatchItem, []int) {
	mem := r.mem.Load()
	items := make([]serve.BatchItem, len(reqs))
	cells := make([]int, len(reqs))
	byCell := make(map[int][]int)
	for i := range reqs {
		cell := r.routeIn(mem, deviceIDs[i])
		cells[i] = cell
		byCell[cell] = append(byCell[cell], i)
	}
	var wg sync.WaitGroup
	for cell, idxs := range byCell {
		wg.Add(1)
		go func(cell int, idxs []int) {
			defer wg.Done()
			sub := make([]serve.Request, len(idxs))
			for k, i := range idxs {
				sub[k] = reqs[i]
			}
			for k, it := range mem.cells[cell].SolveBatch(ctx, sub, pri) {
				items[idxs[k]] = it
			}
		}(cell, idxs)
	}
	wg.Wait()
	for i, it := range items {
		if it.Err == nil && deviceIDs[i] != "" {
			r.remember(deviceIDs[i], cells[i], reqs[i], it.Response.Fingerprint)
			r.notifyServe(deviceIDs[i], cells[i], it.Response.Fingerprint)
		}
	}
	return items, cells
}

// pinOf returns the pinned cell for a device, or -1.
func (r *Router) pinOf(deviceID string) int {
	if deviceID == "" {
		return -1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.devices[deviceID]; ok && st.pinned {
		return st.cell
	}
	return -1
}

// pin pins a device to a cell.
func (r *Router) pin(deviceID string, cell int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(deviceID)
	st.pinned, st.cell = true, cell
}

// remember appends a served instance to the device's history, deduping on
// the exact fingerprint and keeping the most recent HistoryPerDevice.
func (r *Router) remember(deviceID string, cell int, req serve.Request, fp serve.Fingerprint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(deviceID)
	for i := range st.records {
		if st.records[i].fp.Exact == fp.Exact {
			// Refresh recency and the serving cell, then move to the end.
			rec := st.records[i]
			rec.cell, rec.fp = cell, fp
			st.records = append(append(st.records[:i], st.records[i+1:]...), rec)
			return
		}
	}
	st.records = append(st.records, record{req: req, cell: cell, fp: fp})
	if len(st.records) > r.cfg.HistoryPerDevice {
		st.records = st.records[len(st.records)-r.cfg.HistoryPerDevice:]
	}
}

// state returns (creating if needed) the device's state; callers hold
// r.mu. The map is bounded: at MaxDevices an arbitrary other device is
// evicted, like the warm index — routing state is a best-effort hint, an
// evicted device simply falls back to hash routing and cold solves.
func (r *Router) state(deviceID string) *deviceState {
	if st, ok := r.devices[deviceID]; ok {
		return st
	}
	if len(r.devices) >= r.cfg.MaxDevices {
		for k := range r.devices {
			delete(r.devices, k)
			break
		}
	}
	st := &deviceState{}
	r.devices[deviceID] = st
	return st
}

// HandoffReport summarizes one cross-cell device handoff.
type HandoffReport struct {
	DeviceID string `json:"device_id"`
	FromCell int    `json:"from_cell"`
	ToCell   int    `json:"to_cell"`
	// Instances is how many tracked instances of the device were
	// re-fingerprinted against the source cell.
	Instances int `json:"instances"`
	// MigratedResults counts solution-cache entries moved to the
	// destination cell.
	MigratedResults int `json:"migrated_results"`
	// MigratedWarm counts warm-start allocations moved (a migrated result
	// with no separate warm entry still seeds the destination's index).
	MigratedWarm int `json:"migrated_warm_starts"`
}

// Handoff moves a device from one cell to another: every tracked instance
// of the device is re-fingerprinted under the destination cell's
// quantization, its cached solution is extracted from the source cell and
// injected into the destination (the warm-start allocation is copied, not
// removed — the source's topology bucket may be serving devices that did
// not move), and the device is pinned to the destination so device-routed
// requests follow it. After a handoff the first solve of a carried
// instance in the destination is a cache hit (exact replay) or a warm
// start (drifted gains), and the source cell no longer holds the cache
// entry.
//
// Instances whose history says they were last served by a different cell
// than from are left where they are. A device the router has never seen is
// still pinned to the destination.
//
// ctx carries the caller's lifecycle trace, if any: the extract and inject
// sides record spans against it (cell-tagged, so one trace shows state
// leaving the source and landing on the destination).
func (r *Router) Handoff(ctx context.Context, deviceID string, from, to int) (HandoffReport, error) {
	if deviceID == "" {
		return HandoffReport{}, ErrNoDevice
	}
	tr := obs.FromContext(ctx)
	mem := r.mem.Load()
	src, okFrom := mem.server(from)
	if !okFrom {
		return HandoffReport{}, UnknownCellError{Cell: from}
	}
	dst, okTo := mem.server(to)
	if !okTo {
		return HandoffReport{}, UnknownCellError{Cell: to}
	}
	rep := HandoffReport{DeviceID: deviceID, FromCell: from, ToCell: to}

	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state(deviceID)
	st.pinned, st.cell = true, to
	r.handoffs.Add(1)
	if from == to {
		return rep, nil
	}
	var began, t0 time.Time
	var extractDur, injectDur time.Duration
	if tr != nil {
		began = time.Now()
	}
	for i := range st.records {
		rec := &st.records[i]
		if rec.cell != from {
			continue
		}
		rep.Instances++
		fpSrc := serve.FingerprintRequest(rec.req, src.Quantization())
		if tr != nil {
			t0 = time.Now()
		}
		m := src.Extract(fpSrc)
		if tr != nil {
			extractDur += time.Since(t0)
		}
		fpDst := serve.FingerprintRequest(rec.req, dst.Quantization())
		rec.cell, rec.fp = to, fpDst
		prepareMigration(&m, rec.req.Solver)
		if m.Result == nil && m.Warm == nil {
			continue // expired or evicted at the source; nothing to carry
		}
		if tr != nil {
			t0 = time.Now()
		}
		dst.Inject(fpDst, m)
		if tr != nil {
			injectDur += time.Since(t0)
		}
		if m.Result != nil {
			rep.MigratedResults++
			r.migratedResults.Add(1)
		}
		if m.Warm != nil {
			rep.MigratedWarm++
			r.migratedWarm.Add(1)
		}
	}
	if tr != nil {
		tr.RecordDur(obs.PhaseHandoffExtract, began, extractDur, obs.Attr{Cell: from, Value: int64(rep.Instances)})
		tr.RecordDur(obs.PhaseHandoffInject, began, injectDur, obs.Attr{Cell: to, Value: int64(rep.MigratedResults + rep.MigratedWarm)})
	}
	return rep, nil
}

// prepareMigration normalizes an extracted bundle before injection:
// baseline solvers never read a seeded start, so their allocations must
// not burn bounded warm slots; and a surviving solution whose warm bucket
// was evicted is itself just as good a seed.
func prepareMigration(m *serve.Migration, solver serve.SolverName) {
	if !solver.Warmable() {
		m.Warm, m.WarmDuals = nil, nil
	} else if m.Warm == nil && m.Result != nil {
		m.Warm = &m.Result.Allocation
		m.WarmDuals = m.Result.Duals
	}
}

// Move is one device's planned migration in a MassHandoff: the device and
// the cell its state should land on. The sources are the cells its
// tracked instances currently live in (each record knows its own cell),
// so a Move needs no from field.
type Move struct {
	DeviceID string `json:"device_id"`
	To       int    `json:"to_cell"`
}

// CellFlow counts the instances a cell sent and received during one mass
// migration.
type CellFlow struct {
	In  int `json:"in"`
	Out int `json:"out"`
}

// MassHandoffReport summarizes one batched migration.
type MassHandoffReport struct {
	// Moves is how many device moves were requested; Devices is how many
	// actually had tracked state somewhere other than their destination.
	Moves   int `json:"moves"`
	Devices int `json:"devices_with_state"`
	// Instances counts the tracked instances considered for migration.
	Instances int `json:"instances"`
	// MigratedResults / MigratedWarm count what actually moved.
	MigratedResults int `json:"migrated_results"`
	MigratedWarm    int `json:"migrated_warm_starts"`
	// PerCell breaks the instance flow down by cell ID.
	PerCell map[int]CellFlow `json:"per_cell,omitempty"`
}

// MassHandoff migrates a whole set of devices in one batched pass — the
// mass-mobility counterpart of Handoff, and the mechanism behind cell
// drains and rebalances. Where a per-device Handoff loop pays, per device,
// two full instance re-fingerprints plus a routing-lock acquisition and
// per-entry cache operations, MassHandoff pays once: the routing lock is
// taken once for the whole batch, the fingerprints recorded when the
// instances were served are reused verbatim (every cell shares the one
// Config.Cell quantization template, so a recorded fingerprint is valid at
// both ends), and the per-cell state transfer happens through the bulk
// ExtractBatch/InjectBatch APIs, which take each cache shard and warm
// index lock once per cell instead of once per device.
//
// pin controls the routing state after the move: true pins every device to
// its destination (mass mobility — the devices demonstrably moved), false
// clears the pins so the devices follow the ring (rebalancing back to hash
// ownership; the caller is expected to have chosen To as the ring owner).
//
// Records already living at their destination are left untouched. Every
// destination must be a live member; unknown cells fail the whole batch
// before anything moves.
//
// ctx carries the caller's lifecycle trace, if any: the plan walk and the
// per-cell extract/inject stages record cell-tagged spans against it, so a
// drain or rebalance trace shows where the migration time went.
func (r *Router) MassHandoff(ctx context.Context, moves []Move, pin bool) (MassHandoffReport, error) {
	tr := obs.FromContext(ctx)
	mem := r.mem.Load()
	rep := MassHandoffReport{Moves: len(moves), PerCell: make(map[int]CellFlow)}
	for _, mv := range moves {
		if mv.DeviceID == "" {
			return MassHandoffReport{}, ErrNoDevice
		}
		if _, ok := mem.server(mv.To); !ok {
			return MassHandoffReport{}, UnknownCellError{Cell: mv.To}
		}
	}
	r.massHandoffs.Add(1)

	// Phase 1 — ONE routing-lock acquisition for the whole batch, held
	// only for the map walk: repin every device, snapshot each migrating
	// record's fingerprint + solver, and relabel the record to its
	// destination (the fingerprint stays valid: shared quantization). The
	// bulk state transfer below then runs without r.mu, so routing never
	// stalls behind it — a request racing the transfer sees at worst a
	// cold solve, the same best-effort contract every cache miss has.
	type pending struct {
		fp     serve.Fingerprint
		solver serve.SolverName
		to     int
		mig    serve.Migration
	}
	bySrc := make(map[int][]*pending)
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	r.mu.Lock()
	for _, mv := range moves {
		st := r.state(mv.DeviceID)
		if pin {
			st.pinned, st.cell = true, mv.To
		} else {
			st.pinned = false
		}
		moved := false
		for i := range st.records {
			rec := &st.records[i]
			if rec.cell == mv.To {
				continue
			}
			src := rec.cell
			rec.cell = mv.To
			if _, ok := mem.server(src); !ok {
				// The record's cell is already gone (state lost with it);
				// the relabel alone points future migrations right.
				continue
			}
			moved = true
			rep.Instances++
			bySrc[src] = append(bySrc[src], &pending{fp: rec.fp, solver: rec.req.Solver, to: mv.To})
		}
		if moved {
			rep.Devices++
		}
	}
	r.mu.Unlock()
	if tr != nil {
		tr.RecordAttr(obs.PhaseMassPlan, t0, obs.Attr{Cell: obs.CellNone, Value: int64(rep.Instances)})
	}

	// Phase 2 — bulk-extract per source cell off the recorded
	// fingerprints, one pass each, no routing lock held.
	byDst := make(map[int][]*pending)
	for src, ps := range bySrc {
		if tr != nil {
			t0 = time.Now()
		}
		fps := make([]serve.Fingerprint, len(ps))
		for i, p := range ps {
			fps[i] = p.fp
		}
		for i, m := range mem.cells[src].ExtractBatch(fps) {
			p := ps[i]
			prepareMigration(&m, p.solver)
			p.mig = m
			if m.Result != nil || m.Warm != nil {
				flow := rep.PerCell[src]
				flow.Out++
				rep.PerCell[src] = flow
				byDst[p.to] = append(byDst[p.to], p)
			}
		}
		if tr != nil {
			tr.RecordAttr(obs.PhaseMassExtract, t0, obs.Attr{Cell: src, Value: int64(len(ps))})
		}
	}

	// Bulk-inject per destination cell.
	for dst, ps := range byDst {
		if tr != nil {
			t0 = time.Now()
		}
		fps := make([]serve.Fingerprint, len(ps))
		migs := make([]serve.Migration, len(ps))
		for i, p := range ps {
			fps[i] = p.fp
			migs[i] = p.mig
			flow := rep.PerCell[dst]
			flow.In++
			rep.PerCell[dst] = flow
			if p.mig.Result != nil {
				rep.MigratedResults++
				r.migratedResults.Add(1)
			}
			if p.mig.Warm != nil {
				rep.MigratedWarm++
				r.migratedWarm.Add(1)
			}
		}
		mem.cells[dst].InjectBatch(fps, migs)
		if tr != nil {
			tr.RecordAttr(obs.PhaseMassInject, t0, obs.Attr{Cell: dst, Value: int64(len(ps))})
		}
	}
	return rep, nil
}

// Misplaced plans the moves that would bring every tracked device's cached
// state home to its current ring owner: a device is included when any of
// its records (or its pin) sits on a different live cell than the ring
// assigns. includePinned selects whether pinned devices — whose pin
// deliberately overrides the ring — are included (a rebalance moves them
// home and unpins; a post-AddCell backfill leaves them alone). The flows
// map counts, per cell, the tracked instances that would leave (Out, at
// the cell the record actually sits on) and arrive (In, at the owner) —
// the dry-run twin of MassHandoffReport.PerCell.
func (r *Router) Misplaced(includePinned bool) ([]Move, map[int]CellFlow) {
	mem := r.mem.Load()
	var moves []Move
	flows := make(map[int]CellFlow)
	r.mu.Lock()
	defer r.mu.Unlock()
	for dev, st := range r.devices {
		owner := mem.ring.cell(dev)
		if st.pinned {
			if !includePinned {
				continue
			}
			if st.cell == owner && recordsAllOn(st.records, owner) {
				continue
			}
		} else if recordsAllOn(st.records, owner) {
			continue
		}
		moves = append(moves, Move{DeviceID: dev, To: owner})
		for i := range st.records {
			if st.records[i].cell == owner {
				continue
			}
			from := flows[st.records[i].cell]
			from.Out++
			flows[st.records[i].cell] = from
			to := flows[owner]
			to.In++
			flows[owner] = to
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].DeviceID < moves[j].DeviceID })
	return moves, flows
}

func recordsAllOn(records []record, cell int) bool {
	for i := range records {
		if records[i].cell != cell {
			return false
		}
	}
	return true
}

// DevicesOn lists the tracked devices whose current route resolves to the
// given cell (pinned there, or unpinned and hash-owned by it).
func (r *Router) DevicesOn(cell int) []string {
	mem := r.mem.Load()
	var devs []string
	r.mu.Lock()
	defer r.mu.Unlock()
	for dev, st := range r.devices {
		if st.pinned {
			if st.cell == cell {
				devs = append(devs, dev)
			}
			continue
		}
		if mem.ring.cell(dev) == cell {
			devs = append(devs, dev)
		}
	}
	sort.Strings(devs)
	return devs
}

// PlanDrain plans the evacuation of one cell: every device currently
// routed to it is assigned its owner under the ring WITHOUT that cell (the
// ring the cluster will run after RemoveCell), so a drain lands each
// device exactly where post-removal hashing would send it. The cell must
// be a live member and not the last one.
func (r *Router) PlanDrain(cell int) ([]Move, error) {
	mem := r.mem.Load()
	if _, ok := mem.server(cell); !ok {
		return nil, UnknownCellError{Cell: cell}
	}
	if len(mem.ids) == 1 {
		return nil, fmt.Errorf("cell %d is the only member: %w", cell, ErrLastCell)
	}
	ids := make([]int, 0, len(mem.ids)-1)
	for _, c := range mem.ids {
		if c != cell {
			ids = append(ids, c)
		}
	}
	post := newRingFor(ids, r.cfg.HashReplicas)
	devs := r.DevicesOn(cell)
	moves := make([]Move, len(devs))
	for i, dev := range devs {
		moves[i] = Move{DeviceID: dev, To: post.cell(dev)}
	}
	return moves, nil
}
