package ctrl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fl"
	"repro/internal/health"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/stream"
)

func newtonIters(resp serve.Response) int {
	n := 0
	for _, it := range resp.Result.Iterations {
		n += it.NewtonIters
	}
	return n
}

// TestCrashCellPromotesReplicas is the tentpole acceptance: a cell dies
// WITHOUT draining, and because its warm state was replicated, every one
// of its devices re-solves warm + dual-seeded (0 Newton iterations) on
// its post-crash ring owner — warm-but-not-cached, never cold.
func TestCrashCellPromotesReplicas(t *testing.T) {
	r, _, p := testStack(t, 3)
	rep := replica.NewReplicator(replica.ReplicatorConfig{Router: r, Interval: -1})
	defer rep.Close()
	p.SetReplicator(rep)
	ev := health.New(health.Config{})
	p.SetEvents(ev)

	systems := map[string]*fl.System{}
	var victims []string
	const victim = 0
	for d := 0; d < 24; d++ {
		dev := devName(d)
		sys := testSystem(t, 8, int64(500+d))
		_, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		systems[dev] = sys
		if cell == victim {
			victims = append(victims, dev)
		}
	}
	if len(victims) == 0 {
		t.Fatal("no device landed on the victim cell")
	}
	if shipped := rep.Flush(); shipped == 0 {
		t.Fatal("flush shipped nothing")
	}

	crash, err := p.CrashCell(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if crash.Cell != victim || len(crash.Cells) != 2 {
		t.Fatalf("crash report %+v, want cell %d removed leaving 2", crash, victim)
	}
	if crash.Promotion.Devices != len(victims) || crash.Promotion.WarmSeeds == 0 {
		t.Fatalf("promotion %+v, want %d devices with warm seeds", crash.Promotion, len(victims))
	}

	rng := rand.New(rand.NewSource(9))
	for _, dev := range victims {
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev,
			serve.Request{System: driftGains(systems[dev], 0.05, rng), Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if cell == victim {
			t.Fatalf("device %s still routed to crashed cell", dev)
		}
		if resp.Source != serve.SourceWarm || !resp.DualSeeded {
			t.Fatalf("post-crash re-solve for %s: source %q dualSeeded %t, want warm + dual-seeded", dev, resp.Source, resp.DualSeeded)
		}
		if n := newtonIters(resp); n != 0 {
			t.Fatalf("post-crash re-solve for %s took %d Newton iterations, want 0", dev, n)
		}
	}

	// Counters and the alert ring both saw the crash and the recovery.
	st := p.Stats()
	if st.Crashes != 1 || st.PromotedWarm != int64(crash.Promotion.WarmSeeds) || st.CellsRemoved != 1 {
		t.Fatalf("plane stats after crash: %+v", st)
	}
	var sawCrash, sawRecovery bool
	for _, a := range ev.Alerts() {
		switch a.Kind {
		case health.KindCrash:
			sawCrash = a.Cell == victim
		case health.KindRecovery:
			sawRecovery = a.Cell == victim
		}
	}
	if !sawCrash || !sawRecovery {
		t.Fatalf("alert ring missing crash (%t) or recovery (%t): %+v", sawCrash, sawRecovery, ev.Alerts())
	}
}

// TestCrashCellGuards covers the refusal paths: the last cell cannot
// crash out of the ring, and an unknown ID is the usual typed error.
func TestCrashCellGuards(t *testing.T) {
	_, _, p := testStack(t, 2)
	if _, err := p.CrashCell(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CrashCell(context.Background(), 1); !errors.Is(err, cluster.ErrLastCell) {
		t.Fatalf("last-cell crash err = %v, want ErrLastCell", err)
	}
	if _, err := p.CrashCell(context.Background(), 0); !errors.Is(err, cluster.ErrUnknownCell) {
		t.Fatalf("re-crash err = %v, want ErrUnknownCell", err)
	}
}

// TestHTTPCrashLifecycle drives the crash endpoint over the wire and
// checks /v1/stats and /metrics grew their replica and snapshot sections.
func TestHTTPCrashLifecycle(t *testing.T) {
	r, _, p, ts := testHTTPStack(t, 3)
	rep := replica.NewReplicator(replica.ReplicatorConfig{Router: r, Interval: -1})
	defer rep.Close()
	p.SetReplicator(rep)
	snapper := replica.NewSnapshotter(replica.SnapshotterConfig{
		Path:     t.TempDir() + "/cluster.snap",
		Interval: -1,
		Capture:  replica.CaptureCluster(r, nil),
	})
	defer snapper.Close()
	p.SetSnapshotter(snapper)

	// Warm one device per cell so the crash has something to promote.
	for d := 0; d < 12; d++ {
		if _, _, err := r.Solve(context.Background(), cluster.CellAuto, devName(d),
			serve.Request{System: testSystem(t, 6, int64(700+d)), Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}
	rep.Flush()
	if err := snapper.SaveNow(); err != nil {
		t.Fatal(err)
	}

	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/cells/0/crash", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crash: status %d: %s", resp.StatusCode, body)
	}
	var crash CrashReport
	if err := json.Unmarshal(body, &crash); err != nil {
		t.Fatal(err)
	}
	if crash.Cell != 0 || len(crash.Cells) != 2 {
		t.Fatalf("crash report over HTTP: %+v", crash)
	}

	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/cells/9/crash", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("crash unknown cell: status %d: %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/cells/zzz/crash", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("crash malformed id: status %d: %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ctrl", "replica", "snapshot"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("/v1/stats missing %q section: %s", key, body)
		}
	}
	var rs replica.ReplicaStats
	if err := json.Unmarshal(stats["replica"], &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Promotions != 1 {
		t.Fatalf("replica stats over HTTP: %+v, want 1 promotion", rs)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, series := range []string{"ctrl_crashes_total 1", "replica_promotions_total 1", "snapshot_saves_total 1"} {
		if !strings.Contains(text, series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
}

// TestCrashWithLiveStreamSessions is the failure twin of the drain test:
// sessions keep firing deltas WHILE their cell crashes. Because nothing
// drains, an individual apply may fail — but only with a typed, retryable
// error, never a silent wrong answer — and a failed session must resume
// cleanly (correct seq continuity, warm re-solve) on the survivor.
func TestCrashWithLiveStreamSessions(t *testing.T) {
	r, m, p := testStack(t, 2)
	rep := replica.NewReplicator(replica.ReplicatorConfig{Router: r, Interval: -1})
	defer rep.Close()
	p.SetReplicator(rep)

	type liveSess struct {
		dev      string
		sess     *stream.Session
		expected []float64
		seq      uint64
	}
	const victim = 0
	var sessions []*liveSess
	for d := 0; len(sessions) < 3 && d < 40; d++ {
		base := testSystem(t, 10, int64(900+d))
		dev := devName(d)
		sess, upd, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if upd.Cell != victim {
			continue
		}
		gains := make([]float64, len(base.Devices))
		for i := range base.Devices {
			gains[i] = base.Devices[i].Gain
		}
		sessions = append(sessions, &liveSess{dev: dev, sess: sess, expected: gains})
	}
	if len(sessions) < 3 {
		t.Fatal("could not place 3 sessions on the victim cell")
	}

	apply := func(ls *liveSess, prng *rand.Rand) (stream.Update, error) {
		next := ls.seq + 1
		gains := map[int]float64{}
		for len(gains) < 2 {
			i := prng.Intn(len(ls.expected))
			if _, ok := gains[i]; ok {
				continue
			}
			gains[i] = ls.expected[i] * (1 + 0.1*prng.Float64())
		}
		upd, err := m.Apply(context.Background(), ls.sess.ID(), stream.Delta{Seq: next, Gains: gains})
		if err != nil {
			return upd, err
		}
		// Only commit client-side bookkeeping on success.
		ls.seq = next
		for i, g := range gains {
			ls.expected[i] = g
		}
		return upd, nil
	}

	rng := rand.New(rand.NewSource(13))
	for _, ls := range sessions {
		for k := 0; k < 3; k++ {
			if _, err := apply(ls, rng); err != nil {
				t.Fatalf("settling delta: %v", err)
			}
		}
	}
	if shipped := rep.Flush(); shipped == 0 {
		t.Fatal("flush shipped nothing before crash")
	}

	// Fire deltas concurrently with the crash.
	const inflight = 12
	gate := make(chan struct{})
	var gateOnce sync.Once
	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for si, ls := range sessions {
		wg.Add(1)
		go func(si int, ls *liveSess) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(40 + si)))
			for k := 0; k < inflight; k++ {
				u, err := apply(ls, prng)
				if err != nil {
					// A crash is allowed to fail an in-flight delta, but only
					// with a typed, retryable error — never a wrong answer.
					if !errors.Is(err, serve.ErrClosed) && !errors.Is(err, cluster.ErrUnknownCell) && !errors.Is(err, stream.ErrStaleSeq) {
						errs[si] = fmt.Errorf("untyped in-flight failure: %w", err)
					}
					gateOnce.Do(func() { close(gate) })
					return
				}
				if u.Seq != ls.seq {
					errs[si] = fmt.Errorf("update seq %d, client expects %d (silent divergence)", u.Seq, ls.seq)
					gateOnce.Do(func() { close(gate) })
					return
				}
				if k == inflight/2 {
					gateOnce.Do(func() { close(gate) })
				}
			}
			gateOnce.Do(func() { close(gate) })
		}(si, ls)
	}
	<-gate
	if _, err := p.CrashCell(context.Background(), victim); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", si, err)
		}
	}

	// Every session resumes after the crash: the authoritative seq matches
	// the client's committed bookkeeping, the next delta applies on the
	// survivor, and the re-solve is warm off the promoted replicas.
	for si, ls := range sessions {
		if got := ls.sess.Seq(); got != ls.seq {
			t.Fatalf("session %d seq %d, want %d (lost or phantom delta)", si, got, ls.seq)
		}
		u, err := apply(ls, rng)
		if err != nil {
			t.Fatalf("session %d post-crash delta: %v", si, err)
		}
		if u.Cell == victim {
			t.Fatalf("session %d post-crash delta served by dead cell", si)
		}
		if u.Response.Source == serve.SourceCold {
			t.Fatalf("session %d post-crash re-solve went cold despite replication", si)
		}
	}
}
