package ctrl

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func phaseIndex(spans []obs.Span, phase string) int {
	for i, s := range spans {
		if s.Phase == phase {
			return i
		}
	}
	return -1
}

// TestDrainTraceContinuity drains a populated cell under one trace and
// checks the whole lifecycle landed on it as ordered spans — the plan, the
// session suspension, the mass migration out of the drained cell, the
// membership removal, and the resume — with the structured drain log
// carrying the same trace ID.
func TestDrainTraceContinuity(t *testing.T) {
	r, _, p := testStack(t, 2)
	var logBuf bytes.Buffer
	p.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))

	const devices = 10
	for d := 0; d < devices; d++ {
		sys := testSystem(t, 5, int64(500+d))
		if _, _, err := r.Solve(context.Background(), cluster.CellAuto, devName(d), serve.Request{System: sys, Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}

	col := obs.NewCollector(obs.Config{SampleEvery: 1, SlowThreshold: -1})
	ctx, tr := col.StartTrace(context.Background())
	rep, err := p.DrainCell(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if rep.Handoff.Devices == 0 {
		t.Fatal("setup left cell 0 empty; drain moved nothing")
	}

	spans := tr.Spans()
	order := []string{
		obs.PhaseDrainPlan,
		obs.PhaseDrainSuspend,
		obs.PhaseMassPlan,
		obs.PhaseMassExtract,
		obs.PhaseMassInject,
		obs.PhaseDrainRemove,
		obs.PhaseDrainResume,
	}
	prev := -1
	for _, phase := range order {
		i := phaseIndex(spans, phase)
		if i < 0 {
			t.Fatalf("phase %q dropped from drain trace: %+v", phase, spans)
		}
		if i < prev {
			t.Fatalf("phase %q out of order in drain trace: %+v", phase, spans)
		}
		prev = i
	}
	if sp := spans[phaseIndex(spans, obs.PhaseDrainPlan)]; sp.Cell != 0 || sp.Value != int64(rep.Handoff.Devices) {
		t.Fatalf("drain_plan span %+v, want cell 0 with %d planned moves", sp, rep.Handoff.Devices)
	}
	if sp := spans[phaseIndex(spans, obs.PhaseMassExtract)]; sp.Cell != 0 {
		t.Fatalf("mass_extract span %+v, want source cell 0", sp)
	}
	if sp := spans[phaseIndex(spans, obs.PhaseMassInject)]; sp.Cell != 1 {
		t.Fatalf("mass_inject span %+v, want surviving cell 1", sp)
	}

	if !strings.Contains(logBuf.String(), tr.ID()) {
		t.Fatalf("drain log must carry the trace ID %s; got %q", tr.ID(), logBuf.String())
	}
	recent := col.Recent()
	if len(recent) != 1 || recent[0].TraceID != tr.ID() {
		t.Fatalf("drain trace not retained: %+v", recent)
	}
}
