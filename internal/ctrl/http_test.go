package ctrl

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/stream"
)

// testHTTPStack mounts the full production layering: control plane over
// the stream handler over the cluster handler.
func testHTTPStack(t *testing.T, cells int) (*cluster.Router, *stream.Manager, *Plane, *httptest.Server) {
	t.Helper()
	r, m, p := testStack(t, cells)
	ts := httptest.NewServer(p.Handler(stream.Handler(m)))
	t.Cleanup(ts.Close)
	return r, m, p, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPAddDrainLifecycle drives the elastic lifecycle over the wire:
// add a cell, solve through it, drain a cell, and watch membership,
// merged stats and metrics stay coherent the whole way.
func TestHTTPAddDrainLifecycle(t *testing.T) {
	r, _, _, ts := testHTTPStack(t, 2)

	// Add a cell.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/cells", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add cell: status %d: %s", resp.StatusCode, body)
	}
	var add AddCellReport
	if err := json.Unmarshal(body, &add); err != nil {
		t.Fatal(err)
	}
	if add.Cell != 2 || len(add.Cells) != 3 {
		t.Fatalf("add report %+v, want cell 2 of [0 1 2]", add)
	}

	// Solve a device explicitly in the new cell (the data plane passed
	// through the control handler still works).
	sreq := serve.SolveRequestJSON{System: serve.SystemToJSON(testSystem(t, 5, 600)), DeviceID: "ue-new"}
	sreq.Weights.W1, sreq.Weights.W2 = 0.5, 0.5
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/cells/2/solve", sreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve in new cell: status %d: %s", resp.StatusCode, body)
	}

	// Drain cell 0; its devices (if any) move, membership shrinks.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/cells/0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d: %s", resp.StatusCode, body)
	}
	var drain DrainReport
	if err := json.Unmarshal(body, &drain); err != nil {
		t.Fatal(err)
	}
	if drain.Cell != 0 || len(drain.Cells) != 2 || r.HasCell(0) {
		t.Fatalf("drain report %+v (HasCell(0)=%v)", drain, r.HasCell(0))
	}

	// Stats: one object, backend sections plus "ctrl" and "stream".
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d: %s", resp.StatusCode, body)
	}
	var stats struct {
		Aggregate cluster.Aggregate `json:"aggregate"`
		Stream    *stream.Snapshot  `json:"stream"`
		Ctrl      *Snapshot         `json:"ctrl"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ctrl == nil || stats.Stream == nil {
		t.Fatalf("stats missing ctrl/stream sections: %s", body)
	}
	if stats.Ctrl.CellsAdded != 1 || stats.Ctrl.CellsRemoved != 1 || stats.Ctrl.Generation != 2 {
		t.Fatalf("ctrl section %+v, want 1 added / 1 removed / generation 2", stats.Ctrl)
	}
	if stats.Aggregate.Generation != 2 {
		t.Fatalf("cluster aggregate generation %d, want 2", stats.Aggregate.Generation)
	}

	// Metrics: ctrl series appended after the data plane's.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"ctrl_cells 2",
		"ctrl_ring_generation 2",
		"ctrl_cells_added_total 1",
		"ctrl_cells_removed_total 1",
		"ctrl_drains_total 1",
		"flcluster_ring_generation 2",
		"flstream_active_sessions",
		"flserve_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPRebalanceEndpoints drives the planner and the executor over the
// wire after pinning a device away from its ring owner.
func TestHTTPRebalanceEndpoints(t *testing.T) {
	r, _, _, ts := testHTTPStack(t, 3)

	s := testSystem(t, 5, 610)
	const dev = "ue-planner"
	if _, _, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	owner := r.Route(dev)
	if _, err := r.Handoff(context.Background(), dev, owner, (owner+1)%3); err != nil {
		t.Fatal(err)
	}

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/rebalance/plan", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, body)
	}
	var plan RebalancePlan
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Moves != 1 {
		t.Fatalf("plan moves %d, want 1: %s", plan.Moves, body)
	}

	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/rebalance", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance: status %d: %s", resp.StatusCode, body)
	}
	var rep RebalanceReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Handoff.Devices != 1 {
		t.Fatalf("rebalance moved %d devices, want 1: %s", rep.Handoff.Devices, body)
	}
	if got := r.Route(dev); got != owner {
		t.Fatalf("device routes to %d after rebalance, want ring owner %d", got, owner)
	}
}

// TestHTTPUnknownCellTyped404 checks the control-plane endpoints answer
// unknown cells with the same typed body as the data plane.
func TestHTTPUnknownCellTyped404(t *testing.T) {
	_, _, _, ts := testHTTPStack(t, 2)

	resp, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/cells/9", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown: status %d, want 404 (%s)", resp.StatusCode, body)
	}
	var e cluster.ErrorJSON
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error != "unknown_cell" || e.Cell == nil || *e.Cell != 9 {
		t.Fatalf("body %s, want {\"error\":\"unknown_cell\",\"cell\":9}", body)
	}

	// Malformed IDs are 400s, not 404s.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/cells/nope", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
	}

	// Draining the last cell is a 400 with the reason.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/cells/0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first drain: status %d: %s", resp.StatusCode, body)
	}
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/cells/1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("last-cell drain: status %d, want 400 (%s)", resp.StatusCode, body)
	}
}
