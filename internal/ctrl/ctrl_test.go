package ctrl

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/serve"
	"repro/internal/stream"
)

func testSystem(t testing.TB, n int, seed int64) *fl.System {
	t.Helper()
	sc := experiments.Default()
	sc.N = n
	s, err := sc.Build(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func balanced() fl.Weights { return fl.Weights{W1: 0.5, W2: 0.5} }

// testStack builds router + stream manager + plane with cleanup.
func testStack(t testing.TB, cells int) (*cluster.Router, *stream.Manager, *Plane) {
	t.Helper()
	r := cluster.New(cluster.Config{Cells: cells, Cell: serve.Config{Workers: 2}})
	m := stream.NewManager(stream.NewClusterBackend(r), stream.Config{})
	t.Cleanup(func() {
		m.Close()
		r.Close()
	})
	return r, m, New(r, m)
}

func driftGains(s *fl.System, sigma float64, rng *rand.Rand) *fl.System {
	out := *s
	out.Devices = append([]fl.Device(nil), s.Devices...)
	for i := range out.Devices {
		out.Devices[i].Gain *= 1 + sigma*rng.Float64()
	}
	return &out
}

// TestAddCellBackfillsRemappedKeyspace grows the cluster by one cell and
// checks the lazy-backfill contract: only the devices the new ring arcs
// claim move, and their first post-add solve on the new cell is a cache
// hit (exact replay) off the migrated state, never a cold solve.
func TestAddCellBackfillsRemappedKeyspace(t *testing.T) {
	r, _, p := testStack(t, 3)

	// Hash-routed devices with cached state spread across the cells.
	const devices = 24
	sys := make([]*fl.System, devices)
	before := make([]int, devices)
	for d := 0; d < devices; d++ {
		sys[d] = testSystem(t, 5, int64(100+d))
		dev := devName(d)
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys[d], Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != serve.SourceCold {
			t.Fatalf("setup solve %d source %q", d, resp.Source)
		}
		before[d] = cell
	}

	rep, err := p.AddCell(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cell != 3 {
		t.Fatalf("new cell id %d, want 3", rep.Cell)
	}
	if rep.Generation != 1 || r.Generation() != 1 {
		t.Fatalf("generation %d after one change, want 1", rep.Generation)
	}

	var remapped, stayed int
	for d := 0; d < devices; d++ {
		dev := devName(d)
		after := r.Route(dev)
		if after != before[d] && after != rep.Cell {
			t.Fatalf("device %s moved %d -> %d: growth may only remap onto the new cell", dev, before[d], after)
		}
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys[d], Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if cell != after {
			t.Fatalf("device %s served by %d, routed to %d", dev, cell, after)
		}
		if resp.Source != serve.SourceCache {
			t.Fatalf("device %s post-add replay source %q (cell %d -> %d): backfill lost its cache entry", dev, resp.Source, before[d], after)
		}
		if after == rep.Cell {
			remapped++
		} else {
			stayed++
		}
	}
	if remapped == 0 {
		t.Fatal("no device remapped onto the new cell out of 24")
	}
	if rep.Backfill.Devices != remapped || rep.Backfill.MigratedResults != remapped {
		t.Fatalf("backfill report %+v, want %d devices with %d migrated results", rep.Backfill, remapped, remapped)
	}
	if got := p.Stats(); got.MovedDevices != int64(remapped) || got.CellsAdded != 1 {
		t.Fatalf("ctrl stats %+v", got)
	}
}

func devName(d int) string {
	return "ue-" + string(rune('a'+d%26)) + "-" + string(rune('0'+d/26))
}

// TestDrainCellMigratesStateAndMembership drains a cell without any
// streaming involved: every device routed there lands pinned on its
// post-removal ring owner with its cache entry, the cell leaves the
// membership, and draining the last cell is refused.
func TestDrainCellMigratesStateAndMembership(t *testing.T) {
	r, _, p := testStack(t, 2)

	const devices = 10
	sys := make([]*fl.System, devices)
	for d := 0; d < devices; d++ {
		sys[d] = testSystem(t, 5, int64(200+d))
		if _, _, err := r.Solve(context.Background(), cluster.CellAuto, devName(d), serve.Request{System: sys[d], Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := p.DrainCell(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.HasCell(0) || r.Cells() != 1 {
		t.Fatalf("cell 0 still a member after drain: cells %v", r.CellIDs())
	}
	if len(rep.Cells) != 1 || rep.Cells[0] != 1 {
		t.Fatalf("drain report cells %v, want [1]", rep.Cells)
	}
	for d := 0; d < devices; d++ {
		dev := devName(d)
		if got := r.Route(dev); got != 1 {
			t.Fatalf("device %s routes to %d after drain, want 1", dev, got)
		}
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys[d], Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if cell != 1 || resp.Source != serve.SourceCache {
			t.Fatalf("device %s post-drain replay: cell %d source %q, want 1/cache", dev, cell, resp.Source)
		}
	}

	// Draining the survivor is refused; the unknown cell is a typed error.
	if _, err := p.DrainCell(context.Background(), 1); !errors.Is(err, cluster.ErrLastCell) {
		t.Fatalf("last-cell drain err = %v, want ErrLastCell", err)
	}
	if _, err := p.DrainCell(context.Background(), 0); !errors.Is(err, cluster.ErrUnknownCell) {
		t.Fatalf("re-drain err = %v, want ErrUnknownCell", err)
	}
	var uc cluster.UnknownCellError
	if _, err := p.DrainCell(context.Background(), 7); !errors.As(err, &uc) || uc.Cell != 7 {
		t.Fatalf("drain 7 err = %v, want UnknownCellError{7}", err)
	}
}

// TestDrainWithLiveStreamSessions is the acceptance scenario: a cell is
// drained WHILE its stream sessions keep firing deltas. No delta may be
// lost, no ErrStaleSeq may surface, and the post-drain re-solves on the
// destination cell must ride the warm + dual-seeded path (0 Newton
// iterations) off the migrated state.
func TestDrainWithLiveStreamSessions(t *testing.T) {
	_, m, p := testStack(t, 2)

	// One session per device; keep only sessions that opened on the cell
	// we will drain, so every one of them migrates.
	type liveSess struct {
		dev      string
		sess     *stream.Session
		expected []fl.Device
		seq      uint64
	}
	const drain = 0
	var sessions []*liveSess
	for d := 0; len(sessions) < 3 && d < 40; d++ {
		base := testSystem(t, 10, int64(300+d))
		dev := devName(d)
		sess, upd, err := m.Open(context.Background(), dev, serve.Request{System: base, Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if upd.Cell != drain {
			continue
		}
		sessions = append(sessions, &liveSess{dev: dev, sess: sess, expected: append([]fl.Device(nil), base.Devices...)})
	}
	if len(sessions) < 3 {
		t.Fatal("could not place 3 sessions on the drain cell")
	}

	rng := rand.New(rand.NewSource(7))
	apply := func(ls *liveSess, prng *rand.Rand) (stream.Update, error) {
		ls.seq++
		gains := map[int]float64{}
		for len(gains) < 2 {
			i := prng.Intn(len(ls.expected))
			if _, ok := gains[i]; ok {
				continue
			}
			gains[i] = ls.expected[i].Gain * (1 + 0.1*prng.Float64())
		}
		for i, g := range gains {
			ls.expected[i].Gain = g
		}
		return m.Apply(context.Background(), ls.sess.ID(), stream.Delta{Seq: ls.seq, Gains: gains})
	}
	// Settle a few deltas so the drain has warm + dual state to migrate.
	for _, ls := range sessions {
		for k := 0; k < 3; k++ {
			if _, err := apply(ls, rng); err != nil {
				t.Fatalf("settling delta: %v", err)
			}
		}
	}

	// Fire deltas concurrently with the drain: one applier goroutine per
	// session, the drain in the main goroutine, triggered mid-stream.
	const inflight = 12
	gate := make(chan struct{})
	var gateOnce sync.Once
	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for si, ls := range sessions {
		wg.Add(1)
		go func(si int, ls *liveSess) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(40 + si)))
			for k := 0; k < inflight; k++ {
				u, err := apply(ls, prng)
				if err != nil {
					errs[si] = err
					gateOnce.Do(func() { close(gate) })
					return
				}
				if u.Seq != ls.seq {
					errs[si] = errors.New("update seq mismatch")
				}
				if k == inflight/2 {
					gateOnce.Do(func() { close(gate) })
				}
			}
			gateOnce.Do(func() { close(gate) })
		}(si, ls)
	}
	<-gate
	rep, err := p.DrainCell(context.Background(), drain)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			t.Fatalf("session %d in-flight delta failed: %v (ErrStaleSeq surfaced: %v)", si, err, errors.Is(err, stream.ErrStaleSeq))
		}
	}
	if rep.Handoff.MigratedWarm == 0 {
		t.Fatalf("drain migrated no warm state: %+v", rep.Handoff)
	}

	// No lost deltas: every session's seq and authoritative state match the
	// client-side bookkeeping exactly.
	for si, ls := range sessions {
		if got := ls.sess.Seq(); got != ls.seq {
			t.Fatalf("session %d seq %d, want %d (lost deltas)", si, got, ls.seq)
		}
		snap := ls.sess.SystemSnapshot()
		for i := range ls.expected {
			if snap.Devices[i].Gain != ls.expected[i].Gain {
				t.Fatalf("session %d device %d gain %g != expected %g (lost update)", si, i, snap.Devices[i].Gain, ls.expected[i].Gain)
			}
		}
	}

	// Post-drain deltas: served by the surviving cell, warm + dual-seeded,
	// zero Newton iterations — the migrated dual state is live.
	for si, ls := range sessions {
		for k := 0; k < 3; k++ {
			u, err := apply(ls, rng)
			if err != nil {
				t.Fatalf("session %d post-drain delta: %v", si, err)
			}
			if u.Cell != 1 {
				t.Fatalf("session %d post-drain delta served by cell %d, want 1", si, u.Cell)
			}
			if u.Response.Source != serve.SourceWarm && u.Response.Source != serve.SourceCache {
				t.Fatalf("session %d post-drain delta source %q, want warm or cache", si, u.Response.Source)
			}
			if u.Response.Source == serve.SourceWarm && !u.Response.DualSeeded {
				t.Fatalf("session %d post-drain warm solve not dual-seeded", si)
			}
			newton := 0
			for _, it := range u.Response.Result.Iterations {
				newton += it.NewtonIters
			}
			if newton != 0 {
				t.Fatalf("session %d post-drain delta ran %d Newton iterations, want 0", si, newton)
			}
		}
	}
	if got := p.Stats(); got.Drains != 1 || got.CellsRemoved != 1 {
		t.Fatalf("ctrl stats %+v, want 1 drain / 1 removal", got)
	}
}

// TestRebalanceReturnsPinnedDevicesToRing pins devices away from their
// ring owners via handoffs, then checks the planner counts them and the
// executed rebalance moves their state home and unpins them.
func TestRebalanceReturnsPinnedDevicesToRing(t *testing.T) {
	r, _, p := testStack(t, 3)

	const devices = 9
	sys := make([]*fl.System, devices)
	pinnedAway := 0
	for d := 0; d < devices; d++ {
		sys[d] = testSystem(t, 5, int64(400+d))
		dev := devName(d)
		if _, _, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys[d], Weights: balanced()}); err != nil {
			t.Fatal(err)
		}
		// Mobility: hand the device off to the next cell over.
		owner := r.Route(dev)
		to := (owner + 1) % 3
		if _, err := r.Handoff(context.Background(), dev, owner, to); err != nil {
			t.Fatal(err)
		}
		pinnedAway++
	}

	plan := p.RebalancePlan()
	if plan.Moves != pinnedAway {
		t.Fatalf("plan moves %d, want %d", plan.Moves, pinnedAway)
	}
	var in, out int
	for _, f := range plan.PerCell {
		in += f.In
		out += f.Out
	}
	if in != pinnedAway || out != pinnedAway {
		t.Fatalf("plan per-cell flows in %d out %d, want %d each (%+v)", in, out, pinnedAway, plan.PerCell)
	}

	rep, err := p.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Handoff.Devices != pinnedAway {
		t.Fatalf("rebalance moved %d devices, want %d", rep.Handoff.Devices, pinnedAway)
	}
	stats := r.Stats()
	if stats.Aggregate.PinnedDevices != 0 {
		t.Fatalf("%d devices still pinned after rebalance, want 0", stats.Aggregate.PinnedDevices)
	}
	for d := 0; d < devices; d++ {
		dev := devName(d)
		resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: sys[d], Weights: balanced()})
		if err != nil {
			t.Fatal(err)
		}
		if cell != r.Route(dev) || resp.Source != serve.SourceCache {
			t.Fatalf("device %s post-rebalance replay: cell %d source %q, want ring owner %d/cache", dev, cell, resp.Source, r.Route(dev))
		}
	}
	if p.RebalancePlan().Moves != 0 {
		t.Fatalf("plan not empty after rebalance: %+v", p.RebalancePlan())
	}
}

// TestEpochCheckedRoutingSurvivesRemoval pins a device to a cell, removes
// the cell without draining, and checks device-routed traffic falls back
// to the ring instead of failing against the vanished member.
func TestEpochCheckedRoutingSurvivesRemoval(t *testing.T) {
	r, _, _ := testStack(t, 3)
	s := testSystem(t, 5, 500)
	const dev = "ue-stale-pin"
	if _, _, err := r.Solve(context.Background(), 2, dev, serve.Request{System: s, Weights: balanced()}); err != nil {
		t.Fatal(err)
	}
	if got := r.Route(dev); got != 2 {
		t.Fatalf("pinned route %d, want 2", got)
	}
	if err := r.RemoveCell(2); err != nil {
		t.Fatal(err)
	}
	if r.HasCell(2) {
		t.Fatal("cell 2 still a member")
	}
	// Stale pin: the route falls back to the surviving ring.
	after := r.Route(dev)
	if after == 2 {
		t.Fatal("route still names the removed cell")
	}
	resp, cell, err := r.Solve(context.Background(), cluster.CellAuto, dev, serve.Request{System: s, Weights: balanced()})
	if err != nil {
		t.Fatal(err)
	}
	if cell != after {
		t.Fatalf("served by %d, routed to %d", cell, after)
	}
	if resp.Source == serve.SourceCache {
		t.Fatal("cache hit on an undrained removal: state should have died with the cell")
	}
	// Explicit requests to the vanished cell get the typed unknown-cell.
	if _, _, err := r.Solve(context.Background(), 2, dev, serve.Request{System: s, Weights: balanced()}); !errors.Is(err, cluster.ErrUnknownCell) {
		t.Fatalf("explicit solve on removed cell err = %v, want ErrUnknownCell", err)
	}
	// IDs are never reused: the next added cell gets a fresh one.
	if id := r.AddCell(); id != 3 {
		t.Fatalf("added cell id %d, want 3 (no reuse of removed 2)", id)
	}
}
