package ctrl

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// Handler mounts the control-plane API over next, the data-plane handler
// (typically the stream-wrapped cluster handler; any handler exposing
// GET /v1/stats as a JSON object and GET /metrics as a Prometheus text
// exposition composes):
//
//	POST   /v1/cells           add a cell (splice + backfill), report JSON
//	DELETE /v1/cells/{id}      drain + remove a cell, report JSON
//	POST   /v1/cells/{id}/crash  remove WITHOUT draining (failure
//	                           injection) and promote its replicas
//	GET    /v1/rebalance/plan  per-cell moved-key counts (dry run)
//	POST   /v1/rebalance       execute the rebalance
//	GET    /v1/stats           next's stats + "ctrl" section
//	GET    /metrics            next's exposition + ctrl_* series
//
// Every other route is delegated to next, so the wrapped handler is a
// drop-in replacement for it. Unknown cell IDs answer the cluster's
// uniform 404 {"error":"unknown_cell","cell":N} body.
func (p *Plane) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		rep, err := p.AddCell(r.Context())
		if err != nil {
			cluster.WriteError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("DELETE /v1/cells/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, cluster.ErrorJSON{Error: "malformed cell id " + strconv.Quote(r.PathValue("id"))})
			return
		}
		rep, err := p.DrainCell(r.Context(), id)
		if err != nil {
			cluster.WriteError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("POST /v1/cells/{id}/crash", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, cluster.ErrorJSON{Error: "malformed cell id " + strconv.Quote(r.PathValue("id"))})
			return
		}
		rep, err := p.CrashCell(r.Context(), id)
		if err != nil {
			cluster.WriteError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /v1/rebalance/plan", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, p.RebalancePlan())
	})
	mux.HandleFunc("POST /v1/rebalance", func(w http.ResponseWriter, r *http.Request) {
		rep, err := p.Rebalance(r.Context())
		if err != nil {
			cluster.WriteError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		p.handleStats(w, r, next)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		p.handleMetrics(w, r, next)
	})
	mux.Handle("/", next)
	return mux
}

// handleStats merges the data plane's stats object with the control
// plane's counters under a "ctrl" key, so /v1/stats stays one endpoint
// however many layers are mounted. The downstream handler is invoked
// in-process through a response recorder (generic over any next handler —
// unlike the stream layer, which can ask its backend for a stats payload
// directly, the control plane only knows next's HTTP face).
func (p *Plane) handleStats(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := httptest.NewRecorder()
	next.ServeHTTP(rec, r)
	var obj map[string]json.RawMessage
	if rec.Code != http.StatusOK || json.Unmarshal(rec.Body.Bytes(), &obj) != nil {
		replay(w, rec) // pass an unexpected downstream answer through untouched
		return
	}
	cj, err := json.Marshal(p.Stats())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, cluster.ErrorJSON{Error: err.Error()})
		return
	}
	obj["ctrl"] = cj
	if p.replicator != nil {
		if rj, err := json.Marshal(p.replicator.Stats()); err == nil {
			obj["replica"] = rj
		}
	}
	if p.snapshotter != nil {
		if sj, err := json.Marshal(p.snapshotter.Stats()); err == nil {
			obj["snapshot"] = sj
		}
	}
	writeJSON(w, http.StatusOK, obj)
}

// handleMetrics appends the ctrl_* series after the data plane's
// exposition.
func (p *Plane) handleMetrics(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := httptest.NewRecorder()
	next.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		replay(w, rec)
		return
	}
	w.Header().Set("Content-Type", serve.PromContentType)
	_, _ = w.Write(rec.Body.Bytes())
	pw := serve.NewPromWriter(w)
	p.Stats().WritePrometheus(pw)
	if p.replicator != nil {
		p.replicator.Stats().WritePrometheus(pw)
	}
	if p.snapshotter != nil {
		p.snapshotter.Stats().WritePrometheus(pw)
	}
}

// replay copies a recorded downstream answer onto the real writer.
func replay(w http.ResponseWriter, rec *httptest.ResponseRecorder) {
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(rec.Body.Bytes())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
