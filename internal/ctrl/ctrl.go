// Package ctrl is the runtime cluster control plane: the layer that turns
// the fixed-N cell cluster of internal/cluster into an elastic one.
//
// The data plane (cluster router + stream sessions) serves traffic; the
// control plane owns membership and bulk state migration:
//
//   - AddCell spins up a fresh cell, splices it into the consistent-hash
//     ring under a new generation, and back-fills only the remapped
//     keyspace: the ~1/(N+1) of tracked, hash-routed devices whose ring
//     owner became the new cell get their cached solutions, warm starts
//     and dual state moved over in one batched MassHandoff — nobody else
//     is touched.
//   - DrainCell evacuates a cell before removal: the stream sessions of
//     every affected device are suspended (deltas keep applying in
//     sequence order and queue — no ErrStaleSeq ever reaches a client),
//     the cell's cache/warm/dual state and device pins migrate to each
//     device's post-removal ring owner in one batched MassHandoff, the
//     cell leaves the ring (a new generation; racing requests re-resolve
//     via the router's epoch check), and the sessions resume — their
//     queued deltas coalesce into one warm, dual-seeded re-solve on the
//     destination cell.
//   - The rebalance planner reports, per cell, how many devices' cached
//     state sits away from its current ring owner (pins drift during
//     mobility); Rebalance executes the plan as a batched migration and
//     returns the devices to hash routing.
//
// The control plane exposes its own HTTP endpoints (POST /v1/cells,
// DELETE /v1/cells/{id}, GET /v1/rebalance/plan, POST /v1/rebalance)
// layered over the data-plane handler, a "ctrl" section in GET /v1/stats
// and ctrl_* Prometheus series in GET /metrics.
package ctrl

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/stream"
)

// Plane is the control plane over one cluster router and (optionally) the
// stream session manager mounted on it. All operations are safe for
// concurrent use; membership operations serialize among themselves but
// never stop the data plane — traffic keeps flowing while cells join and
// leave.
type Plane struct {
	router *cluster.Router
	mgr    *stream.Manager // nil when no streaming layer is mounted

	// mu serializes membership operations (add / drain / rebalance): two
	// concurrent drains planning against the same snapshot would migrate
	// against stale rings.
	mu sync.Mutex
	// lastSuspended is the session count of the most recent suspend, read
	// into the operation's report; guarded by mu.
	lastSuspended int

	// events receives crash/promotion notifications (the health evaluator
	// files them in its alert ring); replicator and snapshotter are the
	// durability layer's handles, surfaced via stats/metrics and used by
	// CrashCell. All three are set before serving, nil when absent.
	events      EventRecorder
	replicator  *replica.Replicator
	snapshotter *replica.Snapshotter

	cellsAdded        atomic.Int64
	cellsRemoved      atomic.Int64
	crashes           atomic.Int64
	promotedWarm      atomic.Int64
	drains            atomic.Int64
	rebalances        atomic.Int64
	movedDevices      atomic.Int64
	migratedResults   atomic.Int64
	migratedWarm      atomic.Int64
	suspendedSessions atomic.Int64
	autoscale         autoscaleCounters

	// log receives structured membership-change events (set before the
	// plane serves traffic; nil falls back to slog.Default()).
	log *slog.Logger

	// ops retains the most recent completed control operations for the ops
	// dashboard and the "ctrl" stats section.
	ops *obs.Ring[OpJSON]
}

// opsRing is how many completed control operations Snapshot.RecentOps
// retains.
const opsRing = 64

// New builds a control plane over the router; mgr may be nil when no
// streaming layer is mounted (drains then skip session suspension).
func New(r *cluster.Router, mgr *stream.Manager) *Plane {
	return &Plane{router: r, mgr: mgr, ops: obs.NewRing[OpJSON](opsRing)}
}

// OpJSON is one completed control-plane operation in the recent-ops ring:
// what ran, against which cell, what it moved, and the trace that explains
// it.
type OpJSON struct {
	// Op is the operation kind: "add", "drain", "crash", "rebalance".
	Op string `json:"op"`
	// Cell is the cell operated on (absent for rebalance).
	Cell int `json:"cell,omitempty"`
	// Generation is the ring generation after the operation.
	Generation uint64 `json:"generation"`
	// Moved counts devices whose state migrated; Suspended the stream
	// sessions suspended around the migration.
	Moved     int `json:"moved_devices"`
	Suspended int `json:"suspended_sessions,omitempty"`
	// DurationMS is the operation's wall time.
	DurationMS float64 `json:"duration_ms"`
	// TraceID links to the operation's lifecycle trace, when traced.
	TraceID string `json:"trace_id,omitempty"`
	// Time is when the operation completed.
	Time time.Time `json:"time"`
}

// recordOp appends a completed operation to the recent-ops ring.
func (p *Plane) recordOp(op OpJSON) {
	op.Time = time.Now()
	p.ops.Append(op)
}

// Router returns the governed data-plane router.
func (p *Plane) Router() *cluster.Router { return p.router }

// SetLogger routes the plane's structured membership-change events (cell
// added, drain, rebalance — all carrying the operation's trace ID) to l.
// Call before serving; nil keeps slog.Default().
func (p *Plane) SetLogger(l *slog.Logger) { p.log = l }

func (p *Plane) logger() *slog.Logger {
	if p.log != nil {
		return p.log
	}
	return slog.Default()
}

// AddCellReport is the outcome of one cell addition.
type AddCellReport struct {
	// Cell is the new cell's ID (stable, never reused).
	Cell int `json:"cell"`
	// Generation is the ring generation installed by the splice.
	Generation uint64 `json:"generation"`
	// Cells is the post-add membership.
	Cells []int `json:"cells"`
	// Backfill is the batched migration that moved the remapped keyspace
	// (the tracked, hash-routed devices whose ring owner became the new
	// cell — ~1/(N+1) of them) onto the new cell. Devices pinned elsewhere
	// by mobility are deliberately left alone.
	Backfill cluster.MassHandoffReport `json:"backfill"`
}

// AddCell grows the cluster by one cell and back-fills the remapped
// keyspace. Only the devices the new ring arcs claim move — their cached
// solutions, warm-start allocations and SP2 dual state land on the new
// cell in one batched pass, so the first post-add solve of a remapped
// device is warm or cached, not cold. Their stream sessions (if any) are
// suspended around the move, so in-flight deltas queue and coalesce
// instead of racing the migration. ctx carries the operation's lifecycle
// trace, if any; the backfill migration records spans against it.
func (p *Plane) AddCell(ctx context.Context) (AddCellReport, error) {
	tr := obs.FromContext(ctx)
	p.mu.Lock()
	defer p.mu.Unlock()
	began := time.Now()
	id := p.router.AddCell()
	p.cellsAdded.Add(1)
	rep := AddCellReport{
		Cell:       id,
		Generation: p.router.Generation(),
		Cells:      p.router.CellIDs(),
	}
	// The remapped keyspace: unpinned devices whose ring owner is now the
	// new cell but whose state still lives on the old one.
	misplaced, _ := p.router.Misplaced(false)
	var moves []cluster.Move
	for _, mv := range misplaced {
		if mv.To == id {
			moves = append(moves, mv)
		}
	}
	defer func() {
		p.recordOp(OpJSON{
			Op: "add", Cell: id, Generation: rep.Generation,
			Moved: rep.Backfill.Devices, Suspended: p.lastSuspended,
			DurationMS: float64(time.Since(began).Microseconds()) / 1e3,
			TraceID:    tr.ID(),
		})
		p.logger().Info("cell added",
			"trace_id", tr.ID(), "cell", id, "generation", rep.Generation,
			"backfilled_devices", rep.Backfill.Devices)
	}()
	if len(moves) == 0 {
		return rep, nil
	}
	resume := p.suspendSessions(moves)
	defer resume()
	// pin=false: these devices follow the ring (that is why they moved);
	// pinning them would glue them to this cell across future changes.
	var err error
	rep.Backfill, err = p.router.MassHandoff(ctx, moves, false)
	if err != nil {
		return rep, fmt.Errorf("backfilling cell %d: %w", id, err)
	}
	p.countMigration(rep.Backfill)
	return rep, nil
}

// DrainReport is the outcome of one cell drain + removal.
type DrainReport struct {
	// Cell is the removed cell's ID.
	Cell int `json:"cell"`
	// Generation is the ring generation installed by the removal.
	Generation uint64 `json:"generation"`
	// Cells is the post-removal membership.
	Cells []int `json:"cells"`
	// SuspendedSessions is how many live stream sessions were suspended
	// (deltas queued and coalesced) around the migration.
	SuspendedSessions int `json:"suspended_sessions"`
	// Handoff is the batched migration that evacuated the cell.
	Handoff cluster.MassHandoffReport `json:"mass_handoff"`
}

// DrainCell evacuates and removes one cell. Every device currently routed
// to it migrates — cached solutions, warm allocations, dual state and the
// routing pin — to its owner under the post-removal ring, in one batched
// MassHandoff (one routing-lock acquisition, one bulk state transfer per
// cell). Stream sessions of affected devices are suspended first: their
// in-flight deltas apply and queue in sequence order, and after the move
// they coalesce into a single re-solve on the destination cell, which is
// warm and dual-seeded off the migrated state. Draining the last cell is
// refused.
//
// ctx carries the operation's lifecycle trace, if any: the plan, session
// suspension, migration, removal and resume stages each record a span, so
// one trace explains where a drain's time went. Drains are logged at warn
// level (they are deliberate disruptions) with the trace ID.
func (p *Plane) DrainCell(ctx context.Context, id int) (DrainReport, error) {
	tr := obs.FromContext(ctx)
	p.mu.Lock()
	defer p.mu.Unlock()
	opBegan := time.Now()
	began := opBegan
	moves, err := p.router.PlanDrain(id)
	if err != nil {
		return DrainReport{}, err
	}
	tr.RecordAttr(obs.PhaseDrainPlan, began, obs.Attr{Cell: id, Value: int64(len(moves))})
	rep := DrainReport{Cell: id}
	began = time.Now()
	resume := p.suspendSessionsOn(id, moves)
	rep.SuspendedSessions = p.lastSuspended
	tr.RecordAttr(obs.PhaseDrainSuspend, began, obs.Attr{Cell: id, Value: int64(rep.SuspendedSessions)})
	defer func() {
		rb := time.Now()
		resume()
		tr.RecordAttr(obs.PhaseDrainResume, rb, obs.Attr{Cell: obs.CellNone, Value: int64(rep.SuspendedSessions)})
	}()
	rep.Handoff, err = p.router.MassHandoff(ctx, moves, true)
	if err != nil {
		return DrainReport{}, fmt.Errorf("draining cell %d: %w", id, err)
	}
	p.countMigration(rep.Handoff)
	began = time.Now()
	if err := p.router.RemoveCell(id); err != nil {
		return DrainReport{}, err
	}
	tr.RecordAttr(obs.PhaseDrainRemove, began, obs.Attr{Cell: id})
	p.cellsRemoved.Add(1)
	p.drains.Add(1)
	rep.Generation = p.router.Generation()
	rep.Cells = p.router.CellIDs()
	p.recordOp(OpJSON{
		Op: "drain", Cell: id, Generation: rep.Generation,
		Moved: rep.Handoff.Devices, Suspended: rep.SuspendedSessions,
		DurationMS: float64(time.Since(opBegan).Microseconds()) / 1e3,
		TraceID:    tr.ID(),
	})
	p.logger().Warn("cell drained",
		"trace_id", tr.ID(), "cell", id, "generation", rep.Generation,
		"moved_devices", rep.Handoff.Devices,
		"migrated_results", rep.Handoff.MigratedResults,
		"suspended_sessions", rep.SuspendedSessions)
	return rep, nil
}

// RebalancePlan is the dry-run view of a rebalance: how much cached state
// sits away from its ring owner, per cell.
type RebalancePlan struct {
	// Generation is the ring generation the plan was computed against.
	Generation uint64 `json:"generation"`
	// Moves is how many devices would migrate.
	Moves int `json:"moves"`
	// PerCell counts the moved keys per cell: Out keys leave the cell
	// (their state lives there but the ring owns them elsewhere), In keys
	// arrive (the cell is their ring owner).
	PerCell map[int]cluster.CellFlow `json:"per_cell"`
}

// RebalancePlan reports what POST /v1/rebalance would do right now:
// every tracked device (pinned ones included — pins drift during
// mobility) whose cached state is not already on its ring owner, with the
// instance flow counted per cell from where each record actually sits.
// No state moves.
func (p *Plane) RebalancePlan() RebalancePlan {
	moves, flows := p.router.Misplaced(true)
	return RebalancePlan{
		Generation: p.router.Generation(),
		Moves:      len(moves),
		PerCell:    flows,
	}
}

// RebalanceReport is the outcome of one executed rebalance.
type RebalanceReport struct {
	// Generation is the ring generation the rebalance ran under.
	Generation uint64 `json:"generation"`
	// SuspendedSessions is how many live stream sessions were suspended
	// around the migration.
	SuspendedSessions int `json:"suspended_sessions"`
	// Handoff is the batched migration.
	Handoff cluster.MassHandoffReport `json:"mass_handoff"`
}

// Rebalance executes the current plan: misplaced devices' cached state
// moves home to each one's ring owner in one batched MassHandoff, and the
// devices return to hash routing (pins cleared) so future ring changes
// keep moving only the remapped arcs. ctx carries the operation's
// lifecycle trace, if any; the event is warn-logged with the trace ID.
func (p *Plane) Rebalance(ctx context.Context) (RebalanceReport, error) {
	tr := obs.FromContext(ctx)
	p.mu.Lock()
	defer p.mu.Unlock()
	opBegan := time.Now()
	moves, _ := p.router.Misplaced(true)
	rep := RebalanceReport{Generation: p.router.Generation()}
	if len(moves) == 0 {
		return rep, nil
	}
	resume := p.suspendSessions(moves)
	rep.SuspendedSessions = p.lastSuspended
	defer resume()
	var err error
	rep.Handoff, err = p.router.MassHandoff(ctx, moves, false)
	if err != nil {
		return RebalanceReport{}, fmt.Errorf("rebalancing: %w", err)
	}
	p.countMigration(rep.Handoff)
	p.rebalances.Add(1)
	p.recordOp(OpJSON{
		Op: "rebalance", Generation: rep.Generation,
		Moved: rep.Handoff.Devices, Suspended: rep.SuspendedSessions,
		DurationMS: float64(time.Since(opBegan).Microseconds()) / 1e3,
		TraceID:    tr.ID(),
	})
	p.logger().Warn("rebalanced",
		"trace_id", tr.ID(), "generation", rep.Generation,
		"moved_devices", rep.Handoff.Devices,
		"migrated_results", rep.Handoff.MigratedResults,
		"suspended_sessions", rep.SuspendedSessions)
	return rep, nil
}

// suspendSessions suspends the stream sessions of every device in moves
// and returns the matching resume. A nil manager makes both no-ops.
func (p *Plane) suspendSessions(moves []cluster.Move) func() {
	devs := make(map[string]bool, len(moves))
	for _, mv := range moves {
		devs[mv.DeviceID] = true
	}
	return p.suspendDeviceSet(devs)
}

// suspendSessionsOn is suspendSessions plus the drain special case: a
// session's device may route to the draining cell without appearing in
// moves (its router state fell out of the bounded device table), and its
// deltas must still not race the removal.
func (p *Plane) suspendSessionsOn(cell int, moves []cluster.Move) func() {
	devs := make(map[string]bool, len(moves))
	for _, mv := range moves {
		devs[mv.DeviceID] = true
	}
	if p.mgr != nil {
		for _, dev := range p.mgr.SessionDevices() {
			if p.router.Route(dev) == cell {
				devs[dev] = true
			}
		}
	}
	return p.suspendDeviceSet(devs)
}

func (p *Plane) suspendDeviceSet(devs map[string]bool) func() {
	p.lastSuspended = 0
	if p.mgr == nil || len(devs) == 0 {
		return func() {}
	}
	n := p.mgr.SuspendDevices(devs)
	p.lastSuspended = n
	p.suspendedSessions.Add(int64(n))
	return func() { p.mgr.ResumeDevices(devs) }
}

func (p *Plane) countMigration(rep cluster.MassHandoffReport) {
	p.movedDevices.Add(int64(rep.Devices))
	p.migratedResults.Add(int64(rep.MigratedResults))
	p.migratedWarm.Add(int64(rep.MigratedWarm))
}

// Snapshot is the control plane's counter view, the "ctrl" section of
// GET /v1/stats.
type Snapshot struct {
	// Cells is the live membership; Generation the current ring epoch.
	Cells      []int  `json:"cells"`
	Generation uint64 `json:"generation"`
	// CellsAdded/CellsRemoved/Drains/Rebalances count control operations.
	CellsAdded   int64 `json:"cells_added"`
	CellsRemoved int64 `json:"cells_removed"`
	Drains       int64 `json:"drains"`
	Rebalances   int64 `json:"rebalances"`
	// Crashes counts drain-less removals (failure injections);
	// PromotedWarm the warm seeds their promotions landed on successors.
	Crashes      int64 `json:"crashes"`
	PromotedWarm int64 `json:"promoted_warm_seeds"`
	// MovedDevices counts devices whose state migrated in control-plane
	// batches; MigratedResults/MigratedWarm what moved with them.
	MovedDevices    int64 `json:"moved_devices"`
	MigratedResults int64 `json:"migrated_results"`
	MigratedWarm    int64 `json:"migrated_warm_starts"`
	// SuspendedSessions counts stream sessions suspended around control-
	// plane migrations (their deltas queued + coalesced, never failed).
	SuspendedSessions int64 `json:"suspended_sessions"`
	// AutoscaleAdds/AutoscaleDrains are the subset of adds/removals that
	// the health layer's autoscaler initiated (vs operator API calls).
	AutoscaleAdds   int64 `json:"autoscale_adds"`
	AutoscaleDrains int64 `json:"autoscale_drains"`
	// RecentOps lists the most recent completed control operations, newest
	// first, each with its trace ID.
	RecentOps []OpJSON `json:"recent_ops,omitempty"`
}

// Stats snapshots the control plane.
func (p *Plane) Stats() Snapshot {
	return Snapshot{
		Cells:             p.router.CellIDs(),
		Generation:        p.router.Generation(),
		CellsAdded:        p.cellsAdded.Load(),
		CellsRemoved:      p.cellsRemoved.Load(),
		Drains:            p.drains.Load(),
		Rebalances:        p.rebalances.Load(),
		Crashes:           p.crashes.Load(),
		PromotedWarm:      p.promotedWarm.Load(),
		MovedDevices:      p.movedDevices.Load(),
		MigratedResults:   p.migratedResults.Load(),
		MigratedWarm:      p.migratedWarm.Load(),
		SuspendedSessions: p.suspendedSessions.Load(),
		AutoscaleAdds:     p.autoscale.adds.Load(),
		AutoscaleDrains:   p.autoscale.drains.Load(),
		RecentOps:         p.ops.Snapshot(),
	}
}

// WritePrometheus emits the ctrl_* series.
func (s Snapshot) WritePrometheus(pw *serve.PromWriter) {
	pw.Gauge("ctrl_cells", "Live cells in the cluster.", "", float64(len(s.Cells)))
	pw.Gauge("ctrl_ring_generation", "Current consistent-hash ring generation.", "", float64(s.Generation))
	pw.Counter("ctrl_cells_added_total", "Cells added at runtime.", "", float64(s.CellsAdded))
	pw.Counter("ctrl_cells_removed_total", "Cells drained and removed at runtime.", "", float64(s.CellsRemoved))
	pw.Counter("ctrl_drains_total", "Completed cell drains.", "", float64(s.Drains))
	pw.Counter("ctrl_rebalances_total", "Executed rebalances.", "", float64(s.Rebalances))
	pw.Counter("ctrl_crashes_total", "Drain-less cell removals (failure injections).", "", float64(s.Crashes))
	pw.Counter("ctrl_promoted_warm_seeds_total", "Warm seeds landed on successors by crash promotions.", "", float64(s.PromotedWarm))
	pw.Counter("ctrl_moved_devices_total", "Devices migrated by control-plane batches.", "", float64(s.MovedDevices))
	pw.Counter("ctrl_migrated_results_total", "Cache entries migrated by control-plane batches.", "", float64(s.MigratedResults))
	pw.Counter("ctrl_migrated_warm_starts_total", "Warm-start allocations migrated by control-plane batches.", "", float64(s.MigratedWarm))
	pw.Counter("ctrl_suspended_sessions_total", "Stream sessions suspended around control-plane migrations.", "", float64(s.SuspendedSessions))
	pw.Counter("ctrl_autoscale_adds_total", "Cells added by the autoscaler.", "", float64(s.AutoscaleAdds))
	pw.Counter("ctrl_autoscale_drains_total", "Cells drained by the autoscaler.", "", float64(s.AutoscaleDrains))
}
