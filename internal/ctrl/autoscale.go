package ctrl

import (
	"context"
	"sync/atomic"
)

// Autoscale counters live on the Plane so operator-initiated membership
// changes (the HTTP API) and autoscaler-initiated ones stay separable in
// /v1/stats and /metrics.
type autoscaleCounters struct {
	adds   atomic.Int64
	drains atomic.Int64
}

// AutoscaleAddCell is AddCell invoked by the health layer's autoscaler
// rather than an operator. Same splice + backfill; the log line and the
// ctrl_autoscale_* counters carry the origin.
func (p *Plane) AutoscaleAddCell(ctx context.Context) (AddCellReport, error) {
	rep, err := p.AddCell(ctx)
	if err != nil {
		return rep, err
	}
	p.autoscale.adds.Add(1)
	p.logger().Info("autoscale add", "cell", rep.Cell, "generation", rep.Generation, "cells", len(rep.Cells))
	return rep, nil
}

// AutoscaleDrainCell is DrainCell invoked by the autoscaler.
func (p *Plane) AutoscaleDrainCell(ctx context.Context, id int) (DrainReport, error) {
	rep, err := p.DrainCell(ctx, id)
	if err != nil {
		return rep, err
	}
	p.autoscale.drains.Add(1)
	p.logger().Info("autoscale drain", "cell", rep.Cell, "generation", rep.Generation, "cells", len(rep.Cells))
	return rep, nil
}

// Actuator adapts the plane's autoscale entry points to the health
// layer's Actuator interface (satisfied structurally — ctrl stays
// ignorant of the health package).
type Actuator struct{ Plane *Plane }

// ScaleUp adds a cell through the autoscale path and returns its ID.
func (a Actuator) ScaleUp(ctx context.Context) (int, error) {
	rep, err := a.Plane.AutoscaleAddCell(ctx)
	return rep.Cell, err
}

// ScaleDown drains and removes cell through the autoscale path.
func (a Actuator) ScaleDown(ctx context.Context, cell int) error {
	_, err := a.Plane.AutoscaleDrainCell(ctx, cell)
	return err
}
