package ctrl

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/replica"
)

// EventRecorder receives control-plane lifecycle events (cell crashes,
// replica promotions). The health evaluator implements it structurally —
// ctrl stays free of a health import, mirroring the autoscale Actuator
// pattern in the other direction.
type EventRecorder interface {
	// RecordEvent files one event: kind is a short slug ("crash",
	// "promotion"), cell the affected cell, message a human-readable
	// summary for the alert ring.
	RecordEvent(kind string, cell int, message string)
}

// SetEvents routes crash/recovery events to rec (typically the health
// evaluator's alert ring). Call before serving; nil disables.
func (p *Plane) SetEvents(rec EventRecorder) { p.events = rec }

// SetReplicator attaches the ring-successor replicator: CrashCell will
// promote the crashed cell's replicas, and /v1/stats and /metrics grow a
// "replica" section / replica_* series. Call before serving; nil detaches.
func (p *Plane) SetReplicator(rep *replica.Replicator) { p.replicator = rep }

// SetSnapshotter attaches the process snapshotter so /v1/stats and
// /metrics expose its "snapshot" section / snapshot_* series. Call before
// serving; nil detaches.
func (p *Plane) SetSnapshotter(s *replica.Snapshotter) { p.snapshotter = s }

// CrashReport is the outcome of one simulated crash removal.
type CrashReport struct {
	// Cell is the crashed cell's ID.
	Cell int `json:"cell"`
	// Generation is the ring generation installed by the removal.
	Generation uint64 `json:"generation"`
	// Cells is the post-crash membership.
	Cells []int `json:"cells"`
	// Promotion is what the replicator salvaged: the crashed cell's
	// replicated warm seeds, injected into each device's post-crash ring
	// owner. Zero-valued when no replicator is attached.
	Promotion replica.PromoteReport `json:"promotion"`
}

// CrashCell removes a cell WITHOUT draining it — the failure-injection
// twin of DrainCell. Nothing migrates: the cell leaves the ring under a
// new generation and closes, its cache/warm/dual state dying with it,
// exactly as if the process segfaulted. In-flight solves on the cell fail
// with ErrClosed and re-resolve onto the post-crash ring owner via the
// router's epoch check; stale pins self-heal the same way on the next
// request. If a replicator is attached, the dead cell's replicated warm
// state is then promoted into the successors, so the crashed keyspace
// degrades to warm-but-not-cached instead of cold. Removing the last
// cell is refused.
func (p *Plane) CrashCell(ctx context.Context, id int) (CrashReport, error) {
	tr := obs.FromContext(ctx)
	p.mu.Lock()
	defer p.mu.Unlock()
	opBegan := time.Now()
	began := opBegan
	if err := p.router.RemoveCell(id); err != nil {
		return CrashReport{}, err
	}
	tr.RecordAttr(obs.PhaseCrashRemove, began, obs.Attr{Cell: id})
	p.cellsRemoved.Add(1)
	p.crashes.Add(1)
	rep := CrashReport{
		Cell:       id,
		Generation: p.router.Generation(),
		Cells:      p.router.CellIDs(),
	}
	if p.events != nil {
		p.events.RecordEvent("crash", id, fmt.Sprintf(
			"cell %d crashed (drain-less removal), generation %d, %d cells remain",
			id, rep.Generation, len(rep.Cells)))
	}
	if p.replicator != nil {
		began = time.Now()
		rep.Promotion = p.replicator.Promote(id)
		tr.RecordAttr(obs.PhaseCrashPromote, began,
			obs.Attr{Cell: id, Value: int64(rep.Promotion.WarmSeeds)})
		p.promotedWarm.Add(int64(rep.Promotion.WarmSeeds))
		if p.events != nil && rep.Promotion.Devices > 0 {
			p.events.RecordEvent("promotion", id, fmt.Sprintf(
				"promoted replicas of crashed cell %d: %d devices, %d warm seeds, %d dirty lost, %.3fs max lag",
				id, rep.Promotion.Devices, rep.Promotion.WarmSeeds,
				rep.Promotion.LostDirty, rep.Promotion.MaxLagSeconds))
		}
	}
	p.recordOp(OpJSON{
		Op: "crash", Cell: id, Generation: rep.Generation,
		Moved:      rep.Promotion.Devices,
		DurationMS: float64(time.Since(opBegan).Microseconds()) / 1e3,
		TraceID:    tr.ID(),
	})
	p.logger().Warn("cell crashed (no drain)",
		"trace_id", tr.ID(), "cell", id, "generation", rep.Generation,
		"promoted_devices", rep.Promotion.Devices,
		"promoted_warm_seeds", rep.Promotion.WarmSeeds,
		"lost_dirty_devices", rep.Promotion.LostDirty,
		"replica_lag_seconds", rep.Promotion.MaxLagSeconds)
	return rep, nil
}
