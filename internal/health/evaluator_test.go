package health

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeSource serves whatever samples the test installs.
type fakeSource struct {
	mu      sync.Mutex
	samples []CellSample
}

func (f *fakeSource) set(samples ...CellSample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.samples = samples
}

func (f *fakeSource) Sample() []CellSample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]CellSample(nil), f.samples...)
}

// fakeActuator records scale actions without a real cluster.
type fakeActuator struct {
	mu     sync.Mutex
	ups    int
	downs  []int
	nextID int
	upErr  error
}

func (a *fakeActuator) ScaleUp(context.Context) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.upErr != nil {
		return 0, a.upErr
	}
	a.ups++
	a.nextID++
	return a.nextID, nil
}

func (a *fakeActuator) ScaleDown(_ context.Context, cell int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.downs = append(a.downs, cell)
	return nil
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func breachingSample(cell int, requests int64) CellSample {
	return CellSample{Cell: cell, Requests: requests, QueueWaitP99: 0.200}
}

func calmSample(cell int, requests int64) CellSample {
	return CellSample{Cell: cell, Requests: requests, QueueWaitP99: 0.001}
}

func alertsOfKind(e *Evaluator, kind AlertKind) []Alert {
	var out []Alert
	for _, a := range e.Alerts() {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

func TestMembershipAlerts(t *testing.T) {
	src := &fakeSource{}
	e := New(Config{Source: src, Logger: quietLogger()})
	now := time.Unix(1000, 0)

	e.Observe(now, []CellSample{calmSample(0, 0), calmSample(1, 0)})
	if joins := alertsOfKind(e, KindMembership); len(joins) != 2 {
		t.Fatalf("want 2 join alerts, got %+v", joins)
	}
	e.Observe(now.Add(time.Second), []CellSample{calmSample(0, 0)})
	events := alertsOfKind(e, KindMembership)
	if len(events) != 3 || !strings.Contains(events[0].Message, "cell 1 left") {
		t.Fatalf("want a 'cell 1 left' alert, got %+v", events)
	}
	h := e.Health()
	if len(h.Cells) != 1 || h.Cells[0].Cell != 0 {
		t.Fatalf("departed cell still in health: %+v", h.Cells)
	}
}

func TestSLOTransitionAlerts(t *testing.T) {
	e := New(Config{
		Source: &fakeSource{},
		// One-bucket window so recovery tracks the latest tick instead of
		// waiting for the breach sample to roll out of a long window.
		WindowTicks: 1,
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}},
		Logger:      quietLogger(),
	})
	now := time.Unix(1000, 0)
	req := int64(0)
	step := func(s CellSample) {
		now = now.Add(time.Second)
		e.Observe(now, []CellSample{s})
	}
	step(calmSample(0, req)) // seed
	for i := 0; i < 4; i++ {
		req += 50
		step(breachingSample(0, req))
	}
	slo := alertsOfKind(e, KindSLO)
	if len(slo) != 2 {
		t.Fatalf("want ok→degraded and degraded→breached alerts, got %+v", slo)
	}
	if slo[0].To != StateBreached || slo[1].To != StateDegraded {
		t.Fatalf("alert order (newest first) wrong: %+v", slo)
	}
	h := e.Health()
	if h.Status != StateBreached || h.Cells[0].State != StateBreached {
		t.Fatalf("health status %s / cell state %s, want breached", h.Status, h.Cells[0].State)
	}
	// Recovery emits a breached→ok alert.
	for i := 0; i < 3; i++ {
		req += 50
		step(calmSample(0, req))
	}
	slo = alertsOfKind(e, KindSLO)
	if len(slo) != 3 || slo[0].To != StateOK {
		t.Fatalf("want a recovery alert newest, got %+v", slo)
	}
}

func TestAutoscaleScaleUpOnSustainedBreach(t *testing.T) {
	act := &fakeActuator{nextID: 0}
	e := New(Config{
		Source:      &fakeSource{},
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}},
		BreachAfter: 1,
		Logger:      quietLogger(),
		Advisor:     AdvisorConfig{ScaleUpAfter: 2, Cooldown: time.Millisecond, MaxCells: 8},
		Actuator:    act,
	})
	now := time.Unix(1000, 0)
	req := int64(0)
	var plan Plan
	for i := 0; i < 6; i++ {
		now = now.Add(time.Second)
		req += 50
		plan = e.Observe(now, []CellSample{breachingSample(0, req)})
		if plan.Action != ActionNone {
			break
		}
	}
	if plan.Action != ActionScaleUp {
		t.Fatalf("sustained breach never produced a scale-up plan: %+v", plan)
	}
	// Observe only advises; Tick enacts. Drive enact through the public
	// path by replaying the plan via Tick with the same breaching source.
	src := e.cfg.Source.(*fakeSource)
	req += 50
	src.set(breachingSample(0, req))
	e.Tick(context.Background())
	act.mu.Lock()
	ups := act.ups
	act.mu.Unlock()
	if ups != 1 {
		t.Fatalf("actuator scale-ups %d, want 1", ups)
	}
	auto := alertsOfKind(e, KindAutoscale)
	if len(auto) != 1 || !strings.Contains(auto[0].Message, "added cell") {
		t.Fatalf("want one autoscale alert, got %+v", auto)
	}
}

func TestAutoscaleCooldownBlocksSecondAction(t *testing.T) {
	act := &fakeActuator{}
	src := &fakeSource{}
	e := New(Config{
		Source:      src,
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}},
		BreachAfter: 1,
		Logger:      quietLogger(),
		Advisor:     AdvisorConfig{ScaleUpAfter: 1, Cooldown: time.Hour, MaxCells: 8},
		Actuator:    act,
	})
	req := int64(0)
	tick := func() Plan {
		req += 50
		src.set(breachingSample(0, req))
		return e.Tick(context.Background())
	}
	for i := 0; i < 4 && act.ups == 0; i++ {
		tick()
	}
	if act.ups != 1 {
		t.Fatalf("first action not enacted: ups %d", act.ups)
	}
	for i := 0; i < 4; i++ {
		if p := tick(); p.Action != ActionNone || p.CooldownSeconds <= 0 {
			t.Fatalf("cooldown must hold the advisor: %+v", p)
		}
	}
	if act.ups != 1 {
		t.Fatalf("cooldown leaked an action: ups %d", act.ups)
	}
}

func TestAutoscaleScaleDownOnIdle(t *testing.T) {
	act := &fakeActuator{}
	src := &fakeSource{}
	e := New(Config{
		Source: src,
		Rules:  []Rule{},
		Logger: quietLogger(),
		Advisor: AdvisorConfig{
			MinCells: 1, MaxCells: 8,
			ScaleDownAfter: 2, IdleRPS: 0.5, Cooldown: time.Millisecond,
		},
		Actuator: act,
	})
	// Cell 0 saw traffic once; cell 1 never did. Constant counters after
	// that make every later tick idle.
	src.set(CellSample{Cell: 0, Requests: 100}, CellSample{Cell: 1})
	var plan Plan
	for i := 0; i < 8; i++ {
		plan = e.Tick(context.Background())
		if len(act.downs) > 0 {
			break
		}
	}
	if len(act.downs) != 1 {
		t.Fatalf("idle cluster never drained: plan %+v, downs %v", plan, act.downs)
	}
	// Victim is the least-loaded cell — cell 1, which never saw a request.
	if act.downs[0] != 1 {
		t.Fatalf("drain victim %d, want idle cell 1", act.downs[0])
	}
	auto := alertsOfKind(e, KindAutoscale)
	if len(auto) != 1 || !strings.Contains(auto[0].Message, "drained cell 1") {
		t.Fatalf("want a drain alert for cell 1, got %+v", auto)
	}
}

func TestAutoscaleRespectsBounds(t *testing.T) {
	act := &fakeActuator{}
	src := &fakeSource{}
	e := New(Config{
		Source:      src,
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}},
		BreachAfter: 1,
		Logger:      quietLogger(),
		Advisor:     AdvisorConfig{ScaleUpAfter: 1, MaxCells: 2, MinCells: 2, Cooldown: time.Millisecond},
		Actuator:    act,
	})
	// Two cells, both breaching: already at MaxCells, so no action.
	req := int64(0)
	for i := 0; i < 5; i++ {
		req += 50
		src.set(breachingSample(0, req), breachingSample(1, req))
		if p := e.Tick(context.Background()); p.Action != ActionNone && i > 0 {
			t.Fatalf("at max cells the advisor must only report: %+v", p)
		}
	}
	if act.ups != 0 || len(act.downs) != 0 {
		t.Fatalf("bounds violated: ups %d downs %v", act.ups, act.downs)
	}
}

func TestScaleUpFailureAlertsAndArmsCooldown(t *testing.T) {
	act := &fakeActuator{upErr: errors.New("no capacity")}
	src := &fakeSource{}
	e := New(Config{
		Source:      src,
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}},
		BreachAfter: 1,
		Logger:      quietLogger(),
		Advisor:     AdvisorConfig{ScaleUpAfter: 1, Cooldown: time.Hour, MaxCells: 8},
		Actuator:    act,
	})
	req := int64(0)
	for i := 0; i < 5; i++ {
		req += 50
		src.set(breachingSample(0, req))
		e.Tick(context.Background())
	}
	auto := alertsOfKind(e, KindAutoscale)
	if len(auto) != 1 || !strings.Contains(auto[0].Message, "scale-up failed") {
		t.Fatalf("want exactly one failure alert (cooldown arms on failure too), got %+v", auto)
	}
	if auto[0].Cell != -1 {
		t.Fatalf("failed scale-up alert cell %d, want -1", auto[0].Cell)
	}
}

func TestStartCloseLifecycle(t *testing.T) {
	src := &fakeSource{}
	src.set(calmSample(0, 0))
	e := New(Config{Source: src, Tick: time.Millisecond, Logger: quietLogger()})
	e.Start()
	e.Start() // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for e.Health().Ticks < 3 {
		if time.Now().After(deadline) {
			t.Fatal("polling loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	e.Close() // idempotent

	// A never-started evaluator must close cleanly too.
	New(Config{Source: src, Logger: quietLogger()}).Close()
}

// nextStack is a minimal downstream handler exposing the /v1/stats and
// /metrics contract the health layer composes with.
func nextStack() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"aggregate":{"requests":42}}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "# HELP base_metric Base.\n# TYPE base_metric counter\nbase_metric 1\n")
	})
	return mux
}

func TestHandlerEndpoints(t *testing.T) {
	src := &fakeSource{}
	e := New(Config{
		Source:      src,
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050}},
		BreachAfter: 1,
		Logger:      quietLogger(),
	})
	ts := httptest.NewServer(e.Handler(nextStack()))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	// Healthy: 200 with ok status.
	now := time.Unix(1000, 0)
	e.Observe(now, []CellSample{calmSample(0, 0)})
	e.Observe(now.Add(time.Second), []CellSample{calmSample(0, 10)})
	code, body := get("/v1/health")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy probe: %d %s", code, body)
	}

	// Breach: readiness probe answers 503.
	req := int64(10)
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		req += 50
		e.Observe(now, []CellSample{breachingSample(0, req)})
	}
	code, body = get("/v1/health")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"breached"`) {
		t.Fatalf("breached probe: %d %s", code, body)
	}

	code, body = get(AlertsPath)
	if code != http.StatusOK {
		t.Fatalf("alerts: %d", code)
	}
	var alerts AlertsJSON
	if err := json.Unmarshal([]byte(body), &alerts); err != nil || len(alerts.Alerts) == 0 {
		t.Fatalf("alerts body %q: err %v", body, err)
	}

	code, body = get("/v1/autoscale/plan")
	if code != http.StatusOK || !strings.Contains(body, `"action"`) {
		t.Fatalf("plan: %d %s", code, body)
	}

	// Stats merge: downstream section preserved, health section added.
	code, body = get("/v1/stats")
	if code != http.StatusOK || !strings.Contains(body, `"aggregate"`) || !strings.Contains(body, `"health"`) {
		t.Fatalf("stats merge: %d %s", code, body)
	}

	// Metrics append: base exposition kept, health_* series after it.
	code, body = get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "base_metric 1") ||
		!strings.Contains(body, "health_ticks_total") ||
		!strings.Contains(body, `health_cell_state{cell="0"} 2`) {
		t.Fatalf("metrics append: %d %s", code, body)
	}

	// Unknown routes fall through to next.
	code, _ = get("/nope")
	if code != http.StatusNotFound {
		t.Fatalf("fallthrough: %d", code)
	}
}
