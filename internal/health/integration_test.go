package health

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ctrl"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/serve"
)

// trackedSource fabricates per-cell metrics but tracks the REAL membership
// of a router, so advisor victims are live cells and membership alerts
// reflect actual adds/drains.
type trackedSource struct {
	r *cluster.Router
	// breach switches every live cell between breaching and idle metrics.
	breach bool
	reqs   int64
}

func (s *trackedSource) Sample() []CellSample {
	out := make([]CellSample, 0, 4)
	for _, id := range s.r.CellIDs() {
		cs := CellSample{Cell: id, Requests: s.reqs}
		if s.breach {
			cs.QueueWaitP99 = 0.200
		}
		out = append(out, cs)
	}
	return out
}

// TestAutoscaleDrivesRealControlPlane closes the loop the wave demo runs:
// sustained breach adds a real cell through ctrl.Plane, sustained idle
// drains one, and both membership changes surface as alerts.
func TestAutoscaleDrivesRealControlPlane(t *testing.T) {
	r := cluster.New(cluster.Config{Cells: 2, Cell: serve.Config{Workers: 1}})
	defer r.Close()
	plane := ctrl.New(r, nil)
	src := &trackedSource{r: r, breach: true}
	e := New(Config{
		Source: src,
		// WindowTicks 2 + ClearAfter 1 so the breach rolls out of the
		// window quickly once the source calms down — the idle signal
		// can't start counting while any rule is still tripped.
		WindowTicks: 2,
		Rules:       []Rule{{Name: "qw", Metric: MetricQueueWaitP99, Threshold: 0.050, ClearAfter: 1}},
		BreachAfter: 1,
		Logger:      quietLogger(),
		Advisor: AdvisorConfig{
			MinCells: 2, MaxCells: 3,
			ScaleUpAfter: 1, ScaleDownAfter: 2,
			IdleRPS: 0.5, Cooldown: time.Millisecond,
		},
		Actuator: ctrl.Actuator{Plane: plane},
	})

	ctx := context.Background()
	for i := 0; i < 8 && r.Cells() < 3; i++ {
		src.reqs += 50 // keep traffic flowing so breach ticks count
		e.Tick(ctx)
	}
	if r.Cells() != 3 {
		t.Fatalf("sustained breach never added a real cell: %d cells", r.Cells())
	}
	if s := plane.Stats(); s.AutoscaleAdds != 1 {
		t.Fatalf("ctrl autoscale add counter %d, want 1", s.AutoscaleAdds)
	}

	// Calm down: constant counters + clean quantiles read as idle, and the
	// advisor drains back inside the bounds.
	src.breach = false
	time.Sleep(2 * time.Millisecond) // clear the cooldown
	for i := 0; i < 12 && r.Cells() > 2; i++ {
		e.Tick(ctx)
		time.Sleep(time.Millisecond)
	}
	if r.Cells() != 2 {
		t.Fatalf("sustained idle never drained: %d cells", r.Cells())
	}
	if s := plane.Stats(); s.AutoscaleDrains != 1 {
		t.Fatalf("ctrl autoscale drain counter %d, want 1", s.AutoscaleDrains)
	}
	// One more observation so the drained cell's departure lands in the
	// ring (membership is noticed on the tick after the drain).
	e.Tick(ctx)

	// Every membership change the autoscaler made is visible in the ring.
	var joins, leaves int
	for _, a := range e.Alerts() {
		if a.Kind == KindMembership {
			if strings.HasSuffix(a.Message, "joined") {
				joins++
			} else {
				leaves++
			}
		}
	}
	// 2 initial joins + 1 autoscale join; 1 autoscale leave.
	if joins != 3 || leaves != 1 {
		t.Fatalf("membership alerts: %d joins / %d leaves, want 3 / 1", joins, leaves)
	}
}

// TestRouterSourceSamplesRealTraffic runs real solves through a router and
// checks the sampled windows carry coherent, non-negative aggregates.
func TestRouterSourceSamplesRealTraffic(t *testing.T) {
	r := cluster.New(cluster.Config{Cells: 2, Cell: serve.Config{Workers: 2}})
	defer r.Close()

	sc := experiments.Default()
	sc.N = 5
	sys, err := sc.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Source: RouterSource(r), Logger: quietLogger()})
	now := time.Unix(1000, 0)
	e.Observe(now, e.cfg.Source.Sample()) // seed windows

	for i := 0; i < 6; i++ {
		dev := "health-dev"
		if i%2 == 1 {
			dev = "health-dev-2"
		}
		if _, _, err := r.Solve(context.Background(), cluster.CellAuto, dev,
			serve.Request{System: sys, Weights: fl.Weights{W1: 0.5, W2: 0.5}}); err != nil {
			t.Fatal(err)
		}
	}
	e.Observe(now.Add(time.Second), e.cfg.Source.Sample())

	h := e.Health()
	if len(h.Cells) != 2 {
		t.Fatalf("sampled %d cells, want 2", len(h.Cells))
	}
	var total int64
	for _, c := range h.Cells {
		w := c.Window
		if w.Requests < 0 || w.ErrorRate < 0 || w.CacheHitRate < 0 || w.RequestRate < 0 {
			t.Fatalf("negative window aggregate: %+v", w)
		}
		if w.QueueWaitP50 < 0 || w.SolveP99 < 0 {
			t.Fatalf("negative latency aggregate: %+v", w)
		}
		total += w.Requests
	}
	if total != 6 {
		t.Fatalf("window request total %d, want the 6 solves", total)
	}
}
