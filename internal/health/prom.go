package health

import (
	"strconv"

	"repro/internal/serve"
)

// stateValue encodes a State for the health_cell_state / health_rule_state
// gauges: 0 ok, 1 degraded, 2 breached.
func stateValue(s State) float64 { return float64(s.severity()) }

// actionValue encodes the advisor plan for the health_autoscale_plan
// gauge: 0 none, 1 scale_up, -1 scale_down.
func actionValue(a Action) float64 {
	switch a {
	case ActionScaleUp:
		return 1
	case ActionScaleDown:
		return -1
	}
	return 0
}

// WritePrometheus emits the health_* series: per-cell and per-rule state
// gauges, per-cell window aggregates, lifecycle counters, and the advisor
// plan.
func (e *Evaluator) WritePrometheus(pw *serve.PromWriter) {
	h := e.Health()
	plan := e.Plan()

	pw.Counter("health_ticks_total", "Evaluator ticks observed.", "", float64(h.Ticks))
	pw.Counter("health_transitions_total", "SLO state transitions across all cells and rules.", "", float64(h.Transitions))
	pw.Counter("health_alerts_total", "Alert events ever appended to the ring.", "", float64(h.AlertsTotal))
	pw.Counter("health_alerts_dropped_total", "Alert events evicted from the bounded ring.", "", float64(e.AlertsDropped()))
	pw.Counter("health_autoscale_actions_total", "Autoscale actions enacted.", `action="scale_up"`, float64(e.scaleUps.Load()))
	pw.Counter("health_autoscale_actions_total", "Autoscale actions enacted.", `action="scale_down"`, float64(e.scaleDowns.Load()))
	pw.Counter("health_events_total", "Control-plane lifecycle events recorded.", `kind="crash"`, float64(e.crashEvents.Load()))
	pw.Counter("health_events_total", "Control-plane lifecycle events recorded.", `kind="recovery"`, float64(e.recoveries.Load()))
	pw.Counter("health_events_total", "Control-plane lifecycle events recorded.", `kind="profile"`, float64(e.profileEvents.Load()))
	pw.Gauge("health_status", "Worst cell state: 0 ok, 1 degraded, 2 breached.", "", stateValue(h.Status))
	pw.Gauge("health_cells", "Cells under health observation.", "", float64(len(h.Cells)))
	pw.Gauge("health_autoscale_plan", "Advisor recommendation: 0 none, 1 scale_up, -1 scale_down.", "", actionValue(plan.Action))

	breached := 0
	var resets int64
	for _, c := range h.Cells {
		if c.State == StateBreached {
			breached++
		}
		resets += c.Window.CounterResets
		cl := `cell="` + strconv.Itoa(c.Cell) + `"`
		pw.Gauge("health_cell_state", "Per-cell worst rule state: 0 ok, 1 degraded, 2 breached.", cl, stateValue(c.State))
		pw.Gauge("health_window_request_rate", "Rolling-window request rate per second.", cl, c.Window.RequestRate)
		pw.Gauge("health_window_error_rate", "Rolling-window error fraction.", cl, c.Window.ErrorRate)
		pw.Gauge("health_window_cache_hit_rate", "Rolling-window cache hit fraction.", cl, c.Window.CacheHitRate)
		pw.Gauge("health_window_queue_wait_seconds", "Worst per-tick queue-wait quantile in the window.", cl+`,quantile="0.99"`, c.Window.QueueWaitP99)
		pw.Gauge("health_window_solve_seconds", "Worst per-tick solve quantile in the window.", cl+`,quantile="0.99"`, c.Window.SolveP99)
		pw.Gauge("health_window_queue_depth", "Latest instantaneous queue depth.", cl, float64(c.Window.QueueDepth))
		for _, r := range c.Rules {
			rl := cl + `,rule="` + r.Rule + `"`
			pw.Gauge("health_rule_state", "Per-rule state: 0 ok, 1 degraded, 2 breached.", rl, stateValue(r.State))
		}
	}
	pw.Gauge("health_breached_cells", "Cells currently in the breached state.", "", float64(breached))
	pw.Counter("health_counter_resets_total", "Cumulative-counter resets detected (cell restarts).", "", float64(resets))

	if h.Runtime != nil {
		for _, r := range h.Runtime.Rules {
			rl := `cell="process",rule="` + r.Rule + `"`
			pw.Gauge("health_rule_state", "Per-rule state: 0 ok, 1 degraded, 2 breached.", rl, stateValue(r.State))
		}
	}
}
