package health

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults applied by Config.withDefaults.
const (
	// DefaultTick is the evaluator's polling interval; DefaultWindowTicks
	// how many intervals a rolling window holds (15 × 2s = a 30s window).
	DefaultTick        = 2 * time.Second
	DefaultWindowTicks = 15
	// DefaultBreachAfter / DefaultClearAfter are the stock hysteresis
	// widths, in consecutive ticks.
	DefaultBreachAfter = 3
	DefaultClearAfter  = 3
	// DefaultAlertRing bounds the alert-event ring behind /debug/alerts.
	DefaultAlertRing = 256
)

// AlertKind classifies alert-ring events.
type AlertKind string

const (
	// KindSLO marks a rule state transition.
	KindSLO AlertKind = "slo"
	// KindMembership marks a cell joining or leaving the sampled set.
	KindMembership AlertKind = "membership"
	// KindAutoscale marks an advisor action being enacted (or failing).
	KindAutoscale AlertKind = "autoscale"
	// KindCrash marks a drain-less cell removal (failure injection or real
	// crash detection) reported by the control plane.
	KindCrash AlertKind = "crash"
	// KindRecovery marks a replica promotion: a crashed cell's replicated
	// warm state landing on its successors.
	KindRecovery AlertKind = "recovery"
	// KindProfile marks an SLO-triggered pprof capture (the forensics
	// profile trigger reporting where the evidence landed).
	KindProfile AlertKind = "profile"
)

// ProcessCell is the pseudo-cell of process-level events and runtime-rule
// transitions (alerts already use -1 for cluster-level events; runtime
// vitals are judged per process, not per cell).
const ProcessCell = -1

// Transition describes one SLO state change, delivered to the
// Config.OnTransition hook. Cell is ProcessCell for runtime rules.
type Transition struct {
	Time      time.Time
	Cell      int
	Rule      string
	Metric    Metric
	From, To  State
	Value     float64
	Threshold float64
}

// Alert is one event in the ring behind GET /debug/alerts.
type Alert struct {
	Seq  int64     `json:"seq"`
	Time time.Time `json:"time"`
	Kind AlertKind `json:"kind"`
	// Cell is the subject cell, or -1 for cluster-level events.
	Cell int `json:"cell"`
	// Rule/Metric/From/To/Value/Threshold describe an SLO transition
	// (empty for membership and autoscale events).
	Rule      string  `json:"rule,omitempty"`
	Metric    Metric  `json:"metric,omitempty"`
	From      State   `json:"from,omitempty"`
	To        State   `json:"to,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Message is the human-readable one-liner (always set).
	Message string `json:"message"`
}

// Source feeds the evaluator one reading per live cell per tick.
// Implementations: RouterSource (a cluster), ServerSource (one flserved
// process), or anything synthetic in tests.
type Source interface {
	Sample() []CellSample
}

// Config tunes an Evaluator; zero values take defaults. Source is
// required.
type Config struct {
	Source Source
	// Tick is the polling interval of Run; WindowTicks the ring length
	// (window span = Tick × WindowTicks).
	Tick        time.Duration
	WindowTicks int
	// Rules is the SLO set; nil means DefaultRules(). An explicit empty
	// slice disables SLO judging (windows still accumulate).
	Rules []Rule
	// BreachAfter/ClearAfter are hysteresis defaults for rules that don't
	// set their own.
	BreachAfter int
	ClearAfter  int
	// AlertRing bounds the event ring.
	AlertRing int
	// Logger receives state-transition and autoscale logs; nil uses
	// slog.Default().
	Logger *slog.Logger
	// Advisor tunes the scale recommendation policy.
	Advisor AdvisorConfig
	// Actuator, when set, lets Run enact the advisor's plans (scale up /
	// drain through the control plane). Nil means advise-only: the plan is
	// still served at /v1/autoscale/plan but nothing acts on it.
	Actuator Actuator
	// Runtime, when set, samples process-level Go runtime vitals each
	// tick; RuntimeRules judges them (nil means DefaultRuntimeRules(); an
	// explicit empty slice samples without judging).
	Runtime      func() RuntimeSample
	RuntimeRules []Rule
	// OnTransition, when set, receives every SLO state change — cell and
	// runtime rules alike — after the evaluator's lock is released, so
	// the hook may call back into the evaluator (RecordEvent from a
	// profile trigger is the intended consumer). It runs on the
	// evaluator's tick goroutine and should not block.
	OnTransition func(Transition)
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	if c.WindowTicks <= 0 {
		c.WindowTicks = DefaultWindowTicks
	}
	if c.Rules == nil {
		c.Rules = DefaultRules()
	}
	if c.BreachAfter <= 0 {
		c.BreachAfter = DefaultBreachAfter
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = DefaultClearAfter
	}
	if c.AlertRing <= 0 {
		c.AlertRing = DefaultAlertRing
	}
	if c.Runtime != nil && c.RuntimeRules == nil {
		c.RuntimeRules = DefaultRuntimeRules()
	}
	c.Advisor = c.Advisor.withDefaults()
	return c
}

// Evaluator is the health engine: rolling windows per cell, SLO state
// machines per (cell, rule), the alert ring, and the autoscale advisor.
// Observe is the synchronous step (tests drive it with synthetic samples);
// Start/Close run it on the configured tick.
type Evaluator struct {
	cfg Config
	log *slog.Logger

	alerts   *obs.Ring[Alert]
	alertSeq atomic.Int64

	ticks         atomic.Int64
	transitions   atomic.Int64
	scaleUps      atomic.Int64
	scaleDowns    atomic.Int64
	crashEvents   atomic.Int64
	recoveries    atomic.Int64
	profileEvents atomic.Int64

	mu       sync.Mutex
	windows  map[int]*cellWindow
	rules    map[int][]ruleState // per cell, parallel to cfg.Rules
	rtStates []ruleState         // parallel to cfg.RuntimeRules
	rtSample RuntimeSample       // latest vitals reading
	lastObs  time.Time
	adv      advisorState
	plan     Plan

	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// New builds an evaluator. It does not start polling — call Start, or
// drive Observe directly.
func New(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	e := &Evaluator{
		cfg:     cfg,
		log:     log,
		alerts:  obs.NewRing[Alert](cfg.AlertRing),
		windows: make(map[int]*cellWindow),
		rules:   make(map[int][]ruleState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	e.plan = Plan{Action: ActionNone, Cell: -1}
	return e
}

// Start launches the polling loop: every Tick it samples the source,
// observes, and (with an Actuator configured) enacts the advisor's plan.
// Safe to call once; further calls are no-ops.
func (e *Evaluator) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Tick)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.Tick(context.Background())
			}
		}
	}()
}

// Close stops the polling loop (idempotent; a never-started evaluator
// closes cleanly too).
func (e *Evaluator) Close() {
	e.once.Do(func() { close(e.stop) })
	if e.started.Load() {
		<-e.done
	}
}

// Tick performs one full cycle: sample, observe, enact. Returns the plan
// in force after the cycle.
func (e *Evaluator) Tick(ctx context.Context) Plan {
	plan := e.Observe(time.Now(), e.cfg.Source.Sample())
	if plan.Action != ActionNone && e.cfg.Actuator != nil {
		e.enact(ctx, plan)
	}
	return plan
}

// Observe folds one round of samples into the windows, steps every SLO
// state machine (cell and runtime rules), refreshes membership, and
// recomputes the advisor plan. Exported so tests (and alternative
// drivers) can feed synthetic samples with explicit timestamps. Safe for
// concurrent use with the read paths. The OnTransition hook fires after
// the evaluator's lock is released, so hooks may call back in.
func (e *Evaluator) Observe(now time.Time, samples []CellSample) Plan {
	plan, trans := e.observeLocked(now, samples)
	if e.cfg.OnTransition != nil {
		for _, t := range trans {
			e.cfg.OnTransition(t)
		}
	}
	return plan
}

func (e *Evaluator) observeLocked(now time.Time, samples []CellSample) (Plan, []Transition) {
	e.ticks.Add(1)
	var trans []Transition
	e.mu.Lock()
	defer e.mu.Unlock()

	span := e.cfg.Tick
	if !e.lastObs.IsZero() {
		if d := now.Sub(e.lastObs); d > 0 {
			span = d
		}
	}
	e.lastObs = now

	// Membership: new cells join, vanished cells leave (their windows and
	// rule states go with them — a later return with the same ID starts
	// fresh, which the reset-safe deltas would handle anyway).
	seen := make(map[int]bool, len(samples))
	for _, s := range samples {
		seen[s.Cell] = true
		if e.windows[s.Cell] == nil {
			e.windows[s.Cell] = newCellWindow(s.Cell, e.cfg.WindowTicks)
			e.rules[s.Cell] = make([]ruleState, len(e.cfg.Rules))
			e.emit(Alert{
				Time: now, Kind: KindMembership, Cell: s.Cell,
				Message: fmt.Sprintf("cell %d joined", s.Cell),
			})
		}
	}
	for id := range e.windows {
		if !seen[id] {
			delete(e.windows, id)
			delete(e.rules, id)
			e.emit(Alert{
				Time: now, Kind: KindMembership, Cell: id,
				Message: fmt.Sprintf("cell %d left", id),
			})
		}
	}

	// Windows + rules.
	anyBreached := false
	for _, s := range samples {
		cw := e.windows[s.Cell]
		cw.step(s, span)
		ws := cw.stats()
		states := e.rules[s.Cell]
		for i, r := range e.cfg.Rules {
			from, changed := states[i].step(r, ws.Value(r.Metric), ws.Requests, e.cfg.BreachAfter, e.cfg.ClearAfter, now)
			if states[i].state == StateBreached {
				anyBreached = true
			}
			if !changed {
				continue
			}
			trans = append(trans, e.recordTransition(now, s.Cell, r, from, &states[i]))
		}
	}

	// Runtime vitals: one process-level reading, judged by the runtime
	// rules against pseudo-cell ProcessCell.
	if e.cfg.Runtime != nil {
		e.rtSample = e.cfg.Runtime()
		if len(e.rtStates) != len(e.cfg.RuntimeRules) {
			e.rtStates = make([]ruleState, len(e.cfg.RuntimeRules))
		}
		for i, r := range e.cfg.RuntimeRules {
			from, changed := e.rtStates[i].step(r, e.rtSample.Value(r.Metric), 0, e.cfg.BreachAfter, e.cfg.ClearAfter, now)
			if !changed {
				continue
			}
			trans = append(trans, e.recordTransition(now, ProcessCell, r, from, &e.rtStates[i]))
		}
	}

	e.plan = e.advise(now, samples, anyBreached)
	return e.plan, trans
}

// recordTransition files one SLO state change: transition counter, alert
// ring, log line. Callers hold e.mu; the returned Transition is handed to
// the OnTransition hook after the lock is released.
func (e *Evaluator) recordTransition(now time.Time, cell int, r Rule, from State, rs *ruleState) Transition {
	e.transitions.Add(1)
	to := rs.state
	subject := fmt.Sprintf("cell %d", cell)
	if cell == ProcessCell {
		subject = "process"
	}
	e.emit(Alert{
		Time: now, Kind: KindSLO, Cell: cell,
		Rule: r.Name, Metric: r.Metric, From: from, To: to,
		Value: rs.lastValue, Threshold: r.Threshold,
		Message: fmt.Sprintf("%s %s: %s %s→%s (value %.4g, threshold %.4g)",
			subject, r.Name, r.Metric, from, to, rs.lastValue, r.Threshold),
	})
	lvl := slog.LevelInfo
	if to == StateBreached {
		lvl = slog.LevelWarn
	}
	e.log.Log(context.Background(), lvl, "slo transition",
		"cell", cell, "rule", r.Name, "metric", string(r.Metric),
		"from", string(from), "to", string(to),
		"value", rs.lastValue, "threshold", r.Threshold)
	return Transition{
		Time: now, Cell: cell, Rule: r.Name, Metric: r.Metric,
		From: from, To: to, Value: rs.lastValue, Threshold: r.Threshold,
	}
}

// emit appends to the alert ring; callers hold e.mu (the ring is itself
// synchronized, the mutex just keeps Seq ordering consistent with it).
func (e *Evaluator) emit(a Alert) {
	a.Seq = e.alertSeq.Add(1)
	e.alerts.Append(a)
}

// RecordEvent files a control-plane lifecycle event into the alert ring.
// It satisfies the control plane's EventRecorder structurally: kind
// "crash" becomes a KindCrash alert (warn-logged — a cell just died with
// its state), "promotion" a KindRecovery alert, "profile" a KindProfile
// alert (the forensics trigger reporting a capture); anything else lands
// as KindMembership so no event is ever dropped on the floor.
func (e *Evaluator) RecordEvent(kind string, cell int, message string) {
	var k AlertKind
	switch kind {
	case "crash":
		k = KindCrash
		e.crashEvents.Add(1)
	case "promotion":
		k = KindRecovery
		e.recoveries.Add(1)
	case "profile":
		k = KindProfile
		e.profileEvents.Add(1)
	default:
		k = KindMembership
	}
	e.mu.Lock()
	e.emit(Alert{Time: time.Now(), Kind: k, Cell: cell, Message: message})
	e.mu.Unlock()
	lvl := slog.LevelInfo
	if k == KindCrash {
		lvl = slog.LevelWarn
	}
	e.log.Log(context.Background(), lvl, "control-plane event",
		"kind", kind, "cell", cell, "message", message)
}

// Alerts returns the retained alert events, newest first.
func (e *Evaluator) Alerts() []Alert { return e.alerts.Snapshot() }

// AlertsDropped reports how many alert events the bounded ring has evicted
// — the silent-truncation counter behind health_alerts_dropped_total.
func (e *Evaluator) AlertsDropped() int64 { return e.alerts.Evicted() }

// CellHealth is one cell's standing in the /v1/health body.
type CellHealth struct {
	Cell   int          `json:"cell"`
	State  State        `json:"state"`
	Window WindowStats  `json:"window"`
	Rules  []RuleStatus `json:"rules,omitempty"`
}

// RuntimeHealth is the process-level section of the /v1/health body: the
// latest vitals sample and the runtime rules' standing.
type RuntimeHealth struct {
	Sample RuntimeSample `json:"sample"`
	Rules  []RuleStatus  `json:"rules,omitempty"`
}

// HealthJSON is the GET /v1/health body. Status is the worst state across
// cells and runtime rules; the endpoint answers 503 when Status is
// breached, so it doubles as a readiness probe.
type HealthJSON struct {
	Status        State          `json:"status"`
	Ticks         int64          `json:"ticks"`
	Cells         []CellHealth   `json:"cells"`
	Runtime       *RuntimeHealth `json:"runtime,omitempty"`
	AlertsTotal   int64          `json:"alerts_total"`
	Transitions   int64          `json:"transitions_total"`
	UptimeSeconds float64        `json:"uptime_seconds"`
}

// Health snapshots every cell's window and rule standing.
func (e *Evaluator) Health() HealthJSON {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := HealthJSON{
		Status:        StateOK,
		Ticks:         e.ticks.Load(),
		AlertsTotal:   e.alerts.Total(),
		Transitions:   e.transitions.Load(),
		UptimeSeconds: obs.Uptime().Seconds(),
	}
	ids := make([]int, 0, len(e.windows))
	for id := range e.windows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		cw := e.windows[id]
		ch := CellHealth{Cell: id, State: StateOK, Window: cw.stats()}
		for i, r := range e.cfg.Rules {
			rs := &e.rules[id][i]
			st := rs.state
			if st == "" {
				st = StateOK
			}
			if st.severity() > ch.State.severity() {
				ch.State = st
			}
			ch.Rules = append(ch.Rules, RuleStatus{
				Rule: r.Name, Metric: r.Metric, State: st,
				Value: rs.lastValue, Threshold: r.Threshold, Under: r.Under,
				BreachStreak: rs.breachStreak, ClearStreak: rs.clearStreak,
			})
		}
		if ch.State.severity() > out.Status.severity() {
			out.Status = ch.State
		}
		out.Cells = append(out.Cells, ch)
	}
	if e.cfg.Runtime != nil {
		rt := &RuntimeHealth{Sample: e.rtSample}
		for i, r := range e.cfg.RuntimeRules {
			if i >= len(e.rtStates) {
				break
			}
			rs := &e.rtStates[i]
			st := rs.state
			if st == "" {
				st = StateOK
			}
			if st.severity() > out.Status.severity() {
				out.Status = st
			}
			rt.Rules = append(rt.Rules, RuleStatus{
				Rule: r.Name, Metric: r.Metric, State: st,
				Value: rs.lastValue, Threshold: r.Threshold, Under: r.Under,
				BreachStreak: rs.breachStreak, ClearStreak: rs.clearStreak,
			})
		}
		out.Runtime = rt
	}
	return out
}

// Plan returns the advisor's current recommendation.
func (e *Evaluator) Plan() Plan {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.plan
}
