package health

import "time"

// Metric names a window aggregate an SLO rule can bind to. The string
// values appear in rule configs, alert events, and health_* label values.
type Metric string

const (
	MetricQueueWaitP50 Metric = "queue_wait_p50"
	MetricQueueWaitP99 Metric = "queue_wait_p99"
	MetricSolveP50     Metric = "solve_p50"
	MetricSolveP99     Metric = "solve_p99"
	MetricErrorRate    Metric = "error_rate"
	MetricCacheHitRate Metric = "cache_hit_rate"
	MetricQueueDepth   Metric = "queue_depth"
	MetricRequestRate  Metric = "request_rate"

	// Runtime metrics are process-level Go runtime vitals (sampled via
	// Config.Runtime, judged by Config.RuntimeRules against the whole
	// process rather than any one cell).
	MetricGoroutines      Metric = "runtime_goroutines"
	MetricHeapBytes       Metric = "runtime_heap_bytes"
	MetricGCPauseP99      Metric = "runtime_gc_pause_p99"
	MetricSchedLatencyP99 Metric = "runtime_sched_latency_p99"
)

// State is one rule's (or, aggregated, one cell's) SLO standing.
type State string

const (
	// StateOK: the metric is inside its SLO.
	StateOK State = "ok"
	// StateDegraded: violating, but not yet for BreachAfter consecutive
	// ticks — the hysteresis band that keeps one bad tick from paging.
	StateDegraded State = "degraded"
	// StateBreached: violating for BreachAfter consecutive ticks.
	StateBreached State = "breached"
)

// severity orders states for worst-of aggregation.
func (s State) severity() int {
	switch s {
	case StateBreached:
		return 2
	case StateDegraded:
		return 1
	default:
		return 0
	}
}

// Rule is one SLO: a window metric judged against a threshold, with
// hysteresis on both edges so the state machine doesn't flap when the
// metric hovers at the bar.
type Rule struct {
	// Name labels alerts, health output, and Prometheus series.
	Name string `json:"name"`
	// Metric is the window aggregate to judge.
	Metric Metric `json:"metric"`
	// Threshold is the bar, in the metric's unit (seconds for latency
	// metrics, a fraction for rates, a count for queue_depth).
	Threshold float64 `json:"threshold"`
	// Under inverts the comparison: the rule is violated when the value is
	// BELOW the threshold (cache_hit_rate style floors). Default: violated
	// when above.
	Under bool `json:"under,omitempty"`
	// BreachAfter is how many consecutive violating ticks escalate
	// degraded→breached; ClearAfter how many consecutive ok ticks recover
	// to ok. Zero means the evaluator's defaults.
	BreachAfter int `json:"breach_after,omitempty"`
	ClearAfter  int `json:"clear_after,omitempty"`
	// MinRequests gates evaluation on window traffic: below it the tick
	// never counts as violating (an empty window's cache_hit_rate of 0 is
	// absence of data, not an outage) — it counts toward recovery instead,
	// so a rule tripped under load clears once traffic goes away rather
	// than pinning its last state forever (which would deadlock the
	// advisor's idle detection).
	MinRequests int64 `json:"min_requests,omitempty"`
}

// violated reports whether the window value breaks the rule's bar.
func (r Rule) violated(v float64) bool {
	if r.Under {
		return v < r.Threshold
	}
	return v > r.Threshold
}

// DefaultRules is the stock SLO set: queue-wait p99 under 50ms (the
// scaling signal named by the roadmap), solve p99 under 500ms, error rate
// under 5%, and a 20% cache-hit-rate floor once a window has real traffic.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "queue-wait-p99", Metric: MetricQueueWaitP99, Threshold: 0.050},
		{Name: "solve-p99", Metric: MetricSolveP99, Threshold: 0.500},
		{Name: "error-rate", Metric: MetricErrorRate, Threshold: 0.05, MinRequests: 20},
		{Name: "cache-hit-floor", Metric: MetricCacheHitRate, Threshold: 0.20, Under: true, MinRequests: 200},
	}
}

// DefaultRuntimeRules is the stock process-level rule set, applied when
// Config.Runtime is wired without explicit RuntimeRules: a goroutine-leak
// ceiling (a serving process runs tens to hundreds of goroutines; tens of
// thousands means a leak) and a GC pause p99 bar (Go pauses are sub-ms;
// 50ms means the heap is in trouble).
func DefaultRuntimeRules() []Rule {
	return []Rule{
		{Name: "runtime-goroutines", Metric: MetricGoroutines, Threshold: 10000},
		{Name: "runtime-gc-pause", Metric: MetricGCPauseP99, Threshold: 0.050},
	}
}

// RuntimeSample is one process-level vitals reading, the runtime-rule
// analogue of a cell's WindowStats. The cmds adapt the forensics layer's
// Vitals into it.
type RuntimeSample struct {
	Goroutines             float64 `json:"goroutines"`
	HeapBytes              float64 `json:"heap_bytes"`
	GCPauseP99Seconds      float64 `json:"gc_pause_p99_seconds"`
	SchedLatencyP99Seconds float64 `json:"sched_latency_p99_seconds"`
}

// Value reads one runtime metric out of the sample for rule evaluation.
func (s RuntimeSample) Value(m Metric) float64 {
	switch m {
	case MetricGoroutines:
		return s.Goroutines
	case MetricHeapBytes:
		return s.HeapBytes
	case MetricGCPauseP99:
		return s.GCPauseP99Seconds
	case MetricSchedLatencyP99:
		return s.SchedLatencyP99Seconds
	}
	return 0
}

// ruleState is the per-(cell, rule) hysteresis state machine.
type ruleState struct {
	state        State
	breachStreak int
	clearStreak  int
	lastValue    float64
	lastChange   time.Time
}

// step advances one rule's state machine with this tick's value and the
// window's traffic (requests gates MinRequests; runtime rules pass 0 and
// leave MinRequests unset — vitals are always live data). Returns the
// prior state and whether the state changed.
func (rs *ruleState) step(r Rule, v float64, requests int64, breachAfter, clearAfter int, now time.Time) (from State, changed bool) {
	from = rs.state
	if rs.state == "" {
		rs.state, from = StateOK, StateOK
	}
	if r.BreachAfter > 0 {
		breachAfter = r.BreachAfter
	}
	if r.ClearAfter > 0 {
		clearAfter = r.ClearAfter
	}
	rs.lastValue = v
	if r.violated(v) && requests >= r.MinRequests {
		rs.breachStreak++
		rs.clearStreak = 0
		switch {
		case rs.state == StateOK:
			rs.state = StateDegraded
		case rs.state == StateDegraded && rs.breachStreak >= breachAfter:
			rs.state = StateBreached
		}
	} else {
		rs.clearStreak++
		rs.breachStreak = 0
		if rs.state != StateOK && rs.clearStreak >= clearAfter {
			rs.state = StateOK
		}
	}
	if rs.state != from {
		rs.lastChange = now
		return from, true
	}
	return from, false
}

// RuleStatus is one rule's standing in the /v1/health body.
type RuleStatus struct {
	Rule      string  `json:"rule"`
	Metric    Metric  `json:"metric"`
	State     State   `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Under     bool    `json:"under,omitempty"`
	// BreachStreak / ClearStreak expose the hysteresis counters so an
	// operator can see how close a transition is.
	BreachStreak int `json:"breach_streak,omitempty"`
	ClearStreak  int `json:"clear_streak,omitempty"`
}
