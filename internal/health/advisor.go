package health

import (
	"context"
	"fmt"
	"time"
)

// Action is an advisor recommendation.
type Action string

const (
	ActionNone      Action = "none"
	ActionScaleUp   Action = "scale_up"
	ActionScaleDown Action = "scale_down"
)

// AdvisorConfig tunes the autoscale policy; zero values take defaults.
type AdvisorConfig struct {
	// MinCells/MaxCells bound the cluster size the advisor will recommend.
	MinCells int `json:"min_cells"`
	MaxCells int `json:"max_cells"`
	// ScaleUpAfter is how many consecutive ticks with at least one
	// breached rule trigger a scale-up; ScaleDownAfter how many
	// consecutive idle ticks (all rules ok, per-cell request rate under
	// IdleRPS) trigger a drain.
	ScaleUpAfter   int `json:"scale_up_after"`
	ScaleDownAfter int `json:"scale_down_after"`
	// IdleRPS is the per-cell request rate below which a tick counts as
	// idle.
	IdleRPS float64 `json:"idle_rps"`
	// Cooldown is the minimum wall time between enacted actions, so the
	// cluster settles (backfill, rebalance, window refill) before the next
	// decision.
	Cooldown time.Duration `json:"-"`
}

// Advisor defaults.
const (
	DefaultMinCells       = 1
	DefaultMaxCells       = 8
	DefaultScaleUpAfter   = 3
	DefaultScaleDownAfter = 10
	DefaultIdleRPS        = 0.5
	DefaultCooldown       = 30 * time.Second
)

func (a AdvisorConfig) withDefaults() AdvisorConfig {
	if a.MinCells <= 0 {
		a.MinCells = DefaultMinCells
	}
	if a.MaxCells <= 0 {
		a.MaxCells = DefaultMaxCells
	}
	if a.MaxCells < a.MinCells {
		a.MaxCells = a.MinCells
	}
	if a.ScaleUpAfter <= 0 {
		a.ScaleUpAfter = DefaultScaleUpAfter
	}
	if a.ScaleDownAfter <= 0 {
		a.ScaleDownAfter = DefaultScaleDownAfter
	}
	if a.IdleRPS <= 0 {
		a.IdleRPS = DefaultIdleRPS
	}
	if a.Cooldown <= 0 {
		a.Cooldown = DefaultCooldown
	}
	return a
}

// Actuator enacts advisor plans. The control plane's autoscale entry
// points (ctrl.Plane.AutoscaleAddCell / AutoscaleDrainCell) satisfy it via
// a thin adapter in the cmds; tests plug in fakes.
type Actuator interface {
	// ScaleUp adds a cell and returns its ID.
	ScaleUp(ctx context.Context) (int, error)
	// ScaleDown drains and removes the given cell.
	ScaleDown(ctx context.Context, cell int) error
}

// Plan is the advisor's current recommendation, served at
// GET /v1/autoscale/plan.
type Plan struct {
	Action Action `json:"action"`
	// Cell is the drain victim for scale_down, -1 otherwise.
	Cell int `json:"cell"`
	// Reason is the human-readable justification.
	Reason string `json:"reason"`
	// Cells is the live cell count the plan was computed against.
	Cells int `json:"cells"`
	// BreachTicks / IdleTicks are the sustained-signal counters behind the
	// decision.
	BreachTicks int `json:"breach_ticks"`
	IdleTicks   int `json:"idle_ticks"`
	// CooldownSeconds is how long until the advisor may act again
	// (0 when free).
	CooldownSeconds float64 `json:"cooldown_seconds"`
}

// advisorState is the sustained-signal memory between ticks.
type advisorState struct {
	breachTicks int
	idleTicks   int
	lastAction  time.Time
}

// advise recomputes the plan from this tick's standing. Caller holds e.mu.
func (e *Evaluator) advise(now time.Time, samples []CellSample, anyBreached bool) Plan {
	cfg := e.cfg.Advisor
	cells := len(samples)

	// Sustained-signal counters: breach and idle are mutually exclusive
	// readings of one tick, and any non-matching tick resets its counter —
	// "sustained" means consecutive, not cumulative.
	if anyBreached {
		e.adv.breachTicks++
		e.adv.idleTicks = 0
	} else {
		e.adv.breachTicks = 0
		idle := cells > 0
		for _, s := range samples {
			if ws := e.windows[s.Cell].stats(); ws.Ticks == 0 || ws.RequestRate >= cfg.IdleRPS {
				idle = false
				break
			}
		}
		// Degraded cells are recovering, not idle; don't drain under them.
		if idle {
			for id := range e.rules {
				for i := range e.rules[id] {
					if e.rules[id][i].state.severity() > 0 {
						idle = false
					}
				}
			}
		}
		if idle {
			e.adv.idleTicks++
		} else {
			e.adv.idleTicks = 0
		}
	}

	p := Plan{
		Action:      ActionNone,
		Cell:        -1,
		Cells:       cells,
		BreachTicks: e.adv.breachTicks,
		IdleTicks:   e.adv.idleTicks,
	}
	if !e.adv.lastAction.IsZero() {
		if rem := cfg.Cooldown - now.Sub(e.adv.lastAction); rem > 0 {
			p.CooldownSeconds = rem.Seconds()
		}
	}

	switch {
	case p.CooldownSeconds > 0:
		p.Reason = fmt.Sprintf("cooling down (%.1fs left)", p.CooldownSeconds)
	case e.adv.breachTicks >= cfg.ScaleUpAfter && cells >= cfg.MaxCells:
		p.Reason = fmt.Sprintf("sustained breach (%d ticks) but at max cells (%d)", e.adv.breachTicks, cfg.MaxCells)
	case e.adv.breachTicks >= cfg.ScaleUpAfter:
		p.Action = ActionScaleUp
		p.Reason = fmt.Sprintf("SLO breached for %d consecutive ticks", e.adv.breachTicks)
	case e.adv.idleTicks >= cfg.ScaleDownAfter && cells <= cfg.MinCells:
		p.Reason = fmt.Sprintf("idle (%d ticks) but at min cells (%d)", e.adv.idleTicks, cfg.MinCells)
	case e.adv.idleTicks >= cfg.ScaleDownAfter:
		p.Action = ActionScaleDown
		p.Cell = e.leastLoadedCell(samples)
		p.Reason = fmt.Sprintf("all cells idle (<%.2g rps) for %d consecutive ticks", cfg.IdleRPS, e.adv.idleTicks)
	default:
		p.Reason = "within SLO"
	}
	return p
}

// leastLoadedCell picks the drain victim: the cell with the lowest window
// request total (ties to the highest ID, so the newest cell drains first).
// Caller holds e.mu.
func (e *Evaluator) leastLoadedCell(samples []CellSample) int {
	best, bestReq := -1, int64(-1)
	for _, s := range samples {
		req := e.windows[s.Cell].stats().Requests
		if best == -1 || req < bestReq || (req == bestReq && s.Cell > best) {
			best, bestReq = s.Cell, req
		}
	}
	return best
}

// enact executes one plan through the actuator, records the outcome as an
// autoscale alert, and arms the cooldown. Called from Tick outside e.mu
// (membership changes re-enter the router/ctrl stack and can take a
// while).
func (e *Evaluator) enact(ctx context.Context, p Plan) {
	now := time.Now()
	var (
		msg  string
		cell = p.Cell
		err  error
	)
	switch p.Action {
	case ActionScaleUp:
		cell, err = e.cfg.Actuator.ScaleUp(ctx)
		if err == nil {
			e.scaleUps.Add(1)
			msg = fmt.Sprintf("autoscale: added cell %d (%s)", cell, p.Reason)
		} else {
			cell = -1
			msg = fmt.Sprintf("autoscale: scale-up failed: %v", err)
		}
	case ActionScaleDown:
		err = e.cfg.Actuator.ScaleDown(ctx, p.Cell)
		if err == nil {
			e.scaleDowns.Add(1)
			msg = fmt.Sprintf("autoscale: drained cell %d (%s)", p.Cell, p.Reason)
		} else {
			msg = fmt.Sprintf("autoscale: drain of cell %d failed: %v", p.Cell, err)
		}
	default:
		return
	}

	e.mu.Lock()
	e.adv.lastAction = now
	e.adv.breachTicks = 0
	e.adv.idleTicks = 0
	e.emit(Alert{Time: now, Kind: KindAutoscale, Cell: cell, Message: msg})
	e.mu.Unlock()

	if err != nil {
		e.log.Warn("autoscale action failed", "action", string(p.Action), "cell", p.Cell, "err", err)
		return
	}
	e.log.Info("autoscale action", "action", string(p.Action), "cell", cell, "reason", p.Reason)
}
