package health

import (
	"testing"
	"time"
)

func counterSample(cell int, requests, errors, hits, misses int64) CellSample {
	return CellSample{Cell: cell, Requests: requests, Errors: errors, Hits: hits, Misses: misses}
}

func TestFirstSampleOnlySeeds(t *testing.T) {
	cw := newCellWindow(0, 4)
	cw.step(counterSample(0, 100, 1, 10, 90), time.Second)
	ws := cw.stats()
	if ws.Ticks != 0 || ws.Requests != 0 || ws.RequestRate != 0 {
		t.Fatalf("first sample must not fill a bucket: %+v", ws)
	}
}

func TestWindowAggregation(t *testing.T) {
	cw := newCellWindow(0, 4)
	cw.step(counterSample(0, 100, 0, 10, 90), time.Second)
	s2 := counterSample(0, 160, 3, 40, 120)
	s2.QueueWaitP99 = 0.080
	s2.QueueDepth = 5
	cw.step(s2, time.Second)
	s3 := counterSample(0, 200, 3, 70, 130)
	s3.QueueWaitP99 = 0.020
	s3.QueueDepth = 2
	cw.step(s3, time.Second)

	ws := cw.stats()
	if ws.Ticks != 2 {
		t.Fatalf("ticks %d, want 2", ws.Ticks)
	}
	if ws.Requests != 100 || ws.Errors != 3 {
		t.Fatalf("requests %d errors %d, want 100 / 3", ws.Requests, ws.Errors)
	}
	if ws.SpanSeconds != 2 || ws.RequestRate != 50 {
		t.Fatalf("span %v rate %v, want 2s / 50 rps", ws.SpanSeconds, ws.RequestRate)
	}
	if ws.ErrorRate != 0.03 {
		t.Fatalf("error rate %v, want 0.03", ws.ErrorRate)
	}
	// hits 30+30=60, misses 30+10=40 over the two buckets.
	if ws.CacheHitRate != 0.6 {
		t.Fatalf("cache hit rate %v, want 0.6", ws.CacheHitRate)
	}
	// Window quantile is the worst per-tick sample, not the latest.
	if ws.QueueWaitP99 != 0.080 {
		t.Fatalf("queue wait p99 %v, want the max 0.080", ws.QueueWaitP99)
	}
	// Depth: latest instantaneous vs worst in window.
	if ws.QueueDepth != 2 || ws.QueueDepthMax != 5 {
		t.Fatalf("depth %d max %d, want 2 / 5", ws.QueueDepth, ws.QueueDepthMax)
	}
}

// TestCounterResetNoNegativeRates pins the restart contract: cumulative
// counters moving backwards mean the cell restarted, and the post-restart
// value is the delta — rates must never go negative and the reset must be
// counted.
func TestCounterResetNoNegativeRates(t *testing.T) {
	cw := newCellWindow(0, 4)
	cw.step(counterSample(0, 1000, 50, 600, 400), time.Second)
	// Restart: all counters back near zero, 7 requests since.
	cw.step(counterSample(0, 7, 1, 2, 5), time.Second)

	ws := cw.stats()
	if ws.Requests != 7 || ws.Errors != 1 {
		t.Fatalf("post-reset deltas requests %d errors %d, want 7 / 1", ws.Requests, ws.Errors)
	}
	if ws.RequestRate < 0 || ws.ErrorRate < 0 || ws.CacheHitRate < 0 {
		t.Fatalf("negative rate after reset: %+v", ws)
	}
	if ws.CounterResets != 1 {
		t.Fatalf("counter resets %d, want 1", ws.CounterResets)
	}
	// The next normal tick differences against the post-restart sample.
	cw.step(counterSample(0, 17, 1, 4, 13), time.Second)
	if ws = cw.stats(); ws.Requests != 17 || ws.CounterResets != 1 {
		t.Fatalf("follow-up tick: %+v, want 17 requests and still 1 reset", ws)
	}
}

func TestEmptyWindowStats(t *testing.T) {
	cw := newCellWindow(3, 8)
	ws := cw.stats()
	if ws.Ticks != 0 || ws.SpanSeconds != 0 || ws.RequestRate != 0 || ws.ErrorRate != 0 {
		t.Fatalf("empty window stats %+v, want zero value", ws)
	}
	for _, m := range []Metric{MetricQueueWaitP99, MetricErrorRate, MetricCacheHitRate, MetricQueueDepth, MetricRequestRate} {
		if v := ws.Value(m); v != 0 {
			t.Fatalf("empty window %s = %v, want 0", m, v)
		}
	}
}

// TestWindowEviction checks old buckets roll out of the ring: a latency
// spike stops dominating the window quantile once it is older than the
// window.
func TestWindowEviction(t *testing.T) {
	cw := newCellWindow(0, 2)
	s := counterSample(0, 0, 0, 0, 0)
	cw.step(s, time.Second) // seed
	spike := s
	spike.Requests, spike.QueueWaitP99 = 10, 0.500
	cw.step(spike, time.Second)
	if ws := cw.stats(); ws.QueueWaitP99 != 0.500 {
		t.Fatalf("spike not in window: %+v", ws)
	}
	calm := spike
	calm.QueueWaitP99 = 0.001
	for i := 0; i < 2; i++ {
		calm.Requests += 10
		cw.step(calm, time.Second)
	}
	ws := cw.stats()
	if ws.Ticks != 2 || ws.QueueWaitP99 != 0.001 {
		t.Fatalf("spike must have rolled out of the 2-bucket window: %+v", ws)
	}
	if ws.Requests != 20 {
		t.Fatalf("window requests %d, want the last two deltas (20)", ws.Requests)
	}
}

// TestIdleTickDropsStaleQuantiles: once traffic stops (no completions,
// empty queue) the stale point-in-time quantiles must age out of the
// window instead of pinning a breach on an idle cell forever; a wedged
// cell (empty completions, backed-up queue) keeps them.
func TestIdleTickDropsStaleQuantiles(t *testing.T) {
	cw := newCellWindow(0, 3)
	cw.step(counterSample(0, 100, 0, 0, 100), time.Second)
	hot := counterSample(0, 200, 0, 0, 200)
	hot.QueueWaitP99 = 0.250
	cw.step(hot, time.Second)
	if ws := cw.stats(); ws.QueueWaitP99 != 0.250 {
		t.Fatalf("hot window p99 %g, want 0.25", ws.QueueWaitP99)
	}

	// Idle ticks: counters frozen, queue empty, but the serving layer
	// still reports the stale ring quantile. It must not be folded in.
	idle := counterSample(0, 200, 0, 0, 200)
	idle.QueueWaitP99 = 0.250
	for i := 0; i < 3; i++ {
		cw.step(idle, time.Second)
	}
	if ws := cw.stats(); ws.QueueWaitP99 != 0 {
		t.Fatalf("idle window p99 %g, want 0 after the hot bucket ages out", ws.QueueWaitP99)
	}

	// Wedged: nothing completes but the queue is deep — stale quantiles
	// stay, because the pressure is real.
	wedged := counterSample(0, 200, 0, 0, 200)
	wedged.QueueWaitP99 = 0.250
	wedged.QueueDepth = 40
	cw.step(wedged, time.Second)
	if ws := cw.stats(); ws.QueueWaitP99 != 0.250 {
		t.Fatalf("wedged window p99 %g, want 0.25 retained", ws.QueueWaitP99)
	}
}
