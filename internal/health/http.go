package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"

	"repro/internal/serve"
)

// AlertsPath is where Handler serves the alert-event ring.
const AlertsPath = "/debug/alerts"

// AlertsJSON is the GET /debug/alerts body: the retained ring newest
// first, plus the lifetime append count (Total > len(Alerts) means old
// events were evicted).
type AlertsJSON struct {
	Alerts []Alert `json:"alerts"`
	Total  int64   `json:"total"`
}

// Handler mounts the health API over next (any handler exposing
// GET /v1/stats as a JSON object and GET /metrics as a Prometheus
// exposition composes — same contract as the ctrl and obs layers):
//
//	GET /v1/health          per-cell windows + SLO standing; 503 when any
//	                        cell is breached, so it works as a readiness
//	                        probe
//	GET /debug/alerts       the alert-event ring, newest first
//	GET /v1/autoscale/plan  the advisor's current recommendation
//	GET /v1/stats           next's stats + "health" section
//	GET /metrics            next's exposition + health_* series
//
// Every other route is delegated to next.
func (e *Evaluator) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", func(w http.ResponseWriter, _ *http.Request) {
		h := e.Health()
		status := http.StatusOK
		if h.Status == StateBreached {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})
	mux.HandleFunc("GET "+AlertsPath, func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, AlertsJSON{Alerts: e.Alerts(), Total: e.alerts.Total()})
	})
	mux.HandleFunc("GET /v1/autoscale/plan", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, e.Plan())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		e.handleStats(w, r, next)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		e.handleMetrics(w, r, next)
	})
	mux.Handle("/", next)
	return mux
}

// handleStats merges the wrapped stack's stats object with a "health"
// section, keeping /v1/stats one endpoint however many layers compose.
func (e *Evaluator) handleStats(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := httptest.NewRecorder()
	next.ServeHTTP(rec, r)
	var obj map[string]json.RawMessage
	if rec.Code != http.StatusOK || json.Unmarshal(rec.Body.Bytes(), &obj) != nil {
		replay(w, rec)
		return
	}
	hj, err := json.Marshal(e.Health())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	obj["health"] = hj
	writeJSON(w, http.StatusOK, obj)
}

// handleMetrics appends the health_* series after the wrapped stack's
// exposition.
func (e *Evaluator) handleMetrics(w http.ResponseWriter, r *http.Request, next http.Handler) {
	rec := httptest.NewRecorder()
	next.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		replay(w, rec)
		return
	}
	w.Header().Set("Content-Type", serve.PromContentType)
	_, _ = w.Write(rec.Body.Bytes())
	pw := serve.NewPromWriter(w)
	e.WritePrometheus(pw)
}

func replay(w http.ResponseWriter, rec *httptest.ResponseRecorder) {
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	_, _ = w.Write(rec.Body.Bytes())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
